#!/usr/bin/env python3
"""Engine-specific concurrency lint for DCDatalog.

Enforces the rules docs/INTERNALS.md §7 lists that clang's thread-safety
analysis cannot express:

  memory-order      Every std::atomic load/store/RMW in src/concurrent/,
                    src/runtime/, src/core/ and src/server/ must name an
                    explicit std::memory_order — no implicit seq_cst on hot
                    paths — and no operator sugar (++, +=, =) on atomics
                    there.
  hot-path-mutex    No mutexes, condition variables or blocking sleeps in
                    the evaluation hot paths (rings, barrier, termination,
                    distributor, gather/merge, pipelines, strategy loops).
  chaos-allowlist   Chaos-injection macros may only be referenced from the
                    audited coordination points; a stray DCD_CHAOS_POINT in
                    random code would perturb schedules nobody fuzzes.
  hot-loop-alloc    No raw heap allocation (new/malloc/make_unique/...)
                    inside the per-iteration hot functions.
  tsa-suppression   DCD_NO_THREAD_SAFETY_ANALYSIS needs a justification
                    comment on the same or previous line.
  hot-virtual       No unannotated calls to virtual-declared methods in the
                    hot-path files: virtual dispatch defeats inlining and
                    adds an indirect branch per tuple. The engine's step
                    dispatch is switch/function-pointer based by design;
                    a justified exception carries a dcd-lint allow or a
                    DCD_COLD_CALL (src/common/hot_path.h) annotation.

Layered tools (run when available, skipped with a notice otherwise —
the container may carry only GCC):

  clang-tidy        Repo-root .clang-tidy baseline over compile_commands.json.
  clang-query       AST matchers in tools/lint/queries/*.cql (e.g. atomic
                    member calls whose memory_order argument is defaulted).

Suppressions: a finding on line N is suppressed when line N or N-1 carries
    // dcd-lint: allow(<rule>): <justification of at least 15 chars>
A suppression without a real justification is itself an error.

Exit codes: 0 clean, 2 findings, 3 usage/internal error.

Usage:
  tools/lint/dcd_lint.py [--repo-root R] [--build-dir B]
                         [--rules r1,r2] [--no-clang-tools] [files...]
  tools/lint/dcd_lint.py --selftest     # seed one violation per rule and
                                        # assert every rule catches it
"""

import argparse
import json
import os
import re
import shutil
import subprocess
import sys
import tempfile

REPO_ROOT = os.path.normpath(
    os.path.join(os.path.dirname(os.path.abspath(__file__)), "..", ".."))

# --- Rule scopes -----------------------------------------------------------

MEMORY_ORDER_DIRS = ("src/concurrent", "src/runtime", "src/core", "src/server")

# Files forming the evaluation hot paths: everything that runs per tuple,
# per block or per local iteration. Locks and blocking calls here would
# reintroduce exactly the coordination cost the paper's design removes.
HOT_PATH_FILES = {
    "src/concurrent/spsc_queue.h",
    "src/concurrent/barrier.h",
    "src/concurrent/termination.h",
    "src/runtime/message.h",
    "src/runtime/distributor.h",
    "src/runtime/distributor.cc",
    "src/runtime/recursive_table.h",
    "src/runtime/recursive_table.cc",
    "src/runtime/pipeline.h",
    "src/runtime/pipeline.cc",
    "src/runtime/batch_pipeline.h",
    "src/runtime/batch_pipeline.cc",
    "src/runtime/expr_eval.h",
    "src/runtime/expr_eval.cc",
    "src/runtime/base_index_set.h",
    "src/runtime/base_index_set.cc",
    "src/storage/flat_set.h",
    "src/storage/flat_map.h",
    "src/storage/updates.h",
    "src/storage/updates.cc",
    "src/core/engine.cc",
    "src/core/dws_controller.h",
    "src/core/dws_controller.cc",
    "src/common/trace.h",
    "src/common/histogram.h",
}

# The audited coordination points that may reference chaos macros
# (DCD_CHAOS_POINT / DCD_CHAOS_FAIL / DCD_INJECT_BUG). The fuzz harness
# (src/testing) installs schedules; everything else must stay chaos-free.
CHAOS_ALLOWLIST_PREFIXES = ("src/testing/",)
CHAOS_ALLOWLIST_FILES = {
    "src/common/chaos.h",
    "src/common/chaos.cc",
    "src/concurrent/spsc_queue.h",
    "src/concurrent/termination.h",
    "src/concurrent/worker_pool.cc",
    "src/core/engine.cc",
    "src/runtime/distributor.h",
    "src/runtime/distributor.cc",
}

# file (relative) -> function names whose bodies run per iteration / per
# tuple. Raw allocation inside them is a hot-loop bug; containers sized at
# setup time (vector ctors) are fine and not matched.
# MergeMinMaxBatchByScan and PreparePipeline are deliberately absent: the
# former is the paper's unoptimized ablation baseline, the latter runs once
# per rule, not per tuple.
HOT_LOOP_FUNCTIONS = {
    "src/concurrent/spsc_queue.h": ["TryPush", "TryPop"],
    "src/runtime/distributor.cc": ["Route", "Emit", "Flush", "SendBlock"],
    "src/runtime/recursive_table.cc": [
        "MergeWire", "MergeBatch", "MergeNone", "MergeMinMax", "MergeCount",
        "MergeSum", "PushDelta",
    ],
    "src/runtime/pipeline.cc": [
        "ExecuteFrom", "RunPipelineForTuple", "BuildWireTuple",
    ],
    # The shared step-compilation helpers both executors inline per tuple.
    "src/runtime/pipeline.h": [
        "ApplyChecksAndBindStrided", "StepChecksMatch",
        "ApplyDrivingScanStrided",
    ],
    # Begin is deliberately absent: it runs once per rule and owns the
    # growth-only level allocation; everything below runs per batch/lane.
    "src/runtime/batch_pipeline.cc": [
        "Push", "RunBatch", "FlushLevel", "RunSteps", "RunExpanding",
        "RunFilter", "RunBind", "RunAntiJoin", "EmitLevel",
    ],
    "src/runtime/batch_pipeline.h": ["CopyLane"],
    # RunUpdateRules drives every post-watermark EDB row through a rule
    # pipeline per incremental batch; PreparePipeline inside it is
    # once-per-rule and allocation there does not match textually.
    # PublishMorsels is deliberately absent from the per-tuple set: it runs
    # once per iteration with a bounded (kSlots) loop; the claim path
    # (TrySteal) and execution (RunMorsel) run inside the idle-spin loops
    # and must stay alloc/mutex/virtual-free.
    "src/core/engine.cc": [
        "GatherAll", "PushWithBackpressure", "LocalIteration", "InactiveWait",
        "GlobalLoop", "SspLoop", "DwsLoop", "UpdateDws", "RunUpdateRules",
        "PublishMorsels", "TrySteal", "RunMorsel", "ResolveMorsels",
        "TopUpMorsels",
    ],
    # The trace ring's Append and the histogram's Add run inside every one
    # of the engine hot loops above; they must stay allocation-free.
    "src/common/trace.h": ["Append"],
    "src/common/histogram.h": ["Add", "BucketOf"],
    # The flat merge structures run once per wire tuple. Rehash only
    # resizes its slot vector (not matched by the textual alloc rule);
    # per-probe allocation would be a real bug.
    "src/storage/flat_set.h": ["Find", "Insert", "Prefetch"],
    "src/storage/flat_map.h": ["Find", "FindOrInsert", "Prefetch"],
}

ALL_RULES = (
    "memory-order",
    "hot-path-mutex",
    "chaos-allowlist",
    "hot-loop-alloc",
    "tsa-suppression",
    "hot-virtual",
)


class Finding:
    def __init__(self, rule, path, line, message):
        self.rule = rule
        self.path = path
        self.line = line
        self.message = message

    def __str__(self):
        return f"{self.path}:{self.line}: [{self.rule}] {self.message}"


# --- Source preprocessing --------------------------------------------------

def strip_comments_and_strings(text):
    """Blanks out comments and string/char literals, preserving line
    structure so line numbers keep meaning. Keeps the comment text handy is
    NOT needed here — suppression scanning runs on the raw text."""
    out = []
    i, n = 0, len(text)
    state = "code"  # code | line_comment | block_comment | string | char
    while i < n:
        c = text[i]
        nxt = text[i + 1] if i + 1 < n else ""
        if state == "code":
            if c == "/" and nxt == "/":
                state = "line_comment"
                out.append("  ")
                i += 2
                continue
            if c == "/" and nxt == "*":
                state = "block_comment"
                out.append("  ")
                i += 2
                continue
            if c == '"':
                state = "string"
                out.append(" ")
                i += 1
                continue
            if c == "'":
                state = "char"
                out.append(" ")
                i += 1
                continue
            out.append(c)
        elif state == "line_comment":
            if c == "\n":
                state = "code"
                out.append("\n")
            else:
                out.append(" ")
        elif state == "block_comment":
            if c == "*" and nxt == "/":
                state = "code"
                out.append("  ")
                i += 2
                continue
            out.append("\n" if c == "\n" else " ")
        elif state == "string":
            if c == "\\":
                out.append("  ")
                i += 2
                continue
            if c == '"':
                state = "code"
            out.append(" " if c != "\n" else "\n")
        elif state == "char":
            if c == "\\":
                out.append("  ")
                i += 2
                continue
            if c == "'":
                state = "code"
            out.append(" " if c != "\n" else "\n")
        i += 1
    return "".join(out)


ALLOW_RE = re.compile(r"dcd-lint:\s*allow\(([\w-]+)\)\s*:?\s*(.*)")


def suppression_for(raw_lines, lineno, rule):
    """Returns (allowed, error_message). Checks line `lineno` (1-based) and
    the line above for a dcd-lint allow of `rule`."""
    for ln in (lineno, lineno - 1):
        if ln < 1 or ln > len(raw_lines):
            continue
        m = ALLOW_RE.search(raw_lines[ln - 1])
        if m is None:
            continue
        if m.group(1) != rule:
            continue
        justification = m.group(2).strip()
        if len(justification) < 15:
            return False, (
                "suppression of '%s' lacks a justification (need an inline "
                "reason of at least 15 characters after the colon)" % rule)
        return True, None
    return False, None


class SourceFile:
    def __init__(self, path, rel):
        self.path = path
        self.rel = rel
        with open(path, "r", encoding="utf-8", errors="replace") as f:
            self.raw = f.read()
        self.raw_lines = self.raw.split("\n")
        self.code = strip_comments_and_strings(self.raw)
        self.code_lines = self.code.split("\n")

    def report(self, findings, rule, lineno, message):
        allowed, error = suppression_for(self.raw_lines, lineno, rule)
        if error is not None:
            findings.append(Finding(rule, self.rel, lineno, error))
        elif not allowed:
            findings.append(Finding(rule, self.rel, lineno, message))


# --- Rule: memory-order ----------------------------------------------------

ATOMIC_CALL_RE = re.compile(
    r"[.\->]\s*(load|store|exchange|fetch_add|fetch_sub|fetch_and|fetch_or"
    r"|fetch_xor|compare_exchange_weak|compare_exchange_strong)\s*\(")

ATOMIC_DECL_RE = re.compile(r"std\s*::\s*atomic\s*<[^;{]*>\s+(\w+)")


def extract_call_args(code, open_paren_idx):
    """Returns the text between the call's balanced parentheses."""
    depth = 0
    i = open_paren_idx
    start = open_paren_idx + 1
    while i < len(code):
        c = code[i]
        if c == "(":
            depth += 1
        elif c == ")":
            depth -= 1
            if depth == 0:
                return code[start:i]
        i += 1
    return code[start:]


def check_memory_order(sf, findings):
    # Part 1: named atomic operations must pass an explicit memory_order.
    for m in ATOMIC_CALL_RE.finditer(sf.code):
        args = extract_call_args(sf.code, m.end() - 1)
        if "memory_order" in args:
            continue
        lineno = sf.code.count("\n", 0, m.start()) + 1
        sf.report(
            findings, "memory-order", lineno,
            f"atomic {m.group(1)}() without an explicit std::memory_order "
            "(implicit seq_cst is banned on engine hot paths; say what you "
            "mean, and why, in a comment where non-obvious)")

    # Part 2: operator sugar on declared atomics (++x, x += n, x = n) is an
    # implicit seq_cst RMW/store; require the named member functions.
    atomic_names = set(ATOMIC_DECL_RE.findall(sf.code))
    if not atomic_names:
        return
    names = "|".join(re.escape(n) for n in sorted(atomic_names))
    op_re = re.compile(
        r"(?:\+\+|--)\s*(?:%s)\b|(?<![\w.>])(?:%s)\s*(?:\+\+|--|(?:[+\-&|^])?="
        r"(?!=))" % (names, names))
    for i, line in enumerate(sf.code_lines, start=1):
        m = op_re.search(line)
        if m is None:
            continue
        # Skip the declaration itself (`std::atomic<T> x = ...` / `{...}`)
        # and comparison-free false positives from declarations of same-name
        # non-atomic locals (`uint64_t x = ...`): any line that declares a
        # variable before the match position is not an atomic access.
        prefix = line[:m.start()]
        if "std::atomic" in line:
            continue
        if re.search(r"\b(?:auto|bool|u?int\d+_t|size_t|uint64_t|int|long"
                     r"|double|float|char)\s+[&*]?\s*$", prefix):
            continue
        sf.report(
            findings, "memory-order", i,
            "operator on std::atomic is an implicit seq_cst access; use "
            ".load/.store/.fetch_* with an explicit std::memory_order")


# --- Rule: hot-path-mutex --------------------------------------------------

HOT_PATH_BANNED = [
    (re.compile(r"\bstd\s*::\s*(?:recursive_|shared_|timed_)?mutex\b"),
     "std::mutex family"),
    (re.compile(r"\b(?:lock_guard|unique_lock|scoped_lock|shared_lock)\b"),
     "lock RAII wrapper"),
    (re.compile(r"\bcondition_variable\b"), "condition variable"),
    (re.compile(r"\bMutexLock\b|\bMutex\b"), "dcdatalog::Mutex"),
    (re.compile(r"\bsleep_for\b|\bsleep_until\b"), "blocking sleep"),
]


def check_hot_path_mutex(sf, findings):
    for i, line in enumerate(sf.code_lines, start=1):
        for pattern, what in HOT_PATH_BANNED:
            if pattern.search(line):
                sf.report(
                    findings, "hot-path-mutex", i,
                    f"{what} on an evaluation hot path — the strategy "
                    "loops, rings and merge paths must stay lock-free "
                    "(move the work off the hot path or justify inline)")
                break


# --- Rule: chaos-allowlist -------------------------------------------------

CHAOS_TOKEN_RE = re.compile(
    r"\b(DCD_CHAOS_POINT|DCD_CHAOS_FAIL|DCD_INJECT_BUG)\b")


def check_chaos_allowlist(sf, findings):
    if sf.rel in CHAOS_ALLOWLIST_FILES:
        return
    if any(sf.rel.startswith(p) for p in CHAOS_ALLOWLIST_PREFIXES):
        return
    for i, line in enumerate(sf.code_lines, start=1):
        m = CHAOS_TOKEN_RE.search(line)
        if m is not None:
            sf.report(
                findings, "chaos-allowlist", i,
                f"{m.group(1)} referenced outside the audited chaos "
                "allowlist (tools/lint/dcd_lint.py CHAOS_ALLOWLIST_*); new "
                "injection points must be added to the allowlist and to "
                "the fuzz harness's site enum together")


# --- Rule: hot-loop-alloc --------------------------------------------------

ALLOC_RE = re.compile(
    r"(?<![\w.])new\b(?!\s*\()|(?<![\w.])new\s*\(|\bmalloc\s*\(|\bcalloc\s*\("
    r"|\brealloc\s*\(|\bmake_unique\b|\bmake_shared\b|\bstrdup\s*\(")


def find_function_body(code, name):
    """Yields (start_offset, end_offset) of brace-balanced bodies of
    functions named `name` (heuristic: name followed by '(' at a definition
    whose parameter list is followed by '{', allowing qualifiers)."""
    for m in re.finditer(r"\b%s\s*\(" % re.escape(name), code):
        # Balance the parameter list.
        depth = 0
        i = m.end() - 1
        while i < len(code):
            if code[i] == "(":
                depth += 1
            elif code[i] == ")":
                depth -= 1
                if depth == 0:
                    break
            i += 1
        # Skip qualifiers (const, noexcept, trailing return) up to '{' or a
        # character proving this was a call/declaration, not a definition.
        j = i + 1
        while j < len(code) and code[j] not in "{;,)=":
            j += 1
        if j >= len(code) or code[j] != "{":
            continue
        depth = 0
        k = j
        while k < len(code):
            if code[k] == "{":
                depth += 1
            elif code[k] == "}":
                depth -= 1
                if depth == 0:
                    yield j, k
                    break
            k += 1


def check_hot_loop_alloc(sf, findings, functions):
    for fname in functions:
        for start, end in find_function_body(sf.code, fname):
            body = sf.code[start:end]
            for m in ALLOC_RE.finditer(body):
                lineno = sf.code.count("\n", 0, start + m.start()) + 1
                sf.report(
                    findings, "hot-loop-alloc", lineno,
                    f"raw heap allocation inside hot function {fname}() — "
                    "per-iteration paths must reuse preallocated buffers "
                    "(scratch vectors, staging blocks)")


# --- Rule: hot-virtual -----------------------------------------------------

# Method names declared `virtual` anywhere, or defined with override/final
# (covers split declaration/definition). The name set is gathered over the
# whole linted file set, then every member call to one of those names in a
# hot-path file is flagged — same over-approximation by name the deepcheck
# analyzer uses, sound for a guardrail (the engine currently declares no
# virtuals at all; this rule keeps it that way on the hot paths).
VIRTUAL_DECL_NAME_RE = re.compile(r"\bvirtual\b[^;{=()]*?\b(\w+)\s*\(")
OVERRIDE_DECL_NAME_RE = re.compile(
    r"\b(\w+)\s*\([^;{}()]*\)\s*(?:const\s*)?(?:noexcept\s*)?"
    r"(?:override|final)\b")


def gather_virtual_names(sources):
    names = set()
    for sf in sources:
        names.update(VIRTUAL_DECL_NAME_RE.findall(sf.code))
        names.update(OVERRIDE_DECL_NAME_RE.findall(sf.code))
    names.discard("operator")
    return names


def check_hot_virtual(sf, findings, virtual_names):
    if not virtual_names:
        return
    call_re = re.compile(
        r"(?:\.|->)\s*(%s)\s*\(" % "|".join(
            re.escape(n) for n in sorted(virtual_names)))
    for i, line in enumerate(sf.code_lines, start=1):
        m = call_re.search(line)
        if m is None:
            continue
        # The deepcheck annotation vocabulary also counts as justification:
        # DCD_COLD_CALL on the call's line or the line above.
        context = sf.raw_lines[i - 1]
        if i >= 2:
            context += sf.raw_lines[i - 2]
        if "DCD_COLD_CALL(" in context:
            continue
        sf.report(
            findings, "hot-virtual", i,
            f"call to virtual-declared method {m.group(1)}() on a hot path "
            "— virtual dispatch costs an indirect branch per tuple and "
            "defeats inlining; use the switch/function-pointer step "
            "dispatch, or justify with DCD_COLD_CALL / a dcd-lint allow")


# --- Rule: tsa-suppression -------------------------------------------------

def check_tsa_suppression(sf, findings):
    for i, line in enumerate(sf.code_lines, start=1):
        if "DCD_NO_THREAD_SAFETY_ANALYSIS" not in line:
            continue
        if sf.rel.endswith("thread_annotations.h"):
            continue  # The definition site.
        if line.lstrip().startswith("#"):
            continue  # Macro definition, not a use.
        context = ""
        if i >= 2:
            context += sf.raw_lines[i - 2]
        context += sf.raw_lines[i - 1]
        comment = re.search(r"//\s*(.{15,})", context)
        if comment is None:
            sf.report(
                findings, "tsa-suppression", i,
                "DCD_NO_THREAD_SAFETY_ANALYSIS without a justification "
                "comment on the same or previous line")


# --- File discovery --------------------------------------------------------

def discover_files(repo_root, build_dir):
    """Returns repo-relative paths of all first-party sources, preferring
    the compile_commands.json TU list (plus a header glob) when present."""
    rels = set()
    cc_path = os.path.join(build_dir or "", "compile_commands.json")
    if build_dir and os.path.exists(cc_path):
        with open(cc_path, "r", encoding="utf-8") as f:
            for entry in json.load(f):
                path = os.path.normpath(
                    os.path.join(entry["directory"], entry["file"]))
                rel = os.path.relpath(path, repo_root)
                if not rel.startswith(".."):
                    rels.add(rel)
    for base in ("src",):
        for dirpath, _, filenames in os.walk(os.path.join(repo_root, base)):
            for fn in filenames:
                if fn.endswith((".h", ".cc", ".cpp", ".hpp")):
                    rel = os.path.relpath(os.path.join(dirpath, fn), repo_root)
                    rels.add(rel)
    return sorted(r.replace(os.sep, "/") for r in rels
                  if r.replace(os.sep, "/").startswith("src/"))


# --- Python-rule driver ----------------------------------------------------

def run_python_rules(repo_root, rel_files, rules, explicit_files):
    findings = []
    sources = []
    for rel in rel_files:
        path = os.path.join(repo_root, rel)
        if os.path.exists(path):
            sources.append(SourceFile(path, rel))
    virtual_names = (gather_virtual_names(sources)
                     if "hot-virtual" in rules else set())
    for sf in sources:
        rel = sf.rel
        in_mem_scope = rel.startswith(MEMORY_ORDER_DIRS) or explicit_files
        in_hot_scope = rel in HOT_PATH_FILES or explicit_files
        if "memory-order" in rules and in_mem_scope:
            check_memory_order(sf, findings)
        if "hot-path-mutex" in rules and in_hot_scope:
            check_hot_path_mutex(sf, findings)
        if "chaos-allowlist" in rules and (rel.startswith("src/")
                                           or explicit_files):
            check_chaos_allowlist(sf, findings)
        if "hot-loop-alloc" in rules:
            functions = HOT_LOOP_FUNCTIONS.get(rel)
            if explicit_files and functions is None:
                # For explicitly passed files (self-test fixtures), scan
                # every function the file defines.
                functions = sorted(set(
                    re.findall(r"\b(\w+)\s*\([^;]*?\)\s*(?:const\s*)?{",
                               sf.code)))
            if functions:
                check_hot_loop_alloc(sf, findings, functions)
        if "tsa-suppression" in rules:
            check_tsa_suppression(sf, findings)
        if "hot-virtual" in rules and in_hot_scope:
            check_hot_virtual(sf, findings, virtual_names)
    return findings


# --- clang-tool layers -----------------------------------------------------

def find_tool(*candidates):
    for name in candidates:
        path = shutil.which(name)
        if path:
            return path
    # Debian/Ubuntu versioned names.
    for name in candidates:
        for version in range(20, 11, -1):
            path = shutil.which(f"{name}-{version}")
            if path:
                return path
    return None


def run_clang_tidy(repo_root, build_dir, rel_files):
    tool = find_tool("clang-tidy")
    if tool is None:
        print("lint: clang-tidy not found; skipping clang-tidy layer "
              "(runs in CI)")
        return []
    if not build_dir or not os.path.exists(
            os.path.join(build_dir, "compile_commands.json")):
        print("lint: no compile_commands.json; skipping clang-tidy layer "
              "(configure with -DCMAKE_EXPORT_COMPILE_COMMANDS=ON)")
        return []
    tus = [os.path.join(repo_root, r) for r in rel_files
           if r.endswith(".cc") and r.startswith("src/")]
    proc = subprocess.run(
        [tool, "-p", build_dir, "--quiet"] + tus,
        capture_output=True, text=True)
    findings = []
    warnings = 0
    for line in proc.stdout.splitlines():
        # .clang-tidy promotes concurrency-* to errors; only those (and
        # hard errors) fail the lint. Plain warnings print as advisory.
        if ": error:" in line:
            findings.append(Finding("clang-tidy", line.split(":")[0], 0,
                                    line.strip()))
            print(line)
        elif ": warning:" in line:
            warnings += 1
            print(line)
    if warnings:
        print(f"lint: {warnings} advisory clang-tidy warning(s) (only "
              "WarningsAsErrors categories fail the build)")
    if proc.returncode != 0 and not findings:
        print(proc.stderr, file=sys.stderr)
        findings.append(Finding("clang-tidy", "<driver>", 0,
                                "clang-tidy failed to run"))
    return findings


def run_clang_query(repo_root, build_dir, rel_files):
    tool = find_tool("clang-query")
    if tool is None:
        print("lint: clang-query not found; skipping AST-matcher layer "
              "(runs in CI)")
        return []
    if not build_dir or not os.path.exists(
            os.path.join(build_dir, "compile_commands.json")):
        print("lint: no compile_commands.json; skipping AST-matcher layer")
        return []
    queries_dir = os.path.join(repo_root, "tools", "lint", "queries")
    query_files = sorted(
        os.path.join(queries_dir, f) for f in os.listdir(queries_dir)
        if f.endswith(".cql"))
    tus = [os.path.join(repo_root, r) for r in rel_files
           if r.endswith(".cc") and r.startswith(
               ("src/concurrent", "src/runtime", "src/core"))]
    findings = []
    for qf in query_files:
        proc = subprocess.run(
            [tool, "-p", build_dir, "-f", qf] + tus,
            capture_output=True, text=True)
        matches = [l for l in proc.stdout.splitlines()
                   if l.strip().startswith(("Match #",))]
        # clang-query reports the root binding location lines right after
        # each match header; surface the whole stdout on any match.
        if matches:
            print(proc.stdout)
            findings.append(Finding(
                "clang-query", os.path.basename(qf), 0,
                f"{len(matches)} AST match(es) for {os.path.basename(qf)}"))
        if proc.returncode != 0:
            print(proc.stderr, file=sys.stderr)
            findings.append(Finding("clang-query", os.path.basename(qf), 0,
                                    "clang-query failed to run"))
    return findings


# --- Self-test -------------------------------------------------------------

SELFTEST_CASES = {
    "memory-order": (
        "#include <atomic>\n"
        "std::atomic<unsigned long> counter{0};\n"
        "void bump() { counter.fetch_add(1); }\n",
        "#include <atomic>\n"
        "std::atomic<unsigned long> counter{0};\n"
        "void bump() { counter.fetch_add(1, std::memory_order_relaxed); }\n"),
    "memory-order-operator": (
        "#include <atomic>\n"
        "std::atomic<unsigned long> counter{0};\n"
        "void bump() { counter += 2; }\n",
        "#include <atomic>\n"
        "std::atomic<unsigned long> counter{0};\n"
        "void bump() { counter.fetch_add(2, std::memory_order_relaxed); }\n"),
    "hot-path-mutex": (
        "#include <mutex>\n"
        "std::mutex mu;\n"
        "void hot() { std::lock_guard<std::mutex> lock(mu); }\n",
        "void hot() { }\n"),
    "chaos-allowlist": (
        "#include \"common/chaos.h\"\n"
        "void sneaky() { DCD_CHAOS_POINT(kGather); }\n",
        "void honest() { }\n"),
    "hot-loop-alloc": (
        "void iterate() { int* p = new int[64]; delete[] p; }\n",
        "void iterate() { int p[64]; (void)p; }\n"),
    "tsa-suppression": (
        "#define DCD_NO_THREAD_SAFETY_ANALYSIS\n"
        "void f() DCD_NO_THREAD_SAFETY_ANALYSIS;\n",
        "#define DCD_NO_THREAD_SAFETY_ANALYSIS\n"
        "// justified: init-order bootstrap, lock not constructed yet here\n"
        "void f() DCD_NO_THREAD_SAFETY_ANALYSIS;\n"),
    "hot-virtual": (
        "struct Step { virtual void Apply() = 0; };\n"
        "void hot(Step* s) { s->Apply(); }\n",
        "struct Step { void Apply(); };\n"
        "void hot(Step* s) { s->Apply(); }\n"),
    "hot-virtual-coldcall": (
        "struct Step { virtual void Apply() = 0; };\n"
        "void hot(Step* s) { s->Apply(); }\n",
        "#include \"common/hot_path.h\"\n"
        "struct Step { virtual void Apply() = 0; };\n"
        "void setup(Step* s) {\n"
        "  DCD_COLD_CALL(\"dispatch bound once per rule at setup time\");\n"
        "  s->Apply();\n"
        "}\n"),
}


def run_selftest():
    """Seeds one violation per rule in a scratch tree and asserts the lint
    exits non-zero on it and zero on the corrected twin."""
    failures = []
    # Case names are "<rule>" or "<rule>-<variant>"; pick the longest rule
    # that prefixes the case name.
    rule_of = lambda case: next(
        r for r in sorted(ALL_RULES, key=len, reverse=True)
        if case == r or case.startswith(r + "-"))
    with tempfile.TemporaryDirectory(prefix="dcd_lint_selftest.") as tmp:
        for case, (bad, good) in SELFTEST_CASES.items():
            rule = rule_of(case)
            bad_path = os.path.join(tmp, f"{case}_bad.cc")
            good_path = os.path.join(tmp, f"{case}_good.cc")
            with open(bad_path, "w") as f:
                f.write(bad)
            with open(good_path, "w") as f:
                f.write(good)
            base = [sys.executable, os.path.abspath(__file__),
                    "--rules", rule, "--no-clang-tools"]
            bad_run = subprocess.run(base + [bad_path], capture_output=True,
                                     text=True)
            good_run = subprocess.run(base + [good_path], capture_output=True,
                                      text=True)
            if bad_run.returncode != 2:
                failures.append(
                    f"{case}: seeded violation NOT caught (exit "
                    f"{bad_run.returncode})\n{bad_run.stdout}")
            if good_run.returncode != 0:
                failures.append(
                    f"{case}: clean twin wrongly flagged (exit "
                    f"{good_run.returncode})\n{good_run.stdout}")
        # Suppression mechanics: an allow with a justification silences the
        # finding; an allow without one stays an error.
        suppressed = (
            "#include <atomic>\n"
            "std::atomic<unsigned long> counter{0};\n"
            "// dcd-lint: allow(memory-order): ctor runs single-threaded "
            "before any worker can observe the object\n"
            "void bump() { counter.fetch_add(1); }\n")
        bare = (
            "#include <atomic>\n"
            "std::atomic<unsigned long> counter{0};\n"
            "// dcd-lint: allow(memory-order):\n"
            "void bump() { counter.fetch_add(1); }\n")
        for name, text, want in (("suppressed", suppressed, 0),
                                 ("bare-suppression", bare, 2)):
            path = os.path.join(tmp, f"{name}.cc")
            with open(path, "w") as f:
                f.write(text)
            run = subprocess.run(
                [sys.executable, os.path.abspath(__file__), "--rules",
                 "memory-order", "--no-clang-tools", path],
                capture_output=True, text=True)
            if run.returncode != want:
                failures.append(
                    f"{name}: expected exit {want}, got {run.returncode}\n"
                    f"{run.stdout}")
    if failures:
        print("lint self-test FAILED:")
        for f in failures:
            print("  " + f.replace("\n", "\n  "))
        return 1
    print(f"lint self-test OK: {len(SELFTEST_CASES)} seeded violations "
          "caught, clean twins pass, suppressions enforced")
    return 0


# --- Main ------------------------------------------------------------------

def main():
    parser = argparse.ArgumentParser(description=__doc__,
                                     formatter_class=argparse.RawDescriptionHelpFormatter)
    parser.add_argument("--repo-root", default=REPO_ROOT)
    parser.add_argument("--build-dir", default=None,
                        help="build dir containing compile_commands.json")
    parser.add_argument("--rules", default=",".join(ALL_RULES))
    parser.add_argument("--no-clang-tools", action="store_true")
    parser.add_argument("--selftest", action="store_true")
    parser.add_argument("files", nargs="*")
    args = parser.parse_args()

    if args.selftest:
        sys.exit(run_selftest())

    repo_root = os.path.abspath(args.repo_root)
    build_dir = args.build_dir
    if build_dir is None:
        candidate = os.path.join(repo_root, "build")
        if os.path.exists(os.path.join(candidate, "compile_commands.json")):
            build_dir = candidate

    rules = [r.strip() for r in args.rules.split(",") if r.strip()]
    unknown = [r for r in rules if r not in ALL_RULES]
    if unknown:
        print(f"unknown rule(s): {', '.join(unknown)}", file=sys.stderr)
        sys.exit(3)

    explicit = bool(args.files)
    if explicit:
        rel_files = [os.path.relpath(os.path.abspath(f), repo_root)
                     .replace(os.sep, "/") for f in args.files]
        # Files outside the repo (self-test fixtures) lint under their
        # absolute path.
        rel_files = [f if not f.startswith("..") else os.path.abspath(f2)
                     for f, f2 in zip(rel_files, args.files)]
    else:
        rel_files = discover_files(repo_root, build_dir)

    findings = run_python_rules(repo_root, rel_files, rules, explicit)
    if not explicit and not args.no_clang_tools:
        findings += run_clang_tidy(repo_root, build_dir, rel_files)
        findings += run_clang_query(repo_root, build_dir, rel_files)

    for finding in findings:
        print(finding)
    if findings:
        print(f"lint: {len(findings)} finding(s)")
        sys.exit(2)
    scope = f"{len(rel_files)} file(s)"
    print(f"lint: OK ({scope}, rules: {', '.join(rules)})")
    sys.exit(0)


if __name__ == "__main__":
    main()
