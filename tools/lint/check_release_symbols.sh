#!/usr/bin/env sh
# Verifies the debug-only ownership checker compiles to nothing in release
# builds: no ThreadAffinity symbol may survive in any object file of an
# NDEBUG build. Run with the build directory as $1 (default: build).
#
#   tools/lint/check_release_symbols.sh build-release
#
# Exits 0 when clean, 1 when a symbol leaked, 2 on usage errors.
set -eu

BUILD_DIR="${1:-build}"
if [ ! -d "$BUILD_DIR" ]; then
  echo "check_release_symbols: build dir '$BUILD_DIR' not found" >&2
  exit 2
fi

NM="${NM:-nm}"
if ! command -v "$NM" >/dev/null 2>&1; then
  echo "check_release_symbols: nm not found; skipping" >&2
  exit 0
fi

objects=$(find "$BUILD_DIR" -name '*.o' \
  \( -path '*src*' -o -path '*dcd_*' \) 2>/dev/null || true)
if [ -z "$objects" ]; then
  echo "check_release_symbols: no object files under '$BUILD_DIR'" >&2
  exit 2
fi

leaked=0
checked=0
for obj in $objects; do
  checked=$((checked + 1))
  # Defined or undefined references both count: release TUs must not even
  # reference the checker.
  if "$NM" "$obj" 2>/dev/null | grep -q 'ThreadAffinity'; then
    echo "check_release_symbols: ThreadAffinity symbol in $obj:" >&2
    "$NM" -C "$obj" | grep 'ThreadAffinity' >&2
    leaked=1
  fi
done

if [ "$leaked" -ne 0 ]; then
  echo "check_release_symbols: FAILED — the affinity checker must compile" \
       "to nothing under NDEBUG (see src/common/affinity.h)" >&2
  exit 1
fi
echo "check_release_symbols: OK ($checked objects, no ThreadAffinity symbols)"
