#!/usr/bin/env sh
# Two binary-level release checks, run with the build directory as $1
# (default: build):
#
#   1. The debug-only ownership checker compiles to nothing: no
#      ThreadAffinity symbol may survive in any object file of an NDEBUG
#      build.
#   2. Hot-path purity survives inlining: tools/analyze/check_hot_symbols.py
#      disassembles the dcd binary and verifies no hot function body makes
#      a direct call to an allocator, lock, or sleep (the binary backstop
#      behind tools/analyze/dcd_deepcheck.py's source-level proof).
#
#   tools/lint/check_release_symbols.sh build-release
#
# Exits 0 when clean, 1 when a check failed, 2 on usage errors. Both
# checks self-skip with a notice when their tool (nm / objdump+python3)
# is unavailable.
set -eu

BUILD_DIR="${1:-build}"
if [ ! -d "$BUILD_DIR" ]; then
  echo "check_release_symbols: build dir '$BUILD_DIR' not found" >&2
  exit 2
fi

NM="${NM:-nm}"
if ! command -v "$NM" >/dev/null 2>&1; then
  echo "check_release_symbols: nm not found; skipping" >&2
  exit 0
fi

objects=$(find "$BUILD_DIR" -name '*.o' \
  \( -path '*src*' -o -path '*dcd_*' \) 2>/dev/null || true)
if [ -z "$objects" ]; then
  echo "check_release_symbols: no object files under '$BUILD_DIR'" >&2
  exit 2
fi

leaked=0
checked=0
for obj in $objects; do
  checked=$((checked + 1))
  # Defined or undefined references both count: release TUs must not even
  # reference the checker.
  if "$NM" "$obj" 2>/dev/null | grep -q 'ThreadAffinity'; then
    echo "check_release_symbols: ThreadAffinity symbol in $obj:" >&2
    "$NM" -C "$obj" | grep 'ThreadAffinity' >&2
    leaked=1
  fi
done

if [ "$leaked" -ne 0 ]; then
  echo "check_release_symbols: FAILED — the affinity checker must compile" \
       "to nothing under NDEBUG (see src/common/affinity.h)" >&2
  exit 1
fi
echo "check_release_symbols: OK ($checked objects, no ThreadAffinity symbols)"

# --- Hot-path purity backstop over the linked binary -----------------------
SCRIPT_DIR=$(CDPATH= cd -- "$(dirname -- "$0")" && pwd)
HOT_CHECK="$SCRIPT_DIR/../analyze/check_hot_symbols.py"
DCD_BIN="$BUILD_DIR/tools/dcd"
if [ ! -x "$DCD_BIN" ]; then
  echo "check_release_symbols: $DCD_BIN not built; skipping hot-symbol check" >&2
  exit 0
fi
if ! command -v python3 >/dev/null 2>&1; then
  echo "check_release_symbols: python3 not found; skipping hot-symbol check" >&2
  exit 0
fi
# Exit 2 from the checker means "environment can't run it" (no objdump) —
# a skip, not a failure; exit 1 is a real purity violation.
if python3 "$HOT_CHECK" "$DCD_BIN"; then
  :
else
  status=$?
  if [ "$status" -eq 2 ]; then
    echo "check_release_symbols: hot-symbol check skipped (no objdump)" >&2
    exit 0
  fi
  echo "check_release_symbols: FAILED — banned calls survive inlining in" \
       "hot bodies (see above)" >&2
  exit 1
fi
