#!/usr/bin/env python3
"""Interprocedural hot-path purity analyzer for DCDatalog.

The paper's scaling results depend on hot loops that never allocate, never
lock and never take an unpredictable indirect call. tools/lint/dcd_lint.py
checks this with file-local regexes; this tool proves it transitively: it
builds the whole-program call graph, starts from a declared set of hot
roots (docs/INTERNALS.md §9) and verifies that no reachable path hits

  alloc       raw heap allocation (operator new / malloc / make_unique...)
  mutex       a lock, condition variable or blocking sleep
  throw       a C++ throw expression
  fn-call     a std::function invocation (type-erased, may allocate,
              always an opaque indirect call)
  virtual     an unannotated virtual dispatch

Escape hatches come from src/common/hot_path.h and mirror the
`dcd-lint: allow(rule): reason` discipline:

  DCD_HOT_ROOT               marks a function as a hot root; the set of
                             annotated functions must equal the registry
                             below (--check-roots).
  DCD_COLD_CALL("reason")    cuts traversal through the call on the same
                             or the next code line and suppresses purity
                             findings there. The justification is
                             mandatory (>= 15 chars) — a bare marker is
                             itself an error.

Every violation prints a reachability trace (hot root -> ... -> offending
function:line) so the finding is actionable without re-running anything.

Frontends:
  * A pure-Python frontend (always on): comment/string stripping, a
    brace-tracking scope parser, receiver-type inference over member and
    local declarations, name-based call resolution. This is what runs in
    every environment, including containers with no clang at all.
  * A libclang precision layer over compile_commands.json (self-skipping
    when the python bindings are absent, like dcd_lint's clang-tidy
    layer): adds AST-exact call edges and primitives (CXX_NEW_EXPR,
    CXX_THROW_EXPR, virtual member calls, std::function::operator()).

Known, documented gaps of the textual frontend: constructor bodies do not
enter the graph via declarations (`IdleScope idle(...)`), calls through
raw function pointers are invisible — which is WHY every sink thunk
installed into an EmitSink/BatchEmitSink/BlockSink must itself be a
declared hot root — and amortized container growth (vector push_back /
rehash) is deliberately out of scope at source level; the binary backstop
(tools/analyze/check_hot_symbols.py) pins that down at symbol granularity.

Exit codes: 0 clean, 2 findings, 3 usage/internal error.

Usage:
  tools/analyze/dcd_deepcheck.py [--repo-root R] [--build-dir B]
      [--src-root DIR] [--roots name1,name2] [--rules r1,r2]
      [--report FILE] [--no-libclang] [files ignored]
  tools/analyze/dcd_deepcheck.py --selftest
  tools/analyze/dcd_deepcheck.py --check-roots
"""

import argparse
import os
import re
import subprocess
import sys
import tempfile

REPO_ROOT = os.path.normpath(
    os.path.join(os.path.dirname(os.path.abspath(__file__)), "..", ".."))

ALL_RULES = ("alloc", "mutex", "throw", "fn-call", "virtual")

# --- Hot-root registry -----------------------------------------------------
# Qualified as Class::Name (namespaces dropped); bare names are free
# functions. Every entry must exist in the parsed tree AND carry a
# DCD_HOT_ROOT annotation in source; every annotated function must be
# listed here (--check-roots enforces both directions).
#
# Function-pointer sinks (EmitSink / BatchEmitSink / BlockSink /
# SelfLoopSink) break the static call graph, so every thunk that can be
# installed into one is itself a root — that is the contract that keeps
# the analysis sound across the indirect-call boundary.
HOT_ROOTS = [
    # Merge path (§6.2.1): one call per gathered wire tuple.
    "RecursiveTable::MergeBatch",
    "RecursiveTable::MergeWire",
    # Flat open-addressing structures under the merge path.
    "FlatTupleSet::Find",
    "FlatTupleSet::Insert",
    "FlatGroupMap::FindOrInsert",
    # Batch rule pipeline (PR 6): per-lane / per-batch work.
    "BatchPipelineRunner::Push",
    "BatchPipelineRunner::RunBatch",
    "BatchPipelineRunner::Finish",
    # Tuple-at-a-time rule pipeline.
    "RunPipelineForTuple",
    "ExecuteFrom",
    # Distribute (§5.2.3): per derived tuple.
    "Distributor::Emit",
    "Distributor::EmitBatch",
    "Distributor::Flush",
    # Engine strategy loops and the per-iteration helpers (PR 7's
    # RunUpdateRules drives the incremental DRed path).
    "SccExecutor::LocalIteration",
    "SccExecutor::GatherAll",
    "SccExecutor::PushWithBackpressure",
    "SccExecutor::InactiveWait",
    "SccExecutor::GlobalLoop",
    "SccExecutor::SspLoop",
    "SccExecutor::DwsLoop",
    "SccExecutor::RunUpdateRules",
    # Morsel stealing (PR 10): publish/claim/execute/resolve all sit inside
    # the strategy wait loops — the claim CAS runs once per idle probe.
    "SccExecutor::PublishMorsels",
    "SccExecutor::TrySteal",
    "SccExecutor::RunMorsel",
    "SccExecutor::ResolveMorsels",
    "SccExecutor::TopUpMorsels",
    # Emit sinks: function-pointer boundary, see note above.
    "SccExecutor::EmitTupleThunk",
    "SccExecutor::EmitBatchThunk",
    "SccExecutor::DistSinkThunk",
    "SccExecutor::DistSelfSinkThunk",
    # SPSC rings: per block.
    "SpscQueue::TryPush",
    "SpscQueue::TryPop",
    "SpscQueue::PopBatch",
    # DWS queueing model (Algorithm 2): per drain / per iteration.
    "DwsController::Update",
    "DwsController::OnDrain",
    "DwsController::OnIteration",
    # Observability on the hot loops: per event / per sample.
    "TraceRing::Append",
    "LogHistogram::Add",
]

# Every EvalStats counter must name the hot function that feeds it (None
# for aggregates maintained by the cold per-SCC / per-batch drivers).
# --check-roots parses EvalStats::Counters() and fails when a counter is
# missing here — a new per-tuple counter cannot ship without registering
# the loop that bumps it, and that loop must be hot-reachable.
EVALSTATS_COUNTER_SITES = {
    "seconds": None,
    "num_sccs": None,
    "total_local_iterations": "SccExecutor::LocalIteration",
    "max_local_iterations": "SccExecutor::LocalIteration",
    "tuples_routed": "Distributor::Route",
    "tuples_folded": "Distributor::EmitResolved",
    "tuples_emitted": "Distributor::EmitResolved",
    "blocks_sent": "Distributor::SendBlock",
    "self_loop_tuples": "Distributor::Route",
    "merges": "RecursiveTable::MergeWire",
    "accepts": "RecursiveTable::MergeWire",
    "cache_hits": "RecursiveTable::CacheCheckDuplicate",
    "merge_probe_cmps": "RecursiveTable::MergeWire",
    "pipeline_batches": "BatchPipelineRunner::RunBatch",
    "pipeline_rows_selected": "BatchPipelineRunner::RunBatch",
    "idle_wait_seconds": "SccExecutor::InactiveWait",
    "trace_dropped": "TraceRing::Append",
    "update_batches": None,     # once per ApplyUpdates batch (cold driver)
    "delta_tuples_in": None,    # per-batch aggregate in the cold driver
    "rederived_tuples": None,   # per delete-phase batch (cold driver)
    "morsels_published": "SccExecutor::PublishMorsels",
    "morsels_stolen": "SccExecutor::TrySteal",
    "tuples_stolen": "SccExecutor::TrySteal",
    "pool_fallback_gangs": None,  # once per oversized gang (cold dispatch)
}


class Finding:
    def __init__(self, rule, path, line, message, trace=None):
        self.rule = rule
        self.path = path
        self.line = line
        self.message = message
        self.trace = trace or []

    def __str__(self):
        s = f"{self.path}:{self.line}: [{self.rule}] {self.message}"
        for hop in self.trace:
            s += f"\n    {hop}"
        return s


# --- Source preprocessing --------------------------------------------------

def strip_comments_and_strings(text):
    """Blanks comments and string/char literals, preserving line structure
    (same algorithm as tools/lint/dcd_lint.py)."""
    out = []
    i, n = 0, len(text)
    state = "code"
    while i < n:
        c = text[i]
        nxt = text[i + 1] if i + 1 < n else ""
        if state == "code":
            if c == "/" and nxt == "/":
                state = "line_comment"
                out.append("  ")
                i += 2
                continue
            if c == "/" and nxt == "*":
                state = "block_comment"
                out.append("  ")
                i += 2
                continue
            if c == '"':
                state = "string"
                out.append(" ")
                i += 1
                continue
            if c == "'":
                state = "char"
                out.append(" ")
                i += 1
                continue
            out.append(c)
        elif state == "line_comment":
            if c == "\n":
                state = "code"
                out.append("\n")
            else:
                out.append(" ")
        elif state == "block_comment":
            if c == "*" and nxt == "/":
                state = "code"
                out.append("  ")
                i += 2
                continue
            out.append("\n" if c == "\n" else " ")
        elif state == "string":
            if c == "\\":
                out.append("  ")
                i += 2
                continue
            if c == '"':
                state = "code"
            out.append(" " if c != "\n" else "\n")
        elif state == "char":
            if c == "\\":
                out.append("  ")
                i += 2
                continue
            if c == "'":
                state = "code"
            out.append(" " if c != "\n" else "\n")
        i += 1
    return "".join(out)


def blank_preprocessor_lines(code):
    """Blanks #directive lines (with backslash continuations) so macro
    bodies cannot unbalance the scope parser."""
    lines = code.split("\n")
    i = 0
    while i < len(lines):
        if lines[i].lstrip().startswith("#"):
            while True:
                cont = lines[i].rstrip().endswith("\\")
                lines[i] = ""
                if not cont or i + 1 >= len(lines):
                    break
                i += 1
        i += 1
    return "\n".join(lines)


# --- Function / scope parser -----------------------------------------------

CTRL_KEYWORDS = {
    "if", "for", "while", "switch", "catch", "return", "sizeof", "alignof",
    "decltype", "else", "do", "try", "new", "delete", "throw", "case",
    "default", "operator", "static_assert", "alignas", "noexcept",
    "co_await", "co_return", "co_yield", "assert", "defined", "requires",
}

FUNC_NAME_RE = re.compile(r"([A-Za-z_~][\w]*(?:\s*::\s*~?[A-Za-z_][\w]*)*)\s*$")
CLASS_RE = re.compile(
    r"^(?:typedef\s+)?(?:class|struct|union)\s+"
    r"(?:alignas\s*\([^)]*\)\s*)?(?:\[\[[^\]]*\]\]\s*)?([A-Za-z_]\w*)")
NAMESPACE_RE = re.compile(r"^(?:inline\s+)?namespace\b\s*([A-Za-z_]\w*)?")
TEMPLATE_PREFIX_RE = re.compile(r"^\s*template\s*<[^<>]*(?:<[^<>]*>[^<>]*)*>")


class FunctionDef:
    __slots__ = ("qname", "name", "cls", "rel", "prefix", "sig_line",
                 "body_start_line", "body", "body_offset", "calls",
                 "primitives", "hot_annotated")

    def __init__(self, qname, name, cls, rel):
        self.qname = qname
        self.name = name
        self.cls = cls
        self.rel = rel
        self.prefix = ""
        self.sig_line = 0
        self.body_start_line = 0
        self.body = ""
        self.body_offset = 0
        self.calls = []        # (callee FunctionDef, call line)
        self.primitives = []   # (rule, line, message)
        self.hot_annotated = False


class ClassInfo:
    __slots__ = ("name", "methods", "member_types", "fn_members")

    def __init__(self, name):
        self.name = name
        self.methods = set()
        self.member_types = {}   # var name -> class name (known classes)
        self.fn_members = set()  # std::function-typed member names


def classify_scope(prefix):
    """Classifies the text before a '{': ('namespace', name),
    ('class', name), ('function', qualified-name) or ('other', None)."""
    s = prefix.strip()
    s = TEMPLATE_PREFIX_RE.sub("", s).strip()
    if not s:
        return ("other", None)
    m = NAMESPACE_RE.match(s)
    if m:
        return ("namespace", m.group(1) or "")
    if re.match(r"^enum\b", s):
        return ("other", None)
    m = CLASS_RE.match(s)
    if m and "(" not in s.split(m.group(1))[0]:
        return ("class", m.group(1))
    idx = s.find("(")
    if idx < 0:
        return ("other", None)
    head = s[:idx].rstrip()
    m = FUNC_NAME_RE.search(head)
    if m is None:
        return ("other", None)
    name = re.sub(r"\s+", "", m.group(1))
    base = name.split("::")[-1].lstrip("~")
    if base in CTRL_KEYWORDS or name.split("::")[0] in CTRL_KEYWORDS:
        return ("other", None)
    # A top-level '=' before the name means an initializer, not a def.
    depth = 0
    for i, c in enumerate(s[:idx]):
        if c in "(<[":
            depth += 1
        elif c in ")>]":
            depth = max(0, depth - 1)
        elif c == "=" and depth == 0:
            if i + 1 < len(s) and s[i + 1] == "=":
                continue
            if i > 0 and s[i - 1] in "<>!=+-*/&|^":
                continue
            return ("other", None)
    return ("function", name)


def parse_functions(code, rel):
    """Parses stripped code into FunctionDef records with body spans."""
    funcs = []
    stack = []  # (kind, name, body_start_index, prefix, stmt_start)
    stmt_start = 0
    paren_depth = 0
    i, n = 0, len(code)
    while i < n:
        c = code[i]
        if c == "(":
            paren_depth += 1
        elif c == ")":
            paren_depth = max(0, paren_depth - 1)
        elif c == ";" and paren_depth == 0:
            stmt_start = i + 1
        elif c == "{":
            if paren_depth > 0:
                stack.append(("other", None, i, "", stmt_start))
            else:
                prefix = code[stmt_start:i]
                kind, name = classify_scope(prefix)
                stack.append((kind, name, i, prefix, stmt_start))
            paren_depth = 0
            stmt_start = i + 1
        elif c == "}":
            paren_depth = 0
            if stack:
                kind, name, start, prefix, pstart = stack.pop()
                if kind == "function":
                    cls = None
                    if "::" in name:
                        parts = name.split("::")
                        cls, fname = parts[-2], parts[-1]
                        qname = f"{cls}::{fname}"
                    else:
                        fname = name
                        for k, nm, _, _, _ in reversed(stack):
                            if k == "class":
                                cls = nm
                                break
                        qname = f"{cls}::{fname}" if cls else fname
                    fd = FunctionDef(qname, fname, cls, rel)
                    fd.prefix = prefix
                    fd.sig_line = code.count("\n", 0, pstart) + 1
                    fd.body_start_line = code.count("\n", 0, start) + 1
                    fd.body = code[start + 1:i]
                    fd.body_offset = start + 1
                    funcs.append(fd)
            stmt_start = i + 1
        i += 1
    return funcs


# --- Declarations: member types, std::function variables, virtuals ---------

FN_ALIAS_RE = re.compile(r"using\s+(\w+)\s*=\s*std\s*::\s*function\b")
VIRTUAL_DECL_RE = re.compile(r"\bvirtual\b[^;{=()]*?([A-Za-z_]\w*)\s*\(")
MEMBER_DECL_RE = re.compile(
    r"(?:^|[;{}]\s*|\n\s*)(?:mutable\s+|static\s+|const\s+|constexpr\s+)*"
    r"(std\s*::\s*unique_ptr|std\s*::\s*shared_ptr|[A-Za-z_][\w:]*)"
    r"\s*(?:<\s*([A-Za-z_][\w:]*)[^;{}()]*>)?\s*"
    r"(?:const\s*)?[&*]?\s*(\w+)\s*(?:=[^;{}]*|\{[^;{}]*\})?\s*;")
LOCAL_DECL_RE = re.compile(
    r"(?:^|[;{}()]\s*|\n\s*)(?:const\s+)?"
    r"(std\s*::\s*unique_ptr|std\s*::\s*shared_ptr|[A-Za-z_][\w:]*)"
    r"\s*(?:<\s*([A-Za-z_][\w:]*)[^;{}()]*>)?\s*"
    r"(?:const\s*)?[&*]+?\s*(\w+)\s*[=;({]")
PARAM_DECL_RE = re.compile(
    r"(?:const\s+)?([A-Za-z_][\w:]*)\s*(?:<[^()]*?>)?\s*"
    r"(?:const\s*)?[&*]?\s*(\w+)\s*(?:[,)=]|$)")


def base_type(name, template_arg, known_classes):
    """Maps a declaration's spelled type to a known class name, unwrapping
    smart pointers and dropping namespace qualifiers."""
    name = re.sub(r"\s+", "", name or "")
    if name in ("std::unique_ptr", "std::shared_ptr"):
        name = re.sub(r"\s+", "", template_arg or "")
    short = name.split("::")[-1]
    if short in known_classes:
        return short
    return None


# --- Primitive patterns ----------------------------------------------------

ALLOC_RE = re.compile(
    r"(?<![\w.])new\b(?!\s*\()|(?<![\w.])new\s*\(|\bmalloc\s*\(|\bcalloc\s*\("
    r"|\brealloc\s*\(|\bmake_unique\b|\bmake_shared\b|\bstrdup\s*\(")
MUTEX_RE = re.compile(
    r"\bstd\s*::\s*(?:recursive_|shared_|timed_)?mutex\b"
    r"|\b(?:lock_guard|unique_lock|scoped_lock|shared_lock)\b"
    r"|\bcondition_variable\b|\bMutexLock\b"
    r"|(?:\.|->)\s*(?:Lock|lock|try_lock)\s*\("
    r"|\bpthread_mutex_lock\b|\bsleep_for\b|\bsleep_until\b"
    r"|\busleep\b|\bnanosleep\b")
THROW_RE = re.compile(r"\bthrow\b")

PRIMITIVE_RULES = [
    ("alloc", ALLOC_RE, "raw heap allocation on a hot path"),
    ("mutex", MUTEX_RE, "lock/blocking primitive on a hot path"),
    ("throw", THROW_RE, "throw on a hot path"),
]

CALL_RE = re.compile(r"(?:(\w+)\s*(?:\.|->)\s*)?([A-Za-z_]\w*)\s*\(")
QUAL_CALL_RE = re.compile(r"\b(\w+)\s*::\s*(\w+)\s*\(")

# --- Annotations -----------------------------------------------------------

HOT_ROOT_RE = re.compile(r"\bDCD_HOT_ROOT\b")
COLD_CALL_RE = re.compile(r"\bDCD_COLD_CALL\s*\(")
COLD_CALL_RAW_RE = re.compile(r"DCD_COLD_CALL\s*\(\s*\"((?:[^\"\\]|\\.)*)\"",
                              re.S)
MIN_JUSTIFICATION = 15


class SourceFile:
    def __init__(self, path, rel):
        self.path = path
        self.rel = rel
        with open(path, "r", encoding="utf-8", errors="replace") as f:
            self.raw = f.read()
        self.raw_lines = self.raw.split("\n")
        stripped = strip_comments_and_strings(self.raw)
        self.code = blank_preprocessor_lines(stripped)
        self.code_lines = self.code.split("\n")
        self.cold_lines = set()       # lines suppressed by DCD_COLD_CALL
        self.annotation_errors = []   # Finding list

    def scan_annotations(self):
        """Resolves each DCD_COLD_CALL to the line set it suppresses (its
        own line plus the next code-bearing line) and validates the
        justification from the raw text."""
        for m in COLD_CALL_RE.finditer(self.code):
            lineno = self.code.count("\n", 0, m.start()) + 1
            raw_from = "\n".join(self.raw_lines[lineno - 1:lineno + 3])
            jm = COLD_CALL_RAW_RE.search(raw_from)
            if jm is None or len(jm.group(1).strip()) < MIN_JUSTIFICATION:
                self.annotation_errors.append(Finding(
                    "cold-justification", self.rel, lineno,
                    "DCD_COLD_CALL without a justification (need a string "
                    f"literal of at least {MIN_JUSTIFICATION} characters "
                    "saying why this call is not per-tuple work)"))
                continue
            self.cold_lines.add(lineno)
            # Suppress the next code-bearing line (skipping blank and
            # comment-only lines, which the stripping already blanked).
            for nxt in range(lineno + 1, min(lineno + 5,
                                             len(self.code_lines) + 1)):
                text = self.code_lines[nxt - 1].strip()
                if not text:
                    continue
                if text.startswith("DCD_COLD_CALL"):
                    break  # Let the next annotation claim its own target.
                self.cold_lines.add(nxt)
                break


# --- Whole-program model ---------------------------------------------------

class Program:
    def __init__(self):
        self.files = {}          # rel -> SourceFile
        self.funcs = []          # all FunctionDef
        self.by_qname = {}       # qname -> [FunctionDef]
        self.by_base = {}        # bare name -> [FunctionDef]
        self.classes = {}        # class name -> ClassInfo
        self.fn_aliases = set()  # aliases of std::function
        self.virtual_names = set()

    def add_file(self, sf):
        self.files[sf.rel] = sf

    def build(self):
        # Pass 1: aliases and virtual declarations (repo-global).
        for sf in self.files.values():
            self.fn_aliases.update(FN_ALIAS_RE.findall(sf.code))
            self.virtual_names.update(VIRTUAL_DECL_RE.findall(sf.code))
        # Pass 2: functions and class method sets.
        for sf in self.files.values():
            for fd in parse_functions(sf.code, sf.rel):
                fd.hot_annotated = bool(HOT_ROOT_RE.search(fd.prefix))
                self.funcs.append(fd)
                self.by_qname.setdefault(fd.qname, []).append(fd)
                self.by_base.setdefault(fd.name, []).append(fd)
                if fd.cls:
                    self.classes.setdefault(
                        fd.cls, ClassInfo(fd.cls)).methods.add(fd.name)
        # Pass 3: member declarations per class (types + std::function).
        for sf in self.files.values():
            self._scan_members(sf)
        # Pass 4: call edges and primitives per function body.
        for fd in self.funcs:
            sf = self.files[fd.rel]
            self._scan_body(sf, fd)

    def _scan_members(self, sf):
        # Re-run the scope parser to attribute member declarations to their
        # class bodies (function bodies are excluded so locals don't leak
        # into the member map).
        class_spans = []
        stack = []
        stmt_start = 0
        paren_depth = 0
        code = sf.code
        for i, c in enumerate(code):
            if c == "(":
                paren_depth += 1
            elif c == ")":
                paren_depth = max(0, paren_depth - 1)
            elif c == ";" and paren_depth == 0:
                stmt_start = i + 1
            elif c == "{":
                if paren_depth > 0:
                    stack.append(("other", None, i))
                else:
                    kind, name = classify_scope(code[stmt_start:i])
                    stack.append((kind, name, i))
                paren_depth = 0
                stmt_start = i + 1
            elif c == "}":
                paren_depth = 0
                if stack:
                    kind, name, start = stack.pop()
                    if kind == "class" and name:
                        class_spans.append((name, start + 1, i))
                stmt_start = i + 1
        for name, start, end in class_spans:
            info = self.classes.setdefault(name, ClassInfo(name))
            body = code[start:end]
            # Mask nested braces (methods, nested classes) so only direct
            # member declarations match.
            masked = mask_nested_braces(body)
            for m in MEMBER_DECL_RE.finditer(masked):
                tname, targ, var = m.group(1), m.group(2), m.group(3)
                tclean = re.sub(r"\s+", "", tname)
                if tclean == "std::function" or tclean in self.fn_aliases:
                    info.fn_members.add(var)
                    continue
                bt = base_type(tname, targ, self.classes)
                if bt:
                    info.member_types[var] = bt
            for m in re.finditer(
                    r"std\s*::\s*function\s*<[^;]*>\s*(\w+)\s*;", masked):
                info.fn_members.add(m.group(1))

    def _local_types(self, fd):
        """Receiver types for locals and parameters of one function."""
        types = {}
        fn_vars = set()
        paren = fd.prefix.find("(")
        params = fd.prefix[paren:] if paren >= 0 else ""
        for text in (params, fd.body):
            for m in MEMBER_DECL_RE.finditer(text):
                bt = base_type(m.group(1), m.group(2), self.classes)
                if bt:
                    types[m.group(3)] = bt
                tclean = re.sub(r"\s+", "", m.group(1))
                if tclean == "std::function" or tclean in self.fn_aliases:
                    fn_vars.add(m.group(3))
            for m in LOCAL_DECL_RE.finditer(text):
                bt = base_type(m.group(1), m.group(2), self.classes)
                if bt:
                    types[m.group(3)] = bt
        for m in PARAM_DECL_RE.finditer(params):
            tclean = re.sub(r"\s+", "", m.group(1))
            if tclean.split("::")[-1] == "function" or \
                    tclean in self.fn_aliases:
                fn_vars.add(m.group(2))
            bt = base_type(m.group(1), None, self.classes)
            if bt:
                types[m.group(2)] = bt
        return types, fn_vars

    def _scan_body(self, sf, fd):
        body = fd.body
        off = fd.body_offset
        local_types, local_fn_vars = self._local_types(fd)
        cls_info = self.classes.get(fd.cls) if fd.cls else None

        def line_of(pos):
            return sf.code.count("\n", 0, off + pos) + 1

        # Primitives by pattern.
        for rule, pattern, msg in PRIMITIVE_RULES:
            for m in pattern.finditer(body):
                fd.primitives.append((rule, line_of(m.start()), msg))

        seen_calls = set()
        # Qualified calls: Class::Name(...).
        for m in QUAL_CALL_RE.finditer(body):
            cls, name = m.group(1), m.group(2)
            qname = f"{cls}::{name}"
            for target in self.by_qname.get(qname, []):
                key = (id(target), line_of(m.start()))
                if key not in seen_calls:
                    seen_calls.add(key)
                    fd.calls.append((target, line_of(m.start())))

        for m in CALL_RE.finditer(body):
            recv, name = m.group(1), m.group(2)
            lineno = line_of(m.start(2))
            if name in CTRL_KEYWORDS:
                continue
            # A call whose receiver expression is too complex for the
            # receiver capture (`snapshots[r].size()`, `Foo().Bar()`) is
            # still recognizably a member/qualified call by the character
            # before the name; mark it so resolution never guesses a
            # member target by bare name.
            unparsed_member = False
            if recv is None:
                before = body[:m.start(2)].rstrip()
                if before.endswith("::"):
                    continue  # Qualified; QUAL_CALL_RE owns these.
                if before.endswith((".", "->")):
                    unparsed_member = True
            # std::function invocation: member of this class or a local.
            if recv is None and not unparsed_member and (
                    name in local_fn_vars or
                    (cls_info and name in cls_info.fn_members)):
                fd.primitives.append((
                    "fn-call", lineno,
                    f"std::function '{name}' invoked (type-erased target; "
                    "use a {fn, ctx} function-pointer sink like EmitSink)"))
                continue
            if recv is not None:
                rt = local_types.get(recv)
                if rt is None and cls_info:
                    rt = cls_info.member_types.get(recv)
                if rt is not None:
                    rinfo = self.classes.get(rt)
                    if rinfo and name in rinfo.fn_members:
                        fd.primitives.append((
                            "fn-call", lineno,
                            f"std::function '{rt}::{name}' invoked"))
                        continue
            # Virtual dispatch by declared-virtual method name.
            if name in self.virtual_names:
                fd.primitives.append((
                    "virtual", lineno,
                    f"virtual dispatch through {name}() (declared virtual; "
                    "devirtualize or justify with DCD_COLD_CALL)"))
                continue
            targets = self._resolve(fd, recv, name, local_types, cls_info,
                                    unparsed_member)
            for target in targets:
                key = (id(target), lineno)
                if key not in seen_calls:
                    seen_calls.add(key)
                    fd.calls.append((target, lineno))

    def _resolve(self, fd, recv, name, local_types, cls_info,
                 unparsed_member=False):
        if recv == "this":
            recv = None
        if recv is not None:
            rt = local_types.get(recv)
            if rt is None and cls_info:
                rt = cls_info.member_types.get(recv)
            if rt is not None:
                # Receiver type known: method of that class, or foreign
                # (std:: container etc.) — never fall through to the
                # all-candidates set, that is what keeps BTree::Insert from
                # polluting FlatTupleSet::Insert call sites.
                return self.by_qname.get(f"{rt}::{name}", [])
            # Member call with no type evidence: never guess the target by
            # bare name (a stray `.size()` on a std::vector must not link
            # to an unrelated class's size()). The hot-root registry exists
            # precisely so entry points stay covered across such gaps —
            # every function a complex-receiver call can enter is either a
            # registered root or reached through a typed edge.
            return []
        if unparsed_member:
            return []
        if fd.cls and cls_info and name in cls_info.methods:
            return self.by_qname.get(f"{fd.cls}::{name}", [])
        # Bare call: free functions only (a foreign class's method cannot
        # be called without a receiver).
        return [c for c in self.by_base.get(name, []) if c.cls is None]


def mask_nested_braces(body):
    """Replaces the content of nested {...} regions with spaces so regexes
    see only the top level of a class body."""
    out = []
    depth = 0
    for c in body:
        if c == "{":
            depth += 1
            out.append(" ")
        elif c == "}":
            depth = max(0, depth - 1)
            out.append(" ")
        elif depth > 0:
            out.append("\n" if c == "\n" else " ")
        else:
            out.append(c)
    return "".join(out)


# --- Reachability ----------------------------------------------------------

def compute_reachability(program, roots):
    """BFS over call edges from the root set, honoring DCD_COLD_CALL edge
    cuts. Returns {FunctionDef: (parent FunctionDef|None, call line)}."""
    parent = {}
    queue = []
    for fd in roots:
        if fd not in parent:
            parent[fd] = (None, 0)
            queue.append(fd)
    while queue:
        fd = queue.pop(0)
        sf = program.files[fd.rel]
        for callee, line in fd.calls:
            if line in sf.cold_lines:
                continue
            if callee not in parent:
                parent[callee] = (fd, line)
                queue.append(callee)
    return parent


def trace_for(program, parent, fd):
    hops = []
    cur = fd
    while cur is not None:
        par, line = parent[cur]
        where = f"{cur.rel}:{cur.body_start_line}"
        if par is None:
            hops.append(f"{cur.qname} ({where}) [hot root]")
        else:
            hops.append(f"{cur.qname} ({where}) [called at {par.rel}:{line}]")
        cur = par
    hops.reverse()
    return ["reachability: " + hops[0]] + ["  -> " + h for h in hops[1:]]


def analyze(program, roots, rules):
    findings = []
    for sf in program.files.values():
        findings.extend(sf.annotation_errors)
    parent = compute_reachability(program, roots)
    for fd in sorted(parent.keys(), key=lambda f: (f.rel, f.body_start_line)):
        sf = program.files[fd.rel]
        for rule, line, msg in fd.primitives:
            if rule not in rules:
                continue
            if line in sf.cold_lines:
                continue
            findings.append(Finding(
                rule, fd.rel, line, f"{msg} (in {fd.qname})",
                trace=trace_for(program, parent, fd)))
    return findings, parent


# --- libclang precision layer ----------------------------------------------

def run_libclang_layer(program, repo_root, build_dir):
    """AST-exact edges and primitives over compile_commands.json. Entirely
    optional: self-skips with a notice when the clang python bindings or
    the compilation database are absent, and downgrades internal failures
    to a notice so a broken clang install cannot mask the textual layer."""
    try:
        import clang.cindex as ci
    except ImportError:
        print("deepcheck: python clang bindings not found; skipping "
              "libclang layer (runs in CI)")
        return
    cc_path = os.path.join(build_dir or "", "compile_commands.json")
    if not build_dir or not os.path.exists(cc_path):
        print("deepcheck: no compile_commands.json; skipping libclang layer")
        return
    try:
        index = ci.Index.create()
        db = ci.CompilationDatabase.fromDirectory(build_dir)
    except Exception as e:  # noqa: BLE001 - любой clang setup failure
        print(f"deepcheck: libclang unavailable ({e}); skipping layer")
        return

    def containing_func(rel, line):
        best = None
        for fd in program.funcs:
            if fd.rel != rel:
                continue
            if fd.sig_line <= line:
                if best is None or fd.sig_line > best.sig_line:
                    end = fd.body_start_line + fd.body.count("\n")
                    if line <= end + 1:
                        best = fd
        return best

    kinds = ci.CursorKind
    added = 0
    tus = 0
    try:
        for cmd in db.getAllCompileCommands():
            path = os.path.normpath(
                os.path.join(cmd.directory, cmd.filename))
            rel = os.path.relpath(path, repo_root).replace(os.sep, "/")
            if rel not in program.files:
                continue
            args = [a for a in list(cmd.arguments)[1:]
                    if a not in (cmd.filename, "-c", "-o")][:-1]
            try:
                tu = index.parse(path, args=args)
            except Exception as e:  # noqa: BLE001
                print(f"deepcheck: libclang failed on {rel} ({e}); skipped")
                continue
            tus += 1
            for cur in tu.cursor.walk_preorder():
                if cur.location.file is None:
                    continue
                cur_rel = os.path.relpath(
                    str(cur.location.file), repo_root).replace(os.sep, "/")
                if cur_rel not in program.files:
                    continue
                fd = None
                if cur.kind == kinds.CXX_NEW_EXPR:
                    fd = containing_func(cur_rel, cur.location.line)
                    if fd:
                        fd.primitives.append((
                            "alloc", cur.location.line,
                            "operator new (libclang)"))
                        added += 1
                elif cur.kind == kinds.CXX_THROW_EXPR:
                    fd = containing_func(cur_rel, cur.location.line)
                    if fd:
                        fd.primitives.append((
                            "throw", cur.location.line, "throw (libclang)"))
                        added += 1
                elif cur.kind == kinds.CALL_EXPR:
                    ref = cur.referenced
                    if ref is None:
                        continue
                    fd = containing_func(cur_rel, cur.location.line)
                    if fd is None:
                        continue
                    if ref.kind == kinds.CXX_METHOD and \
                            ref.is_virtual_method():
                        fd.primitives.append((
                            "virtual", cur.location.line,
                            f"virtual call to {ref.spelling} (libclang)"))
                        added += 1
                    sem = ref.semantic_parent
                    if ref.spelling == "operator()" and sem is not None \
                            and "function<" in (sem.displayname or ""):
                        fd.primitives.append((
                            "fn-call", cur.location.line,
                            "std::function::operator() (libclang)"))
                        added += 1
                    # Precise intra-repo call edge.
                    rdef = ref.get_definition() or ref
                    if rdef.location.file is not None:
                        rrel = os.path.relpath(
                            str(rdef.location.file),
                            repo_root).replace(os.sep, "/")
                        if rrel in program.files:
                            callee = containing_func(
                                rrel, rdef.location.line + 1)
                            if callee is not None and \
                                    callee.name == ref.spelling:
                                fd.calls.append(
                                    (callee, cur.location.line))
    except Exception as e:  # noqa: BLE001
        print(f"deepcheck: libclang layer aborted ({e}); textual results "
              "stand alone for this run")
        return
    print(f"deepcheck: libclang layer parsed {tus} TU(s), "
          f"{added} AST primitive(s)/edge(s) added")


# --- Root resolution -------------------------------------------------------

def resolve_roots(program, registry, extra, use_registry):
    roots = []
    errors = []
    if use_registry:
        for qname in registry:
            defs = program.by_qname.get(qname, [])
            if not defs:
                errors.append(Finding(
                    "root-missing", "<registry>", 0,
                    f"declared hot root '{qname}' not found in the parsed "
                    "tree (renamed? update HOT_ROOTS in dcd_deepcheck.py)"))
            roots.extend(defs)
    for qname in extra:
        defs = program.by_qname.get(qname, []) or \
            program.by_base.get(qname, [])
        if not defs:
            errors.append(Finding(
                "root-missing", "<cli>", 0,
                f"--roots entry '{qname}' not found"))
        roots.extend(defs)
    for fd in program.funcs:
        if fd.hot_annotated and fd not in roots:
            roots.append(fd)
    return roots, errors


def check_roots(program):
    """Bidirectional pin: registry <-> DCD_HOT_ROOT annotations, plus the
    EvalStats counter-site map."""
    findings = []
    annotated = {fd.qname for fd in program.funcs if fd.hot_annotated}
    registry = set(HOT_ROOTS)
    for qname in sorted(registry - annotated):
        where = program.by_qname.get(qname)
        findings.append(Finding(
            "root-pin", where[0].rel if where else "<registry>",
            where[0].sig_line if where else 0,
            f"hot root '{qname}' is in the registry but carries no "
            "DCD_HOT_ROOT annotation in source"))
    for qname in sorted(annotated - registry):
        fds = program.by_qname[qname]
        findings.append(Finding(
            "root-pin", fds[0].rel, fds[0].sig_line,
            f"'{qname}' is annotated DCD_HOT_ROOT but absent from the "
            "HOT_ROOTS registry in tools/analyze/dcd_deepcheck.py — "
            "register it so its transitive callees are verified"))
    # EvalStats counter sites.
    counters = []
    for fd in program.by_qname.get("EvalStats::Counters", []):
        counters.extend(re.findall(r'\{\s*"(\w+)"', self_raw_body(program, fd)))
    if not counters:
        findings.append(Finding(
            "root-pin", "src/core/engine.cc", 0,
            "could not parse EvalStats::Counters() — counter-site pinning "
            "has no input"))
    roots, _ = resolve_roots(program, HOT_ROOTS, [], True)
    parent = compute_reachability(program, roots)
    reachable = {fd.qname for fd in parent}
    for counter in counters:
        if counter not in EVALSTATS_COUNTER_SITES:
            findings.append(Finding(
                "root-pin", "src/core/engine.cc", 0,
                f"EvalStats counter '{counter}' has no entry in "
                "EVALSTATS_COUNTER_SITES — register the hot loop that "
                "feeds it (or map it to None if a cold driver owns it)"))
            continue
        site = EVALSTATS_COUNTER_SITES[counter]
        if site is None:
            continue
        if site not in program.by_qname:
            findings.append(Finding(
                "root-pin", "<registry>", 0,
                f"counter '{counter}' maps to '{site}' which does not "
                "exist in the parsed tree"))
        elif site not in reachable:
            findings.append(Finding(
                "root-pin", "<registry>", 0,
                f"counter '{counter}' is fed by '{site}' which is not "
                "hot-reachable — a per-tuple counter outside the proven "
                "hot-path set means an unregistered hot loop"))
    for counter in EVALSTATS_COUNTER_SITES:
        if counters and counter not in counters:
            findings.append(Finding(
                "root-pin", "<registry>", 0,
                f"EVALSTATS_COUNTER_SITES lists '{counter}' which "
                "EvalStats::Counters() no longer reports"))
    return findings


def self_raw_body(program, fd):
    """The function body's raw text, located by line span: the stripped
    code keeps line structure but not byte offsets (preprocessor blanking
    shortens lines), so offsets into `code` don't index into `raw`."""
    sf = program.files[fd.rel]
    first = fd.body_start_line - 1
    last = first + fd.body.count("\n") + 1
    return "\n".join(sf.raw_lines[first:last])


# --- Discovery and driver --------------------------------------------------

def discover_files(src_root):
    rels = []
    for dirpath, _, filenames in os.walk(src_root):
        for fn in sorted(filenames):
            if fn.endswith((".h", ".cc", ".cpp", ".hpp")):
                rels.append(os.path.relpath(os.path.join(dirpath, fn),
                                            src_root))
    return sorted(rels)


def load_program(src_root, prefix=""):
    program = Program()
    for rel in discover_files(src_root):
        shown = (prefix + rel).replace(os.sep, "/")
        sf = SourceFile(os.path.join(src_root, rel), shown)
        sf.scan_annotations()
        program.add_file(sf)
    program.build()
    return program


def run_analysis(args):
    repo_root = os.path.abspath(args.repo_root)
    if args.src_root:
        src_root = os.path.abspath(args.src_root)
        prefix = ""
        use_registry = False
    else:
        src_root = os.path.join(repo_root, "src")
        prefix = "src/"
        use_registry = True
    if not os.path.isdir(src_root):
        print(f"deepcheck: source root '{src_root}' not found",
              file=sys.stderr)
        return 3

    rules = [r.strip() for r in args.rules.split(",") if r.strip()]
    unknown = [r for r in rules if r not in ALL_RULES]
    if unknown:
        print(f"deepcheck: unknown rule(s): {', '.join(unknown)}",
              file=sys.stderr)
        return 3

    program = load_program(src_root, prefix)
    build_dir = args.build_dir
    if build_dir is None and use_registry:
        candidate = os.path.join(repo_root, "build")
        if os.path.exists(os.path.join(candidate, "compile_commands.json")):
            build_dir = candidate
    if not args.no_libclang:
        run_libclang_layer(program, repo_root, build_dir)

    extra = [r.strip() for r in (args.roots or "").split(",") if r.strip()]
    roots, root_errors = resolve_roots(program, HOT_ROOTS, extra,
                                       use_registry)
    findings, parent = analyze(program, roots, rules)
    findings.extend(root_errors)
    if args.check_roots:
        findings.extend(check_roots(program))

    out_lines = [str(f) for f in findings]
    report = "\n".join(out_lines)
    if args.report:
        with open(args.report, "w", encoding="utf-8") as f:
            f.write(f"dcd_deepcheck report: {len(findings)} finding(s), "
                    f"{len(roots)} root(s), {len(parent)} reachable "
                    f"function(s), {len(program.funcs)} parsed\n")
            if report:
                f.write(report + "\n")
    if findings:
        print(report)
        print(f"deepcheck: {len(findings)} finding(s)")
        return 2
    print(f"deepcheck: OK ({len(program.files)} files, "
          f"{len(program.funcs)} functions, {len(roots)} hot roots, "
          f"{len(parent)} reachable, rules: {', '.join(rules)})")
    return 0


# --- Self-test -------------------------------------------------------------

SELFTEST_CASES = {
    # Interprocedural alloc: the violation is two hops from the root.
    "alloc": (
        "void Deep() { int* p = new int[64]; delete[] p; }\n"
        "void Helper() { Deep(); }\n"
        "DCD_HOT_ROOT void Root() { Helper(); }\n",
        "void Deep() { int* p = new int[64]; delete[] p; }\n"
        "void Helper() {\n"
        "  DCD_COLD_CALL(\"setup-only scratch growth, once per batch\");\n"
        "  Deep();\n"
        "}\n"
        "DCD_HOT_ROOT void Root() { Helper(); }\n"),
    "mutex": (
        "#include <mutex>\n"
        "std::mutex mu;\n"
        "void Helper() { std::lock_guard<std::mutex> lock(mu); }\n"
        "DCD_HOT_ROOT void Root() { Helper(); }\n",
        "void Helper() { }\n"
        "DCD_HOT_ROOT void Root() { Helper(); }\n"),
    "throw": (
        "void Helper(int x) { if (x < 0) throw 42; }\n"
        "DCD_HOT_ROOT void Root() { Helper(1); }\n",
        "void Helper(int x) { (void)x; }\n"
        "DCD_HOT_ROOT void Root() { Helper(1); }\n"),
    "fn-call": (
        "#include <functional>\n"
        "struct S {\n"
        "  std::function<void(int)> cb;\n"
        "  DCD_HOT_ROOT void Root() { cb(7); }\n"
        "};\n",
        "struct S {\n"
        "  using Fn = void (*)(void*, int);\n"
        "  Fn fn = nullptr;\n"
        "  void* ctx = nullptr;\n"
        "  DCD_HOT_ROOT void Root() { fn(ctx, 7); }\n"
        "};\n"),
    "virtual": (
        "struct Base { virtual void Step(); };\n"
        "struct S {\n"
        "  Base* b;\n"
        "  DCD_HOT_ROOT void Root() { b->Step(); }\n"
        "};\n",
        "struct Base { virtual void Step(); };\n"
        "struct S {\n"
        "  Base* b;\n"
        "  DCD_HOT_ROOT void Root() {\n"
        "    DCD_COLD_CALL(\"monomorphic in practice, cold config path\");\n"
        "    b->Step();\n"
        "  }\n"
        "};\n"),
}


def run_selftest():
    failures = []
    me = os.path.abspath(__file__)
    with tempfile.TemporaryDirectory(prefix="dcd_deepcheck_selftest.") as tmp:
        def run_on(name, text):
            d = os.path.join(tmp, name)
            os.makedirs(d, exist_ok=True)
            with open(os.path.join(d, "case.cc"), "w") as f:
                f.write(text)
            return subprocess.run(
                [sys.executable, me, "--src-root", d, "--no-libclang"],
                capture_output=True, text=True)

        for case, (bad, good) in SELFTEST_CASES.items():
            bad_run = run_on(f"{case}_bad", bad)
            good_run = run_on(f"{case}_good", good)
            if bad_run.returncode != 2:
                failures.append(
                    f"{case}: seeded violation NOT caught "
                    f"(exit {bad_run.returncode})\n{bad_run.stdout}")
            elif f"[{case}]" not in bad_run.stdout:
                failures.append(
                    f"{case}: caught, but not as rule '{case}'\n"
                    f"{bad_run.stdout}")
            elif "reachability:" not in bad_run.stdout or \
                    "Root" not in bad_run.stdout:
                failures.append(
                    f"{case}: no reachability trace printed\n"
                    f"{bad_run.stdout}")
            if good_run.returncode != 0:
                failures.append(
                    f"{case}: clean twin wrongly flagged "
                    f"(exit {good_run.returncode})\n{good_run.stdout}")

        # The alloc trace must show the full 2-hop chain.
        deep = run_on("trace", SELFTEST_CASES["alloc"][0])
        if not ("Root" in deep.stdout and "Helper" in deep.stdout and
                "Deep" in deep.stdout):
            failures.append(f"trace: chain Root->Helper->Deep not printed\n"
                            f"{deep.stdout}")

        # Annotation mechanics: a justification-free DCD_COLD_CALL is an
        # error even when it would otherwise silence a finding.
        bare = (
            "void Helper() { int* p = new int[8]; delete[] p; }\n"
            "DCD_HOT_ROOT void Root() {\n"
            "  DCD_COLD_CALL(\"\");\n"
            "  Helper();\n"
            "}\n")
        bare_run = run_on("bare", bare)
        if bare_run.returncode != 2 or \
                "cold-justification" not in bare_run.stdout:
            failures.append(
                f"bare-justification: expected cold-justification error "
                f"(exit {bare_run.returncode})\n{bare_run.stdout}")

        # An unreachable violation must NOT fire: only hot-rooted paths are
        # held to the purity rules.
        cold = (
            "void ColdSetup() { int* p = new int[8]; delete[] p; }\n"
            "DCD_HOT_ROOT void Root() { }\n")
        cold_run = run_on("cold", cold)
        if cold_run.returncode != 0:
            failures.append(
                f"unreachable: cold allocation wrongly flagged "
                f"(exit {cold_run.returncode})\n{cold_run.stdout}")

    if failures:
        print("deepcheck self-test FAILED:")
        for f in failures:
            print("  " + f.replace("\n", "\n  "))
        return 1
    print(f"deepcheck self-test OK: {len(SELFTEST_CASES)} seeded violation "
          "classes caught with traces, clean twins pass, justification "
          "mandatory, unreachable code exempt")
    return 0


# --- Main ------------------------------------------------------------------

def main():
    parser = argparse.ArgumentParser(
        description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter)
    parser.add_argument("--repo-root", default=REPO_ROOT)
    parser.add_argument("--build-dir", default=None,
                        help="build dir containing compile_commands.json")
    parser.add_argument("--src-root", default=None,
                        help="analyze this tree instead of <repo>/src "
                             "(disables the built-in root registry; roots "
                             "come from DCD_HOT_ROOT annotations)")
    parser.add_argument("--roots", default="",
                        help="comma-separated extra root names")
    parser.add_argument("--rules", default=",".join(ALL_RULES))
    parser.add_argument("--report", default=None,
                        help="also write findings to this file")
    parser.add_argument("--no-libclang", action="store_true")
    parser.add_argument("--selftest", action="store_true")
    parser.add_argument("--check-roots", action="store_true",
                        help="also verify registry<->annotation agreement "
                             "and the EvalStats counter-site pin")
    args = parser.parse_args()
    if args.selftest:
        sys.exit(run_selftest())
    sys.exit(run_analysis(args))


if __name__ == "__main__":
    main()
