#!/usr/bin/env python3
"""Binary-level hot-path purity backstop.

The source-level analyzer (tools/analyze/dcd_deepcheck.py) proves purity
over the call graph it can see; this check closes the gap it can't: after
inlining, does any *hot function's own body* in the optimized binary still
make a direct call to an allocator, a lock, or a sleep? Container growth
the textual rules deliberately ignore (vector push_back, flat-table
Rehash) either stays behind a named local symbol (_M_realloc_insert,
Rehash — DCD_COLD_FN keeps it out-of-line) or inlines as a direct
`call operator new` on the doubling branch; the former is allowed
implicitly, the latter needs an entry in ALLOWED_CALLS below with a
justification — the binary-level analog of DCD_COLD_CALL. Locks, waits,
and sleeps have no allowance mechanism: a `call pthread_mutex_lock`
inside a hot body fails unconditionally.

Usage: check_hot_symbols.py <binary> [--objdump TOOL] [--min-symbols N]

Exit codes: 0 clean, 1 violation, 2 environment problem (no objdump,
unreadable binary) — callers treat 2 as "skipped", mirroring the
clang-tidy self-skip convention in tools/lint.
"""

import argparse
import re
import shutil
import subprocess
import sys

# Anchored demangled-name patterns selecting the hot functions to audit.
# Anchoring matters: an unanchored `Merge\w*` also matches std::_Hashtable
# helper symbols whose *template arguments* mention MergeMinMaxBatchByScan.
# Header-inline roots (FlatTupleSet::Insert, SpscQueue::TryPush) audit as
# part of whichever of these bodies inlined them — exactly the point of a
# post-inlining check.
HOT_SYMBOL_PATTERNS = [
    r"^dcdatalog::RecursiveTable::Merge\w+\(",
    r"^dcdatalog::RecursiveTable::CacheCheckDuplicate\(",
    r"^dcdatalog::Distributor::(Emit|EmitBatch|EmitResolved|Flush|Route|"
    r"SendBlock)\(",
    r"^dcdatalog::BatchPipelineRunner::(Push|RunBatch|Finish|FlushLevel)\(",
    r"^dcdatalog::\(anonymous namespace\)::SccExecutor::"
    r"(LocalIteration|GatherAll|PushWithBackpressure|RunUpdateRules|"
    r"GlobalLoop|SspLoop|DwsLoop|InactiveWait|EmitTupleThunk|"
    r"EmitBatchThunk|DistSinkThunk|DistSelfSinkThunk)\(",
    r"^dcdatalog::\(anonymous namespace\)::ExecuteFrom\(",
    r"^dcdatalog::RunPipelineForTuple\(",
    r"^dcdatalog::DwsController::(Update|OnDrain|OnIteration)\(",
]

# Direct call/jmp targets that must never appear inside a hot body without
# an ALLOWED_CALLS entry. Param lists survive demangling
# ("operator new(unsigned long)@plt"), C symbols have none
# ("pthread_mutex_lock@plt"). libstdc++'s std::__throw_length_error-style
# precondition stubs are deliberately NOT listed: one accompanies every
# inlined container growth path and the source-level `throw` rule already
# owns user-written throws.
BANNED_TARGET_RE = re.compile(
    r"^(malloc|calloc|realloc|free|aligned_alloc|posix_memalign"
    r"|operator new|operator delete"
    r"|pthread_mutex_lock|pthread_mutex_timedlock|pthread_cond_wait"
    r"|pthread_cond_timedwait|pthread_rwlock_\w+lock"
    r"|__cxa_throw|__cxa_allocate_exception"
    r"|nanosleep|usleep|sleep)(\(.*\))?(@plt)?$")

# Audited allocator calls with a reviewed justification — the binary-level
# DCD_COLD_CALL. Each entry: (symbol regex, target regex, justification).
# Allocator family only; adding a lock/wait/sleep entry here is a review
# failure, not a supported escape hatch.
ALLOWED_CALLS = [
    (r"SccExecutor::(DistSelfSinkThunk|LocalIteration|GatherAll)\(",
     r"^operator (new|delete)",
     "vector<TupleBuf> gather/scratch doubling branch inlined — amortized "
     "O(1) per tuple, capacity retained across iterations"),
    (r"Distributor::EmitResolved\(",
     r"^operator new",
     "partial-aggregation fold map node: one try_emplace per new group, "
     "folded tuples hit the existing node"),
    (r"Distributor::Flush\(",
     r"^operator delete",
     "partial.clear() at the iteration boundary frees fold-map nodes once "
     "per flush, never per routed tuple"),
    (r"RecursiveTable::Merge(None|Count|Sum|MinMaxBatchByScan)\(",
     r"^operator (new|delete)",
     "B+-tree node allocation on the non-default ablation-backend branch "
     "(DCD_COLD_CALL at source level) and the min/max pending-best "
     "rebuild, once per merge batch"),
    (r"RecursiveTable::MergeBatch\(",
     r"^operator (new|delete)",
     "the audited MergeNone / min-max-by-scan bodies above inline into "
     "the batch entry point at some optimization levels; same "
     "once-per-batch allocator sites, just a different inlining home"),
]

# `.cold` clones hold the paths GCC already proved cold (DCD_CHECK failure
# text, exception plumbing); they are not per-tuple work.
COLD_CLONE_RE = re.compile(r"\[clone [^\]]*\.cold[^\]]*\]")

SYMBOL_HEADER_RE = re.compile(r"^[0-9a-f]+ <(.+)>:$")
CALL_RE = re.compile(r"\b(?:call|jmp)\s+[0-9a-f]+\s+<([^>]+)>")


def pick_objdump(explicit):
    if explicit:
        return explicit if shutil.which(explicit) else None
    for cand in ("objdump", "llvm-objdump"):
        if shutil.which(cand):
            return cand
    return None


def allowed(symbol, target):
    for sym_re, tgt_re, _ in ALLOWED_CALLS:
        if re.search(sym_re, symbol) and re.search(tgt_re, target):
            return True
    return False


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("binary")
    parser.add_argument("--objdump", default=None)
    parser.add_argument(
        "--min-symbols", type=int, default=10,
        help="fail unless at least this many hot symbols were found and "
             "audited — a rename must not let the check pass vacuously")
    parser.add_argument(
        "--list", action="store_true",
        help="print every audited symbol and each allowed call")
    args = parser.parse_args()

    tool = pick_objdump(args.objdump)
    if tool is None:
        print("check_hot_symbols: no objdump/llvm-objdump; skipping")
        return 2
    try:
        dis = subprocess.run(
            [tool, "-dC", "--no-show-raw-insn", args.binary],
            capture_output=True, text=True, check=True).stdout
    except (subprocess.CalledProcessError, OSError) as e:
        print(f"check_hot_symbols: {tool} failed on {args.binary}: {e}")
        return 2

    hot_res = [re.compile(p) for p in HOT_SYMBOL_PATTERNS]
    current = None          # demangled name of the hot symbol being scanned
    audited = []
    violations = []
    allowed_hits = []
    for line in dis.splitlines():
        m = SYMBOL_HEADER_RE.match(line)
        if m:
            name = m.group(1)
            if any(r.search(name) for r in hot_res) and \
                    not COLD_CLONE_RE.search(name):
                current = name
                audited.append(name)
            else:
                current = None
            continue
        if current is None:
            continue
        cm = CALL_RE.search(line)
        if cm is None:
            continue
        # Intra-function branches disassemble as <sym+0xNN>; the +0x suffix
        # is stripped so the bare name is matched against the banned list.
        base = cm.group(1).split("+0x")[0].strip()
        if not BANNED_TARGET_RE.match(base):
            continue
        if allowed(current, base):
            allowed_hits.append((current, base))
        else:
            violations.append((current, base, line.strip()))

    if len(audited) < args.min_symbols:
        print(f"check_hot_symbols: only {len(audited)} hot symbol(s) found "
              f"(need >= {args.min_symbols}) — a rename or pattern rot "
              "would make this check vacuous; update HOT_SYMBOL_PATTERNS "
              "in tools/analyze/check_hot_symbols.py")
        for name in audited:
            print(f"  audited: {name}")
        return 1

    if args.list:
        for name in audited:
            print(f"audited: {name}")
        for sym, target in allowed_hits:
            print(f"allowed: {target}  in  {sym}")

    if violations:
        print(f"check_hot_symbols: {len(violations)} banned call(s) "
              "survive inlining in hot bodies:")
        for sym, target, line in violations:
            print(f"  {sym}\n    -> {target}    [{line}]")
        print("Fix: hoist the allocation/lock out of the hot path, keep "
              "the cold callee out-of-line with DCD_COLD_FN "
              "(src/common/hot_path.h), or — allocator calls only — add a "
              "justified ALLOWED_CALLS entry.")
        return 1

    print(f"check_hot_symbols: OK ({len(audited)} hot symbols audited, "
          f"{len(allowed_hits)} justified allocator call(s), no direct "
          "allocator/lock/sleep calls survive inlining)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
