// dcd_fuzz — differential fuzzer for the DCDatalog engine.
//
// Generates seeded random recursive programs + EDB graphs
// (src/testing/program_gen.h), evaluates each under every requested
// coordination mode × worker count, and diffs the result against the
// single-threaded reference interpreter. The oracle is computed once per
// case in the parent (it is configuration-independent and dominates cost);
// each engine run executes in a forked child so crashes and hangs are
// contained and classified. Failures are shrunk to a minimal repro (drop
// rules, halve the EDB, lower workers) and written to --out-dir.
//
//   dcd_fuzz --seeds=200                        # the standard sweep
//   dcd_fuzz --seeds=50 --chaos                 # with schedule perturbation
//   dcd_fuzz --inject-bug=distributor_offbyone  # harness self-test
//   dcd_fuzz --replay=repro.dl --edges=repro.edges --modes=dws --workers=2
//
// Flags:
//   --seeds=N          cases to generate (default 100)
//   --start-seed=N     first seed (default 1)
//   --modes=a,b        subset of global,ssp,dws (default all)
//   --workers=a,b      worker counts per case (default 1,2,4)
//   --backends=a,b     subset of flat,btree — the merge-index backends each
//                      case runs under (default both, so the two backends
//                      are diffed against the same oracle)
//   --pipelines=a,b    subset of batch,tuple — the rule-pipeline executors
//                      each case runs under (default both, diffing the
//                      vectorized executor against the tuple baseline)
//   --steal=a,b        subset of on,off — the morsel-stealing axis (default
//                      both). "on" forces the publish threshold down so
//                      fuzz-sized deltas actually exercise the steal path
//   --max-vertices=N   EDB size cap for the generator (default 60)
//   --update-batches=N generate a streaming-update script of up to N EDB
//                      batches per case and diff incremental maintenance
//                      after every batch against a from-scratch reference
//                      recompute (default 0: no update axis)
//   --updates-file=P   with --replay: apply this update script after the
//                      initial fixpoint, diffing after every batch
//   --timeout-ms=N     per-run wall clock before a child counts as hung
//                      (default 20000)
//   --max-iters=N      engine iteration safety valve (default 200000)
//   --chaos            install an aggressive ChaosSchedule in each child
//                      (needs a build with chaos points: Debug or
//                      -DDCDATALOG_CHAOS=ON)
//   --chaos-seed=N     base seed for chaos schedules (default 7)
//   --inject-bug=NAME  set DCD_INJECT_BUG=NAME for every child
//   --out-dir=PATH     where repros are written (default fuzz_failures)
//   --max-failures=N   stop after N failing cases (default 5)
//   --no-fork          run in-process (debuggable; no crash/hang isolation)
//   --verbose          log every run, not just failures

#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "common/chaos.h"
#include "common/parse.h"
#include "core/trace_export.h"
#include "graph/graph.h"
#include "testing/fuzz_runner.h"
#include "testing/minimizer.h"

namespace dcdatalog {
namespace {

using testing_gen::FuzzCase;
using testing_gen::GenOptions;
using testing_gen::OracleRows;
using testing_gen::OutcomeKind;
using testing_gen::RunConfig;
using testing_gen::RunOutcome;

/// OutcomeKind extended with the two verdicts only the parent can reach.
enum class RunResult : uint8_t {
  kAgree = 0,
  kMismatch,
  kEngineError,
  kReferenceError,
  kLoadError,
  kCrash,
  kHang,
};

const char* RunResultName(RunResult r) {
  switch (r) {
    case RunResult::kAgree:
      return "agree";
    case RunResult::kMismatch:
      return "mismatch";
    case RunResult::kEngineError:
      return "engine-error";
    case RunResult::kReferenceError:
      return "reference-error";
    case RunResult::kLoadError:
      return "load-error";
    case RunResult::kCrash:
      return "crash";
    case RunResult::kHang:
      return "hang";
  }
  return "unknown";
}

/// True when the verdict indicates an engine bug worth reporting/shrinking
/// (oracle failures and analysis-invalid candidates are not).
bool IsFailure(RunResult r) {
  return r == RunResult::kMismatch || r == RunResult::kEngineError ||
         r == RunResult::kCrash || r == RunResult::kHang;
}

// Exit-code protocol between the forked child and the parent.
constexpr int kExitAgree = 0;
constexpr int kExitMismatch = 10;
constexpr int kExitEngineError = 11;
constexpr int kExitReferenceError = 12;
constexpr int kExitLoadError = 13;

struct FuzzFlags {
  uint64_t seeds = 100;
  uint64_t start_seed = 1;
  std::vector<CoordinationMode> modes = {
      CoordinationMode::kGlobal, CoordinationMode::kSsp,
      CoordinationMode::kDws};
  std::vector<uint32_t> workers = {1, 2, 4};
  std::vector<MergeIndexBackend> backends = {MergeIndexBackend::kFlat,
                                             MergeIndexBackend::kBtree};
  std::vector<PipelineExecutor> pipelines = {PipelineExecutor::kBatch,
                                             PipelineExecutor::kTuple};
  std::vector<bool> steals = {true, false};
  uint64_t max_vertices = 60;
  uint64_t update_batches = 0;
  uint64_t timeout_ms = 20000;
  uint64_t max_iters = 200000;
  bool chaos = false;
  uint64_t chaos_seed = 7;
  std::string inject_bug;
  std::string out_dir = "fuzz_failures";
  uint64_t max_failures = 5;
  bool no_fork = false;
  bool verbose = false;
  std::string replay_program;
  std::string replay_edges;
  std::string replay_updates;
};

int Usage() {
  std::fprintf(stderr,
               "usage: dcd_fuzz [--seeds=N] [--modes=global,ssp,dws] "
               "[--workers=1,2,4] [--chaos] [--inject-bug=NAME] ...\n"
               "see the header of tools/dcd_fuzz.cc for all flags\n");
  return 2;
}

bool ParseModes(const std::string& list, std::vector<CoordinationMode>* out) {
  out->clear();
  size_t pos = 0;
  while (pos <= list.size()) {
    size_t comma = list.find(',', pos);
    if (comma == std::string::npos) comma = list.size();
    const std::string m = list.substr(pos, comma - pos);
    if (m == "global") {
      out->push_back(CoordinationMode::kGlobal);
    } else if (m == "ssp") {
      out->push_back(CoordinationMode::kSsp);
    } else if (m == "dws") {
      out->push_back(CoordinationMode::kDws);
    } else {
      return false;
    }
    pos = comma + 1;
  }
  return !out->empty();
}

bool ParseBackends(const std::string& list,
                   std::vector<MergeIndexBackend>* out) {
  out->clear();
  size_t pos = 0;
  while (pos <= list.size()) {
    size_t comma = list.find(',', pos);
    if (comma == std::string::npos) comma = list.size();
    const std::string b = list.substr(pos, comma - pos);
    if (b == "flat") {
      out->push_back(MergeIndexBackend::kFlat);
    } else if (b == "btree") {
      out->push_back(MergeIndexBackend::kBtree);
    } else {
      return false;
    }
    pos = comma + 1;
  }
  return !out->empty();
}

bool ParsePipelines(const std::string& list,
                    std::vector<PipelineExecutor>* out) {
  out->clear();
  size_t pos = 0;
  while (pos <= list.size()) {
    size_t comma = list.find(',', pos);
    if (comma == std::string::npos) comma = list.size();
    const std::string p = list.substr(pos, comma - pos);
    if (p == "batch") {
      out->push_back(PipelineExecutor::kBatch);
    } else if (p == "tuple") {
      out->push_back(PipelineExecutor::kTuple);
    } else {
      return false;
    }
    pos = comma + 1;
  }
  return !out->empty();
}

bool ParseSteals(const std::string& list, std::vector<bool>* out) {
  out->clear();
  size_t pos = 0;
  while (pos <= list.size()) {
    size_t comma = list.find(',', pos);
    if (comma == std::string::npos) comma = list.size();
    const std::string s = list.substr(pos, comma - pos);
    if (s == "on") {
      out->push_back(true);
    } else if (s == "off") {
      out->push_back(false);
    } else {
      return false;
    }
    pos = comma + 1;
  }
  return !out->empty();
}

bool ParseWorkers(const std::string& list, std::vector<uint32_t>* out) {
  out->clear();
  size_t pos = 0;
  while (pos <= list.size()) {
    size_t comma = list.find(',', pos);
    if (comma == std::string::npos) comma = list.size();
    const std::string entry = list.substr(pos, comma - pos);
    uint32_t w = 0;
    // Checked parse: std::atoi turned "2x" into 2 and "x2" into a silent
    // rejection-by-zero; both now fail loudly with the offending entry.
    if (!ParseUint32Checked(entry.c_str(), 1, 4096, &w)) {
      std::fprintf(stderr,
                   "[dcd_fuzz] bad --workers entry '%s': expected an "
                   "integer in [1, 4096]\n",
                   entry.c_str());
      return false;
    }
    out->push_back(w);
    pos = comma + 1;
  }
  return !out->empty();
}

bool ParseFlags(int argc, char** argv, FuzzFlags* flags) {
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto value = [&](const char* name) -> const char* {
      const size_t n = std::strlen(name);
      if (arg.compare(0, n, name) == 0 && arg.size() > n && arg[n] == '=') {
        return arg.c_str() + n + 1;
      }
      return nullptr;
    };
    const char* v = nullptr;
    if ((v = value("--seeds"))) {
      flags->seeds = std::strtoull(v, nullptr, 10);
    } else if ((v = value("--start-seed"))) {
      flags->start_seed = std::strtoull(v, nullptr, 10);
    } else if ((v = value("--modes"))) {
      if (!ParseModes(v, &flags->modes)) return false;
    } else if ((v = value("--workers"))) {
      if (!ParseWorkers(v, &flags->workers)) return false;
    } else if ((v = value("--backends"))) {
      if (!ParseBackends(v, &flags->backends)) return false;
    } else if ((v = value("--pipelines"))) {
      if (!ParsePipelines(v, &flags->pipelines)) return false;
    } else if ((v = value("--steal"))) {
      if (!ParseSteals(v, &flags->steals)) return false;
    } else if ((v = value("--max-vertices"))) {
      flags->max_vertices = std::strtoull(v, nullptr, 10);
    } else if ((v = value("--update-batches"))) {
      flags->update_batches = std::strtoull(v, nullptr, 10);
    } else if ((v = value("--updates-file"))) {
      flags->replay_updates = v;
    } else if ((v = value("--timeout-ms"))) {
      flags->timeout_ms = std::strtoull(v, nullptr, 10);
    } else if ((v = value("--max-iters"))) {
      flags->max_iters = std::strtoull(v, nullptr, 10);
    } else if (arg == "--chaos") {
      flags->chaos = true;
    } else if ((v = value("--chaos-seed"))) {
      flags->chaos_seed = std::strtoull(v, nullptr, 10);
    } else if ((v = value("--inject-bug"))) {
      flags->inject_bug = v;
    } else if ((v = value("--out-dir"))) {
      flags->out_dir = v;
    } else if ((v = value("--max-failures"))) {
      flags->max_failures = std::strtoull(v, nullptr, 10);
    } else if (arg == "--no-fork") {
      flags->no_fork = true;
    } else if (arg == "--verbose") {
      flags->verbose = true;
    } else if ((v = value("--replay"))) {
      flags->replay_program = v;
    } else if ((v = value("--edges"))) {
      flags->replay_edges = v;
    } else {
      std::fprintf(stderr, "unknown flag: %s\n", arg.c_str());
      return false;
    }
  }
  return true;
}

void InstallChaos(const FuzzFlags& flags, uint64_t run_index) {
  // Leaked deliberately: the schedule must outlive every engine thread.
  auto* schedule = new ChaosSchedule(ChaosConfig::Aggressive(
      flags.chaos_seed ^ (run_index * 0x9e3779b97f4a7c15ULL)));
  InstallChaosSchedule(schedule);
}

RunResult ToRunResult(OutcomeKind kind) {
  switch (kind) {
    case OutcomeKind::kAgree:
      return RunResult::kAgree;
    case OutcomeKind::kMismatch:
      return RunResult::kMismatch;
    case OutcomeKind::kEngineError:
      return RunResult::kEngineError;
    case OutcomeKind::kReferenceError:
      return RunResult::kReferenceError;
    case OutcomeKind::kLoadError:
      return RunResult::kLoadError;
  }
  return RunResult::kLoadError;
}

void ReportChildFailure(const FuzzCase& c, const RunOutcome& outcome) {
  if (outcome.kind == OutcomeKind::kAgree) return;
  std::fprintf(stderr, "[dcd_fuzz] seed %llu: %s: %s\n",
               static_cast<unsigned long long>(c.seed),
               testing_gen::OutcomeKindName(outcome.kind),
               outcome.detail.c_str());
}

/// One differential evaluation: streaming-update cases run the incremental
/// engine against per-batch reference recomputes (the oracle depends on the
/// batch stream, so it is computed inside); plain cases diff one engine run
/// against the precomputed oracle rows.
RunOutcome Evaluate(const FuzzCase& c, const RunConfig& config,
                    const OracleRows& oracle) {
  if (!c.updates.batches.empty()) {
    return testing_gen::RunIncrementalCase(c, config);
  }
  return testing_gen::RunEngineOnce(c, config, oracle);
}

/// Child-side evaluation: optionally installs a chaos schedule, runs the
/// engine against the (fork-inherited) oracle rows, and maps the outcome
/// onto the exit-code protocol. Never returns (uses _exit).
[[noreturn]] void ChildRun(const FuzzCase& c, const RunConfig& config,
                           const OracleRows& oracle, const FuzzFlags& flags,
                           uint64_t run_index) {
  if (flags.chaos) InstallChaos(flags, run_index);
  const RunOutcome outcome = Evaluate(c, config, oracle);
  ReportChildFailure(c, outcome);
  switch (outcome.kind) {
    case OutcomeKind::kAgree:
      _exit(kExitAgree);
    case OutcomeKind::kMismatch:
      _exit(kExitMismatch);
    case OutcomeKind::kEngineError:
      _exit(kExitEngineError);
    case OutcomeKind::kReferenceError:
      _exit(kExitReferenceError);
    case OutcomeKind::kLoadError:
      _exit(kExitLoadError);
  }
  _exit(kExitLoadError);
}

RunResult MapExitCode(int code) {
  switch (code) {
    case kExitAgree:
      return RunResult::kAgree;
    case kExitMismatch:
      return RunResult::kMismatch;
    case kExitEngineError:
      return RunResult::kEngineError;
    case kExitReferenceError:
      return RunResult::kReferenceError;
    case kExitLoadError:
      return RunResult::kLoadError;
    default:
      return RunResult::kCrash;  // Unexpected exit code ≈ aborted.
  }
}

/// Runs one engine evaluation against precomputed oracle rows, forked
/// unless --no-fork. `run_index` decorrelates chaos schedules across runs.
RunResult RunIsolated(const FuzzCase& c, const RunConfig& config,
                      const OracleRows& oracle, const FuzzFlags& flags,
                      uint64_t run_index) {
  if (flags.no_fork) {
    if (flags.chaos) InstallChaos(flags, run_index);
    const RunOutcome outcome = Evaluate(c, config, oracle);
    ReportChildFailure(c, outcome);
    return ToRunResult(outcome.kind);
  }

  const pid_t pid = fork();
  if (pid < 0) {
    std::perror("[dcd_fuzz] fork");
    std::exit(2);
  }
  if (pid == 0) ChildRun(c, config, oracle, flags, run_index);

  uint64_t waited_ms = 0;
  int status = 0;
  for (;;) {
    const pid_t done = waitpid(pid, &status, WNOHANG);
    if (done == pid) break;
    if (done < 0) {
      std::perror("[dcd_fuzz] waitpid");
      std::exit(2);
    }
    if (waited_ms >= flags.timeout_ms) {
      kill(pid, SIGKILL);
      waitpid(pid, &status, 0);
      return RunResult::kHang;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
    waited_ms += 2;
  }
  if (WIFSIGNALED(status)) return RunResult::kCrash;
  if (WIFEXITED(status)) return MapExitCode(WEXITSTATUS(status));
  return RunResult::kCrash;
}

std::string ModeName(CoordinationMode mode) {
  return CoordinationModeName(mode);
}

/// The --modes spelling of `mode` (ParseModes is lowercase-only).
std::string ModeFlag(CoordinationMode mode) {
  switch (mode) {
    case CoordinationMode::kGlobal:
      return "global";
    case CoordinationMode::kSsp:
      return "ssp";
    case CoordinationMode::kDws:
      return "dws";
  }
  return "dws";
}

RunConfig MakeConfig(const FuzzFlags& flags, CoordinationMode mode,
                     uint32_t workers, MergeIndexBackend backend,
                     PipelineExecutor pipeline, bool steal) {
  RunConfig config;
  config.mode = mode;
  config.num_workers = workers;
  config.merge_backend = backend;
  config.pipeline = pipeline;
  config.steal = steal;
  config.max_global_iterations = flags.max_iters;
  return config;
}

const char* StealName(bool steal) { return steal ? "on" : "off"; }

size_t RuleCount(const std::string& program) {
  return static_cast<size_t>(
      std::count(program.begin(), program.end(), '\n'));
}

/// Writes <stem>.dl, <stem>.edges, and <stem>.repro.txt.
void WriteRepro(const FuzzFlags& flags, const std::string& stem,
                const FuzzCase& original, RunResult verdict,
                CoordinationMode mode, uint32_t orig_workers,
                MergeIndexBackend backend, PipelineExecutor pipeline,
                bool steal, const FuzzCase& reduced,
                uint32_t reduced_workers, uint32_t probes) {
  const std::string base = flags.out_dir + "/" + stem;
  {
    std::ofstream dl(base + ".dl");
    dl << reduced.program;
  }
  if (!reduced.updates.batches.empty()) {
    std::ofstream up(base + ".updates");
    up << SerializeUpdateScript(reduced.updates);
  }
  Status saved = SaveEdgeList(reduced.graph, base + ".edges");
  if (!saved.ok()) {
    std::fprintf(stderr, "[dcd_fuzz] cannot write %s.edges: %s\n",
                 base.c_str(), saved.ToString().c_str());
  }
  std::ofstream report(base + ".repro.txt");
  report << "# dcd_fuzz minimized failure\n"
         << "seed: " << original.seed << "\n"
         << "verdict: " << RunResultName(verdict) << "\n"
         << "mode: " << ModeName(mode) << "\n"
         << "merge backend: " << MergeIndexBackendName(backend) << "\n"
         << "pipeline executor: " << PipelineExecutorName(pipeline) << "\n"
         << "steal: " << StealName(steal) << "\n"
         << "workers: " << orig_workers << " (minimized to "
         << reduced_workers << ")\n"
         << "shrink probes: " << probes << "\n"
         << "chaos: " << (flags.chaos ? "on" : "off") << "\n"
         << "injected bug: "
         << (flags.inject_bug.empty() ? "none" : flags.inject_bug) << "\n"
         << "original: " << original.graph.num_edges() << " edges, "
         << RuleCount(original.program) << " rules, "
         << original.updates.batches.size() << " update batches\n"
         << "reduced: " << reduced.graph.num_edges() << " edges, "
         << RuleCount(reduced.program) << " rules, "
         << reduced.updates.batches.size() << " update batches\n"
         << "replay:\n"
         << "  dcd_fuzz --replay=" << base << ".dl --edges=" << base
         << ".edges --modes=" << ModeFlag(mode)
         << " --workers=" << reduced_workers
         << " --backends=" << MergeIndexBackendName(backend)
         << " --pipelines=" << PipelineExecutorName(pipeline)
         << " --steal=" << StealName(steal)
         << (reduced.updates.batches.empty()
                 ? ""
                 : " --updates-file=" + base + ".updates")
         << (flags.chaos ? " --chaos" : "")
         << (flags.inject_bug.empty()
                 ? ""
                 : " --inject-bug=" + flags.inject_bug)
         << "\n\nprogram:\n"
         << reduced.program;
}

/// Best-effort trace attachment for a failing repro: re-runs the reduced
/// case with tracing forced on in a forked child and writes
/// <stem>.trace.json next to the .dl/.edges pair. The case is a known
/// failure — it may crash, hang, or mismatch — so the run is isolated like
/// any other; a mismatch still completes and yields a full timeline, while
/// a crash/hang child simply leaves no trace file behind.
void DumpReproTrace(const FuzzFlags& flags, const std::string& stem,
                    const FuzzCase& reduced, CoordinationMode mode,
                    uint32_t workers, MergeIndexBackend backend,
                    PipelineExecutor pipeline, bool steal) {
  const std::string path = flags.out_dir + "/" + stem + ".trace.json";
  const pid_t pid = fork();
  if (pid < 0) {
    std::perror("[dcd_fuzz] fork (trace dump)");
    return;
  }
  if (pid == 0) {
    EvalStats stats;
    const RunOutcome out = testing_gen::RunEngineTraced(
        reduced, MakeConfig(flags, mode, workers, backend, pipeline, steal),
        &stats);
    // Only a completed run yields stats; mismatches complete (the diff is
    // the parent's verdict, not the engine's), so the common failure modes
    // all get a timeline.
    if (out.kind != OutcomeKind::kAgree) _exit(1);
    const Status w = WriteChromeTraceFile(stats, path);
    _exit(w.ok() ? 0 : 1);
  }
  uint64_t waited_ms = 0;
  int status = 0;
  for (;;) {
    const pid_t done = waitpid(pid, &status, WNOHANG);
    if (done == pid) break;
    if (done < 0) {
      std::perror("[dcd_fuzz] waitpid (trace dump)");
      return;
    }
    if (waited_ms >= flags.timeout_ms) {
      kill(pid, SIGKILL);
      waitpid(pid, &status, 0);
      std::fprintf(stderr, "[dcd_fuzz] trace dump timed out; no %s\n",
                   path.c_str());
      return;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
    waited_ms += 2;
  }
  if (WIFEXITED(status) && WEXITSTATUS(status) == 0) {
    std::printf("[dcd_fuzz] wrote execution trace to %s\n", path.c_str());
  } else {
    std::fprintf(stderr,
                 "[dcd_fuzz] trace dump child failed; no %s (the repro "
                 "crashes before completing)\n",
                 path.c_str());
  }
}

int RunReplay(const FuzzFlags& flags) {
  std::ifstream in(flags.replay_program);
  if (!in) {
    std::fprintf(stderr, "cannot open %s\n", flags.replay_program.c_str());
    return 2;
  }
  FuzzCase c;
  c.program.assign(std::istreambuf_iterator<char>(in),
                   std::istreambuf_iterator<char>());
  c.outputs = testing_gen::HeadPredicates(c.program);
  if (!flags.replay_edges.empty()) {
    auto loaded = LoadEdgeList(flags.replay_edges);
    if (!loaded.ok()) {
      std::fprintf(stderr, "cannot load %s: %s\n",
                   flags.replay_edges.c_str(),
                   loaded.status().ToString().c_str());
      return 2;
    }
    c.graph = std::move(loaded).value();
  }
  if (!flags.replay_updates.empty()) {
    auto script = LoadUpdateScriptFile(flags.replay_updates);
    if (!script.ok()) {
      std::fprintf(stderr, "cannot load %s: %s\n",
                   flags.replay_updates.c_str(),
                   script.status().ToString().c_str());
      return 2;
    }
    c.updates = std::move(script).value();
  }
  OracleRows oracle;
  const RunOutcome ref =
      testing_gen::ComputeOracle(c, /*max_rounds=*/100000, &oracle);
  if (ref.kind != OutcomeKind::kAgree) {
    std::fprintf(stderr, "replay oracle: %s: %s\n",
                 testing_gen::OutcomeKindName(ref.kind), ref.detail.c_str());
    return 2;
  }
  int failures = 0;
  uint64_t run_index = 0;
  for (CoordinationMode mode : flags.modes) {
    for (uint32_t workers : flags.workers) {
      for (MergeIndexBackend backend : flags.backends) {
        for (PipelineExecutor pipeline : flags.pipelines) {
          for (bool steal : flags.steals) {
            const RunResult r = RunIsolated(
                c, MakeConfig(flags, mode, workers, backend, pipeline, steal),
                oracle, flags, run_index++);
            std::printf("replay %s x%u %s %s steal-%s: %s\n",
                        ModeName(mode).c_str(), workers,
                        MergeIndexBackendName(backend),
                        PipelineExecutorName(pipeline), StealName(steal),
                        RunResultName(r));
            if (IsFailure(r)) ++failures;
          }
        }
      }
    }
  }
  return failures > 0 ? 1 : 0;
}

int FuzzMain(int argc, char** argv) {
  FuzzFlags flags;
  if (!ParseFlags(argc, argv, &flags)) return Usage();

  if (!flags.inject_bug.empty()) {
    setenv("DCD_INJECT_BUG", flags.inject_bug.c_str(), 1);
#if !DCD_CHAOS_ENABLED
    std::fprintf(stderr,
                 "[dcd_fuzz] warning: --inject-bug needs a chaos-enabled "
                 "build (Debug or -DDCDATALOG_CHAOS=ON); this build "
                 "compiles the backdoor out\n");
#endif
  }
#if !DCD_CHAOS_ENABLED
  if (flags.chaos) {
    std::fprintf(stderr,
                 "[dcd_fuzz] warning: --chaos has no effect, this build "
                 "compiles chaos points out\n");
  }
#endif

  if (!flags.replay_program.empty()) return RunReplay(flags);

  uint64_t runs = 0;
  uint64_t failures = 0;
  uint64_t run_index = 0;
  bool out_dir_ready = false;
  for (uint64_t s = 0; s < flags.seeds; ++s) {
    const uint64_t seed = flags.start_seed + s;
    GenOptions gen;
    gen.seed = seed;
    gen.max_vertices = flags.max_vertices;
    gen.max_update_batches = static_cast<uint32_t>(flags.update_batches);
    const FuzzCase c = testing_gen::GenerateCase(gen);

    // The oracle runs once per case, in-process: ReferenceEvaluate is
    // simple, single-threaded, and round-capped, so it cannot hang, and a
    // crash there is an oracle bug worth dying loudly for.
    OracleRows oracle;
    const RunOutcome ref =
        testing_gen::ComputeOracle(c, /*max_rounds=*/100000, &oracle);
    if (ref.kind != OutcomeKind::kAgree) {
      std::printf("seed %llu: oracle %s: %s\n",
                  static_cast<unsigned long long>(seed),
                  testing_gen::OutcomeKindName(ref.kind), ref.detail.c_str());
      continue;
    }

    for (CoordinationMode mode : flags.modes) {
      for (uint32_t workers : flags.workers) {
      for (MergeIndexBackend backend : flags.backends) {
      for (PipelineExecutor pipeline : flags.pipelines) {
      for (bool steal : flags.steals) {
        const RunConfig config =
            MakeConfig(flags, mode, workers, backend, pipeline, steal);
        const RunResult r =
            RunIsolated(c, config, oracle, flags, run_index++);
        ++runs;
        if (flags.verbose || IsFailure(r)) {
          std::printf("seed %llu %s x%u %s %s steal-%s: %s\n",
                      static_cast<unsigned long long>(seed),
                      ModeName(mode).c_str(), workers,
                      MergeIndexBackendName(backend),
                      PipelineExecutorName(pipeline), StealName(steal),
                      RunResultName(r));
        }
        if (!IsFailure(r)) continue;

        ++failures;
        if (!out_dir_ready) {
          // Best-effort; WriteRepro reports file-level errors itself.
          std::string cmd = "mkdir -p '" + flags.out_dir + "'";
          if (std::system(cmd.c_str()) != 0) {
            std::fprintf(stderr, "[dcd_fuzz] cannot create %s\n",
                         flags.out_dir.c_str());
          }
          out_dir_ready = true;
        }
        // Shrink. Each probe recomputes the candidate's oracle (the case
        // changes under shrinking) and reruns the same engine config; only
        // engine-side failures keep a candidate — a candidate whose
        // program no longer analyzes or whose oracle fails is rejected.
        auto still_fails = [&](const FuzzCase& candidate,
                               uint32_t probe_workers) {
          OracleRows probe_oracle;
          const RunOutcome probe_ref = testing_gen::ComputeOracle(
              candidate, /*max_rounds=*/100000, &probe_oracle);
          if (probe_ref.kind != OutcomeKind::kAgree) return false;
          const RunConfig probe =
              MakeConfig(flags, mode, probe_workers, backend, pipeline,
                         steal);
          return IsFailure(RunIsolated(candidate, probe, probe_oracle,
                                       flags, run_index++));
        };
        std::printf("seed %llu %s x%u %s %s steal-%s: shrinking...\n",
                    static_cast<unsigned long long>(seed),
                    ModeName(mode).c_str(), workers,
                    MergeIndexBackendName(backend),
                    PipelineExecutorName(pipeline), StealName(steal));
        std::fflush(stdout);
        const testing_gen::MinimizeResult reduced =
            testing_gen::Minimize(c, workers, still_fails);
        const std::string stem = "seed" + std::to_string(seed) + "_" +
                                 ModeFlag(mode) + "_w" +
                                 std::to_string(workers) + "_" +
                                 MergeIndexBackendName(backend) + "_" +
                                 PipelineExecutorName(pipeline) + "_steal-" +
                                 StealName(steal);
        WriteRepro(flags, stem, c, r, mode, workers, backend, pipeline,
                   steal, reduced.reduced, reduced.num_workers,
                   reduced.probes);
        DumpReproTrace(flags, stem, reduced.reduced, mode,
                       reduced.num_workers, backend, pipeline, steal);
        std::printf(
            "seed %llu %s x%u: minimized to %zu rules / %llu edges / %u "
            "workers (%u probes) -> %s/%s.*\n",
            static_cast<unsigned long long>(seed), ModeName(mode).c_str(),
            workers, RuleCount(reduced.reduced.program),
            static_cast<unsigned long long>(
                reduced.reduced.graph.num_edges()),
            reduced.num_workers, reduced.probes, flags.out_dir.c_str(),
            stem.c_str());
        if (failures >= flags.max_failures) {
          std::printf("dcd_fuzz: stopping after %llu failures (%llu runs)\n",
                      static_cast<unsigned long long>(failures),
                      static_cast<unsigned long long>(runs));
          return 1;
        }
      }
      }
      }
      }
    }
    if (!flags.verbose && (s + 1) % 25 == 0) {
      std::printf("dcd_fuzz: %llu/%llu seeds, %llu runs, %llu failures\n",
                  static_cast<unsigned long long>(s + 1),
                  static_cast<unsigned long long>(flags.seeds),
                  static_cast<unsigned long long>(runs),
                  static_cast<unsigned long long>(failures));
      std::fflush(stdout);
    }
  }
  std::printf("dcd_fuzz: %llu runs over %llu seeds, %llu failures\n",
              static_cast<unsigned long long>(runs),
              static_cast<unsigned long long>(flags.seeds),
              static_cast<unsigned long long>(failures));
  return failures > 0 ? 1 : 0;
}

}  // namespace
}  // namespace dcdatalog

int main(int argc, char** argv) { return dcdatalog::FuzzMain(argc, argv); }
