// dcd — the DCDatalog command-line tool.
//
//   dcd run <program.dl> --rel name=path[:spec] ... [options]
//       Evaluates the program over fact files. Each --rel loads a base
//       relation from whitespace-separated text; `spec` gives column types
//       (i=int, d=double, s=string; default: all int, arity inferred from
//       the program). Results for every `.output` predicate (or every
//       derived predicate if none) print to stdout or to files with --out.
//
//   dcd explain <program.dl> --rel ...
//       Prints the analysis, logical plans, and physical plan.
//
//   dcd generate <kind> <path> [args]
//       Writes a synthetic dataset: kinds are
//         rmat:<vertices>[:<deg>]    tree:<height>    gnp:<vertices>:<p>
//         social:<vertices>[:<deg>]  ntree:<vertices>
//         star:<spokes>              zipf:<vertices>[:<deg>[:<alpha>]]
//       --weights <max> adds random integer weights.
//
//   dcd serve --rel name=path:spec ... [options]
//       Starts the resident multi-query server: base relations are loaded
//       once into a shared store, then HTTP clients POST programs to
//       /query (each runs as its own session over a pinned EDB snapshot,
//       scheduled onto one shared worker pool). Endpoints: POST /query
//       [?workers=N&dump=pred], POST /update (update-script body),
//       GET /healthz, /metrics, /trace (admission decisions),
//       /sessions/<id>/metrics, /sessions/<id>/trace; POST /shutdown.
//       serve-only options:
//         --port N            listen port (default 0 = ephemeral)
//         --port-file FILE    write the bound port for scripted clients
//         --pool N            shared worker-pool capacity (default: hw)
//         --updates FILE      stream the script's batches into the store,
//                             one batch per --update-interval-ms (def 100)
//       --rel specs are mandatory in serve mode (no program to infer
//       arities from).
//
// Common options (--flag value and --flag=value are both accepted):
//   --workers N        worker threads, 1..4096 (default: hardware)
//   --mode global|ssp|dws
//   --slack N          SSP slack (default 5)
//   --no-agg-index --no-cache --no-partial-agg   disable §6.2/Fig.7 opts
//   --merge-index-backend flat|btree   merge-path index family (default
//                      flat; btree is the Table 4 ablation baseline)
//   --pipeline-executor batch|tuple    rule-pipeline executor (default
//                      batch; tuple is the ablation baseline)
//   --steal on|off     skew-adaptive morsel stealing (default on; off is
//                      the skew-ablation baseline)
//   --numa auto|off    NUMA-aware worker placement and first-touch ring
//                      allocation (default auto; no-op on single-socket)
//   --out pred=path    write one predicate to a file (repeatable)
//   --updates FILE     after the initial fixpoint, stream EDB update
//                      batches from FILE ("+ rel v..." / "- rel v..." per
//                      line, batches separated by "---") and maintain the
//                      fixpoint incrementally after each batch
//   --stats            print EvalStats (with --updates: once per batch)
//   --seed N           generator seed (default 42)
//   --trace-out FILE   write a Chrome trace-event JSON of the run (implies
//                      tracing on); load it in Perfetto / chrome://tracing
//   --metrics-out FILE write the flat metrics snapshot JSON (counters plus
//                      per-worker latency/batch histograms)

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <string>
#include <thread>
#include <vector>

#include "common/parse.h"
#include "core/dcdatalog.h"
#include "core/trace_export.h"
#include "datalog/analysis.h"
#include "graph/generators.h"
#include "server/server.h"
#include "storage/text_io.h"
#include "storage/updates.h"

namespace dcdatalog {
namespace {

int Usage() {
  std::fprintf(stderr,
               "usage: dcd run <program.dl> --rel name=path[:spec] ...\n"
               "       dcd explain <program.dl> --rel ...\n"
               "       dcd generate <kind>:<args> <path> [--weights W]\n"
               "       dcd serve --rel name=path:spec ... [--port N]\n"
               "see the header of tools/dcd_cli.cc for all options\n");
  return 2;
}

struct Options {
  std::string program_path;
  std::vector<std::pair<std::string, std::string>> relations;  // name=path[:spec]
  std::vector<std::pair<std::string, std::string>> outputs;    // pred=path
  EngineOptions engine;
  bool stats = false;
  uint64_t seed = 42;
  int64_t weights = 0;
  std::string trace_out;
  std::string metrics_out;
  std::string updates_path;
  // serve-only:
  uint32_t port = 0;
  std::string port_file;
  uint32_t pool_capacity = 0;
  uint32_t update_interval_ms = 100;
};

bool ParseCommon(int argc, char** argv, int start, Options* opts) {
  for (int i = start; i < argc; ++i) {
    std::string arg = argv[i];
    // Accept both "--flag value" and "--flag=value".
    std::string inline_value;
    bool has_inline = false;
    if (arg.size() > 2 && arg[0] == '-' && arg[1] == '-') {
      const size_t eq = arg.find('=');
      if (eq != std::string::npos) {
        inline_value = arg.substr(eq + 1);
        arg = arg.substr(0, eq);
        has_inline = true;
      }
    }
    auto next = [&]() -> const char* {
      if (has_inline) return inline_value.c_str();
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    if (arg == "--rel") {
      const char* v = next();
      if (!v) return false;
      std::string s(v);
      size_t eq = s.find('=');
      if (eq == std::string::npos) return false;
      opts->relations.emplace_back(s.substr(0, eq), s.substr(eq + 1));
    } else if (arg == "--out") {
      const char* v = next();
      if (!v) return false;
      std::string s(v);
      size_t eq = s.find('=');
      if (eq == std::string::npos) return false;
      opts->outputs.emplace_back(s.substr(0, eq), s.substr(eq + 1));
    } else if (arg == "--workers") {
      // Checked parse: std::atoi would silently turn "abc" or "4x" into a
      // number and run the evaluation with a nonsensical worker count.
      const char* v = next();
      uint32_t workers = 0;
      if (!v || !ParseUint32Checked(v, 1, 4096, &workers)) {
        std::fprintf(stderr,
                     "--workers expects an integer in [1, 4096], got '%s'\n",
                     v ? v : "(nothing)");
        return false;
      }
      opts->engine.num_workers = workers;
    } else if (arg == "--mode") {
      const char* v = next();
      if (!v) return false;
      if (std::strcmp(v, "global") == 0) {
        opts->engine.coordination = CoordinationMode::kGlobal;
      } else if (std::strcmp(v, "ssp") == 0) {
        opts->engine.coordination = CoordinationMode::kSsp;
      } else if (std::strcmp(v, "dws") == 0) {
        opts->engine.coordination = CoordinationMode::kDws;
      } else {
        return false;
      }
    } else if (arg == "--slack") {
      const char* v = next();
      uint32_t slack = 0;
      if (!v || !ParseUint32Checked(v, 1, 1000000, &slack)) {
        std::fprintf(
            stderr, "--slack expects an integer in [1, 1000000], got '%s'\n",
            v ? v : "(nothing)");
        return false;
      }
      opts->engine.ssp_slack = slack;
    } else if (arg == "--no-agg-index") {
      opts->engine.enable_aggregate_index = false;
    } else if (arg == "--no-cache") {
      opts->engine.enable_existence_cache = false;
    } else if (arg == "--no-partial-agg") {
      opts->engine.enable_partial_aggregation = false;
    } else if (arg == "--merge-index-backend") {
      const char* v = next();
      if (v && std::strcmp(v, "flat") == 0) {
        opts->engine.merge_index_backend = MergeIndexBackend::kFlat;
      } else if (v && std::strcmp(v, "btree") == 0) {
        opts->engine.merge_index_backend = MergeIndexBackend::kBtree;
      } else {
        std::fprintf(stderr,
                     "--merge-index-backend expects flat|btree, got '%s'\n",
                     v ? v : "(nothing)");
        return false;
      }
    } else if (arg == "--pipeline-executor") {
      const char* v = next();
      if (v && std::strcmp(v, "batch") == 0) {
        opts->engine.pipeline_executor = PipelineExecutor::kBatch;
      } else if (v && std::strcmp(v, "tuple") == 0) {
        opts->engine.pipeline_executor = PipelineExecutor::kTuple;
      } else {
        std::fprintf(stderr,
                     "--pipeline-executor expects batch|tuple, got '%s'\n",
                     v ? v : "(nothing)");
        return false;
      }
    } else if (arg == "--steal") {
      const char* v = next();
      if (v && std::strcmp(v, "on") == 0) {
        opts->engine.enable_steal = true;
      } else if (v && std::strcmp(v, "off") == 0) {
        opts->engine.enable_steal = false;
      } else {
        std::fprintf(stderr, "--steal expects on|off, got '%s'\n",
                     v ? v : "(nothing)");
        return false;
      }
    } else if (arg == "--numa") {
      const char* v = next();
      if (v && std::strcmp(v, "auto") == 0) {
        opts->engine.numa = NumaMode::kAuto;
      } else if (v && std::strcmp(v, "off") == 0) {
        opts->engine.numa = NumaMode::kOff;
      } else {
        std::fprintf(stderr, "--numa expects auto|off, got '%s'\n",
                     v ? v : "(nothing)");
        return false;
      }
    } else if (arg == "--stats") {
      opts->stats = true;
    } else if (arg == "--seed") {
      const char* v = next();
      uint64_t seed = 0;
      if (!v || !ParseUint64Checked(v, 0, UINT64_MAX, &seed)) {
        std::fprintf(stderr, "--seed expects a non-negative integer, got '%s'\n",
                     v ? v : "(nothing)");
        return false;
      }
      opts->seed = seed;
    } else if (arg == "--weights") {
      const char* v = next();
      int64_t weights = 0;
      if (!v || !ParseInt64Checked(v, 0, INT64_MAX, &weights)) {
        std::fprintf(stderr,
                     "--weights expects a non-negative integer, got '%s'\n",
                     v ? v : "(nothing)");
        return false;
      }
      opts->weights = weights;
    } else if (arg == "--trace-out") {
      const char* v = next();
      if (!v || *v == '\0') return false;
      opts->trace_out = v;
    } else if (arg == "--metrics-out") {
      const char* v = next();
      if (!v || *v == '\0') return false;
      opts->metrics_out = v;
    } else if (arg == "--updates") {
      const char* v = next();
      if (!v || *v == '\0') return false;
      opts->updates_path = v;
    } else if (arg == "--port") {
      const char* v = next();
      uint32_t port = 0;
      if (!v || !ParseUint32Checked(v, 0, 65535, &port)) {
        std::fprintf(stderr,
                     "--port expects an integer in [0, 65535], got '%s'\n",
                     v ? v : "(nothing)");
        return false;
      }
      opts->port = port;
    } else if (arg == "--port-file") {
      const char* v = next();
      if (!v || *v == '\0') return false;
      opts->port_file = v;
    } else if (arg == "--pool") {
      const char* v = next();
      uint32_t pool = 0;
      if (!v || !ParseUint32Checked(v, 1, 4096, &pool)) {
        std::fprintf(stderr,
                     "--pool expects an integer in [1, 4096], got '%s'\n",
                     v ? v : "(nothing)");
        return false;
      }
      opts->pool_capacity = pool;
    } else if (arg == "--update-interval-ms") {
      const char* v = next();
      uint32_t interval = 0;
      if (!v || !ParseUint32Checked(v, 0, 3600000, &interval)) {
        std::fprintf(
            stderr,
            "--update-interval-ms expects an integer in [0, 3600000], "
            "got '%s'\n",
            v ? v : "(nothing)");
        return false;
      }
      opts->update_interval_ms = interval;
    } else {
      std::fprintf(stderr, "unknown option: %s\n", arg.c_str());
      return false;
    }
  }
  // A trace destination implies tracing; nobody wants an empty file.
  if (!opts->trace_out.empty()) opts->engine.enable_trace = true;
  return true;
}

/// Infers arities of base relations from the parsed program so --rel specs
/// may omit the type string for all-int relations.
std::map<std::string, uint32_t> InferArities(const Program& program) {
  std::map<std::string, uint32_t> arity;
  std::map<std::string, bool> is_head;
  for (const Rule& rule : program.rules) is_head[rule.head.predicate] = true;
  for (const Rule& rule : program.rules) {
    for (const BodyLiteral& lit : rule.body) {
      if (lit.kind != BodyLiteral::Kind::kAtom) continue;
      if (!is_head[lit.atom.predicate]) {
        arity[lit.atom.predicate] =
            static_cast<uint32_t>(lit.atom.args.size());
      }
    }
  }
  return arity;
}

int LoadRelations(DCDatalog* db, const Options& opts) {
  std::map<std::string, uint32_t> arities;
  if (db->program() != nullptr) arities = InferArities(*db->program());
  for (const auto& [name, path_spec] : opts.relations) {
    std::string path = path_spec;
    std::string spec;
    size_t colon = path_spec.rfind(':');
    // A trailing :spec is only a spec if it is a plausible type string.
    if (colon != std::string::npos && colon + 1 < path_spec.size()) {
      std::string tail = path_spec.substr(colon + 1);
      if (tail.find_first_not_of("ids") == std::string::npos) {
        spec = tail;
        path = path_spec.substr(0, colon);
      }
    }
    Schema schema;
    if (!spec.empty()) {
      auto parsed = ParseSchemaSpec(spec);
      if (!parsed.ok()) {
        std::fprintf(stderr, "%s\n", parsed.status().ToString().c_str());
        return 1;
      }
      schema = parsed.value();
    } else {
      auto it = arities.find(name);
      if (it == arities.end()) {
        std::fprintf(stderr,
                     "cannot infer arity of '%s'; add :spec (e.g. %s=%s:ii)\n",
                     name.c_str(), name.c_str(), path.c_str());
        return 1;
      }
      schema = Schema::Ints(it->second);
    }
    auto rel = LoadRelationFile(name, schema, path, &db->dict());
    if (!rel.ok()) {
      std::fprintf(stderr, "%s\n", rel.status().ToString().c_str());
      return 1;
    }
    std::fprintf(stderr, "loaded %s: %llu facts\n", name.c_str(),
                 static_cast<unsigned long long>(rel.value().size()));
    db->catalog().Put(std::move(rel).value());
  }
  return 0;
}

int CmdRun(const Options& opts) {
  DCDatalog db(opts.engine);
  Status st = db.LoadProgramFile(opts.program_path);
  if (!st.ok()) {
    std::fprintf(stderr, "%s\n", st.ToString().c_str());
    return 1;
  }
  if (int rc = LoadRelations(&db, opts); rc != 0) return rc;

  Result<EvalStats> stats =
      opts.updates_path.empty() ? db.Run() : db.BeginIncremental();
  if (!stats.ok()) {
    std::fprintf(stderr, "%s\n", stats.status().ToString().c_str());
    return 1;
  }
  if (opts.stats) {
    std::fprintf(stderr, "%s\n", stats.value().ToString().c_str());
  }
  if (!opts.updates_path.empty()) {
    auto script = LoadUpdateScriptFile(opts.updates_path);
    if (!script.ok()) {
      std::fprintf(stderr, "%s\n", script.status().ToString().c_str());
      return 1;
    }
    for (size_t b = 0; b < script.value().batches.size(); ++b) {
      auto bstats = db.ApplyUpdates(script.value().batches[b]);
      if (!bstats.ok()) {
        std::fprintf(stderr, "batch %zu: %s\n", b,
                     bstats.status().ToString().c_str());
        return 1;
      }
      std::fprintf(stderr,
                   "batch %zu: %llu delta tuples in %.6fs\n", b,
                   static_cast<unsigned long long>(
                       bstats.value().delta_tuples_in),
                   bstats.value().seconds);
      if (opts.stats) {
        std::fprintf(stderr, "%s\n", bstats.value().ToString().c_str());
      }
    }
  }
  if (!opts.trace_out.empty()) {
    Status w = WriteChromeTraceFile(stats.value(), opts.trace_out);
    if (!w.ok()) {
      std::fprintf(stderr, "%s\n", w.ToString().c_str());
      return 1;
    }
    std::fprintf(stderr, "wrote trace (%llu events, %llu dropped) to %s\n",
                 static_cast<unsigned long long>(stats.value().trace.size()),
                 static_cast<unsigned long long>(stats.value().trace_dropped),
                 opts.trace_out.c_str());
  }
  if (!opts.metrics_out.empty()) {
    Status w = WriteMetricsJsonFile(stats.value(), opts.metrics_out);
    if (!w.ok()) {
      std::fprintf(stderr, "%s\n", w.ToString().c_str());
      return 1;
    }
    std::fprintf(stderr, "wrote metrics to %s\n", opts.metrics_out.c_str());
  }

  // Which predicates to surface: --out wins; else .output; else all IDB.
  std::vector<std::string> to_print;
  if (!opts.outputs.empty()) {
    for (const auto& [pred, path] : opts.outputs) {
      const Relation* rel = db.ResultFor(pred);
      if (rel == nullptr) {
        std::fprintf(stderr, "no such result predicate: %s\n", pred.c_str());
        return 1;
      }
      Status w = WriteRelationFile(*rel, path, &db.dict());
      if (!w.ok()) {
        std::fprintf(stderr, "%s\n", w.ToString().c_str());
        return 1;
      }
      std::fprintf(stderr, "wrote %s (%llu rows) to %s\n", pred.c_str(),
                   static_cast<unsigned long long>(rel->size()),
                   path.c_str());
    }
    return 0;
  }
  to_print = db.program()->outputs;
  if (to_print.empty()) {
    std::map<std::string, bool> heads;
    for (const Rule& rule : db.program()->rules) {
      heads[rule.head.predicate] = true;
    }
    for (const auto& [name, unused] : heads) to_print.push_back(name);
  }
  for (const std::string& pred : to_print) {
    const Relation* rel = db.ResultFor(pred);
    if (rel == nullptr) continue;
    std::printf("%s\n", rel->ToString(50).c_str());
  }
  return 0;
}

int CmdServe(const Options& opts) {
  ServerOptions server_opts;
  server_opts.port = static_cast<uint16_t>(opts.port);
  server_opts.pool_capacity = opts.pool_capacity;
  server_opts.engine = opts.engine;
  DcdServer server(server_opts);

  // Serve mode has no program to infer arities from, so every --rel must
  // carry an explicit :spec.
  for (const auto& [name, path_spec] : opts.relations) {
    const size_t colon = path_spec.rfind(':');
    std::string spec;
    std::string path = path_spec;
    if (colon != std::string::npos && colon + 1 < path_spec.size()) {
      const std::string tail = path_spec.substr(colon + 1);
      if (tail.find_first_not_of("ids") == std::string::npos) {
        spec = tail;
        path = path_spec.substr(0, colon);
      }
    }
    if (spec.empty()) {
      std::fprintf(stderr,
                   "serve mode needs an explicit spec: %s=%s:<spec>\n",
                   name.c_str(), path.c_str());
      return 1;
    }
    auto schema = ParseSchemaSpec(spec);
    if (!schema.ok()) {
      std::fprintf(stderr, "%s\n", schema.status().ToString().c_str());
      return 1;
    }
    auto rel = LoadRelationFile(name, schema.value(), path,
                                server.store()->dict());
    if (!rel.ok()) {
      std::fprintf(stderr, "%s\n", rel.status().ToString().c_str());
      return 1;
    }
    std::fprintf(stderr, "loaded %s: %llu facts\n", name.c_str(),
                 static_cast<unsigned long long>(rel.value().size()));
    server.store()->PutRelation(std::move(rel).value());
  }

  Status st = server.Start();
  if (!st.ok()) {
    std::fprintf(stderr, "%s\n", st.ToString().c_str());
    return 1;
  }
  std::fprintf(stderr, "dcd serve: listening on 127.0.0.1:%u (pool=%u)\n",
               server.port(), server.pool()->capacity());
  if (!opts.port_file.empty()) {
    std::FILE* f = std::fopen(opts.port_file.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "cannot write port file: %s\n",
                   opts.port_file.c_str());
      return 1;
    }
    std::fprintf(f, "%u\n", server.port());
    std::fclose(f);
  }

  // Optional update stream: feed the script's batches into the store on a
  // timer, copy-on-write — running sessions keep their pinned snapshots.
  std::atomic<bool> stop_updates{false};
  std::thread updater;
  if (!opts.updates_path.empty()) {
    auto script = LoadUpdateScriptFile(opts.updates_path);
    if (!script.ok()) {
      std::fprintf(stderr, "%s\n", script.status().ToString().c_str());
      return 1;
    }
    updater = std::thread([&server, &stop_updates,
                           script = std::move(script).value(),
                           interval_ms = opts.update_interval_ms] {
      for (const UpdateBatch& batch : script.batches) {
        if (stop_updates.load(std::memory_order_acquire)) return;
        auto applied = server.store()->ApplyBatch(batch);
        if (!applied.ok()) {
          std::fprintf(stderr, "update batch failed: %s\n",
                       applied.status().ToString().c_str());
          return;
        }
        std::fprintf(stderr, "applied update batch -> store version %llu\n",
                     static_cast<unsigned long long>(
                         applied.value().version));
        std::this_thread::sleep_for(
            std::chrono::milliseconds(interval_ms));
      }
    });
  }

  while (!server.shutdown_requested()) {
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  }
  std::fprintf(stderr, "dcd serve: shutdown requested\n");
  stop_updates.store(true, std::memory_order_release);
  if (updater.joinable()) updater.join();
  server.Stop();
  return 0;
}

int CmdExplain(const Options& opts) {
  DCDatalog db(opts.engine);
  Status st = db.LoadProgramFile(opts.program_path);
  if (!st.ok()) {
    std::fprintf(stderr, "%s\n", st.ToString().c_str());
    return 1;
  }
  if (int rc = LoadRelations(&db, opts); rc != 0) return rc;
  auto logical = db.ExplainLogical();
  if (!logical.ok()) {
    std::fprintf(stderr, "%s\n", logical.status().ToString().c_str());
    return 1;
  }
  std::printf("--- analysis & logical plans ---\n%s\n",
              logical.value().c_str());
  auto physical = db.ExplainPhysical();
  if (!physical.ok()) {
    std::fprintf(stderr, "%s\n", physical.status().ToString().c_str());
    return 1;
  }
  std::printf("--- physical plan ---\n%s", physical.value().c_str());
  return 0;
}

int CmdGenerate(const std::string& kind_spec, const std::string& path,
                const Options& opts) {
  // kind:arg1[:arg2]
  std::vector<std::string> parts;
  std::string cur;
  for (char c : kind_spec) {
    if (c == ':') {
      parts.push_back(cur);
      cur.clear();
    } else {
      cur += c;
    }
  }
  parts.push_back(cur);
  const std::string& kind = parts[0];
  auto arg = [&](size_t i, uint64_t def) -> uint64_t {
    return parts.size() > i ? std::strtoull(parts[i].c_str(), nullptr, 10)
                            : def;
  };

  Graph g;
  if (kind == "rmat") {
    g = GenerateRmat(arg(1, 1024), opts.seed, arg(2, 10));
  } else if (kind == "tree") {
    g = GenerateRandomTree(static_cast<uint32_t>(arg(1, 8)), opts.seed);
  } else if (kind == "gnp") {
    double p = parts.size() > 2 ? std::atof(parts[2].c_str()) : 0.001;
    g = GenerateGnp(arg(1, 1000), p, opts.seed);
  } else if (kind == "social") {
    g = GenerateSocialGraph(arg(1, 10000), arg(2, 10), opts.seed);
  } else if (kind == "ntree") {
    g = GenerateLeveledTree(arg(1, 10000), opts.seed);
  } else if (kind == "star") {
    g = GenerateStarHub(arg(1, 1024), opts.seed);
  } else if (kind == "zipf") {
    double alpha = parts.size() > 3 ? std::atof(parts[3].c_str()) : 1.0;
    g = GenerateZipfDegree(arg(1, 10000), alpha, arg(2, 1000), opts.seed);
  } else {
    std::fprintf(stderr, "unknown generator kind: %s\n", kind.c_str());
    return 2;
  }
  if (opts.weights > 0) AssignRandomWeights(&g, opts.weights, opts.seed);
  Status st = SaveEdgeList(g, path);
  if (!st.ok()) {
    std::fprintf(stderr, "%s\n", st.ToString().c_str());
    return 1;
  }
  std::fprintf(stderr, "wrote %llu vertices / %llu edges to %s\n",
               static_cast<unsigned long long>(g.num_vertices()),
               static_cast<unsigned long long>(g.num_edges()), path.c_str());
  return 0;
}

}  // namespace
}  // namespace dcdatalog

int main(int argc, char** argv) {
  using namespace dcdatalog;
  if (argc < 2) return Usage();
  const std::string cmd = argv[1];
  Options opts;

  if (cmd == "serve") {
    if (!ParseCommon(argc, argv, 2, &opts)) return Usage();
    return CmdServe(opts);
  }
  if (argc < 3) return Usage();
  if (cmd == "run" || cmd == "explain") {
    opts.program_path = argv[2];
    if (!ParseCommon(argc, argv, 3, &opts)) return Usage();
    return cmd == "run" ? CmdRun(opts) : CmdExplain(opts);
  }
  if (cmd == "generate") {
    if (argc < 4) return Usage();
    if (!ParseCommon(argc, argv, 4, &opts)) return Usage();
    return CmdGenerate(argv[2], argv[3], opts);
  }
  return Usage();
}
