// Graph analytics on a synthetic social network: connected components,
// single-source shortest paths, and PageRank — the three graph workloads
// of the paper's evaluation (§7.1.1), on one generated dataset.
//
//   ./graph_analytics [num_vertices] [num_workers] [global|ssp|dws]

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <string>

#include "common/timer.h"
#include "core/dcdatalog.h"
#include "graph/generators.h"

namespace {

using namespace dcdatalog;

CoordinationMode ParseMode(const char* s) {
  if (std::strcmp(s, "global") == 0) return CoordinationMode::kGlobal;
  if (std::strcmp(s, "ssp") == 0) return CoordinationMode::kSsp;
  return CoordinationMode::kDws;
}

void RunQuery(const EngineOptions& options, const Graph& graph,
              const char* name, const std::string& program,
              const std::string& result_pred) {
  DCDatalog db(options);
  db.AddGraph(graph, "arc");
  db.AddGraph(graph, "warc", /*weighted=*/true);
  // PageRank needs the transition matrix with out-degrees.
  std::map<uint64_t, int64_t> outdeg;
  for (const Edge& e : graph.edges()) ++outdeg[e.src];
  Relation matrix("matrix", Schema::Ints(3));
  for (const Edge& e : graph.edges()) {
    matrix.Append({e.src, e.dst, WordFromInt(outdeg[e.src])});
  }
  db.catalog().Put(std::move(matrix));

  Status st = db.LoadProgramText(program);
  if (!st.ok()) {
    std::fprintf(stderr, "[%s] %s\n", name, st.ToString().c_str());
    return;
  }
  WallTimer timer;
  auto stats = db.Run();
  if (!stats.ok()) {
    std::fprintf(stderr, "[%s] %s\n", name,
                 stats.status().ToString().c_str());
    return;
  }
  std::printf("%-10s %8.3fs  %9llu result tuples  (%llu local iterations)\n",
              name, timer.ElapsedSeconds(),
              static_cast<unsigned long long>(
                  db.ResultFor(result_pred)->size()),
              static_cast<unsigned long long>(
                  stats.value().total_local_iterations));
}

}  // namespace

int main(int argc, char** argv) {
  const uint64_t n = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 20000;
  EngineOptions options;
  options.num_workers = argc > 2 ? std::atoi(argv[2]) : 4;
  options.coordination = ParseMode(argc > 3 ? argv[3] : "dws");

  std::printf("generating social graph: %llu vertices...\n",
              static_cast<unsigned long long>(n));
  Graph graph = GenerateSocialGraph(n, /*avg_degree=*/10, /*seed=*/2022);
  AssignRandomWeights(&graph, 100, 7);
  std::printf("%llu edges; workers=%u, strategy=%s\n\n",
              static_cast<unsigned long long>(graph.num_edges()),
              options.num_workers,
              CoordinationModeName(options.coordination));

  RunQuery(options, graph, "CC", R"(
    cc2(Y, min<Y>) :- arc(Y, _).
    cc2(Y, min<Y>) :- arc(_, Y).
    cc2(Y, min<Z>) :- cc2(X, Z), arc(X, Y).
    cc2(Y, min<Z>) :- cc2(X, Z), arc(Y, X).
    cc(Y, min<Z>) :- cc2(Y, Z).
  )",
           "cc");

  RunQuery(options, graph, "SSSP", R"(
    sp(To, min<C>) :- To = 0, C = 0.
    sp(To2, min<C>) :- sp(To1, C1), warc(To1, To2, C2), C = C1 + C2.
    results(To, min<C>) :- sp(To, C).
  )",
           "results");

  char pagerank[512];
  std::snprintf(pagerank, sizeof(pagerank), R"(
    rank(X, sum<(X, I)>) :- matrix(X, _, _), I = 0.15 / %llu.0.
    rank(X, sum<(Y, K)>) :- rank(Y, C), matrix(Y, X, D), K = 0.85 * (C / D).
    results(X, V) :- rank(X, V).
  )",
                static_cast<unsigned long long>(n));
  RunQuery(options, graph, "PageRank", pagerank, "results");
  return 0;
}
