// "Who will attend the party" (paper Query 4): mutual recursion between
// attend and cnt with a count aggregate, over string-named people — shows
// string interning and reading derived results back by name.
//
//   ./social_network [num_people]

#include <cstdio>
#include <algorithm>
#include <cstdlib>
#include <string>
#include <vector>

#include "common/random.h"
#include "core/dcdatalog.h"

int main(int argc, char** argv) {
  using namespace dcdatalog;
  const uint64_t people = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 200;

  EngineOptions options;
  options.num_workers = 4;
  DCDatalog db(options);

  // Invent names person0..personN and a random friendship relation.
  std::vector<uint64_t> ids;
  ids.reserve(people);
  for (uint64_t p = 0; p < people; ++p) {
    ids.push_back(db.Intern("person" + std::to_string(p)));
  }

  // Seed ~5 % of people as organizers so the attendance cascade can take
  // off (someone attends once 3+ of their friends do).
  Relation organizer("organizer",
                     Schema({{"who", ColumnType::kString}}));
  const uint64_t seeds = std::max<uint64_t>(3, people / 20);
  for (uint64_t s = 0; s < seeds; ++s) organizer.Append({ids[s]});
  db.catalog().Put(std::move(organizer));

  Relation friends("friend", Schema({{"a", ColumnType::kString},
                                     {"b", ColumnType::kString}}));
  Rng rng(4242);
  for (uint64_t p = 0; p < people; ++p) {
    for (int k = 0; k < 8; ++k) {
      friends.Append({ids[p], ids[rng.Uniform(people)]});
    }
  }
  db.catalog().Put(std::move(friends));

  Status st = db.LoadProgramText(R"(
    attend(X) :- organizer(X).
    cnt(Y, count<X>) :- attend(X), friend(Y, X).
    attend(X) :- cnt(X, N), N >= 3.
  )");
  if (!st.ok()) {
    std::fprintf(stderr, "%s\n", st.ToString().c_str());
    return 1;
  }
  auto stats = db.Run();
  if (!stats.ok()) {
    std::fprintf(stderr, "%s\n", stats.status().ToString().c_str());
    return 1;
  }

  const Relation* attend = db.ResultFor("attend");
  std::printf("%llu of %llu people attend the party.\n",
              static_cast<unsigned long long>(attend->size()),
              static_cast<unsigned long long>(people));
  const uint64_t show = std::min<uint64_t>(attend->size(), 10);
  for (uint64_t r = 0; r < show; ++r) {
    std::printf("  %s\n", db.dict().Get(attend->Row(r)[0]).c_str());
  }
  if (attend->size() > show) std::printf("  ...\n");
  std::printf("\n%s\n", stats.value().ToString().c_str());
  return 0;
}
