// Walkthrough of the paper's running example (Figure 3): the connected-
// component query on the 10-vertex example graph, executed under all three
// coordination strategies. Prints per-strategy wall time and iteration
// counts so the Global ≥ SSP ≥ DWS ordering of the paper's worked example
// can be observed live (on a larger instance of the same shape, so the
// differences are measurable).
//
//   ./coordination_walkthrough [scale]

#include <cstdio>
#include <cstdlib>

#include "common/timer.h"
#include "core/dcdatalog.h"
#include "graph/generators.h"

namespace {

using namespace dcdatalog;

/// The paper's Figure 3(a) graph: one small cluster {1,2,3} around vertex 1
/// plus a larger blob around vertex 4 — the worker owning the small cluster
/// finishes its local iterations first, which is exactly the situation the
/// strategies handle differently. `scale` inflates the blob.
Graph Figure3Graph(uint64_t scale) {
  Graph g;
  g.AddEdge(1, 2);
  g.AddEdge(2, 3);
  g.AddEdge(3, 1);
  // The heavy component: a long chain with shortcuts, vertices 4..4+scale.
  for (uint64_t i = 0; i < scale; ++i) {
    g.AddEdge(4 + i, 5 + i);
    if (i % 3 == 0 && i > 0) g.AddEdge(4 + i, 4 + i / 2);
  }
  return g;
}

constexpr char kCc[] = R"(
  cc2(Y, min<Y>) :- arc(Y, _).
  cc2(Y, min<Y>) :- arc(_, Y).
  cc2(Y, min<Z>) :- cc2(X, Z), arc(X, Y).
  cc2(Y, min<Z>) :- cc2(X, Z), arc(Y, X).
  cc(Y, min<Z>) :- cc2(Y, Z).
)";

}  // namespace

int main(int argc, char** argv) {
  const uint64_t scale = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 20000;
  Graph g = Figure3Graph(scale);
  std::printf(
      "Figure 3 walkthrough: CC on the example graph scaled to %llu edges, "
      "3 workers\n\n",
      static_cast<unsigned long long>(g.num_edges()));
  std::printf("%-8s %10s %18s %18s\n", "strategy", "time", "local iters(total)",
              "local iters(max)");

  uint64_t expected = 0;
  for (CoordinationMode mode :
       {CoordinationMode::kGlobal, CoordinationMode::kSsp,
        CoordinationMode::kDws}) {
    EngineOptions options;
    options.num_workers = 3;  // As in the worked example W1..W3.
    options.coordination = mode;
    DCDatalog db(options);
    db.AddGraph(g, "arc");
    if (!db.LoadProgramText(kCc).ok()) return 1;
    WallTimer timer;
    auto stats = db.Run();
    if (!stats.ok()) {
      std::fprintf(stderr, "%s\n", stats.status().ToString().c_str());
      return 1;
    }
    std::printf("%-8s %9.3fs %18llu %18llu\n", CoordinationModeName(mode),
                timer.ElapsedSeconds(),
                static_cast<unsigned long long>(
                    stats.value().total_local_iterations),
                static_cast<unsigned long long>(
                    stats.value().max_local_iterations));
    // Sanity: every strategy computes the same components.
    const uint64_t labels = db.ResultFor("cc")->size();
    if (expected == 0) expected = labels;
    if (labels != expected) {
      std::fprintf(stderr, "strategy disagreement: %llu vs %llu labels!\n",
                   static_cast<unsigned long long>(labels),
                   static_cast<unsigned long long>(expected));
      return 1;
    }
  }
  std::printf(
      "\nAll strategies agree on %llu component labels. DWS avoids the\n"
      "per-iteration global barrier (Global) and the fixed staleness bound\n"
      "(SSP) by letting each worker decide, from its queueing statistics,\n"
      "whether waiting for more tuples beats starting the next iteration.\n",
      static_cast<unsigned long long>(expected));

  // Second act: render each strategy's execution timeline (the live
  // version of the paper's Figure 3(b) diagrams). '#' = computing an
  // iteration, '.' = idle waiting (barrier / slack / ω-τ wait / parked).
  std::printf("\nExecution timelines (%u columns = full run):\n", 72u);
  for (CoordinationMode mode :
       {CoordinationMode::kGlobal, CoordinationMode::kSsp,
        CoordinationMode::kDws}) {
    EngineOptions options;
    options.num_workers = 3;
    options.coordination = mode;
    options.enable_trace = true;
    DCDatalog db(options);
    db.AddGraph(g, "arc");
    if (!db.LoadProgramText(kCc).ok()) return 1;
    auto stats = db.Run();
    if (!stats.ok()) return 1;
    const auto& trace = stats.value().trace;
    if (trace.empty()) continue;
    int64_t t0 = trace[0].start_ns, t1 = trace[0].end_ns;
    for (const TraceEvent& ev : trace) {
      t0 = std::min(t0, ev.start_ns);
      t1 = std::max(t1, ev.end_ns);
    }
    const double span = std::max<double>(1.0, static_cast<double>(t1 - t0));
    constexpr int kCols = 72;
    std::printf("\n%s (%.0f ms total)\n", CoordinationModeName(mode),
                span / 1e6);
    for (uint32_t w = 0; w < 3; ++w) {
      // Per column, pick the dominant activity of that time slice.
      double busy[kCols] = {0}, idle[kCols] = {0};
      for (const TraceEvent& ev : trace) {
        if (ev.worker != w) continue;
        const double a = (ev.start_ns - t0) / span * kCols;
        const double b = (ev.end_ns - t0) / span * kCols;
        for (int c = static_cast<int>(a); c <= b && c < kCols; ++c) {
          const double lo = std::max(a, static_cast<double>(c));
          const double hi = std::min(b, static_cast<double>(c + 1));
          if (hi <= lo) continue;
          (ev.kind == TraceEvent::Kind::kIteration ? busy : idle)[c] +=
              hi - lo;
        }
      }
      std::printf("  W%u |", w + 1);
      for (int c = 0; c < kCols; ++c) {
        char glyph = ' ';
        if (busy[c] > 0 && busy[c] >= idle[c]) {
          glyph = '#';
        } else if (idle[c] > 0) {
          glyph = '.';
        }
        std::printf("%c", glyph);
      }
      std::printf("|\n");
    }
  }
  std::printf(
      "\nGlobal's rows show wide '.' bands: fast workers parked at the\n"
      "barrier while the straggler computes. DWS rows stay mostly '#'.\n");
  return 0;
}
