// Reachability audit with stratified negation (the engine's extension
// beyond the paper): given a service-dependency graph, find services that
// cannot be reached from the entry point, and "dead-end" services that
// nothing depends on — both are anti-joins against a recursive closure.
//
//   ./reachability_audit [num_services]

#include <cstdio>
#include <cstdlib>

#include "core/dcdatalog.h"
#include "graph/generators.h"

int main(int argc, char** argv) {
  using namespace dcdatalog;
  const uint64_t n = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 2000;

  EngineOptions options;
  options.num_workers = 4;
  DCDatalog db(options);

  // depends(A, B): service A calls service B. Entry point is service 0.
  Graph g = GenerateRmat(n, /*seed=*/77, /*edges_per_vertex=*/3);
  db.AddGraph(g, "depends");

  Status st = db.LoadProgramText(R"(
    % Everything the entry point (service 0) transitively calls.
    reach(Y) :- depends(0, Y).
    reach(Y) :- reach(X), depends(X, Y).

    service(X) :- depends(X, _).
    service(X) :- depends(_, X).

    % Services never exercised from the entry point: candidates to retire.
    orphan(X) :- service(X), !reach(X), X != 0.

    % Leaves: reachable services that call nothing further.
    leaf(X) :- reach(X), !depends(X, _).

    % How big is the live sub-system?
    live(count<X>) :- reach(X).
  )");
  if (!st.ok()) {
    std::fprintf(stderr, "%s\n", st.ToString().c_str());
    return 1;
  }
  auto stats = db.Run();
  if (!stats.ok()) {
    std::fprintf(stderr, "%s\n", stats.status().ToString().c_str());
    return 1;
  }

  const uint64_t services = db.ResultFor("service")->size();
  const uint64_t orphans = db.ResultFor("orphan")->size();
  const uint64_t leaves = db.ResultFor("leaf")->size();
  const Relation* live = db.ResultFor("live");
  std::printf("dependency graph: %llu services, %llu call edges\n",
              static_cast<unsigned long long>(services),
              static_cast<unsigned long long>(g.num_edges()));
  std::printf("reachable from entry point: %lld\n",
              live->size() > 0
                  ? static_cast<long long>(IntFromWord(live->Row(0)[0]))
                  : 0);
  std::printf("orphaned services (never called from entry): %llu\n",
              static_cast<unsigned long long>(orphans));
  std::printf("leaf services (call nothing): %llu\n",
              static_cast<unsigned long long>(leaves));
  std::printf("\n%s\n", stats.value().ToString().c_str());
  return 0;
}
