// Bill-of-Materials delivery planning (paper Query 8): the max delivery
// time of every assembly is the slowest of its sub-parts — a max aggregate
// inside recursion, evaluated bottom-up over a synthetic assembly tree.
//
//   ./bill_of_materials [num_parts]

#include <cstdio>
#include <cstdlib>
#include <set>

#include "common/random.h"
#include "core/dcdatalog.h"
#include "graph/generators.h"

int main(int argc, char** argv) {
  using namespace dcdatalog;
  const uint64_t parts = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 100000;

  EngineOptions options;
  options.num_workers = 4;
  DCDatalog db(options);

  // assbl(P, S): assembly P contains sub-part S. An N-n style tree.
  Graph tree = GenerateLeveledTree(parts, /*seed=*/99);
  db.AddGraph(tree, "assbl");

  // basic(P, D): leaf parts have a supplier delivery time of 1..30 days.
  std::set<uint64_t> assemblies;
  for (const Edge& e : tree.edges()) assemblies.insert(e.src);
  Relation basic("basic", Schema::Ints(2));
  Rng rng(7);
  uint64_t leaves = 0;
  for (uint64_t v = 0; v < tree.num_vertices(); ++v) {
    if (assemblies.count(v) == 0) {
      basic.Append({v, static_cast<uint64_t>(rng.UniformRange(1, 30))});
      ++leaves;
    }
  }
  db.catalog().Put(std::move(basic));
  std::printf("assembly tree: %llu parts, %llu leaves\n",
              static_cast<unsigned long long>(tree.num_vertices()),
              static_cast<unsigned long long>(leaves));

  Status st = db.LoadProgramText(R"(
    delivery(P, max<D>) :- basic(P, D).
    delivery(P, max<D>) :- assbl(P, S), delivery(S, D).
    results(P, max<D>) :- delivery(P, D).
  )");
  if (!st.ok()) {
    std::fprintf(stderr, "%s\n", st.ToString().c_str());
    return 1;
  }
  auto stats = db.Run();
  if (!stats.ok()) {
    std::fprintf(stderr, "%s\n", stats.status().ToString().c_str());
    return 1;
  }

  // The root (part 0) delivery time is the critical path of the build.
  const Relation* results = db.ResultFor("results");
  for (uint64_t r = 0; r < results->size(); ++r) {
    if (results->Row(r)[0] == 0) {
      std::printf("full product (part 0) delivery time: %lld days\n",
                  static_cast<long long>(IntFromWord(results->Row(r)[1])));
    }
  }
  std::printf("%llu parts costed; %s\n",
              static_cast<unsigned long long>(results->size()),
              stats.value().ToString().c_str());
  return 0;
}
