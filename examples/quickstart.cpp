// Quickstart: load a graph, run transitive closure, inspect plans and
// results. Start here.
//
//   ./quickstart

#include <cstdio>

#include "core/dcdatalog.h"
#include "graph/generators.h"

int main() {
  using namespace dcdatalog;

  // 1. Configure the engine. Defaults: DWS coordination, all optimizations
  //    on, one worker per hardware thread.
  EngineOptions options;
  options.num_workers = 4;
  options.coordination = CoordinationMode::kDws;
  DCDatalog db(options);

  // 2. Load base facts. Any Relation works; graphs have a shortcut.
  Graph g;
  g.AddEdge(0, 1);
  g.AddEdge(1, 2);
  g.AddEdge(2, 3);
  g.AddEdge(1, 4);
  g.AddEdge(4, 5);
  db.AddGraph(g, "arc");

  // 3. Load a Datalog program (see examples/queries/*.dl for more).
  Status st = db.LoadProgramText(R"(
    tc(X, Y) :- arc(X, Y).
    tc(X, Y) :- tc(X, Z), arc(Z, Y).
  )");
  if (!st.ok()) {
    std::fprintf(stderr, "parse error: %s\n", st.ToString().c_str());
    return 1;
  }

  // 4. (Optional) Look at what the planner will do.
  auto logical = db.ExplainLogical();
  if (logical.ok()) {
    std::printf("--- logical plan ---\n%s\n", logical.value().c_str());
  }

  // 5. Evaluate in parallel to the fixpoint.
  auto stats = db.Run();
  if (!stats.ok()) {
    std::fprintf(stderr, "run error: %s\n", stats.status().ToString().c_str());
    return 1;
  }
  std::printf("--- stats ---\n%s\n", stats.value().ToString().c_str());

  // 6. Read the materialized result.
  const Relation* tc = db.ResultFor("tc");
  std::printf("--- tc (%llu facts) ---\n%s\n",
              static_cast<unsigned long long>(tc->size()),
              tc->ToString().c_str());
  return 0;
}
