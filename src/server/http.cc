#include "server/http.h"

#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <csignal>
#include <cstring>
#include <utility>

namespace dcdatalog {
namespace {

constexpr size_t kMaxRequestBytes = 64u << 20;

const char* StatusText(int status) {
  switch (status) {
    case 200:
      return "OK";
    case 400:
      return "Bad Request";
    case 404:
      return "Not Found";
    case 405:
      return "Method Not Allowed";
    case 500:
      return "Internal Server Error";
    default:
      return "Unknown";
  }
}

bool SendAll(int fd, const char* data, size_t len) {
  size_t sent = 0;
  while (sent < len) {
    const ssize_t n = ::send(fd, data + sent, len - sent, 0);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    sent += static_cast<size_t>(n);
  }
  return true;
}

/// Reads until the header terminator plus Content-Length body bytes.
/// Returns false on socket error, oversize, or malformed framing.
bool ReadRequest(int fd, std::string* raw, size_t* header_end) {
  char buf[4096];
  *header_end = std::string::npos;
  size_t body_expected = std::string::npos;
  while (true) {
    if (*header_end != std::string::npos) {
      const size_t have = raw->size() - (*header_end + 4);
      if (body_expected == std::string::npos || have >= body_expected) {
        return true;
      }
    }
    const ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    if (n == 0) return *header_end != std::string::npos;
    raw->append(buf, static_cast<size_t>(n));
    if (raw->size() > kMaxRequestBytes) return false;
    if (*header_end == std::string::npos) {
      *header_end = raw->find("\r\n\r\n");
      if (*header_end != std::string::npos) {
        // Case-insensitive-enough Content-Length scan: clients here are
        // curl, python, and our own tests, all of which send the canonical
        // spelling (curl lowercases in HTTP/2 only).
        size_t pos = raw->find("Content-Length:");
        if (pos == std::string::npos) pos = raw->find("content-length:");
        if (pos != std::string::npos && pos < *header_end) {
          body_expected = static_cast<size_t>(
              std::strtoull(raw->c_str() + pos + 15, nullptr, 10));
          if (body_expected > kMaxRequestBytes) return false;
        } else {
          body_expected = 0;
        }
      }
    }
  }
}

bool ParseRequest(const std::string& raw, size_t header_end,
                  HttpRequest* req) {
  const size_t line_end = raw.find("\r\n");
  if (line_end == std::string::npos || line_end > header_end) return false;
  const std::string line = raw.substr(0, line_end);
  const size_t sp1 = line.find(' ');
  const size_t sp2 = line.rfind(' ');
  if (sp1 == std::string::npos || sp2 == sp1) return false;
  req->method = line.substr(0, sp1);
  std::string target = line.substr(sp1 + 1, sp2 - sp1 - 1);
  const size_t qmark = target.find('?');
  if (qmark == std::string::npos) {
    req->path = std::move(target);
  } else {
    req->path = target.substr(0, qmark);
    req->query = target.substr(qmark + 1);
  }
  req->body = raw.substr(header_end + 4);
  return !req->method.empty() && !req->path.empty();
}

}  // namespace

std::string HttpRequest::QueryParam(const std::string& key) const {
  size_t pos = 0;
  while (pos < query.size()) {
    size_t amp = query.find('&', pos);
    if (amp == std::string::npos) amp = query.size();
    const size_t eq = query.find('=', pos);
    if (eq != std::string::npos && eq < amp &&
        query.compare(pos, eq - pos, key) == 0) {
      return query.substr(eq + 1, amp - eq - 1);
    }
    pos = amp + 1;
  }
  return "";
}

HttpServer::~HttpServer() { Stop(); }

Status HttpServer::Start(uint16_t port, Handler handler) {
  handler_ = std::move(handler);
  // A peer closing mid-response must not kill the process.
  ::signal(SIGPIPE, SIG_IGN);

  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    return Status::RuntimeError("socket() failed: " +
                                std::string(std::strerror(errno)));
  }
  const int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
    const Status st = Status::RuntimeError(
        "bind() failed: " + std::string(std::strerror(errno)));
    ::close(fd);
    return st;
  }
  if (::listen(fd, 64) < 0) {
    const Status st = Status::RuntimeError(
        "listen() failed: " + std::string(std::strerror(errno)));
    ::close(fd);
    return st;
  }
  socklen_t len = sizeof(addr);
  ::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len);
  port_ = ntohs(addr.sin_port);

  stopping_.store(false, std::memory_order_release);
  listen_fd_.store(fd, std::memory_order_release);
  accept_thread_ = std::thread([this] { AcceptLoop(); });
  return Status::OK();
}

void HttpServer::AcceptLoop() {
  while (!stopping_.load(std::memory_order_acquire)) {
    const int listen_fd = listen_fd_.load(std::memory_order_acquire);
    if (listen_fd < 0) return;  // Stop() already retired the listener.
    const int fd = ::accept(listen_fd, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR) continue;
      // Listener closed by Stop() (or a hard error): leave the loop either
      // way — an accept loop spinning on a dead socket helps nobody.
      return;
    }
    if (stopping_.load(std::memory_order_acquire)) {
      ::close(fd);
      return;
    }
    MutexLock lock(&conn_mu_);
    connections_.emplace_back([this, fd] { HandleConnection(fd); });
  }
}

void HttpServer::HandleConnection(int fd) {
  std::string raw;
  size_t header_end = 0;
  HttpRequest req;
  HttpResponse resp;
  if (!ReadRequest(fd, &raw, &header_end) ||
      !ParseRequest(raw, header_end, &req)) {
    resp.status = 400;
    resp.body = "{\"error\": \"malformed request\"}\n";
  } else {
    try {
      resp = handler_(req);
    } catch (const std::exception& e) {
      resp = HttpResponse();
      resp.status = 500;
      resp.body = std::string("{\"error\": \"") + e.what() + "\"}\n";
    }
  }
  std::string head = "HTTP/1.1 " + std::to_string(resp.status) + " " +
                     StatusText(resp.status) +
                     "\r\nContent-Type: " + resp.content_type +
                     "\r\nContent-Length: " + std::to_string(resp.body.size()) +
                     "\r\nConnection: close\r\n\r\n";
  SendAll(fd, head.data(), head.size()) &&
      SendAll(fd, resp.body.data(), resp.body.size());
  ::shutdown(fd, SHUT_RDWR);
  ::close(fd);
}

void HttpServer::Stop() {
  stopping_.store(true, std::memory_order_release);
  // Retire the listener exactly once (exchange keeps Stop idempotent and
  // race-free against itself). Closing it unblocks accept(); shutdown
  // first for the platforms where close alone does not wake a blocked
  // accept. AcceptLoop may still pass the retired descriptor to accept()
  // — that returns EBADF, which it treats as "leave the loop".
  const int fd = listen_fd_.exchange(-1, std::memory_order_acq_rel);
  if (fd < 0) return;
  ::shutdown(fd, SHUT_RDWR);
  ::close(fd);
  if (accept_thread_.joinable()) accept_thread_.join();
  std::vector<std::thread> conns;
  {
    MutexLock lock(&conn_mu_);
    conns.swap(connections_);
  }
  for (auto& t : conns) t.join();
}

}  // namespace dcdatalog
