#include "server/server.h"

#include <algorithm>
#include <cstdio>
#include <map>
#include <sstream>
#include <utility>

#include "common/parse.h"
#include "core/trace_export.h"
#include "datalog/ast.h"
#include "datalog/parser.h"
#include "storage/catalog.h"
#include "storage/updates.h"

namespace dcdatalog {
namespace {

std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 8);
  for (const char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

HttpResponse JsonError(int status, const std::string& message) {
  HttpResponse resp;
  resp.status = status;
  resp.body = "{\"error\": \"" + JsonEscape(message) + "\"}\n";
  return resp;
}

/// The output predicates of a program: `.output` declarations, else every
/// rule head (same policy as the CLI's result printing).
std::vector<std::string> OutputPredicates(const Program& program) {
  if (!program.outputs.empty()) return program.outputs;
  std::map<std::string, bool> heads;
  for (const Rule& rule : program.rules) heads[rule.head.predicate] = true;
  std::vector<std::string> out;
  out.reserve(heads.size());
  for (const auto& [name, unused] : heads) out.push_back(name);
  return out;
}

}  // namespace

DcdServer::DcdServer(ServerOptions options)
    : options_(std::move(options)),
      pool_(options_.pool_capacity != 0
                ? options_.pool_capacity
                : EngineOptions{}.Resolved().num_workers),
      admission_(pool_.capacity(), options_.admission_trace_capacity) {}

DcdServer::~DcdServer() { Stop(); }

Status DcdServer::Start() {
  return http_.Start(options_.port,
                     [this](const HttpRequest& req) { return Handle(req); });
}

void DcdServer::Stop() { http_.Stop(); }

Result<QueryResult> DcdServer::ExecuteQuery(const std::string& program_text,
                                            uint32_t num_workers) {
  uint64_t id = 0;
  {
    MutexLock lock(&mu_);
    id = next_session_id_++;
    ++sessions_active_;
  }

  EngineOptions eo = options_.engine;
  if (num_workers != 0) eo.num_workers = num_workers;
  eo = eo.Resolved();
  // A gang wider than the pool bypasses it (WorkerPool::Run's
  // dedicated-thread backstop). The requested width is NOT clamped: the
  // fallback gang's threads load the machine all the same, so admission's
  // ρ numerator must count them — a ρ above 1 is the visible overload
  // signal, and the pool's fallback_gangs counter names the culprit.
  eo.worker_pool = &pool_;
  eo.enable_trace = true;  // Per-session trace export is part of serving.

  const AdmissionDecision decision = admission_.OnArrival(eo.num_workers);

  // Session-local state: nothing here outlives the call except the pinned
  // shared relations and the record of the exports.
  QueryResult result;
  result.session_id = id;
  result.admitted_immediately = decision.admitted;

  SessionRecord record;
  auto finish = [&](const Status& st) {
    MutexLock lock(&mu_);
    --sessions_active_;
    if (st.ok()) {
      ++sessions_completed_;
    } else {
      ++sessions_failed_;
    }
  };

  Catalog session_catalog;
  result.snapshot_version = store_.SnapshotInto(&session_catalog);
  record.snapshot_version = result.snapshot_version;

  Result<Program> program = ParseProgram(program_text, store_.dict());
  if (!program.ok()) {
    admission_.OnComplete(eo.num_workers, 0.0);
    record.error = program.status().ToString();
    RecordSession(id, std::move(record));
    finish(program.status());
    return program.status();
  }

  Engine engine(&session_catalog, eo);
  Result<EvalStats> stats = engine.Run(program.value());
  admission_.OnComplete(eo.num_workers,
                        stats.ok() ? stats.value().seconds : 0.0);
  if (!stats.ok()) {
    record.error = stats.status().ToString();
    RecordSession(id, std::move(record));
    finish(stats.status());
    return stats.status();
  }

  // Export this session's metrics and trace now, from its own EvalStats —
  // the per-session isolation the stats sentinel test pins down.
  {
    std::ostringstream metrics;
    WriteMetricsJson(stats.value(), metrics);
    record.metrics_json = metrics.str();
    std::ostringstream trace;
    WriteChromeTrace(stats.value(), trace);
    record.trace_json = trace.str();
    record.ok = true;
    record.seconds = stats.value().seconds;
  }

  for (const std::string& pred : OutputPredicates(program.value())) {
    const Relation* rel = session_catalog.Find(pred);
    if (rel != nullptr) result.outputs.push_back(*rel);
  }
  result.stats = std::move(stats).value();
  RecordSession(id, std::move(record));
  finish(Status::OK());
  return result;
}

Result<EdbStore::ApplyResult> DcdServer::ApplyUpdateText(
    const std::string& script_text) {
  DCD_ASSIGN_OR_RETURN(UpdateScript script, ParseUpdateScript(script_text));
  EdbStore::ApplyResult total;
  for (const UpdateBatch& batch : script.batches) {
    DCD_ASSIGN_OR_RETURN(EdbStore::ApplyResult one, store_.ApplyBatch(batch));
    total.version = one.version;
    total.relations_touched += one.relations_touched;
    total.rows_added += one.rows_added;
    total.rows_removed += one.rows_removed;
  }
  if (script.batches.empty()) total.version = store_.version();
  return total;
}

void DcdServer::RecordSession(uint64_t id, SessionRecord record) {
  MutexLock lock(&mu_);
  sessions_.emplace(id, std::move(record));
  while (sessions_.size() > options_.max_sessions_retained) {
    sessions_.erase(sessions_.begin());
  }
}

std::string DcdServer::HealthJson() const {
  uint64_t active = 0;
  uint64_t completed = 0;
  {
    MutexLock lock(&mu_);
    active = sessions_active_;
    completed = sessions_completed_;
  }
  std::ostringstream os;
  os << "{\"status\": \"ok\", \"store_version\": " << store_.version()
     << ", \"sessions_active\": " << active
     << ", \"sessions_completed\": " << completed << "}\n";
  return os.str();
}

std::string DcdServer::MetricsJson() const {
  uint64_t active = 0;
  uint64_t completed = 0;
  uint64_t failed = 0;
  {
    MutexLock lock(&mu_);
    active = sessions_active_;
    completed = sessions_completed_;
    failed = sessions_failed_;
  }
  std::ostringstream os;
  os << "{\"pool\": {\"capacity\": " << pool_.capacity()
     << ", \"in_use\": " << pool_.InUse()
     << ", \"waiting\": " << pool_.Waiting()
     << ", \"jobs_run\": " << pool_.JobsRun()
     << ", \"fallback_gangs\": " << pool_.FallbackGangs() << "},\n"
     << "\"admission\": {\"admitted\": " << admission_.admitted_count()
     << ", \"queued\": " << admission_.queued_count()
     << ", \"lambda\": " << admission_.lambda()
     << ", \"mu\": " << admission_.mu_rate()
     << ", \"rho\": " << admission_.rho() << "},\n"
     << "\"store\": {\"version\": " << store_.version()
     << ", \"relations\": " << store_.RelationCount() << "},\n"
     << "\"sessions\": {\"active\": " << active
     << ", \"completed\": " << completed << ", \"failed\": " << failed
     << "}}\n";
  return os.str();
}

std::string DcdServer::AdmissionTraceJson() const {
  // Reuse the engine's Chrome-trace exporter: admission decisions are
  // TraceEvents (kind=admission) like any DWS decision, just produced by
  // the serving layer instead of a worker.
  EvalStats stats;
  stats.trace = admission_.TraceSnapshot();
  std::ostringstream os;
  WriteChromeTrace(stats, os);
  return os.str();
}

Result<std::string> DcdServer::SessionMetricsJson(uint64_t session_id) const {
  MutexLock lock(&mu_);
  auto it = sessions_.find(session_id);
  if (it == sessions_.end()) {
    return Status::NotFound("no such session: " + std::to_string(session_id));
  }
  if (!it->second.ok) {
    return Status::InvalidArgument("session failed: " + it->second.error);
  }
  return it->second.metrics_json;
}

Result<std::string> DcdServer::SessionTraceJson(uint64_t session_id) const {
  MutexLock lock(&mu_);
  auto it = sessions_.find(session_id);
  if (it == sessions_.end()) {
    return Status::NotFound("no such session: " + std::to_string(session_id));
  }
  if (!it->second.ok) {
    return Status::InvalidArgument("session failed: " + it->second.error);
  }
  return it->second.trace_json;
}

HttpResponse DcdServer::Handle(const HttpRequest& req) {
  if (req.path == "/healthz" && req.method == "GET") {
    HttpResponse resp;
    resp.body = HealthJson();
    return resp;
  }
  if (req.path == "/metrics" && req.method == "GET") {
    HttpResponse resp;
    resp.body = MetricsJson();
    return resp;
  }
  if (req.path == "/trace" && req.method == "GET") {
    HttpResponse resp;
    resp.body = AdmissionTraceJson();
    return resp;
  }
  if (req.path == "/query") {
    if (req.method != "POST") return JsonError(405, "POST /query");
    return HandleQuery(req);
  }
  if (req.path == "/update") {
    if (req.method != "POST") return JsonError(405, "POST /update");
    return HandleUpdate(req);
  }
  if (req.path.rfind("/sessions/", 0) == 0 && req.method == "GET") {
    return HandleSession(req.path);
  }
  if (req.path == "/shutdown" && req.method == "POST") {
    shutdown_requested_.store(true, std::memory_order_release);
    HttpResponse resp;
    resp.body = "{\"status\": \"shutting down\"}\n";
    return resp;
  }
  return JsonError(404, "no such endpoint: " + req.method + " " + req.path);
}

HttpResponse DcdServer::HandleQuery(const HttpRequest& req) {
  if (req.body.empty()) return JsonError(400, "empty program body");
  uint32_t workers = 0;
  const std::string workers_param = req.QueryParam("workers");
  if (!workers_param.empty()) {
    if (!ParseUint32Checked(workers_param.c_str(), 1, 4096, &workers)) {
      return JsonError(400, "workers expects an integer in [1, 4096]");
    }
  }
  Result<QueryResult> result = ExecuteQuery(req.body, workers);
  if (!result.ok()) return JsonError(400, result.status().ToString());

  const QueryResult& qr = result.value();
  std::ostringstream os;
  os << "{\"session\": " << qr.session_id
     << ", \"snapshot_version\": " << qr.snapshot_version
     << ", \"admitted_immediately\": "
     << (qr.admitted_immediately ? "true" : "false")
     << ", \"seconds\": " << qr.stats.seconds << ", \"outputs\": {";
  bool first = true;
  for (const Relation& rel : qr.outputs) {
    if (!first) os << ", ";
    first = false;
    os << "\"" << JsonEscape(rel.name()) << "\": " << rel.size();
  }
  os << "}";
  const std::string dump = req.QueryParam("dump");
  if (!dump.empty()) {
    for (const Relation& rel : qr.outputs) {
      if (rel.name() != dump) continue;
      os << ", \"dump\": \"" << JsonEscape(rel.ToString(1000)) << "\"";
      break;
    }
  }
  os << "}\n";
  HttpResponse resp;
  resp.body = os.str();
  return resp;
}

HttpResponse DcdServer::HandleUpdate(const HttpRequest& req) {
  Result<EdbStore::ApplyResult> applied = ApplyUpdateText(req.body);
  if (!applied.ok()) return JsonError(400, applied.status().ToString());
  std::ostringstream os;
  os << "{\"version\": " << applied.value().version
     << ", \"relations_touched\": " << applied.value().relations_touched
     << ", \"rows_added\": " << applied.value().rows_added
     << ", \"rows_removed\": " << applied.value().rows_removed << "}\n";
  HttpResponse resp;
  resp.body = os.str();
  return resp;
}

HttpResponse DcdServer::HandleSession(const std::string& path) const {
  // /sessions/<id>/metrics or /sessions/<id>/trace
  const size_t id_begin = std::string("/sessions/").size();
  const size_t slash = path.find('/', id_begin);
  if (slash == std::string::npos) {
    return JsonError(404, "expected /sessions/<id>/metrics|trace");
  }
  uint64_t id = 0;
  if (!ParseUint64Checked(path.substr(id_begin, slash - id_begin).c_str(), 1,
                          UINT64_MAX, &id)) {
    return JsonError(400, "bad session id");
  }
  const std::string what = path.substr(slash + 1);
  Result<std::string> body = what == "metrics"   ? SessionMetricsJson(id)
                             : what == "trace"   ? SessionTraceJson(id)
                             : Result<std::string>(Status::NotFound(
                                   "expected metrics or trace, got: " + what));
  if (!body.ok()) return JsonError(404, body.status().ToString());
  HttpResponse resp;
  resp.body = std::move(body).value();
  return resp;
}

}  // namespace dcdatalog
