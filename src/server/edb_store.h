#ifndef DCDATALOG_SERVER_EDB_STORE_H_
#define DCDATALOG_SERVER_EDB_STORE_H_

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

#include "common/mutex.h"
#include "common/status.h"
#include "common/string_dict.h"
#include "common/thread_annotations.h"
#include "storage/catalog.h"
#include "storage/relation.h"
#include "storage/updates.h"

namespace dcdatalog {

/// The resident server's base EDB: one catalog of base relations plus the
/// string dictionary they were loaded with, shared by every query session.
///
/// Update discipline is copy-on-write: ApplyBatch never mutates a published
/// Relation. It clones each touched relation, applies the batch's net delta
/// to the clone (through the same ApplyDeltasToCatalog the incremental
/// engine and the oracle recomputation use, so all three paths agree on
/// set-semantics netting), and publishes the clone by replacing the catalog
/// entry. A session that pinned the previous version via SnapshotInto keeps
/// reading frozen rows for its whole evaluation — the concurrency bug this
/// class exists to prevent is an --updates stream rewriting a relation's
/// row store under a racing reader.
///
/// Thread safety: SnapshotInto/version() may race ApplyBatch freely;
/// writers are serialized on apply_mu_. The StringDict is internally
/// synchronized, so sessions may intern program constants while a batch
/// resolves update tokens.
class EdbStore {
 public:
  EdbStore() = default;

  EdbStore(const EdbStore&) = delete;
  EdbStore& operator=(const EdbStore&) = delete;

  /// Registers (or replaces) a base relation. Load-time API; safe while
  /// serving, but batch updates through ApplyBatch are what keep version()
  /// meaningful.
  void PutRelation(Relation relation);

  /// The dictionary base facts were interned with. Sessions MUST parse
  /// their programs against this dictionary — string constants only match
  /// loaded rows when both sides agree on the interned ids.
  StringDict* dict() { return &dict_; }

  /// Pins the current version of every base relation into `*catalog`
  /// (zero-copy: the session catalog shares the immutable Relation
  /// objects). Returns the store version the snapshot corresponds to —
  /// exactly: the pin and the version read are atomic against ApplyBatch,
  /// so a session's results can be diffed against an oracle reconstruction
  /// of precisely that version.
  uint64_t SnapshotInto(Catalog* catalog) const DCD_EXCLUDES(apply_mu_);

  /// Monotone counter, bumped once per applied batch.
  uint64_t version() const {
    return version_.load(std::memory_order_acquire);
  }

  struct ApplyResult {
    uint64_t version = 0;  // Store version after the batch.
    uint64_t relations_touched = 0;
    uint64_t rows_added = 0;
    uint64_t rows_removed = 0;
  };

  /// Applies one update batch copy-on-write and publishes the new version.
  /// On error nothing is published.
  Result<ApplyResult> ApplyBatch(const UpdateBatch& batch)
      DCD_EXCLUDES(apply_mu_);

  std::vector<std::string> RelationNames() const { return base_.Names(); }

  uint64_t RelationCount() const { return base_.Names().size(); }

 private:
  /// Serializes writers, and snapshot creation against writers (so the
  /// version a snapshot reports is exactly the content it pinned). Never
  /// held during evaluation — sessions touch it once at session start.
  mutable Mutex apply_mu_;
  Catalog base_;
  StringDict dict_;
  std::atomic<uint64_t> version_{1};
};

}  // namespace dcdatalog

#endif  // DCDATALOG_SERVER_EDB_STORE_H_
