#ifndef DCDATALOG_SERVER_SERVER_H_
#define DCDATALOG_SERVER_SERVER_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "common/mutex.h"
#include "common/options.h"
#include "common/status.h"
#include "common/thread_annotations.h"
#include "concurrent/worker_pool.h"
#include "core/engine.h"
#include "server/admission.h"
#include "server/edb_store.h"
#include "server/http.h"
#include "storage/relation.h"

namespace dcdatalog {

struct ServerOptions {
  /// HTTP port; 0 binds an ephemeral port (read it back from port()).
  uint16_t port = 0;

  /// Shared worker-pool capacity; 0 = hardware concurrency. Every query
  /// session's evaluation gang is scheduled onto this one pool, so N
  /// resident sessions never oversubscribe the machine.
  uint32_t pool_capacity = 0;

  /// Per-session engine defaults. num_workers is the default gang width a
  /// query gets when it does not ask for one; worker_pool and enable_trace
  /// are overridden per session (the pool is the server's, and per-session
  /// trace/metrics export is part of the serving contract).
  EngineOptions engine;

  /// Completed-session exports kept for /sessions/<id>/{metrics,trace};
  /// oldest are evicted beyond this.
  uint32_t max_sessions_retained = 256;

  /// Admission decision ring capacity.
  uint32_t admission_trace_capacity = 1 << 12;
};

/// One query's execution, as seen by callers of ExecuteQuery (the HTTP
/// front end and the in-process tests).
struct QueryResult {
  uint64_t session_id = 0;
  uint64_t snapshot_version = 0;  // EdbStore version the session pinned.
  bool admitted_immediately = false;
  EvalStats stats;                // The session's own stats, nobody else's.
  std::vector<Relation> outputs;  // Copies of the output relations.
};

/// The resident multi-query server: a persistent EdbStore of shared
/// immutable EDB snapshots, per-query Engine instances scheduled onto one
/// shared WorkerPool, admission control driven by ρ/λ/μ statistics, and an
/// HTTP control plane exposing health, metrics, per-session trace/metrics
/// exports, queries, and streaming updates.
///
/// Isolation contract (the tentpole's bugfix surface): each session gets
/// its own Catalog seeded with pinned shared_ptr snapshots from the store,
/// its own Engine, its own EvalStats/TraceRing set. Sessions share only
/// immutable relations, the internally-synchronized StringDict, and the
/// WorkerPool. Updates never mutate a published relation (EdbStore is
/// copy-on-write), so a session's reads are frozen for its whole run even
/// while an update stream advances the store version.
class DcdServer {
 public:
  explicit DcdServer(ServerOptions options);
  ~DcdServer();

  DcdServer(const DcdServer&) = delete;
  DcdServer& operator=(const DcdServer&) = delete;

  /// The base EDB. Load relations through this before (or while) serving.
  EdbStore* store() { return &store_; }

  /// Starts the HTTP front end. The in-process API below works without it.
  Status Start();
  void Stop();
  uint16_t port() const { return http_.port(); }

  /// True once a client POSTed /shutdown; the serve loop polls this.
  bool shutdown_requested() const {
    return shutdown_requested_.load(std::memory_order_acquire);
  }

  // --- In-process session API (the HTTP handler is a thin veneer) ---------

  /// Runs one query session end to end: admission, snapshot pin, parse
  /// against the shared dict, evaluate on the shared pool, export the
  /// session's metrics/trace for later retrieval. Thread-safe; concurrent
  /// callers are concurrent sessions.
  Result<QueryResult> ExecuteQuery(const std::string& program_text,
                                   uint32_t num_workers = 0);

  /// Applies every batch of an update script to the base EDB
  /// (copy-on-write; running sessions keep their snapshots).
  Result<EdbStore::ApplyResult> ApplyUpdateText(const std::string& script);

  /// {"status": "ok", ...} summary for load balancers and the CI smoke.
  std::string HealthJson() const;

  /// Server-level metrics: pool, admission, store, session counts.
  std::string MetricsJson() const;

  /// Chrome trace-event JSON of the admission decisions (kind=admission,
  /// args carrying rho/lambda/mu) — the serving layer's analogue of the
  /// engine's DWS decision trace, written by the same exporter.
  std::string AdmissionTraceJson() const;

  /// Per-session exports captured when the session finished.
  Result<std::string> SessionMetricsJson(uint64_t session_id) const;
  Result<std::string> SessionTraceJson(uint64_t session_id) const;

  WorkerPool* pool() { return &pool_; }
  AdmissionController* admission() { return &admission_; }

 private:
  struct SessionRecord {
    bool ok = false;
    std::string error;
    double seconds = 0.0;
    uint64_t snapshot_version = 0;
    std::string metrics_json;
    std::string trace_json;
  };

  HttpResponse Handle(const HttpRequest& req);
  HttpResponse HandleQuery(const HttpRequest& req);
  HttpResponse HandleUpdate(const HttpRequest& req);
  HttpResponse HandleSession(const std::string& path) const;

  void RecordSession(uint64_t id, SessionRecord record) DCD_EXCLUDES(mu_);

  ServerOptions options_;
  EdbStore store_;
  WorkerPool pool_;
  AdmissionController admission_;
  HttpServer http_;
  std::atomic<bool> shutdown_requested_{false};

  mutable Mutex mu_;
  uint64_t next_session_id_ DCD_GUARDED_BY(mu_) = 1;
  uint64_t sessions_active_ DCD_GUARDED_BY(mu_) = 0;
  uint64_t sessions_completed_ DCD_GUARDED_BY(mu_) = 0;
  uint64_t sessions_failed_ DCD_GUARDED_BY(mu_) = 0;
  std::map<uint64_t, SessionRecord> sessions_ DCD_GUARDED_BY(mu_);
};

}  // namespace dcdatalog

#endif  // DCDATALOG_SERVER_SERVER_H_
