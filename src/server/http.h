#ifndef DCDATALOG_SERVER_HTTP_H_
#define DCDATALOG_SERVER_HTTP_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <string>
#include <thread>
#include <vector>

#include "common/mutex.h"
#include "common/status.h"
#include "common/thread_annotations.h"

namespace dcdatalog {

struct HttpRequest {
  std::string method;  // "GET", "POST", ...
  std::string path;    // "/query" (no query string).
  std::string query;   // "workers=4&dump=tc" (no leading '?').
  std::string body;

  /// Value of `key` in the query string ("" when absent; no %-decoding —
  /// the server's parameter vocabulary never needs it).
  std::string QueryParam(const std::string& key) const;
};

struct HttpResponse {
  int status = 200;
  std::string content_type = "application/json";
  std::string body;
};

/// Minimal HTTP/1.1 server over POSIX sockets — no external dependencies,
/// which is the point: the container bakes in only the C++ toolchain. One
/// accept-loop thread; one thread per connection, so a long-running query
/// on one connection never blocks a health probe on another (the resident
/// server's whole reason to exist). Connection: close semantics — every
/// request gets its own connection, which keeps parsing trivial and is
/// plenty for a control plane that moves kilobytes.
///
/// Not exposed to hostile input by design (binds 127.0.0.1): requests over
/// 64 MiB or without a terminated header block are dropped, but this is a
/// lab-grade front end, not an internet-facing one.
class HttpServer {
 public:
  using Handler = std::function<HttpResponse(const HttpRequest&)>;

  HttpServer() = default;
  ~HttpServer();

  HttpServer(const HttpServer&) = delete;
  HttpServer& operator=(const HttpServer&) = delete;

  /// Binds 127.0.0.1:`port` (0 = ephemeral, read the result from port())
  /// and starts accepting. The handler runs on connection threads and must
  /// be internally synchronized.
  Status Start(uint16_t port, Handler handler);

  /// The bound port (after Start succeeded).
  uint16_t port() const { return port_; }

  /// Stops accepting, closes the listener, and joins every connection
  /// thread. Idempotent.
  void Stop();

 private:
  void AcceptLoop();
  void HandleConnection(int fd);

  Handler handler_;
  /// -1 when not listening. Atomic because Stop() retires it (exchange to
  /// -1, then close) while AcceptLoop reads it for accept() — the close is
  /// what unblocks that accept, so the handoff itself races by design.
  std::atomic<int> listen_fd_{-1};
  uint16_t port_ = 0;
  std::atomic<bool> stopping_{false};
  std::thread accept_thread_;
  Mutex conn_mu_;
  std::vector<std::thread> connections_ DCD_GUARDED_BY(conn_mu_);
};

}  // namespace dcdatalog

#endif  // DCDATALOG_SERVER_HTTP_H_
