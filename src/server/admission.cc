#include "server/admission.h"

#include <algorithm>

#include "common/timer.h"

namespace dcdatalog {

AdmissionController::AdmissionController(uint32_t worker_budget,
                                         uint32_t trace_capacity)
    : worker_budget_(std::max<uint32_t>(worker_budget, 1)),
      ring_(trace_capacity) {}

AdmissionDecision AdmissionController::OnArrival(uint32_t workers) {
  const int64_t now = MonotonicNanos();
  MutexLock lock(&mu_);
  if (last_arrival_ns_ != 0 && now > last_arrival_ns_) {
    const double interarrival_s =
        static_cast<double>(now - last_arrival_ns_) * 1e-9;
    const double rate = 1.0 / interarrival_s;
    lambda_ = lambda_ == 0.0 ? rate
                             : kEwmaAlpha * rate + (1.0 - kEwmaAlpha) * lambda_;
  }
  last_arrival_ns_ = now;

  AdmissionDecision d;
  d.admitted = in_flight_workers_ + workers <= worker_budget_;
  in_flight_workers_ += workers;
  d.rho = static_cast<double>(in_flight_workers_) /
          static_cast<double>(worker_budget_);
  d.lambda = lambda_;
  d.mu = mu_rate_;
  if (d.admitted) {
    ++admitted_;
  } else {
    ++queued_;
  }

  TraceEvent ev;
  ev.kind = TraceEventKind::kAdmission;
  ev.proceed = d.admitted;
  ev.worker = workers;  // Gang width, in the per-worker slot.
  ev.start_ns = now;
  ev.end_ns = now;
  ev.rho = d.rho;
  ev.lambda = d.lambda;
  ev.mu = d.mu;
  ring_.Append(ev);
  return d;
}

void AdmissionController::OnComplete(uint32_t workers,
                                     double service_seconds) {
  MutexLock lock(&mu_);
  in_flight_workers_ -= std::min(in_flight_workers_, workers);
  if (service_seconds > 0.0) {
    const double rate = 1.0 / service_seconds;
    mu_rate_ = mu_rate_ == 0.0
                   ? rate
                   : kEwmaAlpha * rate + (1.0 - kEwmaAlpha) * mu_rate_;
  }
}

std::vector<TraceEvent> AdmissionController::TraceSnapshot() const {
  std::vector<TraceEvent> out;
  MutexLock lock(&mu_);
  ring_.Snapshot(&out);
  return out;
}

uint64_t AdmissionController::admitted_count() const {
  MutexLock lock(&mu_);
  return admitted_;
}

uint64_t AdmissionController::queued_count() const {
  MutexLock lock(&mu_);
  return queued_;
}

double AdmissionController::lambda() const {
  MutexLock lock(&mu_);
  return lambda_;
}

double AdmissionController::mu_rate() const {
  MutexLock lock(&mu_);
  return mu_rate_;
}

double AdmissionController::rho() const {
  MutexLock lock(&mu_);
  return static_cast<double>(in_flight_workers_) /
         static_cast<double>(worker_budget_);
}

}  // namespace dcdatalog
