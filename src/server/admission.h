#ifndef DCDATALOG_SERVER_ADMISSION_H_
#define DCDATALOG_SERVER_ADMISSION_H_

#include <cstdint>
#include <vector>

#include "common/mutex.h"
#include "common/thread_annotations.h"
#include "common/trace.h"

namespace dcdatalog {

/// What the controller decided for one arriving session.
struct AdmissionDecision {
  /// true: a gang of the requested width fits the worker budget right now.
  /// false: the session is queued — it still runs (the WorkerPool's FIFO
  /// gang grant is the queue), the decision just records that it had to
  /// wait and why.
  bool admitted = false;
  double rho = 0.0;     // Worker-budget utilization including this gang.
  double lambda = 0.0;  // Session arrival rate, 1/s (EWMA).
  double mu = 0.0;      // Session service rate, 1/s (EWMA).
};

/// Admission control for the resident server, driven by the same
/// queueing-model statistics the DWS coordination strategy maintains
/// per-worker (paper §4.2): arrival rate λ, service rate μ, and utilization
/// ρ of the shared worker budget. Every decision is recorded as a
/// TraceEventKind::kAdmission event carrying ρ/λ/μ, so the server's
/// admission behaviour is observable in the same decision trace (and with
/// the same exporter) as the engine's DWS decisions.
///
/// All methods are cold-path and internally synchronized.
class AdmissionController {
 public:
  /// `worker_budget` is the shared pool's capacity; `trace_capacity` sizes
  /// the decision ring (0 disables recording).
  AdmissionController(uint32_t worker_budget, uint32_t trace_capacity);

  AdmissionController(const AdmissionController&) = delete;
  AdmissionController& operator=(const AdmissionController&) = delete;

  /// Records a session arrival requesting a gang of `workers` threads and
  /// decides admit-now vs queue. Call before dispatching to the pool.
  AdmissionDecision OnArrival(uint32_t workers) DCD_EXCLUDES(mu_);

  /// Records a session completion: releases its `workers` from the
  /// in-flight account and folds `service_seconds` into μ.
  void OnComplete(uint32_t workers, double service_seconds)
      DCD_EXCLUDES(mu_);

  /// Snapshot of the decision ring, oldest first.
  std::vector<TraceEvent> TraceSnapshot() const DCD_EXCLUDES(mu_);

  uint64_t admitted_count() const DCD_EXCLUDES(mu_);
  uint64_t queued_count() const DCD_EXCLUDES(mu_);
  double lambda() const DCD_EXCLUDES(mu_);
  double mu_rate() const DCD_EXCLUDES(mu_);
  double rho() const DCD_EXCLUDES(mu_);

 private:
  static constexpr double kEwmaAlpha = 0.2;

  const uint32_t worker_budget_;
  mutable Mutex mu_;
  TraceRing ring_ DCD_GUARDED_BY(mu_);
  uint32_t in_flight_workers_ DCD_GUARDED_BY(mu_) = 0;
  int64_t last_arrival_ns_ DCD_GUARDED_BY(mu_) = 0;
  double lambda_ DCD_GUARDED_BY(mu_) = 0.0;
  double mu_rate_ DCD_GUARDED_BY(mu_) = 0.0;
  uint64_t admitted_ DCD_GUARDED_BY(mu_) = 0;
  uint64_t queued_ DCD_GUARDED_BY(mu_) = 0;
};

}  // namespace dcdatalog

#endif  // DCDATALOG_SERVER_ADMISSION_H_
