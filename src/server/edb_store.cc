#include "server/edb_store.h"

#include <memory>
#include <utility>

namespace dcdatalog {

void EdbStore::PutRelation(Relation relation) {
  base_.Put(std::move(relation));
}

uint64_t EdbStore::SnapshotInto(Catalog* catalog) const {
  // Atomic against ApplyBatch: the reported version and the pinned entries
  // must correspond exactly, or a session could not be validated against
  // an oracle rebuild of its version.
  MutexLock lock(&apply_mu_);
  const uint64_t ver = version_.load(std::memory_order_acquire);
  for (auto& [name, rel] : base_.Entries()) {
    // The session catalog holds the same immutable Relation objects; the
    // const_pointer_cast does not unlock mutation — nothing downstream
    // writes base relations (sessions run non-incremental evaluations, and
    // the store itself only ever replaces, never edits, shared entries).
    catalog->PutShared(std::const_pointer_cast<Relation>(rel));
  }
  return ver;
}

Result<EdbStore::ApplyResult> EdbStore::ApplyBatch(const UpdateBatch& batch) {
  MutexLock lock(&apply_mu_);
  DCD_ASSIGN_OR_RETURN(ResolvedUpdateBatch resolved,
                       ResolveUpdateBatch(batch, base_, &dict_));
  DCD_ASSIGN_OR_RETURN(std::vector<RelationDelta> deltas,
                       NetOutBatch(resolved, base_));

  // Copy-on-write: clone every touched relation into a scratch catalog,
  // apply the deltas there (identical semantics to the incremental engine
  // and the oracle, which use the same helper), then publish the clones.
  // Sessions holding the old shared_ptrs keep their frozen rows.
  Catalog scratch;
  for (const RelationDelta& delta : deltas) {
    std::shared_ptr<const Relation> old = base_.FindShared(delta.relation);
    if (old == nullptr) {
      return Status::NotFound("update for unknown relation: " +
                              delta.relation);
    }
    scratch.Put(*old);
  }
  DCD_RETURN_IF_ERROR(ApplyDeltasToCatalog(deltas, &scratch));

  ApplyResult out;
  for (const RelationDelta& delta : deltas) {
    base_.PutShared(
        std::make_shared<Relation>(std::move(*scratch.Find(delta.relation))));
    ++out.relations_touched;
    out.rows_added += delta.added.size();
    out.rows_removed += delta.removed.size();
  }
  out.version = version_.fetch_add(1, std::memory_order_acq_rel) + 1;
  return out;
}

}  // namespace dcdatalog
