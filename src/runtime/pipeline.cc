#include "runtime/pipeline.h"

#include "common/hot_path.h"
#include "common/logging.h"
#include "runtime/expr_eval.h"

namespace dcdatalog {
namespace {

DCD_HOT_ROOT void ExecuteFrom(const PhysicalRule& rule,
                              const PipelineContext& ctx, size_t step_idx,
                              const EmitSink& emit) {
  if (step_idx == rule.steps.size()) {
    emit(ctx.regs);
    return;
  }
  const Step& step = rule.steps[step_idx];
  switch (step.kind) {
    case StepKind::kFilter:
      if (EvalCompare(step.cmp, step.lhs, step.rhs, ctx.regs)) {
        ExecuteFrom(rule, ctx, step_idx + 1, emit);
      }
      return;
    case StepKind::kBind:
      ctx.regs[step.bind_reg] = EvalExpr(step.lhs, ctx.regs);
      ExecuteFrom(rule, ctx, step_idx + 1, emit);
      return;
    case StepKind::kProbeBaseHash:
    case StepKind::kProbeBaseBTree: {
      const uint64_t key =
          step.probe_is_const ? step.probe_const : ctx.regs[step.probe_reg];
      ctx.base_indexes->ForEachMatch(
          step.base_index_id, key, [&](TupleRef row) {
            if (ApplyChecksAndBindStrided(step, row, ctx.regs, 1, 0)) {
              ExecuteFrom(rule, ctx, step_idx + 1, emit);
            }
          });
      return;
    }
    case StepKind::kScanBase: {
      const Relation* rel = ctx.scan_rels[step_idx];
      DCD_CHECK(rel != nullptr);
      const uint64_t n = rel->size();
      for (uint64_t r = 0; r < n; ++r) {
        if (ApplyChecksAndBindStrided(step, rel->Row(r), ctx.regs, 1, 0)) {
          ExecuteFrom(rule, ctx, step_idx + 1, emit);
        }
      }
      return;
    }
    case StepKind::kAntiJoinBTree: {
      const uint64_t key =
          step.probe_is_const ? step.probe_const : ctx.regs[step.probe_reg];
      bool found = false;
      // The bool-returning callback stops the index iteration at the first
      // witness; StepChecksMatch itself exits at the first failing check.
      ctx.base_indexes->ForEachMatch(
          step.base_index_id, key, [&](TupleRef row) {
            found = StepChecksMatch(step, row, ctx.regs, 1, 0);
            return !found;
          });
      if (!found) ExecuteFrom(rule, ctx, step_idx + 1, emit);
      return;
    }
    case StepKind::kAntiJoinScan: {
      const Relation* rel = ctx.scan_rels[step_idx];
      DCD_CHECK(rel != nullptr);
      const uint64_t n = rel->size();
      bool found = false;
      for (uint64_t r = 0; r < n && !found; ++r) {
        found = StepChecksMatch(step, rel->Row(r), ctx.regs, 1, 0);
      }
      if (!found) ExecuteFrom(rule, ctx, step_idx + 1, emit);
      return;
    }
    case StepKind::kProbeRecursive: {
      const uint64_t key = ctx.regs[step.probe_reg];
      const RecursiveTable& table = *(*ctx.replicas)[step.replica_id];
      table.ForEachJoinMatch(key, [&](TupleRef row) {
        if (ApplyChecksAndBindStrided(step, row, ctx.regs, 1, 0)) {
          ExecuteFrom(rule, ctx, step_idx + 1, emit);
        }
      });
      return;
    }
  }
}

}  // namespace

void PreparePipeline(const PhysicalRule& rule, PipelineContext* ctx) {
  ctx->scan_rels.clear();
  bool any = false;
  for (const Step& step : rule.steps) {
    if (step.kind == StepKind::kScanBase ||
        step.kind == StepKind::kAntiJoinScan) {
      any = true;
      break;
    }
  }
  if (!any) return;  // Keep the common index-join case allocation-free.
  ctx->scan_rels.resize(rule.steps.size(), nullptr);
  for (size_t i = 0; i < rule.steps.size(); ++i) {
    const Step& step = rule.steps[i];
    if (step.kind != StepKind::kScanBase &&
        step.kind != StepKind::kAntiJoinScan) {
      continue;
    }
    const Relation* rel = ctx->catalog->Find(step.relation);
    DCD_CHECK(rel != nullptr);
    ctx->scan_rels[i] = rel;
  }
}

DCD_HOT_ROOT void RunPipelineForTuple(const PhysicalRule& rule,
                                      const PipelineContext& ctx,
                                      TupleRef driving,
                                      const EmitSink& emit) {
  if (!ApplyDrivingScanStrided(rule, driving, ctx.regs, 1, 0)) return;
  ExecuteFrom(rule, ctx, 0, emit);
}

void RunPipelineUnit(const PhysicalRule& rule, const PipelineContext& ctx,
                     const EmitSink& emit) {
  DCD_DCHECK(rule.driving_is_unit);
  ExecuteFrom(rule, ctx, 0, emit);
}

void BuildWireTuple(const HeadSpec& head, const uint64_t* regs,
                    uint64_t* wire) {
  for (size_t i = 0; i < head.wire_exprs.size(); ++i) {
    wire[i] = EvalExpr(head.wire_exprs[i], regs);
  }
}

}  // namespace dcdatalog
