#include "runtime/pipeline.h"

#include "common/logging.h"
#include "runtime/expr_eval.h"

namespace dcdatalog {
namespace {

/// Applies a step's residual checks to a matched tuple and, on success,
/// binds its output columns into registers. Returns false on any mismatch.
bool ApplyChecksAndBind(const Step& step, TupleRef tuple, uint64_t* regs) {
  for (const ConstCheck& c : step.const_checks) {
    if (tuple[c.col] != c.word) return false;
  }
  // Outputs bind only freshly allocated registers, so writing them before
  // the equality checks is safe — and necessary for repeated variables
  // within one atom (q(Y, Y)), where the check compares against the
  // just-bound first occurrence.
  for (const OutputBinding& b : step.outputs) {
    regs[b.reg] = tuple[b.col];
  }
  for (const EqCheck& c : step.eq_checks) {
    if (tuple[c.col] != regs[c.reg]) return false;
  }
  return true;
}

void ExecuteFrom(const PhysicalRule& rule, const PipelineContext& ctx,
                 size_t step_idx, const EmitFn& emit) {
  if (step_idx == rule.steps.size()) {
    emit(ctx.regs);
    return;
  }
  const Step& step = rule.steps[step_idx];
  switch (step.kind) {
    case StepKind::kFilter:
      if (EvalCompare(step.cmp, step.lhs, step.rhs, ctx.regs)) {
        ExecuteFrom(rule, ctx, step_idx + 1, emit);
      }
      return;
    case StepKind::kBind:
      ctx.regs[step.bind_reg] = EvalExpr(step.lhs, ctx.regs);
      ExecuteFrom(rule, ctx, step_idx + 1, emit);
      return;
    case StepKind::kProbeBaseHash:
    case StepKind::kProbeBaseBTree: {
      const uint64_t key =
          step.probe_is_const ? step.probe_const : ctx.regs[step.probe_reg];
      ctx.base_indexes->ForEachMatch(
          step.base_index_id, key, [&](TupleRef row) {
            if (ApplyChecksAndBind(step, row, ctx.regs)) {
              ExecuteFrom(rule, ctx, step_idx + 1, emit);
            }
          });
      return;
    }
    case StepKind::kScanBase: {
      const Relation* rel = ctx.scan_rels[step_idx];
      DCD_CHECK(rel != nullptr);
      const uint64_t n = rel->size();
      for (uint64_t r = 0; r < n; ++r) {
        if (ApplyChecksAndBind(step, rel->Row(r), ctx.regs)) {
          ExecuteFrom(rule, ctx, step_idx + 1, emit);
        }
      }
      return;
    }
    case StepKind::kAntiJoinBTree: {
      const uint64_t key =
          step.probe_is_const ? step.probe_const : ctx.regs[step.probe_reg];
      bool found = false;
      ctx.base_indexes->ForEachMatch(
          step.base_index_id, key, [&](TupleRef row) {
            if (found) return;
            bool match = true;
            for (const ConstCheck& c : step.const_checks) {
              if (row[c.col] != c.word) match = false;
            }
            for (const EqCheck& c : step.eq_checks) {
              if (row[c.col] != ctx.regs[c.reg]) match = false;
            }
            found = found || match;
          });
      if (!found) ExecuteFrom(rule, ctx, step_idx + 1, emit);
      return;
    }
    case StepKind::kAntiJoinScan: {
      const Relation* rel = ctx.scan_rels[step_idx];
      DCD_CHECK(rel != nullptr);
      const uint64_t n = rel->size();
      bool found = false;
      for (uint64_t r = 0; r < n && !found; ++r) {
        TupleRef row = rel->Row(r);
        bool match = true;
        for (const ConstCheck& c : step.const_checks) {
          if (row[c.col] != c.word) match = false;
        }
        for (const EqCheck& c : step.eq_checks) {
          if (row[c.col] != ctx.regs[c.reg]) match = false;
        }
        found = match;
      }
      if (!found) ExecuteFrom(rule, ctx, step_idx + 1, emit);
      return;
    }
    case StepKind::kProbeRecursive: {
      const uint64_t key = ctx.regs[step.probe_reg];
      const RecursiveTable& table = *(*ctx.replicas)[step.replica_id];
      table.ForEachJoinMatch(key, [&](TupleRef row) {
        if (ApplyChecksAndBind(step, row, ctx.regs)) {
          ExecuteFrom(rule, ctx, step_idx + 1, emit);
        }
      });
      return;
    }
  }
}

}  // namespace

void PreparePipeline(const PhysicalRule& rule, PipelineContext* ctx) {
  ctx->scan_rels.clear();
  bool any = false;
  for (const Step& step : rule.steps) {
    if (step.kind == StepKind::kScanBase ||
        step.kind == StepKind::kAntiJoinScan) {
      any = true;
      break;
    }
  }
  if (!any) return;  // Keep the common index-join case allocation-free.
  ctx->scan_rels.resize(rule.steps.size(), nullptr);
  for (size_t i = 0; i < rule.steps.size(); ++i) {
    const Step& step = rule.steps[i];
    if (step.kind != StepKind::kScanBase &&
        step.kind != StepKind::kAntiJoinScan) {
      continue;
    }
    const Relation* rel = ctx->catalog->Find(step.relation);
    DCD_CHECK(rel != nullptr);
    ctx->scan_rels[i] = rel;
  }
}

void RunPipelineForTuple(const PhysicalRule& rule, const PipelineContext& ctx,
                         TupleRef driving, const EmitFn& emit) {
  for (const ConstCheck& c : rule.scan_const_checks) {
    if (driving[c.col] != c.word) return;
  }
  for (const OutputBinding& b : rule.scan_outputs) {
    ctx.regs[b.reg] = driving[b.col];
  }
  // Eq checks on the driving scan handle repeated variables within the
  // atom, e.g. p(X, X): the first occurrence binds, later ones compare.
  for (const EqCheck& c : rule.scan_eq_checks) {
    if (driving[c.col] != ctx.regs[c.reg]) return;
  }
  ExecuteFrom(rule, ctx, 0, emit);
}

void RunPipelineUnit(const PhysicalRule& rule, const PipelineContext& ctx,
                     const EmitFn& emit) {
  DCD_DCHECK(rule.driving_is_unit);
  ExecuteFrom(rule, ctx, 0, emit);
}

void BuildWireTuple(const HeadSpec& head, const uint64_t* regs,
                    uint64_t* wire) {
  for (size_t i = 0; i < head.wire_exprs.size(); ++i) {
    wire[i] = EvalExpr(head.wire_exprs[i], regs);
  }
}

}  // namespace dcdatalog
