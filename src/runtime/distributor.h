#ifndef DCDATALOG_RUNTIME_DISTRIBUTOR_H_
#define DCDATALOG_RUNTIME_DISTRIBUTOR_H_

#include <cstring>
#include <functional>
#include <map>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/hash.h"
#include "planner/physical_plan.h"
#include "runtime/message.h"
#include "storage/btree.h"

namespace dcdatalog {

/// The Distribute operator (paper §5.2.3): splits the wire tuples a local
/// iteration derives into partitions via the hash function H and hands them
/// to the sink (the worker's queue-push routine). For min/max heads it
/// first performs partial aggregation (Figure 7) — only the per-group best
/// of this iteration crosses worker boundaries.
///
/// One instance per worker; not synchronized.
class Distributor {
 public:
  /// sink(dest_worker, msg) enqueues one message; it must handle
  /// backpressure itself.
  using SinkFn = std::function<void(uint32_t, const WireMsg&)>;

  Distributor(const SccPlan* scc, uint32_t num_workers, bool partial_agg,
              SinkFn sink);

  /// Accepts one wire tuple derived for `head`. Min/max tuples are folded
  /// into the partial-aggregation buffer; everything else routes at once.
  void Emit(const HeadSpec& head, const uint64_t* wire);

  /// Routes all buffered partial aggregates. Call once per local iteration,
  /// after the last rule ran.
  void Flush();

  uint64_t tuples_routed() const { return tuples_routed_; }
  uint64_t tuples_folded() const { return tuples_folded_; }
  uint64_t tuples_emitted() const { return tuples_emitted_; }

 private:
  struct U128Hash {
    size_t operator()(const U128& k) const {
      return static_cast<size_t>(HashCombine(k.hi, k.lo));
    }
  };
  struct PerPredicate {
    const HeadSpec* head = nullptr;  // Any rule's head for this predicate.
    std::vector<int> replica_ids;
    std::unordered_map<U128, WireMsg, U128Hash> partial;
  };

  void Route(const PerPredicate& pp, const uint64_t* wire);

  PerPredicate& StateFor(const HeadSpec& head);

  const SccPlan* scc_;
  const uint32_t num_workers_;
  const bool partial_agg_;
  SinkFn sink_;
  std::map<std::string, PerPredicate> per_pred_;
  uint64_t tuples_routed_ = 0;
  uint64_t tuples_folded_ = 0;
  uint64_t tuples_emitted_ = 0;
};

}  // namespace dcdatalog

#endif  // DCDATALOG_RUNTIME_DISTRIBUTOR_H_
