#ifndef DCDATALOG_RUNTIME_DISTRIBUTOR_H_
#define DCDATALOG_RUNTIME_DISTRIBUTOR_H_

#include <cstring>
#include <unordered_map>
#include <vector>

#include "common/affinity.h"
#include "common/chaos.h"
#include "common/hash.h"
#include "common/hot_path.h"
#include "planner/physical_plan.h"
#include "runtime/message.h"
#include "storage/btree.h"
#include "storage/tuple.h"

namespace dcdatalog {

/// The Distribute operator (paper §5.2.3): splits the wire tuples a local
/// iteration derives into partitions via the hash function H and hands them
/// to the sink (the worker's queue-push routine). For min/max heads it
/// first performs partial aggregation (Figure 7) — only the per-group best
/// of this iteration crosses worker boundaries.
///
/// Communication is block-batched: tuples bound for a remote worker pack
/// densely (wire_arity words each) into per-(destination, replica) staging
/// MsgBlocks that ship when full and at every Flush(). Tuples whose
/// partition hash routes back to the emitting worker take the self-loop
/// bypass instead — handed to `self_sink` with no ring traffic and no
/// termination-detector accounting.
///
/// One instance per worker; not synchronized.
class Distributor {
 public:
  /// fn(ctx, dest_worker, block) enqueues one full or partial block; it
  /// must handle backpressure itself. A plain {function pointer, context}
  /// pair, same shape as EmitSink/BatchEmitSink in the pipeline: a
  /// std::function here would put a type-erased indirect call (and a
  /// potential capture allocation) on the per-block send path, which
  /// dcd_deepcheck rejects. Every function installed as a sink must itself
  /// be a registered hot root — the analyzer cannot see through the
  /// pointer, so the sink body is verified from its own entry.
  struct BlockSink {
    using Fn = void (*)(void* ctx, uint32_t dest, const MsgBlock& block);
    Fn fn = nullptr;
    void* ctx = nullptr;
  };

  /// fn(ctx, replica_id, wire, arity) accepts one tuple whose partition is
  /// the emitting worker itself (typically: append to the local gather
  /// scratch so the next merge picks it up). Same hot-path contract as
  /// BlockSink, but per-tuple, so the discipline matters even more.
  struct SelfLoopSink {
    using Fn = void (*)(void* ctx, uint32_t replica, const uint64_t* wire,
                        uint32_t arity);
    Fn fn = nullptr;
    void* ctx = nullptr;
  };

  Distributor(const SccPlan* scc, uint32_t num_workers, uint32_t self_worker,
              bool partial_agg, BlockSink sink, SelfLoopSink self_sink);

  /// Accepts one wire tuple derived for `head`. Min/max tuples are folded
  /// into the partial-aggregation buffer; everything else routes at once.
  void Emit(const HeadSpec& head, const uint64_t* wire);

  /// Batch form of Emit for the batch pipeline executor: `count` wire
  /// tuples packed densely, `wire_arity` words each. Per-predicate state is
  /// resolved once for the whole batch; folding and routing are per-tuple
  /// identical to Emit.
  void EmitBatch(const HeadSpec& head, const uint64_t* wires, uint32_t count,
                 uint32_t wire_arity);

  /// Routes all buffered partial aggregates and ships every non-empty
  /// staging block. Call once per local iteration, after the last rule ran
  /// — coordination (and termination detection) relies on nothing lingering
  /// in staging between iterations.
  void Flush();

  uint64_t tuples_routed() const { return tuples_routed_; }
  uint64_t tuples_folded() const { return tuples_folded_; }
  uint64_t tuples_emitted() const { return tuples_emitted_; }
  uint64_t blocks_sent() const { return blocks_sent_; }
  uint64_t self_loop_tuples() const { return self_loop_tuples_; }

 private:
  struct U128Hash {
    size_t operator()(const U128& k) const {
      return static_cast<size_t>(HashCombine(k.hi, k.lo));
    }
  };
  struct PerPredicate {
    const HeadSpec* head = nullptr;  // Any rule's head for this predicate.
    uint32_t wire_arity = 0;
    uint32_t block_capacity = 0;  // CapacityFor(wire_arity), hoisted out of
                                  // Route — the division is per-predicate
                                  // state, not per-tuple work.
    std::vector<int> replica_ids;
    std::unordered_map<U128, TupleBuf, U128Hash> partial;
  };

  void Route(const PerPredicate& pp, const uint64_t* wire);

  /// Emit with per-predicate state already resolved (shared by the single
  /// and batch entry points).
  void EmitResolved(PerPredicate& pp, const AggSpec& spec,
                    const uint64_t* wire);

  MsgBlock& StagingFor(uint32_t dest, uint32_t replica) {
    return staging_[static_cast<size_t>(dest) * num_replicas_ + replica];
  }

  void SendBlock(uint32_t dest, MsgBlock* block);

  PerPredicate& StateFor(const HeadSpec& head);

  const SccPlan* scc_;
  const uint32_t num_workers_;
  const uint32_t num_replicas_;
  const uint32_t self_worker_;
  const bool partial_agg_;
  BlockSink sink_;
  SelfLoopSink self_sink_;
  /// Indexed by HeadSpec::pred_id (dense, assigned at plan time).
  std::vector<PerPredicate> per_pred_;
  /// Per-(destination, replica) staging blocks, dest-major.
  std::vector<MsgBlock> staging_;
  uint64_t tuples_routed_ = 0;
  uint64_t tuples_folded_ = 0;
  uint64_t tuples_emitted_ = 0;
  uint64_t blocks_sent_ = 0;
  uint64_t self_loop_tuples_ = 0;
  // Debug-only owner stamp covering the staging blocks and partial-agg
  // buffers: only the emitting worker may Emit/Flush (empty in release).
  DCD_AFFINITY_OWNER(owner_affinity_, "distributor-staging");
#if DCD_CHAOS_ENABLED
  /// Per-worker routing counter for the DCD_INJECT_BUG=distributor_offbyone
  /// fault (see distributor.cc). A member, not a static: distributors are
  /// per-worker, and the fault must not introduce cross-thread traffic of
  /// its own.
  uint64_t inject_route_count_ = 0;
#endif
};

}  // namespace dcdatalog

#endif  // DCDATALOG_RUNTIME_DISTRIBUTOR_H_
