#ifndef DCDATALOG_RUNTIME_EXPR_EVAL_H_
#define DCDATALOG_RUNTIME_EXPR_EVAL_H_

#include <cstdint>

#include "common/value.h"
#include "planner/physical_plan.h"

namespace dcdatalog {

/// Evaluates a compiled expression against the register file. The result is
/// a raw word whose interpretation is `expr.type` (int64 or double bits).
uint64_t EvalExpr(const CompiledExpr& expr, const uint64_t* regs);

/// Evaluates a comparison between two compiled expressions. Numeric
/// operands are compared in double space when either side is double;
/// strings compare by dictionary id (equality is exact; ordering is by id).
bool EvalCompare(CmpOp op, const CompiledExpr& lhs, const CompiledExpr& rhs,
                 const uint64_t* regs);

/// Columnar variants for the batch executor: registers live in banks of
/// `stride` lanes each, so register r of lane `lane` is
/// banks[r * stride + lane]. With stride = 1, lane = 0 these degenerate to
/// the row-layout entry points above (same evaluator underneath).
uint64_t EvalExprLane(const CompiledExpr& expr, const uint64_t* banks,
                      uint64_t stride, uint32_t lane);

bool EvalCompareLane(CmpOp op, const CompiledExpr& lhs,
                     const CompiledExpr& rhs, const uint64_t* banks,
                     uint64_t stride, uint32_t lane);

}  // namespace dcdatalog

#endif  // DCDATALOG_RUNTIME_EXPR_EVAL_H_
