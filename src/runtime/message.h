#ifndef DCDATALOG_RUNTIME_MESSAGE_H_
#define DCDATALOG_RUNTIME_MESSAGE_H_

#include <cstdint>

namespace dcdatalog {

/// Maximum wire-tuple width carried by one message.
inline constexpr uint32_t kMaxWireWords = 7;

/// The unit of inter-worker communication: one wire tuple tagged with the
/// replica it belongs to. Exactly one cache line, so the SPSC rings move
/// whole messages without false sharing.
struct WireMsg {
  uint64_t tag = 0;  // Replica id within the SCC being evaluated.
  uint64_t w[kMaxWireWords];
};

static_assert(sizeof(WireMsg) == 64, "WireMsg must be one cache line");

}  // namespace dcdatalog

#endif  // DCDATALOG_RUNTIME_MESSAGE_H_
