#ifndef DCDATALOG_RUNTIME_MESSAGE_H_
#define DCDATALOG_RUNTIME_MESSAGE_H_

#include <cstdint>

#include "common/logging.h"

namespace dcdatalog {

/// Maximum wire-tuple width the message format carries.
inline constexpr uint32_t kMaxWireWords = 7;

/// 64-bit payload words in one message block. One block is exactly 2 KiB:
/// a one-word header plus 255 words of densely packed wire tuples.
inline constexpr uint32_t kMsgBlockWords = 255;

/// The unit of inter-worker communication: one block of wire tuples, all
/// belonging to the same replica. Tuples are packed back to back at their
/// true wire arity (`arity` words each, not a fixed cache line), so a
/// binary-edge block moves ~127 tuples per ring slot where the per-tuple
/// format moved one. The SPSC rings carry whole blocks; the termination
/// detector is charged once per block (`count` tuples), not per tuple.
struct MsgBlock {
  uint16_t tag = 0;       // Replica id within the SCC being evaluated.
  uint16_t count = 0;     // Packed tuples.
  uint16_t arity = 0;     // Words per tuple (the head's wire arity).
  uint16_t reserved = 0;  // Keeps the header at exactly one word.
  uint64_t w[kMsgBlockWords];

  /// Tuples of `arity` words that fit in one block.
  static constexpr uint32_t CapacityFor(uint32_t arity) {
    return kMsgBlockWords / arity;
  }

  const uint64_t* Tuple(uint32_t i) const {
    DCD_DCHECK(i < count);
    return &w[i * arity];
  }

  /// Start of the next free tuple slot; valid only while count < capacity.
  uint64_t* AppendSlot() { return &w[static_cast<uint32_t>(count) * arity]; }
};

static_assert(sizeof(MsgBlock) == 2048, "MsgBlock must stay 2 KiB");
static_assert(MsgBlock::CapacityFor(kMaxWireWords) >= 1,
              "a block must hold at least one maximal wire tuple");

}  // namespace dcdatalog

#endif  // DCDATALOG_RUNTIME_MESSAGE_H_
