#ifndef DCDATALOG_RUNTIME_RECURSIVE_TABLE_H_
#define DCDATALOG_RUNTIME_RECURSIVE_TABLE_H_

#include <cstdint>
#include <string>
#include <type_traits>
#include <vector>

#include "common/affinity.h"
#include "common/options.h"
#include "planner/physical_plan.h"
#include "storage/btree.h"
#include "storage/dyn_index.h"
#include "storage/flat_map.h"
#include "storage/flat_set.h"
#include "storage/relation.h"
#include "storage/tuple.h"

namespace dcdatalog {

/// One worker's partition of one replica of a recursive (or derived)
/// predicate: the stored rows R_i, the indexes that implement semi-naive
/// set-difference and aggregate merging (paper §6.2.1), the optional
/// existence cache (§6.2.2), the join index probed by non-linear rules,
/// and the delta δR_i feeding the next local iteration.
///
/// Merge semantics by aggregate function (wire → stored):
///   none:   insert if the full tuple is new (existence index).
///   min/max: group key (≤ 2 columns) → keep best value, update in place.
///   count:  (group ≤ 1 column, contributor) → count distinct contributors.
///   sum:    (group ≤ 1 column, contributor, value) → each contributor's
///           latest value replaces its previous one (the PageRank pattern);
///           changes below EngineOptions::sum_epsilon do not re-enter δ.
///
/// Two interchangeable index backends implement those semantics
/// (EngineOptions::merge_index_backend): the default `flat` backend uses
/// open-addressed structures (FlatTupleSet for kNone existence,
/// FlatGroupMap for group → row and contributor → value) with a
/// prefetch-pipelined kNone MergeBatch; the `btree` backend keeps the
/// original B+-tree indexes as the Table 4 ablation baseline. Both produce
/// identical stored rows and deltas (cross-checked by the differential
/// fuzzer's backend axis).
///
/// Every state change appends the new stored row to the delta. Not
/// internally synchronized — each worker owns its tables.
class RecursiveTable {
 public:
  RecursiveTable(const std::string& name, Schema stored_schema, AggSpec spec,
                 uint32_t partition_col, bool needs_join_index,
                 const EngineOptions& options);

  /// Merges a batch of wire tuples. With enable_aggregate_index this is a
  /// per-tuple indexed merge; without it, aggregate groups are merged by a
  /// single linear scan over the stored rows (the paper's unoptimized
  /// baseline for the Table 4 ablation).
  void MergeBatch(const std::vector<TupleBuf>& wires);

  /// Merges one wire tuple through the indexed path. Returns true if the
  /// table changed (and the delta grew).
  bool MergeWire(const uint64_t* wire);

  /// EDB-cardinality presizing hint: reserves row storage, the join index,
  /// and the active flat merge structures for ~`expected_rows` entries so
  /// the first iterations of a TC-style run don't pay growth rehashes.
  /// A hint, not a cap — structures still grow past it on demand.
  void ReserveHint(uint64_t expected_rows);

  // --- Delta (δR_i) ---
  const std::vector<TupleBuf>& delta() const { return delta_; }
  uint64_t delta_size() const { return delta_.size(); }
  void ClearDelta() {
    DCD_AFFINITY_GUARD_WRITE(writer_affinity_);
    delta_.clear();
  }

  /// Moves the current delta out and leaves an empty one. The worker
  /// iterates the snapshot while backpressure-driven gathers may grow the
  /// fresh delta concurrently (same thread, interleaved calls).
  std::vector<TupleBuf> TakeDelta() {
    DCD_AFFINITY_GUARD_WRITE(writer_affinity_);
    std::vector<TupleBuf> out = std::move(delta_);
    delta_.clear();
    return out;
  }

  // --- Stored rows ---
  const Relation& rows() const { return rows_; }
  uint32_t stored_arity() const { return spec_.stored_arity; }
  uint32_t wire_arity() const { return spec_.wire_arity; }
  const AggSpec& agg_spec() const { return spec_; }
  uint32_t partition_col() const { return partition_col_; }

  /// Probes the join index: fn(TupleRef stored_row) for each row whose
  /// partition-column value equals `key`. fn may return void (visit all) or
  /// bool — false stops early. Requires needs_join_index.
  template <typename Fn>
  void ForEachJoinMatch(uint64_t key, Fn&& fn) const {
    join_index_.ForEachMatch(key, [&](uint64_t row_id) {
      if constexpr (std::is_void_v<std::invoke_result_t<Fn&, TupleRef>>) {
        fn(rows_.Row(row_id));
        return true;
      } else {
        return fn(rows_.Row(row_id));
      }
    });
  }

  /// Prefetches the join index's bucket for `key` (batch-pipeline probe
  /// pipelining).
  void PrefetchJoin(uint64_t key) const { join_index_.Prefetch(key); }

  // --- Incremental maintenance (retained tables between update batches) ---

  /// Enables per-row support counting (kNone + flat backend only): every
  /// arrival of a tuple — fresh insert, duplicate find, or existence-cache
  /// hit — bumps the row's derivation counter riding beside the flat
  /// existence set's slots. In a non-recursive stratum arrivals equal
  /// derivations exactly, so a deletion can decrement to zero instead of
  /// running the DRed over-delete/re-derive cycle. Must be called before
  /// the first merge.
  void EnableSupportCounts();
  bool support_counts_enabled() const { return maintain_counts_; }
  uint64_t SupportCount(uint64_t row_id) const {
    return exist_set_.CountOf(row_id);
  }

  /// Decrements a row's support count, returning the new count (0 = the
  /// row lost its last derivation and must be compacted away).
  uint64_t DecrementSupport(uint64_t row_id) {
    DCD_AFFINITY_GUARD_WRITE(writer_affinity_);
    return exist_set_.DecrementCount(row_id);
  }

  /// Row id of the stored tuple equal to `tuple`, or UINT64_MAX. Deletion
  /// paths use it to resolve a lost derivation to its row. kNone only.
  uint64_t FindRowId(TupleRef tuple) const;

  /// Removes the given rows (sorted, deduplicated row ids) and rebuilds the
  /// merge/join indexes over the survivors; clears the existence cache and
  /// the delta. Surviving rows keep their ids' relative order (and their
  /// support counts, when enabled). kNone only — aggregate deletion falls
  /// back to full recomputation at the engine level.
  void CompactRemoveRows(const std::vector<uint64_t>& dead_row_ids);

  /// Seeds the delta with every stored row — the DRed re-derivation
  /// restart, where surviving tuples must re-enter the semi-naive loop so
  /// derivations that consumed over-deleted tuples can be rebuilt.
  void SeedDeltaWithAllRows();

  /// Hands the partition to a new owning thread: incremental sessions
  /// retain tables across ApplyUpdates batches but spawn fresh workers for
  /// each one (debug-only; see ThreadAffinity::Rebind).
  void RebindWriter() { DCD_AFFINITY_REBIND(writer_affinity_); }

  /// Zeroes the per-run statistics so a retained table reports per-batch
  /// numbers instead of accumulating across its whole lifetime.
  void ResetStats();

  // --- Statistics ---
  uint64_t merges() const { return merges_; }
  uint64_t accepts() const { return accepts_; }
  uint64_t cache_hits() const { return cache_hits_; }

  /// Key/tuple comparisons spent probing the merge indexes (collision
  /// resolution work across both backends) — the engine surfaces the sum
  /// as EvalStats::merge_probe_cmps.
  uint64_t merge_probe_cmps() const {
    const uint64_t total = probe_cmps_ + exist_set_.probe_cmps() +
                           flat_group_.probe_cmps() +
                           flat_contrib_.probe_cmps();
    // A compaction rebuild resets the flat structures' counters, so the
    // baseline can exceed the live sum; saturate rather than wrap.
    return total >= probe_cmps_base_ ? total - probe_cmps_base_ : total;
  }

 private:
  U128 GroupKey(const uint64_t* wire) const {
    U128 k;
    k.hi = spec_.group_arity > 0 ? wire[0] : 0;
    k.lo = spec_.group_arity > 1 ? wire[1] : 0;
    return k;
  }

  bool BetterValue(uint64_t candidate, uint64_t current) const;

  uint64_t AppendRow(const uint64_t* stored);

  /// Marks a row as changed. Outside batch mode it enters the delta
  /// immediately; inside MergeBatch each changed row enters once, after the
  /// whole batch merged — otherwise m updates to one aggregate group would
  /// spawn m delta rows and the join fan-out would grow exponentially with
  /// the iteration count (catastrophic for sum-in-recursion).
  void PushDelta(uint64_t row_id);

  bool MergeNone(const uint64_t* wire, uint64_t hash);
  bool MergeMinMax(const uint64_t* wire);
  bool MergeCount(const uint64_t* wire);
  bool MergeSum(const uint64_t* wire);

  /// Backend-dispatched group-index primitives shared by the aggregate
  /// merge paths (and the scan-ablation path, which must keep whichever
  /// index is active coherent for later indexed lookups).
  uint64_t* FindGroup(const U128& group);
  void InsertGroup(const U128& group, uint64_t row_id);

  /// Linear-scan merge for min/max batches (ablation path).
  void MergeMinMaxBatchByScan(const std::vector<TupleBuf>& wires);

  // Existence cache (§6.2.2): direct-mapped, one slot = candidate row id+1.
  bool CacheCheckDuplicate(TupleRef tuple, uint64_t hash) const;
  void CacheFill(uint64_t hash, uint64_t row_id);

  const AggSpec spec_;
  const uint32_t partition_col_;
  const bool use_join_index_;
  const bool use_agg_index_;
  const bool use_cache_;
  const bool use_flat_;
  const double sum_epsilon_;

  Relation rows_;
  std::vector<TupleBuf> delta_;

  // --- btree backend (Table 4 ablation baseline) ---
  // For kNone: key = (tuple hash, row id) — exact after row comparison.
  // For aggregates: key = group key, value = row id.
  BPlusTree<U128, uint64_t> group_index_;
  // For count/sum: key = (group word, contributor), value = last value word
  // (sum) or unused (count).
  BPlusTree<U128, uint64_t> contrib_index_;

  // --- flat backend (default hot path) ---
  FlatTupleSet exist_set_;    // kNone existence, keyed (hash, row id).
  FlatGroupMap flat_group_;   // aggregate group key → row id.
  FlatGroupMap flat_contrib_; // count/sum (group, contributor) → last value.

  DynIndex join_index_;

  // Per-batch hash scratch for the prefetch-pipelined kNone merge; member
  // so steady-state batches never allocate.
  std::vector<uint64_t> batch_hashes_;

  std::vector<uint64_t> cache_slots_;  // row id + 1; 0 = empty.
  uint64_t cache_mask_ = 0;

  // Batch-mode delta deduplication (see PushDelta).
  bool batch_mode_ = false;
  std::vector<uint64_t> batch_changed_rows_;

  // Debug-only single-writer stamp: the owning worker's thread claims the
  // partition on its first mutation; any foreign write dies (empty in
  // release). Reads (rows(), stats) stay unguarded — MaterializeResults
  // legitimately reads all partitions after the workers joined.
  DCD_AFFINITY_OWNER(writer_affinity_, "recursive-table-writer");

  uint64_t merges_ = 0;
  uint64_t accepts_ = 0;
  uint64_t cache_hits_ = 0;
  uint64_t probe_cmps_ = 0;  // btree-path comparisons; flat counts live
                             // inside the flat structures.

  // Incremental sessions: support counting (kNone + flat) and the
  // probe-comparison baseline ResetStats subtracts so merge_probe_cmps()
  // stays per-batch even though the flat structures' counters accumulate.
  bool maintain_counts_ = false;
  uint64_t probe_cmps_base_ = 0;
};

}  // namespace dcdatalog

#endif  // DCDATALOG_RUNTIME_RECURSIVE_TABLE_H_
