#include "runtime/base_index_set.h"

namespace dcdatalog {

BaseIndexSet::BaseIndexSet(const std::vector<BaseIndexReq>& requests) {
  entries_.resize(requests.size());
  for (size_t i = 0; i < requests.size(); ++i) {
    entries_[i].req = requests[i];
  }
}

Status BaseIndexSet::EnsureBuilt(int id, const Catalog& catalog) {
  Entry& e = entries_[id];
  if (e.built) return Status::OK();
  e.relation = catalog.Find(e.req.relation);
  if (e.relation == nullptr) {
    return Status::NotFound("relation '" + e.req.relation +
                            "' not materialized before index build");
  }
  if (e.req.is_hash) {
    e.hash.Build(*e.relation, e.req.col);
  } else {
    e.btree = std::make_unique<BPlusTree<uint64_t, uint64_t>>();
    const uint64_t n = e.relation->size();
    for (uint64_t r = 0; r < n; ++r) {
      e.btree->Insert(e.relation->Row(r)[e.req.col], r);
    }
  }
  e.built = true;
  return Status::OK();
}

}  // namespace dcdatalog
