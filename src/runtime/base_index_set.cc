#include "runtime/base_index_set.h"

namespace dcdatalog {

BaseIndexSet::BaseIndexSet(const std::vector<BaseIndexReq>& requests) {
  entries_.resize(requests.size());
  for (size_t i = 0; i < requests.size(); ++i) {
    entries_[i].req = requests[i];
  }
}

Status BaseIndexSet::EnsureBuilt(int id, const Catalog& catalog) {
  Entry& e = entries_[id];
  if (e.built) return Status::OK();
  e.relation = catalog.Find(e.req.relation);
  if (e.relation == nullptr) {
    return Status::NotFound("relation '" + e.req.relation +
                            "' not materialized before index build");
  }
  if (e.req.is_hash) {
    e.hash.Build(*e.relation, e.req.col);
  } else {
    e.btree = std::make_unique<BPlusTree<uint64_t, uint64_t>>();
    const uint64_t n = e.relation->size();
    for (uint64_t r = 0; r < n; ++r) {
      e.btree->Insert(e.relation->Row(r)[e.req.col], r);
    }
  }
  e.built = true;
  e.rows_indexed = e.relation->size();
  return Status::OK();
}

Status BaseIndexSet::SyncAppended(int id, const Catalog& catalog) {
  Entry& e = entries_[id];
  if (!e.built) return EnsureBuilt(id, catalog);
  const uint64_t n = e.relation->size();
  if (n == e.rows_indexed) return Status::OK();
  if (n < e.rows_indexed) {
    return Status::Internal("relation '" + e.req.relation +
                            "' shrank under a built index; Invalidate first");
  }
  if (e.req.is_hash) {
    e.hash.Append(*e.relation, e.req.col, e.rows_indexed);
  } else {
    for (uint64_t r = e.rows_indexed; r < n; ++r) {
      e.btree->Insert(e.relation->Row(r)[e.req.col], r);
    }
  }
  e.rows_indexed = n;
  return Status::OK();
}

void BaseIndexSet::Invalidate(int id) {
  Entry& e = entries_[id];
  e.built = false;
  e.rows_indexed = 0;
  e.relation = nullptr;
  e.hash = HashIndex();
  e.btree.reset();
}

}  // namespace dcdatalog
