#include "runtime/distributor.h"

#include "common/logging.h"
#include "common/value.h"

namespace dcdatalog {
namespace {

bool Better(const AggSpec& spec, uint64_t candidate, uint64_t current) {
  if (spec.value_type == ColumnType::kDouble) {
    const double c = DoubleFromWord(candidate);
    const double v = DoubleFromWord(current);
    return spec.func == AggFunc::kMin ? c < v : c > v;
  }
  const int64_t c = IntFromWord(candidate);
  const int64_t v = IntFromWord(current);
  return spec.func == AggFunc::kMin ? c < v : c > v;
}

}  // namespace

Distributor::Distributor(const SccPlan* scc, uint32_t num_workers,
                         bool partial_agg, SinkFn sink)
    : scc_(scc),
      num_workers_(num_workers),
      partial_agg_(partial_agg),
      sink_(std::move(sink)) {}

Distributor::PerPredicate& Distributor::StateFor(const HeadSpec& head) {
  auto [it, inserted] = per_pred_.try_emplace(head.predicate);
  PerPredicate& pp = it->second;
  if (inserted) {
    pp.head = &head;
    pp.replica_ids = scc_->ReplicasOf(head.predicate);
    DCD_CHECK(!pp.replica_ids.empty());
  }
  return pp;
}

void Distributor::Route(const PerPredicate& pp, const uint64_t* wire) {
  const uint32_t arity = pp.head->agg.wire_arity;
  WireMsg msg;
  std::memcpy(msg.w, wire, arity * sizeof(uint64_t));
  for (int rid : pp.replica_ids) {
    const ReplicaSpec& replica = scc_->replicas[rid];
    msg.tag = static_cast<uint64_t>(rid);
    const uint64_t key =
        replica.partition_constant ? 0 : wire[replica.partition_col];
    const uint32_t dest = PartitionOf(key, num_workers_);
    sink_(dest, msg);
    ++tuples_routed_;
  }
}

void Distributor::Emit(const HeadSpec& head, const uint64_t* wire) {
  ++tuples_emitted_;
  PerPredicate& pp = StateFor(head);
  const AggSpec& spec = head.agg;
  const bool foldable = partial_agg_ && (spec.func == AggFunc::kMin ||
                                         spec.func == AggFunc::kMax);
  if (!foldable) {
    Route(pp, wire);
    return;
  }
  U128 group;
  group.hi = spec.group_arity > 0 ? wire[0] : 0;
  group.lo = spec.group_arity > 1 ? wire[1] : 0;
  const uint32_t value_col = spec.stored_arity - 1;
  auto [it, inserted] = pp.partial.try_emplace(group);
  if (inserted) {
    std::memcpy(it->second.w, wire, spec.wire_arity * sizeof(uint64_t));
    return;
  }
  ++tuples_folded_;
  if (Better(spec, wire[value_col], it->second.w[value_col])) {
    std::memcpy(it->second.w, wire, spec.wire_arity * sizeof(uint64_t));
  }
}

void Distributor::Flush() {
  for (auto& [pred, pp] : per_pred_) {
    for (const auto& [group, msg] : pp.partial) {
      Route(pp, msg.w);
    }
    pp.partial.clear();
  }
}

}  // namespace dcdatalog
