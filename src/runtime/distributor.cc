#include "runtime/distributor.h"

#include "common/chaos.h"
#include "common/logging.h"
#include "common/value.h"

#if DCD_CHAOS_ENABLED
#include <cstdlib>
#include <string_view>
#endif

namespace dcdatalog {
namespace {

#if DCD_CHAOS_ENABLED
/// Fault-injection backdoor for validating the fuzz harness itself
/// (tools/dcd_fuzz --inject-bug): when the environment variable
/// DCD_INJECT_BUG=distributor_offbyone is set, every 8th routed tuple goes
/// to the wrong partition, breaking the ownership invariant the
/// differential oracle must catch. Compiled out of release builds with the
/// rest of the chaos layer.
bool InjectDistributorOffByOne() {
  static const bool on = [] {
    const char* v = std::getenv("DCD_INJECT_BUG");
    return v != nullptr && std::string_view(v) == "distributor_offbyone";
  }();
  return on;
}
#endif

bool Better(const AggSpec& spec, uint64_t candidate, uint64_t current) {
  if (spec.value_type == ColumnType::kDouble) {
    const double c = DoubleFromWord(candidate);
    const double v = DoubleFromWord(current);
    return spec.func == AggFunc::kMin ? c < v : c > v;
  }
  const int64_t c = IntFromWord(candidate);
  const int64_t v = IntFromWord(current);
  return spec.func == AggFunc::kMin ? c < v : c > v;
}

}  // namespace

Distributor::Distributor(const SccPlan* scc, uint32_t num_workers,
                         uint32_t self_worker, bool partial_agg,
                         BlockSink sink, SelfLoopSink self_sink)
    : scc_(scc),
      num_workers_(num_workers),
      num_replicas_(static_cast<uint32_t>(scc->replicas.size())),
      self_worker_(self_worker),
      partial_agg_(partial_agg),
      sink_(sink),
      self_sink_(self_sink),
      per_pred_(scc->derived_preds.size()),
      staging_(static_cast<size_t>(num_workers) * scc->replicas.size()) {}

Distributor::PerPredicate& Distributor::StateFor(const HeadSpec& head) {
  DCD_DCHECK(head.pred_id >= 0 &&
             static_cast<size_t>(head.pred_id) < per_pred_.size());
  PerPredicate& pp = per_pred_[static_cast<size_t>(head.pred_id)];
  if (pp.head == nullptr) {
    pp.head = &head;
    pp.wire_arity = head.agg.wire_arity;
    pp.block_capacity = MsgBlock::CapacityFor(pp.wire_arity);
    pp.replica_ids = scc_->ReplicasOf(head.predicate);
    DCD_CHECK(!pp.replica_ids.empty());
  }
  return pp;
}

void Distributor::SendBlock(uint32_t dest, MsgBlock* block) {
  sink_.fn(sink_.ctx, dest, *block);
  ++blocks_sent_;
  block->count = 0;
}

void Distributor::Route(const PerPredicate& pp, const uint64_t* wire) {
  const uint32_t arity = pp.wire_arity;
  const uint32_t capacity = pp.block_capacity;
  for (int rid : pp.replica_ids) {
    const ReplicaSpec& replica = scc_->replicas[rid];
    const uint64_t key =
        replica.partition_constant ? 0 : wire[replica.partition_col];
    uint32_t dest = PartitionOf(key, num_workers_);
#if DCD_CHAOS_ENABLED
    // Misroute every 8th routed tuple. Crucially this is inconsistent per
    // key — a consistent misroute would just be a different (still correct)
    // partition function, since base relations are probed through global
    // shared indexes. Inconsistency violates partition ownership: the same
    // logical tuple can land on two workers (duplicate output rows) and an
    // aggregate group can split across workers (two rows per group).
    if (InjectDistributorOffByOne() && (++inject_route_count_ & 7) == 0) {
      dest = (dest + 1) % num_workers_;
    }
#endif
    ++tuples_routed_;
    if (dest == self_worker_) {
      // Self-loop bypass: the tuple never leaves this worker, so it skips
      // the rings and the produced/consumed accounting entirely.
      ++self_loop_tuples_;
      self_sink_.fn(self_sink_.ctx, static_cast<uint32_t>(rid), wire, arity);
      continue;
    }
    MsgBlock& block = StagingFor(dest, static_cast<uint32_t>(rid));
    if (block.count == 0) {
      block.tag = static_cast<uint16_t>(rid);
      block.arity = static_cast<uint16_t>(arity);
    }
    std::memcpy(block.AppendSlot(), wire, arity * sizeof(uint64_t));
    ++block.count;
    if (block.count >= capacity) SendBlock(dest, &block);
  }
}

void Distributor::EmitResolved(PerPredicate& pp, const AggSpec& spec,
                               const uint64_t* wire) {
  ++tuples_emitted_;
  const bool foldable = partial_agg_ && (spec.func == AggFunc::kMin ||
                                         spec.func == AggFunc::kMax);
  if (!foldable) {
    Route(pp, wire);
    return;
  }
  U128 group;
  group.hi = spec.group_arity > 0 ? wire[0] : 0;
  group.lo = spec.group_arity > 1 ? wire[1] : 0;
  const uint32_t value_col = spec.stored_arity - 1;
  auto [it, inserted] = pp.partial.try_emplace(group);
  if (inserted) {
    it->second = TupleBuf::FromWords(wire, spec.wire_arity);
    return;
  }
  ++tuples_folded_;
  if (Better(spec, wire[value_col], it->second.v[value_col])) {
    it->second = TupleBuf::FromWords(wire, spec.wire_arity);
  }
}

DCD_HOT_ROOT void Distributor::Emit(const HeadSpec& head,
                                    const uint64_t* wire) {
  DCD_AFFINITY_GUARD(owner_affinity_);
  EmitResolved(StateFor(head), head.agg, wire);
}

DCD_HOT_ROOT void Distributor::EmitBatch(const HeadSpec& head,
                                         const uint64_t* wires,
                                         uint32_t count, uint32_t wire_arity) {
  DCD_AFFINITY_GUARD(owner_affinity_);
  if (count == 0) return;
  PerPredicate& pp = StateFor(head);
  DCD_DCHECK(wire_arity == pp.wire_arity);
  for (uint32_t i = 0; i < count; ++i) {
    EmitResolved(pp, head.agg, wires + static_cast<size_t>(i) * wire_arity);
  }
}

DCD_HOT_ROOT void Distributor::Flush() {
  DCD_AFFINITY_GUARD(owner_affinity_);
  for (PerPredicate& pp : per_pred_) {
    if (pp.head == nullptr || pp.partial.empty()) continue;
    for (const auto& [group, buf] : pp.partial) {
      Route(pp, buf.v);
    }
    pp.partial.clear();
  }
  // Ship every partial block: nothing may linger in staging across the
  // iteration boundary, or termination detection and DWS's queue-size
  // signals would miss in-flight tuples.
  for (uint32_t dest = 0; dest < num_workers_; ++dest) {
    for (uint32_t r = 0; r < num_replicas_; ++r) {
      MsgBlock& block = StagingFor(dest, r);
      if (block.count > 0) SendBlock(dest, &block);
    }
  }
}

}  // namespace dcdatalog
