#ifndef DCDATALOG_RUNTIME_BASE_INDEX_SET_H_
#define DCDATALOG_RUNTIME_BASE_INDEX_SET_H_

#include <memory>
#include <type_traits>
#include <vector>

#include "common/status.h"
#include "planner/physical_plan.h"
#include "storage/btree.h"
#include "storage/catalog.h"
#include "storage/hash_index.h"

namespace dcdatalog {

/// The global read-only indexes over base relations that join probes use
/// (Algorithm 1 line 3). "Base" here means any relation that is input to
/// the SCC being evaluated: EDB tables and the materialized results of
/// earlier SCCs. Indexes are built lazily — EnsureBuilt runs before an SCC
/// starts, because an earlier SCC may only just have materialized the
/// relation — and are then probed concurrently by all workers without
/// synchronization.
class BaseIndexSet {
 public:
  explicit BaseIndexSet(const std::vector<BaseIndexReq>& requests);

  /// Builds index `id` from the catalog if it is not built yet.
  Status EnsureBuilt(int id, const Catalog& catalog);

  /// Incremental-maintenance sync: EnsureBuilt, then index any rows the
  /// backing relation appended since the last build/sync (EDB insert
  /// batches, or upstream IDB relations extended in place). Requires the
  /// relation to have only grown; shrinking relations must Invalidate first.
  Status SyncAppended(int id, const Catalog& catalog);

  /// Drops index `id` so the next EnsureBuilt rebuilds it from scratch —
  /// the deletion path, where the backing relation was rewritten in place.
  void Invalidate(int id);

  bool IsBuilt(int id) const { return entries_[id].built; }

  /// fn(TupleRef row) for each row of the indexed relation whose key column
  /// equals `key`. fn may return void (visit everything) or bool — false
  /// stops the iteration early (anti-joins stop at the first witness).
  template <typename Fn>
  void ForEachMatch(int id, uint64_t key, Fn&& fn) const {
    const auto visit = [&fn](TupleRef row) {
      if constexpr (std::is_void_v<std::invoke_result_t<Fn&, TupleRef>>) {
        fn(row);
        return true;
      } else {
        return fn(row);
      }
    };
    const Entry& e = entries_[id];
    if (e.req.is_hash) {
      e.hash.ForEachMatch(key, [&](uint64_t row_id) {
        return visit(e.relation->Row(row_id));
      });
    } else {
      e.btree->ForEachEqual(key, [&](const uint64_t& row_id) {
        return visit(e.relation->Row(row_id));
      });
    }
  }

  /// Prefetches index `id`'s probe slot for `key` (hash indexes only; a
  /// B+-tree probe has no single home slot, so it is a no-op there). Issued
  /// by the batch pipeline several lanes ahead of the probe pass.
  void Prefetch(int id, uint64_t key) const {
    const Entry& e = entries_[id];
    if (e.req.is_hash) e.hash.Prefetch(key);
  }

 private:
  struct Entry {
    BaseIndexReq req;
    const Relation* relation = nullptr;
    bool built = false;
    uint64_t rows_indexed = 0;  // Watermark for SyncAppended.
    HashIndex hash;
    std::unique_ptr<BPlusTree<uint64_t, uint64_t>> btree;
  };

  std::vector<Entry> entries_;
};

}  // namespace dcdatalog

#endif  // DCDATALOG_RUNTIME_BASE_INDEX_SET_H_
