#ifndef DCDATALOG_RUNTIME_PIPELINE_H_
#define DCDATALOG_RUNTIME_PIPELINE_H_

#include <functional>
#include <memory>
#include <vector>

#include "planner/physical_plan.h"
#include "runtime/base_index_set.h"
#include "runtime/recursive_table.h"
#include "storage/catalog.h"

namespace dcdatalog {

/// Everything a worker needs to execute rule pipelines: shared read-only
/// structures plus this worker's own replicas and register scratch.
struct PipelineContext {
  const Catalog* catalog = nullptr;
  const BaseIndexSet* base_indexes = nullptr;
  /// This worker's replica partitions, indexed by replica id.
  const std::vector<std::unique_ptr<RecursiveTable>>* replicas = nullptr;
  /// Register scratch, at least PhysicalRule::num_regs wide.
  uint64_t* regs = nullptr;
  /// Scan relations resolved once per rule by PreparePipeline, indexed by
  /// step. The catalog registry is lock-guarded, so per-tuple Find calls
  /// from the pipeline would put a mutex on the hot path (and trip the
  /// tools/lint hot-path rule); steps read this cache instead.
  std::vector<const Relation*> scan_rels;
};

/// Resolves `rule`'s kScanBase / kAntiJoinScan relations from the catalog
/// into ctx->scan_rels. Must run once before executing the rule's pipeline
/// with this context; rules without scan steps clear the cache cheaply.
void PreparePipeline(const PhysicalRule& rule, PipelineContext* ctx);

/// Emission callback: registers are loaded; the callee evaluates the head's
/// wire expressions and routes the tuple.
using EmitFn = std::function<void(const uint64_t* regs)>;

/// Executes `rule`'s step pipeline for one driving tuple (a delta row or a
/// scanned base row): applies the driving scan's bindings and checks, then
/// runs probes/filters/binds depth-first, calling `emit` per derivation.
void RunPipelineForTuple(const PhysicalRule& rule, const PipelineContext& ctx,
                         TupleRef driving, const EmitFn& emit);

/// Executes a unit-driven rule (no body atoms): runs the pipeline once.
void RunPipelineUnit(const PhysicalRule& rule, const PipelineContext& ctx,
                     const EmitFn& emit);

/// Evaluates the head's wire expressions into `wire` (wire_arity words).
void BuildWireTuple(const HeadSpec& head, const uint64_t* regs,
                    uint64_t* wire);

}  // namespace dcdatalog

#endif  // DCDATALOG_RUNTIME_PIPELINE_H_
