#ifndef DCDATALOG_RUNTIME_PIPELINE_H_
#define DCDATALOG_RUNTIME_PIPELINE_H_

#include <memory>
#include <vector>

#include "planner/physical_plan.h"
#include "runtime/base_index_set.h"
#include "runtime/recursive_table.h"
#include "storage/catalog.h"

namespace dcdatalog {

/// Everything a worker needs to execute rule pipelines: shared read-only
/// structures plus this worker's own replicas and register scratch.
struct PipelineContext {
  const Catalog* catalog = nullptr;
  const BaseIndexSet* base_indexes = nullptr;
  /// This worker's replica partitions, indexed by replica id.
  const std::vector<std::unique_ptr<RecursiveTable>>* replicas = nullptr;
  /// Register scratch, at least PhysicalRule::num_regs wide (tuple
  /// executor; the batch executor carries its own columnar banks).
  uint64_t* regs = nullptr;
  /// Scan relations resolved once per rule by PreparePipeline, indexed by
  /// step. The catalog registry is lock-guarded, so per-tuple Find calls
  /// from the pipeline would put a mutex on the hot path (and trip the
  /// tools/lint hot-path rule); steps read this cache instead.
  std::vector<const Relation*> scan_rels;
};

/// Resolves `rule`'s kScanBase / kAntiJoinScan relations from the catalog
/// into ctx->scan_rels. Must run once before executing the rule's pipeline
/// with this context; rules without scan steps clear the cache cheaply.
void PreparePipeline(const PhysicalRule& rule, PipelineContext* ctx);

/// Non-allocating emission callback: a plain function pointer plus opaque
/// context. Replaces the old std::function EmitFn — a capturing
/// std::function can heap-allocate and always calls through a vtable-like
/// thunk, neither of which belongs on the per-derivation hot path. The
/// callee evaluates the head's wire expressions and routes the tuple.
struct EmitSink {
  using Fn = void (*)(void* ctx, const uint64_t* regs);
  Fn fn = nullptr;
  void* ctx = nullptr;

  void operator()(const uint64_t* regs) const { fn(ctx, regs); }
};

// --- Shared step-compilation layer ----------------------------------------
// Both executors apply the same residual-check/bind semantics per matched
// tuple; the only difference is the register layout. These helpers take the
// strided form (register r of lane `lane` lives at regs[r * stride + lane]);
// the tuple executor passes stride = 1, lane = 0 and gets the flat layout.

/// Applies a step's residual checks to a matched tuple and, on success,
/// binds its output columns into registers. Returns false on any mismatch.
inline bool ApplyChecksAndBindStrided(const Step& step, TupleRef tuple,
                                      uint64_t* regs, uint64_t stride,
                                      uint32_t lane) {
  for (const ConstCheck& c : step.const_checks) {
    if (tuple[c.col] != c.word) return false;
  }
  // Outputs bind only freshly allocated registers, so writing them before
  // the equality checks is safe — and necessary for repeated variables
  // within one atom (q(Y, Y)), where the check compares against the
  // just-bound first occurrence.
  for (const OutputBinding& b : step.outputs) {
    regs[b.reg * stride + lane] = tuple[b.col];
  }
  for (const EqCheck& c : step.eq_checks) {
    if (tuple[c.col] != regs[c.reg * stride + lane]) return false;
  }
  return true;
}

/// Checks whether a tuple matches a step's const and eq checks WITHOUT
/// binding outputs — the anti-join witness test. Exits at the first
/// mismatch.
inline bool StepChecksMatch(const Step& step, TupleRef tuple,
                            const uint64_t* regs, uint64_t stride,
                            uint32_t lane) {
  for (const ConstCheck& c : step.const_checks) {
    if (tuple[c.col] != c.word) return false;
  }
  for (const EqCheck& c : step.eq_checks) {
    if (tuple[c.col] != regs[c.reg * stride + lane]) return false;
  }
  return true;
}

/// Applies the driving scan's const checks, output bindings and eq checks
/// for one driving tuple. Returns false when the tuple is rejected.
inline bool ApplyDrivingScanStrided(const PhysicalRule& rule, TupleRef driving,
                                    uint64_t* regs, uint64_t stride,
                                    uint32_t lane) {
  for (const ConstCheck& c : rule.scan_const_checks) {
    if (driving[c.col] != c.word) return false;
  }
  for (const OutputBinding& b : rule.scan_outputs) {
    regs[b.reg * stride + lane] = driving[b.col];
  }
  // Eq checks on the driving scan handle repeated variables within the
  // atom, e.g. p(X, X): the first occurrence binds, later ones compare.
  for (const EqCheck& c : rule.scan_eq_checks) {
    if (driving[c.col] != regs[c.reg * stride + lane]) return false;
  }
  return true;
}

/// Executes `rule`'s step pipeline for one driving tuple (a delta row or a
/// scanned base row): applies the driving scan's bindings and checks, then
/// runs probes/filters/binds depth-first, calling `emit` per derivation.
void RunPipelineForTuple(const PhysicalRule& rule, const PipelineContext& ctx,
                         TupleRef driving, const EmitSink& emit);

/// Executes a unit-driven rule (no body atoms): runs the pipeline once.
void RunPipelineUnit(const PhysicalRule& rule, const PipelineContext& ctx,
                     const EmitSink& emit);

/// Evaluates the head's wire expressions into `wire` (wire_arity words).
void BuildWireTuple(const HeadSpec& head, const uint64_t* regs,
                    uint64_t* wire);

}  // namespace dcdatalog

#endif  // DCDATALOG_RUNTIME_PIPELINE_H_
