#include "runtime/expr_eval.h"

#include "common/logging.h"

namespace dcdatalog {
namespace {

double AsDouble(const CompiledExpr& e, uint64_t word) {
  return e.type == ColumnType::kDouble
             ? DoubleFromWord(word)
             : static_cast<double>(IntFromWord(word));
}

}  // namespace

uint64_t EvalExpr(const CompiledExpr& expr, const uint64_t* regs) {
  switch (expr.op) {
    case ExprOp::kVar:
      return regs[expr.reg];
    case ExprOp::kConst:
      return expr.const_word;
    case ExprOp::kToDouble: {
      uint64_t inner = EvalExpr(*expr.lhs, regs);
      return WordFromDouble(AsDouble(*expr.lhs, inner));
    }
    case ExprOp::kNeg: {
      uint64_t inner = EvalExpr(*expr.lhs, regs);
      if (expr.type == ColumnType::kDouble) {
        return WordFromDouble(-AsDouble(*expr.lhs, inner));
      }
      return WordFromInt(-IntFromWord(inner));
    }
    default: {
      const uint64_t l = EvalExpr(*expr.lhs, regs);
      const uint64_t r = EvalExpr(*expr.rhs, regs);
      if (expr.type == ColumnType::kDouble) {
        const double a = AsDouble(*expr.lhs, l);
        const double b = AsDouble(*expr.rhs, r);
        switch (expr.op) {
          case ExprOp::kAdd:
            return WordFromDouble(a + b);
          case ExprOp::kSub:
            return WordFromDouble(a - b);
          case ExprOp::kMul:
            return WordFromDouble(a * b);
          case ExprOp::kDiv:
            return WordFromDouble(a / b);
          default:
            break;
        }
      } else {
        const int64_t a = IntFromWord(l);
        const int64_t b = IntFromWord(r);
        switch (expr.op) {
          case ExprOp::kAdd:
            return WordFromInt(a + b);
          case ExprOp::kSub:
            return WordFromInt(a - b);
          case ExprOp::kMul:
            return WordFromInt(a * b);
          case ExprOp::kDiv:
            // Integer division; division by zero yields 0 rather than UB —
            // a deliberate, documented total semantics for rule arithmetic.
            return WordFromInt(b == 0 ? 0 : a / b);
          default:
            break;
        }
      }
      DCD_CHECK(false);
      return 0;
    }
  }
}

bool EvalCompare(CmpOp op, const CompiledExpr& lhs, const CompiledExpr& rhs,
                 const uint64_t* regs) {
  const uint64_t l = EvalExpr(lhs, regs);
  const uint64_t r = EvalExpr(rhs, regs);
  if (lhs.type == ColumnType::kString || rhs.type == ColumnType::kString) {
    switch (op) {
      case CmpOp::kEq:
        return l == r;
      case CmpOp::kNe:
        return l != r;
      case CmpOp::kLt:
        return l < r;
      case CmpOp::kLe:
        return l <= r;
      case CmpOp::kGt:
        return l > r;
      case CmpOp::kGe:
        return l >= r;
    }
  }
  if (lhs.type == ColumnType::kDouble || rhs.type == ColumnType::kDouble) {
    const double a = AsDouble(lhs, l);
    const double b = AsDouble(rhs, r);
    switch (op) {
      case CmpOp::kEq:
        return a == b;
      case CmpOp::kNe:
        return a != b;
      case CmpOp::kLt:
        return a < b;
      case CmpOp::kLe:
        return a <= b;
      case CmpOp::kGt:
        return a > b;
      case CmpOp::kGe:
        return a >= b;
    }
  }
  const int64_t a = IntFromWord(l);
  const int64_t b = IntFromWord(r);
  switch (op) {
    case CmpOp::kEq:
      return a == b;
    case CmpOp::kNe:
      return a != b;
    case CmpOp::kLt:
      return a < b;
    case CmpOp::kLe:
      return a <= b;
    case CmpOp::kGt:
      return a > b;
    case CmpOp::kGe:
      return a >= b;
  }
  return false;
}

namespace {
// Silence unused warning for AsDouble when compiled out; no-op.
}  // namespace

}  // namespace dcdatalog
