#include "runtime/expr_eval.h"

#include "common/logging.h"

namespace dcdatalog {
namespace {

double AsDouble(const CompiledExpr& e, uint64_t word) {
  return e.type == ColumnType::kDouble
             ? DoubleFromWord(word)
             : static_cast<double>(IntFromWord(word));
}

/// Shared evaluator core, parameterized on how a register index turns into
/// a word: the row layout reads regs[r], the batch executor's columnar
/// layout reads banks[r * stride + lane]. Everything else is identical, so
/// both entry points share one implementation.
template <typename RegAt>
uint64_t EvalExprImpl(const CompiledExpr& expr, const RegAt& reg_at) {
  switch (expr.op) {
    case ExprOp::kVar:
      return reg_at(expr.reg);
    case ExprOp::kConst:
      return expr.const_word;
    case ExprOp::kToDouble: {
      uint64_t inner = EvalExprImpl(*expr.lhs, reg_at);
      return WordFromDouble(AsDouble(*expr.lhs, inner));
    }
    case ExprOp::kNeg: {
      uint64_t inner = EvalExprImpl(*expr.lhs, reg_at);
      if (expr.type == ColumnType::kDouble) {
        return WordFromDouble(-AsDouble(*expr.lhs, inner));
      }
      return WordFromInt(-IntFromWord(inner));
    }
    default: {
      const uint64_t l = EvalExprImpl(*expr.lhs, reg_at);
      const uint64_t r = EvalExprImpl(*expr.rhs, reg_at);
      if (expr.type == ColumnType::kDouble) {
        const double a = AsDouble(*expr.lhs, l);
        const double b = AsDouble(*expr.rhs, r);
        switch (expr.op) {
          case ExprOp::kAdd:
            return WordFromDouble(a + b);
          case ExprOp::kSub:
            return WordFromDouble(a - b);
          case ExprOp::kMul:
            return WordFromDouble(a * b);
          case ExprOp::kDiv:
            return WordFromDouble(a / b);
          default:
            break;
        }
      } else {
        const int64_t a = IntFromWord(l);
        const int64_t b = IntFromWord(r);
        switch (expr.op) {
          case ExprOp::kAdd:
            return WordFromInt(a + b);
          case ExprOp::kSub:
            return WordFromInt(a - b);
          case ExprOp::kMul:
            return WordFromInt(a * b);
          case ExprOp::kDiv:
            // Integer division; division by zero yields 0 rather than UB —
            // a deliberate, documented total semantics for rule arithmetic.
            return WordFromInt(b == 0 ? 0 : a / b);
          default:
            break;
        }
      }
      DCD_CHECK(false);
      return 0;
    }
  }
}

template <typename RegAt>
bool EvalCompareImpl(CmpOp op, const CompiledExpr& lhs,
                     const CompiledExpr& rhs, const RegAt& reg_at) {
  const uint64_t l = EvalExprImpl(lhs, reg_at);
  const uint64_t r = EvalExprImpl(rhs, reg_at);
  if (lhs.type == ColumnType::kString || rhs.type == ColumnType::kString) {
    switch (op) {
      case CmpOp::kEq:
        return l == r;
      case CmpOp::kNe:
        return l != r;
      case CmpOp::kLt:
        return l < r;
      case CmpOp::kLe:
        return l <= r;
      case CmpOp::kGt:
        return l > r;
      case CmpOp::kGe:
        return l >= r;
    }
  }
  if (lhs.type == ColumnType::kDouble || rhs.type == ColumnType::kDouble) {
    const double a = AsDouble(lhs, l);
    const double b = AsDouble(rhs, r);
    switch (op) {
      case CmpOp::kEq:
        return a == b;
      case CmpOp::kNe:
        return a != b;
      case CmpOp::kLt:
        return a < b;
      case CmpOp::kLe:
        return a <= b;
      case CmpOp::kGt:
        return a > b;
      case CmpOp::kGe:
        return a >= b;
    }
  }
  const int64_t a = IntFromWord(l);
  const int64_t b = IntFromWord(r);
  switch (op) {
    case CmpOp::kEq:
      return a == b;
    case CmpOp::kNe:
      return a != b;
    case CmpOp::kLt:
      return a < b;
    case CmpOp::kLe:
      return a <= b;
    case CmpOp::kGt:
      return a > b;
    case CmpOp::kGe:
      return a >= b;
  }
  return false;
}

}  // namespace

uint64_t EvalExpr(const CompiledExpr& expr, const uint64_t* regs) {
  return EvalExprImpl(expr, [regs](int r) { return regs[r]; });
}

bool EvalCompare(CmpOp op, const CompiledExpr& lhs, const CompiledExpr& rhs,
                 const uint64_t* regs) {
  return EvalCompareImpl(op, lhs, rhs, [regs](int r) { return regs[r]; });
}

uint64_t EvalExprLane(const CompiledExpr& expr, const uint64_t* banks,
                      uint64_t stride, uint32_t lane) {
  return EvalExprImpl(
      expr, [banks, stride, lane](int r) { return banks[r * stride + lane]; });
}

bool EvalCompareLane(CmpOp op, const CompiledExpr& lhs,
                     const CompiledExpr& rhs, const uint64_t* banks,
                     uint64_t stride, uint32_t lane) {
  return EvalCompareImpl(
      op, lhs, rhs,
      [banks, stride, lane](int r) { return banks[r * stride + lane]; });
}

}  // namespace dcdatalog
