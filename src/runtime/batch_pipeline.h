#ifndef DCDATALOG_RUNTIME_BATCH_PIPELINE_H_
#define DCDATALOG_RUNTIME_BATCH_PIPELINE_H_

#include <cstdint>
#include <vector>

#include "planner/physical_plan.h"
#include "runtime/pipeline.h"
#include "storage/tuple.h"

namespace dcdatalog {

/// Lanes per driving batch. 256 keeps one level's register banks (num_regs
/// × 256 × 8 B) and selection vector comfortably inside L1/L2 for typical
/// rules while amortizing per-batch overhead and giving the probe prefetch
/// pipeline enough lanes to cover a DRAM latency many times over.
inline constexpr uint32_t kBatchPipelineLanes = 256;

/// Probe-slot prefetch distance within a batch probe pass — the same
/// discipline RecursiveTable::MergeBatch proved out: far enough ahead that
/// the bucket line arrives from DRAM before the probe pass reaches it, near
/// enough that it is still resident.
inline constexpr uint32_t kBatchPrefetchDistance = 8;

/// Non-allocating batch emission sink: receives a whole output batch of
/// wire tuples (`count` tuples of `wire_arity` words each, packed densely)
/// after the executor evaluated the head's wire expressions for every
/// surviving lane. The engine points this at Distributor::EmitBatch.
struct BatchEmitSink {
  using Fn = void (*)(void* ctx, const HeadSpec& head, const uint64_t* wires,
                      uint32_t count, uint32_t wire_arity);
  Fn fn = nullptr;
  void* ctx = nullptr;
};

/// Vectorized batch-at-a-time pipeline executor (the default;
/// EngineOptions::pipeline_executor selects the tuple-at-a-time executor in
/// runtime/pipeline.h as the ablation baseline).
///
/// Driving tuples are gathered into fixed-size batches of
/// kBatchPipelineLanes rows. Registers are columnar banks — register r of
/// lane l lives at regs[r * kBatchPipelineLanes + l] — threaded through the
/// step pipeline together with a selection vector of live lane ids.
/// Non-expanding steps (filter/bind/anti-join) run as tight loops over the
/// selection, compacting it in place; expanding steps (probes and scans,
/// classified by the planner via Step::expanding) gather all surviving probe
/// keys up front, prefetch probe slots kBatchPrefetchDistance lanes ahead,
/// and scatter matches into the next pipeline level's banks — flushing
/// downstream in full batches whenever a probe's fan-out overfills a level.
///
/// One instance per worker, reused across rules and iterations: Begin only
/// grows the level storage, so steady-state batches never allocate.
class BatchPipelineRunner {
 public:
  BatchPipelineRunner() = default;

  /// Starts executing `rule` with `ctx` (PreparePipeline must have run for
  /// this rule) and the emission sink. Sizes per-level banks; allocation is
  /// growth-only across rules.
  void Begin(const PhysicalRule& rule, const PipelineContext* ctx,
             BatchEmitSink emit);

  /// Feeds one driving tuple (delta row or base-relation row). Applies the
  /// driving scan's checks immediately; admitted rows fill the level-0
  /// banks, and a full batch runs the step pipeline.
  void Push(TupleRef driving);

  /// Runs the partial final batch. Call once after the last Push.
  void Finish();

  /// Executes a unit-driven rule (no body atoms) as a single-lane batch.
  void RunUnit(const PhysicalRule& rule, const PipelineContext* ctx,
               BatchEmitSink emit);

  /// Driving batches executed (including partial final batches).
  uint64_t batches() const { return batches_; }
  /// Driving lanes admitted into batches after the driving scan's checks
  /// (unit rules contribute their single synthetic lane).
  uint64_t rows_selected() const { return rows_selected_; }

 private:
  /// One pipeline level: the columnar register banks plus selection state.
  /// Level 0 holds the driving batch; each expanding step scatters into the
  /// next level. `lanes` counts materialized lanes; `sel`/`sel_size` is the
  /// subset still live after filtering. Probe keys are per-level scratch
  /// because an in-flight probe's key array must survive downstream flushes
  /// that run deeper steps (which gather keys of their own).
  struct Level {
    std::vector<uint64_t> regs;  // num_regs banks of kBatchPipelineLanes.
    std::vector<uint32_t> sel;
    std::vector<uint64_t> keys;
    uint32_t lanes = 0;
    uint32_t sel_size = 0;
  };

  void RunBatch();
  /// Makes all of `level_[depth]`'s lanes live and runs steps from
  /// step_idx; resets the level's lane count afterwards.
  void FlushLevel(size_t step_idx, uint32_t depth);
  void RunSteps(size_t step_idx, uint32_t depth);
  void RunExpanding(size_t step_idx, uint32_t depth);
  void RunFilter(const Step& step, Level& lv);
  void RunBind(const Step& step, Level& lv);
  void RunAntiJoin(const Step& step, size_t step_idx, Level& lv);
  void EmitLevel(uint32_t depth);

  /// Copies the step's live-after registers of `lane` into the next free
  /// lane of `out` (columnar strided copy). The carry list is the planner's
  /// Step::carry_regs — registers dead downstream of the scattering step
  /// are never moved.
  void CopyLane(const Level& in, uint32_t lane, Level* out, const int* carry,
                uint32_t carry_n) const {
    const uint32_t olane = out->lanes;
    for (uint32_t i = 0; i < carry_n; ++i) {
      const size_t r = static_cast<size_t>(carry[i]);
      out->regs[r * kBatchPipelineLanes + olane] =
          in.regs[r * kBatchPipelineLanes + lane];
    }
  }

  const PhysicalRule* rule_ = nullptr;
  const PipelineContext* ctx_ = nullptr;
  BatchEmitSink emit_;
  uint32_t num_regs_ = 0;

  std::vector<Level> level_;
  /// Wire-tuple staging for one output batch (kBatchPipelineLanes tuples of
  /// up to kMaxWireWords words).
  std::vector<uint64_t> wire_batch_;

  uint64_t batches_ = 0;
  uint64_t rows_selected_ = 0;
};

}  // namespace dcdatalog

#endif  // DCDATALOG_RUNTIME_BATCH_PIPELINE_H_
