#include "runtime/batch_pipeline.h"

#include "common/hot_path.h"
#include "common/logging.h"
#include "common/value.h"
#include "runtime/expr_eval.h"
#include "runtime/message.h"

namespace dcdatalog {
namespace {

constexpr uint32_t kLanes = kBatchPipelineLanes;

/// True when the operand is a plain integer register or constant — the
/// shapes the branch-light filter loop handles without the recursive
/// expression evaluator.
bool SimpleIntOperand(const CompiledExpr& e) {
  return (e.op == ExprOp::kVar || e.op == ExprOp::kConst) &&
         e.type == ColumnType::kInt;
}

inline bool CmpInt(CmpOp op, int64_t a, int64_t b) {
  switch (op) {
    case CmpOp::kEq:
      return a == b;
    case CmpOp::kNe:
      return a != b;
    case CmpOp::kLt:
      return a < b;
    case CmpOp::kLe:
      return a <= b;
    case CmpOp::kGt:
      return a > b;
    case CmpOp::kGe:
      return a >= b;
  }
  return false;
}

}  // namespace

void BatchPipelineRunner::Begin(const PhysicalRule& rule,
                                const PipelineContext* ctx,
                                BatchEmitSink emit) {
  rule_ = &rule;
  ctx_ = ctx;
  emit_ = emit;
  num_regs_ = rule.num_regs;

  // Growth-only sizing: levels and banks expand to the widest rule seen and
  // stay there, so steady-state iterations never allocate.
  const size_t depths = rule.steps.size() + 1;
  if (level_.size() < depths) level_.resize(depths);
  const size_t bank_words = static_cast<size_t>(num_regs_) * kLanes;
  for (size_t d = 0; d < depths; ++d) {
    Level& lv = level_[d];
    if (lv.regs.size() < bank_words) lv.regs.resize(bank_words);
    if (lv.sel.size() < kLanes) lv.sel.resize(kLanes);
    if (lv.keys.size() < kLanes) lv.keys.resize(kLanes);
    lv.lanes = 0;
    lv.sel_size = 0;
  }
  const size_t wire_words = static_cast<size_t>(kLanes) * kMaxWireWords;
  if (wire_batch_.size() < wire_words) wire_batch_.resize(wire_words);
}

DCD_HOT_ROOT void BatchPipelineRunner::Push(TupleRef driving) {
  Level& lv = level_[0];
  if (ApplyDrivingScanStrided(*rule_, driving, lv.regs.data(), kLanes,
                              lv.lanes)) {
    if (++lv.lanes == kLanes) RunBatch();
  }
}

DCD_HOT_ROOT void BatchPipelineRunner::Finish() { RunBatch(); }

void BatchPipelineRunner::RunUnit(const PhysicalRule& rule,
                                  const PipelineContext* ctx,
                                  BatchEmitSink emit) {
  DCD_DCHECK(rule.driving_is_unit);
  Begin(rule, ctx, emit);
  level_[0].lanes = 1;  // One synthetic lane; steps bind every register.
  RunBatch();
}

DCD_HOT_ROOT void BatchPipelineRunner::RunBatch() {
  Level& lv = level_[0];
  if (lv.lanes == 0) return;
  ++batches_;
  rows_selected_ += lv.lanes;
  FlushLevel(0, 0);
}

void BatchPipelineRunner::FlushLevel(size_t step_idx, uint32_t depth) {
  Level& lv = level_[depth];
  lv.sel_size = lv.lanes;
  for (uint32_t i = 0; i < lv.lanes; ++i) lv.sel[i] = i;
  RunSteps(step_idx, depth);
  lv.lanes = 0;
}

void BatchPipelineRunner::RunSteps(size_t step_idx, uint32_t depth) {
  // Non-expanding steps work level_[depth]'s selection in place, so they
  // chain iteratively; an expanding step recurses into the next level.
  while (step_idx < rule_->steps.size()) {
    const Step& step = rule_->steps[step_idx];
    if (step.expanding) {
      RunExpanding(step_idx, depth);
      return;
    }
    Level& lv = level_[depth];
    switch (step.kind) {
      case StepKind::kFilter:
        RunFilter(step, lv);
        break;
      case StepKind::kBind:
        RunBind(step, lv);
        break;
      case StepKind::kAntiJoinBTree:
      case StepKind::kAntiJoinScan:
        RunAntiJoin(step, step_idx, lv);
        break;
      default:
        DCD_CHECK(false);  // Expanding kinds handled above.
    }
    if (lv.sel_size == 0) return;
    ++step_idx;
  }
  EmitLevel(depth);
}

void BatchPipelineRunner::RunExpanding(size_t step_idx, uint32_t depth) {
  const Step& step = rule_->steps[step_idx];
  Level& in = level_[depth];
  Level& out = level_[depth + 1];
  out.lanes = 0;
  const uint32_t n = in.sel_size;
  const int* carry = step.carry_regs.data();
  const uint32_t carry_n = static_cast<uint32_t>(step.carry_regs.size());

  if (step.kind == StepKind::kScanBase) {
    // Nested-loop fallback: no key, no prefetch — scan the whole relation
    // per live lane.
    const Relation* rel = ctx_->scan_rels[step_idx];
    DCD_CHECK(rel != nullptr);
    const uint64_t rows = rel->size();
    for (uint32_t i = 0; i < n; ++i) {
      const uint32_t lane = in.sel[i];
      for (uint64_t r = 0; r < rows; ++r) {
        CopyLane(in, lane, &out, carry, carry_n);
        if (ApplyChecksAndBindStrided(step, rel->Row(r), out.regs.data(),
                                      kLanes, out.lanes)) {
          if (++out.lanes == kLanes) FlushLevel(step_idx + 1, depth + 1);
        }
      }
    }
    if (out.lanes > 0) FlushLevel(step_idx + 1, depth + 1);
    return;
  }

  const bool recursive = step.kind == StepKind::kProbeRecursive;
  const RecursiveTable* table =
      recursive ? (*ctx_->replicas)[step.replica_id].get() : nullptr;
  const auto on_match = [&](uint32_t lane, TupleRef row) {
    CopyLane(in, lane, &out, carry, carry_n);
    if (ApplyChecksAndBindStrided(step, row, out.regs.data(), kLanes,
                                  out.lanes)) {
      if (++out.lanes == kLanes) FlushLevel(step_idx + 1, depth + 1);
    }
  };

  if (recursive || step.kind == StepKind::kProbeBaseHash) {
    // Prefetchable probes: gather every surviving key up front (tight
    // columnar loop), then probe with slots prefetched
    // kBatchPrefetchDistance lanes ahead so the dependent bucket loads
    // overlap instead of serializing. Keys live in the INPUT level's
    // scratch: a downstream flush may run a deeper probe that gathers keys
    // of its own, and per-level storage keeps this pass's keys intact
    // across it.
    uint64_t* keys = in.keys.data();
    if (step.probe_is_const) {
      for (uint32_t i = 0; i < n; ++i) keys[i] = step.probe_const;
    } else {
      const uint64_t* kcol =
          in.regs.data() + static_cast<size_t>(step.probe_reg) * kLanes;
      for (uint32_t i = 0; i < n; ++i) keys[i] = kcol[in.sel[i]];
    }
    for (uint32_t i = 0; i < n; ++i) {
      if (i + kBatchPrefetchDistance < n) {
        const uint64_t ahead = keys[i + kBatchPrefetchDistance];
        if (recursive) {
          table->PrefetchJoin(ahead);
        } else {
          ctx_->base_indexes->Prefetch(step.base_index_id, ahead);
        }
      }
      const uint32_t lane = in.sel[i];
      const uint64_t key = keys[i];
      if (recursive) {
        table->ForEachJoinMatch(key, [&](TupleRef r) { on_match(lane, r); });
      } else {
        ctx_->base_indexes->ForEachMatch(step.base_index_id, key,
                                         [&](TupleRef r) { on_match(lane, r); });
      }
    }
  } else {
    // B+-tree probes have no single home slot to prefetch, so the key
    // gather/prefetch staging would be pure overhead — read each key
    // straight out of its register bank.
    const uint64_t* kcol =
        step.probe_is_const
            ? nullptr
            : in.regs.data() + static_cast<size_t>(step.probe_reg) * kLanes;
    for (uint32_t i = 0; i < n; ++i) {
      const uint32_t lane = in.sel[i];
      const uint64_t key = kcol != nullptr ? kcol[lane] : step.probe_const;
      ctx_->base_indexes->ForEachMatch(step.base_index_id, key,
                                       [&](TupleRef r) { on_match(lane, r); });
    }
  }
  if (out.lanes > 0) FlushLevel(step_idx + 1, depth + 1);
}

void BatchPipelineRunner::RunFilter(const Step& step, Level& lv) {
  uint32_t out = 0;
  const uint32_t n = lv.sel_size;
  const uint64_t* bank = lv.regs.data();
  if (SimpleIntOperand(step.lhs) && SimpleIntOperand(step.rhs)) {
    // Branch-light selection loop for the dominant var/const integer
    // comparison: read the columns directly, keep the lane via arithmetic.
    const uint64_t* lcol =
        step.lhs.op == ExprOp::kVar
            ? bank + static_cast<size_t>(step.lhs.reg) * kLanes
            : nullptr;
    const uint64_t* rcol =
        step.rhs.op == ExprOp::kVar
            ? bank + static_cast<size_t>(step.rhs.reg) * kLanes
            : nullptr;
    const int64_t lconst = IntFromWord(step.lhs.const_word);
    const int64_t rconst = IntFromWord(step.rhs.const_word);
    for (uint32_t i = 0; i < n; ++i) {
      const uint32_t lane = lv.sel[i];
      const int64_t a = lcol != nullptr ? IntFromWord(lcol[lane]) : lconst;
      const int64_t b = rcol != nullptr ? IntFromWord(rcol[lane]) : rconst;
      lv.sel[out] = lane;
      out += CmpInt(step.cmp, a, b) ? 1 : 0;
    }
  } else {
    for (uint32_t i = 0; i < n; ++i) {
      const uint32_t lane = lv.sel[i];
      lv.sel[out] = lane;
      out += EvalCompareLane(step.cmp, step.lhs, step.rhs, bank, kLanes, lane)
                 ? 1
                 : 0;
    }
  }
  lv.sel_size = out;
}

void BatchPipelineRunner::RunBind(const Step& step, Level& lv) {
  const uint32_t n = lv.sel_size;
  uint64_t* bank = lv.regs.data();
  uint64_t* dst = bank + static_cast<size_t>(step.bind_reg) * kLanes;
  for (uint32_t i = 0; i < n; ++i) {
    const uint32_t lane = lv.sel[i];
    dst[lane] = EvalExprLane(step.lhs, bank, kLanes, lane);
  }
}

void BatchPipelineRunner::RunAntiJoin(const Step& step, size_t step_idx,
                                      Level& lv) {
  uint32_t out = 0;
  const uint32_t n = lv.sel_size;
  const uint64_t* bank = lv.regs.data();
  if (step.kind == StepKind::kAntiJoinBTree) {
    uint64_t* keys = lv.keys.data();
    if (step.probe_is_const) {
      for (uint32_t i = 0; i < n; ++i) keys[i] = step.probe_const;
    } else {
      const uint64_t* kcol =
          bank + static_cast<size_t>(step.probe_reg) * kLanes;
      for (uint32_t i = 0; i < n; ++i) keys[i] = kcol[lv.sel[i]];
    }
    for (uint32_t i = 0; i < n; ++i) {
      if (i + kBatchPrefetchDistance < n) {
        ctx_->base_indexes->Prefetch(step.base_index_id,
                                     keys[i + kBatchPrefetchDistance]);
      }
      const uint32_t lane = lv.sel[i];
      bool found = false;
      ctx_->base_indexes->ForEachMatch(
          step.base_index_id, keys[i], [&](TupleRef row) {
            found = StepChecksMatch(step, row, bank, kLanes, lane);
            return !found;  // Stop at the first witness.
          });
      lv.sel[out] = lane;
      out += found ? 0 : 1;
    }
  } else {
    const Relation* rel = ctx_->scan_rels[step_idx];
    DCD_CHECK(rel != nullptr);
    const uint64_t rows = rel->size();
    for (uint32_t i = 0; i < n; ++i) {
      const uint32_t lane = lv.sel[i];
      bool found = false;
      for (uint64_t r = 0; r < rows && !found; ++r) {
        found = StepChecksMatch(step, rel->Row(r), bank, kLanes, lane);
      }
      lv.sel[out] = lane;
      out += found ? 0 : 1;
    }
  }
  lv.sel_size = out;
}

void BatchPipelineRunner::EmitLevel(uint32_t depth) {
  const Level& lv = level_[depth];
  if (lv.sel_size == 0) return;
  const HeadSpec& head = rule_->head;
  const uint32_t wire_arity = static_cast<uint32_t>(head.wire_exprs.size());
  // Build wire tuples for the whole surviving batch before routing: one
  // dense staging area, one EmitBatch call. Column-at-a-time over the wire
  // expressions, with tight gather loops for the dominant plain-variable
  // and constant heads; only computed expressions pay the recursive
  // evaluator per lane.
  uint64_t* wires = wire_batch_.data();
  const uint64_t* bank = lv.regs.data();
  const uint32_t n = lv.sel_size;
  for (uint32_t c = 0; c < wire_arity; ++c) {
    const CompiledExpr& e = head.wire_exprs[c];
    uint64_t* w = wires + c;
    if (e.op == ExprOp::kVar) {
      const uint64_t* col = bank + static_cast<size_t>(e.reg) * kLanes;
      for (uint32_t i = 0; i < n; ++i) {
        w[static_cast<size_t>(i) * wire_arity] = col[lv.sel[i]];
      }
    } else if (e.op == ExprOp::kConst) {
      for (uint32_t i = 0; i < n; ++i) {
        w[static_cast<size_t>(i) * wire_arity] = e.const_word;
      }
    } else {
      for (uint32_t i = 0; i < n; ++i) {
        w[static_cast<size_t>(i) * wire_arity] =
            EvalExprLane(e, bank, kLanes, lv.sel[i]);
      }
    }
  }
  emit_.fn(emit_.ctx, head, wires, n, wire_arity);
}

}  // namespace dcdatalog
