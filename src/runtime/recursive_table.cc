#include "runtime/recursive_table.h"

#include <algorithm>
#include <bit>
#include <cmath>
#include <unordered_map>

#include "common/hash.h"
#include "common/hot_path.h"
#include "common/logging.h"

namespace dcdatalog {
namespace {

// Probe-slot prefetch distance for the pipelined kNone batch merge: far
// enough ahead that the prefetched line arrives from DRAM before the
// compare/insert pass reaches it (~8 merges cover a memory latency at the
// merge path's per-tuple cost), near enough that the line is still resident
// and a mid-batch rehash strands only a few in-flight prefetches.
constexpr size_t kPrefetchDistance = 8;

}  // namespace

RecursiveTable::RecursiveTable(const std::string& name, Schema stored_schema,
                               AggSpec spec, uint32_t partition_col,
                               bool needs_join_index,
                               const EngineOptions& options)
    : spec_(spec),
      partition_col_(partition_col),
      use_join_index_(needs_join_index),
      use_agg_index_(options.enable_aggregate_index),
      use_cache_(options.enable_existence_cache &&
                 (spec.func == AggFunc::kNone || spec.func == AggFunc::kMin ||
                  spec.func == AggFunc::kMax)),
      use_flat_(options.merge_index_backend == MergeIndexBackend::kFlat),
      sum_epsilon_(options.sum_epsilon),
      rows_(name, std::move(stored_schema)),
      exist_set_(&rows_) {
  if (use_cache_) {
    const uint64_t slots = std::bit_ceil<uint64_t>(
        std::max<uint32_t>(options.existence_cache_slots, 16));
    cache_slots_.assign(slots, 0);
    cache_mask_ = slots - 1;
  }
}

bool RecursiveTable::BetterValue(uint64_t candidate, uint64_t current) const {
  if (spec_.value_type == ColumnType::kDouble) {
    const double c = DoubleFromWord(candidate);
    const double v = DoubleFromWord(current);
    return spec_.func == AggFunc::kMin ? c < v : c > v;
  }
  const int64_t c = IntFromWord(candidate);
  const int64_t v = IntFromWord(current);
  return spec_.func == AggFunc::kMin ? c < v : c > v;
}

void RecursiveTable::ReserveHint(uint64_t expected_rows) {
  DCD_AFFINITY_GUARD_WRITE(writer_affinity_);
  if (expected_rows == 0) return;
  rows_.Reserve(expected_rows);
  if (use_join_index_) join_index_.Reserve(expected_rows);
  if (!use_flat_) return;
  switch (spec_.func) {
    case AggFunc::kNone:
      exist_set_.Reserve(expected_rows);
      break;
    case AggFunc::kMin:
    case AggFunc::kMax:
      flat_group_.Reserve(expected_rows);
      break;
    case AggFunc::kCount:
    case AggFunc::kSum:
      // Contributors dominate groups; the hint counts contributions.
      flat_group_.Reserve(expected_rows);
      flat_contrib_.Reserve(expected_rows);
      break;
  }
}

uint64_t* RecursiveTable::FindGroup(const U128& group) {
  return use_flat_ ? flat_group_.Find(group) : group_index_.FindFirst(group);
}

void RecursiveTable::InsertGroup(const U128& group, uint64_t row_id) {
  if (use_flat_) {
    bool inserted = false;
    flat_group_.FindOrInsert(group, row_id, &inserted);
  } else {
    DCD_COLD_CALL("B+-tree group index is the non-default ablation backend; flat is hot");
    group_index_.Insert(group, row_id);
  }
}

uint64_t RecursiveTable::AppendRow(const uint64_t* stored) {
  const uint64_t row_id =
      rows_.Append(TupleRef{stored, spec_.stored_arity});
  if (use_join_index_) {
    join_index_.Insert(stored[partition_col_], row_id);
  }
  return row_id;
}

void RecursiveTable::PushDelta(uint64_t row_id) {
  ++accepts_;
  if (batch_mode_) {
    batch_changed_rows_.push_back(row_id);
    return;
  }
  delta_.push_back(TupleBuf(rows_.Row(row_id)));
}

bool RecursiveTable::CacheCheckDuplicate(TupleRef tuple, uint64_t hash) const {
  if (!use_cache_) return false;
  const uint64_t slot = cache_slots_[hash & cache_mask_];
  if (slot == 0) return false;
  return rows_.Row(slot - 1) == tuple;
}

void RecursiveTable::CacheFill(uint64_t hash, uint64_t row_id) {
  if (!use_cache_) return;
  cache_slots_[hash & cache_mask_] = row_id + 1;
}

bool RecursiveTable::MergeNone(const uint64_t* wire, uint64_t hash) {
  const TupleRef tuple{wire, spec_.stored_arity};
  if (CacheCheckDuplicate(tuple, hash)) {
    ++cache_hits_;
    // Support counting must see every arrival, including ones the cache
    // short-circuits — the cache slot already names the row.
    if (maintain_counts_) {
      exist_set_.IncrementCount(cache_slots_[hash & cache_mask_] - 1);
    }
    return false;
  }
  if (use_flat_) {
    // Existence check via the flat (hash, row id) set: one linear probe,
    // full-tuple compare only on hash-equal slots.
    const uint64_t found = exist_set_.Find(hash, tuple);
    if (found != FlatTupleSet::kNotFound) {
      if (maintain_counts_) exist_set_.IncrementCount(found);
      CacheFill(hash, found);
      return false;
    }
    const uint64_t row_id = AppendRow(wire);
    exist_set_.Insert(hash, row_id);
    if (maintain_counts_) exist_set_.IncrementCount(row_id);
    CacheFill(hash, row_id);
    PushDelta(row_id);
    return true;
  }
  // Existence check via the B+-tree keyed (hash, row id); compare rows to
  // rule out hash collisions.
  for (auto it = group_index_.LowerBound(U128{hash, 0});
       !it.AtEnd() && it.key().hi == hash; ++it) {
    ++probe_cmps_;
    if (rows_.Row(it.value()) == tuple) {
      CacheFill(hash, it.value());
      return false;
    }
  }
  const uint64_t row_id = AppendRow(wire);
  DCD_COLD_CALL("B+-tree dedup index is the non-default ablation backend; flat is hot");
  group_index_.Insert(U128{hash, row_id}, row_id);
  CacheFill(hash, row_id);
  PushDelta(row_id);
  return true;
}

bool RecursiveTable::MergeMinMax(const uint64_t* wire) {
  const U128 group = GroupKey(wire);
  const uint32_t value_col = spec_.stored_arity - 1;
  const uint64_t candidate = wire[value_col];
  const uint64_t ghash = HashCombine(group.hi, group.lo);

  // Constant-time cache probe: the slot remembers the group's row, whose
  // value is always current because updates happen in place.
  if (use_cache_) {
    const uint64_t slot = cache_slots_[ghash & cache_mask_];
    if (slot != 0) {
      const uint64_t row_id = slot - 1;
      TupleRef row = rows_.Row(row_id);
      const bool group_match =
          row[0] == wire[0] &&
          (spec_.group_arity < 2 || row[1] == wire[1]);
      if (group_match) {
        ++cache_hits_;
        if (!BetterValue(candidate, row[value_col])) return false;
        rows_.SetWord(row_id, value_col, candidate);
        PushDelta(row_id);
        return true;
      }
    }
  }

  uint64_t* row_slot = FindGroup(group);
  if (row_slot == nullptr) {
    const uint64_t row_id = AppendRow(wire);
    InsertGroup(group, row_id);
    CacheFill(ghash, row_id);
    PushDelta(row_id);
    return true;
  }
  const uint64_t row_id = *row_slot;
  CacheFill(ghash, row_id);
  if (!BetterValue(candidate, rows_.Row(row_id)[value_col])) return false;
  rows_.SetWord(row_id, value_col, candidate);
  PushDelta(row_id);
  return true;
}

bool RecursiveTable::MergeCount(const uint64_t* wire) {
  // Wire: (group?, contributor); stored: (group?, count).
  const uint64_t group = spec_.group_arity > 0 ? wire[0] : 0;
  const uint64_t contributor = wire[spec_.group_arity];
  const U128 contrib_key{group, contributor};
  if (use_flat_) {
    bool inserted = false;
    flat_contrib_.FindOrInsert(contrib_key, 1, &inserted);
    if (!inserted) return false;  // Contributor already counted.
  } else {
    if (contrib_index_.FindFirst(contrib_key) != nullptr) return false;
    DCD_COLD_CALL("B+-tree contributor index is the non-default ablation backend");
    contrib_index_.Insert(contrib_key, 1);
  }

  const U128 gkey{group, 0};
  const uint32_t value_col = spec_.stored_arity - 1;
  uint64_t* row_slot = FindGroup(gkey);
  if (row_slot == nullptr) {
    uint64_t stored[kMaxArity];
    stored[0] = group;
    stored[value_col] = WordFromInt(1);
    const uint64_t row_id = AppendRow(stored);
    InsertGroup(gkey, row_id);
    PushDelta(row_id);
    return true;
  }
  const uint64_t row_id = *row_slot;
  const int64_t count = IntFromWord(rows_.Row(row_id)[value_col]) + 1;
  rows_.SetWord(row_id, value_col, WordFromInt(count));
  PushDelta(row_id);
  return true;
}

bool RecursiveTable::MergeSum(const uint64_t* wire) {
  // Wire: (group, contributor, value); stored: (group, sum). The
  // contributor index remembers each contributor's last value so a
  // revised contribution replaces rather than double-counts (§6.2.1).
  const uint64_t group = spec_.group_arity > 0 ? wire[0] : 0;
  const uint64_t contributor = wire[spec_.group_arity];
  const uint64_t value = wire[spec_.group_arity + 1];
  const U128 contrib_key{group, contributor};
  const bool is_double = spec_.value_type == ColumnType::kDouble;

  double delta_d = 0.0;
  int64_t delta_i = 0;
  uint64_t* last = nullptr;
  bool first_contribution;
  if (use_flat_) {
    // One probe both finds and (if absent) inserts the contributor.
    last = flat_contrib_.FindOrInsert(contrib_key, value, &first_contribution);
  } else {
    last = contrib_index_.FindFirst(contrib_key);
    first_contribution = last == nullptr;
    DCD_COLD_CALL("B+-tree contributor index is the non-default ablation backend");
    if (first_contribution) contrib_index_.Insert(contrib_key, value);
  }
  if (first_contribution) {
    if (is_double) {
      delta_d = DoubleFromWord(value);
    } else {
      delta_i = IntFromWord(value);
    }
  } else {
    if (is_double) {
      delta_d = DoubleFromWord(value) - DoubleFromWord(*last);
      if (std::fabs(delta_d) <= sum_epsilon_) return false;
    } else {
      delta_i = IntFromWord(value) - IntFromWord(*last);
      if (delta_i == 0) return false;
    }
    *last = value;
  }

  const U128 gkey{group, 0};
  const uint32_t value_col = spec_.stored_arity - 1;
  uint64_t* row_slot = FindGroup(gkey);
  if (row_slot == nullptr) {
    uint64_t stored[kMaxArity];
    stored[0] = group;
    stored[value_col] =
        is_double ? WordFromDouble(delta_d) : WordFromInt(delta_i);
    const uint64_t row_id = AppendRow(stored);
    InsertGroup(gkey, row_id);
    PushDelta(row_id);
    return true;
  }
  const uint64_t row_id = *row_slot;
  const uint64_t current = rows_.Row(row_id)[value_col];
  const uint64_t updated =
      is_double ? WordFromDouble(DoubleFromWord(current) + delta_d)
                : WordFromInt(IntFromWord(current) + delta_i);
  rows_.SetWord(row_id, value_col, updated);
  PushDelta(row_id);
  return true;
}

DCD_HOT_ROOT bool RecursiveTable::MergeWire(const uint64_t* wire) {
  DCD_AFFINITY_GUARD_WRITE(writer_affinity_);
  ++merges_;
  switch (spec_.func) {
    case AggFunc::kNone:
      return MergeNone(wire, TupleRef{wire, spec_.stored_arity}.Hash());
    case AggFunc::kMin:
    case AggFunc::kMax:
      return MergeMinMax(wire);
    case AggFunc::kCount:
      return MergeCount(wire);
    case AggFunc::kSum:
      return MergeSum(wire);
  }
  return false;
}

void RecursiveTable::EnableSupportCounts() {
  DCD_CHECK(spec_.func == AggFunc::kNone && use_flat_)
      << "support counts require a kNone flat-backend table";
  maintain_counts_ = true;
  exist_set_.EnableCounts();
}

uint64_t RecursiveTable::FindRowId(TupleRef tuple) const {
  const uint64_t hash = tuple.Hash();
  if (use_flat_) return exist_set_.Find(hash, tuple);
  for (auto it = group_index_.LowerBound(U128{hash, 0});
       !it.AtEnd() && it.key().hi == hash; ++it) {
    if (rows_.Row(it.value()) == tuple) return it.value();
  }
  return UINT64_MAX;
}

void RecursiveTable::CompactRemoveRows(
    const std::vector<uint64_t>& dead_row_ids) {
  DCD_AFFINITY_GUARD_WRITE(writer_affinity_);
  DCD_CHECK(spec_.func == AggFunc::kNone)
      << "compaction is only defined for kNone tables";
  if (dead_row_ids.empty()) return;
  const uint64_t n = rows_.size();

  // Rebuild row storage keeping survivor order; carry counts by new row id.
  Relation survivors(rows_.name(), rows_.schema());
  survivors.Reserve(n - dead_row_ids.size());
  std::vector<uint64_t> survivor_counts;
  if (maintain_counts_) survivor_counts.reserve(n - dead_row_ids.size());
  size_t d = 0;
  for (uint64_t r = 0; r < n; ++r) {
    if (d < dead_row_ids.size() && dead_row_ids[d] == r) {
      ++d;
      continue;
    }
    survivors.Append(rows_.Row(r));
    if (maintain_counts_) survivor_counts.push_back(exist_set_.CountOf(r));
  }
  rows_ = std::move(survivors);  // exist_set_ backs onto &rows_: unchanged.

  // Rebuild whichever existence index is active over the new row ids.
  exist_set_ = FlatTupleSet(&rows_);
  if (maintain_counts_) exist_set_.EnableCounts();
  const uint64_t survivors_n = rows_.size();
  if (use_flat_) {
    exist_set_.Reserve(survivors_n);
    for (uint64_t r = 0; r < survivors_n; ++r) {
      exist_set_.Insert(rows_.Row(r).Hash(), r);
      if (maintain_counts_) exist_set_.SetCount(r, survivor_counts[r]);
    }
  } else {
    group_index_ = BPlusTree<U128, uint64_t>();
    for (uint64_t r = 0; r < survivors_n; ++r) {
      group_index_.Insert(U128{rows_.Row(r).Hash(), r}, r);
    }
  }

  join_index_ = DynIndex();
  if (use_join_index_) {
    join_index_.Reserve(survivors_n);
    for (uint64_t r = 0; r < survivors_n; ++r) {
      join_index_.Insert(rows_.Row(r)[partition_col_], r);
    }
  }

  // Cached row ids and pending deltas are stale after renumbering.
  if (use_cache_) std::fill(cache_slots_.begin(), cache_slots_.end(), 0);
  delta_.clear();
  batch_changed_rows_.clear();
}

void RecursiveTable::SeedDeltaWithAllRows() {
  DCD_AFFINITY_GUARD_WRITE(writer_affinity_);
  const uint64_t n = rows_.size();
  delta_.reserve(delta_.size() + n);
  for (uint64_t r = 0; r < n; ++r) {
    delta_.push_back(TupleBuf(rows_.Row(r)));
  }
}

void RecursiveTable::ResetStats() {
  merges_ = 0;
  accepts_ = 0;
  cache_hits_ = 0;
  probe_cmps_ = 0;
  probe_cmps_base_ = exist_set_.probe_cmps() + flat_group_.probe_cmps() +
                     flat_contrib_.probe_cmps();
}

void RecursiveTable::MergeMinMaxBatchByScan(
    const std::vector<TupleBuf>& wires) {
  // Unoptimized baseline (Table 4 ablation, "w/o"): reduce the batch to its
  // best value per group, then find existing groups with one linear scan of
  // the stored rows instead of index lookups.
  struct PendingBest {
    uint64_t value;
    const uint64_t* wire;
    bool matched = false;
  };
  std::unordered_map<uint64_t, PendingBest> best;  // keyed by group hash
  best.reserve(wires.size());
  const uint32_t value_col = spec_.stored_arity - 1;
  for (const TupleBuf& w : wires) {
    ++merges_;
    const U128 g = GroupKey(w.v);
    const uint64_t gh = HashCombine(g.hi, g.lo);
    auto [it, inserted] = best.try_emplace(gh, PendingBest{w.v[value_col], w.v});
    if (!inserted && BetterValue(w.v[value_col], it->second.value)) {
      it->second.value = w.v[value_col];
      it->second.wire = w.v;
    }
  }
  // One pass over all stored rows: update groups present in the batch.
  const uint64_t n = rows_.size();
  for (uint64_t r = 0; r < n; ++r) {
    TupleRef row = rows_.Row(r);
    const U128 g = GroupKey(row.data);
    const uint64_t gh = HashCombine(g.hi, g.lo);
    auto it = best.find(gh);
    if (it == best.end()) continue;
    // Hash match — confirm the group columns really match.
    const uint64_t* wire = it->second.wire;
    if (row[0] != wire[0] ||
        (spec_.group_arity > 1 && row[1] != wire[1])) {
      continue;
    }
    it->second.matched = true;
    if (BetterValue(it->second.value, row[value_col])) {
      rows_.SetWord(r, value_col, it->second.value);
      PushDelta(r);
    }
  }
  // Remaining groups are new.
  for (auto& [gh, pending] : best) {
    if (pending.matched) continue;
    uint64_t stored[kMaxArity];
    for (uint32_t c = 0; c < spec_.stored_arity; ++c) {
      stored[c] = pending.wire[c];
    }
    stored[value_col] = pending.value;
    const uint64_t row_id = AppendRow(stored);
    // Keep whichever backend's group index is active coherent, so a later
    // indexed merge (or cache miss fallback) still finds this group.
    InsertGroup(GroupKey(stored), row_id);
    PushDelta(row_id);
  }
}

DCD_HOT_ROOT void RecursiveTable::MergeBatch(const std::vector<TupleBuf>& wires) {
  DCD_AFFINITY_GUARD_WRITE(writer_affinity_);
  if (wires.empty()) return;
  if (spec_.func == AggFunc::kNone) {
    // Plain dedup: every accept is a distinct new row, no amplification.
    // Pipelined probe: hash the whole batch up front, then prefetch each
    // tuple's home slot kPrefetchDistance merges ahead of the
    // compare/insert pass, so the probe's dependent DRAM loads overlap
    // instead of serializing (hash-join probe pipelining). A mid-batch
    // rehash only strands the few in-flight prefetches — later ones use
    // the new mask automatically.
    const size_t n = wires.size();
    batch_hashes_.resize(n);
    for (size_t i = 0; i < n; ++i) {
      batch_hashes_[i] = TupleRef{wires[i].v, spec_.stored_arity}.Hash();
    }
    for (size_t i = 0; i < n; ++i) {
      if (use_flat_ && i + kPrefetchDistance < n) {
        exist_set_.Prefetch(batch_hashes_[i + kPrefetchDistance]);
      }
      ++merges_;
      MergeNone(wires[i].v, batch_hashes_[i]);
    }
    return;
  }
  // Aggregates: collect changed rows across the batch and emit each into
  // the delta exactly once, carrying its final post-batch value.
  batch_mode_ = true;
  batch_changed_rows_.clear();
  if (!use_agg_index_ &&
      (spec_.func == AggFunc::kMin || spec_.func == AggFunc::kMax)) {
    MergeMinMaxBatchByScan(wires);
  } else {
    for (const TupleBuf& w : wires) MergeWire(w.v);
  }
  batch_mode_ = false;
  std::sort(batch_changed_rows_.begin(), batch_changed_rows_.end());
  batch_changed_rows_.erase(
      std::unique(batch_changed_rows_.begin(), batch_changed_rows_.end()),
      batch_changed_rows_.end());
  for (uint64_t row_id : batch_changed_rows_) {
    delta_.push_back(TupleBuf(rows_.Row(row_id)));
  }
}

}  // namespace dcdatalog
