#ifndef DCDATALOG_STORAGE_BTREE_H_
#define DCDATALOG_STORAGE_BTREE_H_

#include <algorithm>
#include <cstdint>
#include <functional>
#include <vector>

#include "common/logging.h"

namespace dcdatalog {

/// 128-bit composite key (two tuple words, lexicographic order). Used to
/// index recursive tables on (group-by key, secondary) pairs, e.g. the
/// ⟨X, Y⟩ contribution index PageRank needs (paper §6.2.1).
struct U128 {
  uint64_t hi = 0;
  uint64_t lo = 0;

  friend bool operator==(const U128& a, const U128& b) {
    return a.hi == b.hi && a.lo == b.lo;
  }
  friend bool operator<(const U128& a, const U128& b) {
    return a.hi != b.hi ? a.hi < b.hi : a.lo < b.lo;
  }
};

/// In-memory B+-tree with multimap semantics (duplicate keys permitted,
/// clustered together). Supports insert, point lookup, in-place value
/// update and ordered range scans; deletion is intentionally absent because
/// semi-naive evaluation only appends or overwrites.
///
/// This is the index the storage layer builds on base-relation join keys and
/// on recursive tables (paper §3, §5.2.1, §6.2.1). Not internally
/// synchronized: each worker owns the indexes of its partition.
template <typename Key, typename Value, int kLeafCap = 64, int kInnerCap = 64>
class BPlusTree {
  struct Leaf;
  struct Inner;

  /// Tagged node pointer. Leaves and inner nodes are separate types; the
  /// tree height tells us which levels hold which.
  union NodePtr {
    Leaf* leaf;
    Inner* inner;
  };

  struct Leaf {
    int count = 0;
    Leaf* next = nullptr;
    Key keys[kLeafCap];
    Value values[kLeafCap];
  };

  struct Inner {
    int count = 0;  // Number of keys; children = count + 1.
    Key keys[kInnerCap];
    NodePtr children[kInnerCap + 1];
  };

 public:
  BPlusTree() {
    root_.leaf = new Leaf();
    height_ = 0;  // Height 0: the root is a leaf.
    first_leaf_ = root_.leaf;
  }

  ~BPlusTree() { Destroy(root_, height_); }

  BPlusTree(const BPlusTree&) = delete;
  BPlusTree& operator=(const BPlusTree&) = delete;

  BPlusTree(BPlusTree&& other) noexcept
      : root_(other.root_),
        first_leaf_(other.first_leaf_),
        height_(other.height_),
        size_(other.size_) {
    other.root_.leaf = new Leaf();
    other.first_leaf_ = other.root_.leaf;
    other.height_ = 0;
    other.size_ = 0;
  }

  BPlusTree& operator=(BPlusTree&& other) noexcept {
    if (this == &other) return *this;
    Destroy(root_, height_);
    root_ = other.root_;
    first_leaf_ = other.first_leaf_;
    height_ = other.height_;
    size_ = other.size_;
    other.root_.leaf = new Leaf();
    other.first_leaf_ = other.root_.leaf;
    other.height_ = 0;
    other.size_ = 0;
    return *this;
  }

  uint64_t size() const { return size_; }
  bool empty() const { return size_ == 0; }
  int height() const { return height_; }

  /// Forward iterator over (key, value) entries in key order.
  class Iterator {
   public:
    Iterator() = default;
    Iterator(const Leaf* leaf, int idx) : leaf_(leaf), idx_(idx) {
      SkipEmpty();
    }

    bool AtEnd() const { return leaf_ == nullptr; }
    const Key& key() const { return leaf_->keys[idx_]; }
    const Value& value() const { return leaf_->values[idx_]; }

    Iterator& operator++() {
      ++idx_;
      SkipEmpty();
      return *this;
    }

   private:
    void SkipEmpty() {
      while (leaf_ != nullptr && idx_ >= leaf_->count) {
        leaf_ = leaf_->next;
        idx_ = 0;
      }
    }

    const Leaf* leaf_ = nullptr;
    int idx_ = 0;
  };

  /// Inserts (key, value); duplicates of `key` are kept, the new entry is
  /// placed after existing equal keys.
  void Insert(const Key& key, const Value& value) {
    SplitResult split = InsertRec(root_, height_, key, value);
    if (split.happened) {
      auto* new_root = new Inner();
      new_root->count = 1;
      new_root->keys[0] = split.sep_key;
      new_root->children[0] = root_;
      new_root->children[1] = split.right;
      root_.inner = new_root;
      ++height_;
    }
    ++size_;
  }

  /// Iterator positioned at the first entry with key >= `key`.
  ///
  /// Duplicates may straddle a separator, so the descent uses lower_bound at
  /// inner nodes (go as far left as an equal separator allows); if that
  /// lands one leaf early, the leaf chain carries the scan forward.
  Iterator LowerBound(const Key& key) const {
    NodePtr node = root_;
    for (int level = height_; level > 0; --level) {
      const Inner* inner = node.inner;
      int i = static_cast<int>(
          std::lower_bound(inner->keys, inner->keys + inner->count, key) -
          inner->keys);
      node = inner->children[i];
    }
    const Leaf* leaf = node.leaf;
    int i = static_cast<int>(
        std::lower_bound(leaf->keys, leaf->keys + leaf->count, key) -
        leaf->keys);
    return Iterator(leaf, i);
  }

  Iterator Begin() const { return Iterator(first_leaf_, 0); }

  /// Pointer to the value of the first entry equal to `key`, or nullptr.
  /// The caller may overwrite the value in place (aggregate merge path).
  Value* FindFirst(const Key& key) {
    Iterator it = LowerBound(key);
    if (it.AtEnd() || key < it.key()) return nullptr;
    // The tree owns its nodes and this method is non-const, so granting
    // mutable access to the located value is sound.
    return const_cast<Value*>(&it.value());
  }

  bool Contains(const Key& key) const {
    Iterator it = LowerBound(key);
    return !it.AtEnd() && !(key < it.key());
  }

  /// Calls fn(value) for every entry with key == `key`. fn returns false to
  /// stop early. Returns number of entries visited.
  template <typename Fn>
  uint64_t ForEachEqual(const Key& key, Fn&& fn) const {
    uint64_t n = 0;
    for (Iterator it = LowerBound(key); !it.AtEnd(); ++it) {
      if (key < it.key()) break;
      ++n;
      if (!fn(it.value())) break;
    }
    return n;
  }

 private:
  struct SplitResult {
    bool happened = false;
    Key sep_key{};
    NodePtr right{};
  };

  SplitResult InsertRec(NodePtr node, int level, const Key& key,
                        const Value& value) {
    if (level == 0) return InsertLeaf(node.leaf, key, value);

    Inner* inner = node.inner;
    int i = static_cast<int>(
        std::upper_bound(inner->keys, inner->keys + inner->count, key) -
        inner->keys);
    SplitResult child_split =
        InsertRec(inner->children[i], level - 1, key, value);
    if (!child_split.happened) return {};

    // Insert separator key + right child at position i.
    if (inner->count < kInnerCap) {
      std::move_backward(inner->keys + i, inner->keys + inner->count,
                         inner->keys + inner->count + 1);
      std::move_backward(inner->children + i + 1,
                         inner->children + inner->count + 1,
                         inner->children + inner->count + 2);
      inner->keys[i] = child_split.sep_key;
      inner->children[i + 1] = child_split.right;
      ++inner->count;
      return {};
    }

    // Split the inner node. Assemble the kInnerCap+1 keys logically, push
    // the median up.
    Key tmp_keys[kInnerCap + 1];
    NodePtr tmp_children[kInnerCap + 2];
    std::copy(inner->keys, inner->keys + i, tmp_keys);
    tmp_keys[i] = child_split.sep_key;
    std::copy(inner->keys + i, inner->keys + inner->count, tmp_keys + i + 1);
    std::copy(inner->children, inner->children + i + 1, tmp_children);
    tmp_children[i + 1] = child_split.right;
    std::copy(inner->children + i + 1, inner->children + inner->count + 1,
              tmp_children + i + 2);

    const int total_keys = kInnerCap + 1;
    const int mid = total_keys / 2;  // Key at mid moves up.
    auto* right = new Inner();

    inner->count = mid;
    std::copy(tmp_keys, tmp_keys + mid, inner->keys);
    std::copy(tmp_children, tmp_children + mid + 1, inner->children);

    right->count = total_keys - mid - 1;
    std::copy(tmp_keys + mid + 1, tmp_keys + total_keys, right->keys);
    std::copy(tmp_children + mid + 1, tmp_children + total_keys + 1,
              right->children);

    SplitResult out;
    out.happened = true;
    out.sep_key = tmp_keys[mid];
    out.right.inner = right;
    return out;
  }

  SplitResult InsertLeaf(Leaf* leaf, const Key& key, const Value& value) {
    // upper_bound: new duplicates land after existing equal keys.
    int i = static_cast<int>(
        std::upper_bound(leaf->keys, leaf->keys + leaf->count, key) -
        leaf->keys);
    if (leaf->count < kLeafCap) {
      std::move_backward(leaf->keys + i, leaf->keys + leaf->count,
                         leaf->keys + leaf->count + 1);
      std::move_backward(leaf->values + i, leaf->values + leaf->count,
                         leaf->values + leaf->count + 1);
      leaf->keys[i] = key;
      leaf->values[i] = value;
      ++leaf->count;
      return {};
    }

    // Split: left keeps the lower half, right gets the upper half plus the
    // new entry wherever it belongs.
    auto* right = new Leaf();
    const int mid = (kLeafCap + 1) / 2;
    right->count = leaf->count - mid;
    std::copy(leaf->keys + mid, leaf->keys + leaf->count, right->keys);
    std::copy(leaf->values + mid, leaf->values + leaf->count, right->values);
    leaf->count = mid;
    right->next = leaf->next;
    leaf->next = right;

    // Re-insert the pending entry: strictly-smaller keys go left; equal keys
    // go right, consistent with the upper_bound duplicate placement. Neither
    // leaf can split again — both counts just shrank below capacity.
    if (key < right->keys[0]) {
      InsertLeaf(leaf, key, value);
    } else {
      InsertLeaf(right, key, value);
    }

    SplitResult out;
    out.happened = true;
    out.sep_key = right->keys[0];
    out.right.leaf = right;
    return out;
  }

  void Destroy(NodePtr node, int level) {
    if (level == 0) {
      delete node.leaf;
      return;
    }
    Inner* inner = node.inner;
    for (int i = 0; i <= inner->count; ++i) {
      Destroy(inner->children[i], level - 1);
    }
    delete inner;
  }

  NodePtr root_;
  Leaf* first_leaf_;
  int height_ = 0;
  uint64_t size_ = 0;
};

}  // namespace dcdatalog

#endif  // DCDATALOG_STORAGE_BTREE_H_
