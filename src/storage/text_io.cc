#include "storage/text_io.h"

#include <cstdlib>
#include <fstream>
#include <sstream>
#include <vector>

namespace dcdatalog {

Result<Schema> ParseSchemaSpec(const std::string& spec) {
  std::vector<Column> cols;
  for (size_t i = 0; i < spec.size(); ++i) {
    ColumnType type;
    switch (spec[i]) {
      case 'i':
        type = ColumnType::kInt;
        break;
      case 'd':
        type = ColumnType::kDouble;
        break;
      case 's':
        type = ColumnType::kString;
        break;
      default:
        return Status::InvalidArgument(
            std::string("bad schema spec character '") + spec[i] +
            "' (use i, d, s)");
    }
    cols.push_back(Column{"c" + std::to_string(i), type});
  }
  if (cols.empty()) {
    return Status::InvalidArgument("empty schema spec");
  }
  return Schema(std::move(cols));
}

Result<Relation> LoadRelationFile(const std::string& name,
                                  const Schema& schema,
                                  const std::string& path, StringDict* dict) {
  std::ifstream in(path);
  if (!in) return Status::NotFound("cannot open fact file: " + path);
  Relation rel(name, schema);
  std::string line;
  uint64_t line_no = 0;
  std::vector<uint64_t> row(schema.arity());
  while (std::getline(in, line)) {
    ++line_no;
    if (line.empty() || line[0] == '#' || line[0] == '%') continue;
    std::istringstream ls(line);
    std::string token;
    for (size_t c = 0; c < schema.arity(); ++c) {
      if (!(ls >> token)) {
        return Status::ParseError("row too short at " + path + ":" +
                                  std::to_string(line_no));
      }
      switch (schema.type(c)) {
        case ColumnType::kInt: {
          char* end = nullptr;
          const int64_t v = std::strtoll(token.c_str(), &end, 10);
          if (end == token.c_str() || *end != '\0') {
            return Status::ParseError("bad int '" + token + "' at " + path +
                                      ":" + std::to_string(line_no));
          }
          row[c] = WordFromInt(v);
          break;
        }
        case ColumnType::kDouble: {
          char* end = nullptr;
          const double v = std::strtod(token.c_str(), &end);
          if (end == token.c_str() || *end != '\0') {
            return Status::ParseError("bad double '" + token + "' at " +
                                      path + ":" + std::to_string(line_no));
          }
          row[c] = WordFromDouble(v);
          break;
        }
        case ColumnType::kString:
          row[c] = dict->Intern(token);
          break;
      }
    }
    rel.Append(TupleRef{row.data(), static_cast<uint32_t>(row.size())});
  }
  return rel;
}

Status WriteRelationFile(const Relation& relation, const std::string& path,
                         const StringDict* dict) {
  std::ofstream out(path);
  if (!out) return Status::RuntimeError("cannot write: " + path);
  const Schema& schema = relation.schema();
  for (uint64_t r = 0; r < relation.size(); ++r) {
    TupleRef row = relation.Row(r);
    for (uint32_t c = 0; c < relation.arity(); ++c) {
      if (c > 0) out << '\t';
      switch (schema.type(c)) {
        case ColumnType::kInt:
          out << IntFromWord(row[c]);
          break;
        case ColumnType::kDouble:
          out << DoubleFromWord(row[c]);
          break;
        case ColumnType::kString:
          if (dict != nullptr) {
            out << dict->Get(row[c]);
          } else {
            out << row[c];
          }
          break;
      }
    }
    out << '\n';
  }
  return Status::OK();
}

}  // namespace dcdatalog
