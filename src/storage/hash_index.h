#ifndef DCDATALOG_STORAGE_HASH_INDEX_H_
#define DCDATALOG_STORAGE_HASH_INDEX_H_

#include <cstdint>
#include <vector>

#include "common/hash.h"
#include "storage/relation.h"

namespace dcdatalog {

/// Immutable-after-build hash index mapping a 64-bit join key to the row ids
/// of a relation that carry it. Built once per base-relation partition
/// before evaluation starts (Algorithm 1 line 3) and then probed read-only
/// by the join operators, so no synchronization is needed.
///
/// Layout: open chaining over two flat arrays (bucket heads + next links),
/// which keeps the build a single pass and probes pointer-free.
class HashIndex {
 public:
  HashIndex() = default;

  /// Builds the index over `relation`, keyed by column `key_col`.
  void Build(const Relation& relation, uint32_t key_col);

  /// Builds over explicit (key, row_id) pairs.
  void BuildFromPairs(const std::vector<std::pair<uint64_t, uint64_t>>& pairs);

  /// Appends rows [from_row, relation.size()) of `relation` to an already
  /// built index — the incremental-maintenance path syncing a base index
  /// after an EDB insert batch, instead of rebuilding the whole index. When
  /// the entry count outgrows the bucket array the chains are rebuilt once
  /// (same load factor as Build). Probes remain single-threaded-build /
  /// multi-threaded-read: callers must Append before workers start probing.
  void Append(const Relation& relation, uint32_t key_col, uint64_t from_row);

  bool built() const { return !buckets_.empty() || entries_empty_; }
  uint64_t size() const { return keys_.size(); }

  /// Prefetches the bucket head for `key` — the batch pipeline issues this
  /// several lanes ahead of the probe pass so the dependent DRAM load of the
  /// chain head overlaps earlier probes instead of serializing.
  void Prefetch(uint64_t key) const {
    if (buckets_.empty()) return;
    __builtin_prefetch(&buckets_[HashMix64(key) & bucket_mask_], 0 /*read*/,
                       3 /*high locality*/);
  }

  /// Calls fn(row_id) for every row whose key equals `key`. fn returns false
  /// to stop early. Returns the number of matches visited.
  template <typename Fn>
  uint64_t ForEachMatch(uint64_t key, Fn&& fn) const {
    if (buckets_.empty()) return 0;
    uint64_t n = 0;
    uint64_t b = HashMix64(key) & bucket_mask_;
    for (uint32_t e = buckets_[b]; e != kNil; e = next_[e]) {
      if (keys_[e] == key) {
        ++n;
        if (!fn(row_ids_[e])) break;
      }
    }
    return n;
  }

  bool Contains(uint64_t key) const {
    bool found = false;
    ForEachMatch(key, [&found](uint64_t) {
      found = true;
      return false;
    });
    return found;
  }

 private:
  static constexpr uint32_t kNil = UINT32_MAX;

  void Finish();

  bool entries_empty_ = false;
  uint64_t bucket_mask_ = 0;
  std::vector<uint32_t> buckets_;  // head entry index per bucket
  std::vector<uint32_t> next_;     // chain links, parallel to keys_
  std::vector<uint64_t> keys_;
  std::vector<uint64_t> row_ids_;
};

}  // namespace dcdatalog

#endif  // DCDATALOG_STORAGE_HASH_INDEX_H_
