#include "storage/updates.h"

#include <algorithm>
#include <cstdlib>
#include <fstream>
#include <map>
#include <sstream>

namespace dcdatalog {
namespace {

bool IsSeparator(const std::string& line) {
  // "---" optionally followed by whitespace.
  if (line.size() < 3 || line.compare(0, 3, "---") != 0) return false;
  for (size_t i = 3; i < line.size(); ++i) {
    if (line[i] != ' ' && line[i] != '\t' && line[i] != '\r') return false;
  }
  return true;
}

}  // namespace

Result<UpdateScript> ParseUpdateScript(const std::string& text) {
  UpdateScript script;
  script.batches.emplace_back();
  bool saw_separator = false;
  std::istringstream in(text);
  std::string line;
  uint64_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    if (!line.empty() && line.back() == '\r') line.pop_back();
    if (line.empty() || line[0] == '#' || line[0] == '%') continue;
    if (IsSeparator(line)) {
      saw_separator = true;
      script.batches.emplace_back();
      continue;
    }
    std::istringstream ls(line);
    std::string sign, relation;
    ls >> sign >> relation;
    if ((sign != "+" && sign != "-") || relation.empty()) {
      return Status::ParseError("update script line " +
                                std::to_string(line_no) +
                                ": expected '+ rel v...' or '- rel v...'");
    }
    UpdateOp op;
    op.is_insert = sign == "+";
    op.relation = relation;
    std::string token;
    while (ls >> token) op.values.push_back(std::move(token));
    script.batches.back().ops.push_back(std::move(op));
  }
  // No separators and no ops at all: an empty script, not one empty batch.
  if (!saw_separator && script.batches.size() == 1 &&
      script.batches[0].ops.empty()) {
    script.batches.clear();
  }
  return script;
}

Result<UpdateScript> LoadUpdateScriptFile(const std::string& path) {
  std::ifstream in(path);
  if (!in) return Status::NotFound("cannot open update script: " + path);
  std::ostringstream buf;
  buf << in.rdbuf();
  return ParseUpdateScript(buf.str());
}

std::string SerializeUpdateScript(const UpdateScript& script) {
  std::ostringstream os;
  for (size_t b = 0; b < script.batches.size(); ++b) {
    if (b > 0) os << "---\n";
    for (const UpdateOp& op : script.batches[b].ops) {
      os << (op.is_insert ? "+" : "-") << ' ' << op.relation;
      for (const std::string& v : op.values) os << ' ' << v;
      os << '\n';
    }
  }
  return os.str();
}

Result<ResolvedUpdateBatch> ResolveUpdateBatch(const UpdateBatch& batch,
                                               const Catalog& catalog,
                                               StringDict* dict) {
  ResolvedUpdateBatch resolved;
  resolved.ops.reserve(batch.ops.size());
  for (const UpdateOp& op : batch.ops) {
    const Relation* rel = catalog.Find(op.relation);
    if (rel == nullptr) {
      return Status::NotFound("update references unknown relation '" +
                              op.relation + "'");
    }
    const Schema& schema = rel->schema();
    if (op.values.size() != schema.arity()) {
      return Status::InvalidArgument(
          "update tuple for '" + op.relation + "' has " +
          std::to_string(op.values.size()) + " values, relation has arity " +
          std::to_string(schema.arity()));
    }
    ResolvedUpdateOp out;
    out.is_insert = op.is_insert;
    out.relation = op.relation;
    out.row.resize(schema.arity());
    for (size_t c = 0; c < schema.arity(); ++c) {
      const std::string& token = op.values[c];
      switch (schema.type(c)) {
        case ColumnType::kInt: {
          char* end = nullptr;
          const int64_t v = std::strtoll(token.c_str(), &end, 10);
          if (end == token.c_str() || *end != '\0') {
            return Status::ParseError("bad int '" + token + "' in update for '" +
                                      op.relation + "'");
          }
          out.row[c] = WordFromInt(v);
          break;
        }
        case ColumnType::kDouble: {
          char* end = nullptr;
          const double v = std::strtod(token.c_str(), &end);
          if (end == token.c_str() || *end != '\0') {
            return Status::ParseError("bad double '" + token +
                                      "' in update for '" + op.relation + "'");
          }
          out.row[c] = WordFromDouble(v);
          break;
        }
        case ColumnType::kString:
          out.row[c] = dict->Intern(token);
          break;
      }
    }
    resolved.ops.push_back(std::move(out));
  }
  return resolved;
}

Result<std::vector<RelationDelta>> NetOutBatch(const ResolvedUpdateBatch& batch,
                                               const Catalog& catalog) {
  // Per relation: the stored multiplicity of every touched tuple, and its
  // net presence after the ops seen so far (0 or 1 — set semantics).
  struct RelState {
    std::map<std::vector<uint64_t>, uint64_t> base_count;  // Touched only.
    std::map<std::vector<uint64_t>, bool> present;
    std::vector<std::vector<uint64_t>> touch_order;
  };
  std::map<std::string, RelState> states;

  for (const ResolvedUpdateOp& op : batch.ops) {
    RelState& state = states[op.relation];
    auto it = state.present.find(op.row);
    if (it == state.present.end()) {
      // First touch: count the stored copies once.
      const Relation* rel = catalog.Find(op.relation);
      if (rel == nullptr) {
        return Status::NotFound("update references unknown relation '" +
                                op.relation + "'");
      }
      uint64_t count = 0;
      for (uint64_t r = 0; r < rel->size(); ++r) {
        TupleRef row = rel->Row(r);
        if (std::equal(op.row.begin(), op.row.end(), row.data)) ++count;
      }
      state.base_count[op.row] = count;
      it = state.present.emplace(op.row, count > 0).first;
      state.touch_order.push_back(op.row);
    }
    it->second = op.is_insert;
  }

  std::vector<RelationDelta> deltas;
  for (auto& [name, state] : states) {
    RelationDelta delta;
    delta.relation = name;
    for (const std::vector<uint64_t>& row : state.touch_order) {
      const uint64_t base = state.base_count[row];
      const bool present = state.present[row];
      if (present && base == 0) {
        delta.added.push_back(row);
      } else if (!present && base > 0) {
        // One removal entry per stored copy: each copy was driven through
        // the rules during evaluation and contributed its own derivations.
        for (uint64_t k = 0; k < base; ++k) delta.removed.push_back(row);
      }
    }
    if (!delta.added.empty() || !delta.removed.empty()) {
      deltas.push_back(std::move(delta));
    }
  }
  return deltas;
}

Status ApplyDeltasToCatalog(const std::vector<RelationDelta>& deltas,
                            Catalog* catalog) {
  for (const RelationDelta& delta : deltas) {
    Relation* rel = catalog->Find(delta.relation);
    if (rel == nullptr) {
      return Status::NotFound("update references unknown relation '" +
                              delta.relation + "'");
    }
    if (!delta.removed.empty()) {
      // Rebuild the row store in place; the Relation object (and therefore
      // every cached Relation*) keeps its address.
      std::map<std::vector<uint64_t>, uint64_t> to_remove;
      for (const auto& row : delta.removed) ++to_remove[row];
      std::vector<std::vector<uint64_t>> survivors;
      std::vector<uint64_t> key(rel->arity());
      for (uint64_t r = 0; r < rel->size(); ++r) {
        TupleRef row = rel->Row(r);
        key.assign(row.data, row.data + row.arity);
        auto it = to_remove.find(key);
        if (it != to_remove.end() && it->second > 0) {
          --it->second;
          continue;
        }
        survivors.push_back(key);
      }
      rel->Clear();
      for (const auto& row : survivors) {
        rel->Append(TupleRef{row.data(), static_cast<uint32_t>(row.size())});
      }
    }
    for (const auto& row : delta.added) {
      rel->Append(TupleRef{row.data(), static_cast<uint32_t>(row.size())});
    }
  }
  return Status::OK();
}

}  // namespace dcdatalog
