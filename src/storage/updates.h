#ifndef DCDATALOG_STORAGE_UPDATES_H_
#define DCDATALOG_STORAGE_UPDATES_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "common/string_dict.h"
#include "storage/catalog.h"

namespace dcdatalog {

/// Streaming EDB update scripts: a sequence of batches, each a list of
/// insert/delete operations against base relations. Text format, one op per
/// line:
///
///   # comment (also %)
///   + arc 1 2        insert tuple (1, 2) into relation arc
///   - arc 2 3        delete tuple (2, 3) from relation arc
///   ---              batch separator
///
/// Batches between separators may be empty. Values are parsed against the
/// target relation's schema at resolution time (ints, doubles, or interned
/// strings), mirroring fact-file loading.
struct UpdateOp {
  bool is_insert = true;
  std::string relation;
  std::vector<std::string> values;  // Unresolved tokens, one per column.
};

struct UpdateBatch {
  std::vector<UpdateOp> ops;
};

struct UpdateScript {
  std::vector<UpdateBatch> batches;
};

/// Parses the text format above. A script with no ops and no separators is
/// empty (zero batches); separators delimit batches, so "---" alone yields
/// two empty batches.
Result<UpdateScript> ParseUpdateScript(const std::string& text);

Result<UpdateScript> LoadUpdateScriptFile(const std::string& path);

/// Round-trips through ParseUpdateScript.
std::string SerializeUpdateScript(const UpdateScript& script);

/// An op with its value row resolved to raw tuple words.
struct ResolvedUpdateOp {
  bool is_insert = true;
  std::string relation;
  std::vector<uint64_t> row;
};

struct ResolvedUpdateBatch {
  std::vector<ResolvedUpdateOp> ops;
};

/// Resolves one batch's tokens against the target relations' schemas.
/// Errors on unknown relations, arity mismatches, and malformed numeric
/// tokens. String columns are interned into `dict`.
Result<ResolvedUpdateBatch> ResolveUpdateBatch(const UpdateBatch& batch,
                                               const Catalog& catalog,
                                               StringDict* dict);

/// The net effect of one batch on one relation: rows to append and stored
/// copies to remove. `removed` carries one entry per stored copy — a tuple
/// present k times in the relation appears k times, because each stored
/// copy contributed its own derivations (support counts see every arrival).
struct RelationDelta {
  std::string relation;
  std::vector<std::vector<uint64_t>> added;
  std::vector<std::vector<uint64_t>> removed;
};

/// Nets out a batch against the catalog's current contents under set
/// semantics in op order: inserting an already-present tuple is a no-op,
/// deleting an absent tuple is a no-op, and insert-then-delete of the same
/// tuple within the batch cancels. Returns one delta per touched relation
/// (relations whose net effect is empty are omitted), sorted by name. Does
/// not modify the catalog.
Result<std::vector<RelationDelta>> NetOutBatch(const ResolvedUpdateBatch& batch,
                                               const Catalog& catalog);

/// Applies deltas to the catalog in place: removals rebuild the relation's
/// row store (preserving the Relation object's address, so cached pointers
/// stay valid), additions append. Used identically by the incremental
/// engine and by oracle recomputation, so both sides see the same EDB.
Status ApplyDeltasToCatalog(const std::vector<RelationDelta>& deltas,
                            Catalog* catalog);

}  // namespace dcdatalog

#endif  // DCDATALOG_STORAGE_UPDATES_H_
