#include "storage/catalog.h"

#include <algorithm>

namespace dcdatalog {

Result<Relation*> Catalog::Create(const std::string& name, Schema schema) {
  MutexLock lock(&mu_);
  if (relations_.count(name) > 0) {
    return Status::AlreadyExists("relation already exists: " + name);
  }
  auto rel = std::make_shared<Relation>(name, std::move(schema));
  Relation* ptr = rel.get();
  relations_.emplace(name, std::move(rel));
  return ptr;
}

Relation* Catalog::Put(Relation relation) {
  std::string name = relation.name();
  auto rel = std::make_shared<Relation>(std::move(relation));
  Relation* ptr = rel.get();
  MutexLock lock(&mu_);
  relations_[name] = std::move(rel);
  return ptr;
}

void Catalog::PutShared(std::shared_ptr<Relation> relation) {
  std::string name = relation->name();
  MutexLock lock(&mu_);
  relations_[name] = std::move(relation);
}

Relation* Catalog::Find(const std::string& name) {
  MutexLock lock(&mu_);
  auto it = relations_.find(name);
  return it == relations_.end() ? nullptr : it->second.get();
}

const Relation* Catalog::Find(const std::string& name) const {
  MutexLock lock(&mu_);
  auto it = relations_.find(name);
  return it == relations_.end() ? nullptr : it->second.get();
}

std::shared_ptr<const Relation> Catalog::FindShared(
    const std::string& name) const {
  MutexLock lock(&mu_);
  auto it = relations_.find(name);
  return it == relations_.end() ? nullptr : it->second;
}

std::vector<std::string> Catalog::Names() const {
  MutexLock lock(&mu_);
  std::vector<std::string> names;
  names.reserve(relations_.size());
  for (const auto& [name, rel] : relations_) names.push_back(name);
  return names;
}

std::vector<std::pair<std::string, std::shared_ptr<const Relation>>>
Catalog::Entries() const {
  std::vector<std::pair<std::string, std::shared_ptr<const Relation>>> out;
  {
    MutexLock lock(&mu_);
    out.reserve(relations_.size());
    for (const auto& [name, rel] : relations_) out.emplace_back(name, rel);
  }
  std::sort(out.begin(), out.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  return out;
}

}  // namespace dcdatalog
