#ifndef DCDATALOG_STORAGE_DYN_INDEX_H_
#define DCDATALOG_STORAGE_DYN_INDEX_H_

#include <algorithm>
#include <bit>
#include <cstdint>
#include <vector>

#include "common/hash.h"

namespace dcdatalog {

/// Growable hash multimap from 64-bit key to row ids, supporting
/// incremental insertion — the join index a recursive-table replica
/// maintains on its partition column so non-linear rules can probe it
/// (paper §4.3). Chained over flat arrays like HashIndex, but rehashes as
/// it grows. Not internally synchronized: one per worker replica.
class DynIndex {
 public:
  DynIndex() {
    buckets_.assign(kInitialBuckets, kNil);
    mask_ = kInitialBuckets - 1;
  }

  uint64_t size() const { return keys_.size(); }
  uint64_t bucket_count() const { return buckets_.size(); }

  /// Presizes for ~`expected` entries (EDB cardinality hint): the bucket
  /// array grows to the next power of two ≥ expected and the entry arrays
  /// reserve, so incremental insertion up to the hint never pays an O(n)
  /// chain rebuild. Existing chains are rebuilt once here; never shrinks.
  void Reserve(uint64_t expected) {
    keys_.reserve(expected);
    row_ids_.reserve(expected);
    next_.reserve(expected);
    const uint64_t wanted =
        std::bit_ceil(std::max<uint64_t>(kInitialBuckets, expected));
    if (wanted > buckets_.size()) Rebuild(wanted);
  }

  void Insert(uint64_t key, uint64_t row_id) {
    keys_.push_back(key);
    row_ids_.push_back(row_id);
    next_.push_back(kNil);
    if (keys_.size() > buckets_.size()) {
      Rebuild(buckets_.size() * 2);  // Re-chains everything, incl. the new entry.
      return;
    }
    const uint32_t e = static_cast<uint32_t>(keys_.size() - 1);
    const uint64_t b = HashMix64(key) & mask_;
    next_[e] = buckets_[b];
    buckets_[b] = e;
  }

  /// Prefetches the bucket head for `key` (batch-pipeline probe pipelining;
  /// see HashIndex::Prefetch).
  void Prefetch(uint64_t key) const {
    __builtin_prefetch(&buckets_[HashMix64(key) & mask_], 0, 3);
  }

  /// Calls fn(row_id) for each entry with this key; fn returns false to
  /// stop. Returns matches visited.
  template <typename Fn>
  uint64_t ForEachMatch(uint64_t key, Fn&& fn) const {
    uint64_t n = 0;
    const uint64_t b = HashMix64(key) & mask_;
    for (uint32_t e = buckets_[b]; e != kNil; e = next_[e]) {
      if (keys_[e] == key) {
        ++n;
        if (!fn(row_ids_[e])) break;
      }
    }
    return n;
  }

 private:
  static constexpr uint32_t kNil = UINT32_MAX;
  static constexpr uint64_t kInitialBuckets = 64;

  void Rebuild(uint64_t new_buckets) {
    buckets_.assign(new_buckets, kNil);
    mask_ = new_buckets - 1;
    for (uint32_t e = 0; e < keys_.size(); ++e) {
      const uint64_t b = HashMix64(keys_[e]) & mask_;
      next_[e] = buckets_[b];
      buckets_[b] = e;
    }
  }

  uint64_t mask_ = 0;
  std::vector<uint32_t> buckets_;
  std::vector<uint32_t> next_;
  std::vector<uint64_t> keys_;
  std::vector<uint64_t> row_ids_;
};

}  // namespace dcdatalog

#endif  // DCDATALOG_STORAGE_DYN_INDEX_H_
