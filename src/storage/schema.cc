#include "storage/schema.h"

#include <sstream>

namespace dcdatalog {

Schema Schema::Ints(size_t n) {
  std::vector<Column> cols;
  cols.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    cols.push_back(Column{"c" + std::to_string(i), ColumnType::kInt});
  }
  return Schema(std::move(cols));
}

int Schema::FindColumn(const std::string& name) const {
  for (size_t i = 0; i < columns_.size(); ++i) {
    if (columns_[i].name == name) return static_cast<int>(i);
  }
  return -1;
}

bool Schema::operator==(const Schema& other) const {
  if (columns_.size() != other.columns_.size()) return false;
  for (size_t i = 0; i < columns_.size(); ++i) {
    if (columns_[i].type != other.columns_[i].type) return false;
  }
  return true;  // Column names are documentation, not identity.
}

std::string Schema::ToString() const {
  std::ostringstream os;
  os << "(";
  for (size_t i = 0; i < columns_.size(); ++i) {
    if (i > 0) os << ", ";
    os << columns_[i].name << ":" << ColumnTypeName(columns_[i].type);
  }
  os << ")";
  return os.str();
}

}  // namespace dcdatalog
