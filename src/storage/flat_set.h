#ifndef DCDATALOG_STORAGE_FLAT_SET_H_
#define DCDATALOG_STORAGE_FLAT_SET_H_

#include <algorithm>
#include <bit>
#include <cstdint>
#include <vector>

#include "common/hot_path.h"
#include "storage/relation.h"
#include "storage/tuple.h"

namespace dcdatalog {

/// Tuple-existence set over the rows of a backing Relation: the flat
/// merge-path dedup structure (semi-naive set difference for kNone
/// recursion). Open addressing with linear probing over 16-byte
/// (hash, row_id) slots — the cached hash lets a probe reject a colliding
/// slot without dereferencing the backing row, and lets growth rehash
/// without touching row storage at all. Tombstone-free (merge never
/// deletes); grows at ~60 % load; `Reserve` presizes from EDB cardinality
/// hints so first-iteration TC runs don't pay a rehash storm.
///
/// The caller supplies the hash (RecursiveTable hashes each wire batch up
/// front for prefetch pipelining); tests exploit this to force collision
/// chains with equal hashes but distinct tuples.
///
/// Not internally synchronized — one per worker partition.
class FlatTupleSet {
 public:
  static constexpr uint64_t kNotFound = UINT64_MAX;

  explicit FlatTupleSet(const Relation* backing) : backing_(backing) {
    slots_.assign(kInitialSlots, Slot{});
    mask_ = kInitialSlots - 1;
  }

  uint64_t size() const { return size_; }
  uint64_t slot_count() const { return slots_.size(); }

  /// Full-tuple comparisons performed while probing (collision-resolution
  /// work; feeds the merge_probe_cmps engine counter).
  uint64_t probe_cmps() const { return probe_cmps_; }

  /// Presizes so `expected` entries stay under the 60 % growth threshold.
  /// Slot count rounds up to a power of two; never shrinks.
  void Reserve(uint64_t expected) {
    const uint64_t wanted =
        std::bit_ceil(std::max<uint64_t>(kInitialSlots, expected * 2));
    if (wanted > slots_.size()) Rehash(wanted);
  }

  /// Prefetches the home slot for `hash` — issued N tuples ahead in the
  /// pipelined merge so the dependent load overlaps earlier probes.
  void Prefetch(uint64_t hash) const {
    __builtin_prefetch(&slots_[hash & mask_], 0 /*read*/, 3 /*high locality*/);
  }

  /// Returns the row id of the stored tuple equal to `tuple`, or kNotFound.
  /// `hash` must be `tuple.Hash()` (or the caller's consistent choice).
  DCD_HOT_ROOT uint64_t Find(uint64_t hash, TupleRef tuple) const {
    for (uint64_t s = hash & mask_;; s = (s + 1) & mask_) {
      const Slot& slot = slots_[s];
      if (slot.row == kEmptyRow) return kNotFound;
      if (slot.hash == hash) {
        ++probe_cmps_;
        if (backing_->Row(slot.row) == tuple) return slot.row;
      }
    }
  }

  /// Inserts `row_id` under `hash`. The caller must have established via
  /// Find that no equal tuple is present (merge probes exactly once).
  DCD_HOT_ROOT void Insert(uint64_t hash, uint64_t row_id) {
    uint64_t s = hash & mask_;
    while (slots_[s].row != kEmptyRow) s = (s + 1) & mask_;
    slots_[s] = Slot{hash, row_id};
    ++size_;
    DCD_COLD_CALL("amortized growth: one rehash doubles capacity, O(1) per insert");
    if (size_ * 5 >= slots_.size() * 3) Rehash(slots_.size() * 2);
  }

  /// Support counts for incremental maintenance: one derivation counter per
  /// stored row, riding beside the slot table and keyed by row id so growth
  /// rehashes never have to move them. Off by default (no memory cost for
  /// plain evaluation); an incremental session enables them and bumps the
  /// counter on *every* arrival of a tuple — insert, duplicate, or
  /// existence-cache hit — so in a non-recursive stratum the counter equals
  /// the number of surviving derivations and a deletion can decrement to
  /// zero instead of recomputing.
  void EnableCounts() { counts_enabled_ = true; }
  bool counts_enabled() const { return counts_enabled_; }

  void IncrementCount(uint64_t row_id) {
    if (row_id >= counts_.size()) counts_.resize(row_id + 1, 0);
    ++counts_[row_id];
  }

  /// Decrements and returns the new count (0 means the row lost its last
  /// derivation). The row must have a positive count.
  uint64_t DecrementCount(uint64_t row_id) { return --counts_[row_id]; }

  uint64_t CountOf(uint64_t row_id) const {
    return row_id < counts_.size() ? counts_[row_id] : 0;
  }

  /// Restores a row's counter directly — compaction rebuilds carrying the
  /// survivors' counts over to their new row ids.
  void SetCount(uint64_t row_id, uint64_t count) {
    if (row_id >= counts_.size()) counts_.resize(row_id + 1, 0);
    counts_[row_id] = count;
  }

 private:
  static constexpr uint64_t kEmptyRow = UINT64_MAX;
  static constexpr uint64_t kInitialSlots = 64;

  struct Slot {
    uint64_t hash = 0;
    uint64_t row = kEmptyRow;
  };

  // Kept out-of-line (DCD_COLD_FN) so the binary-level backstop can verify
  // the inlined bodies of Find/Insert contain no direct allocator call —
  // growth stays behind this distinct cold symbol.
  DCD_COLD_FN void Rehash(uint64_t new_slots) {
    std::vector<Slot> old = std::move(slots_);
    slots_.assign(new_slots, Slot{});
    mask_ = new_slots - 1;
    for (const Slot& slot : old) {
      if (slot.row == kEmptyRow) continue;
      uint64_t s = slot.hash & mask_;
      while (slots_[s].row != kEmptyRow) s = (s + 1) & mask_;
      slots_[s] = slot;
    }
  }

  const Relation* backing_;
  std::vector<Slot> slots_;
  uint64_t mask_ = 0;
  uint64_t size_ = 0;
  mutable uint64_t probe_cmps_ = 0;
  bool counts_enabled_ = false;
  std::vector<uint64_t> counts_;  // Indexed by row id; counts_enabled_ only.
};

}  // namespace dcdatalog

#endif  // DCDATALOG_STORAGE_FLAT_SET_H_
