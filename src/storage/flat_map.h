#ifndef DCDATALOG_STORAGE_FLAT_MAP_H_
#define DCDATALOG_STORAGE_FLAT_MAP_H_

#include <algorithm>
#include <bit>
#include <cstdint>
#include <vector>

#include "common/hash.h"
#include "common/hot_path.h"
#include "storage/btree.h"  // U128

namespace dcdatalog {

/// Flat open-addressed map from a 128-bit key to one 64-bit word — the
/// cache-friendly replacement for the merge path's B+-tree indexes:
///   min/max:   group key        → row id of the group's current row
///   count/sum: (group, contrib) → contributor's last value word
/// Linear probing over 32-byte slots (key + value + occupancy, two per
/// cache line); tombstone-free (merge never deletes); grows at ~60 % load.
/// Values are updated in place through the returned pointer, which stays
/// valid until the next FindOrInsert or Reserve (those may rehash).
///
/// Not internally synchronized — one per worker partition.
class FlatGroupMap {
 public:
  FlatGroupMap() {
    slots_.assign(kInitialSlots, Slot{});
    mask_ = kInitialSlots - 1;
  }

  uint64_t size() const { return size_; }
  uint64_t slot_count() const { return slots_.size(); }

  /// Key comparisons performed while probing occupied slots (feeds the
  /// merge_probe_cmps engine counter).
  uint64_t probe_cmps() const { return probe_cmps_; }

  /// Presizes so `expected` entries stay under the 60 % growth threshold.
  /// Slot count rounds up to a power of two; never shrinks.
  void Reserve(uint64_t expected) {
    const uint64_t wanted =
        std::bit_ceil(std::max<uint64_t>(kInitialSlots, expected * 2));
    if (wanted > slots_.size()) Rehash(wanted);
  }

  void Prefetch(const U128& key) const {
    __builtin_prefetch(&slots_[Hash(key) & mask_], 0, 3);
  }

  /// Returns a pointer to the value stored under `key`, or nullptr.
  uint64_t* Find(const U128& key) {
    for (uint64_t s = Hash(key) & mask_;; s = (s + 1) & mask_) {
      Slot& slot = slots_[s];
      if (!slot.used) return nullptr;
      ++probe_cmps_;
      if (slot.key == key) return &slot.value;
    }
  }

  const uint64_t* Find(const U128& key) const {
    return const_cast<FlatGroupMap*>(this)->Find(key);
  }

  /// Returns a pointer to the value under `key`, inserting `value` first if
  /// the key is absent; `*inserted` reports which happened. Growth (if due)
  /// runs before the probe so the returned pointer survives the call.
  DCD_HOT_ROOT uint64_t* FindOrInsert(const U128& key, uint64_t value,
                                      bool* inserted) {
    DCD_COLD_CALL("amortized growth: one rehash doubles capacity, O(1) per insert");
    if ((size_ + 1) * 5 >= slots_.size() * 3) Rehash(slots_.size() * 2);
    for (uint64_t s = Hash(key) & mask_;; s = (s + 1) & mask_) {
      Slot& slot = slots_[s];
      if (!slot.used) {
        slot.key = key;
        slot.value = value;
        slot.used = 1;
        ++size_;
        *inserted = true;
        return &slot.value;
      }
      ++probe_cmps_;
      if (slot.key == key) {
        *inserted = false;
        return &slot.value;
      }
    }
  }

 private:
  static constexpr uint64_t kInitialSlots = 64;

  struct Slot {
    U128 key;
    uint64_t value = 0;
    uint64_t used = 0;  // Full word keeps the slot 32 B / naturally aligned.
  };

  static uint64_t Hash(const U128& key) { return HashCombine(key.hi, key.lo); }

  // Out-of-line (DCD_COLD_FN) so the binary backstop sees growth as a
  // distinct cold symbol rather than inlined into FindOrInsert.
  DCD_COLD_FN void Rehash(uint64_t new_slots) {
    std::vector<Slot> old = std::move(slots_);
    slots_.assign(new_slots, Slot{});
    mask_ = new_slots - 1;
    for (const Slot& slot : old) {
      if (!slot.used) continue;
      uint64_t s = Hash(slot.key) & mask_;
      while (slots_[s].used) s = (s + 1) & mask_;
      slots_[s] = slot;
    }
  }

  std::vector<Slot> slots_;
  uint64_t mask_ = 0;
  uint64_t size_ = 0;
  mutable uint64_t probe_cmps_ = 0;
};

}  // namespace dcdatalog

#endif  // DCDATALOG_STORAGE_FLAT_MAP_H_
