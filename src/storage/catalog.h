#ifndef DCDATALOG_STORAGE_CATALOG_H_
#define DCDATALOG_STORAGE_CATALOG_H_

#include <memory>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/mutex.h"
#include "common/status.h"
#include "common/thread_annotations.h"
#include "storage/relation.h"

namespace dcdatalog {

/// Name → Relation registry for the extensional database (EDB). The engine
/// reads base relations from here and writes derived (IDB) results back
/// after evaluation.
///
/// Thread safety: the registry map is internally synchronized, so loaders
/// may Create/Put concurrently and an SCC's MaterializeResults may Put
/// while another thread Finds. The Relation objects handed out are NOT
/// synchronized — the engine's contract is unchanged: a relation's rows
/// are frozen before any evaluation reads them. Hot paths never take the
/// registry lock: pipelines resolve their scan relations once per rule
/// (PreparePipeline), not per tuple.
///
/// Ownership: entries are std::shared_ptr so a reader can pin a relation
/// across a concurrent Put that replaces the registry entry (the serving
/// path: an --updates stream publishes copy-on-write replacements while
/// query sessions keep reading the version they snapshotted). Find()
/// returns a raw pointer for the single-session callers whose catalog
/// nobody else mutates; any reader that can race a replacing Put must hold
/// the relation via FindShared()/Entries() instead — the raw pointer
/// dangles the moment the last shared_ptr to the old version drops.
class Catalog {
 public:
  Catalog() = default;

  Catalog(const Catalog&) = delete;
  Catalog& operator=(const Catalog&) = delete;

  /// Creates an empty relation; error if the name exists.
  Result<Relation*> Create(const std::string& name, Schema schema)
      DCD_EXCLUDES(mu_);

  /// Registers a fully built relation, replacing any previous one.
  Relation* Put(Relation relation) DCD_EXCLUDES(mu_);

  /// Registers a shared relation (no copy), replacing any previous entry.
  /// The caller may keep its reference; the catalog never mutates shared
  /// entries in place — replacement is the only write, so every holder of
  /// the old shared_ptr keeps a stable immutable snapshot.
  void PutShared(std::shared_ptr<Relation> relation) DCD_EXCLUDES(mu_);

  /// nullptr when absent.
  Relation* Find(const std::string& name) DCD_EXCLUDES(mu_);
  const Relation* Find(const std::string& name) const DCD_EXCLUDES(mu_);

  /// Owning lookup: the returned reference stays valid (and its rows
  /// immutable under the copy-on-write discipline) even if another thread
  /// replaces this entry afterwards. Empty when absent.
  std::shared_ptr<const Relation> FindShared(const std::string& name) const
      DCD_EXCLUDES(mu_);

  bool Contains(const std::string& name) const {
    return Find(name) != nullptr;
  }

  std::vector<std::string> Names() const DCD_EXCLUDES(mu_);

  /// Atomic snapshot of the whole registry: every entry pinned at its
  /// current version, sorted by name. The basis for shared immutable EDB
  /// snapshots across concurrent query sessions.
  std::vector<std::pair<std::string, std::shared_ptr<const Relation>>>
  Entries() const DCD_EXCLUDES(mu_);

 private:
  mutable Mutex mu_;
  std::unordered_map<std::string, std::shared_ptr<Relation>> relations_
      DCD_GUARDED_BY(mu_);
};

}  // namespace dcdatalog

#endif  // DCDATALOG_STORAGE_CATALOG_H_
