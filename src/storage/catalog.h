#ifndef DCDATALOG_STORAGE_CATALOG_H_
#define DCDATALOG_STORAGE_CATALOG_H_

#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/mutex.h"
#include "common/status.h"
#include "common/thread_annotations.h"
#include "storage/relation.h"

namespace dcdatalog {

/// Name → Relation registry for the extensional database (EDB). The engine
/// reads base relations from here and writes derived (IDB) results back
/// after evaluation.
///
/// Thread safety: the registry map is internally synchronized, so loaders
/// may Create/Put concurrently and an SCC's MaterializeResults may Put
/// while another thread Finds. The Relation objects handed out are NOT
/// synchronized — the engine's contract is unchanged: a relation's rows
/// are frozen before any evaluation reads them. Hot paths never take the
/// registry lock: pipelines resolve their scan relations once per rule
/// (PreparePipeline), not per tuple.
class Catalog {
 public:
  Catalog() = default;

  Catalog(const Catalog&) = delete;
  Catalog& operator=(const Catalog&) = delete;

  /// Creates an empty relation; error if the name exists.
  Result<Relation*> Create(const std::string& name, Schema schema)
      DCD_EXCLUDES(mu_);

  /// Registers a fully built relation, replacing any previous one.
  Relation* Put(Relation relation) DCD_EXCLUDES(mu_);

  /// nullptr when absent.
  Relation* Find(const std::string& name) DCD_EXCLUDES(mu_);
  const Relation* Find(const std::string& name) const DCD_EXCLUDES(mu_);

  bool Contains(const std::string& name) const {
    return Find(name) != nullptr;
  }

  std::vector<std::string> Names() const DCD_EXCLUDES(mu_);

 private:
  mutable Mutex mu_;
  std::unordered_map<std::string, std::unique_ptr<Relation>> relations_
      DCD_GUARDED_BY(mu_);
};

}  // namespace dcdatalog

#endif  // DCDATALOG_STORAGE_CATALOG_H_
