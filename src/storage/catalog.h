#ifndef DCDATALOG_STORAGE_CATALOG_H_
#define DCDATALOG_STORAGE_CATALOG_H_

#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "storage/relation.h"

namespace dcdatalog {

/// Name → Relation registry for the extensional database (EDB). The engine
/// reads base relations from here and writes derived (IDB) results back
/// after evaluation. Not synchronized: populated before evaluation, read
/// during, written after.
class Catalog {
 public:
  Catalog() = default;

  Catalog(const Catalog&) = delete;
  Catalog& operator=(const Catalog&) = delete;

  /// Creates an empty relation; error if the name exists.
  Result<Relation*> Create(const std::string& name, Schema schema);

  /// Registers a fully built relation, replacing any previous one.
  Relation* Put(Relation relation);

  /// nullptr when absent.
  Relation* Find(const std::string& name);
  const Relation* Find(const std::string& name) const;

  bool Contains(const std::string& name) const {
    return Find(name) != nullptr;
  }

  std::vector<std::string> Names() const;

 private:
  std::unordered_map<std::string, std::unique_ptr<Relation>> relations_;
};

}  // namespace dcdatalog

#endif  // DCDATALOG_STORAGE_CATALOG_H_
