#ifndef DCDATALOG_STORAGE_SCHEMA_H_
#define DCDATALOG_STORAGE_SCHEMA_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/value.h"

namespace dcdatalog {

/// Column description: a name (for diagnostics / planning) and a type.
struct Column {
  std::string name;
  ColumnType type = ColumnType::kInt;
};

/// Relation schema: an ordered list of typed columns. Tuples of the relation
/// are fixed-width rows of one 64-bit word per column.
class Schema {
 public:
  Schema() = default;
  explicit Schema(std::vector<Column> columns) : columns_(std::move(columns)) {}

  /// Convenience: n int columns named c0..c{n-1}.
  static Schema Ints(size_t n);

  size_t arity() const { return columns_.size(); }
  const Column& column(size_t i) const { return columns_[i]; }
  const std::vector<Column>& columns() const { return columns_; }
  ColumnType type(size_t i) const { return columns_[i].type; }

  /// Index of the column named `name`, or -1.
  int FindColumn(const std::string& name) const;

  bool operator==(const Schema& other) const;

  std::string ToString() const;

 private:
  std::vector<Column> columns_;
};

}  // namespace dcdatalog

#endif  // DCDATALOG_STORAGE_SCHEMA_H_
