#include "storage/relation.h"

#include <sstream>

namespace dcdatalog {

void Relation::AppendAll(const Relation& other) {
  DCD_CHECK(other.arity() == arity());
  data_.insert(data_.end(), other.data_.begin(), other.data_.end());
}

std::string Relation::ToString(uint64_t max_rows) const {
  std::ostringstream os;
  os << name_ << schema_.ToString() << " [" << size() << " rows]";
  uint64_t n = std::min<uint64_t>(size(), max_rows);
  for (uint64_t r = 0; r < n; ++r) {
    os << "\n  (";
    TupleRef row = Row(r);
    for (uint32_t c = 0; c < arity(); ++c) {
      if (c > 0) os << ", ";
      switch (schema_.type(c)) {
        case ColumnType::kInt:
          os << IntFromWord(row[c]);
          break;
        case ColumnType::kDouble:
          os << DoubleFromWord(row[c]);
          break;
        case ColumnType::kString:
          os << "#" << row[c];
          break;
      }
    }
    os << ")";
  }
  if (size() > n) os << "\n  ... (" << (size() - n) << " more)";
  return os.str();
}

}  // namespace dcdatalog
