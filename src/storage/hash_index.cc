#include "storage/hash_index.h"

#include <bit>

namespace dcdatalog {

void HashIndex::Build(const Relation& relation, uint32_t key_col) {
  const uint64_t n = relation.size();
  keys_.resize(n);
  row_ids_.resize(n);
  for (uint64_t r = 0; r < n; ++r) {
    keys_[r] = relation.Row(r)[key_col];
    row_ids_[r] = r;
  }
  Finish();
}

void HashIndex::BuildFromPairs(
    const std::vector<std::pair<uint64_t, uint64_t>>& pairs) {
  keys_.resize(pairs.size());
  row_ids_.resize(pairs.size());
  for (size_t i = 0; i < pairs.size(); ++i) {
    keys_[i] = pairs[i].first;
    row_ids_[i] = pairs[i].second;
  }
  Finish();
}

void HashIndex::Append(const Relation& relation, uint32_t key_col,
                       uint64_t from_row) {
  const uint64_t n = relation.size();
  if (from_row >= n) return;
  keys_.reserve(n);
  row_ids_.reserve(n);
  for (uint64_t r = from_row; r < n; ++r) {
    keys_.push_back(relation.Row(r)[key_col]);
    row_ids_.push_back(r);
  }
  if (keys_.size() * 2 > buckets_.size()) {
    // Outgrew the ~0.5 load factor: rebuild every chain over a wider table.
    Finish();
    return;
  }
  next_.resize(keys_.size());
  for (uint64_t i = keys_.size() - (n - from_row); i < keys_.size(); ++i) {
    uint64_t b = HashMix64(keys_[i]) & bucket_mask_;
    next_[i] = buckets_[b];
    buckets_[b] = static_cast<uint32_t>(i);
  }
}

void HashIndex::Finish() {
  const uint64_t n = keys_.size();
  if (n == 0) {
    entries_empty_ = true;
    buckets_.clear();
    next_.clear();
    return;
  }
  // Load factor ~0.5 over a power-of-two bucket table.
  uint64_t buckets = std::bit_ceil(n * 2);
  bucket_mask_ = buckets - 1;
  buckets_.assign(buckets, kNil);
  next_.resize(n);
  for (uint64_t i = 0; i < n; ++i) {
    uint64_t b = HashMix64(keys_[i]) & bucket_mask_;
    next_[i] = buckets_[b];
    buckets_[b] = static_cast<uint32_t>(i);
  }
}

}  // namespace dcdatalog
