#ifndef DCDATALOG_STORAGE_RELATION_H_
#define DCDATALOG_STORAGE_RELATION_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"
#include "storage/schema.h"
#include "storage/tuple.h"

namespace dcdatalog {

/// In-memory row store: fixed-width rows of `arity` 64-bit words packed into
/// one flat vector. Rows are addressed by dense row id (insertion order).
/// Deletion is not supported — semi-naive evaluation only ever appends.
///
/// Not internally synchronized: during parallel evaluation each worker owns
/// its partitioned Relation exclusively (the whole point of the paper's
/// partitioning scheme).
class Relation {
 public:
  Relation() = default;
  Relation(std::string name, Schema schema)
      : name_(std::move(name)), schema_(std::move(schema)) {}

  const std::string& name() const { return name_; }
  const Schema& schema() const { return schema_; }
  uint32_t arity() const { return static_cast<uint32_t>(schema_.arity()); }

  uint64_t size() const {
    uint32_t a = arity();
    return a == 0 ? 0 : data_.size() / a;
  }
  bool empty() const { return data_.empty(); }

  /// Appends one row; returns its row id. `row` must have exactly arity()
  /// words.
  uint64_t Append(TupleRef row) {
    DCD_DCHECK(row.arity == arity());
    uint64_t id = size();
    data_.insert(data_.end(), row.data, row.data + row.arity);
    return id;
  }

  uint64_t Append(std::initializer_list<uint64_t> words) {
    DCD_DCHECK(words.size() == arity());
    uint64_t id = size();
    data_.insert(data_.end(), words.begin(), words.end());
    return id;
  }

  TupleRef Row(uint64_t row_id) const {
    DCD_DCHECK(row_id < size());
    return TupleRef{data_.data() + row_id * arity(), arity()};
  }

  /// Overwrites one column of an existing row (used by aggregate merges,
  /// which update values in place per paper §6.2.1).
  void SetWord(uint64_t row_id, uint32_t col, uint64_t word) {
    DCD_DCHECK(row_id < size() && col < arity());
    data_[row_id * arity() + col] = word;
  }

  void Clear() { data_.clear(); }
  void Reserve(uint64_t rows) { data_.reserve(rows * arity()); }

  /// Appends every row of `other` (schemas must match in arity).
  void AppendAll(const Relation& other);

  /// Stable human-readable dump (tests and small examples only).
  std::string ToString(uint64_t max_rows = 32) const;

  const std::vector<uint64_t>& raw() const { return data_; }

 private:
  std::string name_;
  Schema schema_;
  std::vector<uint64_t> data_;
};

}  // namespace dcdatalog

#endif  // DCDATALOG_STORAGE_RELATION_H_
