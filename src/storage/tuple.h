#ifndef DCDATALOG_STORAGE_TUPLE_H_
#define DCDATALOG_STORAGE_TUPLE_H_

#include <cstdint>
#include <cstring>
#include <initializer_list>

#include "common/hash.h"
#include "common/logging.h"

namespace dcdatalog {

/// Maximum tuple arity the engine supports. The paper's workloads peak at 3
/// columns (weighted edges, APSP paths); 8 leaves slack for user programs
/// while keeping the fixed message-buffer element exactly one cache line.
inline constexpr uint32_t kMaxArity = 8;

/// Non-owning view of one row: `arity` consecutive 64-bit words. Cheap to
/// copy; valid only while the backing storage is alive and unmoved.
struct TupleRef {
  const uint64_t* data = nullptr;
  uint32_t arity = 0;

  uint64_t operator[](size_t i) const {
    DCD_DCHECK(i < arity);
    return data[i];
  }

  uint64_t Hash() const { return HashWords(data, arity); }

  friend bool operator==(const TupleRef& a, const TupleRef& b) {
    return a.arity == b.arity &&
           std::memcmp(a.data, b.data, a.arity * sizeof(uint64_t)) == 0;
  }
};

/// Owning fixed-capacity tuple; the element type of the inter-worker SPSC
/// message buffers (paper §6.1). Trivially copyable, 64-byte payload.
struct TupleBuf {
  uint64_t v[kMaxArity];

  TupleBuf() = default;

  explicit TupleBuf(TupleRef ref) {
    DCD_DCHECK(ref.arity <= kMaxArity);
    std::memcpy(v, ref.data, ref.arity * sizeof(uint64_t));
    ZeroTail(ref.arity);
  }

  TupleBuf(std::initializer_list<uint64_t> init) {
    DCD_DCHECK(init.size() <= kMaxArity);
    size_t i = 0;
    for (uint64_t w : init) v[i++] = w;
    ZeroTail(static_cast<uint32_t>(i));
  }

  /// Copies `n` wire words and zero-fills the tail, so full 64-byte copies
  /// of the buffer never read uninitialized memory (MSan/valgrind clean).
  static TupleBuf FromWords(const uint64_t* words, uint32_t n) {
    DCD_DCHECK(n <= kMaxArity);
    TupleBuf buf;
    std::memcpy(buf.v, words, n * sizeof(uint64_t));
    buf.ZeroTail(n);
    return buf;
  }

  TupleRef Ref(uint32_t arity) const { return TupleRef{v, arity}; }

 private:
  void ZeroTail(uint32_t from) {
    std::memset(v + from, 0, (kMaxArity - from) * sizeof(uint64_t));
  }
};

static_assert(sizeof(TupleBuf) == 64, "TupleBuf should be one cache line");

}  // namespace dcdatalog

#endif  // DCDATALOG_STORAGE_TUPLE_H_
