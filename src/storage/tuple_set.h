#ifndef DCDATALOG_STORAGE_TUPLE_SET_H_
#define DCDATALOG_STORAGE_TUPLE_SET_H_

#include <cstdint>
#include <vector>

#include "common/hash.h"
#include "storage/relation.h"
#include "storage/tuple.h"

namespace dcdatalog {

/// Deduplication set over the rows of a backing Relation: stores row ids,
/// compares full tuples. Open addressing with linear probing; grows at 60 %
/// load. This implements the set-difference of semi-naive evaluation
/// (drop tuples already in R_i) for non-aggregate recursion.
///
/// Not internally synchronized — one per worker partition.
class TupleSet {
 public:
  explicit TupleSet(const Relation* backing) : backing_(backing) {
    slots_.assign(kInitialSlots, kEmpty);
    mask_ = kInitialSlots - 1;
  }

  uint64_t size() const { return size_; }

  /// Returns true if a row equal to `tuple` is present.
  bool Contains(TupleRef tuple) const {
    uint64_t h = tuple.Hash();
    for (uint64_t s = h & mask_;; s = (s + 1) & mask_) {
      uint64_t slot = slots_[s];
      if (slot == kEmpty) return false;
      if (backing_->Row(slot) == tuple) return true;
    }
  }

  /// Inserts `row_id` (whose tuple must already be appended to the backing
  /// relation) unless an equal tuple is present. Returns true if inserted.
  bool Insert(uint64_t row_id) {
    TupleRef tuple = backing_->Row(row_id);
    uint64_t h = tuple.Hash();
    for (uint64_t s = h & mask_;; s = (s + 1) & mask_) {
      uint64_t slot = slots_[s];
      if (slot == kEmpty) {
        slots_[s] = row_id;
        ++size_;
        MaybeGrow();
        return true;
      }
      if (backing_->Row(slot) == tuple) return false;
    }
  }

 private:
  static constexpr uint64_t kEmpty = UINT64_MAX;
  static constexpr uint64_t kInitialSlots = 64;

  void MaybeGrow() {
    if (size_ * 5 < slots_.size() * 3) return;
    std::vector<uint64_t> old = std::move(slots_);
    slots_.assign(old.size() * 2, kEmpty);
    mask_ = slots_.size() - 1;
    for (uint64_t slot : old) {
      if (slot == kEmpty) continue;
      uint64_t h = backing_->Row(slot).Hash();
      uint64_t s = h & mask_;
      while (slots_[s] != kEmpty) s = (s + 1) & mask_;
      slots_[s] = slot;
    }
  }

  const Relation* backing_;
  std::vector<uint64_t> slots_;
  uint64_t mask_ = 0;
  uint64_t size_ = 0;
};

}  // namespace dcdatalog

#endif  // DCDATALOG_STORAGE_TUPLE_SET_H_
