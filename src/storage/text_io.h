#ifndef DCDATALOG_STORAGE_TEXT_IO_H_
#define DCDATALOG_STORAGE_TEXT_IO_H_

#include <string>

#include "common/status.h"
#include "common/string_dict.h"
#include "storage/relation.h"

namespace dcdatalog {

/// Parses a compact column-type spec: one letter per column —
/// 'i' int64, 'd' double, 's' string — e.g. "iis" for (int, int, string).
Result<Schema> ParseSchemaSpec(const std::string& spec);

/// Loads a whitespace-separated fact file into a relation named `name`
/// with the given schema. String columns are interned into `dict`.
/// '#' and '%' start comment lines; blank lines are skipped.
Result<Relation> LoadRelationFile(const std::string& name,
                                  const Schema& schema,
                                  const std::string& path, StringDict* dict);

/// Writes a relation as tab-separated text; string columns are resolved
/// through `dict` (pass nullptr to emit raw ids).
Status WriteRelationFile(const Relation& relation, const std::string& path,
                         const StringDict* dict);

}  // namespace dcdatalog

#endif  // DCDATALOG_STORAGE_TEXT_IO_H_
