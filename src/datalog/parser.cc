#include "datalog/parser.h"

#include <utility>

#include "datalog/lexer.h"

namespace dcdatalog {
namespace {

// Local helper: propagate Status out of both Status- and Result-returning
// parser methods.
#define DCD_RETURN_IF_ERROR_R(expr)              \
  do {                                           \
    ::dcdatalog::Status _s = (expr);             \
    if (!_s.ok()) return _s;                     \
  } while (false)

class Parser {
 public:
  Parser(std::vector<Token> tokens, StringDict* dict)
      : tokens_(std::move(tokens)), dict_(dict) {}

  Result<Program> Parse() {
    Program program;
    while (!At(TokenKind::kEof)) {
      if (At(TokenKind::kDot)) {
        DCD_RETURN_IF_ERROR_R(ParseDirective(&program));
      } else {
        DCD_RETURN_IF_ERROR_R(ParseRule(&program));
      }
    }
    return program;
  }

 private:
  const Token& Peek(size_t ahead = 0) const {
    size_t i = pos_ + ahead;
    return i < tokens_.size() ? tokens_[i] : tokens_.back();
  }

  bool At(TokenKind kind) const { return Peek().kind == kind; }

  const Token& Advance() { return tokens_[pos_++]; }

  bool Accept(TokenKind kind) {
    if (!At(kind)) return false;
    ++pos_;
    return true;
  }

  Status Expect(TokenKind kind, const char* context) {
    if (At(kind)) {
      ++pos_;
      return Status::OK();
    }
    return Status::ParseError(std::string("expected ") + TokenKindName(kind) +
                              " in " + context + ", found '" + Peek().text +
                              "' (" + TokenKindName(Peek().kind) +
                              ") at line " + std::to_string(Peek().line));
  }

  Status ParseDirective(Program* program) {
    DCD_RETURN_IF_ERROR_R(Expect(TokenKind::kDot, "directive"));
    if (!At(TokenKind::kIdent)) {
      return Status::ParseError("expected directive name after '.' at line " +
                                std::to_string(Peek().line));
    }
    std::string name = Advance().text;
    if (name != "input" && name != "output") {
      return Status::ParseError("unknown directive '." + name + "' at line " +
                                std::to_string(Peek().line));
    }
    if (!At(TokenKind::kIdent)) {
      return Status::ParseError("expected relation name after '." + name +
                                "' at line " + std::to_string(Peek().line));
    }
    std::string relation = Advance().text;
    if (name == "input") {
      program->inputs.push_back(relation);
    } else {
      program->outputs.push_back(relation);
    }
    return Status::OK();
  }

  Status ParseRule(Program* program) {
    Rule rule;
    rule.line = Peek().line;
    DCD_RETURN_IF_ERROR_R(ParseHead(&rule.head));
    if (Accept(TokenKind::kImplies)) {
      do {
        BodyLiteral lit;
        DCD_RETURN_IF_ERROR_R(ParseBodyLiteral(&lit));
        rule.body.push_back(std::move(lit));
      } while (Accept(TokenKind::kComma));
    }
    DCD_RETURN_IF_ERROR_R(Expect(TokenKind::kDot, "rule (did you forget '.')"));
    program->rules.push_back(std::move(rule));
    return Status::OK();
  }

  Status ParseHead(RuleHead* head) {
    if (!At(TokenKind::kIdent)) {
      return Status::ParseError("expected predicate name at line " +
                                std::to_string(Peek().line));
    }
    head->predicate = Advance().text;
    DCD_RETURN_IF_ERROR_R(Expect(TokenKind::kLParen, "rule head"));
    do {
      HeadArg arg;
      DCD_RETURN_IF_ERROR_R(ParseHeadArg(&arg));
      head->args.push_back(std::move(arg));
    } while (Accept(TokenKind::kComma));
    return Expect(TokenKind::kRParen, "rule head");
  }

  Status ParseHeadArg(HeadArg* arg) {
    // Aggregate: min|max|count|sum '<' term [, term] '>'.
    if (At(TokenKind::kIdent)) {
      AggFunc agg = AggFunc::kNone;
      const std::string& name = Peek().text;
      if (name == "min") agg = AggFunc::kMin;
      if (name == "max") agg = AggFunc::kMax;
      if (name == "count") agg = AggFunc::kCount;
      if (name == "sum") agg = AggFunc::kSum;
      if (agg != AggFunc::kNone && Peek(1).kind == TokenKind::kLt) {
        int line = Peek().line;
        Advance();  // aggregate keyword
        Advance();  // '<'
        arg->agg = agg;
        bool parenthesized = Accept(TokenKind::kLParen);
        Term t;
        DCD_RETURN_IF_ERROR_R(ParseTerm(&t));
        arg->terms.push_back(std::move(t));
        while (Accept(TokenKind::kComma)) {
          Term extra;
          DCD_RETURN_IF_ERROR_R(ParseTerm(&extra));
          arg->terms.push_back(std::move(extra));
        }
        if (parenthesized) {
          DCD_RETURN_IF_ERROR_R(Expect(TokenKind::kRParen, "aggregate"));
        }
        DCD_RETURN_IF_ERROR_R(Expect(TokenKind::kGt, "aggregate"));
        // Shape checks: sum takes (contributor, value); min/max/count one.
        if (agg == AggFunc::kSum && arg->terms.size() != 2) {
          return Status::ParseError(
              "sum<> takes (contributor, value) at line " +
              std::to_string(line));
        }
        if (agg != AggFunc::kSum && arg->terms.size() != 1) {
          return Status::ParseError(std::string(AggFuncName(agg)) +
                                    "<> takes one term at line " +
                                    std::to_string(line));
        }
        return Status::OK();
      }
    }
    Term t;
    DCD_RETURN_IF_ERROR_R(ParseTerm(&t));
    arg->agg = AggFunc::kNone;
    arg->terms.push_back(std::move(t));
    return Status::OK();
  }

  Status ParseBodyLiteral(BodyLiteral* lit) {
    if (At(TokenKind::kBang)) {
      Advance();
      if (!At(TokenKind::kIdent) || Peek(1).kind != TokenKind::kLParen) {
        return Status::ParseError("expected atom after '!' at line " +
                                  std::to_string(Peek().line));
      }
      lit->kind = BodyLiteral::Kind::kAtom;
      lit->negated = true;
      return ParseAtom(&lit->atom);
    }
    if (At(TokenKind::kIdent) && Peek(1).kind == TokenKind::kLParen) {
      lit->kind = BodyLiteral::Kind::kAtom;
      return ParseAtom(&lit->atom);
    }
    lit->kind = BodyLiteral::Kind::kConstraint;
    return ParseConstraint(&lit->constraint);
  }

  Status ParseAtom(Atom* atom) {
    atom->predicate = Advance().text;
    DCD_RETURN_IF_ERROR_R(Expect(TokenKind::kLParen, "atom"));
    do {
      Term t;
      DCD_RETURN_IF_ERROR_R(ParseTerm(&t));
      atom->args.push_back(std::move(t));
    } while (Accept(TokenKind::kComma));
    return Expect(TokenKind::kRParen, "atom");
  }

  Status ParseTerm(Term* term) {
    const Token& tok = Peek();
    switch (tok.kind) {
      case TokenKind::kVariable:
        *term = Term::Variable(Advance().text);
        return Status::OK();
      case TokenKind::kWildcard:
        Advance();
        *term = Term::Wildcard();
        return Status::OK();
      case TokenKind::kInt:
        *term = Term::Constant(Value::Int(Advance().int_value));
        return Status::OK();
      case TokenKind::kFloat:
        *term = Term::Constant(Value::Double(Advance().float_value));
        return Status::OK();
      case TokenKind::kString:
        *term = Term::Constant(Value::String(dict_->Intern(Advance().text)));
        return Status::OK();
      case TokenKind::kMinus: {
        Advance();
        if (At(TokenKind::kInt)) {
          *term = Term::Constant(Value::Int(-Advance().int_value));
          return Status::OK();
        }
        if (At(TokenKind::kFloat)) {
          *term = Term::Constant(Value::Double(-Advance().float_value));
          return Status::OK();
        }
        return Status::ParseError("expected number after '-' at line " +
                                  std::to_string(tok.line));
      }
      default:
        return Status::ParseError("expected term, found '" + tok.text +
                                  "' at line " + std::to_string(tok.line));
    }
  }

  Status ParseConstraint(Constraint* constraint) {
    DCD_ASSIGN_OR_RETURN(constraint->lhs, ParseExpr());
    CmpOp op;
    switch (Peek().kind) {
      case TokenKind::kEq:
        op = CmpOp::kEq;
        break;
      case TokenKind::kNe:
        op = CmpOp::kNe;
        break;
      case TokenKind::kLt:
        op = CmpOp::kLt;
        break;
      case TokenKind::kLe:
        op = CmpOp::kLe;
        break;
      case TokenKind::kGt:
        op = CmpOp::kGt;
        break;
      case TokenKind::kGe:
        op = CmpOp::kGe;
        break;
      default:
        return Status::ParseError("expected comparison operator at line " +
                                  std::to_string(Peek().line));
    }
    Advance();
    constraint->op = op;
    DCD_ASSIGN_OR_RETURN(constraint->rhs, ParseExpr());
    return Status::OK();
  }

  Result<std::unique_ptr<Expr>> ParseExpr() {
    DCD_ASSIGN_OR_RETURN(std::unique_ptr<Expr> lhs, ParseMul());
    while (At(TokenKind::kPlus) || At(TokenKind::kMinus)) {
      ExprOp op = Accept(TokenKind::kPlus) ? ExprOp::kAdd
                                           : (Advance(), ExprOp::kSub);
      DCD_ASSIGN_OR_RETURN(std::unique_ptr<Expr> rhs, ParseMul());
      lhs = Expr::Binary(op, std::move(lhs), std::move(rhs));
    }
    return lhs;
  }

  Result<std::unique_ptr<Expr>> ParseMul() {
    DCD_ASSIGN_OR_RETURN(std::unique_ptr<Expr> lhs, ParseUnary());
    while (At(TokenKind::kStar) || At(TokenKind::kSlash)) {
      ExprOp op = Accept(TokenKind::kStar) ? ExprOp::kMul
                                           : (Advance(), ExprOp::kDiv);
      DCD_ASSIGN_OR_RETURN(std::unique_ptr<Expr> rhs, ParseUnary());
      lhs = Expr::Binary(op, std::move(lhs), std::move(rhs));
    }
    return lhs;
  }

  Result<std::unique_ptr<Expr>> ParseUnary() {
    if (Accept(TokenKind::kMinus)) {
      DCD_ASSIGN_OR_RETURN(std::unique_ptr<Expr> inner, ParseUnary());
      return Expr::Negate(std::move(inner));
    }
    return ParsePrimary();
  }

  Result<std::unique_ptr<Expr>> ParsePrimary() {
    const Token& tok = Peek();
    switch (tok.kind) {
      case TokenKind::kVariable:
        return Expr::Var(Advance().text);
      case TokenKind::kInt:
        return Expr::Const(Value::Int(Advance().int_value));
      case TokenKind::kFloat:
        return Expr::Const(Value::Double(Advance().float_value));
      case TokenKind::kString:
        return Expr::Const(Value::String(dict_->Intern(Advance().text)));
      case TokenKind::kLParen: {
        Advance();
        DCD_ASSIGN_OR_RETURN(std::unique_ptr<Expr> inner, ParseExpr());
        DCD_RETURN_IF_ERROR_R(Expect(TokenKind::kRParen, "expression"));
        return inner;
      }
      default:
        return Status::ParseError("expected expression, found '" + tok.text +
                                  "' at line " + std::to_string(tok.line));
    }
  }

#undef DCD_RETURN_IF_ERROR_R

  std::vector<Token> tokens_;
  StringDict* dict_;
  size_t pos_ = 0;
};

}  // namespace

Result<Program> ParseProgram(std::string_view source, StringDict* dict) {
  DCD_ASSIGN_OR_RETURN(std::vector<Token> tokens, Tokenize(source));
  Parser parser(std::move(tokens), dict);
  return parser.Parse();
}

}  // namespace dcdatalog
