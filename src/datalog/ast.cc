#include "datalog/ast.h"

#include <sstream>

namespace dcdatalog {
namespace {

std::string ValueToString(const Value& v) {
  std::ostringstream os;
  switch (v.type) {
    case ColumnType::kInt:
      os << v.AsInt();
      break;
    case ColumnType::kDouble:
      os << DoubleFromWord(v.word);
      break;
    case ColumnType::kString:
      os << "str#" << v.word;
      break;
  }
  return os.str();
}

}  // namespace

std::string Term::ToString() const {
  switch (kind) {
    case TermKind::kVariable:
      return var;
    case TermKind::kConstant:
      return ValueToString(constant);
    case TermKind::kWildcard:
      return "_";
  }
  return "?";
}

std::unique_ptr<Expr> Expr::Var(std::string name) {
  auto e = std::make_unique<Expr>();
  e->op = ExprOp::kVar;
  e->var = std::move(name);
  return e;
}

std::unique_ptr<Expr> Expr::Const(Value v) {
  auto e = std::make_unique<Expr>();
  e->op = ExprOp::kConst;
  e->constant = v;
  return e;
}

std::unique_ptr<Expr> Expr::Binary(ExprOp op, std::unique_ptr<Expr> l,
                                   std::unique_ptr<Expr> r) {
  auto e = std::make_unique<Expr>();
  e->op = op;
  e->lhs = std::move(l);
  e->rhs = std::move(r);
  return e;
}

std::unique_ptr<Expr> Expr::Negate(std::unique_ptr<Expr> inner) {
  auto e = std::make_unique<Expr>();
  e->op = ExprOp::kNeg;
  e->lhs = std::move(inner);
  return e;
}

std::unique_ptr<Expr> Expr::Clone() const {
  auto e = std::make_unique<Expr>();
  e->op = op;
  e->var = var;
  e->constant = constant;
  if (lhs) e->lhs = lhs->Clone();
  if (rhs) e->rhs = rhs->Clone();
  return e;
}

void Expr::CollectVars(std::vector<std::string>* out) const {
  if (op == ExprOp::kVar) out->push_back(var);
  if (lhs) lhs->CollectVars(out);
  if (rhs) rhs->CollectVars(out);
}

std::string Expr::ToString() const {
  switch (op) {
    case ExprOp::kVar:
      return var;
    case ExprOp::kConst:
      return ValueToString(constant);
    case ExprOp::kNeg:
      return "-(" + lhs->ToString() + ")";
    default: {
      const char* sym = op == ExprOp::kAdd   ? "+"
                        : op == ExprOp::kSub ? "-"
                        : op == ExprOp::kMul ? "*"
                                             : "/";
      return "(" + lhs->ToString() + " " + sym + " " + rhs->ToString() + ")";
    }
  }
}

const char* CmpOpName(CmpOp op) {
  switch (op) {
    case CmpOp::kEq:
      return "=";
    case CmpOp::kNe:
      return "!=";
    case CmpOp::kLt:
      return "<";
    case CmpOp::kLe:
      return "<=";
    case CmpOp::kGt:
      return ">";
    case CmpOp::kGe:
      return ">=";
  }
  return "?";
}

Constraint Constraint::Clone() const {
  Constraint c;
  c.op = op;
  c.lhs = lhs->Clone();
  c.rhs = rhs->Clone();
  return c;
}

std::string Constraint::ToString() const {
  return lhs->ToString() + " " + CmpOpName(op) + " " + rhs->ToString();
}

BodyLiteral BodyLiteral::Clone() const {
  BodyLiteral copy;
  copy.kind = kind;
  copy.negated = negated;
  if (kind == Kind::kAtom) {
    copy.atom = atom;
  } else {
    copy.constraint = constraint.Clone();
  }
  return copy;
}

Rule Rule::Clone() const {
  Rule copy;
  copy.head = head;
  copy.line = line;
  copy.body.reserve(body.size());
  for (const BodyLiteral& lit : body) copy.body.push_back(lit.Clone());
  return copy;
}

Program Program::Clone() const {
  Program copy;
  copy.rules.reserve(rules.size());
  for (const Rule& rule : rules) copy.rules.push_back(rule.Clone());
  copy.inputs = inputs;
  copy.outputs = outputs;
  return copy;
}

std::string Atom::ToString() const {
  std::string out = predicate + "(";
  for (size_t i = 0; i < args.size(); ++i) {
    if (i > 0) out += ", ";
    out += args[i].ToString();
  }
  return out + ")";
}

std::string BodyLiteral::ToString() const {
  if (kind != Kind::kAtom) return constraint.ToString();
  return negated ? "!" + atom.ToString() : atom.ToString();
}

const char* AggFuncName(AggFunc agg) {
  switch (agg) {
    case AggFunc::kNone:
      return "none";
    case AggFunc::kMin:
      return "min";
    case AggFunc::kMax:
      return "max";
    case AggFunc::kCount:
      return "count";
    case AggFunc::kSum:
      return "sum";
  }
  return "?";
}

std::string HeadArg::ToString() const {
  if (agg == AggFunc::kNone) return terms[0].ToString();
  std::string out = AggFuncName(agg);
  out += "<";
  if (terms.size() > 1) out += "(";
  for (size_t i = 0; i < terms.size(); ++i) {
    if (i > 0) out += ", ";
    out += terms[i].ToString();
  }
  if (terms.size() > 1) out += ")";
  return out + ">";
}

std::string RuleHead::ToString() const {
  std::string out = predicate + "(";
  for (size_t i = 0; i < args.size(); ++i) {
    if (i > 0) out += ", ";
    out += args[i].ToString();
  }
  return out + ")";
}

size_t Rule::NumAtoms() const {
  size_t n = 0;
  for (const auto& lit : body) {
    if (lit.kind == BodyLiteral::Kind::kAtom) ++n;
  }
  return n;
}

std::string Rule::ToString() const {
  std::string out = head.ToString();
  if (!body.empty()) {
    out += " :- ";
    for (size_t i = 0; i < body.size(); ++i) {
      if (i > 0) out += ", ";
      out += body[i].ToString();
    }
  }
  return out + ".";
}

std::string Program::ToString() const {
  std::ostringstream os;
  for (const auto& in : inputs) os << ".input " << in << "\n";
  for (const auto& out : outputs) os << ".output " << out << "\n";
  for (const auto& rule : rules) os << rule.ToString() << "\n";
  return os.str();
}

}  // namespace dcdatalog
