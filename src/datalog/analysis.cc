#include "datalog/analysis.h"

#include <algorithm>
#include <functional>
#include <set>
#include <sstream>

#include "common/logging.h"

namespace dcdatalog {
namespace {

/// Type lattice: unknown ⊑ int ⊑ double; string joins only with itself.
/// kUnknown is encoded as -1 outside ColumnType.
constexpr int kUnknown = -1;

int JoinType(int a, int b, bool* conflict) {
  if (a == kUnknown) return b;
  if (b == kUnknown) return a;
  if (a == b) return a;
  const bool a_num = a != static_cast<int>(ColumnType::kString);
  const bool b_num = b != static_cast<int>(ColumnType::kString);
  if (a_num && b_num) return static_cast<int>(ColumnType::kDouble);
  *conflict = true;
  return a;
}

}  // namespace

Result<ProgramAnalysis> ProgramAnalysis::Analyze(const Program& program,
                                                 const Catalog& catalog) {
  ProgramAnalysis analysis;
  Status s = analysis.Build(program, catalog);
  if (!s.ok()) return s;
  return analysis;
}

Status ProgramAnalysis::Build(const Program& program, const Catalog& catalog) {
  if (program.rules.empty()) {
    return Status::InvalidArgument("program has no rules");
  }
  DCD_RETURN_IF_ERROR(CollectPredicates(program, catalog));
  ComputeSccs(program);
  DCD_RETURN_IF_ERROR(ClassifyRules(program));
  DCD_RETURN_IF_ERROR(CheckSafety(program));
  DCD_RETURN_IF_ERROR(CheckAggregates(program));
  DCD_RETURN_IF_ERROR(InferTypes(program));
  return Status::OK();
}

Status ProgramAnalysis::CollectPredicates(const Program& program,
                                          const Catalog& catalog) {
  auto note_usage = [&](const std::string& name, size_t arity,
                        int line) -> Status {
    auto [it, inserted] = predicates_.try_emplace(name);
    PredicateInfo& info = it->second;
    if (inserted) {
      info.name = name;
      info.arity = static_cast<uint32_t>(arity);
      info.is_edb = true;  // Demoted to IDB when seen as a head.
    } else if (info.arity != arity) {
      return Status::InvalidArgument(
          "predicate '" + name + "' used with arity " + std::to_string(arity) +
          " and " + std::to_string(info.arity) + " (line " +
          std::to_string(line) + ")");
    }
    return Status::OK();
  };

  for (const Rule& rule : program.rules) {
    DCD_RETURN_IF_ERROR(
        note_usage(rule.head.predicate, rule.head.args.size(), rule.line));
    predicates_[rule.head.predicate].is_edb = false;
    for (const BodyLiteral& lit : rule.body) {
      if (lit.kind != BodyLiteral::Kind::kAtom) continue;
      DCD_RETURN_IF_ERROR(
          note_usage(lit.atom.predicate, lit.atom.args.size(), rule.line));
    }
  }

  // EDB predicates must exist in the catalog with matching arity; pick up
  // their column types.
  for (auto& [name, info] : predicates_) {
    if (!info.is_edb) continue;
    const Relation* rel = catalog.Find(name);
    if (rel == nullptr) {
      return Status::NotFound("base relation '" + name +
                              "' is not loaded in the catalog");
    }
    if (rel->arity() != info.arity) {
      return Status::InvalidArgument(
          "base relation '" + name + "' has arity " +
          std::to_string(rel->arity()) + " but rules use arity " +
          std::to_string(info.arity));
    }
    info.column_types.resize(info.arity);
    for (uint32_t c = 0; c < info.arity; ++c) {
      info.column_types[c] = rel->schema().type(c);
    }
  }

  for (const std::string& name : program.inputs) {
    auto it = predicates_.find(name);
    if (it == predicates_.end()) {
      return Status::InvalidArgument(".input predicate '" + name +
                                     "' is never used");
    }
    if (!it->second.is_edb) {
      return Status::InvalidArgument(".input predicate '" + name +
                                     "' is derived by rules");
    }
  }
  for (const std::string& name : program.outputs) {
    if (predicates_.count(name) == 0) {
      return Status::InvalidArgument(".output predicate '" + name +
                                     "' is never defined");
    }
  }
  return Status::OK();
}

void ProgramAnalysis::ComputeSccs(const Program& program) {
  // Dependency graph: head -> body predicate ("head depends on body").
  // Tarjan emits SCCs dependencies-first, which is evaluation order.
  std::vector<std::string> names;
  std::map<std::string, int> id_of;
  for (const auto& [name, info] : predicates_) {
    id_of[name] = static_cast<int>(names.size());
    names.push_back(name);
  }
  const int n = static_cast<int>(names.size());
  std::vector<std::set<int>> adj(n);
  for (const Rule& rule : program.rules) {
    int h = id_of[rule.head.predicate];
    for (const BodyLiteral& lit : rule.body) {
      if (lit.kind != BodyLiteral::Kind::kAtom) continue;
      adj[h].insert(id_of[lit.atom.predicate]);
    }
  }

  // Iterative Tarjan (explicit stack; programs can be deep in theory).
  std::vector<int> index(n, -1), lowlink(n, 0);
  std::vector<bool> on_stack(n, false);
  std::vector<int> stack;
  int next_index = 0;

  struct Frame {
    int v;
    std::set<int>::const_iterator it;
  };

  for (int start = 0; start < n; ++start) {
    if (index[start] != -1) continue;
    std::vector<Frame> frames;
    frames.push_back({start, adj[start].begin()});
    index[start] = lowlink[start] = next_index++;
    stack.push_back(start);
    on_stack[start] = true;

    while (!frames.empty()) {
      Frame& frame = frames.back();
      int v = frame.v;
      if (frame.it != adj[v].end()) {
        int w = *frame.it;
        ++frame.it;
        if (index[w] == -1) {
          index[w] = lowlink[w] = next_index++;
          stack.push_back(w);
          on_stack[w] = true;
          frames.push_back({w, adj[w].begin()});
        } else if (on_stack[w]) {
          lowlink[v] = std::min(lowlink[v], index[w]);
        }
        continue;
      }
      // v is finished.
      if (lowlink[v] == index[v]) {
        SccInfo scc;
        int w;
        do {
          w = stack.back();
          stack.pop_back();
          on_stack[w] = false;
          scc.predicates.push_back(names[w]);
          predicates_[names[w]].scc_id = static_cast<int>(sccs_.size());
        } while (w != v);
        sccs_.push_back(std::move(scc));
      }
      frames.pop_back();
      if (!frames.empty()) {
        int parent = frames.back().v;
        lowlink[parent] = std::min(lowlink[parent], lowlink[v]);
      }
    }
  }

  // Recursive if multi-predicate or self-looping.
  for (SccInfo& scc : sccs_) {
    scc.mutual = scc.predicates.size() > 1;
    if (scc.mutual) scc.recursive = true;
  }
  for (const Rule& rule : program.rules) {
    int h_scc = predicates_[rule.head.predicate].scc_id;
    for (const BodyLiteral& lit : rule.body) {
      if (lit.kind != BodyLiteral::Kind::kAtom) continue;
      if (predicates_[lit.atom.predicate].scc_id == h_scc) {
        sccs_[h_scc].recursive = true;
      }
    }
  }
  for (auto& [name, info] : predicates_) {
    info.recursive = sccs_[info.scc_id].recursive;
  }
}

Status ProgramAnalysis::ClassifyRules(const Program& program) {
  rule_infos_.resize(program.rules.size());
  for (size_t r = 0; r < program.rules.size(); ++r) {
    const Rule& rule = program.rules[r];
    RuleInfo& info = rule_infos_[r];
    info.head_scc = predicates_[rule.head.predicate].scc_id;
    SccInfo& scc = sccs_[info.head_scc];
    scc.rule_indices.push_back(static_cast<int>(r));
    if (rule.head.HasAggregate()) scc.has_aggregate = true;

    int atom_idx = -1;
    for (size_t b = 0; b < rule.body.size(); ++b) {
      const BodyLiteral& lit = rule.body[b];
      if (lit.kind != BodyLiteral::Kind::kAtom) continue;
      ++atom_idx;
      const bool same_scc =
          predicates_[lit.atom.predicate].scc_id == info.head_scc;
      if (lit.negated && same_scc) {
        // Negation through recursion: the stated open problem (§3).
        return Status::Unsupported(
            "rule at line " + std::to_string(rule.line) + ": '" +
            lit.atom.predicate +
            "' is negated inside its own recursive component; DCDatalog "
            "supports only stratified negation");
      }
      if (!lit.negated && scc.recursive && same_scc) {
        info.recursive_atoms.push_back(static_cast<int>(b));
      }
    }
    info.is_base = info.recursive_atoms.empty();
    if (info.recursive_atoms.size() >= 2) scc.nonlinear = true;
  }

  // Every recursive SCC needs at least one base rule, or its fixpoint
  // starts (and stays) empty — almost certainly a user mistake.
  for (const SccInfo& scc : sccs_) {
    if (!scc.recursive || scc.rule_indices.empty()) continue;
    bool has_base = false;
    for (int r : scc.rule_indices) {
      if (rule_infos_[r].is_base) has_base = true;
    }
    if (!has_base) {
      DCD_LOG(Warning) << "recursive component over '"
                       << scc.predicates.front()
                       << "' has no base rule; its fixpoint is empty";
    }
  }
  return Status::OK();
}

Status ProgramAnalysis::CheckSafety(const Program& program) {
  for (const Rule& rule : program.rules) {
    std::set<std::string> bound;
    for (const BodyLiteral& lit : rule.body) {
      if (lit.kind != BodyLiteral::Kind::kAtom || lit.negated) continue;
      for (const Term& t : lit.atom.args) {
        if (t.IsVariable()) bound.insert(t.var);
      }
    }
    // Propagate bindings through `Var = expr` equalities until fixpoint.
    bool changed = true;
    while (changed) {
      changed = false;
      for (const BodyLiteral& lit : rule.body) {
        if (lit.kind != BodyLiteral::Kind::kConstraint) continue;
        const Constraint& c = lit.constraint;
        if (c.op != CmpOp::kEq) continue;
        auto try_bind = [&](const Expr& var_side,
                            const Expr& expr_side) {
          if (var_side.op != ExprOp::kVar) return;
          if (bound.count(var_side.var) > 0) return;
          std::vector<std::string> vars;
          expr_side.CollectVars(&vars);
          for (const std::string& v : vars) {
            if (bound.count(v) == 0) return;
          }
          bound.insert(var_side.var);
          changed = true;
        };
        try_bind(*c.lhs, *c.rhs);
        try_bind(*c.rhs, *c.lhs);
      }
    }
    // All constraint variables must now be bound.
    for (const BodyLiteral& lit : rule.body) {
      if (lit.kind != BodyLiteral::Kind::kConstraint) continue;
      std::vector<std::string> vars;
      lit.constraint.lhs->CollectVars(&vars);
      lit.constraint.rhs->CollectVars(&vars);
      for (const std::string& v : vars) {
        if (bound.count(v) == 0) {
          return Status::InvalidArgument(
              "unsafe rule at line " + std::to_string(rule.line) +
              ": variable '" + v + "' in constraint is unbound");
        }
      }
    }
    // Negated atoms only test, never bind: their variables must be bound
    // by the positive part of the body.
    for (const BodyLiteral& lit : rule.body) {
      if (lit.kind != BodyLiteral::Kind::kAtom || !lit.negated) continue;
      for (const Term& t : lit.atom.args) {
        if (t.IsVariable() && bound.count(t.var) == 0) {
          return Status::InvalidArgument(
              "unsafe rule at line " + std::to_string(rule.line) +
              ": variable '" + t.var + "' occurs only under negation");
        }
      }
    }
    // All head variables must be bound; wildcards are meaningless in heads.
    for (const HeadArg& arg : rule.head.args) {
      for (const Term& t : arg.terms) {
        if (t.kind == TermKind::kWildcard) {
          return Status::InvalidArgument("wildcard in rule head at line " +
                                         std::to_string(rule.line));
        }
        if (t.IsVariable() && bound.count(t.var) == 0) {
          return Status::InvalidArgument(
              "unsafe rule at line " + std::to_string(rule.line) +
              ": head variable '" + t.var + "' is unbound");
        }
      }
    }
  }
  return Status::OK();
}

Status ProgramAnalysis::CheckAggregates(const Program& program) {
  // Per-predicate aggregate signature: (position, function) of the single
  // allowed aggregate argument, or none. All rules defining a predicate
  // must agree, or the merge semantics in Gather would be ambiguous.
  std::map<std::string, std::pair<int, AggFunc>> signature;
  for (const Rule& rule : program.rules) {
    int agg_pos = -1;
    AggFunc agg = AggFunc::kNone;
    for (size_t i = 0; i < rule.head.args.size(); ++i) {
      if (rule.head.args[i].agg == AggFunc::kNone) continue;
      if (agg_pos != -1) {
        return Status::Unsupported(
            "multiple aggregates in one head (line " +
            std::to_string(rule.line) + "); DCDatalog supports one");
      }
      agg_pos = static_cast<int>(i);
      agg = rule.head.args[i].agg;
    }
    auto [it, inserted] =
        signature.try_emplace(rule.head.predicate, agg_pos, agg);
    if (!inserted && it->second != std::make_pair(agg_pos, agg)) {
      return Status::InvalidArgument(
          "rules for '" + rule.head.predicate +
          "' disagree on aggregate position/function (line " +
          std::to_string(rule.line) + ")");
    }
    // The aggregate must be the last argument: the engine treats the
    // leading arguments as the group-by key prefix.
    if (agg_pos != -1 &&
        agg_pos != static_cast<int>(rule.head.args.size()) - 1) {
      return Status::Unsupported(
          "aggregate must be the last head argument (line " +
          std::to_string(rule.line) + ")");
    }
  }
  return Status::OK();
}

Status ProgramAnalysis::InferTypes(const Program& program) {
  // Fixpoint propagation over the int ⊑ double lattice, with strings apart.
  // Starts from EDB schemas; defaults any still-unknown column to int.
  std::map<std::string, std::vector<int>> types;
  for (const auto& [name, info] : predicates_) {
    std::vector<int> cols(info.arity, kUnknown);
    if (info.is_edb) {
      for (uint32_t c = 0; c < info.arity; ++c) {
        cols[c] = static_cast<int>(info.column_types[c]);
      }
    }
    types[name] = std::move(cols);
  }

  auto term_type = [&](const Term& t,
                       const std::map<std::string, int>& var_types) -> int {
    if (t.kind == TermKind::kConstant) {
      return static_cast<int>(t.constant.type);
    }
    if (t.IsVariable()) {
      auto it = var_types.find(t.var);
      if (it != var_types.end()) return it->second;
    }
    return kUnknown;
  };

  std::function<int(const Expr&, const std::map<std::string, int>&)>
      expr_type = [&](const Expr& e,
                      const std::map<std::string, int>& var_types) -> int {
    switch (e.op) {
      case ExprOp::kConst:
        return static_cast<int>(e.constant.type);
      case ExprOp::kVar: {
        auto it = var_types.find(e.var);
        return it == var_types.end() ? kUnknown : it->second;
      }
      case ExprOp::kNeg:
        return expr_type(*e.lhs, var_types);
      default: {
        int l = expr_type(*e.lhs, var_types);
        int r = expr_type(*e.rhs, var_types);
        if (l == static_cast<int>(ColumnType::kDouble) ||
            r == static_cast<int>(ColumnType::kDouble)) {
          return static_cast<int>(ColumnType::kDouble);
        }
        if (l == kUnknown || r == kUnknown) return kUnknown;
        return static_cast<int>(ColumnType::kInt);
      }
    }
  };

  bool conflict = false;
  for (int round = 0; round < 16; ++round) {
    bool changed = false;
    for (const Rule& rule : program.rules) {
      // Variable types within this rule, from body atom positions.
      std::map<std::string, int> var_types;
      for (const BodyLiteral& lit : rule.body) {
        if (lit.kind != BodyLiteral::Kind::kAtom) continue;
        const std::vector<int>& cols = types[lit.atom.predicate];
        for (size_t i = 0; i < lit.atom.args.size(); ++i) {
          const Term& t = lit.atom.args[i];
          if (!t.IsVariable()) continue;
          int& vt = var_types.try_emplace(t.var, kUnknown).first->second;
          vt = JoinType(vt, cols[i], &conflict);
        }
      }
      // Assignment constraints refine variable types (a few passes handle
      // chains like K = C / D after C got its type).
      for (int pass = 0; pass < 4; ++pass) {
        for (const BodyLiteral& lit : rule.body) {
          if (lit.kind != BodyLiteral::Kind::kConstraint) continue;
          const Constraint& c = lit.constraint;
          if (c.op != CmpOp::kEq) continue;
          if (c.lhs->op == ExprOp::kVar) {
            int t = expr_type(*c.rhs, var_types);
            int& vt =
                var_types.try_emplace(c.lhs->var, kUnknown).first->second;
            vt = JoinType(vt, t, &conflict);
          }
          if (c.rhs->op == ExprOp::kVar) {
            int t = expr_type(*c.lhs, var_types);
            int& vt =
                var_types.try_emplace(c.rhs->var, kUnknown).first->second;
            vt = JoinType(vt, t, &conflict);
          }
        }
      }
      // Flow head argument types into the predicate's columns.
      std::vector<int>& head_cols = types[rule.head.predicate];
      for (size_t i = 0; i < rule.head.args.size(); ++i) {
        const HeadArg& arg = rule.head.args[i];
        int t;
        switch (arg.agg) {
          case AggFunc::kCount:
            t = static_cast<int>(ColumnType::kInt);
            break;
          case AggFunc::kSum:
            t = term_type(arg.terms[1], var_types);
            break;
          default:
            t = term_type(arg.terms[0], var_types);
            break;
        }
        int joined = JoinType(head_cols[i], t, &conflict);
        if (joined != head_cols[i]) {
          head_cols[i] = joined;
          changed = true;
        }
      }
      if (conflict) {
        return Status::InvalidArgument(
            "type conflict (string vs numeric) in rule at line " +
            std::to_string(rule.line));
      }
    }
    if (!changed) break;
  }

  for (auto& [name, info] : predicates_) {
    if (info.is_edb) continue;
    info.column_types.resize(info.arity);
    for (uint32_t c = 0; c < info.arity; ++c) {
      int t = types[name][c];
      info.column_types[c] =
          t == kUnknown ? ColumnType::kInt : static_cast<ColumnType>(t);
    }
  }
  return Status::OK();
}

Schema ProgramAnalysis::SchemaOf(const std::string& predicate) const {
  const PredicateInfo& info = predicates_.at(predicate);
  std::vector<Column> cols;
  cols.reserve(info.arity);
  for (uint32_t c = 0; c < info.arity; ++c) {
    cols.push_back(Column{"c" + std::to_string(c), info.column_types[c]});
  }
  return Schema(std::move(cols));
}

std::string ProgramAnalysis::ToString() const {
  std::ostringstream os;
  os << "SCCs (evaluation order):\n";
  for (size_t i = 0; i < sccs_.size(); ++i) {
    const SccInfo& scc = sccs_[i];
    os << "  [" << i << "]";
    for (const auto& p : scc.predicates) os << " " << p;
    if (scc.recursive) os << " (recursive";
    if (scc.mutual) os << ", mutual";
    if (scc.nonlinear) os << ", non-linear";
    if (scc.recursive) os << ")";
    if (scc.has_aggregate) os << " [agg]";
    os << "\n";
  }
  return os.str();
}

}  // namespace dcdatalog
