#ifndef DCDATALOG_DATALOG_ANALYSIS_H_
#define DCDATALOG_DATALOG_ANALYSIS_H_

#include <map>
#include <string>
#include <vector>

#include "common/status.h"
#include "datalog/ast.h"
#include "storage/catalog.h"

namespace dcdatalog {

/// Facts the analysis derives about one predicate.
struct PredicateInfo {
  std::string name;
  uint32_t arity = 0;
  bool is_edb = false;    // Defined by base facts only (no rule head).
  int scc_id = -1;        // Index into ProgramAnalysis::sccs().
  bool recursive = false; // Member of a recursive SCC.
  std::vector<ColumnType> column_types;
};

/// Facts about one rule, aligned with Program::rules by index.
struct RuleInfo {
  int head_scc = -1;
  /// Body atom indices (into Rule::body) whose predicate lives in the same
  /// SCC as the head, i.e. the recursive goals.
  std::vector<int> recursive_atoms;
  bool is_base = false;  // No recursive goals: an exit/base rule of its SCC.
};

/// One strongly connected component of the predicate dependency graph —
/// the Predicate Connection Graph (PCG) of paper §3 / [8]. SCCs are stored
/// in evaluation (dependencies-first topological) order.
struct SccInfo {
  std::vector<std::string> predicates;
  std::vector<int> rule_indices;  // Rules whose head is in this SCC.
  bool recursive = false;
  bool mutual = false;     // More than one predicate (mutual recursion).
  bool nonlinear = false;  // Some rule has >= 2 recursive goals.
  bool has_aggregate = false;
};

/// Static analysis of a parsed program against a catalog of base relations:
/// builds the PCG, classifies recursion (linear / non-linear / mutual),
/// validates safety and aggregate usage, infers column types.
class ProgramAnalysis {
 public:
  /// Runs all checks. On success the returned analysis is immutable.
  static Result<ProgramAnalysis> Analyze(const Program& program,
                                         const Catalog& catalog);

  const std::vector<SccInfo>& sccs() const { return sccs_; }
  const std::vector<RuleInfo>& rule_infos() const { return rule_infos_; }

  const PredicateInfo& predicate(const std::string& name) const {
    return predicates_.at(name);
  }
  bool HasPredicate(const std::string& name) const {
    return predicates_.count(name) > 0;
  }
  const std::map<std::string, PredicateInfo>& predicates() const {
    return predicates_;
  }

  /// Schema for a derived predicate, built from inferred column types with
  /// synthesized column names.
  Schema SchemaOf(const std::string& predicate) const;

  std::string ToString() const;

 private:
  Status Build(const Program& program, const Catalog& catalog);
  Status CollectPredicates(const Program& program, const Catalog& catalog);
  void ComputeSccs(const Program& program);
  Status ClassifyRules(const Program& program);
  Status CheckSafety(const Program& program);
  Status CheckAggregates(const Program& program);
  Status InferTypes(const Program& program);

  std::map<std::string, PredicateInfo> predicates_;
  std::vector<SccInfo> sccs_;
  std::vector<RuleInfo> rule_infos_;
};

}  // namespace dcdatalog

#endif  // DCDATALOG_DATALOG_ANALYSIS_H_
