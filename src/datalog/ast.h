#ifndef DCDATALOG_DATALOG_AST_H_
#define DCDATALOG_DATALOG_AST_H_

#include <memory>
#include <string>
#include <vector>

#include "common/value.h"

namespace dcdatalog {

/// A term in an atom: a variable (`X`), a constant (`42`, `3.14`, `"bob"`),
/// or the wildcard `_`.
enum class TermKind : uint8_t { kVariable, kConstant, kWildcard };

struct Term {
  TermKind kind = TermKind::kWildcard;
  std::string var;  // kVariable
  Value constant;   // kConstant

  static Term Variable(std::string name) {
    Term t;
    t.kind = TermKind::kVariable;
    t.var = std::move(name);
    return t;
  }
  static Term Constant(Value v) {
    Term t;
    t.kind = TermKind::kConstant;
    t.constant = v;
    return t;
  }
  static Term Wildcard() { return Term{}; }

  bool IsVariable() const { return kind == TermKind::kVariable; }

  std::string ToString() const;
};

/// Arithmetic expression tree for constraints and assignments in rule
/// bodies (e.g. `C = C1 + C2`, `K = 0.85 * (C / D)`).
enum class ExprOp : uint8_t {
  kVar,
  kConst,
  kAdd,
  kSub,
  kMul,
  kDiv,
  kNeg,
  kToDouble,  // Planner-inserted int → double conversion; never parsed.
};

struct Expr {
  ExprOp op = ExprOp::kConst;
  std::string var;  // kVar
  Value constant;   // kConst
  std::unique_ptr<Expr> lhs;
  std::unique_ptr<Expr> rhs;

  static std::unique_ptr<Expr> Var(std::string name);
  static std::unique_ptr<Expr> Const(Value v);
  static std::unique_ptr<Expr> Binary(ExprOp op, std::unique_ptr<Expr> l,
                                      std::unique_ptr<Expr> r);
  static std::unique_ptr<Expr> Negate(std::unique_ptr<Expr> e);

  std::unique_ptr<Expr> Clone() const;

  /// Collects variable names referenced by the expression into `out`.
  void CollectVars(std::vector<std::string>* out) const;

  std::string ToString() const;
};

/// Comparison operators for body constraints.
enum class CmpOp : uint8_t { kEq, kNe, kLt, kLe, kGt, kGe };

const char* CmpOpName(CmpOp op);

/// A body constraint `lhs op rhs`. When op is kEq and one side is a single
/// variable not bound elsewhere, the planner turns it into an assignment
/// that binds the variable; otherwise it filters.
struct Constraint {
  CmpOp op = CmpOp::kEq;
  std::unique_ptr<Expr> lhs;
  std::unique_ptr<Expr> rhs;

  Constraint Clone() const;
  std::string ToString() const;
};

/// A positive predicate atom `p(t1, ..., tk)` in a rule body or head.
struct Atom {
  std::string predicate;
  std::vector<Term> args;

  std::string ToString() const;
};

/// One element of a rule body: an atom (possibly negated) or a constraint.
/// Negation is stratified: the analysis rejects negation through recursion
/// (the paper's engine leaves that as an open problem), but negating a
/// predicate from an earlier stratum is supported as an anti-join.
struct BodyLiteral {
  enum class Kind : uint8_t { kAtom, kConstraint } kind = Kind::kAtom;
  Atom atom;
  bool negated = false;  // kAtom only.
  Constraint constraint;

  /// Deep copy (BodyLiteral is move-only because Constraint owns an
  /// expression tree).
  BodyLiteral Clone() const;

  std::string ToString() const;
};

/// Aggregate functions allowed in rule heads (paper §2.1, §6.2.1). These are
/// the monotonic aggregates of Mazuran et al.; min/max aggregate a value
/// per group, count/sum additionally carry a contributor key so each
/// contributor's latest value can be replaced (the PageRank pattern).
enum class AggFunc : uint8_t { kNone, kMin, kMax, kCount, kSum };

const char* AggFuncName(AggFunc agg);

/// One head argument: a plain term (group-by column) or an aggregate.
///  * min<Z>, max<Z>        → agg terms = {Z}
///  * count<X>              → agg terms = {X}      (X = contributor)
///  * sum<(Y, K)>           → agg terms = {Y, K}   (Y = contributor, K = value)
struct HeadArg {
  AggFunc agg = AggFunc::kNone;
  std::vector<Term> terms;  // size 1, except sum which has 2.

  const Term& term() const { return terms[0]; }
  std::string ToString() const;
};

struct RuleHead {
  std::string predicate;
  std::vector<HeadArg> args;

  bool HasAggregate() const {
    for (const auto& a : args) {
      if (a.agg != AggFunc::kNone) return true;
    }
    return false;
  }

  std::string ToString() const;
};

struct Rule {
  RuleHead head;
  std::vector<BodyLiteral> body;
  int line = 0;  // Source line for diagnostics.

  Rule Clone() const;

  /// Number of body atoms (excludes constraints).
  size_t NumAtoms() const;

  std::string ToString() const;
};

/// A parsed Datalog program plus its directives.
struct Program {
  std::vector<Rule> rules;
  std::vector<std::string> inputs;   // `.input p` — must exist in catalog.
  std::vector<std::string> outputs;  // `.output p` — results to surface.

  Program Clone() const;

  std::string ToString() const;
};

}  // namespace dcdatalog

#endif  // DCDATALOG_DATALOG_AST_H_
