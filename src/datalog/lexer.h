#ifndef DCDATALOG_DATALOG_LEXER_H_
#define DCDATALOG_DATALOG_LEXER_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"

namespace dcdatalog {

enum class TokenKind : uint8_t {
  kIdent,     // lowercase-initial identifier: predicate or keyword
  kVariable,  // uppercase-initial identifier
  kWildcard,  // _
  kInt,
  kFloat,
  kString,    // "..." (unescaped content in text)
  kLParen,    // (
  kRParen,    // )
  kComma,     // ,
  kDot,       // .
  kImplies,   // :-
  kBang,      // !   (negation)
  kEq,        // =
  kNe,        // !=
  kLt,        // <
  kLe,        // <=
  kGt,        // >
  kGe,        // >=
  kPlus,
  kMinus,
  kStar,
  kSlash,
  kEof,
};

const char* TokenKindName(TokenKind kind);

struct Token {
  TokenKind kind = TokenKind::kEof;
  std::string text;
  int64_t int_value = 0;
  double float_value = 0.0;
  int line = 0;
};

/// Tokenizes a Datalog program. Comments: `//` or `%` to end of line and
/// `/* ... */` blocks.
Result<std::vector<Token>> Tokenize(std::string_view source);

}  // namespace dcdatalog

#endif  // DCDATALOG_DATALOG_LEXER_H_
