#include "datalog/lexer.h"

#include <cctype>
#include <cstdlib>

namespace dcdatalog {

const char* TokenKindName(TokenKind kind) {
  switch (kind) {
    case TokenKind::kIdent:
      return "identifier";
    case TokenKind::kVariable:
      return "variable";
    case TokenKind::kWildcard:
      return "_";
    case TokenKind::kInt:
      return "integer";
    case TokenKind::kFloat:
      return "float";
    case TokenKind::kString:
      return "string";
    case TokenKind::kLParen:
      return "(";
    case TokenKind::kRParen:
      return ")";
    case TokenKind::kComma:
      return ",";
    case TokenKind::kDot:
      return ".";
    case TokenKind::kImplies:
      return ":-";
    case TokenKind::kBang:
      return "!";
    case TokenKind::kEq:
      return "=";
    case TokenKind::kNe:
      return "!=";
    case TokenKind::kLt:
      return "<";
    case TokenKind::kLe:
      return "<=";
    case TokenKind::kGt:
      return ">";
    case TokenKind::kGe:
      return ">=";
    case TokenKind::kPlus:
      return "+";
    case TokenKind::kMinus:
      return "-";
    case TokenKind::kStar:
      return "*";
    case TokenKind::kSlash:
      return "/";
    case TokenKind::kEof:
      return "end of input";
  }
  return "?";
}

namespace {

bool IsIdentChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

}  // namespace

Result<std::vector<Token>> Tokenize(std::string_view src) {
  std::vector<Token> tokens;
  size_t i = 0;
  int line = 1;
  const size_t n = src.size();

  auto make = [&](TokenKind kind, std::string text = "") {
    Token t;
    t.kind = kind;
    t.text = std::move(text);
    t.line = line;
    tokens.push_back(std::move(t));
  };

  while (i < n) {
    char c = src[i];
    if (c == '\n') {
      ++line;
      ++i;
      continue;
    }
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++i;
      continue;
    }
    // Comments.
    if (c == '%' || (c == '/' && i + 1 < n && src[i + 1] == '/')) {
      while (i < n && src[i] != '\n') ++i;
      continue;
    }
    if (c == '/' && i + 1 < n && src[i + 1] == '*') {
      i += 2;
      while (i + 1 < n && !(src[i] == '*' && src[i + 1] == '/')) {
        if (src[i] == '\n') ++line;
        ++i;
      }
      if (i + 1 >= n) {
        return Status::ParseError("unterminated block comment at line " +
                                  std::to_string(line));
      }
      i += 2;
      continue;
    }
    // Identifiers / variables / wildcard.
    if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
      size_t start = i;
      while (i < n && IsIdentChar(src[i])) ++i;
      std::string text(src.substr(start, i - start));
      if (text == "_") {
        make(TokenKind::kWildcard, text);
      } else if (std::isupper(static_cast<unsigned char>(text[0])) ||
                 text[0] == '_') {
        make(TokenKind::kVariable, text);
      } else {
        make(TokenKind::kIdent, text);
      }
      continue;
    }
    // Numbers.
    if (std::isdigit(static_cast<unsigned char>(c))) {
      size_t start = i;
      bool is_float = false;
      while (i < n && std::isdigit(static_cast<unsigned char>(src[i]))) ++i;
      // A '.' is a decimal point only when followed by a digit; otherwise
      // it terminates the rule ("...arc(X, 3)." parses correctly).
      if (i + 1 < n && src[i] == '.' &&
          std::isdigit(static_cast<unsigned char>(src[i + 1]))) {
        is_float = true;
        ++i;
        while (i < n && std::isdigit(static_cast<unsigned char>(src[i]))) ++i;
      }
      if (i < n && (src[i] == 'e' || src[i] == 'E')) {
        size_t j = i + 1;
        if (j < n && (src[j] == '+' || src[j] == '-')) ++j;
        if (j < n && std::isdigit(static_cast<unsigned char>(src[j]))) {
          is_float = true;
          i = j;
          while (i < n && std::isdigit(static_cast<unsigned char>(src[i])))
            ++i;
        }
      }
      std::string text(src.substr(start, i - start));
      Token t;
      t.line = line;
      t.text = text;
      if (is_float) {
        t.kind = TokenKind::kFloat;
        t.float_value = std::strtod(text.c_str(), nullptr);
      } else {
        t.kind = TokenKind::kInt;
        t.int_value = std::strtoll(text.c_str(), nullptr, 10);
      }
      tokens.push_back(std::move(t));
      continue;
    }
    // Strings.
    if (c == '"') {
      size_t start = ++i;
      while (i < n && src[i] != '"' && src[i] != '\n') ++i;
      if (i >= n || src[i] != '"') {
        return Status::ParseError("unterminated string at line " +
                                  std::to_string(line));
      }
      make(TokenKind::kString, std::string(src.substr(start, i - start)));
      ++i;
      continue;
    }
    // Operators and punctuation.
    switch (c) {
      case '(':
        make(TokenKind::kLParen);
        ++i;
        break;
      case ')':
        make(TokenKind::kRParen);
        ++i;
        break;
      case ',':
        make(TokenKind::kComma);
        ++i;
        break;
      case '.':
        make(TokenKind::kDot);
        ++i;
        break;
      case '+':
        make(TokenKind::kPlus);
        ++i;
        break;
      case '-':
        make(TokenKind::kMinus);
        ++i;
        break;
      case '*':
        make(TokenKind::kStar);
        ++i;
        break;
      case '/':
        make(TokenKind::kSlash);
        ++i;
        break;
      case '=':
        make(TokenKind::kEq);
        ++i;
        break;
      case ':':
        if (i + 1 < n && src[i + 1] == '-') {
          make(TokenKind::kImplies);
          i += 2;
        } else {
          return Status::ParseError("stray ':' at line " +
                                    std::to_string(line));
        }
        break;
      case '!':
        if (i + 1 < n && src[i + 1] == '=') {
          make(TokenKind::kNe);
          i += 2;
        } else {
          make(TokenKind::kBang);
          ++i;
        }
        break;
      case '<':
        if (i + 1 < n && src[i + 1] == '=') {
          make(TokenKind::kLe);
          i += 2;
        } else {
          make(TokenKind::kLt);
          ++i;
        }
        break;
      case '>':
        if (i + 1 < n && src[i + 1] == '=') {
          make(TokenKind::kGe);
          i += 2;
        } else {
          make(TokenKind::kGt);
          ++i;
        }
        break;
      default:
        return Status::ParseError(std::string("unexpected character '") + c +
                                  "' at line " + std::to_string(line));
    }
  }
  make(TokenKind::kEof);
  return tokens;
}

}  // namespace dcdatalog
