#ifndef DCDATALOG_DATALOG_PARSER_H_
#define DCDATALOG_DATALOG_PARSER_H_

#include <string_view>

#include "common/status.h"
#include "common/string_dict.h"
#include "datalog/ast.h"

namespace dcdatalog {

/// Parses a Datalog program in the DCDatalog dialect:
///
///   .input arc
///   .output tc
///   tc(X, Y) :- arc(X, Y).
///   tc(X, Y) :- tc(X, Z), arc(Z, Y).
///   sp(T, min<C>) :- sp(F, C1), warc(F, T, C2), C = C1 + C2.
///   rank(X, sum<(Y, K)>) :- rank(Y, C), matrix(Y, X, D), K = 0.85 * (C / D).
///
/// Variables are uppercase-initial, predicates lowercase-initial, `_` is a
/// wildcard. Aggregates (`min`, `max`, `count`, `sum`) appear only in rule
/// heads. String constants are interned into `dict`. Negation is not part
/// of the dialect (the paper's engine does not support it in recursion).
Result<Program> ParseProgram(std::string_view source, StringDict* dict);

}  // namespace dcdatalog

#endif  // DCDATALOG_DATALOG_PARSER_H_
