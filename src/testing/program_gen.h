#ifndef DCDATALOG_TESTING_PROGRAM_GEN_H_
#define DCDATALOG_TESTING_PROGRAM_GEN_H_

#include <cstdint>
#include <string>
#include <vector>

#include "core/dcdatalog.h"
#include "graph/graph.h"
#include "storage/updates.h"

namespace dcdatalog {
namespace testing_gen {

/// Knobs for the random program generator. Everything is deterministic in
/// `seed`: the same options always yield the same program and EDB.
struct GenOptions {
  uint64_t seed = 0;
  /// How many IDB "blocks" to stack (each block defines one predicate —
  /// two for the mutual-recursion family — possibly on top of earlier
  /// ones). The actual count is drawn from [1, max_blocks].
  uint32_t max_blocks = 4;
  /// Upper bound on EDB graph size; actual sizes are drawn below it.
  uint64_t max_vertices = 60;
  bool allow_aggregates = true;
  bool allow_nonlinear = true;
  bool allow_negation = true;
  bool allow_mutual = true;
  /// When non-zero, the case also carries a streaming-update script of
  /// [1, max_update_batches] EDB batches mixing fresh-edge inserts,
  /// duplicate inserts, deletes of live edges, deletes of absent edges, and
  /// insert-then-delete pairs within one batch (see GenerateCase).
  uint32_t max_update_batches = 0;
  /// Upper bound on ops per generated batch (actual counts drawn below it;
  /// empty batches are allowed and occasionally generated on purpose).
  uint32_t max_update_ops = 8;
};

/// One generated differential-test case: a Datalog program over a random
/// EDB graph, plus the list of derived predicates whose extensions the
/// harness diffs against the reference oracle.
///
/// The graph is loaded twice — as `arc(src, dst)` and, with its random
/// weights, as `warc(src, dst, w)` — so generated rules may draw on either
/// shape; programs reference whichever subset they need.
struct FuzzCase {
  uint64_t seed = 0;
  std::string program;               // Datalog text, one rule per line.
  Graph graph;                       // EDB; weights already assigned.
  std::vector<std::string> outputs;  // Derived predicates to compare.
  /// Streaming-update batches against arc/warc, applied in order after the
  /// initial fixpoint (empty unless GenOptions::max_update_batches > 0).
  UpdateScript updates;

  /// Loads the EDB (arc + warc) and the program into `db`.
  Status Load(DCDatalog* db) const;

  /// Human-readable dump for failure reports.
  std::string ToString() const;
};

/// Generates one case. The result is guaranteed to parse and pass program
/// analysis against its own EDB (checked internally; the generator falls
/// back to a plain transitive-closure program in the never-observed event
/// that a template instantiation is rejected). All generated programs
/// terminate: value-generating arithmetic only appears under `min` with
/// non-negative increments, `max` only propagates values drawn from finite
/// domains, and `count` ranges over finite contributor sets.
FuzzCase GenerateCase(const GenOptions& options);

}  // namespace testing_gen
}  // namespace dcdatalog

#endif  // DCDATALOG_TESTING_PROGRAM_GEN_H_
