#include "testing/program_gen.h"

#include <algorithm>
#include <sstream>

#include "common/logging.h"
#include "common/random.h"
#include "datalog/analysis.h"
#include "datalog/parser.h"
#include "graph/generators.h"
#include "storage/catalog.h"

namespace dcdatalog {
namespace testing_gen {
namespace {

/// What a generated predicate looks like to later blocks.
struct PredShape {
  std::string name;
  uint32_t arity = 0;
  bool is_agg = false;  // (key, aggregated-value) pair.
};

/// Builds one program's rules. Each Emit* appends rule lines and registers
/// the new predicate(s); sources are drawn from the EDB (`arc`/`warc`) and
/// previously generated predicates, so stratification holds by
/// construction and every program terminates (see GenerateCase contract).
class ProgramBuilder {
 public:
  ProgramBuilder(Rng* rng, const GenOptions& opts, uint64_t num_vertices)
      : rng_(rng), opts_(opts), n_(std::max<uint64_t>(num_vertices, 1)) {}

  std::string Build() {
    const uint32_t blocks =
        1 + static_cast<uint32_t>(
                rng_->Uniform(std::max<uint32_t>(opts_.max_blocks, 1)));
    for (uint32_t b = 0; b < blocks; ++b) EmitBlock();
    std::ostringstream os;
    for (const std::string& line : lines_) os << line << "\n";
    return os.str();
  }

  std::vector<std::string> outputs() const {
    std::vector<std::string> out;
    for (const PredShape& p : derived_) out.push_back(p.name);
    return out;
  }

 private:
  std::string NextName() { return "p" + std::to_string(++name_counter_); }

  uint64_t VertexConst() { return rng_->Uniform(n_); }

  /// A binary relation usable in rule bodies: the EDB arc or any earlier
  /// plain binary derived predicate.
  std::string PickBinarySource() {
    std::vector<std::string> candidates = {"arc"};
    for (const PredShape& p : derived_) {
      if (!p.is_agg && p.arity == 2) candidates.push_back(p.name);
    }
    // Bias toward arc so recursion usually closes over the raw graph.
    if (rng_->Chance(0.6)) return "arc";
    return candidates[rng_->Uniform(candidates.size())];
  }

  void Register(std::string name, uint32_t arity, bool is_agg) {
    derived_.push_back(PredShape{std::move(name), arity, is_agg});
  }

  void EmitBlock() {
    // Family weights; re-draw when a family's preconditions fail.
    for (int attempt = 0; attempt < 8; ++attempt) {
      const double d = rng_->NextDouble();
      if (d < 0.25) {
        EmitTcLike();
        return;
      }
      if (d < 0.40 && opts_.allow_aggregates) {
        EmitCcLike();
        return;
      }
      if (d < 0.58 && opts_.allow_aggregates) {
        EmitMinDist();
        return;
      }
      if (d < 0.68) {
        EmitReachLike();
        return;
      }
      if (d < 0.76 && opts_.allow_aggregates) {
        EmitCount();
        return;
      }
      if (d < 0.92 && !derived_.empty()) {
        EmitFilterJoin();
        return;
      }
      if (opts_.allow_mutual) {
        EmitMutual();
        return;
      }
    }
    EmitTcLike();  // Always applicable.
  }

  /// Transitive-closure-shaped plain recursion: randomized argument order,
  /// optional constant filter, optional extra base/recursive rules, and
  /// (when allowed) the non-linear two-recursive-goal form.
  void EmitTcLike() {
    const std::string name = NextName();
    const std::string src = PickBinarySource();
    if (rng_->Chance(0.3)) {
      lines_.push_back(name + "(X, Y) :- " + src + "(Y, X).");
    } else if (rng_->Chance(0.3)) {
      lines_.push_back(name + "(X, Y) :- " + src + "(X, Y), X <= " +
                       std::to_string(VertexConst()) + ".");
    } else {
      lines_.push_back(name + "(X, Y) :- " + src + "(X, Y).");
    }
    if (rng_->Chance(0.25)) {
      lines_.push_back(name + "(X, Y) :- " + src + "(Y, X).");
    }
    if (opts_.allow_nonlinear && rng_->Chance(0.3)) {
      lines_.push_back(name + "(X, Y) :- " + name + "(X, Z), " + name +
                       "(Z, Y).");
    } else if (rng_->Chance(0.5)) {
      lines_.push_back(name + "(X, Y) :- " + name + "(X, Z), " + src +
                       "(Z, Y).");
    } else {
      lines_.push_back(name + "(X, Y) :- " + src + "(X, Z), " + name +
                       "(Z, Y).");
    }
    if (rng_->Chance(0.2)) {
      lines_.push_back(name + "(X, Y) :- " + name + "(X, Z), " + src +
                       "(Y, Z).");
    }
    Register(name, 2, false);
  }

  /// Unary reachability from a constant seed vertex.
  void EmitReachLike() {
    const std::string name = NextName();
    const std::string src = PickBinarySource();
    lines_.push_back(name + "(X) :- X = " + std::to_string(VertexConst()) +
                     ".");
    if (rng_->Chance(0.3)) {
      lines_.push_back(name + "(X) :- " + src + "(X, _), X <= " +
                       std::to_string(VertexConst()) + ".");
    }
    lines_.push_back(name + "(Y) :- " + name + "(X), " + src + "(X, Y).");
    Register(name, 1, false);
  }

  /// Shortest-distance-shaped min recursion with arithmetic on the value.
  /// Safe because increments are non-negative and min only accepts
  /// improvements, so the fixpoint exists despite cycles.
  void EmitMinDist() {
    const std::string name = NextName();
    const bool weighted = rng_->Chance(0.5);
    lines_.push_back(name + "(V, min<C>) :- V = " +
                     std::to_string(VertexConst()) + ", C = 0.");
    if (rng_->Chance(0.25)) {
      lines_.push_back(name + "(V, min<C>) :- V = " +
                       std::to_string(VertexConst()) + ", C = " +
                       std::to_string(rng_->Uniform(5)) + ".");
    }
    std::string rec;
    if (weighted) {
      rec = name + "(W, min<C>) :- " + name +
            "(V, C1), warc(V, W, C2), C = C1 + C2";
    } else {
      rec = name + "(W, min<C>) :- " + name + "(V, C1), " +
            PickBinarySource() + "(V, W), C = C1 + 1";
    }
    if (rng_->Chance(0.3)) {
      rec += ", C1 <= " + std::to_string(rng_->UniformRange(
                              1, static_cast<int64_t>(4 * n_)));
    }
    lines_.push_back(rec + ".");
    Register(name, 2, true);
  }

  /// Connected-components-shaped label propagation: min or max over a
  /// finite value domain, no arithmetic — terminates either way.
  void EmitCcLike() {
    const std::string name = NextName();
    const std::string func = rng_->Chance(0.5) ? "min" : "max";
    const std::string src = PickBinarySource();
    lines_.push_back(name + "(Y, " + func + "<Y>) :- " + src + "(Y, _).");
    if (rng_->Chance(0.7)) {
      lines_.push_back(name + "(Y, " + func + "<Y>) :- " + src + "(_, Y).");
    }
    lines_.push_back(name + "(Y, " + func + "<Z>) :- " + name + "(X, Z), " +
                     src + "(X, Y).");
    if (rng_->Chance(0.5)) {
      lines_.push_back(name + "(Y, " + func + "<Z>) :- " + name +
                       "(X, Z), " + src + "(Y, X).");
    }
    Register(name, 2, true);
  }

  /// Distinct-contributor count over one or two sources; the two-rule form
  /// derives the same contributor along different paths, stressing the
  /// contributor-dedup index.
  void EmitCount() {
    const std::string name = NextName();
    const std::string src = PickBinarySource();
    lines_.push_back(name + "(X, count<Y>) :- " + src + "(X, Y).");
    if (rng_->Chance(0.4)) {
      lines_.push_back(name + "(X, count<Y>) :- " + PickBinarySource() +
                       "(Y, X).");
    }
    Register(name, 2, true);
  }

  /// Non-recursive consumer of earlier strata: projection + comparison,
  /// joins, constant probes, aggregate-value filters, and (when allowed)
  /// stratified negation.
  void EmitFilterJoin() {
    const std::string name = NextName();
    std::vector<const PredShape*> binaries;
    std::vector<const PredShape*> aggs;
    for (const PredShape& p : derived_) {
      if (p.is_agg) {
        aggs.push_back(&p);
      } else if (p.arity == 2) {
        binaries.push_back(&p);
      }
    }
    if (!aggs.empty() && rng_->Chance(0.35)) {
      const PredShape& a = *aggs[rng_->Uniform(aggs.size())];
      lines_.push_back(name + "(X) :- " + a.name + "(X, C), C <= " +
                       std::to_string(rng_->UniformRange(
                           0, static_cast<int64_t>(4 * n_))) +
                       ".");
      Register(name, 1, false);
      return;
    }
    const std::string q =
        binaries.empty() ? "arc"
                         : binaries[rng_->Uniform(binaries.size())]->name;
    if (opts_.allow_negation && rng_->Chance(0.3)) {
      // q and r must differ for the negation to prune anything, but the
      // degenerate q == r case (always-empty result) is legal and worth
      // covering too.
      const std::string r =
          rng_->Chance(0.7) ? "arc"
                            : binaries.empty()
                                  ? "arc"
                                  : binaries[rng_->Uniform(binaries.size())]
                                        ->name;
      lines_.push_back(name + "(X, Y) :- " + q + "(X, Y), !" + r +
                       "(Y, X).");
      Register(name, 2, false);
      return;
    }
    const double d = rng_->NextDouble();
    if (d < 0.35) {
      lines_.push_back(name + "(X, Y) :- " + q + "(X, Y), X >= " +
                       std::to_string(VertexConst()) + ".");
      Register(name, 2, false);
    } else if (d < 0.7) {
      const std::string r =
          binaries.empty() ? "arc"
                           : binaries[rng_->Uniform(binaries.size())]->name;
      lines_.push_back(name + "(X, Z) :- " + q + "(X, Y), " + r +
                       "(Y, Z).");
      Register(name, 2, false);
    } else {
      lines_.push_back(name + "(Y) :- " + q + "(" +
                       std::to_string(VertexConst()) + ", Y).");
      Register(name, 1, false);
    }
  }

  /// Mutual recursion: odd/even-length path predicates over one source.
  void EmitMutual() {
    const std::string a = NextName();
    const std::string b = NextName();
    const std::string src = PickBinarySource();
    lines_.push_back(a + "(X, Y) :- " + src + "(X, Y).");
    lines_.push_back(b + "(X, Y) :- " + a + "(X, Z), " + src + "(Z, Y).");
    lines_.push_back(a + "(X, Y) :- " + b + "(X, Z), " + src + "(Z, Y).");
    Register(a, 2, false);
    Register(b, 2, false);
  }

  Rng* rng_;
  const GenOptions& opts_;
  const uint64_t n_;  // Vertex-domain size for constants.
  uint32_t name_counter_ = 0;
  std::vector<PredShape> derived_;
  std::vector<std::string> lines_;
};

Graph GenerateEdb(Rng* rng, uint64_t max_vertices) {
  const uint64_t cap = std::max<uint64_t>(max_vertices, 8);
  Graph g;
  const double d = rng->NextDouble();
  if (d < 0.05) {
    // Empty or near-empty EDB: the fixpoint must still converge cleanly.
    g = Graph(4 + rng->Uniform(4));
  } else if (d < 0.12) {
    // Self-loop-heavy graph (generators canonicalize self loops away, so
    // build it by hand).
    const uint64_t n = 4 + rng->Uniform(cap / 2);
    for (uint64_t v = 0; v < n; ++v) {
      if (rng->Chance(0.7)) g.AddEdge(v, v);
      if (rng->Chance(0.4)) g.AddEdge(v, rng->Uniform(n));
    }
  } else if (d < 0.35) {
    g = GenerateRmat(16 + rng->Uniform(cap / 2), rng->Next(),
                     2 + rng->Uniform(3));
  } else if (d < 0.55) {
    // Heights 2..3 with 2..6 children stay comfortably under ~200 vertices;
    // taller trees blow past max_vertices exponentially.
    g = GenerateRandomTree(2 + static_cast<uint32_t>(rng->Uniform(2)),
                           rng->Next());
  } else if (d < 0.67) {
    // Chain plus random shortcuts: long dependency paths → many rounds.
    const uint64_t n = 8 + rng->Uniform(cap);
    for (uint64_t v = 0; v + 1 < n; ++v) g.AddEdge(v, v + 1);
    for (uint64_t i = 0; i < n / 4; ++i) {
      g.AddEdge(rng->Uniform(n), rng->Uniform(n));
    }
  } else if (d < 0.74) {
    // Star/hub: all join work for the hub lands on one partition — the
    // adversarial input for morsel stealing. Small enough that the oracle's
    // closure stays cheap (closure is ~spokes² over the sinks).
    g = GenerateStarHub(8 + rng->Uniform(cap / 4), rng->Next());
  } else if (d < 0.8) {
    // Zipf out-degrees: several hot partitions of different sizes, so the
    // adaptive publish threshold (not just one pathological hub) is hit.
    const uint64_t n = 16 + rng->Uniform(cap / 2);
    g = GenerateZipfDegree(n, 0.8 + 0.8 * rng->NextDouble(),
                           2 + rng->Uniform(n / 3), rng->Next());
  } else {
    // Mean degree stays below ~5 so the naive oracle's quadratic joins
    // over (closures of) this graph remain cheap.
    g = GenerateGnp(16 + rng->Uniform(std::min<uint64_t>(cap, 48)),
                    0.03 + 0.05 * rng->NextDouble(), rng->Next());
  }
  AssignRandomWeights(&g, 16, rng->Next());
  return g;
}

/// Generates a streaming-update script over arc/warc. Op mix by design:
/// fresh-edge inserts (sometimes introducing new vertices), duplicate
/// inserts of live rows (set-semantics no-ops), deletes of live rows,
/// deletes of rows that never existed, and insert-then-delete of the same
/// row within one batch (nets to nothing). Live rows are tracked per
/// relation so delete-existing ops usually hit — "usually" is enough, a
/// stale pick just degrades into the delete-absent case.
UpdateScript GenerateUpdates(Rng* rng, const Graph& g,
                             const GenOptions& opts) {
  UpdateScript script;
  const uint64_t n = std::max<uint64_t>(g.num_vertices(), 4);
  std::vector<std::vector<uint64_t>> live_arc;
  std::vector<std::vector<uint64_t>> live_warc;
  for (const Edge& e : g.edges()) {
    live_arc.push_back({e.src, e.dst});
    live_warc.push_back({e.src, e.dst, static_cast<uint64_t>(e.weight)});
  }
  auto to_op = [](bool insert, const std::string& rel,
                  const std::vector<uint64_t>& row) {
    UpdateOp op;
    op.is_insert = insert;
    op.relation = rel;
    for (uint64_t v : row) op.values.push_back(std::to_string(v));
    return op;
  };
  const uint32_t batches =
      1 + static_cast<uint32_t>(
              rng->Uniform(std::max<uint32_t>(opts.max_update_batches, 1)));
  for (uint32_t b = 0; b < batches; ++b) {
    UpdateBatch batch;
    // May draw 0 ops: empty batches are a case worth streaming.
    const uint32_t ops = static_cast<uint32_t>(
        rng->Uniform(std::max<uint32_t>(opts.max_update_ops, 1) + 1));
    for (uint32_t o = 0; o < ops; ++o) {
      const bool warc = rng->Chance(0.3);
      const std::string rel = warc ? "warc" : "arc";
      auto& live = warc ? live_warc : live_arc;
      auto fresh_row = [&]() {
        std::vector<uint64_t> row = {rng->Uniform(n + 4),
                                     rng->Uniform(n + 4)};
        if (warc) row.push_back(1 + rng->Uniform(16));
        return row;
      };
      const double d = rng->NextDouble();
      if (d < 0.35) {
        std::vector<uint64_t> row = fresh_row();
        batch.ops.push_back(to_op(true, rel, row));
        live.push_back(std::move(row));
      } else if (d < 0.5 && !live.empty()) {
        batch.ops.push_back(
            to_op(true, rel, live[rng->Uniform(live.size())]));
      } else if (d < 0.75 && !live.empty()) {
        const size_t i = rng->Uniform(live.size());
        batch.ops.push_back(to_op(false, rel, live[i]));
        live.erase(live.begin() + static_cast<ptrdiff_t>(i));
      } else if (d < 0.9) {
        // Vertices past n+100 never occur in the EDB or earlier inserts.
        std::vector<uint64_t> row = {n + 100 + rng->Uniform(50),
                                     n + 100 + rng->Uniform(50)};
        if (warc) row.push_back(1 + rng->Uniform(16));
        batch.ops.push_back(to_op(false, rel, row));
      } else {
        const std::vector<uint64_t> row = fresh_row();
        batch.ops.push_back(to_op(true, rel, row));
        batch.ops.push_back(to_op(false, rel, row));
      }
    }
    script.batches.push_back(std::move(batch));
  }
  return script;
}

/// Parses and analyzes `program` against the case's own EDB.
bool Validates(const FuzzCase& c) {
  StringDict dict;
  auto parsed = ParseProgram(c.program, &dict);
  if (!parsed.ok()) return false;
  Catalog catalog;
  catalog.Put(c.graph.ToArcRelation("arc"));
  catalog.Put(c.graph.ToWeightedArcRelation("warc"));
  return ProgramAnalysis::Analyze(parsed.value(), catalog).ok();
}

}  // namespace

Status FuzzCase::Load(DCDatalog* db) const {
  db->AddGraph(graph, "arc");
  db->AddGraph(graph, "warc", /*weighted=*/true);
  return db->LoadProgramText(program);
}

std::string FuzzCase::ToString() const {
  std::ostringstream os;
  os << "FuzzCase{seed=" << seed << ", vertices=" << graph.num_vertices()
     << ", edges=" << graph.num_edges() << ", outputs=[";
  for (size_t i = 0; i < outputs.size(); ++i) {
    os << (i > 0 ? ", " : "") << outputs[i];
  }
  os << "]}\n" << program;
  if (!updates.batches.empty()) {
    os << "updates (" << updates.batches.size() << " batches):\n"
       << SerializeUpdateScript(updates);
  }
  return os.str();
}

FuzzCase GenerateCase(const GenOptions& options) {
  // Sub-seeded attempts: the templates are valid by construction, but if a
  // combination ever slips past them, fall back deterministically rather
  // than failing the harness.
  for (uint64_t attempt = 0; attempt < 5; ++attempt) {
    Rng rng(options.seed * 0x9e3779b97f4a7c15ULL + attempt + 1);
    FuzzCase c;
    c.seed = options.seed;
    c.graph = GenerateEdb(&rng, options.max_vertices);
    ProgramBuilder builder(&rng, options,
                           std::max<uint64_t>(c.graph.num_vertices(), 8));
    c.program = builder.Build();
    c.outputs = builder.outputs();
    if (Validates(c)) {
      if (options.max_update_batches > 0) {
        c.updates = GenerateUpdates(&rng, c.graph, options);
      }
      return c;
    }
    DCD_LOG(Warning) << "generated program failed analysis (seed "
                     << options.seed << ", attempt " << attempt
                     << "); retrying";
  }
  FuzzCase c;
  c.seed = options.seed;
  Rng rng(options.seed);
  c.graph = GenerateGnp(24, 0.08, rng.Next());
  AssignRandomWeights(&c.graph, 16, rng.Next());
  c.program =
      "p1(X, Y) :- arc(X, Y).\n"
      "p1(X, Y) :- p1(X, Z), arc(Z, Y).\n";
  c.outputs = {"p1"};
  if (options.max_update_batches > 0) {
    c.updates = GenerateUpdates(&rng, c.graph, options);
  }
  DCD_CHECK(Validates(c));
  return c;
}

}  // namespace testing_gen
}  // namespace dcdatalog
