#include "testing/fuzz_runner.h"

#include <algorithm>
#include <sstream>

#include "common/string_dict.h"
#include "core/dcdatalog.h"
#include "core/reference.h"
#include "datalog/parser.h"
#include "storage/catalog.h"
#include "storage/updates.h"

namespace dcdatalog {
namespace testing_gen {
namespace {

std::string RowToString(const std::vector<uint64_t>& row) {
  std::ostringstream os;
  os << "(";
  for (size_t i = 0; i < row.size(); ++i) {
    os << (i > 0 ? ", " : "") << static_cast<int64_t>(row[i]);
  }
  os << ")";
  return os.str();
}

/// First few rows present in `a` but not in `b`, multiset-wise.
std::string MultisetExcess(const RowMultiset& a, const RowMultiset& b,
                           size_t limit) {
  RowMultiset excess;
  std::set_difference(a.begin(), a.end(), b.begin(), b.end(),
                      std::back_inserter(excess));
  std::ostringstream os;
  for (size_t i = 0; i < excess.size() && i < limit; ++i) {
    os << " " << RowToString(excess[i]);
  }
  if (excess.size() > limit) os << " ... +" << (excess.size() - limit);
  return os.str();
}

}  // namespace

const char* OutcomeKindName(OutcomeKind kind) {
  switch (kind) {
    case OutcomeKind::kAgree:
      return "agree";
    case OutcomeKind::kMismatch:
      return "mismatch";
    case OutcomeKind::kEngineError:
      return "engine-error";
    case OutcomeKind::kReferenceError:
      return "reference-error";
    case OutcomeKind::kLoadError:
      return "load-error";
  }
  return "unknown";
}

RowMultiset SortedRows(const Relation& rel) {
  RowMultiset rows;
  rows.reserve(rel.size());
  for (uint64_t r = 0; r < rel.size(); ++r) {
    TupleRef row = rel.Row(r);
    rows.emplace_back(row.data, row.data + row.arity);
  }
  std::sort(rows.begin(), rows.end());
  return rows;
}

RunOutcome ComputeOracle(const FuzzCase& c, uint64_t max_rounds,
                         OracleRows* out) {
  // Independent parse over an independent catalog so the oracle shares no
  // state with the engine run (generated programs are all-integer, so the
  // fresh StringDict is moot).
  StringDict dict;
  auto parsed = ParseProgram(c.program, &dict);
  if (!parsed.ok()) {
    return RunOutcome{OutcomeKind::kLoadError, parsed.status().ToString()};
  }
  Catalog catalog;
  catalog.Put(c.graph.ToArcRelation("arc"));
  catalog.Put(c.graph.ToWeightedArcRelation("warc"));
  auto ref = ReferenceEvaluate(parsed.value(), catalog,
                               /*sum_epsilon=*/1e-9, max_rounds);
  if (!ref.ok()) {
    return RunOutcome{OutcomeKind::kReferenceError, ref.status().ToString()};
  }
  out->clear();
  for (const std::string& pred : c.outputs) {
    auto it = ref.value().find(pred);
    (*out)[pred] =
        it != ref.value().end() ? SortedRows(it->second) : RowMultiset{};
  }
  return RunOutcome{OutcomeKind::kAgree, ""};
}

RunOutcome RunEngineOnce(const FuzzCase& c, const RunConfig& config,
                         const OracleRows& oracle) {
  EngineOptions options;
  options.num_workers = config.num_workers;
  options.coordination = config.mode;
  options.merge_index_backend = config.merge_backend;
  options.pipeline_executor = config.pipeline;
  options.max_global_iterations = config.max_global_iterations;
  options.enable_steal = config.steal;
  if (config.steal) {
    // Fuzz-sized deltas never cross the production publish threshold; force
    // the morsel machinery to actually run (see RunConfig::steal).
    options.steal_min_backlog = 1;
    options.steal_morsel_tuples = 16;
  }
  DCDatalog db(options);
  Status load = c.Load(&db);
  if (!load.ok()) {
    return RunOutcome{OutcomeKind::kLoadError, load.ToString()};
  }
  auto run = db.Run();
  if (!run.ok()) {
    return RunOutcome{OutcomeKind::kEngineError, run.status().ToString()};
  }

  for (const std::string& pred : c.outputs) {
    const Relation* engine_rel = db.ResultFor(pred);
    auto it = oracle.find(pred);
    const RowMultiset got =
        engine_rel != nullptr ? SortedRows(*engine_rel) : RowMultiset{};
    static const RowMultiset kEmpty;
    const RowMultiset& want = it != oracle.end() ? it->second : kEmpty;
    if (got == want) continue;
    std::ostringstream os;
    os << "predicate '" << pred << "': engine has " << got.size()
       << " rows, reference has " << want.size() << ";";
    os << " engine-only:" << MultisetExcess(got, want, 5) << ";";
    os << " reference-only:" << MultisetExcess(want, got, 5);
    return RunOutcome{OutcomeKind::kMismatch, os.str()};
  }
  return RunOutcome{OutcomeKind::kAgree, ""};
}

RunOutcome RunEngineTraced(const FuzzCase& c, const RunConfig& config,
                           EvalStats* stats) {
  EngineOptions options;
  options.num_workers = config.num_workers;
  options.coordination = config.mode;
  options.merge_index_backend = config.merge_backend;
  options.pipeline_executor = config.pipeline;
  options.max_global_iterations = config.max_global_iterations;
  options.enable_steal = config.steal;
  if (config.steal) {
    // Fuzz-sized deltas never cross the production publish threshold; force
    // the morsel machinery to actually run (see RunConfig::steal).
    options.steal_min_backlog = 1;
    options.steal_morsel_tuples = 16;
  }
  options.enable_trace = true;
  DCDatalog db(options);
  Status load = c.Load(&db);
  if (!load.ok()) {
    return RunOutcome{OutcomeKind::kLoadError, load.ToString()};
  }
  auto run = db.Run();
  if (!run.ok()) {
    return RunOutcome{OutcomeKind::kEngineError, run.status().ToString()};
  }
  *stats = std::move(run).value();
  return RunOutcome{OutcomeKind::kAgree, ""};
}

RunOutcome RunCaseOnce(const FuzzCase& c, const RunConfig& config) {
  OracleRows oracle;
  RunOutcome ref = ComputeOracle(c, config.reference_max_rounds, &oracle);
  if (ref.kind != OutcomeKind::kAgree) return ref;
  return RunEngineOnce(c, config, oracle);
}

namespace {

/// Diffs every output predicate of `db` against reference results computed
/// over `oracle_catalog`; `when` labels the point in the update stream.
RunOutcome DiffAgainstReference(const FuzzCase& c, DCDatalog* db,
                                const Catalog& oracle_catalog,
                                uint64_t max_rounds, const std::string& when) {
  StringDict dict;
  auto parsed = ParseProgram(c.program, &dict);
  if (!parsed.ok()) {
    return RunOutcome{OutcomeKind::kLoadError, parsed.status().ToString()};
  }
  auto ref = ReferenceEvaluate(parsed.value(), oracle_catalog,
                               /*sum_epsilon=*/1e-9, max_rounds);
  if (!ref.ok()) {
    return RunOutcome{OutcomeKind::kReferenceError,
                      when + ": " + ref.status().ToString()};
  }
  for (const std::string& pred : c.outputs) {
    const Relation* engine_rel = db->ResultFor(pred);
    const RowMultiset got =
        engine_rel != nullptr ? SortedRows(*engine_rel) : RowMultiset{};
    auto it = ref.value().find(pred);
    const RowMultiset want =
        it != ref.value().end() ? SortedRows(it->second) : RowMultiset{};
    if (got == want) continue;
    std::ostringstream os;
    os << when << ": predicate '" << pred << "': engine has " << got.size()
       << " rows, reference has " << want.size() << ";";
    os << " engine-only:" << MultisetExcess(got, want, 5) << ";";
    os << " reference-only:" << MultisetExcess(want, got, 5);
    return RunOutcome{OutcomeKind::kMismatch, os.str()};
  }
  return RunOutcome{OutcomeKind::kAgree, ""};
}

}  // namespace

RunOutcome RunIncrementalCase(const FuzzCase& c, const RunConfig& config) {
  EngineOptions options;
  options.num_workers = config.num_workers;
  options.coordination = config.mode;
  options.merge_index_backend = config.merge_backend;
  options.pipeline_executor = config.pipeline;
  options.max_global_iterations = config.max_global_iterations;
  options.enable_steal = config.steal;
  if (config.steal) {
    // Fuzz-sized deltas never cross the production publish threshold; force
    // the morsel machinery to actually run (see RunConfig::steal).
    options.steal_min_backlog = 1;
    options.steal_morsel_tuples = 16;
  }
  DCDatalog db(options);
  Status load = c.Load(&db);
  if (!load.ok()) {
    return RunOutcome{OutcomeKind::kLoadError, load.ToString()};
  }
  auto begin = db.BeginIncremental();
  if (!begin.ok()) {
    return RunOutcome{OutcomeKind::kEngineError,
                      "BeginIncremental: " + begin.status().ToString()};
  }

  // The oracle's shadow EDB, advanced through the exact same netting code
  // the engine applies.
  Catalog oracle_catalog;
  oracle_catalog.Put(c.graph.ToArcRelation("arc"));
  oracle_catalog.Put(c.graph.ToWeightedArcRelation("warc"));
  StringDict oracle_dict;

  RunOutcome out = DiffAgainstReference(c, &db, oracle_catalog,
                                        config.reference_max_rounds,
                                        "initial fixpoint");
  if (out.kind != OutcomeKind::kAgree) return out;

  for (size_t b = 0; b < c.updates.batches.size(); ++b) {
    const std::string when = "after batch " + std::to_string(b);
    auto stats = db.ApplyUpdates(c.updates.batches[b]);
    if (!stats.ok()) {
      return RunOutcome{OutcomeKind::kEngineError,
                        when + ": " + stats.status().ToString()};
    }
    auto resolved =
        ResolveUpdateBatch(c.updates.batches[b], oracle_catalog, &oracle_dict);
    if (!resolved.ok()) {
      return RunOutcome{OutcomeKind::kLoadError,
                        when + ": " + resolved.status().ToString()};
    }
    auto deltas = NetOutBatch(resolved.value(), oracle_catalog);
    if (!deltas.ok()) {
      return RunOutcome{OutcomeKind::kLoadError,
                        when + ": " + deltas.status().ToString()};
    }
    Status applied = ApplyDeltasToCatalog(deltas.value(), &oracle_catalog);
    if (!applied.ok()) {
      return RunOutcome{OutcomeKind::kLoadError,
                        when + ": " + applied.ToString()};
    }
    out = DiffAgainstReference(c, &db, oracle_catalog,
                               config.reference_max_rounds, when);
    if (out.kind != OutcomeKind::kAgree) return out;
  }
  return RunOutcome{OutcomeKind::kAgree, ""};
}

}  // namespace testing_gen
}  // namespace dcdatalog
