#include "testing/fuzz_runner.h"

#include <algorithm>
#include <sstream>

#include "common/string_dict.h"
#include "core/dcdatalog.h"
#include "core/reference.h"
#include "datalog/parser.h"
#include "storage/catalog.h"

namespace dcdatalog {
namespace testing_gen {
namespace {

std::string RowToString(const std::vector<uint64_t>& row) {
  std::ostringstream os;
  os << "(";
  for (size_t i = 0; i < row.size(); ++i) {
    os << (i > 0 ? ", " : "") << static_cast<int64_t>(row[i]);
  }
  os << ")";
  return os.str();
}

/// First few rows present in `a` but not in `b`, multiset-wise.
std::string MultisetExcess(const RowMultiset& a, const RowMultiset& b,
                           size_t limit) {
  RowMultiset excess;
  std::set_difference(a.begin(), a.end(), b.begin(), b.end(),
                      std::back_inserter(excess));
  std::ostringstream os;
  for (size_t i = 0; i < excess.size() && i < limit; ++i) {
    os << " " << RowToString(excess[i]);
  }
  if (excess.size() > limit) os << " ... +" << (excess.size() - limit);
  return os.str();
}

}  // namespace

const char* OutcomeKindName(OutcomeKind kind) {
  switch (kind) {
    case OutcomeKind::kAgree:
      return "agree";
    case OutcomeKind::kMismatch:
      return "mismatch";
    case OutcomeKind::kEngineError:
      return "engine-error";
    case OutcomeKind::kReferenceError:
      return "reference-error";
    case OutcomeKind::kLoadError:
      return "load-error";
  }
  return "unknown";
}

RowMultiset SortedRows(const Relation& rel) {
  RowMultiset rows;
  rows.reserve(rel.size());
  for (uint64_t r = 0; r < rel.size(); ++r) {
    TupleRef row = rel.Row(r);
    rows.emplace_back(row.data, row.data + row.arity);
  }
  std::sort(rows.begin(), rows.end());
  return rows;
}

RunOutcome ComputeOracle(const FuzzCase& c, uint64_t max_rounds,
                         OracleRows* out) {
  // Independent parse over an independent catalog so the oracle shares no
  // state with the engine run (generated programs are all-integer, so the
  // fresh StringDict is moot).
  StringDict dict;
  auto parsed = ParseProgram(c.program, &dict);
  if (!parsed.ok()) {
    return RunOutcome{OutcomeKind::kLoadError, parsed.status().ToString()};
  }
  Catalog catalog;
  catalog.Put(c.graph.ToArcRelation("arc"));
  catalog.Put(c.graph.ToWeightedArcRelation("warc"));
  auto ref = ReferenceEvaluate(parsed.value(), catalog,
                               /*sum_epsilon=*/1e-9, max_rounds);
  if (!ref.ok()) {
    return RunOutcome{OutcomeKind::kReferenceError, ref.status().ToString()};
  }
  out->clear();
  for (const std::string& pred : c.outputs) {
    auto it = ref.value().find(pred);
    (*out)[pred] =
        it != ref.value().end() ? SortedRows(it->second) : RowMultiset{};
  }
  return RunOutcome{OutcomeKind::kAgree, ""};
}

RunOutcome RunEngineOnce(const FuzzCase& c, const RunConfig& config,
                         const OracleRows& oracle) {
  EngineOptions options;
  options.num_workers = config.num_workers;
  options.coordination = config.mode;
  options.merge_index_backend = config.merge_backend;
  options.pipeline_executor = config.pipeline;
  options.max_global_iterations = config.max_global_iterations;
  DCDatalog db(options);
  Status load = c.Load(&db);
  if (!load.ok()) {
    return RunOutcome{OutcomeKind::kLoadError, load.ToString()};
  }
  auto run = db.Run();
  if (!run.ok()) {
    return RunOutcome{OutcomeKind::kEngineError, run.status().ToString()};
  }

  for (const std::string& pred : c.outputs) {
    const Relation* engine_rel = db.ResultFor(pred);
    auto it = oracle.find(pred);
    const RowMultiset got =
        engine_rel != nullptr ? SortedRows(*engine_rel) : RowMultiset{};
    static const RowMultiset kEmpty;
    const RowMultiset& want = it != oracle.end() ? it->second : kEmpty;
    if (got == want) continue;
    std::ostringstream os;
    os << "predicate '" << pred << "': engine has " << got.size()
       << " rows, reference has " << want.size() << ";";
    os << " engine-only:" << MultisetExcess(got, want, 5) << ";";
    os << " reference-only:" << MultisetExcess(want, got, 5);
    return RunOutcome{OutcomeKind::kMismatch, os.str()};
  }
  return RunOutcome{OutcomeKind::kAgree, ""};
}

RunOutcome RunEngineTraced(const FuzzCase& c, const RunConfig& config,
                           EvalStats* stats) {
  EngineOptions options;
  options.num_workers = config.num_workers;
  options.coordination = config.mode;
  options.merge_index_backend = config.merge_backend;
  options.pipeline_executor = config.pipeline;
  options.max_global_iterations = config.max_global_iterations;
  options.enable_trace = true;
  DCDatalog db(options);
  Status load = c.Load(&db);
  if (!load.ok()) {
    return RunOutcome{OutcomeKind::kLoadError, load.ToString()};
  }
  auto run = db.Run();
  if (!run.ok()) {
    return RunOutcome{OutcomeKind::kEngineError, run.status().ToString()};
  }
  *stats = std::move(run).value();
  return RunOutcome{OutcomeKind::kAgree, ""};
}

RunOutcome RunCaseOnce(const FuzzCase& c, const RunConfig& config) {
  OracleRows oracle;
  RunOutcome ref = ComputeOracle(c, config.reference_max_rounds, &oracle);
  if (ref.kind != OutcomeKind::kAgree) return ref;
  return RunEngineOnce(c, config, oracle);
}

}  // namespace testing_gen
}  // namespace dcdatalog
