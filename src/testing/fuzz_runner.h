#ifndef DCDATALOG_TESTING_FUZZ_RUNNER_H_
#define DCDATALOG_TESTING_FUZZ_RUNNER_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "common/options.h"
#include "core/engine.h"
#include "storage/relation.h"
#include "testing/program_gen.h"

namespace dcdatalog {
namespace testing_gen {

/// How one differential run ended.
enum class OutcomeKind : uint8_t {
  kAgree = 0,           // Engine and reference produced identical multisets.
  kMismatch,            // They disagree — the interesting case.
  kEngineError,         // Engine Run() returned a non-OK status.
  kReferenceError,      // The oracle itself failed (e.g. round limit).
  kLoadError,           // The case did not parse/analyze — generator bug.
};

const char* OutcomeKindName(OutcomeKind kind);

/// One engine configuration to diff against the reference.
struct RunConfig {
  CoordinationMode mode = CoordinationMode::kDws;
  uint32_t num_workers = 4;
  /// Merge-path index family (the backend axis): every generated case runs
  /// flat and btree against the same oracle, so the two backends stay
  /// multiset-equivalent across all rule families by construction.
  MergeIndexBackend merge_backend = MergeIndexBackend::kFlat;
  /// Rule-pipeline executor (the pipelines axis): cases run batch and tuple
  /// against the same oracle, so the vectorized executor and the
  /// tuple-at-a-time baseline stay multiset-equivalent by construction.
  PipelineExecutor pipeline = PipelineExecutor::kBatch;
  /// Morsel-stealing axis. When true the runner also forces the publish
  /// threshold and morsel size down (steal_min_backlog = 1, 16-tuple
  /// morsels) so fuzz-sized EDBs actually publish and claim morsels —
  /// production thresholds would make stealing a no-op at this scale.
  bool steal = true;
  /// Safety valve forwarded to EngineOptions so a termination-detection bug
  /// surfaces as kEngineError instead of spinning forever (the fork-based
  /// driver additionally wall-clock-kills true hangs).
  uint64_t max_global_iterations = 200000;
  /// Cap forwarded to ReferenceEvaluate.
  uint64_t reference_max_rounds = 100000;
};

struct RunOutcome {
  OutcomeKind kind = OutcomeKind::kAgree;
  /// Failure detail: status message, or a per-predicate diff excerpt.
  std::string detail;
};

/// Sorted multiset of rows, one entry per output predicate.
using RowMultiset = std::vector<std::vector<uint64_t>>;
using OracleRows = std::map<std::string, RowMultiset>;

/// Rows of `rel` as a sorted multiset. Deliberately NOT a set: a
/// partition-ownership violation (the same tuple owned by two workers)
/// materializes as a duplicated row, which set-comparison would mask.
RowMultiset SortedRows(const Relation& rel);

/// Evaluates `c` with the single-threaded reference interpreter and fills
/// `*out` with one sorted multiset per output predicate. The oracle is
/// configuration-independent, so the fuzz driver computes it once per case
/// and diffs every mode × worker-count engine run against the same rows.
/// Returns kAgree on success, kLoadError / kReferenceError otherwise.
RunOutcome ComputeOracle(const FuzzCase& c, uint64_t max_rounds,
                         OracleRows* out);

/// Evaluates `c` once with the parallel engine under `config` and compares
/// every output predicate's extension against `oracle` as sorted multisets.
/// Generated programs are all-integer, so comparison is exact — no
/// floating-point tolerance is needed.
RunOutcome RunEngineOnce(const FuzzCase& c, const RunConfig& config,
                         const OracleRows& oracle);

/// Evaluates `c` once with tracing forced on and fills `*stats` with the
/// run's EvalStats (trace events, drop counts, per-worker histograms). The
/// fuzz driver uses this to attach an execution trace to failing repros;
/// result rows are not compared. Returns kAgree when the run completed,
/// kLoadError / kEngineError otherwise (*stats is untouched then).
RunOutcome RunEngineTraced(const FuzzCase& c, const RunConfig& config,
                           EvalStats* stats);

/// Convenience wrapper: ComputeOracle + RunEngineOnce in one call, for
/// tests and single-shot use.
RunOutcome RunCaseOnce(const FuzzCase& c, const RunConfig& config);

/// Streaming-update differential run: evaluates `c` with BeginIncremental,
/// then applies `c.updates` batch by batch, comparing every output
/// predicate against a from-scratch reference recompute over the
/// accumulated EDB after EVERY batch (and after the initial fixpoint).
/// Unlike RunEngineOnce the oracle rows depend on the update stream, so
/// this computes them internally instead of taking precomputed rows; the
/// oracle EDB is maintained by the same NetOutBatch/ApplyDeltasToCatalog
/// code the engine uses, so both sides see identical relation contents.
/// A mismatch's detail names the batch index it first appeared after.
RunOutcome RunIncrementalCase(const FuzzCase& c, const RunConfig& config);

}  // namespace testing_gen
}  // namespace dcdatalog

#endif  // DCDATALOG_TESTING_FUZZ_RUNNER_H_
