#include "testing/minimizer.h"

#include <algorithm>
#include <sstream>

namespace dcdatalog {
namespace testing_gen {
namespace {

std::vector<std::string> SplitLines(const std::string& program) {
  std::vector<std::string> lines;
  std::istringstream is(program);
  std::string line;
  while (std::getline(is, line)) {
    if (!line.empty()) lines.push_back(line);
  }
  return lines;
}

std::string JoinLines(const std::vector<std::string>& lines) {
  std::ostringstream os;
  for (const std::string& line : lines) os << line << "\n";
  return os.str();
}

FuzzCase WithProgram(const FuzzCase& base, std::vector<std::string> lines) {
  FuzzCase c = base;
  c.program = JoinLines(lines);
  c.outputs = HeadPredicates(c.program);
  return c;
}

FuzzCase WithEdges(const FuzzCase& base, const std::vector<Edge>& edges) {
  FuzzCase c = base;
  c.graph = Graph();
  for (const Edge& e : edges) c.graph.AddEdge(e.src, e.dst, e.weight);
  return c;
}

class Shrinker {
 public:
  Shrinker(FuzzCase best, uint32_t workers, const StillFailsFn& still_fails,
           const MinimizeOptions& options)
      : best_(std::move(best)),
        workers_(workers),
        still_fails_(still_fails),
        options_(options) {}

  MinimizeResult Run() {
    bool progress = true;
    while (progress && HasBudget()) {
      progress = false;
      progress |= DropRules();
      progress |= ShrinkEdb();
      progress |= ShrinkUpdates();
      progress |= LowerWorkers();
    }
    return MinimizeResult{std::move(best_), workers_, probes_};
  }

 private:
  bool HasBudget() const { return probes_ < options_.max_probes; }

  /// Probes a candidate; on reproduction it becomes the new best.
  bool Try(const FuzzCase& candidate, uint32_t workers) {
    if (!HasBudget()) return false;
    ++probes_;
    if (!still_fails_(candidate, workers)) return false;
    best_ = candidate;
    workers_ = workers;
    return true;
  }

  bool DropRules() {
    bool progress = false;
    bool removed = true;
    while (removed && HasBudget()) {
      removed = false;
      std::vector<std::string> lines = SplitLines(best_.program);
      if (lines.size() <= 1) break;
      for (size_t i = lines.size(); i-- > 0;) {
        std::vector<std::string> fewer = lines;
        fewer.erase(fewer.begin() + static_cast<ptrdiff_t>(i));
        if (Try(WithProgram(best_, std::move(fewer)), workers_)) {
          progress = removed = true;
          break;  // Restart over the shrunk rule list.
        }
        if (!HasBudget()) break;
      }
    }
    return progress;
  }

  bool ShrinkEdb() {
    bool progress = false;
    // Halving: drop the second half of the edge list while that reproduces.
    while (best_.graph.num_edges() >= 2 && HasBudget()) {
      std::vector<Edge> edges = best_.graph.edges();
      edges.resize(edges.size() / 2);
      if (!Try(WithEdges(best_, edges), workers_)) break;
      progress = true;
    }
    // Tail: once small, drop single edges.
    if (best_.graph.num_edges() < 16) {
      bool removed = true;
      while (removed && HasBudget()) {
        removed = false;
        const std::vector<Edge> edges = best_.graph.edges();
        for (size_t i = edges.size(); i-- > 0;) {
          std::vector<Edge> fewer = edges;
          fewer.erase(fewer.begin() + static_cast<ptrdiff_t>(i));
          if (Try(WithEdges(best_, fewer), workers_)) {
            progress = removed = true;
            break;
          }
          if (!HasBudget()) break;
        }
      }
    }
    return progress;
  }

  /// Update-script passes: drop whole batches first (a delete-free prefix
  /// often reproduces alone), then halve each surviving batch's op list,
  /// then drop single ops. Empty batches are kept droppable but legal —
  /// a failure that needs an empty batch in the stream is itself a find.
  bool ShrinkUpdates() {
    bool progress = false;
    // Drop single batches.
    bool removed = true;
    while (removed && HasBudget()) {
      removed = false;
      const auto& batches = best_.updates.batches;
      for (size_t i = batches.size(); i-- > 0;) {
        FuzzCase candidate = best_;
        candidate.updates.batches.erase(candidate.updates.batches.begin() +
                                        static_cast<ptrdiff_t>(i));
        if (Try(candidate, workers_)) {
          progress = removed = true;
          break;
        }
        if (!HasBudget()) break;
      }
    }
    // Halve op lists within each batch.
    for (size_t b = 0; b < best_.updates.batches.size() && HasBudget(); ++b) {
      while (best_.updates.batches[b].ops.size() >= 2 && HasBudget()) {
        FuzzCase candidate = best_;
        auto& ops = candidate.updates.batches[b].ops;
        ops.resize(ops.size() / 2);
        if (!Try(candidate, workers_)) break;
        progress = true;
      }
    }
    // Tail: drop single ops anywhere.
    removed = true;
    while (removed && HasBudget()) {
      removed = false;
      for (size_t b = 0; b < best_.updates.batches.size() && !removed; ++b) {
        const auto& ops = best_.updates.batches[b].ops;
        for (size_t i = ops.size(); i-- > 0;) {
          FuzzCase candidate = best_;
          auto& cops = candidate.updates.batches[b].ops;
          cops.erase(cops.begin() + static_cast<ptrdiff_t>(i));
          if (Try(candidate, workers_)) {
            progress = removed = true;
            break;
          }
          if (!HasBudget()) break;
        }
      }
    }
    return progress;
  }

  bool LowerWorkers() {
    bool progress = false;
    while (workers_ > 1 && HasBudget()) {
      if (!Try(best_, workers_ - 1)) break;
      progress = true;
    }
    return progress;
  }

  FuzzCase best_;
  uint32_t workers_;
  const StillFailsFn& still_fails_;
  const MinimizeOptions& options_;
  uint32_t probes_ = 0;
};

}  // namespace

std::vector<std::string> HeadPredicates(const std::string& program) {
  std::vector<std::string> heads;
  for (const std::string& line : SplitLines(program)) {
    const size_t paren = line.find('(');
    if (paren == std::string::npos) continue;
    std::string name = line.substr(0, paren);
    // Trim surrounding whitespace.
    const size_t b = name.find_first_not_of(" \t");
    const size_t e = name.find_last_not_of(" \t");
    if (b == std::string::npos) continue;
    name = name.substr(b, e - b + 1);
    if (std::find(heads.begin(), heads.end(), name) == heads.end()) {
      heads.push_back(name);
    }
  }
  return heads;
}

MinimizeResult Minimize(const FuzzCase& failing, uint32_t num_workers,
                        const StillFailsFn& still_fails,
                        const MinimizeOptions& options) {
  Shrinker shrinker(failing, num_workers, still_fails, options);
  return shrinker.Run();
}

}  // namespace testing_gen
}  // namespace dcdatalog
