#ifndef DCDATALOG_TESTING_MINIMIZER_H_
#define DCDATALOG_TESTING_MINIMIZER_H_

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "testing/program_gen.h"

namespace dcdatalog {
namespace testing_gen {

/// Predicate the minimizer probes: does this (case, worker-count) still
/// reproduce the failure? Implementations must treat analysis-invalid
/// candidates (e.g. a dropped rule orphaning a body predicate) as NOT
/// failing, or shrinking would chase load errors instead of the bug. The
/// fuzz driver implements this with a forked differential run; unit tests
/// plug in plain lambdas.
using StillFailsFn =
    std::function<bool(const FuzzCase& candidate, uint32_t num_workers)>;

struct MinimizeOptions {
  /// Upper bound on StillFailsFn probes; each probe re-evaluates the case,
  /// so this caps total shrink cost.
  uint32_t max_probes = 250;
};

struct MinimizeResult {
  FuzzCase reduced;
  uint32_t num_workers = 0;
  uint32_t probes = 0;  // StillFailsFn invocations spent.
};

/// Greedy 1-minimal shrink of a failing case. Passes, iterated to fixpoint
/// under the probe budget:
///   1. drop single rules (outputs recomputed from the surviving heads),
///   2. shrink the EDB — halve the edge list, then drop single edges,
///   3. shrink the update script — drop whole batches, halve each batch's
///      op list, then drop single ops (no-op when the case has no updates),
///   4. lower the worker count.
/// The result is the smallest case the budget reached; it is guaranteed to
/// still satisfy `still_fails`.
MinimizeResult Minimize(const FuzzCase& failing, uint32_t num_workers,
                        const StillFailsFn& still_fails,
                        const MinimizeOptions& options = {});

/// Head predicates of `program` in first-definition order (helper shared
/// with the rule-dropping pass; exposed for tests).
std::vector<std::string> HeadPredicates(const std::string& program);

}  // namespace testing_gen
}  // namespace dcdatalog

#endif  // DCDATALOG_TESTING_MINIMIZER_H_
