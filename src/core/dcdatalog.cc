#include "core/dcdatalog.h"

#include <fstream>
#include <sstream>

#include "datalog/analysis.h"
#include "datalog/parser.h"
#include "planner/logical_plan.h"
#include "planner/physical_plan.h"

namespace dcdatalog {

DCDatalog::DCDatalog(EngineOptions options)
    : options_(options.Resolved()) {}

DCDatalog::~DCDatalog() = default;

Result<Relation*> DCDatalog::CreateRelation(const std::string& name,
                                            Schema schema) {
  return catalog_.Create(name, std::move(schema));
}

Relation* DCDatalog::AddGraph(const Graph& graph, const std::string& name,
                              bool weighted) {
  return catalog_.Put(weighted ? graph.ToWeightedArcRelation(name)
                               : graph.ToArcRelation(name));
}

Status DCDatalog::LoadProgramText(std::string_view source) {
  auto parsed = ParseProgram(source, &dict_);
  if (!parsed.ok()) return parsed.status();
  program_ = std::make_unique<Program>(std::move(parsed).value());
  engine_.reset();  // Retained incremental state is for the old program.
  return Status::OK();
}

Status DCDatalog::LoadProgramFile(const std::string& path) {
  std::ifstream in(path);
  if (!in) return Status::NotFound("cannot open program file: " + path);
  std::ostringstream buf;
  buf << in.rdbuf();
  return LoadProgramText(buf.str());
}

Result<EvalStats> DCDatalog::Run() {
  if (program_ == nullptr) {
    return Status::InvalidArgument("no program loaded");
  }
  engine_.reset();  // A from-scratch run invalidates any retained state.
  Engine engine(&catalog_, options_);
  return engine.Run(*program_);
}

Result<EvalStats> DCDatalog::BeginIncremental() {
  if (program_ == nullptr) {
    return Status::InvalidArgument("no program loaded");
  }
  engine_ = std::make_unique<Engine>(&catalog_, options_);
  Result<EvalStats> run = engine_->BeginIncremental(*program_);
  if (!run.ok()) engine_.reset();
  return run;
}

Result<EvalStats> DCDatalog::ApplyUpdates(const UpdateBatch& batch) {
  DCD_ASSIGN_OR_RETURN(ResolvedUpdateBatch resolved,
                       ResolveUpdateBatch(batch, catalog_, &dict_));
  return ApplyUpdates(resolved);
}

Result<EvalStats> DCDatalog::ApplyUpdates(const ResolvedUpdateBatch& batch) {
  if (engine_ == nullptr) {
    return Status::InvalidArgument(
        "ApplyUpdates requires BeginIncremental first");
  }
  return engine_->ApplyUpdates(batch);
}

const Relation* DCDatalog::ResultFor(const std::string& name) const {
  return catalog_.Find(name);
}

Result<std::string> DCDatalog::ExplainLogical() const {
  if (program_ == nullptr) {
    return Status::InvalidArgument("no program loaded");
  }
  DCD_ASSIGN_OR_RETURN(ProgramAnalysis analysis,
                       ProgramAnalysis::Analyze(*program_, catalog_));
  DCD_ASSIGN_OR_RETURN(std::vector<LogicalRulePlan> plans,
                       BuildLogicalPlans(*program_, analysis));
  std::ostringstream os;
  os << analysis.ToString();
  for (const LogicalRulePlan& plan : plans) os << plan.ToString() << "\n";
  return os.str();
}

Result<std::string> DCDatalog::ExplainPhysical() const {
  if (program_ == nullptr) {
    return Status::InvalidArgument("no program loaded");
  }
  DCD_ASSIGN_OR_RETURN(ProgramAnalysis analysis,
                       ProgramAnalysis::Analyze(*program_, catalog_));
  DCD_ASSIGN_OR_RETURN(std::vector<LogicalRulePlan> logical,
                       BuildLogicalPlans(*program_, analysis));
  DCD_ASSIGN_OR_RETURN(PhysicalPlan plan,
                       BuildPhysicalPlan(*program_, analysis, logical));
  return plan.ToString();
}

}  // namespace dcdatalog
