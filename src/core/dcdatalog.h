#ifndef DCDATALOG_CORE_DCDATALOG_H_
#define DCDATALOG_CORE_DCDATALOG_H_

#include <memory>
#include <string>
#include <string_view>

#include "common/options.h"
#include "common/status.h"
#include "common/string_dict.h"
#include "core/engine.h"
#include "datalog/ast.h"
#include "graph/graph.h"
#include "storage/catalog.h"

namespace dcdatalog {

/// The public entry point of the DCDatalog library.
///
/// Typical use:
///
///   dcdatalog::DCDatalog db;                       // default: DWS, all opts
///   db.AddGraph(graph, "arc");                     // load base facts
///   auto st = db.LoadProgramText(R"(
///     tc(X, Y) :- arc(X, Y).
///     tc(X, Y) :- tc(X, Z), arc(Z, Y).
///   )");
///   auto stats = db.Run();                         // parallel fixpoint
///   const Relation* tc = db.ResultFor("tc");       // materialized result
///
/// One instance holds one catalog of base relations and at most one loaded
/// program; Run() may be called repeatedly (derived relations are replaced
/// each time).
class DCDatalog {
 public:
  explicit DCDatalog(EngineOptions options = {});
  ~DCDatalog();

  DCDatalog(const DCDatalog&) = delete;
  DCDatalog& operator=(const DCDatalog&) = delete;

  // --- Base data -----------------------------------------------------------

  /// Creates an empty base relation (error if the name exists).
  Result<Relation*> CreateRelation(const std::string& name, Schema schema);

  /// Loads a graph's edges as `name(src, dst)` — or, when `weighted`, as
  /// `name(src, dst, weight)`.
  Relation* AddGraph(const Graph& graph, const std::string& name,
                     bool weighted = false);

  /// Interns a string constant (for building facts with string columns).
  uint64_t Intern(std::string_view s) { return dict_.Intern(s); }

  // --- Program -------------------------------------------------------------

  Status LoadProgramText(std::string_view source);
  Status LoadProgramFile(const std::string& path);
  const Program* program() const { return program_.get(); }

  // --- Execution -----------------------------------------------------------

  /// Plans and evaluates the loaded program; derived relations are
  /// materialized into the catalog.
  Result<EvalStats> Run();

  // --- Incremental evaluation ----------------------------------------------

  /// Evaluates the loaded program to fixpoint and keeps the engine's
  /// per-worker merge structures alive so later ApplyUpdates calls can
  /// maintain the fixpoint from deltas instead of recomputing. Any prior
  /// incremental session on this instance is discarded.
  Result<EvalStats> BeginIncremental();

  /// Applies one batch of EDB inserts/deletes (an UpdateBatch of textual
  /// ops, resolved against the catalog schemas) and restores the fixpoint
  /// incrementally. Requires BeginIncremental first.
  Result<EvalStats> ApplyUpdates(const UpdateBatch& batch);

  /// Same, for a batch whose values are already resolved to column words.
  Result<EvalStats> ApplyUpdates(const ResolvedUpdateBatch& batch);

  bool incremental_active() const {
    return engine_ != nullptr && engine_->incremental_active();
  }

  /// Returns the materialized relation for a (derived or base) predicate,
  /// or nullptr before Run().
  const Relation* ResultFor(const std::string& name) const;

  // --- Introspection ---------------------------------------------------------

  /// Pretty-prints the optimized logical plans (one per rule version).
  Result<std::string> ExplainLogical() const;

  /// Pretty-prints the physical plan (SCCs, replicas, rules, indexes).
  Result<std::string> ExplainPhysical() const;

  Catalog& catalog() { return catalog_; }
  StringDict& dict() { return dict_; }
  EngineOptions& options() { return options_; }

 private:
  EngineOptions options_;
  Catalog catalog_;
  StringDict dict_;
  std::unique_ptr<Program> program_;
  /// Live only between BeginIncremental and the next LoadProgram*/Run.
  std::unique_ptr<Engine> engine_;
};

}  // namespace dcdatalog

#endif  // DCDATALOG_CORE_DCDATALOG_H_
