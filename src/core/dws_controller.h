#ifndef DCDATALOG_CORE_DWS_CONTROLLER_H_
#define DCDATALOG_CORE_DWS_CONTROLLER_H_

#include <cstdint>
#include <vector>

#include "common/options.h"
#include "common/welford.h"

namespace dcdatalog {

/// The weight-based decision machinery of DWS (paper §4.2). One instance
/// per worker.
///
/// Each message buffer M_i^j feeds an arrival-process estimate (λ_j and
/// σ²_a,j from inter-arrival samples); the worker's own iterations feed the
/// service-process estimate (μ, σ²_s). Equation (1) combines the per-buffer
/// arrival statistics weighted by current buffer occupancy; Kingman's
/// formula — Equation (2) — estimates the mean queue length L_q, from which
///   ω_i = L_q   (the delta-cardinality threshold), and
///   τ_i = L_q/λ (the wait budget)
/// are derived, exactly as §4.2 prescribes.
class DwsController {
 public:
  /// Utilizations at or above this are the overloaded regime: Kingman's
  /// L_q diverges as rho -> 1, so instead of clamping rho and evaluating
  /// the formula outside its domain, Update saturates omega/tau
  /// deliberately (see overloaded()).
  static constexpr double kMaxRho = 0.95;
  /// Cap on omega — and the value it saturates to under overload — so a
  /// worker never waits for millions of tuples.
  static constexpr double kMaxOmega = 1 << 20;

  DwsController(uint32_t num_sources, const EngineOptions& options);

  /// Records a drain of `n` tuples from source `j` at monotonic time
  /// `now_ns`. Zero-tuple drains leave the arrival clock running so sparse
  /// sources accumulate long inter-arrival intervals.
  void OnDrain(uint32_t j, uint64_t n, int64_t now_ns);

  /// Records one local iteration: `duration_ns` spent deriving from
  /// `tuples` delta tuples.
  void OnIteration(int64_t duration_ns, uint64_t tuples);

  /// Recomputes ω_i and τ_i from the current statistics (Algorithm 2
  /// line 12). `buffer_sizes[j]` is the current occupancy |M_i^j|.
  void Update(const std::vector<uint64_t>& buffer_sizes);

  /// Delta-cardinality threshold: wait for more tuples while 0 < |δ| < ω.
  double omega() const { return omega_; }

  /// Wait budget in nanoseconds (clamped to the deadlock-avoidance
  /// timeout).
  int64_t tau_ns() const { return tau_ns_; }

  // Introspection for tests and decision telemetry.
  double lambda() const { return lambda_; }
  double mu() const { return mu_; }
  double rho() const { return rho_; }

  /// True when the last Update saw lambda >= kMaxRho * mu. In that regime
  /// the queue has no steady state, Kingman's formula is meaningless, and
  /// omega/tau are saturated (kMaxOmega / the deadlock-avoidance timeout)
  /// instead of computed: the buffers are filling faster than this worker
  /// drains them, so batching as much as the timeout allows is the
  /// explicit, deliberate policy — not a numeric accident of clamping.
  bool overloaded() const { return overloaded_; }

 private:
  const EngineOptions options_;
  std::vector<Welford> arrivals_;      // Per-source inter-arrival (seconds).
  std::vector<int64_t> last_drain_ns_;
  Welford service_;                    // Per-tuple service time (seconds).

  double omega_ = 0.0;
  int64_t tau_ns_ = 0;
  double lambda_ = 0.0;
  double mu_ = 0.0;
  double rho_ = 0.0;
  bool overloaded_ = false;
};

}  // namespace dcdatalog

#endif  // DCDATALOG_CORE_DWS_CONTROLLER_H_
