#include "core/engine.h"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <map>
#include <memory>
#include <set>
#include <sstream>
#include <thread>
#include <vector>

#include "core/dred.h"

#include "common/affinity.h"
#include "common/chaos.h"
#include "common/hash.h"
#include "common/hot_path.h"
#include "common/logging.h"
#include "common/numa_topology.h"
#include "common/timer.h"
#include "concurrent/barrier.h"
#include "concurrent/spsc_queue.h"
#include "concurrent/termination.h"
#include "concurrent/worker_pool.h"
#include "core/dws_controller.h"
#include "datalog/analysis.h"
#include "planner/logical_plan.h"
#include "runtime/base_index_set.h"
#include "runtime/batch_pipeline.h"
#include "runtime/distributor.h"
#include "runtime/message.h"
#include "runtime/pipeline.h"
#include "runtime/recursive_table.h"

namespace dcdatalog {
namespace {

struct alignas(64) PaddedU64 {
  std::atomic<uint64_t> v{0};
};

/// One inter-worker ring: a block-granular SPSC queue plus a tuple-granular
/// occupancy mirror. The mirror exists because DWS's queueing model (ω/τ)
/// reasons about tuples, not blocks — SizeApprox on the ring counts blocks,
/// which would understate pending work by up to ~2 orders of magnitude.
struct BlockQueue {
  explicit BlockQueue(uint32_t capacity_blocks) : ring(capacity_blocks) {}

  SpscQueue<MsgBlock> ring;
  /// Producer adds each pushed block's tuple count; the consumer subtracts
  /// on drain. Relaxed ordering: statistics only, never a protocol input.
  std::atomic<uint64_t> tuples{0};
};

/// One published morsel: a [begin, end) slice of the owner's driving-delta
/// snapshot for one replica (docs/INTERNALS.md §11). Life cycle is a strict
/// one-way CAS ladder per publication:
///   kEmpty --owner store--> kPublished --one CAS--> kClaimed --> kDone
/// The owner raises the termination detector's produced count before the
/// kPublished release-store, and only the single CAS winner (an idle thief,
/// or the owner reclaiming at iteration end) executes the slice, so the
/// slice runs exactly once and no termination round can succeed with a
/// morsel in flight. The snapshot pointer targets the owner's stack-held
/// LocalIteration snapshot, which outlives every slot: the owner does not
/// leave the iteration until each published slot has returned to kEmpty.
struct alignas(64) MorselSlot {
  static constexpr uint32_t kEmpty = 0;
  static constexpr uint32_t kPublished = 1;
  static constexpr uint32_t kClaimed = 2;
  static constexpr uint32_t kDone = 3;

  std::atomic<uint32_t> state{kEmpty};
  uint32_t replica = 0;
  uint32_t begin = 0;
  uint32_t end = 0;
  const std::vector<TupleBuf>* snapshot = nullptr;
};

/// Per-worker steal slots. `available` is a fast-reject gate for thieves
/// (one acquire load skips scanning the slots of unloaded victims); only a
/// successful claim decrements it, so it can transiently overstate but
/// never undercount claimable slots.
struct alignas(64) StealBoard {
  static constexpr uint32_t kSlots = 8;
  std::atomic<uint32_t> available{0};
  MorselSlot slots[kSlots];
};

/// Wiring between one SccExecutor run and the engine's incremental session
/// state. With `retained` set, the executor hands its per-worker replica
/// tables back to the engine after the run (instead of dropping them), so
/// the next update batch can adopt them and continue from the previous
/// fixpoint.
struct IncrementalHooks {
  /// Per-worker replica sets for this SCC, owned by the engine between
  /// runs. Sized num_workers by the caller.
  std::vector<std::vector<std::unique_ptr<RecursiveTable>>>* retained =
      nullptr;
  /// Adopt the retained tables (update mode) instead of building fresh
  /// ones. Each worker rebinds the tables' debug writer affinity to itself.
  bool adopt = false;
  /// On fresh builds, enable support counting on kNone flat tables so the
  /// counting delete path can maintain them later.
  bool enable_counts = false;
  /// Phase 0 drives the SCC's update rules over rows past the relation
  /// watermarks instead of the base rules over whole relations, and
  /// materialization is left to the engine (watermark-append).
  bool update_mode = false;
  /// Relation name -> row count before this batch's appends. Missing
  /// entries mean "nothing new".
  const std::map<std::string, uint64_t>* watermarks = nullptr;
};

/// Runs one SCC of the plan with n workers under the configured strategy.
class SccExecutor {
 public:
  SccExecutor(const PhysicalPlan& plan, const SccPlan& scc, Catalog* catalog,
              BaseIndexSet* base_indexes, const EngineOptions& options,
              uint32_t scc_ordinal = 0, const IncrementalHooks* hooks = nullptr)
      : hooks_(hooks),
        plan_(plan),
        scc_(scc),
        catalog_(catalog),
        base_indexes_(base_indexes),
        options_(options),
        n_(options.num_workers),
        scc_ordinal_(scc_ordinal),
        detector_(options.num_workers),
        barrier_(options.num_workers),
        ssp_iters_(options.num_workers) {
    // Per-queue capacity shrinks as the worker grid grows so the n² rings
    // stay within a sane memory budget. spsc_capacity is expressed in
    // tuples; a block packs ~kMsgBlockWords/2 binary tuples, so dividing by
    // that keeps the tuple capacity in the configured ballpark.
    const uint32_t per_queue_tuples = std::max<uint32_t>(
        512, options_.spsc_capacity / std::max<uint32_t>(1, n_ / 8));
    per_queue_blocks_ =
        std::max<uint32_t>(8, per_queue_tuples / (kMsgBlockWords / 2));
    // Rings are NOT built here: each worker constructs its own inbound
    // column at WorkerMain start so the ring slots (value-semantics
    // MsgBlocks, the bulk of the grid's memory) are first-touch local to
    // their consumer's NUMA node; the startup barrier publishes them
    // before any producer can push (docs/INTERNALS.md §11).
    queues_.resize(static_cast<size_t>(n_) * n_);
    steal_boards_.reserve(n_);
    for (uint32_t i = 0; i < n_; ++i) {
      steal_boards_.push_back(std::make_unique<StealBoard>());
    }
    if (options_.numa == NumaMode::kAuto &&
        options_.worker_pool == nullptr && n_ > 1) {
      numa_topo_ = NumaTopology::Probe();
    }
    worker_replicas_.resize(n_);
    worker_stats_.resize(n_);
  }

  Status Run(EvalStats* stats) {
    // Serving mode: the gang runs on the shared resident pool so concurrent
    // sessions time-share the cores; one-shot runs spawn dedicated threads.
    if (options_.worker_pool != nullptr) {
      if (n_ > options_.worker_pool->capacity()) ++stats->pool_fallback_gangs;
      options_.worker_pool->Run(n_, [this](uint32_t wid) { WorkerMain(wid); });
    } else {
      RunWorkers(n_, [this](uint32_t wid) { WorkerMain(wid); });
    }
    // Relaxed: RunWorkers joined every worker, which already orders their
    // writes before this read.
    if (aborted_.load(std::memory_order_relaxed)) {
      return Status::ResourceExhausted(
          "evaluation exceeded max_global_iterations (" +
          std::to_string(options_.max_global_iterations) + ")");
    }
    // Update mode appends only the new rows; the engine does that from the
    // retained tables' watermarks, so the full rewrite here is skipped.
    if (hooks_ == nullptr || !hooks_->update_mode) MaterializeResults();
    CollectStats(stats);
    if (hooks_ != nullptr && hooks_->retained != nullptr) {
      for (uint32_t w = 0; w < n_; ++w) {
        (*hooks_->retained)[w] = std::move(worker_replicas_[w]);
      }
    }
    return Status::OK();
  }

 private:
  struct WorkerStats {
    std::vector<TraceEvent> trace;  // Ring snapshot, taken after the join.
    uint64_t trace_dropped = 0;
    WorkerMetrics metrics;
    uint64_t local_iterations = 0;
    uint64_t tuples_routed = 0;
    uint64_t tuples_folded = 0;
    uint64_t tuples_emitted = 0;
    uint64_t blocks_sent = 0;
    uint64_t self_loop_tuples = 0;
    uint64_t merges = 0;
    uint64_t accepts = 0;
    uint64_t cache_hits = 0;
    uint64_t merge_probe_cmps = 0;
    uint64_t pipeline_batches = 0;
    uint64_t pipeline_rows_selected = 0;
    uint64_t morsels_published = 0;
    uint64_t morsels_stolen = 0;
    uint64_t tuples_stolen = 0;
    int64_t idle_ns = 0;
  };

  /// Everything one worker thread owns while the SCC runs.
  struct WorkerContext {
    uint32_t wid = 0;
    SccExecutor* exec = nullptr;
    std::vector<std::unique_ptr<RecursiveTable>>* replicas = nullptr;
    std::vector<uint64_t> regs;
    /// Batch-at-a-time executor state (columnar banks, selection vectors);
    /// reused across rules and iterations so steady-state batches never
    /// allocate. Untouched under --pipeline-executor=tuple.
    BatchPipelineRunner batch_runner;
    std::unique_ptr<Distributor> distributor;
    DwsController dws;
    std::vector<std::vector<TupleBuf>> gather_scratch;  // Per replica.
    std::vector<MsgBlock> block_scratch;
    uint64_t local_iter = 0;
    int64_t idle_ns = 0;
    /// True while this worker must not merge into its replicas: from the
    /// moment it publishes (or claims) morsels that probe replica tables
    /// read-only, until the last such morsel completes. GatherAll then
    /// drains rings into gather_scratch without the MergeBatch pass; the
    /// deferred tuples merge on the first GatherAll after the flag clears.
    bool defer_merges = false;
    /// Owner-side bound per replica while morsels are outstanding: the
    /// prefix of the delta snapshot this worker runs itself (published
    /// tails belong to whoever claims them).
    std::vector<uint64_t> steal_limit;
    uint64_t morsels_published = 0;
    uint64_t morsels_stolen = 0;
    uint64_t tuples_stolen = 0;
    /// Per-worker event ring: single-writer (this worker), snapshotted by
    /// the executor after the join. Disabled (capacity 0, no allocation)
    /// unless EngineOptions::enable_trace is set.
    TraceRing ring;
    /// Always-on distributions; log-bucket adds are as cheap as the plain
    /// counters above.
    WorkerMetrics metrics;

    void Span(TraceEventKind kind, int64_t start_ns, int64_t end_ns,
              uint64_t tuples, uint32_t scc) {
      if (!ring.enabled()) return;
      TraceEvent ev;
      ev.kind = kind;
      ev.worker = wid;
      ev.scc = scc;
      ev.start_ns = start_ns;
      ev.end_ns = end_ns;
      ev.tuples = tuples;
      ring.Append(ev);
    }

    void Instant(TraceEventKind kind, uint64_t tuples, uint32_t scc) {
      if (!ring.enabled()) return;  // Skip the clock read, not just the append.
      const int64_t now = MonotonicNanos();
      Span(kind, now, now, tuples, scc);
    }

    WorkerContext(uint32_t n, const EngineOptions& options)
        : dws(n, options),
          ring(options.enable_trace ? options.trace_ring_capacity : 0) {}
  };

  /// RAII idle-accounting span: on scope exit, charges the elapsed time to
  /// the worker's idle-wait total and emits one wait-span trace event of
  /// the given kind (which coordination mechanism blocked the worker).
  /// Shared by all three strategy loops and InactiveWait so the accounting
  /// cannot drift between them.
  class IdleScope {
   public:
    IdleScope(const SccExecutor* exec, WorkerContext* ctx,
              TraceEventKind kind)
        : exec_(exec), ctx_(ctx), kind_(kind), start_(MonotonicNanos()) {}
    IdleScope(const IdleScope&) = delete;
    IdleScope& operator=(const IdleScope&) = delete;
    ~IdleScope() {
      const int64_t now = MonotonicNanos();
      ctx_->idle_ns += now - start_;
      ctx_->Span(kind_, start_, now, 0, exec_->scc_ordinal_);
    }

   private:
    const SccExecutor* exec_;
    WorkerContext* ctx_;
    const TraceEventKind kind_;
    const int64_t start_;
  };

  BlockQueue& Queue(uint32_t from, uint32_t to) {
    return *queues_[static_cast<size_t>(from) * n_ + to];
  }

  void WorkerMain(uint32_t wid) {
    // NUMA placement first, before any allocation: the replicas, register
    // banks, distributor staging blocks, and this worker's inbound rings
    // are all first-touched below, so pinning here makes every one of them
    // node-local. Dedicated threads only — a shared pool's threads serve
    // many sessions and are never re-pinned. Single-node topologies make
    // this a no-op (MultiNode is false).
    if (numa_topo_.MultiNode()) {
      PinThreadToNode(numa_topo_, numa_topo_.NodeForWorker(wid));
    }
    // Consumer-local ring construction: worker w builds its own inbound
    // column (queues_[j*n + w] for all j), so ring slots — the 2 KiB block
    // array each queue owns — live on the consumer's node and a producer's
    // push is the only cross-socket transfer, always a whole block. The
    // barrier publishes the unique_ptr stores (release on arrival, acquire
    // on departure) before any producer can route a tuple.
    for (uint32_t j = 0; j < n_; ++j) {
      queues_[static_cast<size_t>(j) * n_ + wid] =
          std::make_unique<BlockQueue>(per_queue_blocks_);
    }
    barrier_.Wait();

    WorkerContext ctx(n_, options_);
    ctx.wid = wid;
    ctx.exec = this;
    ctx.Instant(TraceEventKind::kSccBegin, 0, scc_ordinal_);

    // Build this worker's replica partitions (first-touch local), or adopt
    // the incremental session's retained tables and continue from the
    // previous fixpoint.
    auto& replicas = worker_replicas_[wid];
    if (hooks_ != nullptr && hooks_->adopt) {
      replicas = std::move((*hooks_->retained)[wid]);
      for (auto& table : replicas) {
        table->RebindWriter();
        table->ResetStats();
      }
    } else {
      for (const ReplicaSpec& spec : scc_.replicas) {
        replicas.push_back(std::make_unique<RecursiveTable>(
            spec.predicate, plan_.schemas.at(spec.predicate),
            plan_.agg_specs.at(spec.predicate), spec.partition_col,
            spec.needs_join_index, options_));
        if (hooks_ != nullptr && hooks_->enable_counts &&
            replicas.back()->agg_spec().func == AggFunc::kNone) {
          replicas.back()->EnableSupportCounts();
        }
      }
    }
    ctx.replicas = &replicas;
    ctx.gather_scratch.resize(replicas.size());
    ctx.steal_limit.resize(replicas.size());

    // EDB cardinality hints: presize each replica for roughly the rows its
    // base rules will feed it (driving-relation sizes, hash-partitioned
    // across n workers) so the first iterations of a TC-style run don't pay
    // growth rehashes. Setup path — the locked Catalog is fine here.
    // Adopted tables are already sized for the previous fixpoint.
    if (hooks_ == nullptr || !hooks_->adopt) {
      for (size_t r = 0; r < scc_.replicas.size(); ++r) {
        const ReplicaSpec& spec = scc_.replicas[r];
        uint64_t hint = 0;
        for (const PhysicalRule& rule : scc_.base_rules) {
          if (rule.head.predicate != spec.predicate) continue;
          if (rule.driving_is_unit || rule.driving_relation.empty()) continue;
          const Relation* rel = catalog_->Find(rule.driving_relation);
          if (rel != nullptr) hint += rel->size();
        }
        if (hint > 0) replicas[r]->ReserveHint(hint / n_ + 1);
      }
    }

    // Register scratch sized for the widest rule.
    uint32_t max_regs = 1;
    for (const PhysicalRule& r : scc_.base_rules) {
      max_regs = std::max(max_regs, r.num_regs);
    }
    for (const PhysicalRule& r : scc_.delta_rules) {
      max_regs = std::max(max_regs, r.num_regs);
    }
    for (const PhysicalRule& r : scc_.update_rules) {
      max_regs = std::max(max_regs, r.num_regs);
    }
    ctx.regs.assign(max_regs, 0);

    // Sink thunks take the WorkerContext through the {fn, ctx} pair — ctx
    // lives on this frame for the whole SCC run, and carries the exec
    // pointer for the backpressure path. Plain function pointers, not
    // std::function: the send path is per-block and the self-loop path is
    // per-tuple, and both thunks are registered deepcheck hot roots (the
    // analyzer verifies them from their own entry, since it cannot see
    // through the pointer).
    ctx.distributor = std::make_unique<Distributor>(
        &scc_, n_, wid, options_.enable_partial_aggregation,
        Distributor::BlockSink{&SccExecutor::DistSinkThunk, &ctx},
        Distributor::SelfLoopSink{&SccExecutor::DistSelfSinkThunk, &ctx});

    // Phase 0: base rules (or, in update mode, the update rules over rows
    // past the relation watermarks). Results flow through Distribute/Gather
    // exactly like recursive derivations.
    if (hooks_ != nullptr && hooks_->update_mode) {
      RunUpdateRules(&ctx);
    } else {
      RunBaseRules(&ctx);
    }
    ctx.distributor->Flush();

    // Phase 1: fixpoint loop under the coordination strategy. A
    // non-recursive SCC has no delta rules; the same loops then simply
    // drain the buffers and detect termination.
    switch (options_.coordination) {
      case CoordinationMode::kGlobal:
        GlobalLoop(&ctx);
        break;
      case CoordinationMode::kSsp:
        SspLoop(&ctx);
        break;
      case CoordinationMode::kDws:
        DwsLoop(&ctx);
        break;
    }

    ctx.Instant(TraceEventKind::kSccEnd, 0, scc_ordinal_);

    // Collect per-worker statistics. The ring snapshot happens here, on the
    // worker's own thread, so the single-writer invariant holds trivially.
    WorkerStats& ws = worker_stats_[wid];
    ws.local_iterations = ctx.local_iter;
    ws.idle_ns = ctx.idle_ns;
    ctx.ring.Snapshot(&ws.trace);
    ws.trace_dropped = ctx.ring.dropped();
    ws.metrics = ctx.metrics;
    ws.tuples_routed = ctx.distributor->tuples_routed();
    ws.tuples_folded = ctx.distributor->tuples_folded();
    ws.tuples_emitted = ctx.distributor->tuples_emitted();
    ws.blocks_sent = ctx.distributor->blocks_sent();
    ws.self_loop_tuples = ctx.distributor->self_loop_tuples();
    for (const auto& table : replicas) {
      ws.merges += table->merges();
      ws.accepts += table->accepts();
      ws.cache_hits += table->cache_hits();
      ws.merge_probe_cmps += table->merge_probe_cmps();
    }
    ws.pipeline_batches = ctx.batch_runner.batches();
    ws.pipeline_rows_selected = ctx.batch_runner.rows_selected();
    ws.morsels_published = ctx.morsels_published;
    ws.morsels_stolen = ctx.morsels_stolen;
    ws.tuples_stolen = ctx.tuples_stolen;
  }

  /// Non-allocating emit thunks (EmitSink / BatchEmitSink): plain function
  /// pointers plus a stack-held context, replacing the old per-rule
  /// capturing std::function.
  struct RuleEmitCtx {
    WorkerContext* ctx;
    const PhysicalRule* rule;
  };

  DCD_HOT_ROOT static void EmitTupleThunk(void* c, const uint64_t* regs) {
    auto* e = static_cast<RuleEmitCtx*>(c);
    uint64_t wire[kMaxWireWords];
    BuildWireTuple(e->rule->head, regs, wire);
    e->ctx->distributor->Emit(e->rule->head, wire);
  }

  DCD_HOT_ROOT static void EmitBatchThunk(void* c, const HeadSpec& head,
                                          const uint64_t* wires,
                                          uint32_t count,
                                          uint32_t wire_arity) {
    auto* ctx = static_cast<WorkerContext*>(c);
    ctx->distributor->EmitBatch(head, wires, count, wire_arity);
  }

  /// Distributor sink thunks (BlockSink / SelfLoopSink): ctx is the
  /// emitting worker's WorkerContext.
  DCD_HOT_ROOT static void DistSinkThunk(void* c, uint32_t dest,
                                         const MsgBlock& block) {
    auto* ctx = static_cast<WorkerContext*>(c);
    ctx->exec->PushWithBackpressure(ctx, dest, block);
  }

  /// Self-loop bypass: the tuple's partition is the emitting worker, so it
  /// goes straight into the local gather scratch — the next GatherAll
  /// merges it with zero ring traffic and zero detector accounting.
  DCD_HOT_ROOT static void DistSelfSinkThunk(void* c, uint32_t replica,
                                             const uint64_t* wire,
                                             uint32_t arity) {
    auto* ctx = static_cast<WorkerContext*>(c);
    ctx->gather_scratch[replica].push_back(TupleBuf::FromWords(wire, arity));
  }

  void RunBaseRules(WorkerContext* ctx) {
    PipelineContext pctx;
    pctx.catalog = catalog_;
    pctx.base_indexes = base_indexes_;
    pctx.replicas = ctx->replicas;
    pctx.regs = ctx->regs.data();

    const bool batch =
        options_.pipeline_executor == PipelineExecutor::kBatch;
    for (const PhysicalRule& rule : scc_.base_rules) {
      PreparePipeline(rule, &pctx);
      RuleEmitCtx ectx{ctx, &rule};
      const EmitSink emit{&EmitTupleThunk, &ectx};
      const BatchEmitSink batch_emit{&EmitBatchThunk, ctx};
      if (rule.driving_is_unit) {
        if (ctx->wid == 0) {
          if (batch) {
            ctx->batch_runner.RunUnit(rule, &pctx, batch_emit);
          } else {
            RunPipelineUnit(rule, pctx, emit);
          }
        }
        continue;
      }
      const Relation* rel = catalog_->Find(rule.driving_relation);
      DCD_CHECK(rel != nullptr);
      const uint64_t size = rel->size();
      const uint64_t begin = size * ctx->wid / n_;
      const uint64_t end = size * (ctx->wid + 1) / n_;
      if (batch) {
        ctx->batch_runner.Begin(rule, &pctx, batch_emit);
        for (uint64_t r = begin; r < end; ++r) {
          ctx->batch_runner.Push(rel->Row(r));
        }
        ctx->batch_runner.Finish();
      } else {
        for (uint64_t r = begin; r < end; ++r) {
          RunPipelineForTuple(rule, pctx, rel->Row(r), emit);
        }
      }
    }
  }

  /// Update-mode phase 0: drive each update rule over its relation's rows
  /// past the batch watermark. Rules whose probes touch recursive replicas
  /// carry update_partition_col — the driving row must be processed by the
  /// worker owning the probe key's partition (the replicas are
  /// hash-partitioned, a worker only holds its own slice). Rules with no
  /// recursive probes split the new rows by range instead.
  DCD_HOT_ROOT void RunUpdateRules(WorkerContext* ctx) {
    PipelineContext pctx;
    pctx.catalog = catalog_;
    pctx.base_indexes = base_indexes_;
    pctx.replicas = ctx->replicas;
    pctx.regs = ctx->regs.data();

    const bool batch =
        options_.pipeline_executor == PipelineExecutor::kBatch;
    for (const PhysicalRule& rule : scc_.update_rules) {
      DCD_COLD_CALL("catalog lookup once per update rule per batch, never per driven row");
      const Relation* rel = catalog_->Find(rule.driving_relation);
      if (rel == nullptr) continue;
      const uint64_t size = rel->size();
      uint64_t wm = size;
      if (hooks_->watermarks != nullptr) {
        auto it = hooks_->watermarks->find(rule.driving_relation);
        if (it != hooks_->watermarks->end()) wm = it->second;
      }
      if (wm >= size) continue;
      PreparePipeline(rule, &pctx);
      RuleEmitCtx ectx{ctx, &rule};
      const EmitSink emit{&EmitTupleThunk, &ectx};
      const BatchEmitSink batch_emit{&EmitBatchThunk, ctx};
      if (rule.update_partition_col >= 0) {
        const uint32_t col = static_cast<uint32_t>(rule.update_partition_col);
        if (batch) {
          ctx->batch_runner.Begin(rule, &pctx, batch_emit);
          for (uint64_t r = wm; r < size; ++r) {
            TupleRef row = rel->Row(r);
            if (PartitionOf(row.data[col], n_) != ctx->wid) continue;
            ctx->batch_runner.Push(row);
          }
          ctx->batch_runner.Finish();
        } else {
          for (uint64_t r = wm; r < size; ++r) {
            TupleRef row = rel->Row(r);
            if (PartitionOf(row.data[col], n_) != ctx->wid) continue;
            RunPipelineForTuple(rule, pctx, row, emit);
          }
        }
      } else {
        const uint64_t fresh = size - wm;
        const uint64_t begin = wm + fresh * ctx->wid / n_;
        const uint64_t end = wm + fresh * (ctx->wid + 1) / n_;
        if (batch) {
          ctx->batch_runner.Begin(rule, &pctx, batch_emit);
          for (uint64_t r = begin; r < end; ++r) {
            ctx->batch_runner.Push(rel->Row(r));
          }
          ctx->batch_runner.Finish();
        } else {
          for (uint64_t r = begin; r < end; ++r) {
            RunPipelineForTuple(rule, pctx, rel->Row(r), emit);
          }
        }
      }
    }
  }

  /// Drains every incoming buffer once, unpacks the blocks, and merges into
  /// the replicas (together with any tuples the self-loop bypass already
  /// parked in the gather scratch). Returns the number of ring tuples
  /// consumed — the quantity charged to the termination detector.
  DCD_HOT_ROOT uint64_t GatherAll(WorkerContext* ctx) {
    DCD_CHAOS_POINT(kGather);
    uint64_t total = 0;
    const int64_t now = MonotonicNanos();
    for (uint32_t j = 0; j < n_; ++j) {
      ctx->block_scratch.clear();
      BlockQueue& q = Queue(j, ctx->wid);
      q.ring.PopBatch(&ctx->block_scratch);
      uint64_t drained = 0;
      for (const MsgBlock& block : ctx->block_scratch) {
        auto& batch = ctx->gather_scratch[block.tag];
        for (uint32_t t = 0; t < block.count; ++t) {
          batch.push_back(TupleBuf::FromWords(block.Tuple(t), block.arity));
        }
        drained += block.count;
      }
      if (drained > 0) q.tuples.fetch_sub(drained, std::memory_order_relaxed);
      ctx->dws.OnDrain(j, drained, now);
      total += drained;
    }
    // While morsels against this worker's replicas are outstanding (its own
    // publications, or a claim it is executing), merging would mutate
    // tables a concurrent read-only executor is probing — so the drain
    // stops here and the scratch carries the tuples until the first
    // GatherAll after the flag clears (the same deferred-merge treatment
    // self-loop tuples always get). Ring and detector accounting above are
    // unaffected: the tuples left their rings either way.
    if (!ctx->defer_merges) {
      for (size_t r = 0; r < ctx->gather_scratch.size(); ++r) {
        auto& batch = ctx->gather_scratch[r];
        if (batch.empty()) continue;
        (*ctx->replicas)[r]->MergeBatch(batch);
        batch.clear();
      }
    }
    if (total > 0) {
      detector_.AddConsumed(ctx->wid, total);
      ctx->metrics.drain_batch.Add(total);
      ctx->Instant(TraceEventKind::kDrain, total, scc_ordinal_);
    }
    return total;
  }

  DCD_HOT_ROOT void PushWithBackpressure(WorkerContext* ctx, uint32_t dest,
                                         const MsgBlock& block) {
    BlockQueue& q = Queue(ctx->wid, dest);
    // Raise the occupancy mirror before the push: the consumer subtracts
    // only blocks it popped, so add-then-push can transiently overstate but
    // never underflow the unsigned counter (pop-then-subtract could).
    q.tuples.fetch_add(block.count, std::memory_order_relaxed);
    while (!q.ring.TryPush(block)) {
      // Full ring: drain our own inputs (making space for workers that are
      // blocked pushing to us) and retry. This cannot livelock — every
      // worker's drain frees someone else's producer.
      if (GatherAll(ctx) == 0) std::this_thread::yield();
      if (aborted_.load(std::memory_order_relaxed)) {
        q.tuples.fetch_sub(block.count, std::memory_order_relaxed);
        return;
      }
    }
    // One batched detector update per block, not per tuple.
    detector_.OnBlockPushed(dest, block.count);
    ctx->Instant(TraceEventKind::kBlockPush, block.count, scc_ordinal_);
  }

  uint64_t DeltaTotal(const WorkerContext& ctx) const {
    uint64_t total = 0;
    for (const auto& table : *ctx.replicas) total += table->delta_size();
    return total;
  }

  // --- Skew-adaptive morsel stealing (docs/INTERNALS.md §11) ---------------

  /// Publishes the tail of this iteration's driving snapshots as fixed-size
  /// morsels when the backlog exceeds the adaptive threshold. Returns the
  /// number of slots published (0 = nothing offered; the iteration runs
  /// exactly as before). On publish, the worker enters deferred-merge mode:
  /// from the first kPublished release-store until ResolveMorsels clears
  /// it, thieves may be probing this worker's replica tables, so no merge
  /// may mutate them.
  DCD_HOT_ROOT uint32_t PublishMorsels(
      WorkerContext* ctx, std::vector<std::vector<TupleBuf>>* snapshots,
      uint64_t processed) {
    if (!options_.enable_steal || n_ <= 1) return 0;
    const uint64_t morsel = options_.steal_morsel_tuples;
    // Adaptive threshold: an explicit floor if configured, else twice the
    // live DWS ω estimate (the controller's tuples-per-iteration operating
    // point, fed by the drain/iteration statistics every strategy collects)
    // with a two-morsel floor. Uniform workloads keep every worker's
    // backlog near ω, so nothing is published and steal-on stays at
    // steal-off cost; a hub partition's backlog dwarfs ω and spills.
    const uint64_t threshold =
        options_.steal_min_backlog != 0
            ? options_.steal_min_backlog
            : std::max<uint64_t>(
                  2 * morsel,
                  2 * static_cast<uint64_t>(std::max(0.0, ctx->dws.omega())));
    if (processed <= threshold) return 0;
    StealBoard& board = *steal_boards_[ctx->wid];
    uint32_t pubs = 0;
    uint64_t offered = 0;
    for (size_t r = 0;
         r < snapshots->size() && pubs < StealBoard::kSlots; ++r) {
      const auto& snap = (*snapshots)[r];
      if (snap.size() >= UINT32_MAX) continue;  // Slot offsets are 32-bit.
      // The owner keeps at least its fair 1/n share (and one morsel) —
      // stealing pays off only for the excess a single owner would
      // otherwise serialize.
      const uint64_t keep = std::max<uint64_t>(morsel, snap.size() / n_);
      while (pubs < StealBoard::kSlots &&
             ctx->steal_limit[r] >= keep + morsel) {
        MorselSlot& s = board.slots[pubs];
        ctx->steal_limit[r] -= morsel;
        s.replica = static_cast<uint32_t>(r);
        s.begin = static_cast<uint32_t>(ctx->steal_limit[r]);
        s.end = static_cast<uint32_t>(ctx->steal_limit[r] + morsel);
        s.snapshot = &snap;
        if (pubs == 0) ctx->defer_merges = true;
        // Produced rises before the slot becomes claimable, so a
        // termination round can never miss an in-flight morsel.
        detector_.OnMorselPublished(morsel);
        s.state.store(MorselSlot::kPublished, std::memory_order_release);
        ++pubs;
        offered += morsel;
      }
    }
    if (pubs == 0) return 0;
    // Thief fast-reject gate; claims synchronize on the per-slot CAS, this
    // is only a hint (reset by ResolveMorsels, never written by thieves).
    board.available.store(pubs, std::memory_order_release);
    ctx->morsels_published += pubs;
    ctx->Instant(TraceEventKind::kMorselPublish, offered, scc_ordinal_);
    return pubs;
  }

  /// Executes one morsel: the delta rules driven by the morsel's replica,
  /// over snapshot[begin, end), probing `tables` — the OWNER's replicas —
  /// strictly read-only, and emitting through the CALLING worker's own
  /// Distributor so derived tuples take the normal partition routing and
  /// merge ownership never moves. Alloc-free on the steady path: the
  /// caller's register bank and batch runner are reused, and
  /// PreparePipeline's catalog lookup short-circuits for index-join rules
  /// exactly as in LocalIteration.
  DCD_HOT_ROOT void RunMorsel(WorkerContext* ctx,
                              std::vector<std::unique_ptr<RecursiveTable>>*
                                  tables,
                              const MorselSlot& m) {
    PipelineContext pctx;
    pctx.catalog = catalog_;
    pctx.base_indexes = base_indexes_;
    pctx.replicas = tables;
    pctx.regs = ctx->regs.data();
    const uint32_t arity = (*tables)[m.replica]->stored_arity();
    const bool batch =
        options_.pipeline_executor == PipelineExecutor::kBatch;
    for (int rule_idx : scc_.delta_rules_by_replica[m.replica]) {
      const PhysicalRule& rule = scc_.delta_rules[rule_idx];
      PreparePipeline(rule, &pctx);
      if (batch) {
        const BatchEmitSink batch_emit{&EmitBatchThunk, ctx};
        ctx->batch_runner.Begin(rule, &pctx, batch_emit);
        for (uint32_t t = m.begin; t < m.end; ++t) {
          ctx->batch_runner.Push((*m.snapshot)[t].Ref(arity));
        }
        ctx->batch_runner.Finish();
      } else {
        RuleEmitCtx ectx{ctx, &rule};
        const EmitSink emit{&EmitTupleThunk, &ectx};
        for (uint32_t t = m.begin; t < m.end; ++t) {
          RunPipelineForTuple(rule, pctx, (*m.snapshot)[t].Ref(arity), emit);
        }
      }
    }
  }

  /// Mid-iteration slot re-arm (the steal board is refillable, not
  /// one-shot): while the owner grinds its kept prefix it periodically
  /// sweeps the board, retires kDone slots (the thief already balanced the
  /// detector), and republishes the freed slots with fresh tail morsels
  /// from the CURRENT rule's remaining range. Thieves that drain fast thus
  /// keep receiving work instead of idling after the initial eight slots —
  /// without this, one publish round caps the offload at kSlots morsels
  /// per iteration no matter how deep the hub backlog is. Only called when
  /// the driving replica has exactly one delta rule, so the handed-off
  /// tail [new_limit, old_limit) has not been (and will not be) driven by
  /// any other rule the owner already ran. `done_prefix` is the owner's
  /// progress through the kept prefix; every re-arm leaves the owner at
  /// least one morsel of runway so it never starves into the resolve wait.
  /// Returns the new slot high-water mark for ResolveMorsels.
  DCD_HOT_ROOT uint32_t TopUpMorsels(WorkerContext* ctx,
                                     const std::vector<TupleBuf>& snap,
                                     size_t r, uint64_t done_prefix,
                                     uint32_t pubs) {
    if (snap.size() >= UINT32_MAX) return pubs;  // Slot offsets are 32-bit.
    const uint64_t morsel = options_.steal_morsel_tuples;
    StealBoard& board = *steal_boards_[ctx->wid];
    uint32_t armed = 0;
    uint64_t offered = 0;
    for (uint32_t i = 0; i < StealBoard::kSlots; ++i) {
      MorselSlot& s = board.slots[i];
      const uint32_t st = s.state.load(std::memory_order_acquire);
      if (st == MorselSlot::kDone) {
        // Thief finished and fully accounted this slice; the slot is ours
        // again (only the owner transitions kDone -> kEmpty).
        s.state.store(MorselSlot::kEmpty, std::memory_order_relaxed);
      } else if (st != MorselSlot::kEmpty) {
        continue;  // kPublished or kClaimed: still in flight.
      }
      if (ctx->steal_limit[r] < done_prefix + 2 * morsel) continue;
      ctx->steal_limit[r] -= morsel;
      s.replica = static_cast<uint32_t>(r);
      s.begin = static_cast<uint32_t>(ctx->steal_limit[r]);
      s.end = static_cast<uint32_t>(ctx->steal_limit[r] + morsel);
      s.snapshot = &snap;
      detector_.OnMorselPublished(morsel);
      s.state.store(MorselSlot::kPublished, std::memory_order_release);
      if (i + 1 > pubs) pubs = i + 1;
      ++armed;
      offered += morsel;
    }
    if (armed > 0) {
      board.available.store(pubs, std::memory_order_release);
      ctx->morsels_published += armed;
      ctx->Instant(TraceEventKind::kMorselPublish, offered, scc_ordinal_);
    }
    return pubs;
  }

  /// Owner-side epilogue of a publishing iteration: every published slot is
  /// either reclaimed (one CAS wins the race against thieves, then the
  /// owner runs the slice itself) or, if a thief won, waited on until
  /// kDone. The wait drains this worker's rings so a thief blocked pushing
  /// to us always progresses; it ignores the abort flag because the thief
  /// is bounded either way (its pushes return immediately once aborted).
  /// Clears deferred-merge mode — the snapshots the slots point into stay
  /// alive (caller's frame) until after this returns.
  DCD_HOT_ROOT void ResolveMorsels(WorkerContext* ctx, uint32_t pubs) {
    StealBoard& board = *steal_boards_[ctx->wid];
    for (uint32_t i = 0; i < pubs; ++i) {
      MorselSlot& s = board.slots[i];
      if (s.state.load(std::memory_order_acquire) == MorselSlot::kEmpty) {
        // Re-armed and retired by a TopUpMorsels sweep; already balanced.
        continue;
      }
      uint32_t expected = MorselSlot::kPublished;
      if (s.state.compare_exchange_strong(expected, MorselSlot::kClaimed,
                                          std::memory_order_acq_rel,
                                          std::memory_order_acquire)) {
        // Unclaimed: the owner runs its own publication. Same read-only
        // scope as a thief — the shared tables must not be mutated while
        // later slots may still be claimed.
        DCD_AFFINITY_MORSEL_SCOPE();
        RunMorsel(ctx, ctx->replicas, s);
        detector_.OnMorselExecuted(ctx->wid, s.end - s.begin);
        s.state.store(MorselSlot::kEmpty, std::memory_order_relaxed);
        continue;
      }
      while (s.state.load(std::memory_order_acquire) != MorselSlot::kDone) {
        if (GatherAll(ctx) == 0) std::this_thread::yield();
      }
      s.state.store(MorselSlot::kEmpty, std::memory_order_relaxed);
    }
    board.available.store(0, std::memory_order_release);
    ctx->defer_merges = false;
  }

  /// Idle-side steal attempt: scan the other workers' boards and claim one
  /// published morsel with a single CAS. The claim loop is alloc-, mutex-
  /// and virtual-free — an unloaded victim costs one acquire load. Returns
  /// true if a morsel was executed (the caller should re-gather: the
  /// deferred scratch now holds unmerged tuples).
  DCD_HOT_ROOT bool TrySteal(WorkerContext* ctx) {
    if (!options_.enable_steal || n_ <= 1) return false;
    for (uint32_t d = 1; d < n_; ++d) {
      const uint32_t victim = (ctx->wid + d) % n_;
      StealBoard& board = *steal_boards_[victim];
      if (board.available.load(std::memory_order_acquire) == 0) continue;
      for (uint32_t i = 0; i < StealBoard::kSlots; ++i) {
        MorselSlot& s = board.slots[i];
        if (s.state.load(std::memory_order_acquire) !=
            MorselSlot::kPublished) {
          continue;
        }
        uint32_t expected = MorselSlot::kPublished;
        if (!s.state.compare_exchange_strong(expected, MorselSlot::kClaimed,
                                             std::memory_order_acq_rel,
                                             std::memory_order_acquire)) {
          continue;
        }
        // Claimed. Activate first: from here until OnMorselExecuted
        // balances the published produced count, no termination round may
        // pass with this morsel's derivations unaccounted.
        detector_.Activate(ctx->wid);
        const uint64_t count = s.end - s.begin;
        {
          // Read-only executor role for the victim's tables; our own
          // merges are deferred too, since GatherAll runs inside the
          // backpressure path while the scope is active.
          DCD_AFFINITY_MORSEL_SCOPE();
          ctx->defer_merges = true;
          RunMorsel(ctx, &worker_replicas_[victim], s);
          // Flush before the consumed-side accounting: once the detector
          // is balanced, nothing may linger in this worker's staging.
          ctx->distributor->Flush();
          ctx->defer_merges = false;
        }
        detector_.OnMorselExecuted(ctx->wid, count);
        ctx->morsels_stolen += 1;
        ctx->tuples_stolen += count;
        if (ctx->ring.enabled()) {
          const int64_t now = MonotonicNanos();
          TraceEvent ev;
          ev.kind = TraceEventKind::kSteal;
          ev.worker = ctx->wid;
          ev.scc = scc_ordinal_;
          ev.start_ns = now;
          ev.end_ns = now;
          ev.tuples = count;
          ev.omega = static_cast<double>(victim);
          ctx->ring.Append(ev);
        }
        s.state.store(MorselSlot::kDone, std::memory_order_release);
        return true;
      }
    }
    return false;
  }

  /// One local semi-naive iteration: snapshot the deltas, run every delta
  /// rule against its driving snapshot, flush the distributor.
  DCD_HOT_ROOT void LocalIteration(WorkerContext* ctx) {
    const int64_t start = MonotonicNanos();
    std::vector<std::vector<TupleBuf>> snapshots(ctx->replicas->size());
    uint64_t processed = 0;
    for (size_t r = 0; r < ctx->replicas->size(); ++r) {
      snapshots[r] = (*ctx->replicas)[r]->TakeDelta();
      processed += snapshots[r].size();
      ctx->steal_limit[r] = snapshots[r].size();
    }
    // Skew adaptation: a backlog past the adaptive threshold publishes its
    // tail as morsels before the rules run, shrinking steal_limit so this
    // worker only drives the prefix it kept (docs/INTERNALS.md §11).
    uint32_t pubs = PublishMorsels(ctx, &snapshots, processed);

    PipelineContext pctx;
    pctx.catalog = catalog_;
    pctx.base_indexes = base_indexes_;
    pctx.replicas = ctx->replicas;
    pctx.regs = ctx->regs.data();

    const bool batch =
        options_.pipeline_executor == PipelineExecutor::kBatch;
    for (const PhysicalRule& rule : scc_.delta_rules) {
      const size_t dr = rule.driving_replica;
      const auto& snapshot = snapshots[dr];
      if (ctx->steal_limit[dr] == 0) continue;
      PreparePipeline(rule, &pctx);
      const uint32_t arity = (*ctx->replicas)[dr]->stored_arity();
      // Re-arming tail morsels mid-rule is only sound when no other rule
      // drives this replica: the handed-off range must not already have
      // been driven (dup work) nor still be owed to a later rule (the
      // thief runs every delta rule for the replica over its slice).
      const bool top_up =
          pubs > 0 && scc_.delta_rules_by_replica[dr].size() == 1;
      const uint64_t chunk = options_.steal_morsel_tuples;
      if (batch) {
        const BatchEmitSink batch_emit{&EmitBatchThunk, ctx};
        ctx->batch_runner.Begin(rule, &pctx, batch_emit);
        uint64_t t = 0;
        while (t < ctx->steal_limit[dr]) {
          // steal_limit shrinks under TopUpMorsels, so re-read per chunk.
          const uint64_t stop =
              top_up ? std::min(ctx->steal_limit[dr], t + chunk)
                     : ctx->steal_limit[dr];
          for (; t < stop; ++t) {
            ctx->batch_runner.Push(snapshot[t].Ref(arity));
          }
          if (top_up && t < ctx->steal_limit[dr]) {
            pubs = TopUpMorsels(ctx, snapshot, dr, t, pubs);
          }
        }
        ctx->batch_runner.Finish();
      } else {
        RuleEmitCtx ectx{ctx, &rule};
        const EmitSink emit{&EmitTupleThunk, &ectx};
        uint64_t t = 0;
        while (t < ctx->steal_limit[dr]) {
          const uint64_t stop =
              top_up ? std::min(ctx->steal_limit[dr], t + chunk)
                     : ctx->steal_limit[dr];
          for (; t < stop; ++t) {
            RunPipelineForTuple(rule, pctx, snapshot[t].Ref(arity), emit);
          }
          if (top_up && t < ctx->steal_limit[dr]) {
            pubs = TopUpMorsels(ctx, snapshot, dr, t, pubs);
          }
        }
      }
    }
    if (pubs > 0) ResolveMorsels(ctx, pubs);
    ctx->distributor->Flush();
    const int64_t end = MonotonicNanos();
    ctx->dws.OnIteration(end - start, processed);
    ctx->metrics.iteration_ns.Add(static_cast<uint64_t>(end - start));
    ctx->Span(TraceEventKind::kIteration, start, end, processed,
              scc_ordinal_);
    ++ctx->local_iter;
    if (options_.max_global_iterations != 0 &&
        ctx->local_iter > options_.max_global_iterations) {
      aborted_.store(true, std::memory_order_release);
    }
  }

  bool Aborted() const { return aborted_.load(std::memory_order_acquire); }

  /// Parks the worker at its local fixpoint until new input arrives or the
  /// global fixpoint is detected. Returns false when evaluation is over.
  DCD_HOT_ROOT bool InactiveWait(WorkerContext* ctx) {
    IdleScope idle(this, ctx, TraceEventKind::kPark);
    while (true) {
      if (Aborted()) return false;
      GatherAll(ctx);
      if (DeltaTotal(*ctx) > 0) {
        detector_.Activate(ctx->wid);
        return true;
      }
      // Parked with nothing to do: convert the spin into useful work on a
      // loaded worker's backlog. On success, loop — the next GatherAll
      // merges the deferred scratch and re-checks our own delta.
      if (TrySteal(ctx)) continue;
      // Producers re-activate us on every push (Algorithm 2 line 15), and
      // the pushed tuples may all be duplicates — so the flag must be
      // cleared again after every drain that leaves the delta empty, or
      // the global-fixpoint check could never pass.
      detector_.Deactivate(ctx->wid);
      if (detector_.CheckTermination()) return false;
      std::this_thread::yield();
    }
  }

  // --- Strategy loops -----------------------------------------------------

  /// Algorithm 1: a barrier after every global iteration. Fast workers idle
  /// until the slowest arrives — the overhead DWS exists to remove.
  DCD_HOT_ROOT void GlobalLoop(WorkerContext* ctx) {
    // A waiter at either barrier keeps draining its inbound buffers so
    // producers blocked on a full ring always make progress.
    // A barrier waiter also probes the steal boards: under Global, the
    // whole gang idles at the post-iteration barrier while one hub owner
    // grinds — exactly the serialization morsel stealing removes.
    const auto drain_idle = [this, ctx] {
      GatherAll(ctx);
      TrySteal(ctx);
    };
    // Everyone finishes the base phase before round 1.
    {
      IdleScope idle(this, ctx, TraceEventKind::kBarrierWait);
      barrier_.Wait([] {}, drain_idle);
    }
    while (true) {
      DCD_CHAOS_POINT(kStrategyLoop);
      GatherAll(ctx);
      const uint64_t delta = DeltaTotal(*ctx);
      round_delta_.fetch_add(delta, std::memory_order_acq_rel);
      {
        IdleScope idle(this, ctx, TraceEventKind::kBarrierWait);
        barrier_.Wait(
            [this] {
              // The abort check lives in the serial section so every worker
              // leaves the barrier protocol in the same round.
              global_done_.store(
                  round_delta_.load(std::memory_order_acquire) == 0 ||
                      Aborted(),
                  std::memory_order_release);
              round_delta_.store(0, std::memory_order_release);
            },
            drain_idle);
      }
      if (global_done_.load(std::memory_order_acquire)) return;
      if (delta > 0) LocalIteration(ctx);
      {
        IdleScope idle(this, ctx, TraceEventKind::kBarrierWait);
        barrier_.Wait([] {}, drain_idle);
      }
    }
  }

  /// Stale-synchronous parallel: a worker may run at most `ssp_slack` local
  /// iterations ahead of the slowest active worker (paper §4.1 / [14]).
  DCD_HOT_ROOT void SspLoop(WorkerContext* ctx) {
    while (!Aborted()) {
      DCD_CHAOS_POINT(kStrategyLoop);
      GatherAll(ctx);
      if (DeltaTotal(*ctx) == 0) {
        ssp_iters_[ctx->wid].v.store(UINT64_MAX, std::memory_order_release);
        if (!InactiveWait(ctx)) return;
        ssp_iters_[ctx->wid].v.store(ctx->local_iter,
                                     std::memory_order_release);
        continue;
      }
      // Slack check against the slowest active worker.
      {
        IdleScope idle(this, ctx, TraceEventKind::kSspWait);
        while (!Aborted()) {
          const uint64_t min_iter = MinActiveIteration();
          if (min_iter == UINT64_MAX ||
              ctx->local_iter <= min_iter + options_.ssp_slack) {
            break;
          }
          GatherAll(ctx);  // Keep collecting while blocked.
          if (detector_.Done()) return;
          // Slack-blocked is idle time too; the slowest worker the slack
          // bound is waiting on is the likeliest publisher.
          TrySteal(ctx);
          std::this_thread::yield();
        }
      }
      LocalIteration(ctx);
      ssp_iters_[ctx->wid].v.store(ctx->local_iter,
                                   std::memory_order_release);
    }
  }

  uint64_t MinActiveIteration() const {
    uint64_t min_iter = UINT64_MAX;
    for (uint32_t j = 0; j < n_; ++j) {
      const uint64_t it = ssp_iters_[j].v.load(std::memory_order_acquire);
      min_iter = std::min(min_iter, it);
    }
    return min_iter;
  }

  /// Algorithm 2: the Dynamic Weight-based Strategy. After gathering, a
  /// worker with a small delta (0 < |δ| < ω) waits up to τ for more tuples
  /// before iterating; ω and τ come from the queueing model.
  DCD_HOT_ROOT void DwsLoop(WorkerContext* ctx) {
    while (!Aborted()) {
      DCD_CHAOS_POINT(kStrategyLoop);
      GatherAll(ctx);
      uint64_t delta = DeltaTotal(*ctx);
      if (delta == 0) {
        if (!InactiveWait(ctx)) return;
        delta = DeltaTotal(*ctx);
      }
      // Lines 5–8: bounded wait while the delta is small. The enclosing
      // `if` keeps rounds that sail straight through (|δ| ≥ ω) from
      // emitting zero-length kDwsWait spans.
      bool waited = false;
      if (delta > 0 && delta < static_cast<uint64_t>(ctx->dws.omega())) {
        const int64_t budget_ns =
            static_cast<int64_t>(options_.dws_timeout_us) * 1000;
        const int64_t wait_start = MonotonicNanos();
        IdleScope idle(this, ctx, TraceEventKind::kDwsWait);
        waited = true;
        while (delta > 0 &&
               delta < static_cast<uint64_t>(ctx->dws.omega()) &&
               !Aborted()) {
          const int64_t elapsed = MonotonicNanos() - wait_start;
          if (elapsed >= std::min(ctx->dws.tau_ns(), budget_ns)) break;
          // A wait slice that can execute a stolen morsel skips the sleep:
          // the τ budget was going to be burned idle either way, and the
          // steal feeds this worker's rings faster than waiting would.
          if (!TrySteal(ctx)) {
            // The τ-capped sleep IS DWS's coordination mechanism, not
            // incidental blocking — the strategy trades a bounded wait for
            // a bigger batch.
            DCD_COLD_CALL("DWS τ-capped wait slice is the strategy itself, Algorithm 2 line 7");
            // dcd-lint: allow(hot-path-mutex): DWS bounded wait, Algorithm 2 line 7
            std::this_thread::sleep_for(std::chrono::microseconds(
                options_.dws_max_wait_slice_us));
          }
          GatherAll(ctx);
          delta = DeltaTotal(*ctx);
        }
      }
      if (delta == 0) continue;
      // Line 12: refresh ω and τ from current statistics, then iterate.
      UpdateDws(ctx, waited);
      LocalIteration(ctx);
    }
  }

  void UpdateDws(WorkerContext* ctx, bool waited) {
    std::vector<uint64_t> sizes(n_);
    for (uint32_t j = 0; j < n_; ++j) {
      // The tuple-granular occupancy mirror, NOT ring.SizeApprox(): the
      // queueing model's ω/τ are calibrated in tuples, and a block-count
      // reading would understate pending work by the packing factor.
      sizes[j] = Queue(j, ctx->wid).tuples.load(std::memory_order_relaxed);
    }
    ctx->dws.Update(sizes);
    if (!ctx->ring.enabled()) return;
    // Decision telemetry: the freshly recomputed model state, plus whether
    // this round's wait gate actually held the worker back (proceed=false)
    // or let it sail straight into the iteration (proceed=true).
    const int64_t now = MonotonicNanos();
    TraceEvent ev;
    ev.kind = TraceEventKind::kDwsDecision;
    ev.proceed = !waited;
    ev.worker = ctx->wid;
    ev.scc = scc_ordinal_;
    ev.start_ns = now;
    ev.end_ns = now;
    ev.tuples = 0;
    ev.omega = ctx->dws.omega();
    ev.rho = ctx->dws.rho();
    ev.lambda = ctx->dws.lambda();
    ev.mu = ctx->dws.mu();
    ev.tau_ns = ctx->dws.tau_ns();
    ctx->ring.Append(ev);
  }

  // --- Finalization -------------------------------------------------------

  void MaterializeResults() {
    for (const std::string& pred : scc_.derived_preds) {
      const std::vector<int> replica_ids = scc_.ReplicasOf(pred);
      DCD_CHECK(!replica_ids.empty());
      const int canonical = replica_ids.front();
      Relation merged(pred, plan_.schemas.at(pred));
      for (uint32_t w = 0; w < n_; ++w) {
        merged.AppendAll(worker_replicas_[w][canonical]->rows());
      }
      catalog_->Put(std::move(merged));
    }
  }

  void CollectStats(EvalStats* stats) {
    // Called once per SCC; histograms merge across SCCs into the same
    // per-worker slot.
    if (stats->worker_metrics.size() < worker_stats_.size()) {
      stats->worker_metrics.resize(worker_stats_.size());
    }
    for (size_t w = 0; w < worker_stats_.size(); ++w) {
      const WorkerStats& ws = worker_stats_[w];
      stats->total_local_iterations += ws.local_iterations;
      stats->max_local_iterations =
          std::max(stats->max_local_iterations, ws.local_iterations);
      stats->tuples_routed += ws.tuples_routed;
      stats->tuples_folded += ws.tuples_folded;
      stats->tuples_emitted += ws.tuples_emitted;
      stats->blocks_sent += ws.blocks_sent;
      stats->self_loop_tuples += ws.self_loop_tuples;
      stats->merges += ws.merges;
      stats->accepts += ws.accepts;
      stats->cache_hits += ws.cache_hits;
      stats->merge_probe_cmps += ws.merge_probe_cmps;
      stats->pipeline_batches += ws.pipeline_batches;
      stats->pipeline_rows_selected += ws.pipeline_rows_selected;
      stats->morsels_published += ws.morsels_published;
      stats->morsels_stolen += ws.morsels_stolen;
      stats->tuples_stolen += ws.tuples_stolen;
      stats->idle_wait_seconds += static_cast<double>(ws.idle_ns) * 1e-9;
      stats->trace_dropped += ws.trace_dropped;
      stats->trace.insert(stats->trace.end(), ws.trace.begin(),
                          ws.trace.end());
      stats->worker_metrics[w].iteration_ns.Merge(ws.metrics.iteration_ns);
      stats->worker_metrics[w].drain_batch.Merge(ws.metrics.drain_batch);
    }
  }

  const IncrementalHooks* hooks_ = nullptr;
  const PhysicalPlan& plan_;
  const SccPlan& scc_;
  Catalog* catalog_;
  BaseIndexSet* base_indexes_;
  const EngineOptions& options_;
  const uint32_t n_;
  const uint32_t scc_ordinal_ = 0;
  uint32_t per_queue_blocks_ = 8;
  /// Probed only for dedicated-thread multi-worker runs with numa=auto;
  /// empty (MultiNode false) otherwise.
  NumaTopology numa_topo_;

  std::vector<std::unique_ptr<BlockQueue>> queues_;
  std::vector<std::unique_ptr<StealBoard>> steal_boards_;
  TerminationDetector detector_;
  SpinBarrier barrier_;
  std::atomic<uint64_t> round_delta_{0};
  std::atomic<bool> global_done_{false};
  std::vector<PaddedU64> ssp_iters_;
  std::atomic<bool> aborted_{false};

  std::vector<std::vector<std::unique_ptr<RecursiveTable>>> worker_replicas_;
  std::vector<WorkerStats> worker_stats_;
};

}  // namespace

std::vector<std::pair<const char*, double>> EvalStats::Counters() const {
  return {
      {"seconds", seconds},
      {"num_sccs", static_cast<double>(num_sccs)},
      {"total_local_iterations", static_cast<double>(total_local_iterations)},
      {"max_local_iterations", static_cast<double>(max_local_iterations)},
      {"tuples_routed", static_cast<double>(tuples_routed)},
      {"tuples_folded", static_cast<double>(tuples_folded)},
      {"tuples_emitted", static_cast<double>(tuples_emitted)},
      {"blocks_sent", static_cast<double>(blocks_sent)},
      {"self_loop_tuples", static_cast<double>(self_loop_tuples)},
      {"merges", static_cast<double>(merges)},
      {"accepts", static_cast<double>(accepts)},
      {"cache_hits", static_cast<double>(cache_hits)},
      {"merge_probe_cmps", static_cast<double>(merge_probe_cmps)},
      {"pipeline_batches", static_cast<double>(pipeline_batches)},
      {"pipeline_rows_selected", static_cast<double>(pipeline_rows_selected)},
      {"idle_wait_seconds", idle_wait_seconds},
      {"trace_dropped", static_cast<double>(trace_dropped)},
      {"update_batches", static_cast<double>(update_batches)},
      {"delta_tuples_in", static_cast<double>(delta_tuples_in)},
      {"rederived_tuples", static_cast<double>(rederived_tuples)},
      {"morsels_published", static_cast<double>(morsels_published)},
      {"morsels_stolen", static_cast<double>(morsels_stolen)},
      {"tuples_stolen", static_cast<double>(tuples_stolen)},
      {"pool_fallback_gangs", static_cast<double>(pool_fallback_gangs)},
  };
}

std::string EvalStats::ToString() const {
  std::ostringstream os;
  os << "EvalStats{";
  bool first = true;
  for (const auto& [name, value] : Counters()) {
    if (!first) os << ", ";
    first = false;
    os << name << "=";
    // Integral counters print exactly; default stream precision would
    // render large counts in lossy scientific notation (7.38615e+06).
    if (value == std::floor(value) && std::abs(value) < 1e15) {
      os << static_cast<int64_t>(value);
    } else {
      os << value;
    }
  }
  os << "}";
  return os.str();
}

Result<EvalStats> Engine::Run(const Program& program) {
  // A from-scratch run makes any retained incremental state (replicas,
  // base indexes, watermarks) stale: the run replaces catalog relations the
  // watermarks and indexes describe. Tear the session down deterministically
  // up front — the alternative is stale-but-reachable state that a later
  // ApplyUpdates would happily read.
  inc_.reset();
  DCD_ASSIGN_OR_RETURN(ProgramAnalysis analysis,
                       ProgramAnalysis::Analyze(program, *catalog_));
  DCD_ASSIGN_OR_RETURN(std::vector<LogicalRulePlan> logical,
                       BuildLogicalPlans(program, analysis));
  DCD_ASSIGN_OR_RETURN(PhysicalPlan plan,
                       BuildPhysicalPlan(program, analysis, logical));
  return RunPlan(plan);
}

Result<EvalStats> Engine::RunPlan(const PhysicalPlan& plan) {
  inc_.reset();  // Same invalidation contract as Run().
  WallTimer timer;
  EvalStats stats;
  BaseIndexSet base_indexes(plan.base_indexes);

  for (const SccPlan& scc : plan.sccs) {
    // Build indexes this SCC probes; inputs from earlier SCCs are
    // materialized by now.
    for (const PhysicalRule& rule : scc.base_rules) {
      for (const Step& step : rule.steps) {
        if (step.base_index_id >= 0) {
          DCD_RETURN_IF_ERROR(
              base_indexes.EnsureBuilt(step.base_index_id, *catalog_));
        }
      }
    }
    for (const PhysicalRule& rule : scc.delta_rules) {
      for (const Step& step : rule.steps) {
        if (step.base_index_id >= 0) {
          DCD_RETURN_IF_ERROR(
              base_indexes.EnsureBuilt(step.base_index_id, *catalog_));
        }
      }
    }

    SccExecutor executor(plan, scc, catalog_, &base_indexes, options_,
                         static_cast<uint32_t>(stats.num_sccs));
    DCD_RETURN_IF_ERROR(executor.Run(&stats));
    ++stats.num_sccs;
  }
  stats.seconds = timer.ElapsedSeconds();
  return stats;
}

// ---------------------------------------------------------------------------
// Incremental evaluation over streaming EDB updates
// ---------------------------------------------------------------------------

namespace {

/// Visits every base-index id referenced by any of the SCC's compiled rules
/// (base, delta, and update versions).
template <typename Fn>
void ForEachSccIndexId(const SccPlan& scc, Fn&& fn) {
  const auto scan = [&fn](const std::vector<PhysicalRule>& rules) {
    for (const PhysicalRule& rule : rules) {
      for (const Step& step : rule.steps) {
        if (step.base_index_id >= 0) fn(step.base_index_id);
      }
    }
  };
  scan(scc.base_rules);
  scan(scc.delta_rules);
  scan(scc.update_rules);
}

/// True when every rule of the SCC has at most one positive body atom over
/// an `affected` relation. The counting paths need this in both directions:
/// on delete, a rule with two removal-affected atoms loses derivations
/// whose exact count needs inclusion–exclusion (so decrement-driving each
/// removed relation independently over-deletes); on insert, two
/// insert-affected atoms mean the rule's update versions derive the
/// new×new instantiations from both sides, over-incrementing the counts.
bool AtMostOneAffectedAtomPerRule(const Program& program,
                                  const ProgramAnalysis& analysis,
                                  const SccPlan& scc,
                                  const std::set<std::string>& affected) {
  const SccInfo& info = analysis.sccs()[scc.scc_id];
  for (int r : info.rule_indices) {
    uint32_t hit = 0;
    for (const BodyLiteral& lit : program.rules[r].body) {
      if (lit.kind != BodyLiteral::Kind::kAtom || lit.negated) continue;
      if (affected.count(lit.atom.predicate) > 0) ++hit;
    }
    if (hit >= 2) return false;
  }
  return true;
}

bool StartsWith(const std::string& s, const std::string& prefix) {
  return s.size() >= prefix.size() &&
         s.compare(0, prefix.size(), prefix) == 0;
}

}  // namespace

/// Everything an incremental session retains between ApplyUpdates batches:
/// the augmented plan, the per-worker merge structures at the current
/// fixpoint, the base indexes, and the row-count watermarks separating
/// "already processed" from "newly arrived" rows.
struct Engine::IncrementalState {
  Program program;
  ProgramAnalysis analysis;
  PhysicalPlan plan;
  /// False when the update-version augmentation failed outright; every
  /// batch then takes the full-recompute fallback.
  bool have_update_rules = false;

  std::unique_ptr<BaseIndexSet> base_indexes;
  /// Retained merge structures, [scc][worker][replica]. Moved into the
  /// SccExecutor's workers for each batch and back out afterwards.
  std::vector<std::vector<std::vector<std::unique_ptr<RecursiveTable>>>>
      replicas;
  /// rows() size of each retained table at the last sync, same shape —
  /// rows past the watermark are the batch's new derivations, appended to
  /// the catalog relation during materialization.
  std::vector<std::vector<std::vector<uint64_t>>> replica_watermarks;
  /// Per SCC: the support counts are live and exact, so the counting
  /// delete path may use them. Cleared permanently (until the next full
  /// run) when a batch's structure would let them drift.
  std::vector<char> counts_valid;
  /// Relation name → row count at the last sync.
  std::map<std::string, uint64_t> rel_watermarks;
  /// Base-index ids by backing relation, for targeted invalidation.
  std::map<std::string, std::vector<int>> indexes_by_rel;

  // Eligibility metadata, read off the program text once.
  std::set<std::string> negated_rels;  // Appears under negation.
  std::set<std::string> agg_preds;     // Aggregate-headed predicates.
  std::set<std::string> sum_preds;     // kSum-headed predicates.
  std::set<std::string> body_preds;    // Appears as a positive body atom.
  std::map<std::string, std::set<std::string>> consumers;  // Body → heads.

  /// Closes `affected` over body→head consumption edges: anything derived
  /// (directly or transitively) from an affected relation is affected.
  void PropagateAffected(std::set<std::string>* affected) const {
    std::vector<std::string> frontier(affected->begin(), affected->end());
    while (!frontier.empty()) {
      const std::string p = std::move(frontier.back());
      frontier.pop_back();
      auto it = consumers.find(p);
      if (it == consumers.end()) continue;
      for (const std::string& head : it->second) {
        if (affected->insert(head).second) frontier.push_back(head);
      }
    }
  }

  /// Builds / catches up every base index the SCC's rules probe.
  Status SyncSccIndexes(const SccPlan& scc, const Catalog& catalog) {
    Status status = Status::OK();
    ForEachSccIndexId(scc, [&](int id) {
      if (!status.ok()) return;
      status = base_indexes->SyncAppended(id, catalog);
    });
    return status;
  }

  void InvalidateIndexesOver(const std::string& rel) {
    auto it = indexes_by_rel.find(rel);
    if (it == indexes_by_rel.end()) return;
    for (int id : it->second) base_indexes->Invalidate(id);
  }

  void RecordSccWatermarks(size_t s) {
    auto& per_worker = replica_watermarks[s];
    per_worker.resize(replicas[s].size());
    for (size_t w = 0; w < replicas[s].size(); ++w) {
      per_worker[w].resize(replicas[s][w].size());
      for (size_t r = 0; r < replicas[s][w].size(); ++r) {
        per_worker[w][r] = replicas[s][w][r]->rows().size();
      }
    }
  }

  /// True when some rule of the SCC consumes (positive body atom) one of
  /// `rels`.
  bool SccConsumesAny(const SccPlan& scc,
                      const std::set<std::string>& rels) const {
    const SccInfo& info = analysis.sccs()[scc.scc_id];
    for (int r : info.rule_indices) {
      for (const BodyLiteral& lit : program.rules[r].body) {
        if (lit.kind != BodyLiteral::Kind::kAtom || lit.negated) continue;
        if (rels.count(lit.atom.predicate) > 0) return true;
      }
    }
    return false;
  }
};

Engine::Engine(Catalog* catalog, EngineOptions options)
    : catalog_(catalog), options_(options.Resolved()) {}

Engine::~Engine() = default;

Result<EvalStats> Engine::BeginIncremental(const Program& program) {
  auto state = std::make_unique<IncrementalState>();
  state->program = program.Clone();
  DCD_ASSIGN_OR_RETURN(
      state->analysis, ProgramAnalysis::Analyze(state->program, *catalog_));
  DCD_ASSIGN_OR_RETURN(std::vector<LogicalRulePlan> logical,
                       BuildLogicalPlans(state->program, state->analysis));
  Result<PhysicalPlan> augmented =
      BuildPhysicalPlan(state->program, state->analysis, logical,
                        /*build_update_rules=*/true);
  if (augmented.ok()) {
    state->plan = std::move(augmented).value();
    state->have_update_rules = true;
  } else {
    DCD_ASSIGN_OR_RETURN(
        state->plan,
        BuildPhysicalPlan(state->program, state->analysis, logical));
  }

  for (const Rule& rule : state->program.rules) {
    if (rule.head.HasAggregate()) {
      state->agg_preds.insert(rule.head.predicate);
      for (const HeadArg& arg : rule.head.args) {
        if (arg.agg == AggFunc::kSum) {
          state->sum_preds.insert(rule.head.predicate);
        }
      }
    }
    for (const BodyLiteral& lit : rule.body) {
      if (lit.kind != BodyLiteral::Kind::kAtom) continue;
      if (lit.negated) {
        state->negated_rels.insert(lit.atom.predicate);
        continue;
      }
      state->body_preds.insert(lit.atom.predicate);
      state->consumers[lit.atom.predicate].insert(rule.head.predicate);
    }
  }
  for (size_t i = 0; i < state->plan.base_indexes.size(); ++i) {
    state->indexes_by_rel[state->plan.base_indexes[i].relation].push_back(
        static_cast<int>(i));
  }

  inc_ = std::move(state);
  Result<EvalStats> run = RunRetaining();
  if (!run.ok()) inc_.reset();
  return run;
}

Result<EvalStats> Engine::RunRetaining() {
  IncrementalState* st = inc_.get();
  WallTimer timer;
  EvalStats stats;
  st->base_indexes = std::make_unique<BaseIndexSet>(st->plan.base_indexes);
  st->replicas.clear();
  st->replicas.resize(st->plan.sccs.size());
  st->replica_watermarks.assign(st->plan.sccs.size(), {});
  st->counts_valid.assign(st->plan.sccs.size(), 0);
  const bool flat =
      options_.merge_index_backend == MergeIndexBackend::kFlat;
  for (size_t s = 0; s < st->plan.sccs.size(); ++s) {
    const SccPlan& scc = st->plan.sccs[s];
    DCD_RETURN_IF_ERROR(st->SyncSccIndexes(scc, *catalog_));
    // Support counting rides beside kNone flat existence sets in
    // non-recursive SCCs, where arrivals equal derivations exactly.
    bool counts = flat && !scc.recursive && st->have_update_rules;
    for (const std::string& pred : scc.derived_preds) {
      if (st->plan.agg_specs.at(pred).func != AggFunc::kNone) counts = false;
    }
    auto& retained = st->replicas[s];
    retained.clear();
    retained.resize(options_.num_workers);
    IncrementalHooks hooks;
    hooks.retained = &retained;
    hooks.enable_counts = counts;
    SccExecutor executor(st->plan, scc, catalog_, st->base_indexes.get(),
                         options_, static_cast<uint32_t>(s), &hooks);
    DCD_RETURN_IF_ERROR(executor.Run(&stats));
    ++stats.num_sccs;
    st->counts_valid[s] = counts ? 1 : 0;
    st->RecordSccWatermarks(s);
  }
  for (const std::string& name : catalog_->Names()) {
    st->rel_watermarks[name] = catalog_->Find(name)->size();
  }
  stats.seconds = timer.ElapsedSeconds();
  return stats;
}

Result<EvalStats> Engine::ApplyUpdates(const ResolvedUpdateBatch& batch) {
  if (inc_ == nullptr) {
    return Status::InvalidArgument(
        "ApplyUpdates requires an active incremental session "
        "(call BeginIncremental first)");
  }
  IncrementalState* st = inc_.get();
  WallTimer timer;
  EvalStats stats;
  stats.update_batches = 1;

  for (const ResolvedUpdateOp& op : batch.ops) {
    if (st->analysis.HasPredicate(op.relation) &&
        !st->analysis.predicate(op.relation).is_edb) {
      return Status::InvalidArgument(
          "streaming updates may only target EDB relations; '" +
          op.relation + "' is derived");
    }
  }

  DCD_ASSIGN_OR_RETURN(std::vector<RelationDelta> deltas,
                       NetOutBatch(batch, *catalog_));
  for (const RelationDelta& d : deltas) {
    stats.delta_tuples_in += d.added.size() + d.removed.size();
  }
  if (deltas.empty()) {
    stats.seconds = timer.ElapsedSeconds();
    return stats;
  }

  bool removals = false;
  std::set<std::string> affected;
  for (const RelationDelta& d : deltas) {
    affected.insert(d.relation);
    removals |= !d.removed.empty();
  }
  st->PropagateAffected(&affected);

  // Eligibility: batches whose effects the delta machinery cannot replay
  // exactly fall back to a transparent full recompute (which also resets
  // the retained state, so later batches may be incremental again).
  bool fallback = !st->have_update_rules;
  for (const std::string& p : affected) {
    if (fallback) break;
    // A change under negation is non-monotone on the positive side.
    if (st->negated_rels.count(p) > 0) fallback = true;
    // min/max/count absorb extra derivations monotonically, but a change
    // flowing *through* an aggregate (consumed downstream) can retract
    // previously-derived facts, and a kSum merge replaces a contributor's
    // value — neither is a monotone re-entry.
    if (st->agg_preds.count(p) > 0 && st->body_preds.count(p) > 0) {
      fallback = true;
    }
    if (st->sum_preds.count(p) > 0) fallback = true;
    if (removals && st->agg_preds.count(p) > 0) fallback = true;
    if (std::find(st->plan.update_ineligible_rels.begin(),
                  st->plan.update_ineligible_rels.end(),
                  p) != st->plan.update_ineligible_rels.end()) {
      fallback = true;
    }
  }

  if (fallback) {
    DCD_RETURN_IF_ERROR(ApplyDeltasToCatalog(deltas, catalog_));
    Result<EvalStats> rerun = RunRetaining();
    if (!rerun.ok()) {
      inc_.reset();  // Retained state is torn; the session cannot continue.
      return rerun.status();
    }
    EvalStats out = std::move(rerun).value();
    out.update_batches = stats.update_batches;
    out.delta_tuples_in = stats.delta_tuples_in;
    out.seconds = timer.ElapsedSeconds();
    return out;
  }

  // --- Delete phase: restore the fixpoint under the removals alone. ---
  if (removals) {
    std::map<std::string, Relation> old_copies;
    std::map<std::string, Relation> removed_rows;
    std::vector<RelationDelta> removal_deltas;
    for (const RelationDelta& d : deltas) {
      if (d.removed.empty()) continue;
      Relation* rel = catalog_->Find(d.relation);
      old_copies.emplace(d.relation, *rel);
      Relation rm(d.relation, rel->schema());
      for (const auto& row : d.removed) {
        rm.Append(TupleRef{row.data(), static_cast<uint32_t>(row.size())});
      }
      removed_rows.emplace(d.relation, std::move(rm));
      RelationDelta rd;
      rd.relation = d.relation;
      rd.removed = d.removed;
      removal_deltas.push_back(std::move(rd));
    }
    DCD_RETURN_IF_ERROR(ApplyDeltasToCatalog(removal_deltas, catalog_));
    for (const auto& [name, rm] : removed_rows) {
      st->InvalidateIndexesOver(name);
    }
    Status del = RunDeletePhase(&old_copies, &removed_rows, &stats);
    if (!del.ok()) {
      inc_.reset();
      return del;
    }
  }

  // --- Insert phase: append, then re-drive from the new rows. ---
  std::set<std::string> added_rels;
  for (const RelationDelta& d : deltas) {
    if (d.added.empty()) continue;
    Relation* rel = catalog_->Find(d.relation);
    // Watermark first: rows appended past it are this batch's deltas.
    st->rel_watermarks[d.relation] = rel->size();
    std::vector<RelationDelta> one(1);
    one[0].relation = d.relation;
    one[0].added = d.added;
    DCD_RETURN_IF_ERROR(ApplyDeltasToCatalog(one, catalog_));
    added_rels.insert(d.relation);
  }
  if (!added_rels.empty()) {
    std::set<std::string> insert_affected = added_rels;
    st->PropagateAffected(&insert_affected);
    for (size_t s = 0; s < st->plan.sccs.size(); ++s) {
      const SccPlan& scc = st->plan.sccs[s];
      if (!st->SccConsumesAny(scc, insert_affected)) continue;
      if (st->counts_valid[s] != 0 &&
          !AtMostOneAffectedAtomPerRule(st->program, st->analysis, scc,
                                        insert_affected)) {
        st->counts_valid[s] = 0;
      }
      Status sync = st->SyncSccIndexes(scc, *catalog_);
      if (!sync.ok()) {
        inc_.reset();
        return sync;
      }
      IncrementalHooks hooks;
      hooks.retained = &st->replicas[s];
      hooks.adopt = true;
      hooks.update_mode = true;
      hooks.watermarks = &st->rel_watermarks;
      SccExecutor executor(st->plan, scc, catalog_, st->base_indexes.get(),
                           options_, static_cast<uint32_t>(s), &hooks);
      Status run = executor.Run(&stats);
      if (!run.ok()) {
        inc_.reset();
        return run;
      }
      ++stats.num_sccs;
      // Materialize: kNone predicates append the retained tables' rows
      // past the replica watermarks in place; aggregate predicates (always
      // leaves here — an affected aggregate consumed downstream forces
      // fallback) rewrite fully, since merges update values in place.
      for (const std::string& pred : scc.derived_preds) {
        const int canonical = scc.ReplicasOf(pred).front();
        Relation* rel = catalog_->Find(pred);
        if (st->plan.agg_specs.at(pred).func == AggFunc::kNone) {
          st->rel_watermarks[pred] = rel->size();
          for (uint32_t w = 0; w < options_.num_workers; ++w) {
            const RecursiveTable& table = *st->replicas[s][w][canonical];
            for (uint64_t r = st->replica_watermarks[s][w][canonical];
                 r < table.rows().size(); ++r) {
              rel->Append(table.rows().Row(r));
            }
          }
        } else {
          rel->Clear();
          for (uint32_t w = 0; w < options_.num_workers; ++w) {
            rel->AppendAll(st->replicas[s][w][canonical]->rows());
          }
          st->rel_watermarks[pred] = rel->size();
        }
      }
      st->RecordSccWatermarks(s);
    }
  }

  for (const std::string& name : catalog_->Names()) {
    st->rel_watermarks[name] = catalog_->Find(name)->size();
  }
  stats.seconds = timer.ElapsedSeconds();
  return stats;
}

Status Engine::RunDeletePhase(std::map<std::string, Relation>* old_copies,
                              std::map<std::string, Relation>* removed_rows,
                              EvalStats* stats) {
  IncrementalState* st = inc_.get();
  for (size_t s = 0; s < st->plan.sccs.size(); ++s) {
    const SccPlan& scc = st->plan.sccs[s];
    std::set<std::string> removed_names;
    for (const auto& [name, rel] : *removed_rows) {
      if (!rel.empty()) removed_names.insert(name);
    }
    if (removed_names.empty()) break;
    if (!st->SccConsumesAny(scc, removed_names)) continue;
    const bool counting =
        st->counts_valid[s] != 0 && !scc.recursive &&
        AtMostOneAffectedAtomPerRule(st->program, st->analysis, scc,
                                     removed_names);
    if (counting) {
      DCD_RETURN_IF_ERROR(CountingDelete(s, old_copies, removed_rows, stats));
    } else {
      // DRed rebuilds the tables without counts; don't trust them again
      // until the next full run.
      st->counts_valid[s] = 0;
      DCD_RETURN_IF_ERROR(DredDelete(s, old_copies, removed_rows, stats));
    }
  }
  return Status::OK();
}

Status Engine::CountingDelete(size_t scc_idx,
                              std::map<std::string, Relation>* old_copies,
                              std::map<std::string, Relation>* removed_rows,
                              EvalStats* stats) {
  (void)stats;  // The counting path re-derives nothing.
  IncrementalState* st = inc_.get();
  const SccPlan& scc = st->plan.sccs[scc_idx];
  const uint32_t n = options_.num_workers;
  auto& tables = st->replicas[scc_idx];

  // Snapshot this SCC's predicates before correcting them: a downstream
  // SCC's DRed closure may need the pre-batch values.
  for (const std::string& pred : scc.derived_preds) {
    if (old_copies->count(pred) == 0) {
      old_copies->emplace(pred, *catalog_->Find(pred));
    }
  }

  // The engine thread takes ownership of the retained partitions.
  for (uint32_t w = 0; w < n; ++w) {
    for (auto& table : tables[w]) table->RebindWriter();
  }

  // Lost derivations: drive every removed row (one entry per stored copy)
  // through each update rule of this SCC whose relation lost rows,
  // decrementing the derived row's support. The structural gate admitted at
  // most one removal-affected atom per rule — the driving one — so every
  // probe touches a relation the batch left unchanged, and the current
  // catalog state equals the pre-batch state for all of them.
  uint32_t max_regs = 1;
  for (const PhysicalRule& rule : scc.update_rules) {
    max_regs = std::max(max_regs, rule.num_regs);
  }
  std::vector<uint64_t> regs(max_regs, 0);
  PipelineContext pctx;
  pctx.catalog = catalog_;
  pctx.base_indexes = st->base_indexes.get();
  pctx.replicas = &tables[0];  // No recursive probes in a counting SCC.
  pctx.regs = regs.data();

  struct DecCtx {
    const PhysicalRule* rule = nullptr;
    std::vector<std::vector<std::unique_ptr<RecursiveTable>>>* tables =
        nullptr;
    std::vector<std::vector<std::vector<uint64_t>>>* dead = nullptr;
    uint32_t n = 0;
    int canonical = 0;
    uint32_t partition_col = 0;
  };
  const auto dec_thunk = [](void* c, const uint64_t* regs_in) {
    auto* d = static_cast<DecCtx*>(c);
    uint64_t wire[kMaxWireWords];
    BuildWireTuple(d->rule->head, regs_in, wire);
    const uint32_t w = PartitionOf(wire[d->partition_col], d->n);
    RecursiveTable* table = (*d->tables)[w][d->canonical].get();
    const uint64_t row_id =
        table->FindRowId(TupleRef{wire, table->stored_arity()});
    if (row_id == UINT64_MAX || table->SupportCount(row_id) == 0) {
      // Every lost derivation must resolve to a live, supported row;
      // anything else means the counts drifted.
      DCD_DCHECK(false);
      return;
    }
    if (table->DecrementSupport(row_id) == 0) {
      (*d->dead)[w][d->canonical].push_back(row_id);
    }
  };

  std::vector<std::vector<std::vector<uint64_t>>> dead(
      n, std::vector<std::vector<uint64_t>>(scc.replicas.size()));
  for (const PhysicalRule& rule : scc.update_rules) {
    auto rm_it = removed_rows->find(rule.driving_relation);
    if (rm_it == removed_rows->end() || rm_it->second.empty()) continue;
    PreparePipeline(rule, &pctx);
    DecCtx dctx;
    dctx.rule = &rule;
    dctx.tables = &tables;
    dctx.dead = &dead;
    dctx.n = n;
    dctx.canonical = scc.ReplicasOf(rule.head.predicate).front();
    dctx.partition_col = scc.replicas[dctx.canonical].partition_col;
    const EmitSink emit{dec_thunk, &dctx};
    const Relation& rm = rm_it->second;
    for (uint64_t r = 0; r < rm.size(); ++r) {
      RunPipelineForTuple(rule, pctx, rm.Row(r), emit);
    }
  }

  // Collect the dying rows (their tuples must be read before compaction),
  // compact every partition, and rewrite the catalog relation in place.
  for (const std::string& pred : scc.derived_preds) {
    const int canonical = scc.ReplicasOf(pred).front();
    Relation dead_rel(pred, st->plan.schemas.at(pred));
    bool any = false;
    for (uint32_t w = 0; w < n; ++w) {
      auto& ids = dead[w][canonical];
      if (ids.empty()) continue;
      std::sort(ids.begin(), ids.end());
      ids.erase(std::unique(ids.begin(), ids.end()), ids.end());
      RecursiveTable* table = tables[w][canonical].get();
      for (uint64_t id : ids) dead_rel.Append(table->rows().Row(id));
      table->CompactRemoveRows(ids);
      any = true;
    }
    if (!any) continue;
    Relation* rel = catalog_->Find(pred);
    rel->Clear();
    for (uint32_t w = 0; w < n; ++w) {
      rel->AppendAll(tables[w][canonical]->rows());
    }
    st->InvalidateIndexesOver(pred);
    st->rel_watermarks[pred] = rel->size();
    removed_rows->emplace(pred, std::move(dead_rel));
  }
  st->RecordSccWatermarks(scc_idx);
  return Status::OK();
}

Status Engine::DredDelete(size_t scc_idx,
                          std::map<std::string, Relation>* old_copies,
                          std::map<std::string, Relation>* removed_rows,
                          EvalStats* stats) {
  IncrementalState* st = inc_.get();
  const SccPlan& scc = st->plan.sccs[scc_idx];
  const uint32_t n = options_.num_workers;
  const std::string old_prefix = DredOldName("");
  const std::string rm_prefix = DredRmName("");
  const std::string seed_prefix = DredSeedName("");

  for (const std::string& pred : scc.derived_preds) {
    if (old_copies->count(pred) == 0) {
      old_copies->emplace(pred, *catalog_->Find(pred));
    }
  }

  std::set<std::string> removed_names;
  for (const auto& [name, rel] : *removed_rows) {
    if (!rel.empty()) removed_names.insert(name);
  }

  // Step 1: over-deletion closure, evaluated against the pre-batch
  // snapshots — every tuple with a derivation through a removed row.
  DCD_ASSIGN_OR_RETURN(
      Program closure,
      BuildDeleteClosureProgram(st->program, st->analysis, scc.scc_id,
                                removed_names));
  Catalog closure_catalog;
  for (const Rule& rule : closure.rules) {
    for (const BodyLiteral& lit : rule.body) {
      if (lit.kind != BodyLiteral::Kind::kAtom) continue;
      const std::string& name = lit.atom.predicate;
      if (closure_catalog.Contains(name)) continue;
      const Relation* src = nullptr;
      if (StartsWith(name, old_prefix)) {
        const std::string base = name.substr(old_prefix.size());
        auto it = old_copies->find(base);
        src = it != old_copies->end() ? &it->second : catalog_->Find(base);
      } else if (StartsWith(name, rm_prefix)) {
        auto it = removed_rows->find(name.substr(rm_prefix.size()));
        src = it != removed_rows->end() ? &it->second : nullptr;
      } else {
        continue;  // __dred_d_* — derived by the closure itself.
      }
      if (src == nullptr) {
        return Status::Internal("DRed closure input '" + name + "' missing");
      }
      Relation copy(name, src->schema());
      copy.AppendAll(*src);
      closure_catalog.Put(std::move(copy));
    }
  }
  {
    Engine closure_engine(&closure_catalog, options_);
    DCD_ASSIGN_OR_RETURN(EvalStats closure_stats,
                         closure_engine.Run(closure));
    (void)closure_stats;
  }

  bool any_deleted = false;
  std::map<std::string, std::set<std::vector<uint64_t>>> deleted;
  for (const std::string& pred : scc.derived_preds) {
    auto& dset = deleted[pred];
    const Relation* d = closure_catalog.Find(DredDName(pred));
    if (d != nullptr) {
      for (uint64_t r = 0; r < d->size(); ++r) {
        TupleRef row = d->Row(r);
        dset.insert(std::vector<uint64_t>(row.data, row.data + row.arity));
      }
    }
    any_deleted |= !dset.empty();
  }
  if (!any_deleted) return Status::OK();

  // Step 2: re-derivation from the survivors. A tuple outside the closure
  // has a derivation avoiding every removed row, so the survivors are a
  // subset of the corrected fixpoint; re-running the SCC's rules from them
  // (against the corrected external relations) adds back exactly the
  // over-deleted tuples that remain derivable.
  DCD_ASSIGN_OR_RETURN(
      Program rederive,
      BuildRederiveProgram(st->program, st->analysis, scc.scc_id));
  Catalog rederive_catalog;
  const std::set<std::string> scc_pred_set(scc.derived_preds.begin(),
                                           scc.derived_preds.end());
  uint64_t survivor_count = 0;
  std::vector<uint64_t> key;
  for (const std::string& pred : scc.derived_preds) {
    const Relation& old_rel = old_copies->at(pred);
    const auto& dset = deleted[pred];
    Relation seeds(DredSeedName(pred), old_rel.schema());
    for (uint64_t r = 0; r < old_rel.size(); ++r) {
      TupleRef row = old_rel.Row(r);
      key.assign(row.data, row.data + row.arity);
      if (dset.count(key) == 0) seeds.Append(row);
    }
    survivor_count += seeds.size();
    rederive_catalog.Put(std::move(seeds));
  }
  for (const Rule& rule : rederive.rules) {
    for (const BodyLiteral& lit : rule.body) {
      if (lit.kind != BodyLiteral::Kind::kAtom) continue;
      const std::string& name = lit.atom.predicate;
      if (scc_pred_set.count(name) > 0) continue;
      if (StartsWith(name, seed_prefix)) continue;
      if (rederive_catalog.Contains(name)) continue;
      const Relation* src = catalog_->Find(name);
      if (src == nullptr) {
        return Status::Internal("DRed rederive input '" + name + "' missing");
      }
      Relation copy(name, src->schema());
      copy.AppendAll(*src);
      rederive_catalog.Put(std::move(copy));
    }
  }
  {
    Engine rederive_engine(&rederive_catalog, options_);
    DCD_ASSIGN_OR_RETURN(EvalStats red_stats, rederive_engine.Run(rederive));
    (void)red_stats;
  }

  // Step 3: install the corrected contents — catalog relation in place,
  // retained partitions rebuilt fresh (support counts stay off; the caller
  // already invalidated them for this SCC).
  uint64_t corrected_total = 0;
  for (const std::string& pred : scc.derived_preds) {
    Relation* corrected = rederive_catalog.Find(pred);
    if (corrected == nullptr) {
      return Status::Internal("DRed rederive result '" + pred + "' missing");
    }
    corrected_total += corrected->size();

    std::set<std::vector<uint64_t>> corrected_set;
    for (uint64_t r = 0; r < corrected->size(); ++r) {
      TupleRef row = corrected->Row(r);
      corrected_set.insert(
          std::vector<uint64_t>(row.data, row.data + row.arity));
    }
    const Relation& old_rel = old_copies->at(pred);
    Relation gone(pred, old_rel.schema());
    for (uint64_t r = 0; r < old_rel.size(); ++r) {
      TupleRef row = old_rel.Row(r);
      key.assign(row.data, row.data + row.arity);
      if (corrected_set.count(key) == 0) gone.Append(row);
    }

    for (int replica_id : scc.ReplicasOf(pred)) {
      const ReplicaSpec& spec = scc.replicas[replica_id];
      std::vector<std::unique_ptr<RecursiveTable>> fresh(n);
      for (uint32_t w = 0; w < n; ++w) {
        fresh[w] = std::make_unique<RecursiveTable>(
            pred, st->plan.schemas.at(pred), st->plan.agg_specs.at(pred),
            spec.partition_col, spec.needs_join_index, options_);
      }
      for (uint64_t r = 0; r < corrected->size(); ++r) {
        TupleRef row = corrected->Row(r);
        const uint32_t w =
            spec.partition_constant
                ? 0u
                : PartitionOf(row.data[spec.partition_col], n);
        fresh[w]->MergeWire(row.data);
      }
      for (uint32_t w = 0; w < n; ++w) {
        fresh[w]->ClearDelta();
        st->replicas[scc_idx][w][replica_id] = std::move(fresh[w]);
      }
    }

    Relation* rel = catalog_->Find(pred);
    rel->Clear();
    rel->AppendAll(*corrected);
    st->InvalidateIndexesOver(pred);
    st->rel_watermarks[pred] = rel->size();

    if (!gone.empty()) removed_rows->emplace(pred, std::move(gone));
  }
  stats->rederived_tuples += corrected_total >= survivor_count
                                 ? corrected_total - survivor_count
                                 : 0;
  st->RecordSccWatermarks(scc_idx);
  return Status::OK();
}

}  // namespace dcdatalog
