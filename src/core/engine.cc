#include "core/engine.h"

#include <atomic>
#include <cmath>
#include <memory>
#include <sstream>
#include <thread>
#include <vector>

#include "common/chaos.h"
#include "common/hash.h"
#include "common/logging.h"
#include "common/timer.h"
#include "concurrent/barrier.h"
#include "concurrent/spsc_queue.h"
#include "concurrent/termination.h"
#include "concurrent/worker_pool.h"
#include "core/dws_controller.h"
#include "datalog/analysis.h"
#include "planner/logical_plan.h"
#include "runtime/base_index_set.h"
#include "runtime/batch_pipeline.h"
#include "runtime/distributor.h"
#include "runtime/message.h"
#include "runtime/pipeline.h"
#include "runtime/recursive_table.h"

namespace dcdatalog {
namespace {

struct alignas(64) PaddedU64 {
  std::atomic<uint64_t> v{0};
};

/// One inter-worker ring: a block-granular SPSC queue plus a tuple-granular
/// occupancy mirror. The mirror exists because DWS's queueing model (ω/τ)
/// reasons about tuples, not blocks — SizeApprox on the ring counts blocks,
/// which would understate pending work by up to ~2 orders of magnitude.
struct BlockQueue {
  explicit BlockQueue(uint32_t capacity_blocks) : ring(capacity_blocks) {}

  SpscQueue<MsgBlock> ring;
  /// Producer adds each pushed block's tuple count; the consumer subtracts
  /// on drain. Relaxed ordering: statistics only, never a protocol input.
  std::atomic<uint64_t> tuples{0};
};

/// Runs one SCC of the plan with n workers under the configured strategy.
class SccExecutor {
 public:
  SccExecutor(const PhysicalPlan& plan, const SccPlan& scc, Catalog* catalog,
              BaseIndexSet* base_indexes, const EngineOptions& options,
              uint32_t scc_ordinal = 0)
      : plan_(plan),
        scc_(scc),
        catalog_(catalog),
        base_indexes_(base_indexes),
        options_(options),
        n_(options.num_workers),
        scc_ordinal_(scc_ordinal),
        detector_(options.num_workers),
        barrier_(options.num_workers),
        ssp_iters_(options.num_workers) {
    // Per-queue capacity shrinks as the worker grid grows so the n² rings
    // stay within a sane memory budget. spsc_capacity is expressed in
    // tuples; a block packs ~kMsgBlockWords/2 binary tuples, so dividing by
    // that keeps the tuple capacity in the configured ballpark.
    const uint32_t per_queue_tuples = std::max<uint32_t>(
        512, options_.spsc_capacity / std::max<uint32_t>(1, n_ / 8));
    const uint32_t per_queue_blocks =
        std::max<uint32_t>(8, per_queue_tuples / (kMsgBlockWords / 2));
    queues_.reserve(static_cast<size_t>(n_) * n_);
    for (uint32_t i = 0; i < n_ * n_; ++i) {
      queues_.push_back(std::make_unique<BlockQueue>(per_queue_blocks));
    }
    worker_replicas_.resize(n_);
    worker_stats_.resize(n_);
  }

  Status Run(EvalStats* stats) {
    RunWorkers(n_, [this](uint32_t wid) { WorkerMain(wid); });
    // Relaxed: RunWorkers joined every worker, which already orders their
    // writes before this read.
    if (aborted_.load(std::memory_order_relaxed)) {
      return Status::ResourceExhausted(
          "evaluation exceeded max_global_iterations (" +
          std::to_string(options_.max_global_iterations) + ")");
    }
    MaterializeResults();
    CollectStats(stats);
    return Status::OK();
  }

 private:
  struct WorkerStats {
    std::vector<TraceEvent> trace;  // Ring snapshot, taken after the join.
    uint64_t trace_dropped = 0;
    WorkerMetrics metrics;
    uint64_t local_iterations = 0;
    uint64_t tuples_routed = 0;
    uint64_t tuples_folded = 0;
    uint64_t tuples_emitted = 0;
    uint64_t blocks_sent = 0;
    uint64_t self_loop_tuples = 0;
    uint64_t merges = 0;
    uint64_t accepts = 0;
    uint64_t cache_hits = 0;
    uint64_t merge_probe_cmps = 0;
    uint64_t pipeline_batches = 0;
    uint64_t pipeline_rows_selected = 0;
    int64_t idle_ns = 0;
  };

  /// Everything one worker thread owns while the SCC runs.
  struct WorkerContext {
    uint32_t wid = 0;
    SccExecutor* exec = nullptr;
    std::vector<std::unique_ptr<RecursiveTable>>* replicas = nullptr;
    std::vector<uint64_t> regs;
    /// Batch-at-a-time executor state (columnar banks, selection vectors);
    /// reused across rules and iterations so steady-state batches never
    /// allocate. Untouched under --pipeline-executor=tuple.
    BatchPipelineRunner batch_runner;
    std::unique_ptr<Distributor> distributor;
    DwsController dws;
    std::vector<std::vector<TupleBuf>> gather_scratch;  // Per replica.
    std::vector<MsgBlock> block_scratch;
    uint64_t local_iter = 0;
    int64_t idle_ns = 0;
    /// Per-worker event ring: single-writer (this worker), snapshotted by
    /// the executor after the join. Disabled (capacity 0, no allocation)
    /// unless EngineOptions::enable_trace is set.
    TraceRing ring;
    /// Always-on distributions; log-bucket adds are as cheap as the plain
    /// counters above.
    WorkerMetrics metrics;

    void Span(TraceEventKind kind, int64_t start_ns, int64_t end_ns,
              uint64_t tuples, uint32_t scc) {
      if (!ring.enabled()) return;
      TraceEvent ev;
      ev.kind = kind;
      ev.worker = wid;
      ev.scc = scc;
      ev.start_ns = start_ns;
      ev.end_ns = end_ns;
      ev.tuples = tuples;
      ring.Append(ev);
    }

    void Instant(TraceEventKind kind, uint64_t tuples, uint32_t scc) {
      if (!ring.enabled()) return;  // Skip the clock read, not just the append.
      const int64_t now = MonotonicNanos();
      Span(kind, now, now, tuples, scc);
    }

    WorkerContext(uint32_t n, const EngineOptions& options)
        : dws(n, options),
          ring(options.enable_trace ? options.trace_ring_capacity : 0) {}
  };

  /// RAII idle-accounting span: on scope exit, charges the elapsed time to
  /// the worker's idle-wait total and emits one wait-span trace event of
  /// the given kind (which coordination mechanism blocked the worker).
  /// Shared by all three strategy loops and InactiveWait so the accounting
  /// cannot drift between them.
  class IdleScope {
   public:
    IdleScope(const SccExecutor* exec, WorkerContext* ctx,
              TraceEventKind kind)
        : exec_(exec), ctx_(ctx), kind_(kind), start_(MonotonicNanos()) {}
    IdleScope(const IdleScope&) = delete;
    IdleScope& operator=(const IdleScope&) = delete;
    ~IdleScope() {
      const int64_t now = MonotonicNanos();
      ctx_->idle_ns += now - start_;
      ctx_->Span(kind_, start_, now, 0, exec_->scc_ordinal_);
    }

   private:
    const SccExecutor* exec_;
    WorkerContext* ctx_;
    const TraceEventKind kind_;
    const int64_t start_;
  };

  BlockQueue& Queue(uint32_t from, uint32_t to) {
    return *queues_[static_cast<size_t>(from) * n_ + to];
  }

  void WorkerMain(uint32_t wid) {
    WorkerContext ctx(n_, options_);
    ctx.wid = wid;
    ctx.exec = this;
    ctx.Instant(TraceEventKind::kSccBegin, 0, scc_ordinal_);

    // Build this worker's replica partitions (first-touch local).
    auto& replicas = worker_replicas_[wid];
    for (const ReplicaSpec& spec : scc_.replicas) {
      replicas.push_back(std::make_unique<RecursiveTable>(
          spec.predicate, plan_.schemas.at(spec.predicate),
          plan_.agg_specs.at(spec.predicate), spec.partition_col,
          spec.needs_join_index, options_));
    }
    ctx.replicas = &replicas;
    ctx.gather_scratch.resize(replicas.size());

    // EDB cardinality hints: presize each replica for roughly the rows its
    // base rules will feed it (driving-relation sizes, hash-partitioned
    // across n workers) so the first iterations of a TC-style run don't pay
    // growth rehashes. Setup path — the locked Catalog is fine here.
    for (size_t r = 0; r < scc_.replicas.size(); ++r) {
      const ReplicaSpec& spec = scc_.replicas[r];
      uint64_t hint = 0;
      for (const PhysicalRule& rule : scc_.base_rules) {
        if (rule.head.predicate != spec.predicate) continue;
        if (rule.driving_is_unit || rule.driving_relation.empty()) continue;
        const Relation* rel = catalog_->Find(rule.driving_relation);
        if (rel != nullptr) hint += rel->size();
      }
      if (hint > 0) replicas[r]->ReserveHint(hint / n_ + 1);
    }

    // Register scratch sized for the widest rule.
    uint32_t max_regs = 1;
    for (const PhysicalRule& r : scc_.base_rules) {
      max_regs = std::max(max_regs, r.num_regs);
    }
    for (const PhysicalRule& r : scc_.delta_rules) {
      max_regs = std::max(max_regs, r.num_regs);
    }
    ctx.regs.assign(max_regs, 0);

    ctx.distributor = std::make_unique<Distributor>(
        &scc_, n_, wid, options_.enable_partial_aggregation,
        [this, &ctx](uint32_t dest, const MsgBlock& block) {
          PushWithBackpressure(&ctx, dest, block);
        },
        // Self-loop bypass: the tuple's partition is this worker, so it
        // goes straight into the local gather scratch — the next GatherAll
        // merges it with zero ring traffic and zero detector accounting.
        [&ctx](uint32_t replica, const uint64_t* wire, uint32_t arity) {
          ctx.gather_scratch[replica].push_back(
              TupleBuf::FromWords(wire, arity));
        });

    // Phase 0: base rules. Results flow through Distribute/Gather exactly
    // like recursive derivations.
    RunBaseRules(&ctx);
    ctx.distributor->Flush();

    // Phase 1: fixpoint loop under the coordination strategy. A
    // non-recursive SCC has no delta rules; the same loops then simply
    // drain the buffers and detect termination.
    switch (options_.coordination) {
      case CoordinationMode::kGlobal:
        GlobalLoop(&ctx);
        break;
      case CoordinationMode::kSsp:
        SspLoop(&ctx);
        break;
      case CoordinationMode::kDws:
        DwsLoop(&ctx);
        break;
    }

    ctx.Instant(TraceEventKind::kSccEnd, 0, scc_ordinal_);

    // Collect per-worker statistics. The ring snapshot happens here, on the
    // worker's own thread, so the single-writer invariant holds trivially.
    WorkerStats& ws = worker_stats_[wid];
    ws.local_iterations = ctx.local_iter;
    ws.idle_ns = ctx.idle_ns;
    ctx.ring.Snapshot(&ws.trace);
    ws.trace_dropped = ctx.ring.dropped();
    ws.metrics = ctx.metrics;
    ws.tuples_routed = ctx.distributor->tuples_routed();
    ws.tuples_folded = ctx.distributor->tuples_folded();
    ws.tuples_emitted = ctx.distributor->tuples_emitted();
    ws.blocks_sent = ctx.distributor->blocks_sent();
    ws.self_loop_tuples = ctx.distributor->self_loop_tuples();
    for (const auto& table : replicas) {
      ws.merges += table->merges();
      ws.accepts += table->accepts();
      ws.cache_hits += table->cache_hits();
      ws.merge_probe_cmps += table->merge_probe_cmps();
    }
    ws.pipeline_batches = ctx.batch_runner.batches();
    ws.pipeline_rows_selected = ctx.batch_runner.rows_selected();
  }

  /// Non-allocating emit thunks (EmitSink / BatchEmitSink): plain function
  /// pointers plus a stack-held context, replacing the old per-rule
  /// capturing std::function.
  struct RuleEmitCtx {
    WorkerContext* ctx;
    const PhysicalRule* rule;
  };

  static void EmitTupleThunk(void* c, const uint64_t* regs) {
    auto* e = static_cast<RuleEmitCtx*>(c);
    uint64_t wire[kMaxWireWords];
    BuildWireTuple(e->rule->head, regs, wire);
    e->ctx->distributor->Emit(e->rule->head, wire);
  }

  static void EmitBatchThunk(void* c, const HeadSpec& head,
                             const uint64_t* wires, uint32_t count,
                             uint32_t wire_arity) {
    auto* ctx = static_cast<WorkerContext*>(c);
    ctx->distributor->EmitBatch(head, wires, count, wire_arity);
  }

  void RunBaseRules(WorkerContext* ctx) {
    PipelineContext pctx;
    pctx.catalog = catalog_;
    pctx.base_indexes = base_indexes_;
    pctx.replicas = ctx->replicas;
    pctx.regs = ctx->regs.data();

    const bool batch =
        options_.pipeline_executor == PipelineExecutor::kBatch;
    for (const PhysicalRule& rule : scc_.base_rules) {
      PreparePipeline(rule, &pctx);
      RuleEmitCtx ectx{ctx, &rule};
      const EmitSink emit{&EmitTupleThunk, &ectx};
      const BatchEmitSink batch_emit{&EmitBatchThunk, ctx};
      if (rule.driving_is_unit) {
        if (ctx->wid == 0) {
          if (batch) {
            ctx->batch_runner.RunUnit(rule, &pctx, batch_emit);
          } else {
            RunPipelineUnit(rule, pctx, emit);
          }
        }
        continue;
      }
      const Relation* rel = catalog_->Find(rule.driving_relation);
      DCD_CHECK(rel != nullptr);
      const uint64_t size = rel->size();
      const uint64_t begin = size * ctx->wid / n_;
      const uint64_t end = size * (ctx->wid + 1) / n_;
      if (batch) {
        ctx->batch_runner.Begin(rule, &pctx, batch_emit);
        for (uint64_t r = begin; r < end; ++r) {
          ctx->batch_runner.Push(rel->Row(r));
        }
        ctx->batch_runner.Finish();
      } else {
        for (uint64_t r = begin; r < end; ++r) {
          RunPipelineForTuple(rule, pctx, rel->Row(r), emit);
        }
      }
    }
  }

  /// Drains every incoming buffer once, unpacks the blocks, and merges into
  /// the replicas (together with any tuples the self-loop bypass already
  /// parked in the gather scratch). Returns the number of ring tuples
  /// consumed — the quantity charged to the termination detector.
  uint64_t GatherAll(WorkerContext* ctx) {
    DCD_CHAOS_POINT(kGather);
    uint64_t total = 0;
    const int64_t now = MonotonicNanos();
    for (uint32_t j = 0; j < n_; ++j) {
      ctx->block_scratch.clear();
      BlockQueue& q = Queue(j, ctx->wid);
      q.ring.PopBatch(&ctx->block_scratch);
      uint64_t drained = 0;
      for (const MsgBlock& block : ctx->block_scratch) {
        auto& batch = ctx->gather_scratch[block.tag];
        for (uint32_t t = 0; t < block.count; ++t) {
          batch.push_back(TupleBuf::FromWords(block.Tuple(t), block.arity));
        }
        drained += block.count;
      }
      if (drained > 0) q.tuples.fetch_sub(drained, std::memory_order_relaxed);
      ctx->dws.OnDrain(j, drained, now);
      total += drained;
    }
    for (size_t r = 0; r < ctx->gather_scratch.size(); ++r) {
      auto& batch = ctx->gather_scratch[r];
      if (batch.empty()) continue;
      (*ctx->replicas)[r]->MergeBatch(batch);
      batch.clear();
    }
    if (total > 0) {
      detector_.AddConsumed(ctx->wid, total);
      ctx->metrics.drain_batch.Add(total);
      ctx->Instant(TraceEventKind::kDrain, total, scc_ordinal_);
    }
    return total;
  }

  void PushWithBackpressure(WorkerContext* ctx, uint32_t dest,
                            const MsgBlock& block) {
    BlockQueue& q = Queue(ctx->wid, dest);
    // Raise the occupancy mirror before the push: the consumer subtracts
    // only blocks it popped, so add-then-push can transiently overstate but
    // never underflow the unsigned counter (pop-then-subtract could).
    q.tuples.fetch_add(block.count, std::memory_order_relaxed);
    while (!q.ring.TryPush(block)) {
      // Full ring: drain our own inputs (making space for workers that are
      // blocked pushing to us) and retry. This cannot livelock — every
      // worker's drain frees someone else's producer.
      if (GatherAll(ctx) == 0) std::this_thread::yield();
      if (aborted_.load(std::memory_order_relaxed)) {
        q.tuples.fetch_sub(block.count, std::memory_order_relaxed);
        return;
      }
    }
    // One batched detector update per block, not per tuple.
    detector_.OnBlockPushed(dest, block.count);
    ctx->Instant(TraceEventKind::kBlockPush, block.count, scc_ordinal_);
  }

  uint64_t DeltaTotal(const WorkerContext& ctx) const {
    uint64_t total = 0;
    for (const auto& table : *ctx.replicas) total += table->delta_size();
    return total;
  }

  /// One local semi-naive iteration: snapshot the deltas, run every delta
  /// rule against its driving snapshot, flush the distributor.
  void LocalIteration(WorkerContext* ctx) {
    const int64_t start = MonotonicNanos();
    std::vector<std::vector<TupleBuf>> snapshots(ctx->replicas->size());
    uint64_t processed = 0;
    for (size_t r = 0; r < ctx->replicas->size(); ++r) {
      snapshots[r] = (*ctx->replicas)[r]->TakeDelta();
      processed += snapshots[r].size();
    }

    PipelineContext pctx;
    pctx.catalog = catalog_;
    pctx.base_indexes = base_indexes_;
    pctx.replicas = ctx->replicas;
    pctx.regs = ctx->regs.data();

    const bool batch =
        options_.pipeline_executor == PipelineExecutor::kBatch;
    for (const PhysicalRule& rule : scc_.delta_rules) {
      const auto& snapshot = snapshots[rule.driving_replica];
      if (snapshot.empty()) continue;
      PreparePipeline(rule, &pctx);
      const uint32_t arity =
          (*ctx->replicas)[rule.driving_replica]->stored_arity();
      if (batch) {
        const BatchEmitSink batch_emit{&EmitBatchThunk, ctx};
        ctx->batch_runner.Begin(rule, &pctx, batch_emit);
        for (const TupleBuf& tuple : snapshot) {
          ctx->batch_runner.Push(tuple.Ref(arity));
        }
        ctx->batch_runner.Finish();
      } else {
        RuleEmitCtx ectx{ctx, &rule};
        const EmitSink emit{&EmitTupleThunk, &ectx};
        for (const TupleBuf& tuple : snapshot) {
          RunPipelineForTuple(rule, pctx, tuple.Ref(arity), emit);
        }
      }
    }
    ctx->distributor->Flush();
    const int64_t end = MonotonicNanos();
    ctx->dws.OnIteration(end - start, processed);
    ctx->metrics.iteration_ns.Add(static_cast<uint64_t>(end - start));
    ctx->Span(TraceEventKind::kIteration, start, end, processed,
              scc_ordinal_);
    ++ctx->local_iter;
    if (options_.max_global_iterations != 0 &&
        ctx->local_iter > options_.max_global_iterations) {
      aborted_.store(true, std::memory_order_release);
    }
  }

  bool Aborted() const { return aborted_.load(std::memory_order_acquire); }

  /// Parks the worker at its local fixpoint until new input arrives or the
  /// global fixpoint is detected. Returns false when evaluation is over.
  bool InactiveWait(WorkerContext* ctx) {
    IdleScope idle(this, ctx, TraceEventKind::kPark);
    while (true) {
      if (Aborted()) return false;
      GatherAll(ctx);
      if (DeltaTotal(*ctx) > 0) {
        detector_.Activate(ctx->wid);
        return true;
      }
      // Producers re-activate us on every push (Algorithm 2 line 15), and
      // the pushed tuples may all be duplicates — so the flag must be
      // cleared again after every drain that leaves the delta empty, or
      // the global-fixpoint check could never pass.
      detector_.Deactivate(ctx->wid);
      if (detector_.CheckTermination()) return false;
      std::this_thread::yield();
    }
  }

  // --- Strategy loops -----------------------------------------------------

  /// Algorithm 1: a barrier after every global iteration. Fast workers idle
  /// until the slowest arrives — the overhead DWS exists to remove.
  void GlobalLoop(WorkerContext* ctx) {
    // A waiter at either barrier keeps draining its inbound buffers so
    // producers blocked on a full ring always make progress.
    const auto drain_idle = [this, ctx] { GatherAll(ctx); };
    // Everyone finishes the base phase before round 1.
    {
      IdleScope idle(this, ctx, TraceEventKind::kBarrierWait);
      barrier_.Wait([] {}, drain_idle);
    }
    while (true) {
      DCD_CHAOS_POINT(kStrategyLoop);
      GatherAll(ctx);
      const uint64_t delta = DeltaTotal(*ctx);
      round_delta_.fetch_add(delta, std::memory_order_acq_rel);
      {
        IdleScope idle(this, ctx, TraceEventKind::kBarrierWait);
        barrier_.Wait(
            [this] {
              // The abort check lives in the serial section so every worker
              // leaves the barrier protocol in the same round.
              global_done_.store(
                  round_delta_.load(std::memory_order_acquire) == 0 ||
                      Aborted(),
                  std::memory_order_release);
              round_delta_.store(0, std::memory_order_release);
            },
            drain_idle);
      }
      if (global_done_.load(std::memory_order_acquire)) return;
      if (delta > 0) LocalIteration(ctx);
      {
        IdleScope idle(this, ctx, TraceEventKind::kBarrierWait);
        barrier_.Wait([] {}, drain_idle);
      }
    }
  }

  /// Stale-synchronous parallel: a worker may run at most `ssp_slack` local
  /// iterations ahead of the slowest active worker (paper §4.1 / [14]).
  void SspLoop(WorkerContext* ctx) {
    while (!Aborted()) {
      DCD_CHAOS_POINT(kStrategyLoop);
      GatherAll(ctx);
      if (DeltaTotal(*ctx) == 0) {
        ssp_iters_[ctx->wid].v.store(UINT64_MAX, std::memory_order_release);
        if (!InactiveWait(ctx)) return;
        ssp_iters_[ctx->wid].v.store(ctx->local_iter,
                                     std::memory_order_release);
        continue;
      }
      // Slack check against the slowest active worker.
      {
        IdleScope idle(this, ctx, TraceEventKind::kSspWait);
        while (!Aborted()) {
          const uint64_t min_iter = MinActiveIteration();
          if (min_iter == UINT64_MAX ||
              ctx->local_iter <= min_iter + options_.ssp_slack) {
            break;
          }
          GatherAll(ctx);  // Keep collecting while blocked.
          if (detector_.Done()) return;
          std::this_thread::yield();
        }
      }
      LocalIteration(ctx);
      ssp_iters_[ctx->wid].v.store(ctx->local_iter,
                                   std::memory_order_release);
    }
  }

  uint64_t MinActiveIteration() const {
    uint64_t min_iter = UINT64_MAX;
    for (uint32_t j = 0; j < n_; ++j) {
      const uint64_t it = ssp_iters_[j].v.load(std::memory_order_acquire);
      min_iter = std::min(min_iter, it);
    }
    return min_iter;
  }

  /// Algorithm 2: the Dynamic Weight-based Strategy. After gathering, a
  /// worker with a small delta (0 < |δ| < ω) waits up to τ for more tuples
  /// before iterating; ω and τ come from the queueing model.
  void DwsLoop(WorkerContext* ctx) {
    while (!Aborted()) {
      DCD_CHAOS_POINT(kStrategyLoop);
      GatherAll(ctx);
      uint64_t delta = DeltaTotal(*ctx);
      if (delta == 0) {
        if (!InactiveWait(ctx)) return;
        delta = DeltaTotal(*ctx);
      }
      // Lines 5–8: bounded wait while the delta is small. The enclosing
      // `if` keeps rounds that sail straight through (|δ| ≥ ω) from
      // emitting zero-length kDwsWait spans.
      bool waited = false;
      if (delta > 0 && delta < static_cast<uint64_t>(ctx->dws.omega())) {
        const int64_t budget_ns =
            static_cast<int64_t>(options_.dws_timeout_us) * 1000;
        const int64_t wait_start = MonotonicNanos();
        IdleScope idle(this, ctx, TraceEventKind::kDwsWait);
        waited = true;
        while (delta > 0 &&
               delta < static_cast<uint64_t>(ctx->dws.omega()) &&
               !Aborted()) {
          const int64_t elapsed = MonotonicNanos() - wait_start;
          if (elapsed >= std::min(ctx->dws.tau_ns(), budget_ns)) break;
          // The τ-capped sleep IS DWS's coordination mechanism, not
          // incidental blocking — the strategy trades a bounded wait for a
          // bigger batch.
          // dcd-lint: allow(hot-path-mutex): DWS bounded wait, Algorithm 2 line 7
          std::this_thread::sleep_for(std::chrono::microseconds(
              options_.dws_max_wait_slice_us));
          GatherAll(ctx);
          delta = DeltaTotal(*ctx);
        }
      }
      if (delta == 0) continue;
      // Line 12: refresh ω and τ from current statistics, then iterate.
      UpdateDws(ctx, waited);
      LocalIteration(ctx);
    }
  }

  void UpdateDws(WorkerContext* ctx, bool waited) {
    std::vector<uint64_t> sizes(n_);
    for (uint32_t j = 0; j < n_; ++j) {
      // The tuple-granular occupancy mirror, NOT ring.SizeApprox(): the
      // queueing model's ω/τ are calibrated in tuples, and a block-count
      // reading would understate pending work by the packing factor.
      sizes[j] = Queue(j, ctx->wid).tuples.load(std::memory_order_relaxed);
    }
    ctx->dws.Update(sizes);
    if (!ctx->ring.enabled()) return;
    // Decision telemetry: the freshly recomputed model state, plus whether
    // this round's wait gate actually held the worker back (proceed=false)
    // or let it sail straight into the iteration (proceed=true).
    const int64_t now = MonotonicNanos();
    TraceEvent ev;
    ev.kind = TraceEventKind::kDwsDecision;
    ev.proceed = !waited;
    ev.worker = ctx->wid;
    ev.scc = scc_ordinal_;
    ev.start_ns = now;
    ev.end_ns = now;
    ev.tuples = 0;
    ev.omega = ctx->dws.omega();
    ev.rho = ctx->dws.rho();
    ev.lambda = ctx->dws.lambda();
    ev.mu = ctx->dws.mu();
    ev.tau_ns = ctx->dws.tau_ns();
    ctx->ring.Append(ev);
  }

  // --- Finalization -------------------------------------------------------

  void MaterializeResults() {
    for (const std::string& pred : scc_.derived_preds) {
      const std::vector<int> replica_ids = scc_.ReplicasOf(pred);
      DCD_CHECK(!replica_ids.empty());
      const int canonical = replica_ids.front();
      Relation merged(pred, plan_.schemas.at(pred));
      for (uint32_t w = 0; w < n_; ++w) {
        merged.AppendAll(worker_replicas_[w][canonical]->rows());
      }
      catalog_->Put(std::move(merged));
    }
  }

  void CollectStats(EvalStats* stats) {
    // Called once per SCC; histograms merge across SCCs into the same
    // per-worker slot.
    if (stats->worker_metrics.size() < worker_stats_.size()) {
      stats->worker_metrics.resize(worker_stats_.size());
    }
    for (size_t w = 0; w < worker_stats_.size(); ++w) {
      const WorkerStats& ws = worker_stats_[w];
      stats->total_local_iterations += ws.local_iterations;
      stats->max_local_iterations =
          std::max(stats->max_local_iterations, ws.local_iterations);
      stats->tuples_routed += ws.tuples_routed;
      stats->tuples_folded += ws.tuples_folded;
      stats->tuples_emitted += ws.tuples_emitted;
      stats->blocks_sent += ws.blocks_sent;
      stats->self_loop_tuples += ws.self_loop_tuples;
      stats->merges += ws.merges;
      stats->accepts += ws.accepts;
      stats->cache_hits += ws.cache_hits;
      stats->merge_probe_cmps += ws.merge_probe_cmps;
      stats->pipeline_batches += ws.pipeline_batches;
      stats->pipeline_rows_selected += ws.pipeline_rows_selected;
      stats->idle_wait_seconds += static_cast<double>(ws.idle_ns) * 1e-9;
      stats->trace_dropped += ws.trace_dropped;
      stats->trace.insert(stats->trace.end(), ws.trace.begin(),
                          ws.trace.end());
      stats->worker_metrics[w].iteration_ns.Merge(ws.metrics.iteration_ns);
      stats->worker_metrics[w].drain_batch.Merge(ws.metrics.drain_batch);
    }
  }

  const PhysicalPlan& plan_;
  const SccPlan& scc_;
  Catalog* catalog_;
  BaseIndexSet* base_indexes_;
  const EngineOptions& options_;
  const uint32_t n_;
  const uint32_t scc_ordinal_ = 0;

  std::vector<std::unique_ptr<BlockQueue>> queues_;
  TerminationDetector detector_;
  SpinBarrier barrier_;
  std::atomic<uint64_t> round_delta_{0};
  std::atomic<bool> global_done_{false};
  std::vector<PaddedU64> ssp_iters_;
  std::atomic<bool> aborted_{false};

  std::vector<std::vector<std::unique_ptr<RecursiveTable>>> worker_replicas_;
  std::vector<WorkerStats> worker_stats_;
};

}  // namespace

std::vector<std::pair<const char*, double>> EvalStats::Counters() const {
  return {
      {"seconds", seconds},
      {"num_sccs", static_cast<double>(num_sccs)},
      {"total_local_iterations", static_cast<double>(total_local_iterations)},
      {"max_local_iterations", static_cast<double>(max_local_iterations)},
      {"tuples_routed", static_cast<double>(tuples_routed)},
      {"tuples_folded", static_cast<double>(tuples_folded)},
      {"tuples_emitted", static_cast<double>(tuples_emitted)},
      {"blocks_sent", static_cast<double>(blocks_sent)},
      {"self_loop_tuples", static_cast<double>(self_loop_tuples)},
      {"merges", static_cast<double>(merges)},
      {"accepts", static_cast<double>(accepts)},
      {"cache_hits", static_cast<double>(cache_hits)},
      {"merge_probe_cmps", static_cast<double>(merge_probe_cmps)},
      {"pipeline_batches", static_cast<double>(pipeline_batches)},
      {"pipeline_rows_selected", static_cast<double>(pipeline_rows_selected)},
      {"idle_wait_seconds", idle_wait_seconds},
      {"trace_dropped", static_cast<double>(trace_dropped)},
  };
}

std::string EvalStats::ToString() const {
  std::ostringstream os;
  os << "EvalStats{";
  bool first = true;
  for (const auto& [name, value] : Counters()) {
    if (!first) os << ", ";
    first = false;
    os << name << "=";
    // Integral counters print exactly; default stream precision would
    // render large counts in lossy scientific notation (7.38615e+06).
    if (value == std::floor(value) && std::abs(value) < 1e15) {
      os << static_cast<int64_t>(value);
    } else {
      os << value;
    }
  }
  os << "}";
  return os.str();
}

Result<EvalStats> Engine::Run(const Program& program) {
  DCD_ASSIGN_OR_RETURN(ProgramAnalysis analysis,
                       ProgramAnalysis::Analyze(program, *catalog_));
  DCD_ASSIGN_OR_RETURN(std::vector<LogicalRulePlan> logical,
                       BuildLogicalPlans(program, analysis));
  DCD_ASSIGN_OR_RETURN(PhysicalPlan plan,
                       BuildPhysicalPlan(program, analysis, logical));
  return RunPlan(plan);
}

Result<EvalStats> Engine::RunPlan(const PhysicalPlan& plan) {
  WallTimer timer;
  EvalStats stats;
  BaseIndexSet base_indexes(plan.base_indexes);

  for (const SccPlan& scc : plan.sccs) {
    // Build indexes this SCC probes; inputs from earlier SCCs are
    // materialized by now.
    for (const PhysicalRule& rule : scc.base_rules) {
      for (const Step& step : rule.steps) {
        if (step.base_index_id >= 0) {
          DCD_RETURN_IF_ERROR(
              base_indexes.EnsureBuilt(step.base_index_id, *catalog_));
        }
      }
    }
    for (const PhysicalRule& rule : scc.delta_rules) {
      for (const Step& step : rule.steps) {
        if (step.base_index_id >= 0) {
          DCD_RETURN_IF_ERROR(
              base_indexes.EnsureBuilt(step.base_index_id, *catalog_));
        }
      }
    }

    SccExecutor executor(plan, scc, catalog_, &base_indexes, options_,
                         static_cast<uint32_t>(stats.num_sccs));
    DCD_RETURN_IF_ERROR(executor.Run(&stats));
    ++stats.num_sccs;
  }
  stats.seconds = timer.ElapsedSeconds();
  return stats;
}

}  // namespace dcdatalog
