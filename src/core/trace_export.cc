#include "core/trace_export.h"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <fstream>
#include <limits>
#include <set>

namespace dcdatalog {
namespace {

/// JSON has no Infinity/NaN literals; anything non-finite here is a bug
/// upstream, but the exporter must still emit parseable output.
void JsonNumber(std::ostream& os, double v) {
  if (!std::isfinite(v)) {
    os << 0;
    return;
  }
  // max_digits10 round-trips doubles; integers still print without a point.
  const auto prev = os.precision(std::numeric_limits<double>::max_digits10);
  os << v;
  os.precision(prev);
}

void WriteHistogram(std::ostream& os, const LogHistogram& h) {
  os << "{\"count\": " << h.count() << ", \"total\": " << h.total()
     << ", \"max\": " << h.max() << ", \"mean\": ";
  JsonNumber(os, h.mean());
  os << ", \"p50\": " << h.Quantile(0.50) << ", \"p90\": " << h.Quantile(0.90)
     << ", \"p99\": " << h.Quantile(0.99) << ", \"buckets\": [";
  bool first = true;
  for (uint32_t b = 0; b < LogHistogram::kBuckets; ++b) {
    if (h.bucket(b) == 0) continue;
    if (!first) os << ", ";
    first = false;
    os << "[" << LogHistogram::BucketLowerBound(b) << ", " << h.bucket(b)
       << "]";
  }
  os << "]}";
}

Status WriteFile(const std::string& path,
                 void (*writer)(const EvalStats&, std::ostream&),
                 const EvalStats& stats, const char* what) {
  std::ofstream out(path, std::ios::trunc);
  if (!out.is_open()) {
    return Status::RuntimeError(std::string("cannot open ") + what +
                                " output file: " + path);
  }
  writer(stats, out);
  out.flush();
  if (!out.good()) {
    return Status::RuntimeError(std::string("failed writing ") + what +
                                " output file: " + path);
  }
  return Status::OK();
}

}  // namespace

void WriteChromeTrace(const EvalStats& stats, std::ostream& os) {
  // Normalize to the run's earliest timestamp so ts values stay small and
  // Perfetto's default viewport lands on the data.
  int64_t t0 = std::numeric_limits<int64_t>::max();
  std::set<uint32_t> workers;
  for (const TraceEvent& ev : stats.trace) {
    t0 = std::min(t0, ev.start_ns);
    workers.insert(ev.worker);
  }
  if (stats.trace.empty()) t0 = 0;

  os << "{\"traceEvents\": [";
  bool first = true;
  for (const uint32_t w : workers) {
    if (!first) os << ",";
    first = false;
    os << "\n{\"name\": \"thread_name\", \"ph\": \"M\", \"pid\": 1, \"tid\": "
       << w << ", \"args\": {\"name\": \"worker " << w << "\"}}";
  }
  for (const TraceEvent& ev : stats.trace) {
    if (!first) os << ",";
    first = false;
    const double ts_us = static_cast<double>(ev.start_ns - t0) * 1e-3;
    os << "\n{\"name\": \"" << TraceEventKindName(ev.kind)
       << "\", \"pid\": 1, \"tid\": " << ev.worker << ", \"ts\": ";
    JsonNumber(os, ts_us);
    if (TraceEventIsSpan(ev.kind)) {
      const double dur_us = static_cast<double>(ev.end_ns - ev.start_ns) * 1e-3;
      os << ", \"ph\": \"X\", \"dur\": ";
      JsonNumber(os, dur_us);
    } else {
      os << ", \"ph\": \"i\", \"s\": \"t\"";
    }
    os << ", \"args\": {\"scc\": " << ev.scc << ", \"tuples\": " << ev.tuples;
    if (ev.kind == TraceEventKind::kDwsDecision ||
        ev.kind == TraceEventKind::kAdmission) {
      os << ", \"proceed\": " << (ev.proceed ? "true" : "false")
         << ", \"omega\": ";
      JsonNumber(os, ev.omega);
      os << ", \"tau_us\": ";
      JsonNumber(os, static_cast<double>(ev.tau_ns) * 1e-3);
      os << ", \"rho\": ";
      JsonNumber(os, ev.rho);
      os << ", \"lambda\": ";
      JsonNumber(os, ev.lambda);
      os << ", \"mu\": ";
      JsonNumber(os, ev.mu);
    }
    os << "}}";
  }
  os << "\n], \"displayTimeUnit\": \"ms\", \"otherData\": "
        "{\"trace_dropped\": "
     << stats.trace_dropped << "}}\n";
}

void WriteMetricsJson(const EvalStats& stats, std::ostream& os) {
  os << "{\"counters\": {";
  bool first = true;
  for (const auto& [name, value] : stats.Counters()) {
    if (!first) os << ", ";
    first = false;
    os << "\"" << name << "\": ";
    JsonNumber(os, value);
  }
  os << "},\n\"trace_events\": " << stats.trace.size()
     << ",\n\"workers\": [";
  for (size_t w = 0; w < stats.worker_metrics.size(); ++w) {
    if (w != 0) os << ",";
    os << "\n{\"worker\": " << w << ", \"iteration_ns\": ";
    WriteHistogram(os, stats.worker_metrics[w].iteration_ns);
    os << ", \"drain_batch\": ";
    WriteHistogram(os, stats.worker_metrics[w].drain_batch);
    os << "}";
  }
  os << "\n]}\n";
}

Status WriteChromeTraceFile(const EvalStats& stats, const std::string& path) {
  return WriteFile(path, &WriteChromeTrace, stats, "trace");
}

Status WriteMetricsJsonFile(const EvalStats& stats, const std::string& path) {
  return WriteFile(path, &WriteMetricsJson, stats, "metrics");
}

}  // namespace dcdatalog
