#ifndef DCDATALOG_CORE_REFERENCE_H_
#define DCDATALOG_CORE_REFERENCE_H_

#include <map>
#include <string>

#include "common/status.h"
#include "datalog/ast.h"
#include "storage/catalog.h"

namespace dcdatalog {

/// A deliberately simple, single-threaded, naive-evaluation Datalog
/// interpreter used as the correctness oracle for the parallel engine (and
/// as the "single-node system" baseline in the benchmark suite). It shares
/// no evaluation code with the engine: rules are evaluated by backtracking
/// over full relations until nothing changes.
///
/// Aggregate semantics match the engine's monotonic aggregates: min/max
/// keep the per-group best, count counts distinct contributors, sum keeps
/// each contributor's latest value (with the same epsilon cutoff).
///
/// Returns one Relation per derived predicate.
Result<std::map<std::string, Relation>> ReferenceEvaluate(
    const Program& program, const Catalog& catalog,
    double sum_epsilon = 1e-9, uint64_t max_rounds = 1000000);

}  // namespace dcdatalog

#endif  // DCDATALOG_CORE_REFERENCE_H_
