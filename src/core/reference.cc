#include "core/reference.h"

#include <cmath>
#include <map>
#include <set>
#include <vector>

#include "common/logging.h"
#include "datalog/analysis.h"

namespace dcdatalog {
namespace {

using Row = std::vector<uint64_t>;

/// Typed binding environment for one rule instantiation.
using Env = std::map<std::string, Value>;

Value EvalAstExpr(const Expr& e, const Env& env) {
  switch (e.op) {
    case ExprOp::kVar: {
      auto it = env.find(e.var);
      DCD_CHECK(it != env.end());
      return it->second;
    }
    case ExprOp::kConst:
      return e.constant;
    case ExprOp::kToDouble:
      return Value::Double(EvalAstExpr(*e.lhs, env).AsDouble());
    case ExprOp::kNeg: {
      Value v = EvalAstExpr(*e.lhs, env);
      return v.type == ColumnType::kDouble ? Value::Double(-v.AsDouble())
                                           : Value::Int(-v.AsInt());
    }
    default: {
      Value l = EvalAstExpr(*e.lhs, env);
      Value r = EvalAstExpr(*e.rhs, env);
      const bool dbl = l.type == ColumnType::kDouble ||
                       r.type == ColumnType::kDouble;
      if (dbl) {
        const double a = l.AsDouble();
        const double b = r.AsDouble();
        switch (e.op) {
          case ExprOp::kAdd:
            return Value::Double(a + b);
          case ExprOp::kSub:
            return Value::Double(a - b);
          case ExprOp::kMul:
            return Value::Double(a * b);
          case ExprOp::kDiv:
            return Value::Double(a / b);
          default:
            break;
        }
      }
      const int64_t a = l.AsInt();
      const int64_t b = r.AsInt();
      switch (e.op) {
        case ExprOp::kAdd:
          return Value::Int(a + b);
        case ExprOp::kSub:
          return Value::Int(a - b);
        case ExprOp::kMul:
          return Value::Int(a * b);
        case ExprOp::kDiv:
          return Value::Int(b == 0 ? 0 : a / b);  // Matches engine semantics.
        default:
          break;
      }
      DCD_CHECK(false);
      return Value::Int(0);
    }
  }
}

bool EvalAstCompare(const Constraint& c, const Env& env) {
  const Value l = EvalAstExpr(*c.lhs, env);
  const Value r = EvalAstExpr(*c.rhs, env);
  switch (c.op) {
    case CmpOp::kEq:
      return l == r;
    case CmpOp::kNe:
      return l != r;
    case CmpOp::kLt:
      return l < r;
    case CmpOp::kLe:
      return l <= r;
    case CmpOp::kGt:
      return l > r;
    case CmpOp::kGe:
      return l >= r;
  }
  return false;
}

/// State of one predicate during naive evaluation.
struct PredState {
  AggFunc func = AggFunc::kNone;
  uint32_t arity = 0;
  ColumnType value_type = ColumnType::kInt;
  std::vector<ColumnType> col_types;

  std::set<Row> tuples;                  // kNone
  std::map<Row, uint64_t> groups;        // aggregates: group → value word
  std::map<Row, std::map<uint64_t, uint64_t>> contribs;  // count/sum

  /// Enumerates the current extension as full rows.
  std::vector<Row> Snapshot() const {
    std::vector<Row> out;
    if (func == AggFunc::kNone) {
      out.assign(tuples.begin(), tuples.end());
      return out;
    }
    out.reserve(groups.size());
    for (const auto& [group, value] : groups) {
      Row row = group;
      row.push_back(value);
      out.push_back(std::move(row));
    }
    return out;
  }

  bool BetterValue(uint64_t candidate, uint64_t current) const {
    if (value_type == ColumnType::kDouble) {
      return func == AggFunc::kMin
                 ? DoubleFromWord(candidate) < DoubleFromWord(current)
                 : DoubleFromWord(candidate) > DoubleFromWord(current);
    }
    return func == AggFunc::kMin
               ? IntFromWord(candidate) < IntFromWord(current)
               : IntFromWord(candidate) > IntFromWord(current);
  }
};

class ReferenceRun {
 public:
  ReferenceRun(const Program& program, const ProgramAnalysis& analysis,
               const Catalog& catalog, double sum_epsilon,
               uint64_t max_rounds)
      : program_(program),
        analysis_(analysis),
        sum_epsilon_(sum_epsilon),
        max_rounds_(max_rounds) {
    for (const auto& [name, info] : analysis.predicates()) {
      PredState& state = preds_[name];
      state.arity = info.arity;
      state.col_types = info.column_types;
      if (!info.is_edb) {
        for (const Rule& rule : program.rules) {
          if (rule.head.predicate != name) continue;
          for (const HeadArg& arg : rule.head.args) {
            if (arg.agg != AggFunc::kNone) state.func = arg.agg;
          }
          break;
        }
        if (state.func != AggFunc::kNone) {
          state.value_type = info.column_types[info.arity - 1];
        }
      } else {
        const Relation* rel = catalog.Find(name);
        DCD_CHECK(rel != nullptr);
        for (uint64_t r = 0; r < rel->size(); ++r) {
          TupleRef row = rel->Row(r);
          state.tuples.insert(Row(row.data, row.data + row.arity));
        }
      }
    }
  }

  Result<std::map<std::string, Relation>> Run() {
    // Stratified naive evaluation: SCCs in dependency order (negated
    // predicates are complete before any rule reads them), each swept to
    // its own fixpoint.
    for (size_t s = 0; s < analysis_.sccs().size(); ++s) {
      std::vector<const Rule*> scc_rules;
      for (size_t r = 0; r < program_.rules.size(); ++r) {
        if (analysis_.rule_infos()[r].head_scc == static_cast<int>(s)) {
          scc_rules.push_back(&program_.rules[r]);
        }
      }
      if (scc_rules.empty()) continue;
      bool converged = false;
      for (uint64_t round = 0; round < max_rounds_; ++round) {
        changed_ = false;
        for (const Rule* rule : scc_rules) EvaluateRule(*rule);
        if (!changed_) {
          converged = true;
          break;
        }
      }
      if (!converged) {
        return Status::ResourceExhausted(
            "reference evaluation did not reach fixpoint within max_rounds");
      }
    }
    return Materialize();
  }

 private:
  void EvaluateRule(const Rule& rule) {
    // Take snapshots so derivations within the sweep see a stable view.
    std::vector<const BodyLiteral*> atoms;
    std::vector<const BodyLiteral*> constraints;
    std::vector<const BodyLiteral*> negated;
    for (const BodyLiteral& lit : rule.body) {
      if (lit.kind != BodyLiteral::Kind::kAtom) {
        constraints.push_back(&lit);
      } else if (lit.negated) {
        negated.push_back(&lit);
      } else {
        atoms.push_back(&lit);
      }
    }
    std::vector<std::vector<Row>> extents(atoms.size());
    for (size_t i = 0; i < atoms.size(); ++i) {
      extents[i] = preds_[atoms[i]->atom.predicate].Snapshot();
    }
    Env env;
    Enumerate(rule, atoms, constraints, negated, extents, 0, &env);
  }

  /// True iff some tuple of the predicate matches the (fully bound)
  /// negated atom under `env`. Wildcards match anything.
  bool NegatedAtomHolds(const Atom& atom, const Env& env) {
    for (const Row& row : preds_[atom.predicate].Snapshot()) {
      bool match = true;
      for (size_t c = 0; c < atom.args.size() && match; ++c) {
        const Term& t = atom.args[c];
        switch (t.kind) {
          case TermKind::kWildcard:
            break;
          case TermKind::kConstant:
            match = row[c] == t.constant.word;
            break;
          case TermKind::kVariable:
            match = env.at(t.var).word == row[c];
            break;
        }
      }
      if (match) return true;
    }
    return false;
  }

  /// Applies every not-yet-applied constraint that is currently evaluable;
  /// returns false if some evaluable constraint fails. `applied` tracks
  /// placement across the recursion level.
  bool ApplyConstraints(const std::vector<const BodyLiteral*>& constraints,
                        std::vector<bool>* applied, Env* env,
                        std::vector<std::string>* bound_here) {
    bool progressed = true;
    while (progressed) {
      progressed = false;
      for (size_t i = 0; i < constraints.size(); ++i) {
        if ((*applied)[i]) continue;
        const Constraint& c = constraints[i]->constraint;
        // Binding form: Var = expr with Var unbound, expr evaluable.
        auto evaluable = [&](const Expr& e) {
          std::vector<std::string> vars;
          e.CollectVars(&vars);
          for (const auto& v : vars) {
            if (env->count(v) == 0) return false;
          }
          return true;
        };
        if (c.op == CmpOp::kEq && c.lhs->op == ExprOp::kVar &&
            env->count(c.lhs->var) == 0 && evaluable(*c.rhs)) {
          (*env)[c.lhs->var] = EvalAstExpr(*c.rhs, *env);
          bound_here->push_back(c.lhs->var);
          (*applied)[i] = true;
          progressed = true;
        } else if (c.op == CmpOp::kEq && c.rhs->op == ExprOp::kVar &&
                   env->count(c.rhs->var) == 0 && evaluable(*c.lhs)) {
          (*env)[c.rhs->var] = EvalAstExpr(*c.lhs, *env);
          bound_here->push_back(c.rhs->var);
          (*applied)[i] = true;
          progressed = true;
        } else if (evaluable(*c.lhs) && evaluable(*c.rhs)) {
          (*applied)[i] = true;
          progressed = true;
          if (!EvalAstCompare(c, *env)) return false;
        }
      }
    }
    return true;
  }

  void Enumerate(const Rule& rule,
                 const std::vector<const BodyLiteral*>& atoms,
                 const std::vector<const BodyLiteral*>& constraints,
                 const std::vector<const BodyLiteral*>& negated,
                 const std::vector<std::vector<Row>>& extents, size_t depth,
                 Env* env) {
    if (depth == atoms.size()) {
      // All positive atoms matched; apply constraints, then negation.
      std::vector<std::string> bound_here;
      Env final_env = *env;  // Constraints may bind fresh vars.
      std::vector<bool> applied(constraints.size(), false);
      if (!ApplyConstraints(constraints, &applied, &final_env,
                            &bound_here)) {
        return;
      }
      for (size_t i = 0; i < constraints.size(); ++i) {
        DCD_CHECK(applied[i]);  // Safety analysis guarantees evaluability.
      }
      for (const BodyLiteral* lit : negated) {
        if (NegatedAtomHolds(lit->atom, final_env)) return;
      }
      EmitHead(rule, final_env);
      return;
    }
    const Atom& atom = atoms[depth]->atom;
    const std::vector<ColumnType>& types =
        preds_[atom.predicate].col_types;
    for (const Row& row : extents[depth]) {
      std::vector<std::string> bound_here;
      bool ok = true;
      for (size_t c = 0; c < atom.args.size() && ok; ++c) {
        const Term& t = atom.args[c];
        switch (t.kind) {
          case TermKind::kWildcard:
            break;
          case TermKind::kConstant:
            ok = row[c] == t.constant.word;
            break;
          case TermKind::kVariable: {
            auto it = env->find(t.var);
            if (it != env->end()) {
              ok = it->second.word == row[c];
            } else {
              (*env)[t.var] = Value{types[c], row[c]};
              bound_here.push_back(t.var);
            }
            break;
          }
        }
      }
      if (ok) {
        Enumerate(rule, atoms, constraints, negated, extents, depth + 1, env);
      }
      for (const std::string& v : bound_here) env->erase(v);
    }
  }

  void EmitHead(const Rule& rule, const Env& env) {
    PredState& state = preds_[rule.head.predicate];
    auto term_word = [&](const Term& t, ColumnType target) -> uint64_t {
      Value v = t.kind == TermKind::kConstant ? t.constant
                                              : env.at(t.var);
      if (target == ColumnType::kDouble && v.type != ColumnType::kDouble) {
        return WordFromDouble(v.AsDouble());
      }
      return v.word;
    };

    if (state.func == AggFunc::kNone) {
      Row row(state.arity);
      for (size_t i = 0; i < rule.head.args.size(); ++i) {
        row[i] = term_word(rule.head.args[i].term(), state.col_types[i]);
      }
      if (state.tuples.insert(std::move(row)).second) changed_ = true;
      return;
    }

    Row group(state.arity - 1);
    for (uint32_t i = 0; i + 1 < state.arity; ++i) {
      group[i] = term_word(rule.head.args[i].term(), state.col_types[i]);
    }
    const HeadArg& agg_arg = rule.head.args.back();
    switch (state.func) {
      case AggFunc::kMin:
      case AggFunc::kMax: {
        const uint64_t value =
            term_word(agg_arg.terms[0], state.value_type);
        auto [it, inserted] = state.groups.try_emplace(group, value);
        if (inserted) {
          changed_ = true;
        } else if (state.BetterValue(value, it->second)) {
          it->second = value;
          changed_ = true;
        }
        break;
      }
      case AggFunc::kCount: {
        const uint64_t contributor =
            term_word(agg_arg.terms[0], ColumnType::kInt);
        auto& contribs = state.contribs[group];
        if (contribs.emplace(contributor, 1).second) {
          state.groups[group] =
              WordFromInt(static_cast<int64_t>(contribs.size()));
          changed_ = true;
        }
        break;
      }
      case AggFunc::kSum: {
        const uint64_t contributor =
            term_word(agg_arg.terms[0], ColumnType::kInt);
        const uint64_t value = term_word(agg_arg.terms[1], state.value_type);
        auto& contribs = state.contribs[group];
        const bool dbl = state.value_type == ColumnType::kDouble;
        auto it = contribs.find(contributor);
        double delta_d = 0;
        int64_t delta_i = 0;
        if (it == contribs.end()) {
          contribs.emplace(contributor, value);
          if (dbl) {
            delta_d = DoubleFromWord(value);
          } else {
            delta_i = IntFromWord(value);
          }
        } else {
          if (dbl) {
            delta_d = DoubleFromWord(value) - DoubleFromWord(it->second);
            if (std::fabs(delta_d) <= sum_epsilon_) return;
          } else {
            delta_i = IntFromWord(value) - IntFromWord(it->second);
            if (delta_i == 0) return;
          }
          it->second = value;
        }
        auto [git, inserted] = state.groups.try_emplace(
            group, dbl ? WordFromDouble(delta_d) : WordFromInt(delta_i));
        if (!inserted) {
          git->second = dbl ? WordFromDouble(DoubleFromWord(git->second) +
                                             delta_d)
                            : WordFromInt(IntFromWord(git->second) + delta_i);
        }
        changed_ = true;
        break;
      }
      case AggFunc::kNone:
        break;
    }
  }

  Result<std::map<std::string, Relation>> Materialize() {
    std::map<std::string, Relation> out;
    for (const auto& [name, info] : analysis_.predicates()) {
      if (info.is_edb) continue;
      Relation rel(name, analysis_.SchemaOf(name));
      for (const Row& row : preds_[name].Snapshot()) {
        rel.Append(TupleRef{row.data(), static_cast<uint32_t>(row.size())});
      }
      out.emplace(name, std::move(rel));
    }
    return out;
  }

  const Program& program_;
  const ProgramAnalysis& analysis_;
  const double sum_epsilon_;
  const uint64_t max_rounds_;
  std::map<std::string, PredState> preds_;
  bool changed_ = false;
};

}  // namespace

Result<std::map<std::string, Relation>> ReferenceEvaluate(
    const Program& program, const Catalog& catalog, double sum_epsilon,
    uint64_t max_rounds) {
  DCD_ASSIGN_OR_RETURN(ProgramAnalysis analysis,
                       ProgramAnalysis::Analyze(program, catalog));
  ReferenceRun run(program, analysis, catalog, sum_epsilon, max_rounds);
  return run.Run();
}

}  // namespace dcdatalog
