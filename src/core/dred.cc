#include "core/dred.h"

#include <algorithm>
#include <utility>

namespace dcdatalog {

std::string DredOldName(const std::string& pred) {
  return "__dred_old_" + pred;
}
std::string DredRmName(const std::string& pred) { return "__dred_rm_" + pred; }
std::string DredDName(const std::string& pred) { return "__dred_d_" + pred; }
std::string DredSeedName(const std::string& pred) {
  return "__dred_seed_" + pred;
}

Result<Program> BuildDeleteClosureProgram(
    const Program& program, const ProgramAnalysis& analysis, int scc_id,
    const std::set<std::string>& removed_rels) {
  const SccInfo& scc = analysis.sccs()[scc_id];
  const std::set<std::string> scc_preds(scc.predicates.begin(),
                                        scc.predicates.end());

  Program closure;
  for (int r : scc.rule_indices) {
    const Rule& rule = program.rules[r];
    if (rule.head.HasAggregate()) {
      return Status::Unsupported(
          "DRed deletion closure over aggregate rule for '" +
          rule.head.predicate + "'; aggregate deletes require full recompute");
    }
    for (size_t j = 0; j < rule.body.size(); ++j) {
      const BodyLiteral& target = rule.body[j];
      if (target.kind != BodyLiteral::Kind::kAtom || target.negated) continue;
      const std::string& p = target.atom.predicate;
      const bool internal = scc_preds.count(p) > 0;
      if (!internal && removed_rels.count(p) == 0) continue;

      Rule drule;
      drule.line = rule.line;
      drule.head = rule.head;
      drule.head.predicate = DredDName(rule.head.predicate);
      drule.body.reserve(rule.body.size());
      for (size_t i = 0; i < rule.body.size(); ++i) {
        BodyLiteral lit = rule.body[i].Clone();
        if (lit.kind == BodyLiteral::Kind::kAtom) {
          if (i == j) {
            lit.atom.predicate = internal ? DredDName(p) : DredRmName(p);
          } else {
            lit.atom.predicate = DredOldName(lit.atom.predicate);
          }
        }
        drule.body.push_back(std::move(lit));
      }
      closure.rules.push_back(std::move(drule));
    }
  }
  for (const std::string& p : scc.predicates) {
    closure.outputs.push_back(DredDName(p));
  }
  return closure;
}

Result<Program> BuildRederiveProgram(const Program& program,
                                     const ProgramAnalysis& analysis,
                                     int scc_id) {
  const SccInfo& scc = analysis.sccs()[scc_id];

  Program rederive;
  for (const std::string& p : scc.predicates) {
    const PredicateInfo& info = analysis.predicate(p);
    Rule seed;
    seed.head.predicate = p;
    Atom seed_atom;
    seed_atom.predicate = DredSeedName(p);
    for (uint32_t c = 0; c < info.arity; ++c) {
      Term v = Term::Variable("X" + std::to_string(c));
      seed_atom.args.push_back(v);
      HeadArg arg;
      arg.terms.push_back(std::move(v));
      seed.head.args.push_back(std::move(arg));
    }
    BodyLiteral lit;
    lit.kind = BodyLiteral::Kind::kAtom;
    lit.atom = std::move(seed_atom);
    seed.body.push_back(std::move(lit));
    rederive.rules.push_back(std::move(seed));
  }
  for (int r : scc.rule_indices) {
    rederive.rules.push_back(program.rules[r].Clone());
  }
  rederive.outputs = scc.predicates;
  return rederive;
}

}  // namespace dcdatalog
