#ifndef DCDATALOG_CORE_DRED_H_
#define DCDATALOG_CORE_DRED_H_

#include <set>
#include <string>

#include "common/status.h"
#include "datalog/analysis.h"
#include "datalog/ast.h"

namespace dcdatalog {

/// DRed (delete-and-rederive) maintenance is implemented as a program
/// transformation: deletions over a recursive SCC become two ordinary
/// Datalog programs evaluated by the regular parallel engine against
/// temporary catalogs, so the maintenance path reuses the exact join,
/// routing, and fixpoint machinery the from-scratch path runs (and that
/// the fuzzer exercises).
///
/// Name mangling for the auxiliary relations (all double-underscore
/// prefixed, so they cannot collide with user predicates, which the lexer
/// restricts to identifier syntax):
///   __dred_old_<p>   snapshot of p before the deletion batch
///   __dred_rm_<p>    rows removed from p this batch (external inputs)
///   __dred_d_<p>     over-approximated deleted tuples of SCC predicate p
///   __dred_seed_<p>  survivors (old minus deleted) seeding re-derivation
std::string DredOldName(const std::string& pred);
std::string DredRmName(const std::string& pred);
std::string DredDName(const std::string& pred);
std::string DredSeedName(const std::string& pred);

/// Builds the over-deletion closure program for one SCC. For every rule of
/// the SCC and every positive body atom over a removal-affected relation
/// (a member of `removed_rels`, or any same-SCC predicate — internal
/// deletions always propagate), emits one rule deriving
/// __dred_d_<head> with that atom renamed to __dred_rm_<p> (external) or
/// __dred_d_<p> (internal) and every other positive atom renamed to its
/// __dred_old_<p> snapshot. Negated atoms and constraints are copied with
/// the negated predicate renamed to its old snapshot (eligibility analysis
/// guarantees negated predicates are never removal-affected). Each emitted
/// rule has at most one recursive goal, driven first, with no recursive
/// probes — closure programs always plan.
///
/// The SCC's rules must be aggregate-free; aggregate deletions fall back
/// to full recomputation before this is reached.
Result<Program> BuildDeleteClosureProgram(
    const Program& program, const ProgramAnalysis& analysis, int scc_id,
    const std::set<std::string>& removed_rels);

/// Builds the re-derivation program for one SCC: one seed rule
/// `p(...) :- __dred_seed_<p>(...)` per SCC predicate plus verbatim copies
/// of the SCC's original rules. Evaluated against a catalog holding the
/// survivor seeds and the corrected (post-deletion) values of every
/// external relation, its fixpoint is exactly the SCC's corrected
/// contents: survivors are a subset of the true fixpoint (a tuple outside
/// the deletion closure has a derivation avoiding every removed row), and
/// re-running the rules to fixpoint adds back precisely the over-deleted
/// tuples that remain derivable.
Result<Program> BuildRederiveProgram(const Program& program,
                                     const ProgramAnalysis& analysis,
                                     int scc_id);

}  // namespace dcdatalog

#endif  // DCDATALOG_CORE_DRED_H_
