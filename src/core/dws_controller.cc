#include "core/dws_controller.h"

#include <algorithm>
#include <cmath>

#include "common/hot_path.h"

namespace dcdatalog {

DwsController::DwsController(uint32_t num_sources,
                             const EngineOptions& options)
    : options_(options),
      arrivals_(num_sources),
      last_drain_ns_(num_sources, 0) {}

DCD_HOT_ROOT void DwsController::OnDrain(uint32_t j, uint64_t n,
                                         int64_t now_ns) {
  if (n == 0) return;
  if (last_drain_ns_[j] != 0) {
    const double interval_s =
        static_cast<double>(now_ns - last_drain_ns_[j]) * 1e-9;
    // n tuples arrived over the interval: approximate the per-tuple
    // inter-arrival time by the interval mean.
    arrivals_[j].Add(std::max(interval_s / static_cast<double>(n), 1e-12));
    if (arrivals_[j].count() > 4096) arrivals_[j].Decay();
  }
  last_drain_ns_[j] = now_ns;
}

DCD_HOT_ROOT void DwsController::OnIteration(int64_t duration_ns,
                                             uint64_t tuples) {
  const double per_tuple_s = static_cast<double>(duration_ns) * 1e-9 /
                             static_cast<double>(std::max<uint64_t>(tuples, 1));
  service_.Add(std::max(per_tuple_s, 1e-12));
  if (service_.count() > 4096) service_.Decay();
}

DCD_HOT_ROOT void DwsController::Update(
    const std::vector<uint64_t>& buffer_sizes) {
  omega_ = 0.0;
  tau_ns_ = 0;
  overloaded_ = false;
  if (service_.count() == 0) return;  // No service estimate yet: don't wait.

  // Equation (1): weight each source by its buffer occupancy |M_i^j|;
  // sources with empty buffers get weight 1 so a quiet system still has a
  // defined arrival process.
  double weight_sum = 0.0;
  double weighted_mean_sum = 0.0;   // Σ w_j · λ_j^{-1}
  double weighted_second_sum = 0.0; // Σ w_j · (σ²_{a,j} + λ_j^{-2})
  for (size_t j = 0; j < arrivals_.size(); ++j) {
    const Welford& a = arrivals_[j];
    if (a.count() == 0) continue;
    const double w = buffer_sizes.empty()
                         ? 1.0
                         : static_cast<double>(buffer_sizes[j]) + 1.0;
    const double mean = a.mean();  // = λ_j^{-1}
    weight_sum += w;
    weighted_mean_sum += w * mean;
    weighted_second_sum += w * (a.variance() + mean * mean);
  }
  if (weight_sum == 0.0 || weighted_mean_sum <= 0.0) return;

  const double inv_lambda = weighted_mean_sum / weight_sum;
  lambda_ = 1.0 / inv_lambda;
  const double sigma_a2 =
      std::max(weighted_second_sum / weight_sum - inv_lambda * inv_lambda,
               0.0);

  const double inv_mu = service_.mean();
  mu_ = 1.0 / inv_mu;
  const double sigma_s2 = service_.variance();

  rho_ = lambda_ / mu_;
  const int64_t budget_ns =
      static_cast<int64_t>(options_.dws_timeout_us) * 1000;
  overloaded_ = rho_ >= kMaxRho;
  if (overloaded_) {
    // Overloaded regime (lambda >= mu up to the guard band): the queue has
    // no steady state and Kingman's L_q diverges, so evaluating Equation
    // (2) here would report a finite-but-bogus queue length. Saturate
    // deliberately instead: wait for as large a batch as the
    // deadlock-avoidance timeout permits. rho_ keeps the true, unclamped
    // utilization so telemetry shows the overload rather than hiding it
    // at 0.95.
    omega_ = kMaxOmega;
    tau_ns_ = budget_ns;
    return;
  }

  // Kingman's formula, Equation (2) — valid only below saturation.
  const double ca2 = lambda_ * lambda_ * sigma_a2;
  const double cs2 = mu_ * mu_ * sigma_s2;
  const double lq = rho_ * rho_ * (ca2 + cs2) / (2.0 * (1.0 - rho_));

  omega_ = std::clamp(lq, 0.0, kMaxOmega);
  const double tau_s = omega_ * inv_lambda;  // L_q / λ
  tau_ns_ = std::clamp<int64_t>(static_cast<int64_t>(tau_s * 1e9), 0,
                                budget_ns);
}

}  // namespace dcdatalog
