#ifndef DCDATALOG_CORE_TRACE_EXPORT_H_
#define DCDATALOG_CORE_TRACE_EXPORT_H_

#include <ostream>
#include <string>

#include "common/status.h"
#include "core/engine.h"

namespace dcdatalog {

/// Serializes EvalStats::trace as Chrome trace-event JSON (the
/// `{"traceEvents": [...]}` object form), loadable in Perfetto or
/// chrome://tracing. One track per worker (thread_name metadata); span
/// events (iteration, park, barrier/SSP/DWS waits) become ph:"X" complete
/// events with microsecond ts/dur normalized to the run's earliest event;
/// instants (drain, block_push, scc_begin/end, dws_decision) become ph:"i"
/// thread-scoped markers. kDwsDecision events carry the full queueing-model
/// state (omega, tau_us, rho, lambda, mu, proceed) in their args, so the
/// controller's reasoning can be read directly off the timeline.
void WriteChromeTrace(const EvalStats& stats, std::ostream& os);

/// Serializes the flat metrics snapshot: every EvalStats counter (from
/// Counters(), so the set cannot drift from ToString), trace-ring loss, and
/// one object per worker with its iteration-latency and drain-batch
/// log-bucket histograms (count/mean/max, factor-of-2 p50/p90/p99, and the
/// non-empty buckets as [lower_bound, count] pairs).
void WriteMetricsJson(const EvalStats& stats, std::ostream& os);

/// File-writing wrappers: open, serialize, flush; any I/O failure returns a
/// RuntimeError naming the path.
Status WriteChromeTraceFile(const EvalStats& stats, const std::string& path);
Status WriteMetricsJsonFile(const EvalStats& stats, const std::string& path);

}  // namespace dcdatalog

#endif  // DCDATALOG_CORE_TRACE_EXPORT_H_
