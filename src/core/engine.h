#ifndef DCDATALOG_CORE_ENGINE_H_
#define DCDATALOG_CORE_ENGINE_H_

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "common/histogram.h"
#include "common/options.h"
#include "common/status.h"
#include "common/string_dict.h"
#include "common/trace.h"
#include "datalog/ast.h"
#include "planner/physical_plan.h"
#include "storage/catalog.h"

namespace dcdatalog {

/// Per-worker latency/size distributions, collected on every run (the
/// log-bucket adds are counter-cheap, so unlike tracing they need no flag).
/// Merged across SCCs; exported by WriteMetricsJson.
struct WorkerMetrics {
  LogHistogram iteration_ns;   // Wall time of each local iteration.
  LogHistogram drain_batch;    // Ring tuples consumed per non-empty drain.
};

/// Counters describing one evaluation run.
struct EvalStats {
  double seconds = 0.0;
  uint64_t num_sccs = 0;
  uint64_t total_local_iterations = 0;  // Summed over workers and SCCs.
  uint64_t max_local_iterations = 0;    // Slowest worker's count, any SCC.
  uint64_t tuples_routed = 0;           // Routed by Distribute (incl. self).
  uint64_t tuples_folded = 0;           // Removed by partial aggregation.
  uint64_t tuples_emitted = 0;          // Derivations handed to Distribute.
  uint64_t blocks_sent = 0;             // MsgBlocks pushed through rings.
  uint64_t self_loop_tuples = 0;        // Routed via the self-loop bypass.
  uint64_t merges = 0;                  // Wire tuples offered to Gather.
  uint64_t accepts = 0;                 // ... that changed a table.
  uint64_t cache_hits = 0;              // Existence-cache fast paths.
  /// Key/tuple comparisons spent probing the merge indexes — the collision
  /// resolution work of whichever merge_index_backend is active. The
  /// flat-vs-btree ablation reads differently here even when wall time is
  /// close: probe comparisons are the dependent-load chain the flat
  /// structures exist to shorten.
  uint64_t merge_probe_cmps = 0;
  /// Driving batches the batch pipeline executor ran (0 under
  /// --pipeline-executor=tuple — the ablation baseline has no batches).
  uint64_t pipeline_batches = 0;
  /// Driving rows admitted into batches after the driving scan's checks
  /// (the lanes the vectorized steps actually processed).
  uint64_t pipeline_rows_selected = 0;
  /// Cumulative time workers spent blocked in coordination — barrier spins
  /// (Global), slack waits (SSP), ω/τ waits and inactive parking (DWS).
  /// This is the quantity the coordination strategies trade off; on
  /// machines with fewer cores than workers it is the observable signal
  /// (wall time alone hides it because the OS reuses blocked slices).
  double idle_wait_seconds = 0.0;
  /// Events lost to trace-ring overwrite (0 unless tracing is on and a
  /// worker outran its ring).
  uint64_t trace_dropped = 0;

  /// Populated only when EngineOptions::enable_trace is set: the merged
  /// snapshot of every worker's trace ring, in per-worker append order.
  std::vector<TraceEvent> trace;

  /// One entry per worker (indexed by worker id), always populated.
  std::vector<WorkerMetrics> worker_metrics;

  /// Every public counter as a (name, value) pair, in declaration order.
  /// ToString and the metrics exporter are both generated from this list,
  /// so a counter listed here cannot appear in one but not the other. The
  /// coverage test in engine_test.cc stamps a distinct sentinel into every
  /// struct field and asserts each sentinel surfaces in ToString() — when
  /// adding a counter, add it to the struct, to Counters(), and to that
  /// test's sentinel list.
  std::vector<std::pair<const char*, double>> Counters() const;

  std::string ToString() const;
};

/// The DCDatalog execution engine: evaluates a compiled physical plan over
/// a catalog, SCC by SCC, running each recursive SCC with the configured
/// coordination strategy (Global / SSP / DWS). Results are materialized
/// back into the catalog under their predicate names.
class Engine {
 public:
  Engine(Catalog* catalog, EngineOptions options)
      : catalog_(catalog), options_(options.Resolved()) {}

  /// Parses nothing — takes an analyzed program, plans and runs it.
  Result<EvalStats> Run(const Program& program);

  /// Runs an already-built physical plan.
  Result<EvalStats> RunPlan(const PhysicalPlan& plan);

  const EngineOptions& options() const { return options_; }

 private:
  Catalog* catalog_;
  EngineOptions options_;
};

}  // namespace dcdatalog

#endif  // DCDATALOG_CORE_ENGINE_H_
