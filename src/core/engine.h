#ifndef DCDATALOG_CORE_ENGINE_H_
#define DCDATALOG_CORE_ENGINE_H_

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "common/histogram.h"
#include "common/options.h"
#include "common/status.h"
#include "common/string_dict.h"
#include "common/trace.h"
#include "datalog/ast.h"
#include "planner/physical_plan.h"
#include "storage/catalog.h"
#include "storage/updates.h"

namespace dcdatalog {

/// Per-worker latency/size distributions, collected on every run (the
/// log-bucket adds are counter-cheap, so unlike tracing they need no flag).
/// Merged across SCCs; exported by WriteMetricsJson.
struct WorkerMetrics {
  LogHistogram iteration_ns;   // Wall time of each local iteration.
  LogHistogram drain_batch;    // Ring tuples consumed per non-empty drain.
};

/// Counters describing one evaluation run.
struct EvalStats {
  double seconds = 0.0;
  uint64_t num_sccs = 0;
  uint64_t total_local_iterations = 0;  // Summed over workers and SCCs.
  uint64_t max_local_iterations = 0;    // Slowest worker's count, any SCC.
  uint64_t tuples_routed = 0;           // Routed by Distribute (incl. self).
  uint64_t tuples_folded = 0;           // Removed by partial aggregation.
  uint64_t tuples_emitted = 0;          // Derivations handed to Distribute.
  uint64_t blocks_sent = 0;             // MsgBlocks pushed through rings.
  uint64_t self_loop_tuples = 0;        // Routed via the self-loop bypass.
  uint64_t merges = 0;                  // Wire tuples offered to Gather.
  uint64_t accepts = 0;                 // ... that changed a table.
  uint64_t cache_hits = 0;              // Existence-cache fast paths.
  /// Key/tuple comparisons spent probing the merge indexes — the collision
  /// resolution work of whichever merge_index_backend is active. The
  /// flat-vs-btree ablation reads differently here even when wall time is
  /// close: probe comparisons are the dependent-load chain the flat
  /// structures exist to shorten.
  uint64_t merge_probe_cmps = 0;
  /// Driving batches the batch pipeline executor ran (0 under
  /// --pipeline-executor=tuple — the ablation baseline has no batches).
  uint64_t pipeline_batches = 0;
  /// Driving rows admitted into batches after the driving scan's checks
  /// (the lanes the vectorized steps actually processed).
  uint64_t pipeline_rows_selected = 0;
  /// Cumulative time workers spent blocked in coordination — barrier spins
  /// (Global), slack waits (SSP), ω/τ waits and inactive parking (DWS).
  /// This is the quantity the coordination strategies trade off; on
  /// machines with fewer cores than workers it is the observable signal
  /// (wall time alone hides it because the OS reuses blocked slices).
  double idle_wait_seconds = 0.0;
  /// Events lost to trace-ring overwrite (0 unless tracing is on and a
  /// worker outran its ring).
  uint64_t trace_dropped = 0;
  /// Streaming-update batches this run applied (1 per ApplyUpdates call,
  /// 0 for from-scratch runs).
  uint64_t update_batches = 0;
  /// Net EDB tuples in the applied batches after set-semantics netting
  /// (inserts of absent tuples + removed stored copies).
  uint64_t delta_tuples_in = 0;
  /// Tuples the DRed delete path re-derived: over-deleted during closure,
  /// then recovered by re-running the SCC's rules from the survivors.
  uint64_t rederived_tuples = 0;
  /// Morsels a loaded worker published from its driving-set tail for idle
  /// workers to steal (docs/INTERNALS.md §11; 0 under --steal=off).
  uint64_t morsels_published = 0;
  /// Published morsels claimed and executed by a worker other than the
  /// owner (the rest were reclaimed by their owner at iteration end).
  uint64_t morsels_stolen = 0;
  /// Driving tuples executed through stolen morsels.
  uint64_t tuples_stolen = 0;
  /// Evaluation gangs that exceeded the shared WorkerPool's capacity and
  /// fell back to dedicated threads (oversubscription signal; 0 when no
  /// pool is configured or the gang fit).
  uint64_t pool_fallback_gangs = 0;

  /// Populated only when EngineOptions::enable_trace is set: the merged
  /// snapshot of every worker's trace ring, in per-worker append order.
  std::vector<TraceEvent> trace;

  /// One entry per worker (indexed by worker id), always populated.
  std::vector<WorkerMetrics> worker_metrics;

  /// Every public counter as a (name, value) pair, in declaration order.
  /// ToString and the metrics exporter are both generated from this list,
  /// so a counter listed here cannot appear in one but not the other. The
  /// coverage test in engine_test.cc stamps a distinct sentinel into every
  /// struct field and asserts each sentinel surfaces in ToString() — when
  /// adding a counter, add it to the struct, to Counters(), and to that
  /// test's sentinel list.
  std::vector<std::pair<const char*, double>> Counters() const;

  std::string ToString() const;
};

/// The DCDatalog execution engine: evaluates a compiled physical plan over
/// a catalog, SCC by SCC, running each recursive SCC with the configured
/// coordination strategy (Global / SSP / DWS). Results are materialized
/// back into the catalog under their predicate names.
class Engine {
 public:
  Engine(Catalog* catalog, EngineOptions options);
  ~Engine();

  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;

  /// Parses nothing — takes an analyzed program, plans and runs it.
  /// Calling this while an incremental session is live tears the session
  /// down first (deterministically, before any planning): the run replaces
  /// the catalog relations the retained replicas/watermarks describe, so
  /// the session could never be resumed correctly afterwards.
  Result<EvalStats> Run(const Program& program);

  /// Runs an already-built physical plan. Same incremental-session
  /// invalidation contract as Run().
  Result<EvalStats> RunPlan(const PhysicalPlan& plan);

  /// Starts an incremental session: plans `program` with per-rule update
  /// versions (delta rewrites driving newly-arrived rows of one body atom),
  /// evaluates it to fixpoint, and retains the per-worker merge structures,
  /// base indexes, and relation watermarks so later ApplyUpdates calls can
  /// re-drive from deltas instead of recomputing. Returns the initial
  /// run's stats.
  Result<EvalStats> BeginIncremental(const Program& program);

  /// Applies one batch of EDB inserts/deletes and incrementally restores
  /// the fixpoint. Inserts re-enter the retained semi-naive loop through
  /// the update rules; deletes run support-count maintenance
  /// (non-recursive SCCs) or DRed delete-and-rederive (recursive SCCs).
  /// Batches the planner or eligibility analysis cannot handle
  /// incrementally fall back to a transparent full recompute — either way
  /// the maintained fixpoint is identical to a from-scratch Run over the
  /// updated EDB. Requires BeginIncremental first.
  Result<EvalStats> ApplyUpdates(const ResolvedUpdateBatch& batch);

  bool incremental_active() const { return inc_ != nullptr; }

  const EngineOptions& options() const { return options_; }

 private:
  struct IncrementalState;

  /// Full evaluation of the incremental session's plan, retaining worker
  /// state into inc_. Used by BeginIncremental and by the fallback path.
  Result<EvalStats> RunRetaining();

  Status RunDeletePhase(std::map<std::string, Relation>* old_copies,
                        std::map<std::string, Relation>* removed_rows,
                        EvalStats* stats);
  Status CountingDelete(size_t scc_idx,
                        std::map<std::string, Relation>* old_copies,
                        std::map<std::string, Relation>* removed_rows,
                        EvalStats* stats);
  Status DredDelete(size_t scc_idx,
                    std::map<std::string, Relation>* old_copies,
                    std::map<std::string, Relation>* removed_rows,
                    EvalStats* stats);

  Catalog* catalog_;
  EngineOptions options_;
  std::unique_ptr<IncrementalState> inc_;
};

}  // namespace dcdatalog

#endif  // DCDATALOG_CORE_ENGINE_H_
