#include "concurrent/worker_pool.h"

#include <algorithm>

#include "common/chaos.h"

namespace dcdatalog {

void RunWorkers(uint32_t num_workers,
                const std::function<void(uint32_t)>& fn) {
  if (num_workers == 1) {
    fn(0);
    return;
  }
  std::vector<std::thread> threads;
  threads.reserve(num_workers);
  for (uint32_t w = 0; w < num_workers; ++w) {
    threads.emplace_back([&fn, w] {
      // Fuzzing hook: staggers worker start-up so the base phase does not
      // always begin in lockstep.
      DCD_CHAOS_POINT(kWorkerStart);
      fn(w);
    });
  }
  for (auto& t : threads) t.join();
}

void ParallelFor(uint32_t num_workers, uint64_t n,
                 const std::function<void(uint64_t, uint64_t)>& fn) {
  if (n == 0) return;
  num_workers = static_cast<uint32_t>(
      std::min<uint64_t>(std::max<uint32_t>(num_workers, 1), n));
  const uint64_t chunk = (n + num_workers - 1) / num_workers;
  RunWorkers(num_workers, [&](uint32_t w) {
    const uint64_t begin = w * chunk;
    const uint64_t end = std::min(begin + chunk, n);
    if (begin < end) fn(begin, end);
  });
}

}  // namespace dcdatalog
