#include "concurrent/worker_pool.h"

#include <algorithm>
#include <exception>

#include "common/chaos.h"
#include "common/mutex.h"
#include "common/thread_annotations.h"

namespace dcdatalog {
namespace {

/// The pool's only shared control state: the first exception any worker
/// threw. Lock-guarded (and TSA-annotated) rather than atomic — it is
/// touched at most once per evaluation, never on the per-iteration paths.
class ErrorSlot {
 public:
  void Capture(std::exception_ptr error) DCD_EXCLUDES(mu_) {
    MutexLock lock(&mu_);
    if (first_ == nullptr) first_ = std::move(error);
  }

  /// Rethrows the captured exception, if any. Call after every worker
  /// joined — no lock is needed then, but taking it keeps the invariant
  /// checkable rather than argued.
  void RethrowIfSet() DCD_EXCLUDES(mu_) {
    std::exception_ptr error;
    {
      MutexLock lock(&mu_);
      error = first_;
    }
    if (error != nullptr) std::rethrow_exception(error);
  }

 private:
  Mutex mu_;
  std::exception_ptr first_ DCD_GUARDED_BY(mu_);
};

}  // namespace

void RunWorkers(uint32_t num_workers,
                const std::function<void(uint32_t)>& fn) {
  if (num_workers == 1) {
    fn(0);
    return;
  }
  ErrorSlot errors;
  std::vector<std::thread> threads;
  threads.reserve(num_workers);
  for (uint32_t w = 0; w < num_workers; ++w) {
    threads.emplace_back([&fn, &errors, w] {
      // Fuzzing hook: staggers worker start-up so the base phase does not
      // always begin in lockstep.
      DCD_CHAOS_POINT(kWorkerStart);
      try {
        fn(w);
      } catch (...) {
        errors.Capture(std::current_exception());
      }
    });
  }
  for (auto& t : threads) t.join();
  errors.RethrowIfSet();
}

void ParallelFor(uint32_t num_workers, uint64_t n,
                 const std::function<void(uint64_t, uint64_t)>& fn) {
  if (n == 0) return;
  num_workers = static_cast<uint32_t>(
      std::min<uint64_t>(std::max<uint32_t>(num_workers, 1), n));
  const uint64_t chunk = (n + num_workers - 1) / num_workers;
  RunWorkers(num_workers, [&](uint32_t w) {
    const uint64_t begin = w * chunk;
    const uint64_t end = std::min(begin + chunk, n);
    if (begin < end) fn(begin, end);
  });
}

}  // namespace dcdatalog
