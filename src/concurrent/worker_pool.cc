#include "concurrent/worker_pool.h"

#include <algorithm>
#include <exception>
#include <utility>

#include "common/chaos.h"
#include "common/logging.h"
#include "common/mutex.h"
#include "common/thread_annotations.h"

namespace dcdatalog {
namespace {

/// Set while a pool thread runs a gang member, so Run() can refuse nested
/// dispatch (a pool thread waiting for slots it itself occupies deadlocks).
thread_local bool t_inside_pool_worker = false;

}  // namespace

namespace {

/// The pool's only shared control state: the first exception any worker
/// threw. Lock-guarded (and TSA-annotated) rather than atomic — it is
/// touched at most once per evaluation, never on the per-iteration paths.
class ErrorSlot {
 public:
  void Capture(std::exception_ptr error) DCD_EXCLUDES(mu_) {
    MutexLock lock(&mu_);
    if (first_ == nullptr) first_ = std::move(error);
  }

  /// Rethrows the captured exception, if any. Call after every worker
  /// joined — no lock is needed then, but taking it keeps the invariant
  /// checkable rather than argued.
  void RethrowIfSet() DCD_EXCLUDES(mu_) {
    std::exception_ptr error;
    {
      MutexLock lock(&mu_);
      error = first_;
    }
    if (error != nullptr) std::rethrow_exception(error);
  }

 private:
  Mutex mu_;
  std::exception_ptr first_ DCD_GUARDED_BY(mu_);
};

}  // namespace

void RunWorkers(uint32_t num_workers,
                const std::function<void(uint32_t)>& fn) {
  if (num_workers == 1) {
    fn(0);
    return;
  }
  ErrorSlot errors;
  std::vector<std::thread> threads;
  threads.reserve(num_workers);
  for (uint32_t w = 0; w < num_workers; ++w) {
    threads.emplace_back([&fn, &errors, w] {
      // Fuzzing hook: staggers worker start-up so the base phase does not
      // always begin in lockstep.
      DCD_CHAOS_POINT(kWorkerStart);
      try {
        fn(w);
      } catch (...) {
        errors.Capture(std::current_exception());
      }
    });
  }
  for (auto& t : threads) t.join();
  errors.RethrowIfSet();
}

void ParallelFor(uint32_t num_workers, uint64_t n,
                 const std::function<void(uint64_t, uint64_t)>& fn) {
  if (n == 0) return;
  num_workers = static_cast<uint32_t>(
      std::min<uint64_t>(std::max<uint32_t>(num_workers, 1), n));
  const uint64_t chunk = (n + num_workers - 1) / num_workers;
  RunWorkers(num_workers, [&](uint32_t w) {
    const uint64_t begin = w * chunk;
    const uint64_t end = std::min(begin + chunk, n);
    if (begin < end) fn(begin, end);
  });
}

WorkerPool::WorkerPool(uint32_t capacity)
    : capacity_(std::max<uint32_t>(capacity, 1)), free_(capacity_) {
  threads_.reserve(capacity_);
  for (uint32_t i = 0; i < capacity_; ++i) {
    threads_.emplace_back([this] { ThreadMain(); });
  }
}

WorkerPool::~WorkerPool() {
  {
    MutexLock lock(&mu_);
    DCD_CHECK(free_ == capacity_ && tasks_.empty());
    stop_ = true;
  }
  cv_.NotifyAll();
  for (auto& t : threads_) t.join();
}

void WorkerPool::ThreadMain() {
  while (true) {
    Job* job = nullptr;
    uint32_t worker_id = 0;
    {
      MutexLock lock(&mu_);
      while (!stop_ && tasks_.empty()) cv_.Wait(&mu_);
      if (tasks_.empty()) return;  // stop_ set and nothing left to run.
      job = tasks_.front().first;
      worker_id = tasks_.front().second;
      tasks_.pop_front();
    }
    DCD_CHAOS_POINT(kWorkerStart);
    t_inside_pool_worker = true;
    try {
      (*job->fn)(worker_id);
    } catch (...) {
      MutexLock lock(&mu_);
      if (job->first_error == nullptr) {
        job->first_error = std::current_exception();
      }
    }
    t_inside_pool_worker = false;
    {
      MutexLock lock(&mu_);
      --job->remaining;
    }
    // Wakes the gang's Run() caller; also re-checked by idle pool threads
    // and queued gangs, which go back to sleep.
    cv_.NotifyAll();
  }
}

void WorkerPool::Run(uint32_t num_workers,
                     const std::function<void(uint32_t)>& fn) {
  DCD_CHECK(!t_inside_pool_worker);
  if (num_workers == 0) return;
  if (num_workers > capacity_) {
    // A gang wider than the pool can never be granted; run it on dedicated
    // threads instead of deadlocking. Admission control is expected to keep
    // sessions inside the pool budget, so this is a correctness backstop,
    // not a sizing strategy — counted, so the overload is visible instead
    // of silently oversubscribing the machine.
    {
      MutexLock lock(&mu_);
      ++fallback_gangs_;
    }
    RunWorkers(num_workers, fn);
    return;
  }
  Job job;
  job.fn = &fn;
  job.remaining = num_workers;
  {
    MutexLock lock(&mu_);
    const uint64_t ticket = next_ticket_++;
    // FIFO gang grant: wait for the head of the queue AND enough free
    // threads, then claim the whole gang atomically.
    while (ticket != serving_ticket_ || free_ < num_workers) cv_.Wait(&mu_);
    free_ -= num_workers;
    ++serving_ticket_;
    for (uint32_t w = 0; w < num_workers; ++w) tasks_.emplace_back(&job, w);
  }
  cv_.NotifyAll();
  {
    MutexLock lock(&mu_);
    while (job.remaining != 0) cv_.Wait(&mu_);
    free_ += num_workers;
    ++jobs_run_;
  }
  cv_.NotifyAll();  // Slots freed: the next queued gang may now fit.
  if (job.first_error != nullptr) std::rethrow_exception(job.first_error);
}

uint32_t WorkerPool::InUse() const {
  MutexLock lock(&mu_);
  return capacity_ - free_;
}

uint32_t WorkerPool::Waiting() const {
  MutexLock lock(&mu_);
  return static_cast<uint32_t>(next_ticket_ - serving_ticket_);
}

uint64_t WorkerPool::FallbackGangs() const {
  MutexLock lock(&mu_);
  return fallback_gangs_;
}

uint64_t WorkerPool::JobsRun() const {
  MutexLock lock(&mu_);
  return jobs_run_;
}

}  // namespace dcdatalog
