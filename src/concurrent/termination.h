#ifndef DCDATALOG_CONCURRENT_TERMINATION_H_
#define DCDATALOG_CONCURRENT_TERMINATION_H_

#include <atomic>
#include <cstdint>
#include <vector>

#include "common/affinity.h"
#include "common/chaos.h"

namespace dcdatalog {

/// Global-fixpoint detector, paper §6.1: evaluation terminates when (i) all
/// workers are inactive and (ii) every message buffer is empty. Buffer
/// emptiness is established counter-wise — one global count of tuples
/// produced into buffers versus per-worker counts of tuples consumed.
///
/// Protocol (all memory_order noted inline):
///  * A producer pushes one block of n tuples into a ring, then calls
///    OnBlockPushed(target, n) — AddProduced(n) followed by
///    Activate(target). Ordering matters: the produced count rises before
///    the target can observe itself re-activated, so a successful
///    termination check can never miss in-flight tuples. Batching the
///    update per block (not per tuple) cuts the two atomic RMWs from every
///    tuple to every ~hundred tuples without weakening the invariant: the
///    counters always describe whole blocks, which are the only unit that
///    ever sits in a ring.
///  * A consumer calls AddConsumed(self, n) with the tuple total of the
///    blocks it drained and Deactivate(self) only once it holds no
///    unprocessed tuples.
///  * Self-loop tuples (emitter == destination) never touch the detector:
///    they are local state by the time the emitting iteration's Flush
///    returns, exactly like a delta row the worker derived for itself.
///  * CheckTermination() double-reads the produced counter around the flag
///    scan; any concurrent production invalidates the round.
class TerminationDetector {
 public:
  explicit TerminationDetector(uint32_t num_workers)
      : consumed_(num_workers), active_(num_workers) {
    // Relaxed: single-threaded construction; RunWorkers' thread creation
    // publishes the detector to the workers.
    for (auto& counter : consumed_) {
      counter.v.store(0, std::memory_order_relaxed);
    }
    for (auto& flag : active_) {
      flag.v.store(true, std::memory_order_relaxed);
    }
  }

  void AddProduced(uint64_t n) {
    produced_.fetch_add(n, std::memory_order_acq_rel);
  }

  void AddConsumed(uint32_t worker, uint64_t n) {
    // Debug ownership check: the counter protocol is sound only if worker
    // w's consumed count is written by w's thread alone (consumed_total()
    // may read from anywhere).
    DCD_AFFINITY_GUARD(consumed_[worker].affinity);
    consumed_[worker].v.fetch_add(n, std::memory_order_acq_rel);
  }

  void Activate(uint32_t worker) {
    active_[worker].v.store(true, std::memory_order_release);
  }

  void Deactivate(uint32_t worker) {
    active_[worker].v.store(false, std::memory_order_release);
  }

  /// Producer-side batched update for one pushed block of `n` tuples:
  /// raises the produced count, then re-activates the destination — the
  /// one order under which a concurrent termination round stays sound.
  void OnBlockPushed(uint32_t dest, uint64_t n) {
    AddProduced(n);
    Activate(dest);
  }

  /// Stolen-morsel accounting (docs/INTERNALS.md §11). A published morsel of
  /// `n` driving tuples is in-flight work exactly like a pushed block: the
  /// owner raises the produced count *before* the release-store that makes
  /// the morsel claimable, so no termination round can succeed while an
  /// unclaimed or executing morsel exists. Whoever finishes the morsel —
  /// thief, or owner reclaiming its own publication — balances the count
  /// through its own consumed counter. The executor-side call must come
  /// after the morsel's derived tuples have been flushed (they are then
  /// covered by the ordinary block accounting or already merged locally).
  void OnMorselPublished(uint64_t n) { AddProduced(n); }

  void OnMorselExecuted(uint32_t worker, uint64_t n) {
    AddConsumed(worker, n);
  }

  bool IsActive(uint32_t worker) const {
    return active_[worker].v.load(std::memory_order_acquire);
  }

  uint64_t produced() const {
    return produced_.load(std::memory_order_acquire);
  }

  uint64_t consumed_total() const {
    uint64_t c = 0;
    for (const auto& counter : consumed_) {
      c += counter.v.load(std::memory_order_acquire);
    }
    return c;
  }

  /// True once any worker has observed global fixpoint.
  bool Done() const { return done_.load(std::memory_order_acquire); }

  /// Runs one detection round; on success latches Done for everyone.
  bool CheckTermination() {
    if (Done()) return true;
    const uint64_t p1 = produced();
    // Fuzzing hook: widens the window between the two produced() reads so
    // rare interleavings of the double-read protocol get exercised.
    DCD_CHAOS_POINT(kTermination);
    if (consumed_total() != p1) return false;
    for (const auto& flag : active_) {
      if (flag.v.load(std::memory_order_acquire)) return false;
    }
    // Re-read: if production happened while we scanned the flags, the
    // snapshot was inconsistent and this round fails.
    if (produced() != p1) return false;
    done_.store(true, std::memory_order_release);
    return true;
  }

 private:
  // Each per-worker counter/flag sits on its own cache line to avoid
  // false sharing between workers that touch them every iteration.
  struct alignas(64) PaddedCounter {
    std::atomic<uint64_t> v;
    // Debug-only single-writer stamp for this worker's consumed count
    // (empty in release).
    DCD_AFFINITY_OWNER(affinity, "termination-consumer");
  };
  struct alignas(64) PaddedFlag {
    std::atomic<bool> v;
  };

  std::atomic<uint64_t> produced_{0};
  std::vector<PaddedCounter> consumed_;
  std::vector<PaddedFlag> active_;
  std::atomic<bool> done_{false};
};

}  // namespace dcdatalog

#endif  // DCDATALOG_CONCURRENT_TERMINATION_H_
