#ifndef DCDATALOG_CONCURRENT_WORKER_POOL_H_
#define DCDATALOG_CONCURRENT_WORKER_POOL_H_

#include <cstdint>
#include <deque>
#include <exception>
#include <functional>
#include <thread>
#include <vector>

#include "common/mutex.h"
#include "common/thread_annotations.h"

namespace dcdatalog {

/// Runs fn(worker_id) on `num_workers` dedicated threads and joins them all.
/// The parallel evaluation of one Datalog program is a single such run —
/// workers live for the whole fixpoint computation, so thread start-up cost
/// is negligible and a persistent pool would only add complexity.
///
/// If a worker throws, the first exception is captured in the pool's
/// mutex-guarded control state and rethrown on the calling thread after all
/// workers joined (instead of std::terminate tearing the process down from
/// inside a worker thread). Later exceptions are dropped.
void RunWorkers(uint32_t num_workers,
                const std::function<void(uint32_t)>& fn);

/// Simple static-partition parallel-for over [0, n): each worker handles a
/// contiguous chunk. Used by loaders and generators.
void ParallelFor(uint32_t num_workers, uint64_t n,
                 const std::function<void(uint64_t begin, uint64_t end)>& fn);

/// Persistent worker pool shared across concurrent query sessions (the
/// `dcd serve` path). One-shot runs keep using RunWorkers — threads per
/// fixpoint are cheap there; the pool exists so N resident sessions do not
/// oversubscribe the machine with N * num_workers transient threads.
///
/// Scheduling is a FIFO *gang* grant: one evaluation's `n` workers
/// synchronize with each other (barriers, SSP slack waits, DWS termination
/// detection), so dispatching fewer than `n` at once could deadlock the
/// fixpoint. Run(n, fn) therefore waits until it is at the head of the
/// arrival queue AND `n` threads are free, then claims all `n` atomically.
/// FIFO order makes the grant starvation-free: a wide gang at the head
/// blocks later narrow gangs from stealing its slots forever.
///
/// Exception contract matches RunWorkers: the first exception a gang member
/// throws is rethrown on the calling thread after the whole gang finished.
///
/// Run() must not be called from inside a pool thread — the caller would
/// hold its gang's slots while waiting for slots (checked, fails fast).
class WorkerPool {
 public:
  /// Spawns `capacity` resident threads (at least 1).
  explicit WorkerPool(uint32_t capacity);

  /// Joins all threads. Callers must have drained: destroying the pool
  /// while a Run() is in flight is a programming error (checked).
  ~WorkerPool();

  WorkerPool(const WorkerPool&) = delete;
  WorkerPool& operator=(const WorkerPool&) = delete;

  /// Runs fn(0) .. fn(n-1) on pool threads and returns when all finished.
  /// Blocks until a gang of `n` threads is granted (FIFO). A gang wider
  /// than the pool capacity falls back to dedicated RunWorkers threads —
  /// admission control should prevent that, but a misconfigured session
  /// must not deadlock the server.
  void Run(uint32_t num_workers, const std::function<void(uint32_t)>& fn)
      DCD_EXCLUDES(mu_);

  uint32_t capacity() const { return capacity_; }

  /// Threads currently claimed by granted gangs (telemetry snapshot).
  uint32_t InUse() const DCD_EXCLUDES(mu_);

  /// Gangs waiting for their grant (telemetry snapshot).
  uint32_t Waiting() const DCD_EXCLUDES(mu_);

  /// Total gangs completed since construction.
  uint64_t JobsRun() const DCD_EXCLUDES(mu_);

  /// Gangs wider than the pool that ran on dedicated fallback threads.
  /// These oversubscribe the machine behind admission control's back, so
  /// the count is surfaced through /metrics and EvalStats — a nonzero
  /// value means session worker budgets exceed the pool size.
  uint64_t FallbackGangs() const DCD_EXCLUDES(mu_);

 private:
  /// One granted gang's control block, owned by the Run() stack frame.
  struct Job {
    const std::function<void(uint32_t)>* fn = nullptr;
    uint32_t remaining = 0;           // Members still running.
    std::exception_ptr first_error;   // First throw wins, later dropped.
  };

  void ThreadMain();

  const uint32_t capacity_;
  mutable Mutex mu_;
  CondVar cv_;  // Signals: task available, gang finished, slots freed, stop.
  std::deque<std::pair<Job*, uint32_t>> tasks_ DCD_GUARDED_BY(mu_);
  uint32_t free_ DCD_GUARDED_BY(mu_);
  uint64_t next_ticket_ DCD_GUARDED_BY(mu_) = 0;   // Arrival order.
  uint64_t serving_ticket_ DCD_GUARDED_BY(mu_) = 0;  // Head of the queue.
  uint64_t jobs_run_ DCD_GUARDED_BY(mu_) = 0;
  uint64_t fallback_gangs_ DCD_GUARDED_BY(mu_) = 0;
  bool stop_ DCD_GUARDED_BY(mu_) = false;
  std::vector<std::thread> threads_;
};

}  // namespace dcdatalog

#endif  // DCDATALOG_CONCURRENT_WORKER_POOL_H_
