#ifndef DCDATALOG_CONCURRENT_WORKER_POOL_H_
#define DCDATALOG_CONCURRENT_WORKER_POOL_H_

#include <cstdint>
#include <functional>
#include <thread>
#include <vector>

namespace dcdatalog {

/// Runs fn(worker_id) on `num_workers` dedicated threads and joins them all.
/// The parallel evaluation of one Datalog program is a single such run —
/// workers live for the whole fixpoint computation, so thread start-up cost
/// is negligible and a persistent pool would only add complexity.
///
/// If a worker throws, the first exception is captured in the pool's
/// mutex-guarded control state and rethrown on the calling thread after all
/// workers joined (instead of std::terminate tearing the process down from
/// inside a worker thread). Later exceptions are dropped.
void RunWorkers(uint32_t num_workers,
                const std::function<void(uint32_t)>& fn);

/// Simple static-partition parallel-for over [0, n): each worker handles a
/// contiguous chunk. Used by loaders and generators.
void ParallelFor(uint32_t num_workers, uint64_t n,
                 const std::function<void(uint64_t begin, uint64_t end)>& fn);

}  // namespace dcdatalog

#endif  // DCDATALOG_CONCURRENT_WORKER_POOL_H_
