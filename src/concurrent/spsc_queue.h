#ifndef DCDATALOG_CONCURRENT_SPSC_QUEUE_H_
#define DCDATALOG_CONCURRENT_SPSC_QUEUE_H_

#include <atomic>
#include <bit>
#include <cstdint>
#include <vector>

#include "common/affinity.h"
#include "common/chaos.h"
#include "common/hot_path.h"
#include "common/logging.h"

namespace dcdatalog {

/// Single-Producer Single-Consumer lock-free ring buffer (paper §6.1,
/// Figure 6). One instance implements the message buffer M_j^i through
/// which worker i sends newly derived tuples to worker j; because exactly
/// one worker writes and exactly one reads, head and tail can be plain
/// atomics with acquire/release ordering and no locks or CAS loops.
///
/// The ring is bounded; TryPush returns false when full and the caller
/// (the Distribute operator) drains or spins. Capacity is rounded up to a
/// power of two.
template <typename T>
class SpscQueue {
 public:
  explicit SpscQueue(uint32_t capacity)
      : capacity_(std::bit_ceil(std::max<uint32_t>(capacity, 2))),
        mask_(capacity_ - 1),
        slots_(capacity_) {}

  SpscQueue(const SpscQueue&) = delete;
  SpscQueue& operator=(const SpscQueue&) = delete;

  uint32_t capacity() const { return capacity_; }

  /// Producer side. Returns false if the ring is full.
  DCD_HOT_ROOT bool TryPush(const T& item) {
    // Debug ownership check: the first pushing thread becomes THE producer;
    // any other thread pushing afterwards dies deterministically.
    DCD_AFFINITY_GUARD(producer_affinity_);
    // Fuzzing hook: a chaos schedule may force a spurious "full" here,
    // driving the producer through its backpressure path (no-op in
    // release builds and whenever no schedule is installed).
    if (DCD_CHAOS_FAIL(kQueuePush)) return false;
    DCD_CHAOS_POINT(kQueuePush);
    const uint64_t tail = tail_.load(std::memory_order_relaxed);
    const uint64_t head = head_cache_;
    if (tail - head >= capacity_) {
      // Refresh the cached head; the consumer may have advanced.
      head_cache_ = head_.load(std::memory_order_acquire);
      if (tail - head_cache_ >= capacity_) return false;
    }
    slots_[tail & mask_] = item;
    tail_.store(tail + 1, std::memory_order_release);
    return true;
  }

  /// Consumer side. Returns false if the ring is empty.
  DCD_HOT_ROOT bool TryPop(T* out) {
    DCD_AFFINITY_GUARD(consumer_affinity_);
    DCD_CHAOS_POINT(kQueuePop);
    const uint64_t head = head_.load(std::memory_order_relaxed);
    if (head == tail_cache_) {
      tail_cache_ = tail_.load(std::memory_order_acquire);
      if (head == tail_cache_) return false;
    }
    *out = slots_[head & mask_];
    head_.store(head + 1, std::memory_order_release);
    return true;
  }

  /// Consumer side: pops up to `max` items into `out` (appended). Returns
  /// the number popped. Batch draining is what Gather does once per local
  /// iteration.
  DCD_HOT_ROOT uint64_t PopBatch(std::vector<T>* out,
                                 uint64_t max = UINT64_MAX) {
    DCD_AFFINITY_GUARD(consumer_affinity_);
    DCD_CHAOS_POINT(kQueuePop);
    const uint64_t head = head_.load(std::memory_order_relaxed);
    uint64_t tail = tail_cache_;
    if (head == tail) {
      tail = tail_cache_ = tail_.load(std::memory_order_acquire);
      if (head == tail) return 0;
    }
    uint64_t n = std::min(tail - head, max);
    for (uint64_t i = 0; i < n; ++i) {
      out->push_back(slots_[(head + i) & mask_]);
    }
    head_.store(head + n, std::memory_order_release);
    return n;
  }

  /// Approximate occupancy; exact from the consumer's perspective at the
  /// moment of the loads. Used only for statistics and heuristics.
  uint64_t SizeApprox() const {
    uint64_t tail = tail_.load(std::memory_order_acquire);
    uint64_t head = head_.load(std::memory_order_acquire);
    return tail - head;
  }

  bool EmptyApprox() const { return SizeApprox() == 0; }

 private:
  static constexpr size_t kCacheLine = 64;

  const uint32_t capacity_;
  const uint64_t mask_;
  std::vector<T> slots_;

  // Producer-owned line: tail plus its cached view of head.
  alignas(kCacheLine) std::atomic<uint64_t> tail_{0};
  uint64_t head_cache_ = 0;

  // Consumer-owned line: head plus its cached view of tail.
  alignas(kCacheLine) std::atomic<uint64_t> head_{0};
  uint64_t tail_cache_ = 0;

  // Debug-only owner stamps for the two endpoint roles (empty in release).
  DCD_AFFINITY_OWNER(producer_affinity_, "spsc-producer");
  DCD_AFFINITY_OWNER(consumer_affinity_, "spsc-consumer");
};

}  // namespace dcdatalog

#endif  // DCDATALOG_CONCURRENT_SPSC_QUEUE_H_
