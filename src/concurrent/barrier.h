#ifndef DCDATALOG_CONCURRENT_BARRIER_H_
#define DCDATALOG_CONCURRENT_BARRIER_H_

#include <atomic>
#include <cstdint>
#include <thread>

namespace dcdatalog {

/// Reusable sense-reversing spin barrier. The Global coordination strategy
/// (Algorithm 1) places one of these after every global iteration; its cost
/// — every fast worker idling until the slowest arrives — is exactly the
/// overhead DWS removes.
///
/// Spins with yield; iteration bodies are long relative to the barrier, so
/// futex-style blocking would add latency without saving meaningful CPU.
class SpinBarrier {
 public:
  explicit SpinBarrier(uint32_t parties) : parties_(parties) {}

  SpinBarrier(const SpinBarrier&) = delete;
  SpinBarrier& operator=(const SpinBarrier&) = delete;

  /// Blocks until all `parties` threads have called Wait. Returns true on
  /// exactly one thread per round (the last arriver).
  bool Wait() {
    return Wait([] {});
  }

  /// Like Wait(), but the last arriver runs `serial()` before any other
  /// thread is released — a serial section at the synchronization point
  /// (Global uses it to test the all-deltas-empty exit condition).
  template <typename Fn>
  bool Wait(Fn&& serial) {
    return Wait(std::forward<Fn>(serial), [] {});
  }

  /// Full form: `idle()` runs on every spin of a waiting thread. The engine
  /// passes its buffer-drain routine so a worker parked at the barrier
  /// keeps consuming messages — otherwise a producer blocked on a full
  /// ring targeting a parked worker would deadlock the round.
  template <typename Fn, typename IdleFn>
  bool Wait(Fn&& serial, IdleFn&& idle) {
    const bool my_sense = !sense_.load(std::memory_order_relaxed);
    if (arrived_.fetch_add(1, std::memory_order_acq_rel) + 1 == parties_) {
      serial();
      arrived_.store(0, std::memory_order_relaxed);
      sense_.store(my_sense, std::memory_order_release);
      return true;
    }
    while (sense_.load(std::memory_order_acquire) != my_sense) {
      idle();
      std::this_thread::yield();
    }
    return false;
  }

 private:
  const uint32_t parties_;
  std::atomic<uint32_t> arrived_{0};
  std::atomic<bool> sense_{false};
};

}  // namespace dcdatalog

#endif  // DCDATALOG_CONCURRENT_BARRIER_H_
