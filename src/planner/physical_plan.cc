#include "planner/physical_plan.h"

#include <algorithm>
#include <set>
#include <sstream>

#include "common/logging.h"

namespace dcdatalog {
namespace {

/// Maximum wire arity the SPSC message format carries (one word is the
/// predicate/replica tag; see core/message.h).
constexpr uint32_t kMaxWireArity = 7;

/// Collects the scans of a left-deep tree in join order.
void CollectScans(const LogicalOp* node, std::vector<const LogicalOp*>* out) {
  if (node == nullptr) return;
  if (node->kind == LogicalOpKind::kScan) {
    out->push_back(node);
    return;
  }
  for (const auto& child : node->children) CollectScans(child.get(), out);
}

/// Marks every register a compiled expression reads.
void MarkExprRegs(const CompiledExpr& e, std::vector<char>* need) {
  if (e.op == ExprOp::kVar && e.reg >= 0) (*need)[e.reg] = 1;
  if (e.lhs != nullptr) MarkExprRegs(*e.lhs, need);
  if (e.rhs != nullptr) MarkExprRegs(*e.rhs, need);
}

/// First column of `atom` holding variable `v`, or -1.
int ColOfVar(const Atom& atom, const std::string& v) {
  for (size_t i = 0; i < atom.args.size(); ++i) {
    if (atom.args[i].IsVariable() && atom.args[i].var == v) {
      return static_cast<int>(i);
    }
  }
  return -1;
}

AggSpec MakeAggSpec(const Program& program, const ProgramAnalysis& analysis,
                    const std::string& pred) {
  const PredicateInfo& info = analysis.predicate(pred);
  AggSpec spec;
  spec.stored_arity = info.arity;
  // Find the (validated, consistent) aggregate signature from any rule.
  AggFunc func = AggFunc::kNone;
  for (const Rule& rule : program.rules) {
    if (rule.head.predicate != pred) continue;
    for (const HeadArg& arg : rule.head.args) {
      if (arg.agg != AggFunc::kNone) func = arg.agg;
    }
    break;  // CheckAggregates guarantees all rules agree.
  }
  spec.func = func;
  if (func == AggFunc::kNone) {
    spec.group_arity = info.arity;
    spec.wire_arity = info.arity;
  } else {
    spec.group_arity = info.arity - 1;
    spec.wire_arity = info.arity + (func == AggFunc::kSum ? 1 : 0);
    spec.value_type = info.column_types[info.arity - 1];
  }
  return spec;
}

// Status-propagation helper local to this file.
#define DCD_RETURN_IF_ERROR_P(expr)           \
  do {                                        \
    ::dcdatalog::Status _s = (expr);          \
    if (!_s.ok()) return _s;                  \
  } while (false)

/// Compiles rule versions of one SCC; owns the register state per rule.
class RuleCompiler {
 public:
  RuleCompiler(const Program& program, const ProgramAnalysis& analysis,
               PhysicalPlan* plan, SccPlan* scc)
      : program_(program), analysis_(analysis), plan_(plan), scc_(scc) {}

  Result<PhysicalRule> Compile(const LogicalRulePlan& logical) {
    rule_ = &program_.rules[logical.rule_index];
    out_ = PhysicalRule();
    out_.rule_index = logical.rule_index;
    out_.delta_atom = logical.delta_atom;
    out_.is_update = logical.is_update;
    is_update_ = logical.is_update;
    var_reg_.clear();
    reg_types_.clear();
    first_scan_ = true;

    // Pre-pass: find the scans, decide the driving partition column and
    // validate recursive-probe locality.
    std::vector<const LogicalOp*> scans;
    CollectScans(logical.root.get(), &scans);
    DCD_RETURN_IF_ERROR_P(AnalyzePartitioning(logical, scans));

    // Per-rule join-method heuristic (paper §5.2.1): if two or more base
    // atoms share the same join-key variable (their first variable that
    // also occurs in another atom), probes on that variable use hash joins.
    hash_probe_vars_.clear();
    {
      std::map<std::string, int> key_var_counts;
      for (size_t s = 0; s < scans.size(); ++s) {
        if (scans[s]->is_recursive) continue;
        for (const Term& t : scans[s]->atom.args) {
          if (!t.IsVariable()) continue;
          bool shared = false;
          for (size_t o = 0; o < scans.size() && !shared; ++o) {
            if (o != s && ColOfVar(scans[o]->atom, t.var) >= 0) {
              shared = true;
            }
          }
          if (shared) {
            ++key_var_counts[t.var];
            break;  // One join key per atom.
          }
        }
      }
      for (const auto& [v, cnt] : key_var_counts) {
        if (cnt >= 2) hash_probe_vars_.insert(v);
      }
    }

    DCD_RETURN_IF_ERROR_P(CompileNode(logical.root.get()));
    out_.num_regs = static_cast<uint32_t>(reg_types_.size());
    out_.reg_types = reg_types_;

    // Batch-executor metadata: classify each step by whether it can fan out
    // (more than one output row per input lane). Probes and scans expand;
    // filters, binds and anti-joins are at most 1:1.
    for (Step& step : out_.steps) {
      switch (step.kind) {
        case StepKind::kProbeBaseHash:
        case StepKind::kProbeBaseBTree:
        case StepKind::kScanBase:
        case StepKind::kProbeRecursive:
          step.expanding = true;
          out_.has_expanding_steps = true;
          break;
        case StepKind::kAntiJoinBTree:
        case StepKind::kAntiJoinScan:
        case StepKind::kFilter:
        case StepKind::kBind:
          step.expanding = false;
          break;
      }
    }

    // Backward liveness pass for the batch executor's lane scatters: for
    // every expanding step, the registers an output lane inherits from its
    // input lane are those live after the step (read by later steps or the
    // head) plus the step's own eq-checks, minus the registers its outputs
    // write. Registers dead downstream are never copied.
    {
      std::vector<char> need(reg_types_.size(), 0);
      for (const CompiledExpr& e : out_.head.wire_exprs) {
        MarkExprRegs(e, &need);
      }
      for (size_t i = out_.steps.size(); i-- > 0;) {
        Step& step = out_.steps[i];
        if (step.expanding) {
          std::vector<char> carry = need;
          for (const EqCheck& c : step.eq_checks) carry[c.reg] = 1;
          for (const OutputBinding& b : step.outputs) carry[b.reg] = 0;
          step.carry_regs.clear();
          for (size_t r = 0; r < carry.size(); ++r) {
            if (carry[r]) step.carry_regs.push_back(static_cast<int>(r));
          }
        }
        // Liveness before the step: clear its writes, then mark its reads.
        switch (step.kind) {
          case StepKind::kProbeBaseHash:
          case StepKind::kProbeBaseBTree:
          case StepKind::kScanBase:
          case StepKind::kProbeRecursive:
            for (const OutputBinding& b : step.outputs) need[b.reg] = 0;
            for (const EqCheck& c : step.eq_checks) need[c.reg] = 1;
            if (!step.probe_is_const && step.probe_reg >= 0) {
              need[step.probe_reg] = 1;
            }
            break;
          case StepKind::kAntiJoinBTree:
          case StepKind::kAntiJoinScan:
            for (const EqCheck& c : step.eq_checks) need[c.reg] = 1;
            if (!step.probe_is_const && step.probe_reg >= 0) {
              need[step.probe_reg] = 1;
            }
            break;
          case StepKind::kFilter:
            MarkExprRegs(step.lhs, &need);
            MarkExprRegs(step.rhs, &need);
            break;
          case StepKind::kBind:
            need[step.bind_reg] = 0;
            MarkExprRegs(step.lhs, &need);
            break;
        }
      }
    }
    return std::move(out_);
  }

 private:
  Status AnalyzePartitioning(const LogicalRulePlan& logical,
                             const std::vector<const LogicalOp*>& scans) {
    driving_partition_col_ = 0;
    driving_needs_locality_ = false;
    if (logical.delta_atom < 0) return Status::OK();

    const LogicalOp* driving = scans.empty() ? nullptr : scans.front();
    DCD_CHECK(driving != nullptr && driving->is_delta);
    const Atom& d_atom = driving->atom;

    // Recursive atoms probed later in the pipeline must be keyed by a
    // variable of the driving atom, and the driving delta must itself be
    // partitioned on that variable: tuples matching key k live in worker
    // H(k)'s partition, so the probing worker must be H(k) too.
    std::string locality_var;
    for (size_t s = 1; s < scans.size(); ++s) {
      const LogicalOp* scan = scans[s];
      if (!scan->is_recursive) continue;
      // Probe var: first variable of this atom shared with the driving atom.
      std::string probe_var;
      for (const Term& t : scan->atom.args) {
        if (t.IsVariable() && ColOfVar(d_atom, t.var) >= 0) {
          probe_var = t.var;
          break;
        }
      }
      if (probe_var.empty()) {
        return Status::Unsupported(
            "rule at line " + std::to_string(rule_->line) +
            ": recursive goal '" + scan->atom.ToString() +
            "' does not share a join variable with the delta goal, so the "
            "probe cannot stay partition-local");
      }
      if (!locality_var.empty() && locality_var != probe_var) {
        return Status::Unsupported(
            "rule at line " + std::to_string(rule_->line) +
            ": recursive goals require conflicting partition keys");
      }
      locality_var = probe_var;
    }

    if (!locality_var.empty()) {
      driving_partition_col_ =
          static_cast<uint32_t>(ColOfVar(d_atom, locality_var));
      driving_needs_locality_ = true;
    } else {
      // Free choice: prefer the first driving column whose variable also
      // appears in another atom (the join key), mirroring the paper's
      // partition-by-join-key policy.
      driving_partition_col_ = 0;
      for (size_t c = 0; c < d_atom.args.size(); ++c) {
        const Term& t = d_atom.args[c];
        if (!t.IsVariable()) continue;
        bool shared = false;
        for (size_t s = 1; s < scans.size(); ++s) {
          if (ColOfVar(scans[s]->atom, t.var) >= 0) shared = true;
        }
        if (shared) {
          driving_partition_col_ = static_cast<uint32_t>(c);
          break;
        }
      }
    }
    return Status::OK();
  }

  int AllocReg(ColumnType type) {
    reg_types_.push_back(type);
    return static_cast<int>(reg_types_.size()) - 1;
  }

  /// Registers (or finds) a replica and returns its id.
  int GetReplica(const std::string& pred, uint32_t col, bool needs_index) {
    for (size_t i = 0; i < scc_->replicas.size(); ++i) {
      ReplicaSpec& r = scc_->replicas[i];
      if (r.predicate == pred && r.partition_col == col) {
        r.needs_join_index = r.needs_join_index || needs_index;
        return static_cast<int>(i);
      }
    }
    scc_->replicas.push_back(ReplicaSpec{pred, col, needs_index});
    return static_cast<int>(scc_->replicas.size()) - 1;
  }

  int RequestBaseIndex(const std::string& rel, uint32_t col, bool is_hash) {
    for (size_t i = 0; i < plan_->base_indexes.size(); ++i) {
      const BaseIndexReq& req = plan_->base_indexes[i];
      if (req.relation == rel && req.col == col && req.is_hash == is_hash) {
        return static_cast<int>(i);
      }
    }
    plan_->base_indexes.push_back(BaseIndexReq{rel, col, is_hash});
    return static_cast<int>(plan_->base_indexes.size()) - 1;
  }

  ColumnType PredColType(const std::string& pred, size_t col) const {
    return analysis_.predicate(pred).column_types[col];
  }

  /// Splits an atom's columns into probe key, equality checks, constant
  /// checks, and fresh-variable outputs.
  void BindAtomColumns(const Atom& atom, int skip_col,
                       std::vector<OutputBinding>* outputs,
                       std::vector<EqCheck>* eq_checks,
                       std::vector<ConstCheck>* const_checks) {
    for (size_t c = 0; c < atom.args.size(); ++c) {
      if (static_cast<int>(c) == skip_col) continue;
      const Term& t = atom.args[c];
      switch (t.kind) {
        case TermKind::kWildcard:
          break;
        case TermKind::kConstant:
          const_checks->push_back(
              ConstCheck{static_cast<uint32_t>(c), t.constant.word});
          break;
        case TermKind::kVariable: {
          auto it = var_reg_.find(t.var);
          if (it != var_reg_.end()) {
            eq_checks->push_back(EqCheck{static_cast<uint32_t>(c), it->second});
          } else {
            int reg = AllocReg(PredColType(atom.predicate, c));
            var_reg_[t.var] = reg;
            outputs->push_back(OutputBinding{static_cast<uint32_t>(c), reg});
          }
          break;
        }
      }
    }
  }

  Status CompileNode(const LogicalOp* node) {
    if (node == nullptr) return Status::OK();
    switch (node->kind) {
      case LogicalOpKind::kProjectHead:
        if (!node->children.empty()) {
          DCD_RETURN_IF_ERROR_P(CompileNode(node->children[0].get()));
        } else {
          out_.driving_is_unit = true;
        }
        return CompileHead(node->head);
      case LogicalOpKind::kJoin:
        DCD_RETURN_IF_ERROR_P(CompileNode(node->children[0].get()));
        DCD_CHECK(node->children[1]->kind == LogicalOpKind::kScan);
        return EmitScan(node->children[1].get());
      case LogicalOpKind::kScan:
        return EmitScan(node);
      case LogicalOpKind::kAntiJoin:
        if (!node->children.empty()) {
          DCD_RETURN_IF_ERROR_P(CompileNode(node->children[0].get()));
        } else {
          out_.driving_is_unit = true;
        }
        return EmitAntiJoin(node->atom);
      case LogicalOpKind::kSelect:
        if (!node->children.empty()) {
          DCD_RETURN_IF_ERROR_P(CompileNode(node->children[0].get()));
        } else {
          out_.driving_is_unit = true;
        }
        return EmitFilter(node->constraint);
      case LogicalOpKind::kBind:
        if (!node->children.empty()) {
          DCD_RETURN_IF_ERROR_P(CompileNode(node->children[0].get()));
        } else {
          out_.driving_is_unit = true;
        }
        return EmitBind(node->constraint);
    }
    return Status::Internal("unreachable logical op kind");
  }

  Status EmitScan(const LogicalOp* scan) {
    const Atom& atom = scan->atom;
    if (first_scan_) {
      first_scan_ = false;
      out_.driving_relation = atom.predicate;
      if (scan->is_delta) {
        if (is_update_) {
          // Update versions drive a materialized relation's new rows, not a
          // replica δ. When a later step probes a recursive replica, the
          // driving rows must be processed by the worker owning the probe
          // key's partition; otherwise any worker may take any row.
          out_.update_partition_col =
              driving_needs_locality_
                  ? static_cast<int>(driving_partition_col_)
                  : -1;
        } else {
          out_.driving_replica =
              GetReplica(atom.predicate, driving_partition_col_,
                         /*needs_index=*/false);
        }
      }
      BindAtomColumns(atom, /*skip_col=*/-1, &out_.scan_outputs,
                      &out_.scan_eq_checks, &out_.scan_const_checks);
      return Status::OK();
    }

    // A probed (inner) scan: pick the probe column — the first column whose
    // value is already available.
    int probe_col = -1;
    int probe_reg = -1;
    bool probe_is_const = false;
    uint64_t probe_const = 0;
    std::string probe_var;
    for (size_t c = 0; c < atom.args.size(); ++c) {
      const Term& t = atom.args[c];
      if (t.IsVariable()) {
        auto it = var_reg_.find(t.var);
        if (it != var_reg_.end()) {
          probe_col = static_cast<int>(c);
          probe_reg = it->second;
          probe_var = t.var;
          break;
        }
      } else if (t.kind == TermKind::kConstant) {
        probe_col = static_cast<int>(c);
        probe_is_const = true;
        probe_const = t.constant.word;
        break;
      }
    }

    Step step;
    step.relation = atom.predicate;
    if (scan->is_recursive) {
      if (probe_col < 0 || probe_is_const) {
        return Status::Unsupported(
            "rule at line " + std::to_string(rule_->line) +
            ": recursive goal must be probed through a shared variable");
      }
      step.kind = StepKind::kProbeRecursive;
      step.replica_id = GetReplica(atom.predicate,
                                   static_cast<uint32_t>(probe_col),
                                   /*needs_index=*/true);
    } else if (probe_col < 0) {
      step.kind = StepKind::kScanBase;  // Nested-loop join.
    } else {
      const bool hash = !probe_var.empty() && hash_probe_vars_.count(probe_var) > 0;
      step.kind = hash ? StepKind::kProbeBaseHash : StepKind::kProbeBaseBTree;
      step.base_index_id = RequestBaseIndex(
          atom.predicate, static_cast<uint32_t>(probe_col), hash);
    }
    step.probe_col = probe_col < 0 ? 0 : static_cast<uint32_t>(probe_col);
    step.probe_reg = probe_reg;
    step.probe_is_const = probe_is_const;
    step.probe_const = probe_const;
    BindAtomColumns(atom, probe_col, &step.outputs, &step.eq_checks,
                    &step.const_checks);
    out_.steps.push_back(std::move(step));
    return Status::OK();
  }

  Status EmitAntiJoin(const Atom& atom) {
    // Stratification guarantees the negated predicate is materialized
    // before this SCC runs, so it is probed like a base relation. All
    // variables are bound (safety), so columns become equality checks; a
    // bound probe column turns the check into an index anti-probe.
    Step step;
    step.relation = atom.predicate;
    int probe_col = -1;
    for (size_t c = 0; c < atom.args.size(); ++c) {
      const Term& t = atom.args[c];
      if (t.kind == TermKind::kWildcard) continue;
      if (t.kind == TermKind::kConstant) {
        if (probe_col < 0) {
          probe_col = static_cast<int>(c);
          step.probe_is_const = true;
          step.probe_const = t.constant.word;
        } else {
          step.const_checks.push_back(
              ConstCheck{static_cast<uint32_t>(c), t.constant.word});
        }
        continue;
      }
      auto it = var_reg_.find(t.var);
      DCD_CHECK(it != var_reg_.end());
      if (probe_col < 0) {
        probe_col = static_cast<int>(c);
        step.probe_reg = it->second;
      } else {
        step.eq_checks.push_back(EqCheck{static_cast<uint32_t>(c), it->second});
      }
    }
    if (probe_col < 0) {
      // !p(_, _): succeeds only when p is empty.
      step.kind = StepKind::kAntiJoinScan;
    } else {
      step.kind = StepKind::kAntiJoinBTree;
      step.probe_col = static_cast<uint32_t>(probe_col);
      step.base_index_id = RequestBaseIndex(
          atom.predicate, static_cast<uint32_t>(probe_col),
          /*is_hash=*/false);
    }
    out_.steps.push_back(std::move(step));
    return Status::OK();
  }

  Result<CompiledExpr> CompileExpr(const Expr& e) {
    CompiledExpr out;
    out.op = e.op;
    switch (e.op) {
      case ExprOp::kVar: {
        auto it = var_reg_.find(e.var);
        if (it == var_reg_.end()) {
          return Status::PlanError("variable '" + e.var +
                                   "' unbound during physical compilation");
        }
        out.reg = it->second;
        out.type = reg_types_[out.reg];
        return out;
      }
      case ExprOp::kConst:
        out.const_word = e.constant.word;
        out.type = e.constant.type;
        return out;
      case ExprOp::kNeg: {
        DCD_ASSIGN_OR_RETURN(CompiledExpr inner, CompileExpr(*e.lhs));
        out.type = inner.type;
        out.lhs = std::make_unique<CompiledExpr>(std::move(inner));
        return out;
      }
      case ExprOp::kToDouble:
        return Status::Internal("kToDouble cannot appear in source");
      default: {
        DCD_ASSIGN_OR_RETURN(CompiledExpr l, CompileExpr(*e.lhs));
        DCD_ASSIGN_OR_RETURN(CompiledExpr r, CompileExpr(*e.rhs));
        if (l.type == ColumnType::kString || r.type == ColumnType::kString) {
          return Status::InvalidArgument(
              "arithmetic on string values in rule at line " +
              std::to_string(rule_->line));
        }
        out.type = (l.type == ColumnType::kDouble ||
                    r.type == ColumnType::kDouble)
                       ? ColumnType::kDouble
                       : ColumnType::kInt;
        out.lhs = std::make_unique<CompiledExpr>(std::move(l));
        out.rhs = std::make_unique<CompiledExpr>(std::move(r));
        return out;
      }
    }
  }

  /// Wraps `e` with an int→double conversion when the target requires it.
  static CompiledExpr Coerce(CompiledExpr e, ColumnType target) {
    if (target != ColumnType::kDouble || e.type == ColumnType::kDouble) {
      return e;
    }
    CompiledExpr conv;
    conv.op = ExprOp::kToDouble;
    conv.type = ColumnType::kDouble;
    conv.lhs = std::make_unique<CompiledExpr>(std::move(e));
    return conv;
  }

  Status EmitFilter(const Constraint& c) {
    Step step;
    step.kind = StepKind::kFilter;
    step.cmp = c.op;
    DCD_ASSIGN_OR_RETURN(step.lhs, CompileExpr(*c.lhs));
    DCD_ASSIGN_OR_RETURN(step.rhs, CompileExpr(*c.rhs));
    out_.steps.push_back(std::move(step));
    return Status::OK();
  }

  Status EmitBind(const Constraint& c) {
    // One side is the fresh variable, the other the value expression.
    const Expr* var_side = nullptr;
    const Expr* expr_side = nullptr;
    if (c.lhs->op == ExprOp::kVar && var_reg_.count(c.lhs->var) == 0) {
      var_side = c.lhs.get();
      expr_side = c.rhs.get();
    } else {
      var_side = c.rhs.get();
      expr_side = c.lhs.get();
    }
    DCD_CHECK(var_side->op == ExprOp::kVar);
    Step step;
    step.kind = StepKind::kBind;
    DCD_ASSIGN_OR_RETURN(step.lhs, CompileExpr(*expr_side));
    step.bind_reg = AllocReg(step.lhs.type);
    var_reg_[var_side->var] = step.bind_reg;
    out_.steps.push_back(std::move(step));
    return Status::OK();
  }

  Result<CompiledExpr> CompileTerm(const Term& t, ColumnType target) {
    if (t.kind == TermKind::kConstant) {
      CompiledExpr e;
      e.op = ExprOp::kConst;
      e.const_word = t.constant.word;
      e.type = t.constant.type;
      return Coerce(std::move(e), target);
    }
    auto it = var_reg_.find(t.var);
    if (it == var_reg_.end()) {
      return Status::PlanError("head variable '" + t.var + "' unbound");
    }
    CompiledExpr e;
    e.op = ExprOp::kVar;
    e.reg = it->second;
    e.type = reg_types_[e.reg];
    return Coerce(std::move(e), target);
  }

  Status CompileHead(const RuleHead& head) {
    out_.head.predicate = head.predicate;
    out_.head.pred_id = scc_->PredIdOf(head.predicate);
    DCD_CHECK(out_.head.pred_id >= 0);
    out_.head.agg = plan_->agg_specs.at(head.predicate);
    const AggSpec& spec = out_.head.agg;
    const PredicateInfo& info = analysis_.predicate(head.predicate);

    if (spec.wire_arity > kMaxWireArity) {
      return Status::Unsupported(
          "predicate '" + head.predicate + "' needs wire arity " +
          std::to_string(spec.wire_arity) + " > " +
          std::to_string(kMaxWireArity));
    }

    // Group / plain columns first.
    const size_t plain_args =
        spec.func == AggFunc::kNone ? head.args.size() : head.args.size() - 1;
    for (size_t i = 0; i < plain_args; ++i) {
      DCD_ASSIGN_OR_RETURN(
          CompiledExpr e,
          CompileTerm(head.args[i].term(), info.column_types[i]));
      out_.head.wire_exprs.push_back(std::move(e));
    }
    if (spec.func != AggFunc::kNone) {
      const HeadArg& agg_arg = head.args.back();
      switch (spec.func) {
        case AggFunc::kMin:
        case AggFunc::kMax: {
          DCD_ASSIGN_OR_RETURN(
              CompiledExpr e,
              CompileTerm(agg_arg.terms[0], spec.value_type));
          out_.head.wire_exprs.push_back(std::move(e));
          break;
        }
        case AggFunc::kCount: {
          // Contributor key: kept raw (used only for identity).
          DCD_ASSIGN_OR_RETURN(CompiledExpr e,
                               CompileTerm(agg_arg.terms[0], ColumnType::kInt));
          out_.head.wire_exprs.push_back(std::move(e));
          break;
        }
        case AggFunc::kSum: {
          DCD_ASSIGN_OR_RETURN(CompiledExpr c,
                               CompileTerm(agg_arg.terms[0], ColumnType::kInt));
          out_.head.wire_exprs.push_back(std::move(c));
          DCD_ASSIGN_OR_RETURN(
              CompiledExpr v,
              CompileTerm(agg_arg.terms[1], spec.value_type));
          out_.head.wire_exprs.push_back(std::move(v));
          break;
        }
        case AggFunc::kNone:
          break;
      }
    }
    DCD_CHECK(out_.head.wire_exprs.size() == spec.wire_arity);
    return Status::OK();
  }

#undef DCD_RETURN_IF_ERROR_P

  const Program& program_;
  const ProgramAnalysis& analysis_;
  PhysicalPlan* plan_;
  SccPlan* scc_;

  const Rule* rule_ = nullptr;
  PhysicalRule out_;
  std::map<std::string, int> var_reg_;
  std::vector<ColumnType> reg_types_;
  std::set<std::string> hash_probe_vars_;
  uint32_t driving_partition_col_ = 0;
  bool driving_needs_locality_ = false;
  bool is_update_ = false;
  bool first_scan_ = true;
};

}  // namespace

std::vector<int> SccPlan::ReplicasOf(const std::string& pred) const {
  std::vector<int> out;
  for (size_t i = 0; i < replicas.size(); ++i) {
    if (replicas[i].predicate == pred) out.push_back(static_cast<int>(i));
  }
  return out;
}

int SccPlan::PredIdOf(const std::string& pred) const {
  for (size_t i = 0; i < derived_preds.size(); ++i) {
    if (derived_preds[i] == pred) return static_cast<int>(i);
  }
  return -1;
}

std::string PhysicalRule::ToString() const {
  std::ostringstream os;
  os << "rule#" << rule_index;
  if (delta_atom >= 0) os << " δ@" << delta_atom;
  os << " drive=";
  if (driving_is_unit) {
    os << "<unit>";
  } else {
    os << driving_relation;
    if (driving_replica >= 0) os << " (replica " << driving_replica << ")";
  }
  os << " steps=" << steps.size() << " head=" << head.predicate;
  return os.str();
}

std::string SccPlan::ToString() const {
  std::ostringstream os;
  os << "SCC " << scc_id << (recursive ? " (recursive)" : "") << "\n";
  os << "  replicas:";
  for (size_t i = 0; i < replicas.size(); ++i) {
    os << " [" << i << "]" << replicas[i].predicate << "@"
       << replicas[i].partition_col
       << (replicas[i].needs_join_index ? "+idx" : "");
  }
  os << "\n";
  for (const auto& r : base_rules) os << "  base  " << r.ToString() << "\n";
  for (const auto& r : delta_rules) os << "  delta " << r.ToString() << "\n";
  for (const auto& r : update_rules) os << "  update " << r.ToString() << "\n";
  return os.str();
}

std::string PhysicalPlan::ToString() const {
  std::ostringstream os;
  for (const auto& scc : sccs) os << scc.ToString();
  os << "base indexes:";
  for (size_t i = 0; i < base_indexes.size(); ++i) {
    os << " [" << i << "]" << base_indexes[i].relation << "@"
       << base_indexes[i].col << (base_indexes[i].is_hash ? "(hash)" : "(btree)");
  }
  os << "\n";
  return os.str();
}

Result<PhysicalPlan> BuildPhysicalPlan(
    const Program& program, const ProgramAnalysis& analysis,
    const std::vector<LogicalRulePlan>& logical_plans,
    bool build_update_rules) {
  PhysicalPlan plan;

  // Aggregate specs for every derived predicate.
  for (const auto& [name, info] : analysis.predicates()) {
    if (info.is_edb) continue;
    AggSpec spec = MakeAggSpec(program, analysis, name);
    // The composite-key indexes bound group width: two words for min/max
    // (a (group, row) B+-tree key), one word for count/sum (the other key
    // word holds the contributor).
    if ((spec.func == AggFunc::kMin || spec.func == AggFunc::kMax) &&
        spec.group_arity > 2) {
      return Status::Unsupported("predicate '" + name +
                                 "': min/max supports at most 2 group-by "
                                 "columns");
    }
    if ((spec.func == AggFunc::kCount || spec.func == AggFunc::kSum) &&
        spec.group_arity > 1) {
      return Status::Unsupported("predicate '" + name +
                                 "': count/sum supports at most 1 group-by "
                                 "column");
    }
    plan.agg_specs[name] = spec;
    plan.schemas[name] = analysis.SchemaOf(name);
  }
  plan.outputs = program.outputs;

  // One SccPlan per SCC that defines rules, in evaluation order.
  for (size_t s = 0; s < analysis.sccs().size(); ++s) {
    const SccInfo& info = analysis.sccs()[s];
    if (info.rule_indices.empty()) continue;  // Pure-EDB SCC.
    SccPlan scc;
    scc.scc_id = static_cast<int>(s);
    scc.recursive = info.recursive;
    scc.derived_preds = info.predicates;

    RuleCompiler compiler(program, analysis, &plan, &scc);
    for (const LogicalRulePlan& logical : logical_plans) {
      if (analysis.rule_infos()[logical.rule_index].head_scc !=
          static_cast<int>(s)) {
        continue;
      }
      DCD_ASSIGN_OR_RETURN(PhysicalRule rule, compiler.Compile(logical));
      if (rule.delta_atom < 0) {
        scc.base_rules.push_back(std::move(rule));
      } else {
        scc.delta_rules.push_back(std::move(rule));
      }
    }

    // Update versions for incremental maintenance: one per (rule, positive
    // non-recursive body atom). A version that fails to compile (e.g. a
    // recursive probe that cannot stay partition-local when driven from
    // this atom) marks the atom's relation update-ineligible instead of
    // failing the plan — batches touching it fall back to full recompute.
    if (build_update_rules) {
      for (size_t r = 0; r < program.rules.size(); ++r) {
        const RuleInfo& rinfo = analysis.rule_infos()[r];
        if (rinfo.head_scc != static_cast<int>(s)) continue;
        const Rule& rule = program.rules[r];
        for (size_t b = 0; b < rule.body.size(); ++b) {
          const BodyLiteral& lit = rule.body[b];
          if (lit.kind != BodyLiteral::Kind::kAtom || lit.negated) continue;
          if (std::find(rinfo.recursive_atoms.begin(),
                        rinfo.recursive_atoms.end(),
                        static_cast<int>(b)) != rinfo.recursive_atoms.end()) {
            continue;
          }
          const size_t replicas_before = scc.replicas.size();
          auto compile_one = [&]() -> Result<PhysicalRule> {
            DCD_ASSIGN_OR_RETURN(
                LogicalRulePlan logical,
                BuildUpdateVersion(program, analysis, static_cast<int>(r),
                                   static_cast<int>(b)));
            return compiler.Compile(logical);
          };
          Result<PhysicalRule> compiled = compile_one();
          if (!compiled.ok()) {
            scc.replicas.resize(replicas_before);
            const std::string& rel = lit.atom.predicate;
            if (std::find(plan.update_ineligible_rels.begin(),
                          plan.update_ineligible_rels.end(),
                          rel) == plan.update_ineligible_rels.end()) {
              plan.update_ineligible_rels.push_back(rel);
            }
            continue;
          }
          scc.update_rules.push_back(std::move(compiled).value());
        }
      }
    }

    // Every derived predicate needs at least one replica so Gather has a
    // partitioned home for it, even if no rule reads it back.
    for (const std::string& pred : scc.derived_preds) {
      if (scc.ReplicasOf(pred).empty()) {
        scc.replicas.push_back(ReplicaSpec{pred, 0, false, false});
      }
    }

    // Validate partition columns against aggregate group prefixes: routing
    // must key on a group column, or a group's tuples would scatter across
    // workers and per-worker aggregation would be wrong. A global
    // aggregate (no group columns) instead pins its single group to one
    // worker via constant routing.
    for (ReplicaSpec& replica : scc.replicas) {
      const AggSpec& spec = plan.agg_specs.at(replica.predicate);
      const uint32_t limit =
          spec.func == AggFunc::kNone ? spec.stored_arity : spec.group_arity;
      if (replica.partition_col >= limit) {
        if (spec.func != AggFunc::kNone && spec.group_arity == 0 &&
            !replica.needs_join_index) {
          replica.partition_constant = true;
          replica.partition_col = 0;
          continue;
        }
        return Status::Unsupported(
            "predicate '" + replica.predicate +
            "' would be partitioned on its aggregate column");
      }
    }

    // Carry-set index: delta rules grouped by driving replica, for the
    // executor's morsel path. Built last — the replica list is final here.
    scc.delta_rules_by_replica.assign(scc.replicas.size(), {});
    for (size_t dr = 0; dr < scc.delta_rules.size(); ++dr) {
      const int rep = scc.delta_rules[dr].driving_replica;
      if (rep >= 0 && rep < static_cast<int>(scc.replicas.size())) {
        scc.delta_rules_by_replica[rep].push_back(static_cast<int>(dr));
      }
    }

    plan.sccs.push_back(std::move(scc));
  }
  return plan;
}

}  // namespace dcdatalog
