#include "planner/logical_plan.h"

#include <algorithm>
#include <set>
#include <sstream>

namespace dcdatalog {
namespace {

/// Collects the variables of an atom.
std::set<std::string> AtomVars(const Atom& atom) {
  std::set<std::string> vars;
  for (const Term& t : atom.args) {
    if (t.IsVariable()) vars.insert(t.var);
  }
  return vars;
}

bool SharesVar(const std::set<std::string>& bound, const Atom& atom) {
  for (const Term& t : atom.args) {
    if (t.IsVariable() && bound.count(t.var) > 0) return true;
  }
  return false;
}

/// Orders the body atoms of one delta version: δ atom first (the paper's
/// recursive-leftmost rule), then greedily by connectivity to the already
/// bound variables so every later join has a bound key when possible.
std::vector<int> OrderAtoms(const Rule& rule, int delta_atom) {
  // Positive atoms only; negated atoms are placed later, like constraints.
  std::vector<int> atom_indices;
  for (size_t b = 0; b < rule.body.size(); ++b) {
    if (rule.body[b].kind == BodyLiteral::Kind::kAtom &&
        !rule.body[b].negated) {
      atom_indices.push_back(static_cast<int>(b));
    }
  }
  std::vector<int> order;
  std::set<std::string> bound;
  std::vector<bool> used(rule.body.size(), false);

  auto take = [&](int body_idx) {
    order.push_back(body_idx);
    used[body_idx] = true;
    for (const std::string& v : AtomVars(rule.body[body_idx].atom)) {
      bound.insert(v);
    }
  };

  if (delta_atom >= 0) take(delta_atom);

  while (order.size() < atom_indices.size()) {
    int pick = -1;
    // Prefer a connected non-recursive atom, then any connected atom, then
    // any atom at all (cartesian fallback).
    for (int b : atom_indices) {
      if (used[b]) continue;
      if (!bound.empty() && !SharesVar(bound, rule.body[b].atom)) continue;
      pick = b;
      break;
    }
    if (pick == -1) {
      for (int b : atom_indices) {
        if (!used[b]) {
          pick = b;
          break;
        }
      }
    }
    take(pick);
  }
  return order;
}

/// Tracks which constraints have been placed and which variables are bound,
/// and emits Bind/Select wrappers as soon as their inputs are available —
/// this is the selection-pushdown of §5.1.
class ConstraintPlacer {
 public:
  explicit ConstraintPlacer(const Rule& rule) : rule_(rule) {
    for (size_t b = 0; b < rule.body.size(); ++b) {
      if (rule.body[b].kind == BodyLiteral::Kind::kConstraint ||
          rule.body[b].negated) {
        pending_.push_back(static_cast<int>(b));
      }
    }
  }

  void BindAtomVars(const Atom& atom) {
    for (const Term& t : atom.args) {
      if (t.IsVariable()) bound_.insert(t.var);
    }
  }

  /// Wraps `node` with every constraint that can run now. Binding
  /// assignments may unlock further constraints, so loop to fixpoint.
  std::unique_ptr<LogicalOp> Apply(std::unique_ptr<LogicalOp> node) {
    bool progressed = true;
    while (progressed) {
      progressed = false;
      for (auto it = pending_.begin(); it != pending_.end();) {
        const BodyLiteral& lit = rule_.body[*it];
        if (lit.kind == BodyLiteral::Kind::kAtom) {
          // A negated atom: place once every variable is bound.
          if (AtomVarsBound(lit.atom)) {
            auto op = std::make_unique<LogicalOp>();
            op->kind = LogicalOpKind::kAntiJoin;
            op->atom = lit.atom;
            if (node != nullptr) op->children.push_back(std::move(node));
            node = std::move(op);
            it = pending_.erase(it);
            progressed = true;
          } else {
            ++it;
          }
          continue;
        }
        const Constraint& c = lit.constraint;
        if (CanBind(c)) {
          node = Wrap(LogicalOpKind::kBind, c, std::move(node));
          BindTarget(c);
          it = pending_.erase(it);
          progressed = true;
        } else if (AllVarsBound(c)) {
          node = Wrap(LogicalOpKind::kSelect, c, std::move(node));
          it = pending_.erase(it);
          progressed = true;
        } else {
          ++it;
        }
      }
    }
    return node;
  }

  bool AllPlaced() const { return pending_.empty(); }

 private:
  bool VarBound(const std::string& v) const { return bound_.count(v) > 0; }

  bool AtomVarsBound(const Atom& atom) const {
    for (const Term& t : atom.args) {
      if (t.IsVariable() && !VarBound(t.var)) return false;
    }
    return true;
  }

  bool ExprBound(const Expr& e) const {
    std::vector<std::string> vars;
    e.CollectVars(&vars);
    return std::all_of(vars.begin(), vars.end(),
                       [this](const std::string& v) { return VarBound(v); });
  }

  bool AllVarsBound(const Constraint& c) const {
    return ExprBound(*c.lhs) && ExprBound(*c.rhs);
  }

  /// True when the constraint is `V = expr` with V unbound and expr bound
  /// (either orientation) — it should become a Bind, not a Select.
  bool CanBind(const Constraint& c) const {
    if (c.op != CmpOp::kEq) return false;
    if (c.lhs->op == ExprOp::kVar && !VarBound(c.lhs->var) &&
        ExprBound(*c.rhs)) {
      return true;
    }
    if (c.rhs->op == ExprOp::kVar && !VarBound(c.rhs->var) &&
        ExprBound(*c.lhs)) {
      return true;
    }
    return false;
  }

  void BindTarget(const Constraint& c) {
    if (c.lhs->op == ExprOp::kVar && !VarBound(c.lhs->var)) {
      bound_.insert(c.lhs->var);
    } else if (c.rhs->op == ExprOp::kVar) {
      bound_.insert(c.rhs->var);
    }
  }

  std::unique_ptr<LogicalOp> Wrap(LogicalOpKind kind, const Constraint& c,
                                  std::unique_ptr<LogicalOp> child) {
    auto op = std::make_unique<LogicalOp>();
    op->kind = kind;
    op->constraint = c.Clone();
    if (child != nullptr) op->children.push_back(std::move(child));
    return op;
  }

  const Rule& rule_;
  std::set<std::string> bound_;
  std::vector<int> pending_;
};

Result<LogicalRulePlan> BuildOneVersion(const Program& program,
                                        const ProgramAnalysis& analysis,
                                        int rule_index, int delta_atom) {
  const Rule& rule = program.rules[rule_index];
  const RuleInfo& rinfo = analysis.rule_infos()[rule_index];

  LogicalRulePlan plan;
  plan.rule_index = rule_index;
  plan.delta_atom = delta_atom;

  ConstraintPlacer placer(rule);
  std::unique_ptr<LogicalOp> node;

  const std::vector<int> order = OrderAtoms(rule, delta_atom);
  for (size_t k = 0; k < order.size(); ++k) {
    const int body_idx = order[k];
    const Atom& atom = rule.body[body_idx].atom;

    auto scan = std::make_unique<LogicalOp>();
    scan->kind = LogicalOpKind::kScan;
    scan->atom = atom;
    scan->is_delta = body_idx == delta_atom;
    scan->is_recursive =
        std::find(rinfo.recursive_atoms.begin(), rinfo.recursive_atoms.end(),
                  body_idx) != rinfo.recursive_atoms.end();

    if (node == nullptr) {
      node = std::move(scan);
      placer.BindAtomVars(atom);
    } else {
      auto join = std::make_unique<LogicalOp>();
      join->kind = LogicalOpKind::kJoin;
      // Record shared variables for diagnostics.
      std::set<std::string> prev_bound;
      for (size_t j = 0; j < k; ++j) {
        for (const std::string& v :
             AtomVars(rule.body[order[j]].atom)) {
          prev_bound.insert(v);
        }
      }
      for (const std::string& v : AtomVars(atom)) {
        if (prev_bound.count(v) > 0) join->join_vars.push_back(v);
      }
      join->children.push_back(std::move(node));
      join->children.push_back(std::move(scan));
      node = std::move(join);
      placer.BindAtomVars(atom);
    }
    node = placer.Apply(std::move(node));
  }

  // Rules with no atoms (e.g. SSSP's seed rule) start from constraints on
  // an implicit unit row.
  if (node == nullptr) {
    node = placer.Apply(nullptr);
  } else {
    node = placer.Apply(std::move(node));
  }

  if (!placer.AllPlaced()) {
    return Status::PlanError("rule at line " + std::to_string(rule.line) +
                             ": some constraints reference unbound variables");
  }

  auto project = std::make_unique<LogicalOp>();
  project->kind = LogicalOpKind::kProjectHead;
  project->head.predicate = rule.head.predicate;
  for (const HeadArg& arg : rule.head.args) {
    HeadArg copy;
    copy.agg = arg.agg;
    copy.terms = arg.terms;
    project->head.args.push_back(std::move(copy));
  }
  if (node != nullptr) project->children.push_back(std::move(node));
  plan.root = std::move(project);
  return plan;
}

}  // namespace

std::string LogicalOp::ToString(int indent) const {
  std::ostringstream os;
  std::string pad(indent * 2, ' ');
  os << pad;
  switch (kind) {
    case LogicalOpKind::kScan:
      os << "Scan(" << (is_delta ? "δ" : "") << atom.ToString()
         << (is_recursive && !is_delta ? " [recursive]" : "") << ")";
      break;
    case LogicalOpKind::kAntiJoin:
      os << "AntiJoin(!" << atom.ToString() << ")";
      break;
    case LogicalOpKind::kJoin: {
      os << "Join[";
      for (size_t i = 0; i < join_vars.size(); ++i) {
        if (i > 0) os << ",";
        os << join_vars[i];
      }
      os << "]";
      break;
    }
    case LogicalOpKind::kSelect:
      os << "Select(" << constraint.ToString() << ")";
      break;
    case LogicalOpKind::kBind:
      os << "Bind(" << constraint.ToString() << ")";
      break;
    case LogicalOpKind::kProjectHead:
      os << "ProjectHead(" << head.ToString() << ")";
      break;
  }
  for (const auto& child : children) {
    os << "\n" << child->ToString(indent + 1);
  }
  return os.str();
}

std::string LogicalRulePlan::ToString() const {
  std::ostringstream os;
  os << "rule#" << rule_index;
  if (delta_atom >= 0) os << " δ@" << delta_atom;
  os << ":\n" << root->ToString(1);
  return os.str();
}

Result<LogicalRulePlan> BuildUpdateVersion(const Program& program,
                                           const ProgramAnalysis& analysis,
                                           int rule_index, int update_atom) {
  DCD_ASSIGN_OR_RETURN(
      LogicalRulePlan plan,
      BuildOneVersion(program, analysis, rule_index, update_atom));
  plan.is_update = true;
  return plan;
}

Result<std::vector<LogicalRulePlan>> BuildLogicalPlans(
    const Program& program, const ProgramAnalysis& analysis) {
  std::vector<LogicalRulePlan> plans;
  for (size_t r = 0; r < program.rules.size(); ++r) {
    const RuleInfo& rinfo = analysis.rule_infos()[r];
    if (rinfo.recursive_atoms.empty()) {
      DCD_ASSIGN_OR_RETURN(
          LogicalRulePlan plan,
          BuildOneVersion(program, analysis, static_cast<int>(r), -1));
      plans.push_back(std::move(plan));
    } else {
      if (rinfo.recursive_atoms.size() > 2) {
        return Status::Unsupported(
            "rule at line " + std::to_string(program.rules[r].line) +
            " has more than two recursive goals; DCDatalog routes new "
            "tuples to at most two partitions (paper §4.3)");
      }
      for (int delta_atom : rinfo.recursive_atoms) {
        DCD_ASSIGN_OR_RETURN(
            LogicalRulePlan plan,
            BuildOneVersion(program, analysis, static_cast<int>(r),
                            delta_atom));
        plans.push_back(std::move(plan));
      }
    }
  }
  return plans;
}

}  // namespace dcdatalog
