#ifndef DCDATALOG_PLANNER_PHYSICAL_PLAN_H_
#define DCDATALOG_PLANNER_PHYSICAL_PLAN_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "common/value.h"
#include "datalog/analysis.h"
#include "planner/logical_plan.h"

namespace dcdatalog {

/// A scalar expression compiled against a rule's register file: variables
/// are resolved to register indices and every node knows its result type,
/// so evaluation needs no name lookups or type dispatch beyond one branch.
struct CompiledExpr {
  ExprOp op = ExprOp::kConst;
  int reg = -1;             // kVar
  uint64_t const_word = 0;  // kConst
  ColumnType type = ColumnType::kInt;
  std::unique_ptr<CompiledExpr> lhs;
  std::unique_ptr<CompiledExpr> rhs;
};

/// How one column of a scanned/probed tuple interacts with registers.
struct OutputBinding {
  uint32_t col;  // Column in the scanned tuple.
  int reg;       // Register to write.
};
struct EqCheck {
  uint32_t col;
  int reg;  // Tuple column must equal this register's value.
};
struct ConstCheck {
  uint32_t col;
  uint64_t word;
};

/// Kinds of pipeline steps executed per driving tuple (paper §5.2).
enum class StepKind : uint8_t {
  kProbeBaseHash,   // Hash-join probe of a base-relation index.
  kProbeBaseBTree,  // Index-join probe of a base-relation B+-tree.
  kScanBase,        // Nested-loop fallback: full scan of a base relation.
  kProbeRecursive,  // Probe a recursive-table replica's join index.
  kAntiJoinBTree,   // Stratified negation via index: reject on any match.
  kAntiJoinScan,    // Stratified negation via full scan.
  kFilter,          // Constraint evaluation.
  kBind,            // Assignment: evaluate expr into a fresh register.
};

struct Step {
  StepKind kind = StepKind::kFilter;

  // Probes and scans.
  std::string relation;    // Base relation name (kProbe*/kScanBase).
  int base_index_id = -1;  // Into PhysicalPlan::base_indexes.
  int replica_id = -1;     // Into SccPlan::replicas (kProbeRecursive).
  uint32_t probe_col = 0;
  int probe_reg = -1;           // Register holding the probe key, or -1 ...
  bool probe_is_const = false;  // ... when the key is this constant:
  uint64_t probe_const = 0;
  std::vector<OutputBinding> outputs;
  std::vector<EqCheck> eq_checks;
  std::vector<ConstCheck> const_checks;

  // kFilter / kBind.
  CmpOp cmp = CmpOp::kEq;
  CompiledExpr lhs;  // kBind: the value expression.
  CompiledExpr rhs;  // kFilter only.
  int bind_reg = -1;

  /// Planner-computed batch-executor metadata: true when the step can fan
  /// out — emit more than one output row per input lane (probes and scans).
  /// Non-expanding steps (filter/bind/anti-join) are at most 1:1, so the
  /// batch executor runs them in place over the selection vector instead of
  /// scattering into a fresh register bank.
  bool expanding = false;

  /// Planner-computed liveness (expanding steps only): the registers an
  /// output lane must inherit from its input lane when this step scatters a
  /// match into the next level — registers read by later steps or the head,
  /// plus this step's own eq-checks, minus the ones its outputs (re)write.
  /// The batch executor copies exactly these words per match instead of the
  /// whole register file.
  std::vector<int> carry_regs;
};

/// Aggregate behaviour of one derived predicate (paper §6.2.1).
///
/// Stored rows always have the head's arity. The wire format — what
/// Distribute sends and Gather merges — differs for sum, which carries a
/// per-contributor value so a contributor can replace its own previous
/// contribution (the PageRank pattern):
///   none:   wire = stored = full row
///   min/max wire = stored = group cols + value
///   count:  wire = group cols + contributor; stored = group cols + count
///   sum:    wire = group cols + contributor + value; stored = group + sum
struct AggSpec {
  AggFunc func = AggFunc::kNone;
  uint32_t group_arity = 0;
  uint32_t stored_arity = 0;
  uint32_t wire_arity = 0;
  ColumnType value_type = ColumnType::kInt;  // Type of the aggregate column.
};

/// One partitioned replica of a recursive predicate: all its tuples, hash-
/// partitioned across workers on `partition_col` of the stored row. Linear
/// recursion needs one replica; non-linear rules route every tuple to two
/// (paper §4.3).
struct ReplicaSpec {
  std::string predicate;
  uint32_t partition_col = 0;
  bool needs_join_index = false;  // Some rule probes this replica.
  /// Global aggregates (no group-by columns) have a single logical group;
  /// all their tuples route to one fixed worker instead of by column.
  bool partition_constant = false;
};

/// The head side of a physical rule: wire-tuple construction and routing.
struct HeadSpec {
  std::string predicate;
  /// Dense plan-time id: index of `predicate` in the owning SCC's
  /// derived_preds. Lets the Distributor keep per-predicate state in a flat
  /// vector instead of a string map on the per-emit hot path.
  int pred_id = -1;
  std::vector<CompiledExpr> wire_exprs;  // One per wire column.
  AggSpec agg;
};

/// One executable rule version: the driving scan, the step pipeline, and
/// the head emission.
struct PhysicalRule {
  int rule_index = -1;
  int delta_atom = -1;  // -1: base rule (driving scan over a relation).

  /// Incremental-maintenance update version: the driving scan ranges over
  /// the newly-arrived rows of a base (or upstream IDB) relation instead of
  /// a replica's δ. delta_atom then names the driven body atom.
  bool is_update = false;

  /// Update versions only: the driving-row column whose hash names the one
  /// worker allowed to process the row (it probes recursive replicas, so
  /// the probe must stay partition-local — same invariant as δ routing), or
  /// -1 when no recursive probe constrains locality and workers may split
  /// the new rows by range.
  int update_partition_col = -1;

  /// Driving source: a recursive replica's delta (delta versions), a base
  /// relation scanned in chunks (base rules), or the implicit unit row.
  std::string driving_relation;
  int driving_replica = -1;
  bool driving_is_unit = false;
  std::vector<OutputBinding> scan_outputs;
  std::vector<EqCheck> scan_eq_checks;
  std::vector<ConstCheck> scan_const_checks;

  std::vector<Step> steps;
  HeadSpec head;

  uint32_t num_regs = 0;
  std::vector<ColumnType> reg_types;

  /// Planner-computed: any step has expanding == true. A rule without
  /// expanding steps keeps one batch's lanes 1:1 with its driving tuples,
  /// which lets the batch executor skip bank-to-bank scatters entirely.
  bool has_expanding_steps = false;

  std::string ToString() const;
};

/// Request for a global read-only index over a base relation. The engine
/// builds these before the owning SCC starts evaluating.
struct BaseIndexReq {
  std::string relation;
  uint32_t col = 0;
  bool is_hash = false;  // false: B+-tree (index join); true: hash join.
};

/// Everything the engine needs to evaluate one SCC.
struct SccPlan {
  int scc_id = -1;
  bool recursive = false;
  std::vector<std::string> derived_preds;  // Heads defined in this SCC.
  std::vector<ReplicaSpec> replicas;       // Replica id = index here.
  std::vector<PhysicalRule> base_rules;
  std::vector<PhysicalRule> delta_rules;

  /// Update versions (augmented plans only — see BuildPhysicalPlan's
  /// build_update_rules): one per (rule, positive non-recursive body atom),
  /// driven over that relation's newly-arrived rows by ApplyUpdates.
  std::vector<PhysicalRule> update_rules;

  /// Carry-set metadata, indexed by replica id: the delta_rules indices
  /// driven by that replica's δ. The executor's morsel path uses it to run
  /// exactly one replica's rules over a stolen driving slice without
  /// scanning the whole delta-rule list per morsel.
  std::vector<std::vector<int>> delta_rules_by_replica;

  /// Replica ids for a predicate, in registration order (the first one is
  /// the canonical replica whose union forms the final relation).
  std::vector<int> ReplicasOf(const std::string& pred) const;

  /// Dense id of a derived predicate (its index in derived_preds), or -1.
  int PredIdOf(const std::string& pred) const;

  std::string ToString() const;
};

struct PhysicalPlan {
  std::vector<SccPlan> sccs;  // In evaluation order.
  std::map<std::string, AggSpec> agg_specs;  // Every derived predicate.
  std::map<std::string, Schema> schemas;     // Stored schemas, derived preds.
  std::vector<BaseIndexReq> base_indexes;
  std::vector<std::string> outputs;  // Program's .output list (may be empty).

  /// Relations for which some rule has no valid update version (e.g. a
  /// recursive probe would leave its partition). An update batch touching
  /// any of these — directly or through the affected-predicate closure —
  /// falls back to full recomputation.
  std::vector<std::string> update_ineligible_rels;

  std::string ToString() const;
};

/// Compiles the logical plans into a physical plan (paper §5.2): assigns
/// partition columns and replicas, selects join methods via the paper's
/// heuristic (hash join when two or more base atoms in a rule probe on the
/// same key variable, index join when an index is available, nested loop
/// otherwise), performs register allocation, and validates that recursive
/// probes stay partition-local.
/// With build_update_rules, each SCC additionally carries the compiled
/// update versions of its rules (incremental-maintenance driving); rules
/// whose update version cannot be compiled are recorded in
/// PhysicalPlan::update_ineligible_rels rather than failing the plan.
Result<PhysicalPlan> BuildPhysicalPlan(
    const Program& program, const ProgramAnalysis& analysis,
    const std::vector<LogicalRulePlan>& logical_plans,
    bool build_update_rules = false);

}  // namespace dcdatalog

#endif  // DCDATALOG_PLANNER_PHYSICAL_PLAN_H_
