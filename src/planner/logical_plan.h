#ifndef DCDATALOG_PLANNER_LOGICAL_PLAN_H_
#define DCDATALOG_PLANNER_LOGICAL_PLAN_H_

#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "datalog/analysis.h"
#include "datalog/ast.h"

namespace dcdatalog {

/// Logical relational operators (paper §5.1). A rule compiles to a DAG —
/// here a left-deep tree — of these; recursive predicates carry delta tags.
enum class LogicalOpKind : uint8_t {
  kScan,        // A body atom: base relation or recursive table.
  kJoin,        // Natural join of the two children on shared variables.
  kAntiJoin,    // Stratified negation: drop rows matching `atom`.
  kSelect,      // A constraint filter.
  kBind,        // An assignment `Var = expr` introducing a new column.
  kProjectHead, // Final projection to the head, including aggregate spec.
};

struct LogicalOp {
  LogicalOpKind kind;

  // kScan / kAntiJoin
  Atom atom;
  bool is_delta = false;      // Scan of δP rather than P.
  bool is_recursive = false;  // P is in the rule's own SCC.

  // kJoin
  std::vector<std::string> join_vars;  // Shared variables (documentation).

  // kSelect / kBind
  Constraint constraint;

  // kProjectHead
  RuleHead head;

  std::vector<std::unique_ptr<LogicalOp>> children;

  std::string ToString(int indent = 0) const;
};

/// The logical plan of one rule: a single delta version. A rule with k
/// recursive body atoms yields k delta versions (semi-naive rewriting);
/// a base rule yields exactly one with delta_atom = -1.
struct LogicalRulePlan {
  int rule_index = -1;
  int delta_atom = -1;  // Body index of the δ-scanned atom; -1 = base rule.
  /// Incremental-maintenance update version: delta_atom names a positive
  /// *non-recursive* body atom, and the driving scan ranges over that
  /// relation's newly-arrived rows instead of a recursive table's δ.
  bool is_update = false;
  std::unique_ptr<LogicalOp> root;

  std::string ToString() const;
};

/// Builds the logical plans for every rule of `program`:
///  1. expands each recursive rule into its delta versions,
///  2. reorders body atoms recursive-table-first (paper §5.1),
///  3. orders remaining atoms greedily by join connectivity,
///  4. pushes selections/bindings down to the lowest join level where
///     their variables are bound.
Result<std::vector<LogicalRulePlan>> BuildLogicalPlans(
    const Program& program, const ProgramAnalysis& analysis);

/// Builds the incremental-maintenance "update version" of one rule: the
/// positive non-recursive body atom `update_atom` becomes the driving scan
/// (tagged is_delta, so downstream planning treats it exactly like a δ
/// scan), and every other literal is probed at its full current value.
/// Driving such a version over a relation's newly-arrived rows re-derives
/// precisely the derivations that consume at least one new tuple — the
/// monotone half of delta maintenance. One version exists per
/// (rule, positive non-recursive atom).
Result<LogicalRulePlan> BuildUpdateVersion(const Program& program,
                                           const ProgramAnalysis& analysis,
                                           int rule_index, int update_atom);

}  // namespace dcdatalog

#endif  // DCDATALOG_PLANNER_LOGICAL_PLAN_H_
