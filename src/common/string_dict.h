#ifndef DCDATALOG_COMMON_STRING_DICT_H_
#define DCDATALOG_COMMON_STRING_DICT_H_

#include <cstdint>
#include <mutex>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

namespace dcdatalog {

/// Interns strings to dense uint64 ids so tuples stay fixed-width. Interning
/// happens at load/parse time (possibly from several threads); lookups of
/// already-interned ids are wait-free reads after loading completes.
///
/// Thread safety: Intern() is internally synchronized. Get() is safe
/// concurrently with Intern() because ids_ grows through a std::deque-like
/// chunked vector that never invalidates earlier entries — we use
/// std::vector<std::string> guarded by the same mutex for simplicity, and
/// Get() takes the lock too; the evaluator hot path never calls Get().
class StringDict {
 public:
  StringDict() = default;

  StringDict(const StringDict&) = delete;
  StringDict& operator=(const StringDict&) = delete;

  /// Returns the id for `s`, inserting it if new.
  uint64_t Intern(std::string_view s);

  /// Returns the string for `id`. id must have been returned by Intern().
  std::string Get(uint64_t id) const;

  /// Returns the id for `s` if present, or UINT64_MAX.
  uint64_t Find(std::string_view s) const;

  size_t size() const;

 private:
  mutable std::mutex mu_;
  std::unordered_map<std::string, uint64_t> index_;
  std::vector<std::string> strings_;
};

}  // namespace dcdatalog

#endif  // DCDATALOG_COMMON_STRING_DICT_H_
