#ifndef DCDATALOG_COMMON_STRING_DICT_H_
#define DCDATALOG_COMMON_STRING_DICT_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "common/mutex.h"
#include "common/thread_annotations.h"

namespace dcdatalog {

/// Interns strings to dense uint64 ids so tuples stay fixed-width. Interning
/// happens at load/parse time (possibly from several threads); lookups of
/// already-interned ids are wait-free reads after loading completes.
///
/// Thread safety: every method is internally synchronized on mu_, and the
/// capability annotations let clang verify that no path touches index_ or
/// strings_ without the lock. The evaluator hot path never calls into the
/// dictionary — wire tuples carry interned ids only.
class StringDict {
 public:
  StringDict() = default;

  StringDict(const StringDict&) = delete;
  StringDict& operator=(const StringDict&) = delete;

  /// Returns the id for `s`, inserting it if new.
  uint64_t Intern(std::string_view s) DCD_EXCLUDES(mu_);

  /// Returns the string for `id`. id must have been returned by Intern().
  std::string Get(uint64_t id) const DCD_EXCLUDES(mu_);

  /// Returns the id for `s` if present, or UINT64_MAX.
  uint64_t Find(std::string_view s) const DCD_EXCLUDES(mu_);

  size_t size() const DCD_EXCLUDES(mu_);

 private:
  mutable Mutex mu_;
  std::unordered_map<std::string, uint64_t> index_ DCD_GUARDED_BY(mu_);
  std::vector<std::string> strings_ DCD_GUARDED_BY(mu_);
};

}  // namespace dcdatalog

#endif  // DCDATALOG_COMMON_STRING_DICT_H_
