#ifndef DCDATALOG_COMMON_HISTOGRAM_H_
#define DCDATALOG_COMMON_HISTOGRAM_H_

#include <array>
#include <cstdint>

#include "common/hot_path.h"

namespace dcdatalog {

/// Fixed-size log-bucket histogram for hot-path measurements (iteration
/// latency, drain batch sizes). Bucket b counts values whose bit width is b:
/// bucket 0 holds value 0, bucket b (b >= 1) holds [2^(b-1), 2^b). Add() is
/// a clz + one array increment — no allocation, no branches beyond the
/// zero check — cheap enough to stay enabled on every run, trace or not.
///
/// Not synchronized: one instance per worker, merged after the join.
class LogHistogram {
 public:
  static constexpr uint32_t kBuckets = 65;  // 0 plus one per bit of uint64_t.

  DCD_HOT_ROOT void Add(uint64_t value) {
    buckets_[BucketOf(value)] += 1;
    total_ += value;
    if (value > max_) max_ = value;
    ++count_;
  }

  /// Bucket index for `value` (0 for 0, else bit width).
  static uint32_t BucketOf(uint64_t value) {
    return value == 0 ? 0 : 64 - static_cast<uint32_t>(__builtin_clzll(value));
  }

  /// Smallest value the bucket admits (its inclusive lower bound).
  static uint64_t BucketLowerBound(uint32_t bucket) {
    return bucket == 0 ? 0 : uint64_t{1} << (bucket - 1);
  }

  uint64_t count() const { return count_; }
  uint64_t total() const { return total_; }
  uint64_t max() const { return max_; }
  uint64_t bucket(uint32_t b) const { return buckets_[b]; }
  double mean() const {
    return count_ == 0 ? 0.0
                       : static_cast<double>(total_) /
                             static_cast<double>(count_);
  }

  /// Upper bound of the bucket holding the q-quantile (q in [0, 1]) — a
  /// factor-of-2 estimate, which is what a log histogram buys.
  uint64_t Quantile(double q) const {
    if (count_ == 0) return 0;
    uint64_t rank = static_cast<uint64_t>(q * static_cast<double>(count_));
    if (rank >= count_) rank = count_ - 1;
    uint64_t seen = 0;
    for (uint32_t b = 0; b < kBuckets; ++b) {
      seen += buckets_[b];
      if (seen > rank) {
        return b == 0 ? 0 : (uint64_t{1} << b) - 1;  // Bucket upper bound.
      }
    }
    return max_;
  }

  void Merge(const LogHistogram& other) {
    for (uint32_t b = 0; b < kBuckets; ++b) buckets_[b] += other.buckets_[b];
    count_ += other.count_;
    total_ += other.total_;
    if (other.max_ > max_) max_ = other.max_;
  }

  void Reset() {
    buckets_.fill(0);
    count_ = 0;
    total_ = 0;
    max_ = 0;
  }

 private:
  std::array<uint64_t, kBuckets> buckets_{};
  uint64_t count_ = 0;
  uint64_t total_ = 0;
  uint64_t max_ = 0;
};

}  // namespace dcdatalog

#endif  // DCDATALOG_COMMON_HISTOGRAM_H_
