#include "common/string_dict.h"

#include <cstdint>

#include "common/logging.h"

namespace dcdatalog {

uint64_t StringDict::Intern(std::string_view s) {
  MutexLock lock(&mu_);
  auto it = index_.find(std::string(s));
  if (it != index_.end()) return it->second;
  uint64_t id = strings_.size();
  strings_.emplace_back(s);
  index_.emplace(strings_.back(), id);
  return id;
}

std::string StringDict::Get(uint64_t id) const {
  MutexLock lock(&mu_);
  DCD_CHECK(id < strings_.size());
  return strings_[id];
}

uint64_t StringDict::Find(std::string_view s) const {
  MutexLock lock(&mu_);
  auto it = index_.find(std::string(s));
  return it == index_.end() ? UINT64_MAX : it->second;
}

size_t StringDict::size() const {
  MutexLock lock(&mu_);
  return strings_.size();
}

}  // namespace dcdatalog
