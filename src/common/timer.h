#ifndef DCDATALOG_COMMON_TIMER_H_
#define DCDATALOG_COMMON_TIMER_H_

#include <chrono>
#include <cstdint>

namespace dcdatalog {

/// Monotonic wall-clock stopwatch. Start() resets; Elapsed*() reads without
/// stopping, so a single timer can bracket several phases.
class WallTimer {
 public:
  WallTimer() { Start(); }

  void Start() { start_ = Clock::now(); }

  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  double ElapsedMillis() const { return ElapsedSeconds() * 1e3; }

  int64_t ElapsedNanos() const {
    return std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() -
                                                                start_)
        .count();
  }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

/// Nanoseconds since an unspecified monotonic epoch; cheap enough for the
/// per-tuple-batch arrival timestamps the DWS statistics need.
inline int64_t MonotonicNanos() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

}  // namespace dcdatalog

#endif  // DCDATALOG_COMMON_TIMER_H_
