#include "common/trace.h"

#include <cstddef>

namespace dcdatalog {

const char* TraceEventKindName(TraceEventKind kind) {
  switch (kind) {
    case TraceEventKind::kIteration:
      return "iteration";
    case TraceEventKind::kPark:
      return "park";
    case TraceEventKind::kBarrierWait:
      return "barrier_wait";
    case TraceEventKind::kSspWait:
      return "ssp_wait";
    case TraceEventKind::kDwsWait:
      return "dws_wait";
    case TraceEventKind::kDrain:
      return "drain";
    case TraceEventKind::kBlockPush:
      return "block_push";
    case TraceEventKind::kSccBegin:
      return "scc_begin";
    case TraceEventKind::kSccEnd:
      return "scc_end";
    case TraceEventKind::kDwsDecision:
      return "dws_decision";
    case TraceEventKind::kAdmission:
      return "admission";
    case TraceEventKind::kMorselPublish:
      return "morsel_publish";
    case TraceEventKind::kSteal:
      return "steal";
  }
  return "unknown";
}

bool TraceEventIsSpan(TraceEventKind kind) {
  switch (kind) {
    case TraceEventKind::kIteration:
    case TraceEventKind::kPark:
    case TraceEventKind::kBarrierWait:
    case TraceEventKind::kSspWait:
    case TraceEventKind::kDwsWait:
      return true;
    case TraceEventKind::kDrain:
    case TraceEventKind::kBlockPush:
    case TraceEventKind::kSccBegin:
    case TraceEventKind::kSccEnd:
    case TraceEventKind::kDwsDecision:
    case TraceEventKind::kAdmission:
    case TraceEventKind::kMorselPublish:
    case TraceEventKind::kSteal:
      return false;
  }
  return false;
}

TraceRing::TraceRing(uint32_t capacity) {
  if (capacity == 0) return;
  uint32_t cap = 2;  // Smallest power of two with a non-zero mask.
  while (cap < capacity) cap <<= 1;
  slots_.resize(cap);
  mask_ = cap - 1;
}

void TraceRing::Snapshot(std::vector<TraceEvent>* out) const {
  if (mask_ == 0 || head_ == 0) return;
  const uint64_t size = slots_.size();
  const uint64_t first = head_ > size ? head_ - size : 0;
  out->reserve(out->size() + static_cast<size_t>(head_ - first));
  for (uint64_t i = first; i < head_; ++i) {
    out->push_back(slots_[i & mask_]);
  }
}

}  // namespace dcdatalog
