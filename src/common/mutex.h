#ifndef DCDATALOG_COMMON_MUTEX_H_
#define DCDATALOG_COMMON_MUTEX_H_

#include <condition_variable>
#include <mutex>

#include "common/thread_annotations.h"

namespace dcdatalog {

/// std::mutex wrapped as a TSA capability so clang's `-Wthread-safety` can
/// check the lock discipline (libstdc++'s std::mutex carries no capability
/// attributes, so annotating it directly does nothing). All lock-guarded
/// structures in the engine use this type; the lint suite rejects bare
/// std::mutex outside this file.
///
/// Locks exist only on the cold paths — loading, planning, logging, result
/// materialization. The evaluation hot paths (strategy loops, Distribute,
/// Gather, ring push/pop) are lock-free by design and tools/lint enforces
/// that no Mutex ever appears in them.
class DCD_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;

  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void Lock() DCD_ACQUIRE() { mu_.lock(); }
  void Unlock() DCD_RELEASE() { mu_.unlock(); }

  // BasicLockable spelling so CondVar (condition_variable_any) can release
  // and reacquire this capability during a wait. Not for direct use.
  void lock() DCD_ACQUIRE() { mu_.lock(); }
  void unlock() DCD_RELEASE() { mu_.unlock(); }

 private:
  std::mutex mu_;
};

/// RAII lock for Mutex, annotated so the analysis tracks the critical
/// section's extent. Prefer this over manual Lock/Unlock pairs.
class DCD_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex* mu) DCD_ACQUIRE(mu) : mu_(mu) { mu_->Lock(); }
  ~MutexLock() DCD_RELEASE() { mu_->Unlock(); }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex* const mu_;
};

/// Condition variable paired with Mutex. Cold-path only, like Mutex itself:
/// the serving layer's scheduler waits here, never an evaluation worker's
/// per-iteration loop. Wait() takes the Mutex so the DCD_REQUIRES contract
/// mirrors how std::condition_variable_any releases and reacquires it.
class CondVar {
 public:
  CondVar() = default;

  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  void Wait(Mutex* mu) DCD_REQUIRES(mu) { cv_.wait(*mu); }
  void NotifyOne() { cv_.notify_one(); }
  void NotifyAll() { cv_.notify_all(); }

 private:
  std::condition_variable_any cv_;
};

}  // namespace dcdatalog

#endif  // DCDATALOG_COMMON_MUTEX_H_
