#include "common/options.h"

#include <sstream>
#include <thread>

namespace dcdatalog {

const char* CoordinationModeName(CoordinationMode mode) {
  switch (mode) {
    case CoordinationMode::kGlobal:
      return "Global";
    case CoordinationMode::kSsp:
      return "SSP";
    case CoordinationMode::kDws:
      return "DWS";
  }
  return "unknown";
}

const char* MergeIndexBackendName(MergeIndexBackend backend) {
  switch (backend) {
    case MergeIndexBackend::kFlat:
      return "flat";
    case MergeIndexBackend::kBtree:
      return "btree";
  }
  return "unknown";
}

const char* PipelineExecutorName(PipelineExecutor executor) {
  switch (executor) {
    case PipelineExecutor::kBatch:
      return "batch";
    case PipelineExecutor::kTuple:
      return "tuple";
  }
  return "unknown";
}

const char* NumaModeName(NumaMode mode) {
  switch (mode) {
    case NumaMode::kAuto:
      return "auto";
    case NumaMode::kOff:
      return "off";
  }
  return "unknown";
}

EngineOptions EngineOptions::Resolved() const {
  EngineOptions out = *this;
  if (out.num_workers == 0) {
    unsigned hw = std::thread::hardware_concurrency();
    out.num_workers = hw == 0 ? 4 : hw;
  }
  if (out.spsc_capacity < 2) out.spsc_capacity = 2;
  if (out.existence_cache_slots < 1) out.existence_cache_slots = 1;
  if (out.ssp_slack < 1) out.ssp_slack = 1;
  if (out.steal_morsel_tuples < 16) out.steal_morsel_tuples = 16;
  return out;
}

std::string EngineOptions::ToString() const {
  std::ostringstream os;
  os << "EngineOptions{workers=" << num_workers
     << ", coordination=" << CoordinationModeName(coordination)
     << ", ssp_slack=" << ssp_slack << ", dws_timeout_us=" << dws_timeout_us
     << ", spsc_capacity=" << spsc_capacity
     << ", agg_index=" << (enable_aggregate_index ? "on" : "off")
     << ", exist_cache=" << (enable_existence_cache ? "on" : "off")
     << ", merge_backend=" << MergeIndexBackendName(merge_index_backend)
     << ", pipeline=" << PipelineExecutorName(pipeline_executor)
     << ", steal=" << (enable_steal ? "on" : "off")
     << ", numa=" << NumaModeName(numa)
     << ", trace=" << (enable_trace ? "on" : "off") << "}";
  return os.str();
}

}  // namespace dcdatalog
