#include "common/chaos.h"

#include <chrono>
#include <sstream>
#include <thread>

namespace dcdatalog {
namespace {

std::atomic<ChaosSchedule*> g_schedule{nullptr};

/// Bumped on every install so a thread never keeps a decision stream from
/// a previous installation, even if a new schedule reuses the old one's
/// address.
std::atomic<uint64_t> g_epoch{0};

}  // namespace

/// Per-thread decision stream. Re-seeded lazily the first time the thread
/// reaches a chaos point under a given installation.
struct ChaosThreadState {
  uint64_t epoch = 0;
  Rng rng{0};
};

namespace {
thread_local ChaosThreadState t_chaos;
}  // namespace

const char* ChaosSiteName(ChaosSite site) {
  switch (site) {
    case ChaosSite::kQueuePush:
      return "queue_push";
    case ChaosSite::kQueuePop:
      return "queue_pop";
    case ChaosSite::kTermination:
      return "termination";
    case ChaosSite::kWorkerStart:
      return "worker_start";
    case ChaosSite::kStrategyLoop:
      return "strategy_loop";
    case ChaosSite::kGather:
      return "gather";
    case ChaosSite::kNumSites:
      break;
  }
  return "unknown";
}

Rng& ChaosSchedule::ThreadRng() {
  const uint64_t epoch = g_epoch.load(std::memory_order_acquire);
  if (t_chaos.epoch != epoch) {
    t_chaos.epoch = epoch;
    const uint32_t ordinal =
        next_ordinal_.fetch_add(1, std::memory_order_relaxed);
    // Golden-ratio spread keeps per-thread streams decorrelated while the
    // (seed, ordinal) → stream mapping stays exactly reproducible.
    t_chaos.rng =
        Rng(config_.seed ^ (0x9e3779b97f4a7c15ULL * (ordinal + 1)));
  }
  return t_chaos.rng;
}

ChaosAction ChaosSchedule::Decide(ChaosSite site) {
  (void)site;  // Sites currently share one stream; kept for biasing/stats.
  Rng& rng = ThreadRng();
  decisions_.fetch_add(1, std::memory_order_relaxed);
  const double draw = rng.NextDouble();
  if (draw < config_.yield_prob) return ChaosAction::kYield;
  if (draw < config_.yield_prob + config_.sleep_prob) {
    return ChaosAction::kSleep;
  }
  return ChaosAction::kNone;
}

void ChaosSchedule::Perturb(ChaosSite site) {
  switch (Decide(site)) {
    case ChaosAction::kNone:
      return;
    case ChaosAction::kYield:
      perturbations_.fetch_add(1, std::memory_order_relaxed);
      std::this_thread::yield();
      return;
    case ChaosAction::kSleep: {
      perturbations_.fetch_add(1, std::memory_order_relaxed);
      const uint32_t us = 1 + static_cast<uint32_t>(ThreadRng().Uniform(
                                  std::max<uint32_t>(config_.max_sleep_us, 1)));
      std::this_thread::sleep_for(std::chrono::microseconds(us));
      return;
    }
    case ChaosAction::kFail:
      return;  // Decide never returns kFail; fail points use DecideFail.
  }
}

bool ChaosSchedule::DecideFail(ChaosSite site) {
  (void)site;
  Rng& rng = ThreadRng();
  decisions_.fetch_add(1, std::memory_order_relaxed);
  if (rng.NextDouble() < config_.fail_prob) {
    forced_failures_.fetch_add(1, std::memory_order_relaxed);
    return true;
  }
  return false;
}

std::string ChaosSchedule::StatsString() const {
  std::ostringstream os;
  os << "ChaosSchedule{seed=" << config_.seed
     << ", decisions=" << decisions()
     << ", perturbations=" << perturbations()
     << ", forced_failures=" << forced_failures() << "}";
  return os.str();
}

void InstallChaosSchedule(ChaosSchedule* schedule) {
  g_epoch.fetch_add(1, std::memory_order_acq_rel);
  g_schedule.store(schedule, std::memory_order_release);
}

ChaosSchedule* CurrentChaosSchedule() {
  return g_schedule.load(std::memory_order_acquire);
}

}  // namespace dcdatalog
