#ifndef DCDATALOG_COMMON_HOT_PATH_H_
#define DCDATALOG_COMMON_HOT_PATH_H_

// Annotation vocabulary for the interprocedural hot-path purity analyzer
// (tools/analyze/dcd_deepcheck.py, docs/INTERNALS.md §9). The analyzer
// proves that no path reachable from a declared hot root performs raw heap
// allocation, takes a lock, throws, invokes a std::function, or dispatches
// through an unannotated virtual call. These markers are how source code
// talks to that proof; they all compile to nothing (DCD_COLD_FN compiles
// to an inlining barrier) and have zero behavioral effect.

// DCD_HOT_ROOT marks a function definition as an entry point of the proven
// hot-path set: everything transitively callable from it must satisfy the
// purity rules. Place it directly before the declaration's return type:
//
//   DCD_HOT_ROOT void Append(TraceEvent ev) { ... }
//
// The analyzer cross-checks annotated functions against its built-in root
// registry (--check-roots): a root may be neither added nor removed on one
// side only, so new hot loops cannot appear unregistered.
#define DCD_HOT_ROOT

// DCD_COLD_CALL(justification) marks the call on the same or the next line
// as a deliberate cold escape from a hot path: the analyzer stops
// traversal through that call site and suppresses purity findings on that
// line. The justification is mandatory (a string literal of at least 15
// characters) and should say *why* the call is not per-tuple work —
// "amortized growth", "once per rule, not per row", "bounded wait per
// Algorithm 2" — mirroring the `dcd-lint: allow(rule): reason` discipline.
// An empty or short justification is itself a deepcheck error.
//
//   DCD_COLD_CALL("once per update rule per batch, not per driven row");
//   const Relation* rel = catalog_->Find(rule.driving_relation);
#define DCD_COLD_CALL(justification)

// DCD_COLD_FN keeps a deliberately-cold callee out-of-line in optimized
// builds. The binary-level backstop (tools/analyze/check_hot_symbols.py)
// disassembles the release binary's hot functions and verifies no direct
// malloc / operator new / pthread_mutex_lock call survives inlining; a
// cold callee that the source analyzer excused via DCD_COLD_CALL must
// therefore stay a distinct symbol, or its allocation would inline
// straight into the hot function's body and fail the binary check.
// DCD_COLD_FN does NOT excuse the source-level analysis — the call site
// still needs its DCD_COLD_CALL justification.
#if defined(__GNUC__) || defined(__clang__)
#define DCD_COLD_FN __attribute__((noinline, cold))
#else
#define DCD_COLD_FN
#endif

#endif  // DCDATALOG_COMMON_HOT_PATH_H_
