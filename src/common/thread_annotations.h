#ifndef DCDATALOG_COMMON_THREAD_ANNOTATIONS_H_
#define DCDATALOG_COMMON_THREAD_ANNOTATIONS_H_

/// Clang thread-safety-analysis (TSA) attribute shims. Under clang these
/// expand to the capability attributes that `-Wthread-safety` checks at
/// compile time; under GCC (and any compiler without the attributes) they
/// expand to nothing, so the annotated tree builds everywhere while the CI
/// clang job enforces the lock discipline with `-Wthread-safety -Werror`.
///
/// The annotations encode the locking rules docs/INTERNALS.md §7 lists:
/// which data a mutex guards (DCD_GUARDED_BY), which functions take or
/// require a lock (DCD_ACQUIRE / DCD_REQUIRES), and which must be called
/// without it (DCD_EXCLUDES). They are declarations of intent checked by
/// the compiler — not runtime machinery; the generated code is identical
/// with or without them.

#if defined(__clang__) && defined(__has_attribute)
#if __has_attribute(guarded_by)
#define DCD_THREAD_ANNOTATION(x) __attribute__((x))
#endif
#endif
#if !defined(DCD_THREAD_ANNOTATION)
#define DCD_THREAD_ANNOTATION(x)
#endif

/// Marks a type as a lockable capability ("mutex" names the capability
/// kind in diagnostics).
#define DCD_CAPABILITY(x) DCD_THREAD_ANNOTATION(capability(x))

/// Marks an RAII type whose constructor acquires and destructor releases a
/// capability (our MutexLock).
#define DCD_SCOPED_CAPABILITY DCD_THREAD_ANNOTATION(scoped_lockable)

/// Data member readable/writable only while holding the given mutex.
#define DCD_GUARDED_BY(x) DCD_THREAD_ANNOTATION(guarded_by(x))

/// Pointer member whose *pointee* is guarded by the given mutex.
#define DCD_PT_GUARDED_BY(x) DCD_THREAD_ANNOTATION(pt_guarded_by(x))

/// Function acquires the capability and holds it on return.
#define DCD_ACQUIRE(...) \
  DCD_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))

/// Function releases the capability; the caller must hold it on entry.
#define DCD_RELEASE(...) \
  DCD_THREAD_ANNOTATION(release_capability(__VA_ARGS__))

/// Function may only be called while already holding the capability.
#define DCD_REQUIRES(...) \
  DCD_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))

/// Function may only be called while NOT holding the capability (it will
/// acquire it itself); catches self-deadlock.
#define DCD_EXCLUDES(...) DCD_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))

/// Function returns a reference to the named capability.
#define DCD_RETURN_CAPABILITY(x) DCD_THREAD_ANNOTATION(lock_returned(x))

/// Escape hatch: disables analysis inside one function. Every use must
/// carry a justification comment (enforced by tools/lint).
#define DCD_NO_THREAD_SAFETY_ANALYSIS \
  DCD_THREAD_ANNOTATION(no_thread_safety_analysis)

/// Runtime assertion that the calling thread holds the capability; teaches
/// the analysis about externally-established locking.
#define DCD_ASSERT_CAPABILITY(x) \
  DCD_THREAD_ANNOTATION(assert_capability(x))

#endif  // DCDATALOG_COMMON_THREAD_ANNOTATIONS_H_
