#ifndef DCDATALOG_COMMON_NUMA_TOPOLOGY_H_
#define DCDATALOG_COMMON_NUMA_TOPOLOGY_H_

#include <cstdint>
#include <string>
#include <vector>

namespace dcdatalog {

/// Machine NUMA topology as the engine sees it: the nodes (sockets) and the
/// logical CPUs on each. Probed once from /sys/devices/system/node; a
/// machine without that hierarchy (or with a single node) degrades to one
/// node holding every CPU, which makes all placement logic a no-op — the
/// graceful single-socket fallback EngineOptions::numa=auto relies on.
///
/// Placement policy (docs/INTERNALS.md §11): workers are assigned to nodes
/// breadth-first (worker w → node w mod nodes), so a 4-worker gang on a
/// 2-socket machine puts two workers on each socket instead of filling
/// socket 0 first. Breadth-first wins for this engine because the n² SPSC
/// rings carry whole 2 KiB MsgBlocks: the bandwidth-bound structures
/// (replica tables, staging blocks, ring slots) are first-touch local to
/// their single owner, and cross-socket traffic is block-granular either
/// way, so spreading workers maximizes the aggregate memory bandwidth the
/// fixpoint can draw.
struct NumaTopology {
  struct Node {
    uint32_t id = 0;                // Kernel node id (node<id> directory).
    std::vector<uint32_t> cpus;    // Logical CPUs on this node, sorted.
  };

  std::vector<Node> nodes;

  bool MultiNode() const { return nodes.size() > 1; }
  uint32_t num_nodes() const { return static_cast<uint32_t>(nodes.size()); }

  /// Breadth-first node index for worker `wid` (wid mod nodes; 0 when the
  /// topology is empty or single-node).
  uint32_t NodeForWorker(uint32_t wid) const {
    return nodes.size() > 1 ? wid % static_cast<uint32_t>(nodes.size()) : 0;
  }

  /// Probes /sys/devices/system/node/node*/cpulist. Any failure (missing
  /// sysfs, unparsable file, non-Linux host) yields the single-node
  /// fallback so callers never branch on probe errors.
  static NumaTopology Probe();

  /// Builds a topology from a spec string, for tests and what-if planning:
  /// "0:0-3;1:4-7" → node 0 with CPUs {0,1,2,3}, node 1 with {4,5,6,7}.
  /// CPU lists use the kernel cpulist syntax (comma-separated ranges).
  /// Returns an empty topology (nodes.empty()) on malformed input.
  static NumaTopology FromString(const std::string& spec);

  /// Parses one kernel cpulist ("0-3,8,10-11") into sorted CPU ids.
  /// Returns false on malformed input.
  static bool ParseCpuList(const std::string& list,
                           std::vector<uint32_t>* out);
};

/// Pins the calling thread to every CPU of `topo.nodes[node_idx]`
/// (pthread_setaffinity_np). Returns false (and changes nothing) when the
/// node index is out of range, the node has no CPUs, or the platform does
/// not support thread affinity. Pinning to the node's whole CPU set — not
/// one core — keeps the OS scheduler free to balance workers within the
/// socket while guaranteeing first-touch allocations land node-local.
bool PinThreadToNode(const NumaTopology& topo, uint32_t node_idx);

}  // namespace dcdatalog

#endif  // DCDATALOG_COMMON_NUMA_TOPOLOGY_H_
