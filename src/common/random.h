#ifndef DCDATALOG_COMMON_RANDOM_H_
#define DCDATALOG_COMMON_RANDOM_H_

#include <cstdint>

namespace dcdatalog {

/// Deterministic 64-bit PRNG (xoshiro256**). Every synthetic dataset in the
/// benchmark suite is generated from an explicit seed so runs are exactly
/// reproducible across machines.
class Rng {
 public:
  explicit Rng(uint64_t seed) {
    // SplitMix64 seeding, as recommended by the xoshiro authors.
    uint64_t x = seed;
    for (auto& word : s_) {
      x += 0x9e3779b97f4a7c15ULL;
      uint64_t z = x;
      z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
      z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
      word = z ^ (z >> 31);
    }
  }

  uint64_t Next() {
    const uint64_t result = Rotl(s_[1] * 5, 7) * 9;
    const uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = Rotl(s_[3], 45);
    return result;
  }

  /// Uniform integer in [0, bound). bound must be > 0.
  uint64_t Uniform(uint64_t bound) { return Next() % bound; }

  /// Uniform integer in [lo, hi] inclusive.
  int64_t UniformRange(int64_t lo, int64_t hi) {
    return lo + static_cast<int64_t>(Uniform(static_cast<uint64_t>(hi - lo + 1)));
  }

  /// Uniform double in [0, 1).
  double NextDouble() {
    return static_cast<double>(Next() >> 11) * (1.0 / 9007199254740992.0);
  }

  /// Bernoulli trial with probability p.
  bool Chance(double p) { return NextDouble() < p; }

 private:
  static uint64_t Rotl(uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  uint64_t s_[4];
};

}  // namespace dcdatalog

#endif  // DCDATALOG_COMMON_RANDOM_H_
