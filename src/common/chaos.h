#ifndef DCDATALOG_COMMON_CHAOS_H_
#define DCDATALOG_COMMON_CHAOS_H_

#include <atomic>
#include <cstdint>
#include <string>

#include "common/random.h"

namespace dcdatalog {

/// Schedule-chaos injection for the differential fuzz harness
/// (tools/dcd_fuzz, docs/INTERNALS.md §6). Injection points sit on the
/// engine's coordination-sensitive paths — ring push/pop, termination
/// rounds, worker start-up, the strategy loops — and, when a ChaosSchedule
/// is installed, turn into seeded yields, short sleeps, and forced
/// queue-full events that perturb thread interleavings without changing
/// any computed result.
///
/// Compile-time gating: points expand to nothing unless DCD_CHAOS_ENABLED
/// is 1. The default follows NDEBUG — debug (and sanitizer) builds carry
/// the hooks, release builds compile them out entirely so the hot paths
/// are byte-identical to a tree without this header. Configure with
/// -DDCDATALOG_CHAOS=ON to force the hooks into an optimized build for
/// fuzzing.
#if !defined(DCD_CHAOS_ENABLED)
#if defined(NDEBUG)
#define DCD_CHAOS_ENABLED 0
#else
#define DCD_CHAOS_ENABLED 1
#endif
#endif

/// Where a chaos point sits. Sites let a schedule bias layers differently
/// (e.g. fail pushes often but only delay termination rounds).
enum class ChaosSite : uint8_t {
  kQueuePush = 0,   // SpscQueue::TryPush (also the forced-full fail point).
  kQueuePop,        // SpscQueue::TryPop / PopBatch.
  kTermination,     // TerminationDetector::CheckTermination round.
  kWorkerStart,     // RunWorkers thread entry (staggers start-up).
  kStrategyLoop,    // Top of a Global/SSP/DWS loop body.
  kGather,          // SccExecutor::GatherAll entry.
  kNumSites,
};

const char* ChaosSiteName(ChaosSite site);

/// What one decision at a chaos point resolved to.
enum class ChaosAction : uint8_t { kNone = 0, kYield, kSleep, kFail };

/// Tuning knobs for one schedule. Probabilities are per decision.
struct ChaosConfig {
  uint64_t seed = 0;
  double yield_prob = 0.05;
  double sleep_prob = 0.01;
  uint32_t max_sleep_us = 20;  // Sleeps draw uniformly from [1, max].
  /// Probability that a TryPush is forced to report a full ring, driving
  /// the producer through its backpressure/drain path.
  double fail_prob = 0.0;

  /// A preset that perturbs aggressively; used by the stress tests.
  static ChaosConfig Aggressive(uint64_t seed) {
    ChaosConfig c;
    c.seed = seed;
    c.yield_prob = 0.20;
    c.sleep_prob = 0.05;
    c.max_sleep_us = 50;
    c.fail_prob = 0.10;
    return c;
  }
};

/// A seeded source of perturbation decisions. Each thread that reaches a
/// chaos point gets its own decision stream: the stream is seeded from
/// (config.seed, thread registration ordinal), so a single thread — or any
/// fixed thread-registration order — replays the exact same decision
/// sequence for the same seed. Decisions are pure PRNG draws; executing
/// them (yield/sleep) happens in Perturb.
class ChaosSchedule {
 public:
  explicit ChaosSchedule(ChaosConfig config) : config_(config) {}

  ChaosSchedule(const ChaosSchedule&) = delete;
  ChaosSchedule& operator=(const ChaosSchedule&) = delete;

  const ChaosConfig& config() const { return config_; }

  /// Draws the next decision for the calling thread at `site`. Does not
  /// execute it. kFail is only drawn at fail points (DecideFail).
  ChaosAction Decide(ChaosSite site);

  /// Draws and executes one decision (yield / bounded sleep).
  void Perturb(ChaosSite site);

  /// Fail-point draw: true forces the caller to simulate failure (a full
  /// ring). Independent stream position from Decide — it is just the next
  /// draw of the thread's stream against fail_prob.
  bool DecideFail(ChaosSite site);

  uint64_t decisions() const {
    return decisions_.load(std::memory_order_relaxed);
  }
  uint64_t perturbations() const {
    return perturbations_.load(std::memory_order_relaxed);
  }
  uint64_t forced_failures() const {
    return forced_failures_.load(std::memory_order_relaxed);
  }

  std::string StatsString() const;

 private:
  friend struct ChaosThreadState;
  Rng& ThreadRng();

  const ChaosConfig config_;
  std::atomic<uint32_t> next_ordinal_{0};
  std::atomic<uint64_t> decisions_{0};
  std::atomic<uint64_t> perturbations_{0};
  std::atomic<uint64_t> forced_failures_{0};
};

/// Installs `schedule` as the process-wide chaos source consulted by every
/// DCD_CHAOS_POINT. Pass nullptr to uninstall. The schedule is borrowed,
/// not owned; it must outlive its installation. Install/uninstall around —
/// never during — an evaluation.
void InstallChaosSchedule(ChaosSchedule* schedule);

/// Currently installed schedule, or nullptr. Acquire load; cheap enough
/// for debug-build hot paths, compiled out entirely in release.
ChaosSchedule* CurrentChaosSchedule();

}  // namespace dcdatalog

#if DCD_CHAOS_ENABLED

/// A perturbation point: possibly yields or sleeps, per the installed
/// schedule. No-op when no schedule is installed.
#define DCD_CHAOS_POINT(site)                                          \
  do {                                                                 \
    ::dcdatalog::ChaosSchedule* _dcd_chaos =                           \
        ::dcdatalog::CurrentChaosSchedule();                           \
    if (_dcd_chaos != nullptr)                                         \
      _dcd_chaos->Perturb(::dcdatalog::ChaosSite::site);               \
  } while (false)

/// A fail point: evaluates to true when the schedule forces the caller to
/// simulate failure (e.g. report a full ring). False when uninstalled.
#define DCD_CHAOS_FAIL(site)                                           \
  [] {                                                                 \
    ::dcdatalog::ChaosSchedule* _dcd_chaos =                           \
        ::dcdatalog::CurrentChaosSchedule();                           \
    return _dcd_chaos != nullptr &&                                    \
           _dcd_chaos->DecideFail(::dcdatalog::ChaosSite::site);       \
  }()

#else

#define DCD_CHAOS_POINT(site) ((void)0)
#define DCD_CHAOS_FAIL(site) false

#endif  // DCD_CHAOS_ENABLED

#endif  // DCDATALOG_COMMON_CHAOS_H_
