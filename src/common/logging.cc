#include "common/logging.h"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>

namespace dcdatalog {
namespace {

LogLevel LevelFromEnv() {
  const char* env = std::getenv("DCD_LOG_LEVEL");
  if (env == nullptr) return LogLevel::kWarning;
  if (std::strcmp(env, "debug") == 0) return LogLevel::kDebug;
  if (std::strcmp(env, "info") == 0) return LogLevel::kInfo;
  if (std::strcmp(env, "warning") == 0) return LogLevel::kWarning;
  if (std::strcmp(env, "error") == 0) return LogLevel::kError;
  return LogLevel::kWarning;
}

std::atomic<int>& LevelVar() {
  static std::atomic<int> level{static_cast<int>(LevelFromEnv())};
  return level;
}

const char* LevelTag(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "D";
    case LogLevel::kInfo:
      return "I";
    case LogLevel::kWarning:
      return "W";
    case LogLevel::kError:
      return "E";
    case LogLevel::kFatal:
      return "F";
  }
  return "?";
}

}  // namespace

LogLevel GetLogLevel() {
  return static_cast<LogLevel>(LevelVar().load(std::memory_order_relaxed));
}

void SetLogLevel(LogLevel level) {
  LevelVar().store(static_cast<int>(level), std::memory_order_relaxed);
}

namespace internal {

LogMessage::LogMessage(LogLevel level, const char* file, int line)
    : level_(level) {
  // Strip directories: log lines reference "file.cc:42".
  const char* base = std::strrchr(file, '/');
  stream_ << "[" << LevelTag(level) << " " << (base ? base + 1 : file) << ":"
          << line << "] ";
}

LogMessage::~LogMessage() {
  stream_ << "\n";
  std::fputs(stream_.str().c_str(), stderr);
  std::fflush(stderr);
  if (level_ == LogLevel::kFatal) std::abort();
}

}  // namespace internal
}  // namespace dcdatalog
