#include "common/logging.h"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "common/mutex.h"
#include "common/thread_annotations.h"

namespace dcdatalog {
namespace {

/// Serializes line emission so concurrent workers' messages never
/// interleave mid-line, and guards the redirectable sink pointer. The
/// level check in DCD_LOG happens before any of this — disabled messages
/// cost one relaxed atomic load and never touch the lock.
Mutex g_sink_mu;
std::FILE* g_sink DCD_GUARDED_BY(g_sink_mu) = nullptr;  // nullptr = stderr.

void EmitLine(const std::string& line) DCD_EXCLUDES(g_sink_mu) {
  MutexLock lock(&g_sink_mu);
  std::FILE* out = g_sink != nullptr ? g_sink : stderr;
  std::fputs(line.c_str(), out);
  std::fflush(out);
}

LogLevel LevelFromEnv() {
  const char* env = std::getenv("DCD_LOG_LEVEL");
  if (env == nullptr) return LogLevel::kWarning;
  if (std::strcmp(env, "debug") == 0) return LogLevel::kDebug;
  if (std::strcmp(env, "info") == 0) return LogLevel::kInfo;
  if (std::strcmp(env, "warning") == 0) return LogLevel::kWarning;
  if (std::strcmp(env, "error") == 0) return LogLevel::kError;
  return LogLevel::kWarning;
}

std::atomic<int>& LevelVar() {
  static std::atomic<int> level{static_cast<int>(LevelFromEnv())};
  return level;
}

const char* LevelTag(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "D";
    case LogLevel::kInfo:
      return "I";
    case LogLevel::kWarning:
      return "W";
    case LogLevel::kError:
      return "E";
    case LogLevel::kFatal:
      return "F";
  }
  return "?";
}

}  // namespace

LogLevel GetLogLevel() {
  return static_cast<LogLevel>(LevelVar().load(std::memory_order_relaxed));
}

void SetLogLevel(LogLevel level) {
  LevelVar().store(static_cast<int>(level), std::memory_order_relaxed);
}

void SetLogStream(std::FILE* stream) {
  MutexLock lock(&g_sink_mu);
  g_sink = stream;
}

namespace internal {

LogMessage::LogMessage(LogLevel level, const char* file, int line)
    : level_(level) {
  // Strip directories: log lines reference "file.cc:42".
  const char* base = std::strrchr(file, '/');
  stream_ << "[" << LevelTag(level) << " " << (base ? base + 1 : file) << ":"
          << line << "] ";
}

LogMessage::~LogMessage() {
  stream_ << "\n";
  // The sink lock is released before the fatal abort so the death message
  // is fully flushed and no lock is held at process exit.
  EmitLine(stream_.str());
  if (level_ == LogLevel::kFatal) std::abort();
}

}  // namespace internal
}  // namespace dcdatalog
