#ifndef DCDATALOG_COMMON_TRACE_H_
#define DCDATALOG_COMMON_TRACE_H_

#include <cstdint>
#include <vector>

#include "common/hot_path.h"

namespace dcdatalog {

/// What one trace event records. Spans (start..end) cover where a worker's
/// time went; instants mark a point decision or hand-off. The vocabulary
/// mirrors the coordination machinery the paper's §4 strategies differ in,
/// so a timeline makes the wait/proceed behaviour of each mode visible.
enum class TraceEventKind : uint8_t {
  kIteration = 0,  // Span: one local semi-naive iteration.
  kPark,           // Span: parked at local fixpoint (InactiveWait).
  kBarrierWait,    // Span: blocked at the Global barrier.
  kSspWait,        // Span: blocked on the SSP slack bound.
  kDwsWait,        // Span: DWS bounded wait (Algorithm 2 lines 5-8).
  kDrain,          // Instant: one GatherAll that consumed ring tuples.
  kBlockPush,      // Instant: one MsgBlock pushed to a remote ring.
  kSccBegin,       // Instant: worker entered an SCC's evaluation.
  kSccEnd,         // Instant: worker left an SCC's evaluation.
  kDwsDecision,    // Instant: DwsController::Update recomputed omega/tau.
  kAdmission,      // Instant: the serving front end admitted (proceed=true)
                   // or queued (proceed=false) a session, carrying the same
                   // rho/lambda/mu queueing-model state the DWS decisions
                   // report — one vocabulary for both decision layers.
  kMorselPublish,  // Instant: a loaded worker published steal morsels from
                   // its driving-set tail (tuples = driving tuples offered).
  kSteal,          // Instant: an idle worker claimed and executed a stolen
                   // morsel (tuples = driving tuples executed; scc field
                   // still the SCC; `omega` carries the victim worker id).
};

const char* TraceEventKindName(TraceEventKind kind);

/// Spans have a meaningful duration; instants carry start_ns == end_ns.
bool TraceEventIsSpan(TraceEventKind kind);

/// One traced execution event (EngineOptions::enable_trace). Times are raw
/// monotonic nanoseconds; normalize against the run's minimum.
struct TraceEvent {
  using Kind = TraceEventKind;

  TraceEventKind kind = TraceEventKind::kIteration;
  /// kDwsDecision only: true when the controller's omega/tau said iterate
  /// now, false when the small-delta wait path was taken.
  bool proceed = false;
  uint32_t worker = 0;
  uint32_t scc = 0;
  int64_t start_ns = 0;
  int64_t end_ns = 0;
  uint64_t tuples = 0;  // Delta/drained/pushed tuples, by kind.

  // kDwsDecision args: the queueing-model state behind the decision
  // (paper §4.2 — Equation (1) inputs and Kingman's outputs).
  double omega = 0.0;
  double rho = 0.0;
  double lambda = 0.0;
  double mu = 0.0;
  int64_t tau_ns = 0;
};

/// Fixed-capacity per-worker event ring: overwrite-oldest, zero allocation
/// after construction, no synchronization on the write path. Safe without
/// atomics because each ring has exactly one writer (its worker thread) and
/// is only read after that thread joined — the same single-owner discipline
/// the engine's replicas and distributors already follow. A ring built with
/// capacity 0 is disabled: Append is a two-instruction no-op, nothing is
/// allocated, and Snapshot yields nothing, so a trace-off run pays only one
/// predictable branch per would-be event.
class TraceRing {
 public:
  TraceRing() = default;  // Disabled.

  /// `capacity` is rounded up to a power of two; 0 disables the ring.
  explicit TraceRing(uint32_t capacity);

  bool enabled() const { return mask_ != 0; }

  DCD_HOT_ROOT void Append(const TraceEvent& ev) {
    if (mask_ == 0) return;
    slots_[head_ & mask_] = ev;
    ++head_;
  }

  /// Total events offered, including overwritten ones.
  uint64_t appended() const { return head_; }

  /// Events lost to overwrite-oldest.
  uint64_t dropped() const {
    return head_ > slots_.size() ? head_ - slots_.size() : 0;
  }

  /// Appends the surviving events, oldest first, to `*out`. Call only after
  /// the writing thread is done (the engine calls it after the join).
  void Snapshot(std::vector<TraceEvent>* out) const;

 private:
  std::vector<TraceEvent> slots_;
  uint64_t mask_ = 0;
  uint64_t head_ = 0;
};

}  // namespace dcdatalog

#endif  // DCDATALOG_COMMON_TRACE_H_
