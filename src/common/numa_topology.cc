#include "common/numa_topology.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>

#ifdef __linux__
#include <dirent.h>
#include <pthread.h>
#include <sched.h>
#endif

namespace dcdatalog {

namespace {

// Reads a small sysfs file into `out`. Returns false on any I/O error.
bool ReadSmallFile(const std::string& path, std::string* out) {
  std::FILE* f = std::fopen(path.c_str(), "re");
  if (f == nullptr) return false;
  char buf[4096];
  size_t n = std::fread(buf, 1, sizeof(buf) - 1, f);
  std::fclose(f);
  buf[n] = '\0';
  out->assign(buf, n);
  while (!out->empty() && (out->back() == '\n' || out->back() == '\r')) {
    out->pop_back();
  }
  return true;
}

NumaTopology SingleNodeFallback() {
  NumaTopology topo;
  topo.nodes.push_back(NumaTopology::Node{0, {}});
  return topo;
}

}  // namespace

bool NumaTopology::ParseCpuList(const std::string& list,
                                std::vector<uint32_t>* out) {
  out->clear();
  const char* p = list.c_str();
  while (*p != '\0') {
    char* end = nullptr;
    unsigned long lo = std::strtoul(p, &end, 10);
    if (end == p) return false;
    unsigned long hi = lo;
    p = end;
    if (*p == '-') {
      ++p;
      hi = std::strtoul(p, &end, 10);
      if (end == p || hi < lo) return false;
      p = end;
    }
    if (hi - lo > 4096) return false;  // Reject absurd ranges (corrupt input).
    for (unsigned long c = lo; c <= hi; ++c) {
      out->push_back(static_cast<uint32_t>(c));
    }
    if (*p == ',') {
      ++p;
      if (*p == '\0') return false;
    } else if (*p != '\0') {
      return false;
    }
  }
  std::sort(out->begin(), out->end());
  out->erase(std::unique(out->begin(), out->end()), out->end());
  return !out->empty();
}

NumaTopology NumaTopology::FromString(const std::string& spec) {
  NumaTopology topo;
  size_t pos = 0;
  while (pos < spec.size()) {
    size_t semi = spec.find(';', pos);
    std::string part = spec.substr(
        pos, semi == std::string::npos ? std::string::npos : semi - pos);
    pos = semi == std::string::npos ? spec.size() : semi + 1;
    size_t colon = part.find(':');
    if (colon == std::string::npos) return NumaTopology{};
    char* end = nullptr;
    const std::string id_str = part.substr(0, colon);
    unsigned long id = std::strtoul(id_str.c_str(), &end, 10);
    if (end == id_str.c_str() || *end != '\0') return NumaTopology{};
    Node node;
    node.id = static_cast<uint32_t>(id);
    if (!ParseCpuList(part.substr(colon + 1), &node.cpus)) {
      return NumaTopology{};
    }
    topo.nodes.push_back(std::move(node));
  }
  std::sort(topo.nodes.begin(), topo.nodes.end(),
            [](const Node& a, const Node& b) { return a.id < b.id; });
  return topo;
}

NumaTopology NumaTopology::Probe() {
#ifdef __linux__
  DIR* dir = opendir("/sys/devices/system/node");
  if (dir == nullptr) return SingleNodeFallback();
  NumaTopology topo;
  struct dirent* ent;
  while ((ent = readdir(dir)) != nullptr) {
    unsigned long id = 0;
    if (std::sscanf(ent->d_name, "node%lu", &id) != 1) continue;
    // Guard against directories like "node0foo": require exact match.
    char expect[32];
    std::snprintf(expect, sizeof(expect), "node%lu", id);
    if (std::strcmp(expect, ent->d_name) != 0) continue;
    std::string cpulist;
    std::string path = "/sys/devices/system/node/";
    path += ent->d_name;
    path += "/cpulist";
    Node node;
    node.id = static_cast<uint32_t>(id);
    if (!ReadSmallFile(path, &cpulist) ||
        !ParseCpuList(cpulist, &node.cpus)) {
      continue;  // Memory-only nodes have an empty cpulist; skip them.
    }
    topo.nodes.push_back(std::move(node));
  }
  closedir(dir);
  if (topo.nodes.empty()) return SingleNodeFallback();
  std::sort(topo.nodes.begin(), topo.nodes.end(),
            [](const Node& a, const Node& b) { return a.id < b.id; });
  return topo;
#else
  return SingleNodeFallback();
#endif
}

bool PinThreadToNode(const NumaTopology& topo, uint32_t node_idx) {
#ifdef __linux__
  if (node_idx >= topo.nodes.size()) return false;
  const NumaTopology::Node& node = topo.nodes[node_idx];
  if (node.cpus.empty()) return false;
  cpu_set_t set;
  CPU_ZERO(&set);
  for (uint32_t cpu : node.cpus) {
    if (cpu < CPU_SETSIZE) CPU_SET(cpu, &set);
  }
  return pthread_setaffinity_np(pthread_self(), sizeof(set), &set) == 0;
#else
  (void)topo;
  (void)node_idx;
  return false;
#endif
}

}  // namespace dcdatalog
