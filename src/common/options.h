#ifndef DCDATALOG_COMMON_OPTIONS_H_
#define DCDATALOG_COMMON_OPTIONS_H_

#include <cstdint>
#include <string>

namespace dcdatalog {

class WorkerPool;

/// Which parallel coordination strategy the evaluation loop runs (paper §4).
enum class CoordinationMode : uint8_t {
  kGlobal = 0,  // Algorithm 1: barrier after every global iteration.
  kSsp = 1,     // Stale-synchronous: fast workers may run `ssp_slack` ahead.
  kDws = 2,     // Algorithm 2: dynamic weight-based strategy (the paper's).
};

const char* CoordinationModeName(CoordinationMode mode);

/// Which index family backs the RecursiveTable merge paths (§6.2.1).
enum class MergeIndexBackend : uint8_t {
  kFlat = 0,   // Open-addressed flat structures (storage/flat_{set,map}.h)
               // with the prefetch-pipelined batch merge — the hot path.
  kBtree = 1,  // The original B+-tree indexes; kept as the Table 4 ablation
               // baseline and as the differential-fuzzing cross-check.
};

const char* MergeIndexBackendName(MergeIndexBackend backend);

/// Which rule-pipeline executor the workers run (§5.2).
enum class PipelineExecutor : uint8_t {
  kBatch = 0,  // Vectorized batch-at-a-time: columnar register banks,
               // selection vectors, prefetch-pipelined probes — the hot
               // path (runtime/batch_pipeline.h).
  kTuple = 1,  // The original depth-first tuple-at-a-time executor; kept as
               // the ablation baseline and differential-fuzzing cross-check.
};

const char* PipelineExecutorName(PipelineExecutor executor);

/// NUMA placement policy for engine-owned worker threads.
enum class NumaMode : uint8_t {
  kAuto = 0,  // Probe /sys/devices/system/node; on multi-socket machines pin
              // workers breadth-first across nodes so first-touch replica /
              // ring / staging allocations land socket-local. Single-socket
              // machines (and pool-scheduled gangs) degrade to kOff.
  kOff = 1,   // Never pin; leave placement to the OS scheduler (ablation
              // baseline).
};

const char* NumaModeName(NumaMode mode);

/// Engine-wide tuning knobs. Defaults reproduce the configuration the paper
/// evaluates (DWS with all §6 optimizations on).
struct EngineOptions {
  /// Worker (thread) count; 0 means std::thread::hardware_concurrency().
  uint32_t num_workers = 0;

  CoordinationMode coordination = CoordinationMode::kDws;

  /// SSP slack s: a worker may be at most this many local iterations ahead
  /// of the slowest worker (paper §4.1; the evaluation uses s = 5).
  uint32_t ssp_slack = 5;

  /// DWS deadlock-avoidance timeout (Algorithm 2 line 8): a waiting worker
  /// resumes unconditionally after this many microseconds.
  uint32_t dws_timeout_us = 2000;

  /// Upper bound DWS places on a single wait slice, microseconds.
  uint32_t dws_max_wait_slice_us = 200;

  /// Per-(producer, consumer) SPSC ring capacity in tuples (§6.1).
  uint32_t spsc_capacity = 1 << 14;

  /// §6.2.1: merge aggregates through the recursive-table index instead of
  /// a linear re-scan.
  bool enable_aggregate_index = true;

  /// §6.2.2: constant-time existence/aggregate cache consulted before the
  /// B+-tree index.
  bool enable_existence_cache = true;

  /// §5.2.3 / Figure 7: fold min/max derivations per group inside
  /// Distribute before routing, so only each iteration's per-group best
  /// crosses worker boundaries.
  bool enable_partial_aggregation = true;

  /// §6.2.1 merge-path index family. Flat open addressing is the default
  /// hot path; the B+-tree backend survives as the ablation baseline
  /// (`--merge-index-backend=btree` reproduces the pre-flat numbers).
  MergeIndexBackend merge_index_backend = MergeIndexBackend::kFlat;

  /// §5.2 rule-pipeline executor. Batch-at-a-time is the default hot path;
  /// the tuple-at-a-time executor survives as the ablation baseline
  /// (`--pipeline-executor=tuple` reproduces the pre-batch numbers).
  PipelineExecutor pipeline_executor = PipelineExecutor::kBatch;

  /// Existence-cache slots per worker (direct-mapped).
  uint32_t existence_cache_slots = 1 << 15;

  /// Skew-adaptive morsel stealing: a worker whose driving-tuple backlog for
  /// an iteration exceeds the adaptive threshold publishes the tail of its
  /// driving set as fixed-size morsels; idle workers claim them with one CAS
  /// and execute them read-only against the owner's replica, emitting
  /// derived tuples through their own Distributor so merge ownership never
  /// moves (docs/INTERNALS.md §11). Off is the ablation baseline
  /// (`--steal=off` reproduces the strictly owner-computes numbers).
  bool enable_steal = true;

  /// Morsel granularity: driving tuples per published morsel.
  uint32_t steal_morsel_tuples = 1024;

  /// Minimum per-replica driving backlog (tuples) before a worker publishes
  /// morsels. 0 = adaptive: derived from the live DWS ω estimate so uniform
  /// workloads, where every worker has comparable backlog, publish nothing.
  uint64_t steal_min_backlog = 0;

  /// NUMA placement policy. Only affects engine-spawned dedicated threads;
  /// pool-scheduled gangs are never re-pinned.
  NumaMode numa = NumaMode::kAuto;

  /// Safety valve for non-terminating programs; 0 = unlimited.
  uint64_t max_global_iterations = 0;

  /// Convergence threshold for sum-aggregates in recursion (PageRank):
  /// a contribution that changes a group's sum by <= epsilon does not
  /// re-enter the delta.
  double sum_epsilon = 1e-9;

  /// Record per-worker execution trace events (iteration/wait spans, drain
  /// and block-push instants, DWS decision telemetry) into per-worker trace
  /// rings, surfaced as EvalStats::trace and exportable as Chrome
  /// trace-event JSON (core/trace_export.h). Off: the rings are not even
  /// allocated and each would-be event costs one predictable branch.
  bool enable_trace = false;

  /// Per-worker trace ring capacity in events, rounded up to a power of
  /// two. The ring overwrites oldest on overflow (EvalStats::trace_dropped
  /// counts the loss), so a long run keeps its most recent window instead
  /// of growing without bound.
  uint32_t trace_ring_capacity = 1 << 14;

  /// Shared resident thread pool to schedule evaluation gangs on (not
  /// owned; nullptr = spawn dedicated threads per run, the one-shot
  /// `dcd run` behavior). The serving path points every session's engine
  /// at one pool so concurrent queries share the machine's cores instead
  /// of oversubscribing them. The engine's worker-count contract is
  /// unchanged — all num_workers gang members run concurrently either way.
  WorkerPool* worker_pool = nullptr;

  /// Validated copy with num_workers resolved to a concrete count.
  EngineOptions Resolved() const;

  std::string ToString() const;
};

}  // namespace dcdatalog

#endif  // DCDATALOG_COMMON_OPTIONS_H_
