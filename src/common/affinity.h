#ifndef DCDATALOG_COMMON_AFFINITY_H_
#define DCDATALOG_COMMON_AFFINITY_H_

/// Debug-mode thread-ownership checker for the engine's single-writer
/// disciplines (docs/INTERNALS.md §7). The barrier-free coordination scheme
/// rests on role invariants that no lock enforces: each SPSC ring has
/// exactly one producer and one consumer, each RecursiveTable partition has
/// exactly one writing worker, each Distributor (and its staging blocks)
/// belongs to one worker. TSan finds violations only when a conflicting
/// schedule actually runs; a ThreadAffinity guard instead stamps the owner
/// thread id on first use of a role and aborts *deterministically* on any
/// access from another thread, printing both thread ids and the violated
/// role.
///
/// Compile-time gating mirrors src/common/chaos.h: guards follow !NDEBUG,
/// so debug and sanitizer builds always carry them while release builds
/// compile them out entirely — the macros expand to nothing, affinity.cc
/// compiles to an empty TU, and no affinity symbol reaches release objects
/// (CI verifies this with tools/lint/check_release_symbols.sh). Configure
/// with -DDCDATALOG_AFFINITY=ON to force the guards into an optimized
/// build.
#if !defined(DCD_AFFINITY_ENABLED)
#if defined(NDEBUG)
#define DCD_AFFINITY_ENABLED 0
#else
#define DCD_AFFINITY_ENABLED 1
#endif
#endif

#if DCD_AFFINITY_ENABLED

#include <atomic>
#include <cstdint>

namespace dcdatalog {

/// Small dense id for the calling thread (1, 2, 3, … in registration
/// order) — far more readable in an abort message than std::thread::id.
uint64_t AffinitySelfThreadId();

/// True while the calling thread is inside an AffinityMorselScope — i.e. it
/// is executing a stolen morsel against another worker's replica and holds
/// the read-only kMorselExecutor role (docs/INTERNALS.md §11). Writer-role
/// guards (DCD_AFFINITY_GUARD_WRITE) abort when this is set, regardless of
/// slot ownership: a thief must never mutate the victim's tables.
bool AffinityThreadIsMorselExecutor();

/// RAII kMorselExecutor tag. Entered by a thief for exactly the duration of
/// one stolen morsel's execution; nests (a morsel never spawns a morsel, but
/// the counter keeps the invariant local).
class AffinityMorselScope {
 public:
  AffinityMorselScope();
  ~AffinityMorselScope();
  AffinityMorselScope(const AffinityMorselScope&) = delete;
  AffinityMorselScope& operator=(const AffinityMorselScope&) = delete;
};

/// One ownership slot: unowned until the first guarded access, then bound
/// to that thread until Rebind(). Guarded accesses from any other thread
/// abort. The slot itself is safe to poll from any thread — ownership is a
/// single atomic — so a guard never introduces a data race of its own (it
/// must stay TSan-clean while watching for logic races).
class ThreadAffinity {
 public:
  explicit ThreadAffinity(const char* role) : role_(role) {}

  ThreadAffinity(const ThreadAffinity&) = delete;
  ThreadAffinity& operator=(const ThreadAffinity&) = delete;

  /// Asserts the calling thread owns this role, claiming it if unowned.
  void Check(const char* file, int line) {
    const uint64_t self = AffinitySelfThreadId();
    uint64_t owner = owner_.load(std::memory_order_acquire);
    if (owner == self) return;
    if (owner == 0 &&
        owner_.compare_exchange_strong(owner, self,
                                       std::memory_order_acq_rel,
                                       std::memory_order_acquire)) {
      return;
    }
    // `owner` now holds the other thread's id — either it owned the role
    // already, or it won the claiming race, which is itself a concurrent
    // first access and therefore a violation.
    Die(owner, self, file, line);
  }

  /// Check() plus the kMorselExecutor restriction: a thread tagged as a
  /// morsel executor may never reach a writer role, even one it owns — the
  /// thief reads the victim's replica and writes only through its own
  /// Distributor, which carries plain Check() guards.
  void CheckWrite(const char* file, int line) {
    if (AffinityThreadIsMorselExecutor()) DieMorsel(file, line);
    Check(file, line);
  }

  /// Releases ownership at a legitimate hand-off point (e.g. a test reusing
  /// one queue across sequential producer threads). The caller is
  /// responsible for the hand-off happening-after all owner accesses.
  void Rebind() { owner_.store(0, std::memory_order_release); }

 private:
  [[noreturn]] void Die(uint64_t owner, uint64_t self, const char* file,
                        int line) const;
  [[noreturn]] void DieMorsel(const char* file, int line) const;

  std::atomic<uint64_t> owner_{0};
  const char* const role_;
};

}  // namespace dcdatalog

/// Declares an ownership slot as a class member (or local/global):
///   DCD_AFFINITY_OWNER(producer_affinity_, "spsc-producer");
#define DCD_AFFINITY_OWNER(name, role) ::dcdatalog::ThreadAffinity name{role}

/// Asserts the calling thread owns the slot, claiming it on first use.
#define DCD_AFFINITY_GUARD(name) (name).Check(__FILE__, __LINE__)

/// Writer-role variant: additionally aborts if the calling thread is tagged
/// kMorselExecutor (read-only). Use on every mutation path of structures a
/// stolen morsel may probe.
#define DCD_AFFINITY_GUARD_WRITE(name) (name).CheckWrite(__FILE__, __LINE__)

/// Releases the slot for a deliberate ownership hand-off.
#define DCD_AFFINITY_REBIND(name) (name).Rebind()

/// Tags the current scope's thread as a read-only morsel executor.
#define DCD_AFFINITY_MORSEL_SCOPE() \
  ::dcdatalog::AffinityMorselScope dcd_affinity_morsel_scope_

#else  // !DCD_AFFINITY_ENABLED

#define DCD_AFFINITY_OWNER(name, role) \
  static_assert(true, "affinity disabled")
#define DCD_AFFINITY_GUARD(name) ((void)0)
#define DCD_AFFINITY_GUARD_WRITE(name) ((void)0)
#define DCD_AFFINITY_REBIND(name) ((void)0)
#define DCD_AFFINITY_MORSEL_SCOPE() ((void)0)

#endif  // DCD_AFFINITY_ENABLED

#endif  // DCDATALOG_COMMON_AFFINITY_H_
