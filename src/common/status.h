#ifndef DCDATALOG_COMMON_STATUS_H_
#define DCDATALOG_COMMON_STATUS_H_

#include <cassert>
#include <optional>
#include <string>
#include <utility>

namespace dcdatalog {

/// Error categories used across the engine. Kept deliberately small; the
/// message carries the detail.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kAlreadyExists,
  kOutOfRange,
  kUnsupported,
  kParseError,
  kPlanError,
  kRuntimeError,
  kResourceExhausted,
  kInternal,
};

/// Returns a human-readable name for `code` ("OK", "ParseError", ...).
const char* StatusCodeName(StatusCode code);

/// Status is the error-reporting vocabulary of DCDatalog: the engine is
/// built without exceptions, so every fallible operation returns a Status
/// (or a Result<T>, below). An OK status carries no allocation.
class Status {
 public:
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status Unsupported(std::string msg) {
    return Status(StatusCode::kUnsupported, std::move(msg));
  }
  static Status ParseError(std::string msg) {
    return Status(StatusCode::kParseError, std::move(msg));
  }
  static Status PlanError(std::string msg) {
    return Status(StatusCode::kPlanError, std::move(msg));
  }
  static Status RuntimeError(std::string msg) {
    return Status(StatusCode::kRuntimeError, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// "OK" or "<CodeName>: <message>".
  std::string ToString() const;

 private:
  StatusCode code_;
  std::string message_;
};

/// Result<T> couples a Status with a value; exactly one is meaningful.
/// Use `ok()` before `value()`. Move-friendly so large payloads (relations,
/// plans) travel without copies.
template <typename T>
class Result {
 public:
  Result(T value) : value_(std::move(value)) {}            // NOLINT(runtime/explicit)
  Result(Status status) : status_(std::move(status)) {     // NOLINT(runtime/explicit)
    assert(!status_.ok() && "Result from OK status must carry a value");
  }

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  const T& value() const& {
    assert(ok());
    return *value_;
  }
  T& value() & {
    assert(ok());
    return *value_;
  }
  T&& value() && {
    assert(ok());
    return std::move(*value_);
  }

 private:
  Status status_;
  std::optional<T> value_;
};

}  // namespace dcdatalog

/// Propagates a non-OK Status from an expression, mirroring absl's macro.
#define DCD_RETURN_IF_ERROR(expr)                 \
  do {                                            \
    ::dcdatalog::Status _dcd_status = (expr);     \
    if (!_dcd_status.ok()) return _dcd_status;    \
  } while (false)

/// Evaluates a Result<T> expression, propagating the error or binding the
/// value into `lhs`.
#define DCD_ASSIGN_OR_RETURN(lhs, expr)           \
  DCD_ASSIGN_OR_RETURN_IMPL(                      \
      DCD_STATUS_CONCAT(_dcd_result, __LINE__), lhs, expr)

#define DCD_ASSIGN_OR_RETURN_IMPL(tmp, lhs, expr) \
  auto tmp = (expr);                              \
  if (!tmp.ok()) return tmp.status();             \
  lhs = std::move(tmp).value();

#define DCD_STATUS_CONCAT(a, b) DCD_STATUS_CONCAT_IMPL(a, b)
#define DCD_STATUS_CONCAT_IMPL(a, b) a##b

#endif  // DCDATALOG_COMMON_STATUS_H_
