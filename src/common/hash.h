#ifndef DCDATALOG_COMMON_HASH_H_
#define DCDATALOG_COMMON_HASH_H_

#include <cstdint>
#include <cstddef>

namespace dcdatalog {

/// Finalizer from SplitMix64 / MurmurHash3's fmix64. Full-avalanche, cheap,
/// and good enough that the partition function H(key) spreads skewed graph
/// ids evenly across workers.
inline uint64_t HashMix64(uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

/// Combines two hashes (boost::hash_combine shape, 64-bit constants).
inline uint64_t HashCombine(uint64_t seed, uint64_t value) {
  return seed ^ (HashMix64(value) + 0x9e3779b97f4a7c15ULL + (seed << 12) +
                 (seed >> 4));
}

/// Hashes a span of 64-bit words (a tuple or a composite key).
inline uint64_t HashWords(const uint64_t* data, size_t n) {
  uint64_t h = 0x8445d61a4e774912ULL ^ (n * 0x9e3779b97f4a7c15ULL);
  for (size_t i = 0; i < n; ++i) h = HashCombine(h, data[i]);
  return h;
}

/// The partition discriminating function H from the paper (Algorithm 1):
/// maps a join-key hash onto one of `num_partitions` workers.
inline uint32_t PartitionOf(uint64_t key, uint32_t num_partitions) {
  return static_cast<uint32_t>(HashMix64(key) % num_partitions);
}

}  // namespace dcdatalog

#endif  // DCDATALOG_COMMON_HASH_H_
