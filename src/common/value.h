#ifndef DCDATALOG_COMMON_VALUE_H_
#define DCDATALOG_COMMON_VALUE_H_

#include <bit>
#include <cstdint>
#include <string>

#include "common/hash.h"

namespace dcdatalog {

/// Column types used by relation schemas. Tuples store each column as a raw
/// 64-bit word; the schema says how to interpret it. Strings are interned in
/// a StringDict and stored as their dictionary ids, so the hot evaluation
/// path never touches heap strings.
enum class ColumnType : uint8_t {
  kInt = 0,     // int64_t
  kDouble = 1,  // IEEE double, bit-cast into the word
  kString = 2,  // StringDict id
};

const char* ColumnTypeName(ColumnType type);

/// Bit-level conversions between the raw tuple word and typed views.
inline uint64_t WordFromInt(int64_t v) { return static_cast<uint64_t>(v); }
inline int64_t IntFromWord(uint64_t w) { return static_cast<int64_t>(w); }
inline uint64_t WordFromDouble(double v) { return std::bit_cast<uint64_t>(v); }
inline double DoubleFromWord(uint64_t w) { return std::bit_cast<double>(w); }

/// A tagged scalar used by the front end (constants in rules, expression
/// evaluation results). 16 bytes; trivially copyable.
struct Value {
  ColumnType type = ColumnType::kInt;
  uint64_t word = 0;

  static Value Int(int64_t v) { return {ColumnType::kInt, WordFromInt(v)}; }
  static Value Double(double v) {
    return {ColumnType::kDouble, WordFromDouble(v)};
  }
  static Value String(uint64_t dict_id) {
    return {ColumnType::kString, dict_id};
  }

  int64_t AsInt() const { return IntFromWord(word); }
  double AsDouble() const {
    return type == ColumnType::kDouble ? DoubleFromWord(word)
                                       : static_cast<double>(AsInt());
  }

  bool IsNumeric() const { return type != ColumnType::kString; }

  friend bool operator==(const Value& a, const Value& b) {
    if (a.type == b.type) return a.word == b.word;
    // Numeric cross-type comparison (int vs double) compares by value.
    if (a.IsNumeric() && b.IsNumeric()) return a.AsDouble() == b.AsDouble();
    return false;
  }

  /// Orders numerics by value and strings by dictionary id. Comparing a
  /// string against a numeric is a caller bug guarded in the evaluator.
  friend bool operator<(const Value& a, const Value& b) {
    if (a.IsNumeric() && b.IsNumeric()) {
      if (a.type == ColumnType::kInt && b.type == ColumnType::kInt) {
        return a.AsInt() < b.AsInt();
      }
      return a.AsDouble() < b.AsDouble();
    }
    return a.word < b.word;
  }
  friend bool operator!=(const Value& a, const Value& b) { return !(a == b); }
  friend bool operator<=(const Value& a, const Value& b) { return !(b < a); }
  friend bool operator>(const Value& a, const Value& b) { return b < a; }
  friend bool operator>=(const Value& a, const Value& b) { return !(a < b); }
};

inline uint64_t HashValue(const Value& v) {
  return HashCombine(static_cast<uint64_t>(v.type), v.word);
}

}  // namespace dcdatalog

#endif  // DCDATALOG_COMMON_VALUE_H_
