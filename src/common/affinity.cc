#include "common/affinity.h"

// The whole TU is gated so release objects contain no affinity symbols at
// all (mirroring how chaos points vanish from release hot paths).
#if DCD_AFFINITY_ENABLED

#include <cstdio>
#include <cstdlib>

namespace dcdatalog {

uint64_t AffinitySelfThreadId() {
  static std::atomic<uint64_t> next_id{0};
  thread_local const uint64_t id =
      next_id.fetch_add(1, std::memory_order_relaxed) + 1;
  return id;
}

namespace {
// Depth counter rather than a bool so nested scopes compose; thread-local,
// so no atomicity is needed.
thread_local int t_morsel_depth = 0;
}  // namespace

bool AffinityThreadIsMorselExecutor() { return t_morsel_depth > 0; }

AffinityMorselScope::AffinityMorselScope() { ++t_morsel_depth; }
AffinityMorselScope::~AffinityMorselScope() { --t_morsel_depth; }

void ThreadAffinity::Die(uint64_t owner, uint64_t self, const char* file,
                         int line) const {
  // Raw fprintf, not DCD_LOG: the process is about to abort and the log
  // sink lock may be held by the very thread we are reporting on.
  std::fprintf(stderr,
               "[affinity] %s:%d: thread-affinity violation: role '%s' is "
               "owned by thread %llu but was accessed by thread %llu\n",
               file, line, role_,
               static_cast<unsigned long long>(owner),
               static_cast<unsigned long long>(self));
  std::fflush(stderr);
  std::abort();
}

void ThreadAffinity::DieMorsel(const char* file, int line) const {
  std::fprintf(stderr,
               "[affinity] %s:%d: thread-affinity violation: thread %llu is "
               "tagged kMorselExecutor (read-only) but reached writer role "
               "'%s'\n",
               file, line,
               static_cast<unsigned long long>(AffinitySelfThreadId()),
               role_);
  std::fflush(stderr);
  std::abort();
}

}  // namespace dcdatalog

#endif  // DCD_AFFINITY_ENABLED
