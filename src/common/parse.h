#ifndef DCDATALOG_COMMON_PARSE_H_
#define DCDATALOG_COMMON_PARSE_H_

#include <cerrno>
#include <cstdint>
#include <cstdlib>

namespace dcdatalog {

/// Checked integer parsing for command-line surfaces. std::atoi silently
/// turns garbage into 0 and accepts negatives/trailing junk — for flags
/// like --workers that then picks a nonsensical configuration without a
/// word. These helpers demand full consumption of the input, reject empty
/// strings, and range-check, so callers can fail loudly instead.

/// Parses a base-10 signed integer, requiring the whole string to be
/// consumed and `min <= value <= max`. Returns false (leaving *out
/// untouched) on any violation, including overflow. strtoll itself skips
/// leading whitespace and accepts an explicit '+' sign; both violate the
/// full-consumption contract (" 5" and "+5" are not the canonical spelling
/// a flag value round-trips through), so they are rejected up front.
inline bool ParseInt64Checked(const char* s, int64_t min, int64_t max,
                              int64_t* out) {
  if (s == nullptr || *s == '\0') return false;
  if (!(*s == '-' || (*s >= '0' && *s <= '9'))) return false;
  errno = 0;
  char* end = nullptr;
  const long long v = std::strtoll(s, &end, 10);
  if (errno == ERANGE || end == s || *end != '\0') return false;
  if (v < min || v > max) return false;
  *out = v;
  return true;
}

/// Unsigned variant. The first character must be a digit: this rejects
/// leading whitespace and '+' (which strtoull skips) and '-' (which
/// strtoull would happily wrap to a huge positive value).
inline bool ParseUint64Checked(const char* s, uint64_t min, uint64_t max,
                               uint64_t* out) {
  if (s == nullptr || !(*s >= '0' && *s <= '9')) return false;
  errno = 0;
  char* end = nullptr;
  const unsigned long long v = std::strtoull(s, &end, 10);
  if (errno == ERANGE || end == s || *end != '\0') return false;
  if (v < min || v > max) return false;
  *out = v;
  return true;
}

inline bool ParseUint32Checked(const char* s, uint32_t min, uint32_t max,
                               uint32_t* out) {
  uint64_t v = 0;
  if (!ParseUint64Checked(s, min, max, &v)) return false;
  *out = static_cast<uint32_t>(v);
  return true;
}

}  // namespace dcdatalog

#endif  // DCDATALOG_COMMON_PARSE_H_
