#ifndef DCDATALOG_COMMON_WELFORD_H_
#define DCDATALOG_COMMON_WELFORD_H_

#include <cstdint>

namespace dcdatalog {

/// Welford's online mean/variance accumulator. DWS (paper §4.2) maintains
/// one of these per message buffer for inter-arrival times and one per
/// worker for service times; Equation (1) and Kingman's formula consume the
/// mean and variance.
class Welford {
 public:
  void Add(double x) {
    ++count_;
    const double delta = x - mean_;
    mean_ += delta / static_cast<double>(count_);
    m2_ += delta * (x - mean_);
  }

  void Reset() {
    count_ = 0;
    mean_ = 0.0;
    m2_ = 0.0;
  }

  uint64_t count() const { return count_; }
  double mean() const { return mean_; }

  /// Population variance; 0 with fewer than two samples.
  double variance() const {
    return count_ < 2 ? 0.0 : m2_ / static_cast<double>(count_);
  }

  /// Exponential decay toward fresh behaviour: halves the effective sample
  /// count so older iterations stop dominating the estimates. Mean and
  /// variance are preserved. Rounds up so a non-empty accumulator never
  /// decays to empty — integer halving would turn a count of 1 into 0, and
  /// DwsController::Update treats count() == 0 as "no estimate at all",
  /// silently discarding the mean the accumulator still holds.
  void Decay() {
    count_ = (count_ + 1) / 2;
    m2_ /= 2.0;
  }

 private:
  uint64_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
};

}  // namespace dcdatalog

#endif  // DCDATALOG_COMMON_WELFORD_H_
