#ifndef DCDATALOG_COMMON_LOGGING_H_
#define DCDATALOG_COMMON_LOGGING_H_

#include <cassert>
#include <cstdio>
#include <sstream>
#include <string>

namespace dcdatalog {

enum class LogLevel : int {
  kDebug = 0,
  kInfo = 1,
  kWarning = 2,
  kError = 3,
  kFatal = 4,
};

/// Process-wide minimum level; messages below it are discarded. Defaults to
/// kWarning so library users see problems but not chatter; tools and benches
/// may lower it. Reads DCD_LOG_LEVEL from the environment on first use
/// (values: debug, info, warning, error).
LogLevel GetLogLevel();
void SetLogLevel(LogLevel level);

/// Redirects log output (default: stderr). Pass nullptr to restore stderr.
/// The stream is borrowed, not owned, and must stay valid while installed.
/// Internally synchronized with line emission, so it is safe to swap while
/// other threads log — each line goes wholly to the old or the new sink.
void SetLogStream(std::FILE* stream);

namespace internal {

/// Stream-style log sink; writes one line to stderr on destruction.
/// kFatal aborts the process after flushing.
class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();

  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

  template <typename T>
  LogMessage& operator<<(const T& v) {
    stream_ << v;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

/// Adapts a streamed LogMessage expression to void so it can sit on one arm
/// of a ternary (the glog "voidify" idiom). operator& binds looser than <<.
class Voidify {
 public:
  void operator&(LogMessage&) {}
  void operator&(LogMessage&&) {}
};

}  // namespace internal
}  // namespace dcdatalog

/// Usage: DCD_LOG(Info) << "loaded " << n << " facts";
#define DCD_LOG(level)                                            \
  (::dcdatalog::LogLevel::k##level < ::dcdatalog::GetLogLevel())  \
      ? (void)0                                                   \
      : ::dcdatalog::internal::Voidify() &                        \
            ::dcdatalog::internal::LogMessage(                    \
                ::dcdatalog::LogLevel::k##level, __FILE__, __LINE__)

/// DCD_CHECK aborts (in all build modes) when `cond` is false. Used for
/// invariants whose violation means engine-internal corruption.
#define DCD_CHECK(cond)                                          \
  (cond) ? (void)0                                               \
         : ::dcdatalog::internal::Voidify() &                    \
               (::dcdatalog::internal::LogMessage(               \
                    ::dcdatalog::LogLevel::kFatal, __FILE__,     \
                    __LINE__)                                    \
                << "Check failed: " #cond " ")

#define DCD_DCHECK(cond) assert(cond)

#endif  // DCDATALOG_COMMON_LOGGING_H_
