#include "common/value.h"

namespace dcdatalog {

const char* ColumnTypeName(ColumnType type) {
  switch (type) {
    case ColumnType::kInt:
      return "int";
    case ColumnType::kDouble:
      return "double";
    case ColumnType::kString:
      return "string";
  }
  return "unknown";
}

}  // namespace dcdatalog
