#include "graph/graph.h"

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <sstream>

namespace dcdatalog {

void Graph::Canonicalize() {
  std::sort(edges_.begin(), edges_.end(), [](const Edge& a, const Edge& b) {
    return a.src != b.src ? a.src < b.src : a.dst < b.dst;
  });
  auto last = std::unique(edges_.begin(), edges_.end(),
                          [](const Edge& a, const Edge& b) {
                            return a.src == b.src && a.dst == b.dst;
                          });
  edges_.erase(last, edges_.end());
  auto no_loops =
      std::remove_if(edges_.begin(), edges_.end(),
                     [](const Edge& e) { return e.src == e.dst; });
  edges_.erase(no_loops, edges_.end());
}

Relation Graph::ToArcRelation(const std::string& name) const {
  Relation rel(name, Schema({{"src", ColumnType::kInt},
                             {"dst", ColumnType::kInt}}));
  rel.Reserve(edges_.size());
  for (const Edge& e : edges_) {
    rel.Append({e.src, e.dst});
  }
  return rel;
}

Relation Graph::ToWeightedArcRelation(const std::string& name) const {
  Relation rel(name, Schema({{"src", ColumnType::kInt},
                             {"dst", ColumnType::kInt},
                             {"weight", ColumnType::kInt}}));
  rel.Reserve(edges_.size());
  for (const Edge& e : edges_) {
    rel.Append({e.src, e.dst, WordFromInt(e.weight)});
  }
  return rel;
}

Result<Graph> LoadEdgeList(const std::string& path) {
  std::ifstream in(path);
  if (!in) return Status::NotFound("cannot open graph file: " + path);
  Graph graph;
  std::string line;
  uint64_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    if (line.empty() || line[0] == '#') continue;
    std::istringstream ls(line);
    uint64_t u, v;
    if (!(ls >> u >> v)) {
      return Status::ParseError("bad edge at " + path + ":" +
                                std::to_string(line_no));
    }
    int64_t w = 1;
    ls >> w;  // Optional third column.
    graph.AddEdge(u, v, w);
  }
  return graph;
}

Status SaveEdgeList(const Graph& graph, const std::string& path) {
  std::ofstream out(path);
  if (!out) return Status::RuntimeError("cannot write graph file: " + path);
  // Column count must be uniform: write weights for every edge as soon as
  // any edge is weighted, so loaders see a consistent arity.
  bool weighted = false;
  for (const Edge& e : graph.edges()) {
    if (e.weight != 1) weighted = true;
  }
  for (const Edge& e : graph.edges()) {
    out << e.src << ' ' << e.dst;
    if (weighted) out << ' ' << e.weight;
    out << '\n';
  }
  return Status::OK();
}

}  // namespace dcdatalog
