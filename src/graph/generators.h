#ifndef DCDATALOG_GRAPH_GENERATORS_H_
#define DCDATALOG_GRAPH_GENERATORS_H_

#include <cstdint>

#include "graph/graph.h"

namespace dcdatalog {

/// Synthetic dataset generators matching §7.1.1 of the paper. All are
/// deterministic in the seed.

/// RMAT-n: n vertices, 10·n directed edges, recursive-matrix sampling with
/// the canonical (a, b, c, d) = (0.57, 0.19, 0.19, 0.05) parameters. Degree
/// distribution is heavy-tailed, which is what makes partition workloads
/// skewed — the regime DWS targets.
Graph GenerateRmat(uint64_t num_vertices, uint64_t seed,
                   uint64_t edges_per_vertex = 10);

/// G-n: Erdős–Rényi random digraph where each ordered pair is an edge with
/// probability p (paper: G-10K has n = 10,000, p = 0.001).
Graph GenerateGnp(uint64_t num_vertices, double p, uint64_t seed);

/// Tree-h: rooted tree of height h where every non-leaf has uniform 2..6
/// children (the SG workload's Tree-11). Edges point parent → child.
Graph GenerateRandomTree(uint32_t height, uint64_t seed,
                         uint32_t min_children = 2, uint32_t max_children = 6);

/// N-n trees, following [24] as quoted in §7.1.1: grown level by level,
/// each node has 5..10 children and each child becomes a leaf with a chance
/// drawn from 20 %..60 %. Generation stops once ~`target_vertices` exist.
Graph GenerateLeveledTree(uint64_t target_vertices, uint64_t seed);

/// Social-network-like stand-in for the paper's real graphs (LiveJournal,
/// Orkut, ...): RMAT skeleton re-labelled by a random permutation so vertex
/// id gives no locality hint, mirroring real crawl data.
Graph GenerateSocialGraph(uint64_t num_vertices, uint64_t avg_degree,
                          uint64_t seed);

/// Star/hub graph: `spokes` source vertices each point at one hub, and the
/// hub points at `spokes` distinct sink vertices (s_i → h, h → t_j), plus a
/// short chain through the sinks so recursion runs a few iterations. Under
/// hash partitioning every δ-tuple with the hub in the join column lands on
/// one worker, so TC over this graph is the adversarial single-hot-partition
/// workload morsel stealing targets: the hub owner's iteration-1 backlog is
/// ~`spokes` driving tuples while every other worker parks.
Graph GenerateStarHub(uint64_t spokes, uint64_t seed);

/// Zipf-degree digraph: n vertices; each vertex draws its out-degree from a
/// (truncated) Zipf/zeta distribution with exponent `alpha` scaled so the
/// hottest vertices reach ~`max_degree`, destinations uniform. A smoother
/// skew than the star — several hot partitions of different sizes — which
/// exercises threshold adaptation rather than one pathological hub.
Graph GenerateZipfDegree(uint64_t num_vertices, double alpha,
                         uint64_t max_degree, uint64_t seed);

/// Adds uniform random weights in [1, max_weight] to every edge of `graph`
/// (for SSSP / APSP workloads).
void AssignRandomWeights(Graph* graph, int64_t max_weight, uint64_t seed);

}  // namespace dcdatalog

#endif  // DCDATALOG_GRAPH_GENERATORS_H_
