#ifndef DCDATALOG_GRAPH_GRAPH_H_
#define DCDATALOG_GRAPH_GRAPH_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"
#include "storage/relation.h"

namespace dcdatalog {

/// One directed edge with an optional integer weight (1 when unweighted).
struct Edge {
  uint64_t src = 0;
  uint64_t dst = 0;
  int64_t weight = 1;

  friend bool operator==(const Edge& a, const Edge& b) {
    return a.src == b.src && a.dst == b.dst && a.weight == b.weight;
  }
};

/// A directed graph as an edge list — the natural shape for loading into a
/// Datalog `arc(X, Y)` / `warc(X, Y, W)` relation. Vertices are dense ids
/// [0, num_vertices).
class Graph {
 public:
  Graph() = default;
  explicit Graph(uint64_t num_vertices) : num_vertices_(num_vertices) {}

  uint64_t num_vertices() const { return num_vertices_; }
  uint64_t num_edges() const { return edges_.size(); }
  const std::vector<Edge>& edges() const { return edges_; }

  void AddEdge(uint64_t src, uint64_t dst, int64_t weight = 1) {
    edges_.push_back(Edge{src, dst, weight});
    num_vertices_ = std::max(num_vertices_, std::max(src, dst) + 1);
  }

  void Reserve(uint64_t n) { edges_.reserve(n); }

  /// Removes duplicate (src, dst) pairs and self loops, keeping the first
  /// weight seen. Generators call this so datasets match the paper's simple
  /// graphs.
  void Canonicalize();

  /// Materializes arc(src:int, dst:int) as a Relation named `name`.
  Relation ToArcRelation(const std::string& name = "arc") const;

  /// Materializes warc(src:int, dst:int, weight:int).
  Relation ToWeightedArcRelation(const std::string& name = "warc") const;

 private:
  uint64_t num_vertices_ = 0;
  std::vector<Edge> edges_;
};

/// Loads a whitespace-separated edge list ("u v" or "u v w" per line, '#'
/// comments). Vertex ids are used as-is.
Result<Graph> LoadEdgeList(const std::string& path);

/// Writes a graph in the same format.
Status SaveEdgeList(const Graph& graph, const std::string& path);

}  // namespace dcdatalog

#endif  // DCDATALOG_GRAPH_GRAPH_H_
