#include "graph/generators.h"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <vector>

#include "common/logging.h"
#include "common/random.h"

namespace dcdatalog {
namespace {

/// Samples one RMAT edge in a [0, 2^scale) id space.
Edge SampleRmatEdge(Rng* rng, uint32_t scale) {
  // Canonical Graph500-style parameters.
  constexpr double kA = 0.57, kB = 0.19, kC = 0.19;
  uint64_t src = 0, dst = 0;
  for (uint32_t bit = 0; bit < scale; ++bit) {
    const double r = rng->NextDouble();
    src <<= 1;
    dst <<= 1;
    if (r < kA) {
      // Top-left quadrant: both bits 0.
    } else if (r < kA + kB) {
      dst |= 1;
    } else if (r < kA + kB + kC) {
      src |= 1;
    } else {
      src |= 1;
      dst |= 1;
    }
  }
  return Edge{src, dst, 1};
}

}  // namespace

Graph GenerateRmat(uint64_t num_vertices, uint64_t seed,
                   uint64_t edges_per_vertex) {
  DCD_CHECK(num_vertices > 1);
  uint32_t scale = 1;
  while ((1ULL << scale) < num_vertices) ++scale;
  Rng rng(seed);
  Graph graph(num_vertices);
  const uint64_t target_edges = num_vertices * edges_per_vertex;
  graph.Reserve(target_edges);
  uint64_t produced = 0;
  // Rejection-sample ids that fall outside [0, num_vertices) when
  // num_vertices is not a power of two.
  while (produced < target_edges) {
    Edge e = SampleRmatEdge(&rng, scale);
    if (e.src >= num_vertices || e.dst >= num_vertices || e.src == e.dst) {
      continue;
    }
    graph.AddEdge(e.src, e.dst);
    ++produced;
  }
  graph.Canonicalize();
  return graph;
}

Graph GenerateGnp(uint64_t num_vertices, double p, uint64_t seed) {
  DCD_CHECK(p > 0.0 && p < 1.0);
  Rng rng(seed);
  Graph graph(num_vertices);
  // Geometric skipping: iterate only over present edges, O(expected edges).
  const double log1mp = std::log1p(-p);
  uint64_t total_pairs = num_vertices * num_vertices;
  uint64_t idx = 0;
  while (true) {
    const double r = std::max(rng.NextDouble(), 1e-18);
    const uint64_t skip =
        static_cast<uint64_t>(std::floor(std::log(r) / log1mp));
    if (skip > total_pairs - idx - 1) break;
    idx += skip;
    const uint64_t u = idx / num_vertices;
    const uint64_t v = idx % num_vertices;
    if (u != v) graph.AddEdge(u, v);
    ++idx;
    if (idx >= total_pairs) break;
  }
  return graph;
}

Graph GenerateRandomTree(uint32_t height, uint64_t seed, uint32_t min_children,
                         uint32_t max_children) {
  Rng rng(seed);
  Graph graph;
  std::vector<uint64_t> frontier = {0};
  uint64_t next_id = 1;
  for (uint32_t level = 0; level < height; ++level) {
    std::vector<uint64_t> next_frontier;
    for (uint64_t parent : frontier) {
      const uint32_t children = static_cast<uint32_t>(
          rng.UniformRange(min_children, max_children));
      for (uint32_t c = 0; c < children; ++c) {
        graph.AddEdge(parent, next_id);
        next_frontier.push_back(next_id);
        ++next_id;
      }
    }
    frontier = std::move(next_frontier);
  }
  return graph;
}

Graph GenerateLeveledTree(uint64_t target_vertices, uint64_t seed) {
  Rng rng(seed);
  Graph graph;
  graph.Reserve(target_vertices);
  std::vector<uint64_t> frontier = {0};
  uint64_t next_id = 1;
  while (next_id < target_vertices && !frontier.empty()) {
    std::vector<uint64_t> next_frontier;
    // Per [24]: the leaf probability for this level is drawn in [0.2, 0.6].
    const double leaf_chance = 0.2 + 0.4 * rng.NextDouble();
    for (uint64_t parent : frontier) {
      const uint32_t children =
          static_cast<uint32_t>(rng.UniformRange(5, 10));
      for (uint32_t c = 0; c < children && next_id < target_vertices; ++c) {
        graph.AddEdge(parent, next_id);
        if (!rng.Chance(leaf_chance)) next_frontier.push_back(next_id);
        ++next_id;
      }
      if (next_id >= target_vertices) break;
    }
    if (next_frontier.empty() && next_id < target_vertices) {
      // All children became leaves; keep growing from the last node so we
      // hit the requested size.
      next_frontier.push_back(next_id - 1);
    }
    frontier = std::move(next_frontier);
  }
  return graph;
}

Graph GenerateSocialGraph(uint64_t num_vertices, uint64_t avg_degree,
                          uint64_t seed) {
  Graph rmat = GenerateRmat(num_vertices, seed, avg_degree);
  // Random relabeling: destroys the id-locality RMAT ids have, so hash
  // partitioning sees the same "arbitrary crawl order" a real snapshot has.
  Rng rng(seed ^ 0x5ca1ab1eULL);
  std::vector<uint64_t> perm(rmat.num_vertices());
  std::iota(perm.begin(), perm.end(), 0);
  for (uint64_t i = perm.size(); i > 1; --i) {
    std::swap(perm[i - 1], perm[rng.Uniform(i)]);
  }
  Graph out(rmat.num_vertices());
  out.Reserve(rmat.num_edges());
  for (const Edge& e : rmat.edges()) {
    out.AddEdge(perm[e.src], perm[e.dst], e.weight);
  }
  return out;
}

Graph GenerateStarHub(uint64_t spokes, uint64_t seed) {
  DCD_CHECK(spokes > 0);
  // Layout: hub = 0, sources = [1, spokes], sinks = [spokes+1, 2*spokes].
  // The sink chain (t_j → t_{j+1} for a short prefix) keeps TC recursive
  // past iteration 1 without changing where the skew lives. The seed only
  // shuffles source/sink labels so hash partitioning cannot accidentally
  // align with the layout.
  const uint64_t n = 2 * spokes + 1;
  Rng rng(seed);
  std::vector<uint64_t> label(n);
  std::iota(label.begin(), label.end(), 0);
  // Shuffle everything but the hub's label (index 0 stays 0 for clarity —
  // partitioning hashes values, so the hub's id is irrelevant to placement).
  for (uint64_t i = n; i > 2; --i) {
    std::swap(label[i - 1], label[1 + rng.Uniform(i - 1)]);
  }
  Graph graph(n);
  graph.Reserve(2 * spokes + spokes / 8 + 1);
  for (uint64_t s = 0; s < spokes; ++s) {
    graph.AddEdge(label[1 + s], label[0]);               // s_i → h
    graph.AddEdge(label[0], label[1 + spokes + s]);      // h → t_j
  }
  for (uint64_t s = 0; s + 1 < spokes / 8; ++s) {        // short sink chain
    graph.AddEdge(label[1 + spokes + s], label[1 + spokes + s + 1]);
  }
  return graph;
}

Graph GenerateZipfDegree(uint64_t num_vertices, double alpha,
                         uint64_t max_degree, uint64_t seed) {
  DCD_CHECK(num_vertices > 1);
  DCD_CHECK(alpha > 0.0);
  Rng rng(seed);
  Graph graph(num_vertices);
  // Rank-based Zipf: vertex of rank r (after a random relabeling) gets
  // out-degree ~ max_degree / (r+1)^alpha, floored at 1. Deterministic in
  // the seed and O(edges), no rejection sampling needed.
  std::vector<uint64_t> rank(num_vertices);
  std::iota(rank.begin(), rank.end(), 0);
  for (uint64_t i = num_vertices; i > 1; --i) {
    std::swap(rank[i - 1], rank[rng.Uniform(i)]);
  }
  for (uint64_t r = 0; r < num_vertices; ++r) {
    const double scaled =
        static_cast<double>(max_degree) / std::pow(static_cast<double>(r + 1),
                                                   alpha);
    const uint64_t degree = std::max<uint64_t>(
        1, static_cast<uint64_t>(std::llround(scaled)));
    const uint64_t src = rank[r];
    for (uint64_t d = 0; d < degree; ++d) {
      const uint64_t dst = rng.Uniform(num_vertices);
      if (dst != src) graph.AddEdge(src, dst);
    }
  }
  graph.Canonicalize();
  return graph;
}

void AssignRandomWeights(Graph* graph, int64_t max_weight, uint64_t seed) {
  Rng rng(seed);
  Graph weighted(graph->num_vertices());
  weighted.Reserve(graph->num_edges());
  for (const Edge& e : graph->edges()) {
    weighted.AddEdge(e.src, e.dst, rng.UniformRange(1, max_weight));
  }
  *graph = std::move(weighted);
}

}  // namespace dcdatalog
