// Unit and property tests for src/storage: schema, relation, B+-tree,
// hash index, dynamic index, flat merge structures, catalog.

#include <gtest/gtest.h>

#include <map>
#include <set>
#include <vector>

#include "common/random.h"
#include "storage/btree.h"
#include "storage/catalog.h"
#include "storage/dyn_index.h"
#include "storage/flat_map.h"
#include "storage/flat_set.h"
#include "storage/hash_index.h"
#include "storage/relation.h"
#include "storage/schema.h"
#include "storage/tuple.h"

namespace dcdatalog {
namespace {

TEST(SchemaTest, IntsFactory) {
  Schema s = Schema::Ints(3);
  EXPECT_EQ(s.arity(), 3u);
  EXPECT_EQ(s.type(2), ColumnType::kInt);
  EXPECT_EQ(s.FindColumn("c1"), 1);
  EXPECT_EQ(s.FindColumn("zz"), -1);
}

TEST(SchemaTest, EqualityIgnoresNames) {
  Schema a({{"x", ColumnType::kInt}, {"y", ColumnType::kDouble}});
  Schema b({{"u", ColumnType::kInt}, {"v", ColumnType::kDouble}});
  Schema c({{"x", ColumnType::kInt}, {"y", ColumnType::kInt}});
  EXPECT_TRUE(a == b);
  EXPECT_FALSE(a == c);
}

TEST(RelationTest, AppendAndRead) {
  Relation rel("r", Schema::Ints(2));
  EXPECT_TRUE(rel.empty());
  rel.Append({1, 2});
  rel.Append({3, 4});
  EXPECT_EQ(rel.size(), 2u);
  EXPECT_EQ(rel.Row(1)[0], 3u);
  rel.SetWord(1, 1, 9);
  EXPECT_EQ(rel.Row(1)[1], 9u);
}

TEST(RelationTest, AppendAllConcatenates) {
  Relation a("a", Schema::Ints(2)), b("b", Schema::Ints(2));
  a.Append({1, 1});
  b.Append({2, 2});
  b.Append({3, 3});
  a.AppendAll(b);
  EXPECT_EQ(a.size(), 3u);
  EXPECT_EQ(a.Row(2)[0], 3u);
}

TEST(TupleTest, RefEqualityAndHash) {
  uint64_t a[] = {1, 2, 3};
  uint64_t b[] = {1, 2, 3};
  uint64_t c[] = {1, 2, 4};
  EXPECT_EQ((TupleRef{a, 3}), (TupleRef{b, 3}));
  EXPECT_FALSE((TupleRef{a, 3}) == (TupleRef{c, 3}));
  EXPECT_EQ((TupleRef{a, 3}).Hash(), (TupleRef{b, 3}).Hash());
}

TEST(TupleTest, BufCopiesRef) {
  uint64_t a[] = {7, 8};
  TupleBuf buf{TupleRef{a, 2}};
  a[0] = 99;
  EXPECT_EQ(buf.Ref(2)[0], 7u);
}

// --- B+-tree -----------------------------------------------------------

TEST(BTreeTest, EmptyTree) {
  BPlusTree<uint64_t, uint64_t> tree;
  EXPECT_EQ(tree.size(), 0u);
  EXPECT_TRUE(tree.LowerBound(0).AtEnd());
  EXPECT_FALSE(tree.Contains(5));
  EXPECT_EQ(tree.FindFirst(5), nullptr);
}

TEST(BTreeTest, InsertAndFind) {
  BPlusTree<uint64_t, uint64_t> tree;
  for (uint64_t i = 0; i < 1000; ++i) tree.Insert(i * 3, i);
  EXPECT_EQ(tree.size(), 1000u);
  EXPECT_TRUE(tree.Contains(999));
  EXPECT_FALSE(tree.Contains(1000));
  ASSERT_NE(tree.FindFirst(300), nullptr);
  EXPECT_EQ(*tree.FindFirst(300), 100u);
}

TEST(BTreeTest, InPlaceValueUpdate) {
  BPlusTree<uint64_t, uint64_t> tree;
  tree.Insert(5, 10);
  *tree.FindFirst(5) = 20;
  EXPECT_EQ(*tree.FindFirst(5), 20u);
}

TEST(BTreeTest, OrderedIteration) {
  BPlusTree<uint64_t, uint64_t> tree;
  Rng rng(5);
  std::multiset<uint64_t> keys;
  for (int i = 0; i < 5000; ++i) {
    uint64_t k = rng.Uniform(500);
    tree.Insert(k, i);
    keys.insert(k);
  }
  std::vector<uint64_t> seen;
  for (auto it = tree.Begin(); !it.AtEnd(); ++it) seen.push_back(it.key());
  EXPECT_EQ(seen.size(), keys.size());
  EXPECT_TRUE(std::is_sorted(seen.begin(), seen.end()));
}

TEST(BTreeTest, PropertyMatchesMultimap) {
  // Random interleaved inserts and lookups, mirrored in std::multimap.
  BPlusTree<uint64_t, uint64_t, 8, 8> tree;  // Small fanout → deep tree.
  std::multimap<uint64_t, uint64_t> oracle;
  Rng rng(99);
  for (int i = 0; i < 20000; ++i) {
    uint64_t k = rng.Uniform(3000);
    tree.Insert(k, i);
    oracle.emplace(k, i);
  }
  EXPECT_EQ(tree.size(), oracle.size());
  for (uint64_t k = 0; k < 3000; ++k) {
    std::multiset<uint64_t> expect;
    auto [lo, hi] = oracle.equal_range(k);
    for (auto it = lo; it != hi; ++it) expect.insert(it->second);
    std::multiset<uint64_t> got;
    tree.ForEachEqual(k, [&](const uint64_t& v) {
      got.insert(v);
      return true;
    });
    ASSERT_EQ(got, expect) << "key " << k;
  }
}

TEST(BTreeTest, LowerBoundSemantics) {
  BPlusTree<uint64_t, uint64_t, 8, 8> tree;
  for (uint64_t k : {10, 20, 20, 20, 30, 40}) tree.Insert(k, k);
  auto it = tree.LowerBound(15);
  EXPECT_EQ(it.key(), 20u);
  it = tree.LowerBound(20);
  EXPECT_EQ(it.key(), 20u);
  it = tree.LowerBound(41);
  EXPECT_TRUE(it.AtEnd());
}

TEST(BTreeTest, DuplicatesAcrossLeafSplits) {
  // Many duplicates of a few keys force duplicates to straddle leaves.
  BPlusTree<uint64_t, uint64_t, 4, 4> tree;
  for (int i = 0; i < 300; ++i) tree.Insert(i % 3, i);
  for (uint64_t k = 0; k < 3; ++k) {
    uint64_t count = 0;
    tree.ForEachEqual(k, [&](const uint64_t&) {
      ++count;
      return true;
    });
    EXPECT_EQ(count, 100u) << "key " << k;
  }
}

TEST(BTreeTest, U128CompositeKeys) {
  BPlusTree<U128, uint64_t> tree;
  tree.Insert(U128{1, 5}, 15);
  tree.Insert(U128{1, 7}, 17);
  tree.Insert(U128{2, 0}, 20);
  EXPECT_EQ(*tree.FindFirst(U128{1, 7}), 17u);
  EXPECT_EQ(tree.FindFirst(U128{1, 6}), nullptr);
  // Lexicographic: (1,*) before (2,*).
  auto it = tree.LowerBound(U128{1, 6});
  EXPECT_EQ(it.key().lo, 7u);
}

TEST(BTreeTest, MoveConstructorLeavesSourceUsable) {
  BPlusTree<uint64_t, uint64_t> a;
  a.Insert(1, 1);
  BPlusTree<uint64_t, uint64_t> b(std::move(a));
  EXPECT_EQ(b.size(), 1u);
  EXPECT_EQ(a.size(), 0u);  // NOLINT(bugprone-use-after-move)
  a.Insert(2, 2);
  EXPECT_TRUE(a.Contains(2));
}

// --- Hash index --------------------------------------------------------

TEST(HashIndexTest, BuildAndProbe) {
  Relation rel("r", Schema::Ints(2));
  rel.Append({1, 10});
  rel.Append({2, 20});
  rel.Append({1, 11});
  HashIndex index;
  index.Build(rel, 0);
  std::set<uint64_t> rows;
  index.ForEachMatch(1, [&](uint64_t row) {
    rows.insert(row);
    return true;
  });
  EXPECT_EQ(rows, (std::set<uint64_t>{0, 2}));
  EXPECT_TRUE(index.Contains(2));
  EXPECT_FALSE(index.Contains(3));
}

TEST(HashIndexTest, EmptyRelation) {
  Relation rel("r", Schema::Ints(1));
  HashIndex index;
  index.Build(rel, 0);
  EXPECT_FALSE(index.Contains(0));
}

TEST(HashIndexTest, PropertyMatchesMultimap) {
  Relation rel("r", Schema::Ints(2));
  std::multimap<uint64_t, uint64_t> oracle;
  Rng rng(3);
  for (uint64_t i = 0; i < 5000; ++i) {
    uint64_t k = rng.Uniform(400);
    rel.Append({k, i});
    oracle.emplace(k, i);
  }
  HashIndex index;
  index.Build(rel, 0);
  for (uint64_t k = 0; k < 400; ++k) {
    std::multiset<uint64_t> expect;
    auto [lo, hi] = oracle.equal_range(k);
    for (auto it = lo; it != hi; ++it) expect.insert(it->second);
    std::multiset<uint64_t> got;
    index.ForEachMatch(k, [&](uint64_t row) {
      got.insert(rel.Row(row)[1]);
      return true;
    });
    ASSERT_EQ(got.size(), expect.size());
  }
}

// --- DynIndex ----------------------------------------------------------

TEST(DynIndexTest, IncrementalInsertWithGrowth) {
  DynIndex index;
  std::multimap<uint64_t, uint64_t> oracle;
  Rng rng(11);
  for (uint64_t i = 0; i < 3000; ++i) {
    uint64_t k = rng.Uniform(100);
    index.Insert(k, i);
    oracle.emplace(k, i);
    // Interleave queries with inserts to exercise post-growth state.
    if (i % 257 == 0) {
      uint64_t probe = rng.Uniform(100);
      std::multiset<uint64_t> expect;
      auto [lo, hi] = oracle.equal_range(probe);
      for (auto it = lo; it != hi; ++it) expect.insert(it->second);
      std::multiset<uint64_t> got;
      index.ForEachMatch(probe, [&](uint64_t row) {
        got.insert(row);
        return true;
      });
      ASSERT_EQ(got, expect);
    }
  }
  EXPECT_EQ(index.size(), 3000u);
}

TEST(DynIndexTest, ReservePresizesBuckets) {
  DynIndex index;
  const uint64_t initial = index.bucket_count();
  index.Reserve(3000);
  EXPECT_EQ(index.bucket_count(), 4096u);  // bit_ceil(3000).
  index.Reserve(10);
  EXPECT_EQ(index.bucket_count(), 4096u);  // Never shrinks.
  std::multimap<uint64_t, uint64_t> oracle;
  Rng rng(13);
  for (uint64_t i = 0; i < 3000; ++i) {
    uint64_t k = rng.Uniform(500);
    index.Insert(k, i);
    oracle.emplace(k, i);
  }
  // Insertion up to the hint never triggered an incremental rebuild.
  EXPECT_EQ(index.bucket_count(), 4096u);
  EXPECT_GT(index.bucket_count(), initial);
  for (uint64_t k = 0; k < 500; ++k) {
    std::multiset<uint64_t> expect;
    auto [lo, hi] = oracle.equal_range(k);
    for (auto it = lo; it != hi; ++it) expect.insert(it->second);
    std::multiset<uint64_t> got;
    index.ForEachMatch(k, [&](uint64_t row) {
      got.insert(row);
      return true;
    });
    ASSERT_EQ(got, expect);
  }
}

// --- FlatTupleSet ------------------------------------------------------

TEST(FlatTupleSetTest, DeduplicatesFullTuples) {
  Relation rel("r", Schema::Ints(2));
  FlatTupleSet set(&rel);
  uint64_t probe[] = {1, 2};
  const TupleRef t12{probe, 2};
  const uint64_t h12 = t12.Hash();
  EXPECT_EQ(set.Find(h12, t12), FlatTupleSet::kNotFound);
  set.Insert(h12, rel.Append(t12));
  EXPECT_EQ(set.Find(h12, t12), 0u);
  uint64_t other[] = {2, 1};
  const TupleRef t21{other, 2};
  EXPECT_EQ(set.Find(t21.Hash(), t21), FlatTupleSet::kNotFound);
  set.Insert(t21.Hash(), rel.Append(t21));
  EXPECT_EQ(set.Find(t21.Hash(), t21), 1u);
  EXPECT_EQ(set.size(), 2u);
}

// Distinct tuples deliberately inserted under the SAME hash must form a
// probe chain: Find has to dereference the backing rows to tell them
// apart, and each full-tuple comparison shows up in probe_cmps().
TEST(FlatTupleSetTest, EqualHashDistinctTuplesChain) {
  Relation rel("r", Schema::Ints(1));
  FlatTupleSet set(&rel);
  const uint64_t kHash = 42;
  for (uint64_t i = 0; i < 16; ++i) {
    uint64_t v[] = {i};
    set.Insert(kHash, rel.Append(TupleRef{v, 1}));
  }
  EXPECT_EQ(set.size(), 16u);
  const uint64_t cmps_before = set.probe_cmps();
  for (uint64_t i = 0; i < 16; ++i) {
    uint64_t v[] = {i};
    ASSERT_EQ(set.Find(kHash, TupleRef{v, 1}), i);
  }
  // 16 lookups over a 16-long chain: the last lookup alone compares
  // against every prior entry, so well over 16 comparisons in total.
  EXPECT_GT(set.probe_cmps() - cmps_before, 16u);
  uint64_t missing[] = {999};
  EXPECT_EQ(set.Find(kHash, TupleRef{missing, 1}), FlatTupleSet::kNotFound);
}

TEST(FlatTupleSetTest, GrowsPastLoadFactorBoundary) {
  Relation rel("r", Schema::Ints(1));
  FlatTupleSet set(&rel);
  const uint64_t initial_slots = set.slot_count();
  for (uint64_t i = 0; i < 10000; ++i) {
    uint64_t v[] = {i};
    const TupleRef t{v, 1};
    const uint64_t h = t.Hash();
    ASSERT_EQ(set.Find(h, t), FlatTupleSet::kNotFound);
    set.Insert(h, rel.Append(t));
  }
  EXPECT_EQ(set.size(), 10000u);
  EXPECT_GT(set.slot_count(), initial_slots);
  // Growth keeps the table under the 60% trigger.
  EXPECT_LT(set.size() * 5, set.slot_count() * 3);
  for (uint64_t i = 0; i < 10000; ++i) {
    uint64_t v[] = {i};
    const TupleRef t{v, 1};
    ASSERT_EQ(set.Find(t.Hash(), t), i);
  }
}

TEST(FlatTupleSetTest, ReserveRoundsUpToPowerOfTwo) {
  Relation rel("r", Schema::Ints(1));
  FlatTupleSet set(&rel);
  set.Reserve(1000);
  // 1000 expected rows -> 2000 slots -> next power of two, 2048.
  EXPECT_EQ(set.slot_count(), 2048u);
  // Reserve never shrinks.
  set.Reserve(10);
  EXPECT_EQ(set.slot_count(), 2048u);
  // A presized set absorbs `expected` inserts without rehashing (<=50%
  // load never crosses the 60% growth trigger).
  for (uint64_t i = 0; i < 1000; ++i) {
    uint64_t v[] = {i};
    const TupleRef t{v, 1};
    set.Insert(t.Hash(), rel.Append(t));
  }
  EXPECT_EQ(set.slot_count(), 2048u);
}

// --- FlatGroupMap ------------------------------------------------------

TEST(FlatGroupMapTest, FindOrInsertAndInPlaceUpdate) {
  FlatGroupMap map;
  bool inserted = false;
  uint64_t* v = map.FindOrInsert(U128{1, 2}, 10, &inserted);
  ASSERT_NE(v, nullptr);
  EXPECT_TRUE(inserted);
  EXPECT_EQ(*v, 10u);
  v = map.FindOrInsert(U128{1, 2}, 99, &inserted);
  EXPECT_FALSE(inserted);
  EXPECT_EQ(*v, 10u);  // Existing value untouched on hit.
  *v = 77;             // In-place update through the returned pointer.
  EXPECT_EQ(*map.Find(U128{1, 2}), 77u);
  EXPECT_EQ(map.Find(U128{2, 1}), nullptr);
  EXPECT_EQ(map.size(), 1u);
}

TEST(FlatGroupMapTest, GrowthPreservesEntries) {
  FlatGroupMap map;
  std::map<uint64_t, uint64_t> oracle;
  Rng rng(7);
  for (uint64_t i = 0; i < 5000; ++i) {
    const uint64_t k = rng.Uniform(1 << 12);
    bool inserted = false;
    uint64_t* v = map.FindOrInsert(U128{k, k + 1}, i, &inserted);
    auto it = oracle.find(k);
    if (it == oracle.end()) {
      ASSERT_TRUE(inserted);
      oracle.emplace(k, i);
    } else {
      ASSERT_FALSE(inserted);
      ASSERT_EQ(*v, it->second);
    }
  }
  EXPECT_EQ(map.size(), oracle.size());
  EXPECT_LT(map.size() * 5, map.slot_count() * 3);
  for (const auto& [k, val] : oracle) {
    const uint64_t* v = map.Find(U128{k, k + 1});
    ASSERT_NE(v, nullptr);
    ASSERT_EQ(*v, val);
  }
}

TEST(FlatGroupMapTest, ReserveRoundsUpToPowerOfTwo) {
  FlatGroupMap map;
  map.Reserve(300);
  EXPECT_EQ(map.slot_count(), 1024u);  // 300*2 -> 600 -> 1024.
  map.Reserve(5);
  EXPECT_EQ(map.slot_count(), 1024u);  // Never shrinks.
}

// --- Catalog -----------------------------------------------------------

TEST(CatalogTest, CreateFindPut) {
  Catalog catalog;
  auto created = catalog.Create("edges", Schema::Ints(2));
  ASSERT_TRUE(created.ok());
  created.value()->Append({1, 2});
  EXPECT_EQ(catalog.Find("edges")->size(), 1u);
  EXPECT_EQ(catalog.Find("missing"), nullptr);
  EXPECT_FALSE(catalog.Create("edges", Schema::Ints(2)).ok());

  Relation replacement("edges", Schema::Ints(2));
  replacement.Append({3, 4});
  replacement.Append({5, 6});
  catalog.Put(std::move(replacement));
  EXPECT_EQ(catalog.Find("edges")->size(), 2u);
  EXPECT_EQ(catalog.Names().size(), 1u);
}

}  // namespace
}  // namespace dcdatalog
