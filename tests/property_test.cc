// Property-based end-to-end tests: randomized workloads swept across
// strategies, worker counts, optimization toggles and queue capacities;
// every configuration must agree with the reference interpreter and with
// every other configuration.

#include <gtest/gtest.h>

#include <map>

#include "common/random.h"
#include "core/dcdatalog.h"
#include "core/reference.h"
#include "graph/generators.h"
#include "testing/fuzz_runner.h"
#include "testing/program_gen.h"
#include "tests/test_util.h"

namespace dcdatalog {
namespace {

using testing_util::RowSet;

constexpr char kTc[] =
    "tc(X, Y) :- arc(X, Y).\n"
    "tc(X, Y) :- tc(X, Z), arc(Z, Y).\n";

constexpr char kSssp[] =
    "sp(To, min<C>) :- To = 0, C = 0.\n"
    "sp(To2, min<C>) :- sp(To1, C1), warc(To1, To2, C2), C = C1 + C2.\n";

constexpr char kCc[] =
    "cc2(Y, min<Y>) :- arc(Y, _).\n"
    "cc2(Y, min<Y>) :- arc(_, Y).\n"
    "cc2(Y, min<Z>) :- cc2(X, Z), arc(X, Y).\n"
    "cc2(Y, min<Z>) :- cc2(X, Z), arc(Y, X).\n";

struct Config {
  CoordinationMode mode;
  uint32_t workers;
  bool agg_index;
  bool cache;
  uint32_t spsc_capacity;
};

std::string ConfigName(const Config& c) {
  std::string name = CoordinationModeName(c.mode);
  name += "_w" + std::to_string(c.workers);
  name += c.agg_index ? "_idx" : "_scan";
  name += c.cache ? "_cache" : "_nocache";
  name += "_q" + std::to_string(c.spsc_capacity);
  return name;
}

class ConfigSweep : public ::testing::TestWithParam<Config> {
 protected:
  EngineOptions Opts() {
    const Config& c = GetParam();
    EngineOptions o;
    o.coordination = c.mode;
    o.num_workers = c.workers;
    o.enable_aggregate_index = c.agg_index;
    o.enable_existence_cache = c.cache;
    o.spsc_capacity = c.spsc_capacity;
    return o;
  }
};

TEST_P(ConfigSweep, TcMatchesReference) {
  Graph g = GenerateRmat(128, 0xFEED, 4);
  DCDatalog db(Opts());
  db.AddGraph(g, "arc");
  ASSERT_TRUE(db.LoadProgramText(kTc).ok());
  auto stats = db.Run();
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  auto ref = ReferenceEvaluate(*db.program(), db.catalog());
  ASSERT_TRUE(ref.ok());
  EXPECT_EQ(RowSet(*db.ResultFor("tc")), RowSet(ref.value().at("tc")));
}

TEST_P(ConfigSweep, SsspMatchesReference) {
  Graph g = GenerateGnp(70, 0.06, 0xBEEF);
  AssignRandomWeights(&g, 30, 0xCAFE);
  DCDatalog db(Opts());
  db.AddGraph(g, "warc", /*weighted=*/true);
  ASSERT_TRUE(db.LoadProgramText(kSssp).ok());
  auto stats = db.Run();
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  auto ref = ReferenceEvaluate(*db.program(), db.catalog());
  ASSERT_TRUE(ref.ok());
  EXPECT_EQ(RowSet(*db.ResultFor("sp")), RowSet(ref.value().at("sp")));
}

TEST_P(ConfigSweep, CcMatchesReference) {
  // Disconnected components with wildly different sizes — worker skew.
  Graph g;
  Rng rng(7);
  uint64_t base = 0;
  for (uint64_t size : {3, 40, 7, 100, 1}) {
    for (uint64_t i = 0; i + 1 < size; ++i) {
      g.AddEdge(base + i, base + rng.Uniform(i + 1));
    }
    base += size + 1;
  }
  DCDatalog db(Opts());
  db.AddGraph(g, "arc");
  ASSERT_TRUE(db.LoadProgramText(kCc).ok());
  auto stats = db.Run();
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  auto ref = ReferenceEvaluate(*db.program(), db.catalog());
  ASSERT_TRUE(ref.ok());
  EXPECT_EQ(RowSet(*db.ResultFor("cc2")), RowSet(ref.value().at("cc2")));
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, ConfigSweep,
    ::testing::Values(
        Config{CoordinationMode::kGlobal, 1, true, true, 4096},
        Config{CoordinationMode::kGlobal, 5, false, false, 512},
        Config{CoordinationMode::kSsp, 2, true, false, 4096},
        Config{CoordinationMode::kSsp, 7, false, true, 512},
        Config{CoordinationMode::kDws, 3, true, true, 512},
        Config{CoordinationMode::kDws, 6, false, false, 4096},
        Config{CoordinationMode::kDws, 4, true, true, 2}),
    [](const ::testing::TestParamInfo<Config>& info) {
      return ConfigName(info.param);
    });

/// Random-program property: random chain programs (non-recursive + one
/// recursive SCC with random constants) agree with the reference.
class RandomProgramTest : public ::testing::TestWithParam<int> {};

TEST_P(RandomProgramTest, RandomReachabilityVariant) {
  Rng rng(1000 + GetParam());
  Graph g = GenerateGnp(40 + rng.Uniform(40), 0.05 + 0.05 * rng.NextDouble(),
                        rng.Next());
  // Randomized variant of reachability-with-bound: seed vertex, hop cap
  // expressed through weights.
  const uint64_t seed_vertex = rng.Uniform(g.num_vertices());
  char program[512];
  std::snprintf(program, sizeof(program),
                "hops(V, min<H>) :- V = %llu, H = 0.\n"
                "hops(W, min<H>) :- hops(V, H1), arc(V, W), H = H1 + 1.\n"
                "near(V) :- hops(V, H), H <= %llu.\n",
                static_cast<unsigned long long>(seed_vertex),
                static_cast<unsigned long long>(1 + rng.Uniform(4)));

  EngineOptions opts;
  opts.num_workers = 1 + static_cast<uint32_t>(rng.Uniform(6));
  opts.coordination = static_cast<CoordinationMode>(rng.Uniform(3));
  DCDatalog db(opts);
  db.AddGraph(g, "arc");
  ASSERT_TRUE(db.LoadProgramText(program).ok());
  auto stats = db.Run();
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  auto ref = ReferenceEvaluate(*db.program(), db.catalog());
  ASSERT_TRUE(ref.ok()) << ref.status().ToString();
  EXPECT_EQ(RowSet(*db.ResultFor("hops")), RowSet(ref.value().at("hops")));
  EXPECT_EQ(RowSet(*db.ResultFor("near")), RowSet(ref.value().at("near")));
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomProgramTest, ::testing::Range(0, 12));

/// Generator-found regression corpus: fixed seeds of the fuzz-harness
/// program generator (tools/dcd_fuzz), promoted here so every build replays
/// them deterministically across all strategies and worker counts. The
/// seeds were picked for family coverage: min/max/count aggregates,
/// negation, non-linear recursion, mutual recursion, weighted arcs, and an
/// empty EDB (seed 28).
class GeneratedCorpus : public ::testing::TestWithParam<uint64_t> {};

TEST_P(GeneratedCorpus, AllConfigsMatchReference) {
  testing_gen::GenOptions gen;
  gen.seed = GetParam();
  const testing_gen::FuzzCase c = testing_gen::GenerateCase(gen);
  // The oracle is configuration-independent: compute once, diff nine runs.
  testing_gen::OracleRows oracle;
  const auto ref = testing_gen::ComputeOracle(c, /*max_rounds=*/100000,
                                              &oracle);
  ASSERT_EQ(ref.kind, testing_gen::OutcomeKind::kAgree)
      << ref.detail << "\n" << c.ToString();
  for (CoordinationMode mode :
       {CoordinationMode::kGlobal, CoordinationMode::kSsp,
        CoordinationMode::kDws}) {
    for (uint32_t workers : {1u, 2u, 4u}) {
      testing_gen::RunConfig config;
      config.mode = mode;
      config.num_workers = workers;
      const auto outcome = testing_gen::RunEngineOnce(c, config, oracle);
      EXPECT_EQ(outcome.kind, testing_gen::OutcomeKind::kAgree)
          << CoordinationModeName(mode) << " w" << workers << ": "
          << outcome.detail << "\n" << c.ToString();
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Corpus, GeneratedCorpus,
                         ::testing::Values(1, 2, 4, 6, 9, 19, 22, 28, 31, 34,
                                           42, 50));

}  // namespace
}  // namespace dcdatalog
