// Unit tests for storage/text_io: schema specs, fact-file loading, and
// relation writing (the CLI's data path).

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

#include "storage/text_io.h"

namespace dcdatalog {
namespace {

std::string TempPath(const char* name) {
  return ::testing::TempDir() + "/" + name;
}

void WriteFile(const std::string& path, const std::string& content) {
  std::ofstream out(path);
  out << content;
}

TEST(SchemaSpecTest, ParsesTypeLetters) {
  auto s = ParseSchemaSpec("ids");
  ASSERT_TRUE(s.ok());
  EXPECT_EQ(s.value().arity(), 3u);
  EXPECT_EQ(s.value().type(0), ColumnType::kInt);
  EXPECT_EQ(s.value().type(1), ColumnType::kDouble);
  EXPECT_EQ(s.value().type(2), ColumnType::kString);
}

TEST(SchemaSpecTest, RejectsBadSpecs) {
  EXPECT_FALSE(ParseSchemaSpec("").ok());
  EXPECT_FALSE(ParseSchemaSpec("ix").ok());
}

TEST(TextIoTest, LoadsTypedColumns) {
  const std::string path = TempPath("facts1.tsv");
  WriteFile(path,
            "# comment\n"
            "1 2.5 alice\n"
            "\n"
            "% another comment\n"
            "-3 0.25 bob\n");
  StringDict dict;
  auto rel = LoadRelationFile("r", ParseSchemaSpec("ids").value(), path,
                              &dict);
  ASSERT_TRUE(rel.ok()) << rel.status().ToString();
  ASSERT_EQ(rel.value().size(), 2u);
  EXPECT_EQ(IntFromWord(rel.value().Row(0)[0]), 1);
  EXPECT_DOUBLE_EQ(DoubleFromWord(rel.value().Row(0)[1]), 2.5);
  EXPECT_EQ(dict.Get(rel.value().Row(0)[2]), "alice");
  EXPECT_EQ(IntFromWord(rel.value().Row(1)[0]), -3);
  std::remove(path.c_str());
}

TEST(TextIoTest, RejectsMalformedRows) {
  const std::string path = TempPath("facts2.tsv");
  WriteFile(path, "1 2\n3\n");
  StringDict dict;
  auto rel = LoadRelationFile("r", Schema::Ints(2), path, &dict);
  EXPECT_FALSE(rel.ok());
  EXPECT_NE(rel.status().message().find(":2"), std::string::npos);

  WriteFile(path, "1 x\n");
  EXPECT_FALSE(LoadRelationFile("r", Schema::Ints(2), path, &dict).ok());
  WriteFile(path, "1 2.x\n");
  EXPECT_FALSE(
      LoadRelationFile("r", ParseSchemaSpec("id").value(), path, &dict).ok());
  std::remove(path.c_str());
}

TEST(TextIoTest, MissingFile) {
  StringDict dict;
  EXPECT_EQ(LoadRelationFile("r", Schema::Ints(1), "/no/such/file", &dict)
                .status()
                .code(),
            StatusCode::kNotFound);
}

TEST(TextIoTest, WriteReadRoundTrip) {
  StringDict dict;
  Relation rel("r", ParseSchemaSpec("isd").value());
  rel.Append({WordFromInt(7), dict.Intern("x y"), WordFromDouble(1.5)});
  // Note: strings with spaces would break the format; the dict here uses a
  // space-free token to stay within the loader's contract.
  Relation rel2("r", ParseSchemaSpec("isd").value());
  rel2.Append({WordFromInt(7), dict.Intern("token"), WordFromDouble(1.5)});

  const std::string path = TempPath("facts3.tsv");
  ASSERT_TRUE(WriteRelationFile(rel2, path, &dict).ok());
  auto loaded =
      LoadRelationFile("r", ParseSchemaSpec("isd").value(), path, &dict);
  ASSERT_TRUE(loaded.ok());
  ASSERT_EQ(loaded.value().size(), 1u);
  EXPECT_EQ(IntFromWord(loaded.value().Row(0)[0]), 7);
  EXPECT_EQ(dict.Get(loaded.value().Row(0)[1]), "token");
  EXPECT_DOUBLE_EQ(DoubleFromWord(loaded.value().Row(0)[2]), 1.5);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace dcdatalog
