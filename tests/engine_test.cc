// Engine- and facade-level tests: worker-count invariance, statistics,
// abort handling, multi-SCC programs, string columns, re-runs, explain.

#include <gtest/gtest.h>

#include <cmath>
#include <set>
#include <string>
#include <tuple>

#include "common/random.h"
#include "core/dcdatalog.h"
#include "core/dws_controller.h"
#include "graph/generators.h"
#include "tests/test_util.h"

namespace dcdatalog {
namespace {

using testing_util::RowSet;

constexpr char kTc[] =
    "tc(X, Y) :- arc(X, Y).\n"
    "tc(X, Y) :- tc(X, Z), arc(Z, Y).\n";

EngineOptions Opts(uint32_t workers, CoordinationMode mode) {
  EngineOptions o;
  o.num_workers = workers;
  o.coordination = mode;
  return o;
}

TEST(EngineTest, ResultInvariantAcrossWorkerCounts) {
  Graph g = GenerateGnp(50, 0.05, 77);
  std::set<std::vector<uint64_t>> first;
  for (uint32_t workers : {1, 2, 3, 8}) {
    DCDatalog db(Opts(workers, CoordinationMode::kDws));
    db.AddGraph(g, "arc");
    ASSERT_TRUE(db.LoadProgramText(kTc).ok());
    auto stats = db.Run();
    ASSERT_TRUE(stats.ok()) << stats.status().ToString();
    auto rows = RowSet(*db.ResultFor("tc"));
    if (first.empty()) {
      first = rows;
    } else {
      EXPECT_EQ(rows, first) << workers << " workers";
    }
  }
  EXPECT_FALSE(first.empty());
}

TEST(EngineTest, StealOnOffResultEquality) {
  // TC over a star/hub graph puts the whole δ-backlog on the hub owner's
  // partition — the workload morsel stealing rebalances. The result rows
  // must not depend on the steal axis, under any strategy or worker count.
  // The publish threshold is forced to 1 so test-sized deltas actually
  // publish (production thresholds would make steal-on a silent no-op).
  Graph g = GenerateStarHub(48, 9);
  std::set<std::vector<uint64_t>> baseline;
  bool have_baseline = false;
  bool stole_somewhere = false;
  for (CoordinationMode mode : {CoordinationMode::kGlobal,
                                CoordinationMode::kSsp,
                                CoordinationMode::kDws}) {
    for (uint32_t workers : {1u, 2u, 4u}) {
      for (bool steal : {false, true}) {
        EngineOptions o = Opts(workers, mode);
        o.enable_steal = steal;
        o.steal_min_backlog = 1;
        o.steal_morsel_tuples = 16;
        DCDatalog db(o);
        db.AddGraph(g, "arc");
        ASSERT_TRUE(db.LoadProgramText(kTc).ok());
        auto stats = db.Run();
        ASSERT_TRUE(stats.ok()) << stats.status().ToString();
        auto rows = RowSet(*db.ResultFor("tc"));
        if (!have_baseline) {
          baseline = rows;
          have_baseline = true;
        } else {
          EXPECT_EQ(rows, baseline)
              << "mode " << static_cast<int>(mode) << " x" << workers
              << " steal=" << steal;
        }
        if (steal) stole_somewhere |= stats.value().morsels_stolen > 0;
        if (!steal) {
          EXPECT_EQ(stats.value().morsels_published, 0u);
          EXPECT_EQ(stats.value().morsels_stolen, 0u);
        }
      }
    }
  }
  EXPECT_FALSE(baseline.empty());
  // At least one steal-on run should actually exercise the morsel path with
  // the threshold forced down; all-zero means the publish hook is dead and
  // the axis tests nothing. A claim needs an idle worker to reach its
  // TrySteal while a slot is published, which on a loaded (or single-CPU)
  // host is a scheduling race the tiny matrix runs above can lose — so
  // retry a longer hub workload until a steal lands, instead of flaking.
  Graph big = GenerateStarHub(400, 9);
  std::set<std::vector<uint64_t>> big_baseline;
  {
    EngineOptions o = Opts(4, CoordinationMode::kGlobal);
    o.enable_steal = false;
    DCDatalog db(o);
    db.AddGraph(big, "arc");
    ASSERT_TRUE(db.LoadProgramText(kTc).ok());
    ASSERT_TRUE(db.Run().ok());
    big_baseline = RowSet(*db.ResultFor("tc"));
  }
  for (int attempt = 0; attempt < 50 && !stole_somewhere; ++attempt) {
    EngineOptions o = Opts(4, CoordinationMode::kGlobal);
    o.enable_steal = true;
    o.steal_min_backlog = 1;
    o.steal_morsel_tuples = 16;
    DCDatalog db(o);
    db.AddGraph(big, "arc");
    ASSERT_TRUE(db.LoadProgramText(kTc).ok());
    auto stats = db.Run();
    ASSERT_TRUE(stats.ok()) << stats.status().ToString();
    EXPECT_EQ(RowSet(*db.ResultFor("tc")), big_baseline)
        << "steal-on attempt " << attempt;
    stole_somewhere |= stats.value().morsels_stolen > 0;
  }
  EXPECT_TRUE(stole_somewhere);
}

TEST(EngineTest, StatsAreMeaningful) {
  DCDatalog db(Opts(2, CoordinationMode::kDws));
  Graph g;
  for (uint64_t i = 0; i < 20; ++i) g.AddEdge(i, i + 1);
  db.AddGraph(g, "arc");
  ASSERT_TRUE(db.LoadProgramText(kTc).ok());
  auto stats = db.Run();
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats.value().num_sccs, 1u);
  EXPECT_GT(stats.value().total_local_iterations, 0u);
  EXPECT_GT(stats.value().tuples_routed, 0u);
  // Every routed tuple is eventually offered to a Gather.
  EXPECT_EQ(stats.value().merges, stats.value().tuples_routed);
  // 21 vertices chain: 210 tc facts.
  EXPECT_EQ(stats.value().accepts, 210u);
  EXPECT_GT(stats.value().seconds, 0.0);
  EXPECT_NE(stats.value().ToString().find("EvalStats"), std::string::npos);
}

TEST(EngineTest, MaxIterationsAborts) {
  // PageRank with epsilon 0 never converges; the guard must fire.
  DCDatalog db(Opts(2, CoordinationMode::kDws));
  db.options().max_global_iterations = 20;
  db.options().sum_epsilon = 0.0;
  Relation matrix("matrix", Schema::Ints(3));
  matrix.Append({0, 1, WordFromInt(1)});
  matrix.Append({1, 0, WordFromInt(1)});
  db.catalog().Put(std::move(matrix));
  ASSERT_TRUE(db.LoadProgramText(
                    "rank(X, sum<(X, I)>) :- matrix(X, _, _), I = 0.5.\n"
                    "rank(X, sum<(Y, K)>) :- rank(Y, C), matrix(Y, X, D), "
                    "K = 0.85 * (C / D).")
                  .ok());
  auto stats = db.Run();
  ASSERT_FALSE(stats.ok());
  EXPECT_EQ(stats.status().code(), StatusCode::kResourceExhausted);
}

TEST(EngineTest, MultiSccPipeline) {
  // tc feeds reach, which feeds counts — three SCCs evaluated in order.
  DCDatalog db(Opts(3, CoordinationMode::kDws));
  Graph g;
  g.AddEdge(0, 1);
  g.AddEdge(1, 2);
  g.AddEdge(2, 3);
  g.AddEdge(5, 6);
  db.AddGraph(g, "arc");
  ASSERT_TRUE(db.LoadProgramText(
                    "tc(X, Y) :- arc(X, Y).\n"
                    "tc(X, Y) :- tc(X, Z), arc(Z, Y).\n"
                    "reach(Y) :- tc(0, Y).\n"
                    "total(count<Y>) :- reach(Y).")
                  .ok());
  auto stats = db.Run();
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  EXPECT_EQ(stats.value().num_sccs, 3u);
  EXPECT_EQ(db.ResultFor("reach")->size(), 3u);
  ASSERT_EQ(db.ResultFor("total")->size(), 1u);
  EXPECT_EQ(IntFromWord(db.ResultFor("total")->Row(0)[0]), 3);
}

TEST(EngineTest, StringColumnsEndToEnd) {
  DCDatalog db(Opts(2, CoordinationMode::kDws));
  Relation parent("parent", Schema({{"child", ColumnType::kString},
                                    {"parent", ColumnType::kString}}));
  const uint64_t alice = db.Intern("alice");
  const uint64_t bob = db.Intern("bob");
  const uint64_t carol = db.Intern("carol");
  parent.Append({alice, bob});
  parent.Append({bob, carol});
  db.catalog().Put(std::move(parent));
  ASSERT_TRUE(db.LoadProgramText(
                    "ancestor(X, Y) :- parent(X, Y).\n"
                    "ancestor(X, Y) :- ancestor(X, Z), parent(Z, Y).")
                  .ok());
  ASSERT_TRUE(db.Run().ok());
  auto rows = RowSet(*db.ResultFor("ancestor"));
  EXPECT_EQ(rows.size(), 3u);
  EXPECT_TRUE(rows.count({alice, carol}) > 0);
}

TEST(EngineTest, ConstantInBodyAtomFilters) {
  DCDatalog db(Opts(2, CoordinationMode::kDws));
  Graph g;
  g.AddEdge(0, 1);
  g.AddEdge(1, 2);
  g.AddEdge(7, 8);
  db.AddGraph(g, "arc");
  ASSERT_TRUE(db.LoadProgramText("from_zero(Y) :- arc(0, Y).").ok());
  ASSERT_TRUE(db.Run().ok());
  EXPECT_EQ(db.ResultFor("from_zero")->size(), 1u);
  EXPECT_EQ(db.ResultFor("from_zero")->Row(0)[0], 1u);
}

TEST(EngineTest, RepeatedVariableInAtom) {
  DCDatalog db(Opts(2, CoordinationMode::kDws));
  Graph g;
  g.AddEdge(1, 1);  // Will be dropped by Canonicalize? Build relation raw.
  Relation arc("arc", Schema::Ints(2));
  arc.Append({1, 1});
  arc.Append({1, 2});
  arc.Append({3, 3});
  db.catalog().Put(std::move(arc));
  ASSERT_TRUE(db.LoadProgramText("selfloop(X) :- arc(X, X).").ok());
  ASSERT_TRUE(db.Run().ok());
  auto rows = RowSet(*db.ResultFor("selfloop"));
  EXPECT_EQ(rows, (std::set<std::vector<uint64_t>>{{1}, {3}}));
}

TEST(EngineTest, EmptyBaseRelationYieldsEmptyResults) {
  DCDatalog db(Opts(4, CoordinationMode::kDws));
  db.catalog().Put(Relation("arc", Schema::Ints(2)));
  ASSERT_TRUE(db.LoadProgramText(kTc).ok());
  auto stats = db.Run();
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  EXPECT_EQ(db.ResultFor("tc")->size(), 0u);
}

TEST(EngineTest, RerunReplacesResults) {
  DCDatalog db(Opts(2, CoordinationMode::kDws));
  Graph g;
  g.AddEdge(0, 1);
  db.AddGraph(g, "arc");
  ASSERT_TRUE(db.LoadProgramText(kTc).ok());
  ASSERT_TRUE(db.Run().ok());
  EXPECT_EQ(db.ResultFor("tc")->size(), 1u);
  // Re-running after growing the input reflects the new data.
  Graph g2;
  g2.AddEdge(0, 1);
  g2.AddEdge(1, 2);
  db.AddGraph(g2, "arc");
  ASSERT_TRUE(db.Run().ok());
  EXPECT_EQ(db.ResultFor("tc")->size(), 3u);
}

TEST(EngineTest, RunWithoutProgramFails) {
  DCDatalog db;
  EXPECT_FALSE(db.Run().ok());
  EXPECT_FALSE(db.ExplainLogical().ok());
}

TEST(EngineTest, LoadProgramFileWorks) {
  const std::string path = ::testing::TempDir() + "/prog.dl";
  FILE* f = fopen(path.c_str(), "w");
  fputs(kTc, f);
  fclose(f);
  DCDatalog db(Opts(2, CoordinationMode::kDws));
  Graph g;
  g.AddEdge(0, 1);
  db.AddGraph(g, "arc");
  ASSERT_TRUE(db.LoadProgramFile(path).ok());
  EXPECT_FALSE(db.LoadProgramFile("/nonexistent/x.dl").ok());
  ASSERT_TRUE(db.Run().ok());
  std::remove(path.c_str());
}

TEST(EngineTest, ExplainPlansMentionStructure) {
  DCDatalog db(Opts(2, CoordinationMode::kDws));
  Graph g;
  g.AddEdge(0, 1);
  db.AddGraph(g, "arc");
  ASSERT_TRUE(db.LoadProgramText(kTc).ok());
  auto logical = db.ExplainLogical();
  ASSERT_TRUE(logical.ok());
  EXPECT_NE(logical.value().find("Scan(δtc"), std::string::npos);
  EXPECT_NE(logical.value().find("recursive"), std::string::npos);
  auto physical = db.ExplainPhysical();
  ASSERT_TRUE(physical.ok());
  EXPECT_NE(physical.value().find("replicas"), std::string::npos);
}

TEST(EngineTest, PartialAggregationReducesTraffic) {
  // CC on a dense-ish graph: partial aggregation must fold some tuples.
  DCDatalog db(Opts(3, CoordinationMode::kDws));
  Graph g = GenerateGnp(60, 0.08, 5);
  db.AddGraph(g, "arc");
  ASSERT_TRUE(db.LoadProgramText(
                    "cc2(Y, min<Y>) :- arc(Y, _).\n"
                    "cc2(Y, min<Y>) :- arc(_, Y).\n"
                    "cc2(Y, min<Z>) :- cc2(X, Z), arc(X, Y).\n"
                    "cc2(Y, min<Z>) :- cc2(X, Z), arc(Y, X).")
                  .ok());
  auto stats = db.Run();
  ASSERT_TRUE(stats.ok());
  EXPECT_GT(stats.value().tuples_folded, 0u);
}

TEST(EngineTest, SspSlackRespected) {
  // Just a smoke check that extreme slacks work.
  for (uint32_t slack : {1u, 100u}) {
    DCDatalog db(Opts(4, CoordinationMode::kSsp));
    db.options().ssp_slack = slack;
    Graph g = GenerateGnp(40, 0.06, 99);
    db.AddGraph(g, "arc");
    ASSERT_TRUE(db.LoadProgramText(kTc).ok());
    ASSERT_TRUE(db.Run().ok()) << "slack " << slack;
  }
}

TEST(EngineTest, TinyQueueCapacityStillCompletes) {
  // Exercises the backpressure path heavily.
  DCDatalog db(Opts(4, CoordinationMode::kDws));
  db.options().spsc_capacity = 2;  // Engine clamps to a tiny ring.
  Graph g = GenerateGnp(50, 0.05, 3);
  db.AddGraph(g, "arc");
  ASSERT_TRUE(db.LoadProgramText(kTc).ok());
  auto stats = db.Run();
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();

  DCDatalog oracle(Opts(1, CoordinationMode::kGlobal));
  oracle.AddGraph(g, "arc");
  ASSERT_TRUE(oracle.LoadProgramText(kTc).ok());
  ASSERT_TRUE(oracle.Run().ok());
  EXPECT_EQ(RowSet(*db.ResultFor("tc")), RowSet(*oracle.ResultFor("tc")));
}

TEST(EngineTest, TraceEventsCoverRun) {
  EngineOptions opts = Opts(3, CoordinationMode::kGlobal);
  opts.enable_trace = true;
  DCDatalog db(opts);
  Graph g = GenerateGnp(40, 0.06, 5);
  db.AddGraph(g, "arc");
  ASSERT_TRUE(db.LoadProgramText(kTc).ok());
  auto stats = db.Run();
  ASSERT_TRUE(stats.ok());
  const auto& trace = stats.value().trace;
  ASSERT_FALSE(trace.empty());
  bool saw_iteration = false, saw_barrier = false, saw_drain = false;
  std::set<uint32_t> workers;
  std::set<uint32_t> scc_begins;
  for (const TraceEvent& ev : trace) {
    EXPECT_LE(ev.start_ns, ev.end_ns);
    if (!TraceEventIsSpan(ev.kind)) {
      EXPECT_EQ(ev.start_ns, ev.end_ns);
    }
    workers.insert(ev.worker);
    saw_iteration |= ev.kind == TraceEventKind::kIteration;
    saw_barrier |= ev.kind == TraceEventKind::kBarrierWait;
    saw_drain |= ev.kind == TraceEventKind::kDrain;
    if (ev.kind == TraceEventKind::kSccBegin) scc_begins.insert(ev.worker);
  }
  EXPECT_TRUE(saw_iteration);
  EXPECT_TRUE(saw_barrier);  // Global always parks someone at a barrier.
  EXPECT_TRUE(saw_drain);
  EXPECT_EQ(workers.size(), 3u);
  EXPECT_EQ(scc_begins.size(), 3u);  // Every worker marks SCC entry.

  // Tracing off → no events, and no drop accounting.
  opts.enable_trace = false;
  DCDatalog db2(opts);
  db2.AddGraph(g, "arc");
  ASSERT_TRUE(db2.LoadProgramText(kTc).ok());
  auto stats2 = db2.Run();
  ASSERT_TRUE(stats2.ok());
  EXPECT_TRUE(stats2.value().trace.empty());
  EXPECT_EQ(stats2.value().trace_dropped, 0u);
}

TEST(EngineTest, DwsTraceCarriesDecisionTelemetry) {
  EngineOptions opts = Opts(3, CoordinationMode::kDws);
  opts.enable_trace = true;
  DCDatalog db(opts);
  Graph g = GenerateGnp(60, 0.05, 6);
  db.AddGraph(g, "arc");
  ASSERT_TRUE(db.LoadProgramText(kTc).ok());
  auto stats = db.Run();
  ASSERT_TRUE(stats.ok());
  size_t decisions = 0;
  for (const TraceEvent& ev : stats.value().trace) {
    if (ev.kind != TraceEventKind::kDwsDecision) continue;
    ++decisions;
    // Model state must be finite; the controller clamps omega and tau.
    EXPECT_GE(ev.omega, 0.0);
    EXPECT_LE(ev.omega, DwsController::kMaxOmega);
    EXPECT_GE(ev.tau_ns, 0);
    EXPECT_TRUE(std::isfinite(ev.rho));
    EXPECT_TRUE(std::isfinite(ev.lambda));
    EXPECT_TRUE(std::isfinite(ev.mu));
  }
  // Every DWS local iteration is preceded by exactly one Update → there
  // are as many decisions as iterations (modulo ring overwrite, absent
  // here at default capacity).
  EXPECT_GT(decisions, 0u);
}

TEST(EngineTest, TinyTraceRingDropsOldestButCounts) {
  EngineOptions opts = Opts(2, CoordinationMode::kGlobal);
  opts.enable_trace = true;
  opts.trace_ring_capacity = 4;  // Force overwrite on any real run.
  DCDatalog db(opts);
  Graph g = GenerateGnp(50, 0.06, 8);
  db.AddGraph(g, "arc");
  ASSERT_TRUE(db.LoadProgramText(kTc).ok());
  auto stats = db.Run();
  ASSERT_TRUE(stats.ok());
  EXPECT_GT(stats.value().trace_dropped, 0u);
  // Survivors: at most capacity per worker per SCC.
  EXPECT_LE(stats.value().trace.size(),
            4u * 2u * stats.value().num_sccs);
  // The latest events survive — every worker's kSccEnd must be present.
  std::set<uint32_t> enders;
  for (const TraceEvent& ev : stats.value().trace) {
    if (ev.kind == TraceEventKind::kSccEnd) enders.insert(ev.worker);
  }
  EXPECT_EQ(enders.size(), 2u);
}

TEST(EngineTest, WorkerMetricsAlwaysPopulated) {
  // Histograms are collected even with tracing off.
  DCDatalog db(Opts(2, CoordinationMode::kDws));
  Graph g = GenerateGnp(40, 0.06, 11);
  db.AddGraph(g, "arc");
  ASSERT_TRUE(db.LoadProgramText(kTc).ok());
  auto stats = db.Run();
  ASSERT_TRUE(stats.ok());
  ASSERT_EQ(stats.value().worker_metrics.size(), 2u);
  uint64_t iterations = 0;
  for (const WorkerMetrics& wm : stats.value().worker_metrics) {
    iterations += wm.iteration_ns.count();
    EXPECT_LE(wm.iteration_ns.Quantile(0.5), wm.iteration_ns.Quantile(0.99));
  }
  EXPECT_EQ(iterations, stats.value().total_local_iterations);
}

TEST(EngineTest, ToStringCoversEveryCounter) {
  // Stamp a distinct sentinel into every public counter field, then check
  // each sentinel surfaces in ToString(). Catches the class of bug where a
  // counter is added to the struct but forgotten in the formatter (which
  // happened to tuples_emitted). When adding a counter: struct, Counters(),
  // and this sentinel list.
  EvalStats s;
  s.seconds = 101.5;
  s.num_sccs = 102;
  s.total_local_iterations = 103;
  s.max_local_iterations = 104;
  s.tuples_routed = 105;
  s.tuples_folded = 106;
  s.tuples_emitted = 107;
  s.blocks_sent = 108;
  s.self_loop_tuples = 109;
  s.merges = 110;
  s.accepts = 111;
  s.cache_hits = 112;
  s.merge_probe_cmps = 115;
  s.pipeline_batches = 116;
  s.pipeline_rows_selected = 117;
  s.idle_wait_seconds = 113.25;
  s.trace_dropped = 114;
  s.update_batches = 118;
  s.delta_tuples_in = 119;
  s.rederived_tuples = 120;
  s.morsels_published = 121;
  s.morsels_stolen = 122;
  s.tuples_stolen = 123;
  s.pool_fallback_gangs = 124;
  const std::string str = s.ToString();
  const auto counters = s.Counters();
  ASSERT_EQ(counters.size(), 24u)
      << "EvalStats grew a field: stamp it above and list it in Counters()";
  std::set<double> sentinels;
  for (const auto& [name, value] : counters) {
    EXPECT_NE(str.find(name), std::string::npos)
        << "counter missing from ToString: " << name;
    sentinels.insert(value);
  }
  // All 24 sentinels distinct → every field is wired to its own name, not
  // copy-pasted from a neighbour.
  EXPECT_EQ(sentinels.size(), 24u);
  EXPECT_NE(str.find("tuples_emitted"), std::string::npos);
  EXPECT_NE(str.find("107"), std::string::npos);
}

// ---------------------------------------------------------------------------
// Executor ablation: every correctness scenario below runs under both the
// batch-at-a-time executor (default) and the tuple-at-a-time baseline, the
// same way RecursiveTableModes parameterizes the merge-index backends.

/// How a parameterized run reaches its fixpoint: one from-scratch Run(), or
/// an incremental session seeded with half the EDB whose second half
/// arrives as a streaming update batch. Both must produce identical rows.
enum class EvalMode { kScratch, kIncrementalSplit };

class EnginePipelines
    : public ::testing::TestWithParam<std::tuple<PipelineExecutor, EvalMode>> {
 protected:
  EngineOptions POpts(uint32_t workers, CoordinationMode mode) const {
    EngineOptions o = Opts(workers, mode);
    o.pipeline_executor = std::get<0>(GetParam());
    return o;
  }

  EvalMode Mode() const { return std::get<1>(GetParam()); }

  // Runs `program` over `g` loaded as "arc" and returns `pred`'s rows.
  std::set<std::vector<uint64_t>> RunRows(const EngineOptions& o,
                                          const Graph& g,
                                          const std::string& program,
                                          const std::string& pred) {
    DCDatalog db(o);
    if (Mode() == EvalMode::kScratch) {
      db.AddGraph(g, "arc");
      EXPECT_TRUE(db.LoadProgramText(program).ok());
      auto stats = db.Run();
      EXPECT_TRUE(stats.ok()) << stats.status().ToString();
      if (!stats.ok()) return {};
    } else {
      // Seed with the first half of the edges, reach fixpoint, then stream
      // in the second half as one update batch.
      const std::vector<Edge>& edges = g.edges();
      const size_t half = edges.size() / 2;
      Graph seed;
      for (size_t i = 0; i < half; ++i) {
        seed.AddEdge(edges[i].src, edges[i].dst);
      }
      db.AddGraph(seed, "arc");
      EXPECT_TRUE(db.LoadProgramText(program).ok());
      auto begin = db.BeginIncremental();
      EXPECT_TRUE(begin.ok()) << begin.status().ToString();
      if (!begin.ok()) return {};
      UpdateBatch batch;
      for (size_t i = half; i < edges.size(); ++i) {
        batch.ops.push_back(UpdateOp{true, "arc",
                                     {std::to_string(edges[i].src),
                                      std::to_string(edges[i].dst)}});
      }
      auto stats = db.ApplyUpdates(batch);
      EXPECT_TRUE(stats.ok()) << stats.status().ToString();
      if (!stats.ok()) return {};
    }
    return RowSet(*db.ResultFor(pred));
  }

  // Single-worker tuple-executor from-scratch run — the oracle every
  // (executor, eval-mode) combination must match.
  std::set<std::vector<uint64_t>> OracleRows(const Graph& g,
                                             const std::string& program,
                                             const std::string& pred) {
    EngineOptions o = Opts(1, CoordinationMode::kGlobal);
    o.pipeline_executor = PipelineExecutor::kTuple;
    DCDatalog db(o);
    db.AddGraph(g, "arc");
    EXPECT_TRUE(db.LoadProgramText(program).ok());
    auto stats = db.Run();
    EXPECT_TRUE(stats.ok()) << stats.status().ToString();
    if (!stats.ok()) return {};
    return RowSet(*db.ResultFor(pred));
  }
};

TEST_P(EnginePipelines, TcMatchesOracleAcrossWorkerCounts) {
  Graph g = GenerateGnp(50, 0.05, 77);
  auto oracle = OracleRows(g, kTc, "tc");
  ASSERT_FALSE(oracle.empty());
  for (CoordinationMode mode : {CoordinationMode::kGlobal,
                                CoordinationMode::kSsp,
                                CoordinationMode::kDws}) {
    for (uint32_t workers : {1, 2, 4}) {
      EXPECT_EQ(RunRows(POpts(workers, mode), g, kTc, "tc"), oracle)
          << workers << " workers, strategy " << static_cast<int>(mode);
    }
  }
}

TEST_P(EnginePipelines, FiltersBindsAndNegationAgree) {
  // Exercises int filters (the batch executor's fast path), arithmetic
  // binds, and both anti-join flavors via negation against a base relation.
  const std::string program =
      "tc(X, Y) :- arc(X, Y).\n"
      "tc(X, Y) :- tc(X, Z), arc(Z, Y).\n"
      "far(X, Y) :- tc(X, Y), Y > 10, X < 40.\n"
      "score(X, S) :- tc(X, Y), S = X * 100 + Y.\n"
      "implied(X, Y) :- tc(X, Y), !arc(X, Y).\n";
  Graph g = GenerateGnp(60, 0.04, 21);
  for (const char* pred : {"far", "score", "implied"}) {
    auto oracle = OracleRows(g, program, pred);
    EXPECT_EQ(RunRows(POpts(3, CoordinationMode::kDws), g, program, pred),
              oracle)
        << pred;
    EXPECT_FALSE(oracle.empty()) << pred;
  }
}

TEST_P(EnginePipelines, AggregatesAgree) {
  const std::string program =
      "tc(X, Y) :- arc(X, Y).\n"
      "tc(X, Y) :- tc(X, Z), arc(Z, Y).\n"
      "best(X, min<Y>) :- tc(X, Y).\n"
      "fanout(X, count<Y>) :- tc(X, Y).\n";
  Graph g = GenerateGnp(40, 0.06, 9);
  for (const char* pred : {"best", "fanout"}) {
    auto oracle = OracleRows(g, program, pred);
    EXPECT_EQ(RunRows(POpts(4, CoordinationMode::kDws), g, program, pred),
              oracle)
        << pred;
    EXPECT_FALSE(oracle.empty()) << pred;
  }
}

TEST_P(EnginePipelines, PipelineCountersTrackExecutor) {
  DCDatalog db(POpts(2, CoordinationMode::kDws));
  Graph g = GenerateGnp(50, 0.05, 77);
  db.AddGraph(g, "arc");
  ASSERT_TRUE(db.LoadProgramText(kTc).ok());
  auto stats = db.Run();
  ASSERT_TRUE(stats.ok());
  if (std::get<0>(GetParam()) == PipelineExecutor::kBatch) {
    EXPECT_GT(stats.value().pipeline_batches, 0u);
    EXPECT_GT(stats.value().pipeline_rows_selected, 0u);
    // Batches are at most kBatchPipelineLanes rows, so there are at least
    // rows / 256 of them; and no batch is counted without admitted rows.
    EXPECT_GE(stats.value().pipeline_rows_selected,
              stats.value().pipeline_batches);
  } else {
    EXPECT_EQ(stats.value().pipeline_batches, 0u);
    EXPECT_EQ(stats.value().pipeline_rows_selected, 0u);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Ablations, EnginePipelines,
    ::testing::Combine(::testing::Values(PipelineExecutor::kBatch,
                                         PipelineExecutor::kTuple),
                       ::testing::Values(EvalMode::kScratch,
                                         EvalMode::kIncrementalSplit)),
    [](const ::testing::TestParamInfo<
        std::tuple<PipelineExecutor, EvalMode>>& info) {
      return std::string(PipelineExecutorName(std::get<0>(info.param))) +
             (std::get<1>(info.param) == EvalMode::kScratch ? "Scratch"
                                                            : "IncSplit");
    });

TEST(EngineTest, OutputsDirectiveSurvivesPlanning) {
  DCDatalog db(Opts(2, CoordinationMode::kDws));
  Graph g;
  g.AddEdge(0, 1);
  db.AddGraph(g, "arc");
  ASSERT_TRUE(
      db.LoadProgramText(std::string(".output tc\n") + kTc).ok());
  ASSERT_TRUE(db.Run().ok());
  EXPECT_NE(db.ResultFor("tc"), nullptr);
}

}  // namespace
}  // namespace dcdatalog
