#ifndef DCDATALOG_TESTS_TEST_UTIL_H_
#define DCDATALOG_TESTS_TEST_UTIL_H_

#include <algorithm>
#include <cmath>
#include <set>
#include <string>
#include <vector>

#include "storage/relation.h"

namespace dcdatalog {
namespace testing_util {

/// Rows of a relation as a sorted set of vectors, for order-insensitive
/// comparison.
inline std::set<std::vector<uint64_t>> RowSet(const Relation& rel) {
  std::set<std::vector<uint64_t>> out;
  for (uint64_t r = 0; r < rel.size(); ++r) {
    TupleRef row = rel.Row(r);
    out.insert(std::vector<uint64_t>(row.data, row.data + row.arity));
  }
  return out;
}

/// Compares two relations whose final column is a double, with tolerance —
/// used for sum-aggregate programs where merge order perturbs low bits.
inline bool ApproxEqualLastDouble(const Relation& a, const Relation& b,
                                  double tol) {
  if (a.size() != b.size() || a.arity() != b.arity()) return false;
  auto key_rows = [](const Relation& rel) {
    std::vector<std::vector<uint64_t>> rows;
    for (uint64_t r = 0; r < rel.size(); ++r) {
      TupleRef row = rel.Row(r);
      rows.emplace_back(row.data, row.data + row.arity);
    }
    std::sort(rows.begin(), rows.end(),
              [](const auto& x, const auto& y) {
                return std::vector<uint64_t>(x.begin(), x.end() - 1) <
                       std::vector<uint64_t>(y.begin(), y.end() - 1);
              });
    return rows;
  };
  auto ra = key_rows(a);
  auto rb = key_rows(b);
  for (size_t i = 0; i < ra.size(); ++i) {
    for (size_t c = 0; c + 1 < ra[i].size(); ++c) {
      if (ra[i][c] != rb[i][c]) return false;
    }
    const double va = DoubleFromWord(ra[i].back());
    const double vb = DoubleFromWord(rb[i].back());
    if (std::fabs(va - vb) > tol) return false;
  }
  return true;
}

}  // namespace testing_util
}  // namespace dcdatalog

#endif  // DCDATALOG_TESTS_TEST_UTIL_H_
