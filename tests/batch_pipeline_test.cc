// Unit tests for the vectorized batch pipeline executor (§5.2): drives
// BatchPipelineRunner directly over planner-compiled base rules and checks
// the selection-vector edge cases against the tuple-at-a-time executor —
// empty batches, batches the filters empty out entirely, and probe fan-out
// larger than one batch from a single driving row.

#include <gtest/gtest.h>

#include <cstdint>
#include <set>
#include <string>
#include <vector>

#include "common/value.h"
#include "datalog/analysis.h"
#include "datalog/parser.h"
#include "planner/logical_plan.h"
#include "planner/physical_plan.h"
#include "runtime/base_index_set.h"
#include "runtime/batch_pipeline.h"
#include "runtime/message.h"
#include "runtime/pipeline.h"
#include "storage/catalog.h"

namespace dcdatalog {
namespace {

/// Collects emitted wire tuples from either executor's sink.
struct Collector {
  const PhysicalRule* rule = nullptr;  // Tuple-sink side only.
  std::multiset<std::vector<uint64_t>> rows;

  static void BatchThunk(void* c, const HeadSpec& head, const uint64_t* wires,
                         uint32_t count, uint32_t wire_arity) {
    EXPECT_EQ(wire_arity, head.agg.wire_arity);
    auto* self = static_cast<Collector*>(c);
    for (uint32_t i = 0; i < count; ++i) {
      const uint64_t* w = wires + static_cast<size_t>(i) * wire_arity;
      self->rows.emplace(w, w + wire_arity);
    }
  }

  static void TupleThunk(void* c, const uint64_t* regs) {
    auto* self = static_cast<Collector*>(c);
    uint64_t wire[kMaxWireWords];
    BuildWireTuple(self->rule->head, regs, wire);
    self->rows.emplace(wire, wire + self->rule->head.agg.wire_arity);
  }
};

class BatchPipelineTest : public ::testing::Test {
 protected:
  /// Compiles `program` against the catalog and caches the single base rule
  /// of the SCC deriving `pred`.
  void Plan(const std::string& program, const std::string& pred) {
    auto p = ParseProgram(program, &dict_);
    ASSERT_TRUE(p.ok()) << p.status().ToString();
    program_ = std::move(p).value();
    auto a = ProgramAnalysis::Analyze(program_, catalog_);
    ASSERT_TRUE(a.ok()) << a.status().ToString();
    auto logical = BuildLogicalPlans(program_, a.value());
    ASSERT_TRUE(logical.ok()) << logical.status().ToString();
    auto physical = BuildPhysicalPlan(program_, a.value(), logical.value());
    ASSERT_TRUE(physical.ok()) << physical.status().ToString();
    plan_ = std::move(physical).value();
    rule_ = nullptr;
    for (const SccPlan& scc : plan_.sccs) {
      for (const std::string& d : scc.derived_preds) {
        if (d == pred) {
          ASSERT_EQ(scc.base_rules.size(), 1u);
          rule_ = &scc.base_rules[0];
        }
      }
    }
    ASSERT_NE(rule_, nullptr) << "no SCC derives " << pred;

    indexes_ = std::make_unique<BaseIndexSet>(plan_.base_indexes);
    for (size_t i = 0; i < plan_.base_indexes.size(); ++i) {
      ASSERT_TRUE(
          indexes_->EnsureBuilt(static_cast<int>(i), catalog_).ok());
    }
    ctx_.catalog = &catalog_;
    ctx_.base_indexes = indexes_.get();
    ctx_.replicas = &no_replicas_;
    regs_.assign(rule_->num_regs, 0);
    ctx_.regs = regs_.data();
    PreparePipeline(*rule_, &ctx_);
  }

  /// Runs the batch executor over every driving-relation row.
  void RunBatchExecutor(Collector* out, BatchPipelineRunner* runner) {
    runner->Begin(*rule_, &ctx_, BatchEmitSink{&Collector::BatchThunk, out});
    const Relation* driving = catalog_.Find(rule_->driving_relation);
    ASSERT_NE(driving, nullptr);
    for (uint64_t r = 0; r < driving->size(); ++r) {
      runner->Push(driving->Row(r));
    }
    runner->Finish();
  }

  /// The oracle: the tuple executor over the same driving rows.
  void RunTupleExecutor(Collector* out) {
    out->rule = rule_;
    const EmitSink emit{&Collector::TupleThunk, out};
    const Relation* driving = catalog_.Find(rule_->driving_relation);
    ASSERT_NE(driving, nullptr);
    for (uint64_t r = 0; r < driving->size(); ++r) {
      RunPipelineForTuple(*rule_, ctx_, driving->Row(r), emit);
    }
  }

  Catalog catalog_;
  StringDict dict_;
  Program program_;
  PhysicalPlan plan_;
  const PhysicalRule* rule_ = nullptr;
  std::unique_ptr<BaseIndexSet> indexes_;
  std::vector<std::unique_ptr<RecursiveTable>> no_replicas_;
  std::vector<uint64_t> regs_;
  PipelineContext ctx_;
};

TEST_F(BatchPipelineTest, EmptyBatchIsANoOp) {
  auto* src = catalog_.Put(Relation("src", Schema::Ints(1)));
  auto* edge = catalog_.Put(Relation("edge", Schema::Ints(2)));
  edge->Append({WordFromInt(0), WordFromInt(1)});
  (void)src;  // Driving relation left empty: Begin + Finish with no Push.
  Plan("out(X, Y) :- src(X), edge(X, Y).", "out");

  Collector got;
  BatchPipelineRunner runner;
  RunBatchExecutor(&got, &runner);
  EXPECT_TRUE(got.rows.empty());
  EXPECT_EQ(runner.batches(), 0u);
  EXPECT_EQ(runner.rows_selected(), 0u);
}

TEST_F(BatchPipelineTest, AllFilteredBatchEmitsNothing) {
  // The filter empties the selection vector mid-pipeline; the steps after
  // it (the probe) and the emission must both be skipped without touching
  // lane state.
  auto* src = catalog_.Put(Relation("src", Schema::Ints(1)));
  auto* edge = catalog_.Put(Relation("edge", Schema::Ints(2)));
  for (int64_t i = 0; i < 100; ++i) {
    src->Append({WordFromInt(i)});
    edge->Append({WordFromInt(i), WordFromInt(i + 1)});
  }
  Plan("out(X, Y) :- src(X), X > 1000000, edge(X, Y).", "out");

  Collector got;
  BatchPipelineRunner runner;
  RunBatchExecutor(&got, &runner);
  EXPECT_TRUE(got.rows.empty());
  // The driving scan admitted every row — the filter, not admission,
  // emptied the batch.
  EXPECT_EQ(runner.rows_selected(), 100u);
  EXPECT_EQ(runner.batches(), 1u);
}

TEST_F(BatchPipelineTest, FanOutLargerThanBatchFromOneProbe) {
  // One driving row probes into 600 matches — more than kBatchPipelineLanes
  // — so the probe must flush the downstream level mid-iteration (twice)
  // and still emit the trailing partial level.
  constexpr int64_t kMatches = 600;
  static_assert(kMatches > static_cast<int64_t>(kBatchPipelineLanes));
  auto* src = catalog_.Put(Relation("src", Schema::Ints(1)));
  auto* edge = catalog_.Put(Relation("edge", Schema::Ints(2)));
  src->Append({WordFromInt(0)});
  for (int64_t i = 0; i < kMatches; ++i) {
    edge->Append({WordFromInt(0), WordFromInt(i)});
  }
  Plan("out(X, Y) :- src(X), edge(X, Y).", "out");
  ASSERT_EQ(rule_->driving_relation, "src");

  Collector got, want;
  BatchPipelineRunner runner;
  RunBatchExecutor(&got, &runner);
  RunTupleExecutor(&want);
  EXPECT_EQ(got.rows.size(), static_cast<size_t>(kMatches));
  EXPECT_EQ(got.rows, want.rows);
  EXPECT_EQ(runner.batches(), 1u);
  EXPECT_EQ(runner.rows_selected(), 1u);
}

TEST_F(BatchPipelineTest, DrivingScanConstChecksGateAdmission) {
  // A constant in the driving atom rejects rows before they occupy lanes:
  // rows_selected counts admissions, not pushes.
  auto* edge = catalog_.Put(Relation("edge", Schema::Ints(2)));
  for (int64_t i = 0; i < 50; ++i) {
    edge->Append({WordFromInt(i % 5), WordFromInt(i)});
  }
  Plan("out(Y) :- edge(3, Y).", "out");
  ASSERT_EQ(rule_->driving_relation, "edge");

  Collector got, want;
  BatchPipelineRunner runner;
  RunBatchExecutor(&got, &runner);
  RunTupleExecutor(&want);
  EXPECT_EQ(got.rows, want.rows);
  EXPECT_EQ(got.rows.size(), 10u);
  EXPECT_EQ(runner.rows_selected(), 10u);
}

TEST_F(BatchPipelineTest, MultiBatchMixedPipelineMatchesTupleExecutor) {
  // > 3 full batches plus a partial one through a filter + bind + probe
  // pipeline; the multisets (not sets — fan-out produces duplicates under
  // projection) must agree exactly with the tuple executor.
  constexpr int64_t kRows = 1000;
  auto* src = catalog_.Put(Relation("src", Schema::Ints(1)));
  auto* edge = catalog_.Put(Relation("edge", Schema::Ints(2)));
  for (int64_t i = 0; i < kRows; ++i) {
    src->Append({WordFromInt(i)});
    edge->Append({WordFromInt(i % 97), WordFromInt(i)});
    edge->Append({WordFromInt(i % 97), WordFromInt(i + 1)});
  }
  Plan("out(X, S) :- src(X), X < 500, edge(X, Y), S = X * 1000 + Y.", "out");
  ASSERT_EQ(rule_->driving_relation, "src");

  Collector got, want;
  BatchPipelineRunner runner;
  RunBatchExecutor(&got, &runner);
  RunTupleExecutor(&want);
  EXPECT_FALSE(got.rows.empty());
  EXPECT_EQ(got.rows, want.rows);
  // 1000 pushed rows all pass the (check-free) driving scan: ceil(1000/256)
  // batches, the last one partial.
  EXPECT_EQ(runner.rows_selected(), static_cast<uint64_t>(kRows));
  EXPECT_EQ(runner.batches(),
            (kRows + kBatchPipelineLanes - 1) / kBatchPipelineLanes);
}

}  // namespace
}  // namespace dcdatalog
