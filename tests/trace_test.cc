// Unit tests for the observability layer: the per-worker trace ring, the
// log-bucket histogram, the checked CLI integer parsers, and the Chrome
// trace / metrics JSON exporters.

#include <gtest/gtest.h>

#include <cstdint>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "common/histogram.h"
#include "common/parse.h"
#include "common/trace.h"
#include "core/dcdatalog.h"
#include "core/trace_export.h"
#include "graph/generators.h"

namespace dcdatalog {
namespace {

TraceEvent Ev(uint64_t seq) {
  TraceEvent ev;
  ev.kind = TraceEventKind::kIteration;
  ev.start_ns = static_cast<int64_t>(seq);
  ev.end_ns = static_cast<int64_t>(seq + 1);
  ev.tuples = seq;
  return ev;
}

TEST(TraceRingTest, DefaultConstructedIsDisabled) {
  TraceRing ring;
  EXPECT_FALSE(ring.enabled());
  ring.Append(Ev(1));  // Must be a no-op, not a crash.
  EXPECT_EQ(ring.appended(), 0u);
  std::vector<TraceEvent> out;
  ring.Snapshot(&out);
  EXPECT_TRUE(out.empty());
}

TEST(TraceRingTest, ZeroCapacityIsDisabled) {
  TraceRing ring(0);
  EXPECT_FALSE(ring.enabled());
}

TEST(TraceRingTest, CapacityRoundsUpToPowerOfTwo) {
  TraceRing ring(5);  // → 8 slots.
  for (uint64_t i = 0; i < 8; ++i) ring.Append(Ev(i));
  EXPECT_EQ(ring.dropped(), 0u);
  ring.Append(Ev(8));
  EXPECT_EQ(ring.dropped(), 1u);
}

TEST(TraceRingTest, SnapshotBelowCapacityKeepsOrder) {
  TraceRing ring(8);
  ASSERT_TRUE(ring.enabled());
  for (uint64_t i = 0; i < 5; ++i) ring.Append(Ev(i));
  std::vector<TraceEvent> out;
  ring.Snapshot(&out);
  ASSERT_EQ(out.size(), 5u);
  for (uint64_t i = 0; i < 5; ++i) EXPECT_EQ(out[i].tuples, i);
  EXPECT_EQ(ring.dropped(), 0u);
}

TEST(TraceRingTest, OverflowDropsOldestKeepsNewest) {
  TraceRing ring(4);
  for (uint64_t i = 0; i < 11; ++i) ring.Append(Ev(i));
  EXPECT_EQ(ring.appended(), 11u);
  EXPECT_EQ(ring.dropped(), 7u);
  std::vector<TraceEvent> out;
  ring.Snapshot(&out);
  ASSERT_EQ(out.size(), 4u);
  // The survivors are the newest four, oldest first.
  for (uint64_t i = 0; i < 4; ++i) EXPECT_EQ(out[i].tuples, 7 + i);
}

TEST(TraceRingTest, SnapshotAppendsToExisting) {
  TraceRing a(4), b(4);
  a.Append(Ev(1));
  b.Append(Ev(2));
  std::vector<TraceEvent> out;
  a.Snapshot(&out);
  b.Snapshot(&out);
  ASSERT_EQ(out.size(), 2u);
  EXPECT_EQ(out[0].tuples, 1u);
  EXPECT_EQ(out[1].tuples, 2u);
}

TEST(TraceVocabularyTest, NamesAndSpanKindsAgree) {
  // Every kind has a distinct non-"unknown" name, and the span/instant
  // split matches the documented vocabulary.
  const TraceEventKind kinds[] = {
      TraceEventKind::kIteration, TraceEventKind::kPark,
      TraceEventKind::kBarrierWait, TraceEventKind::kSspWait,
      TraceEventKind::kDwsWait, TraceEventKind::kDrain,
      TraceEventKind::kBlockPush, TraceEventKind::kSccBegin,
      TraceEventKind::kSccEnd, TraceEventKind::kDwsDecision,
  };
  std::set<std::string> names;
  for (TraceEventKind k : kinds) {
    const std::string name = TraceEventKindName(k);
    EXPECT_NE(name, "unknown");
    names.insert(name);
  }
  EXPECT_EQ(names.size(), 10u);
  EXPECT_TRUE(TraceEventIsSpan(TraceEventKind::kIteration));
  EXPECT_TRUE(TraceEventIsSpan(TraceEventKind::kDwsWait));
  EXPECT_FALSE(TraceEventIsSpan(TraceEventKind::kDwsDecision));
  EXPECT_FALSE(TraceEventIsSpan(TraceEventKind::kDrain));
}

TEST(LogHistogramTest, BucketBoundaries) {
  EXPECT_EQ(LogHistogram::BucketOf(0), 0u);
  EXPECT_EQ(LogHistogram::BucketOf(1), 1u);
  EXPECT_EQ(LogHistogram::BucketOf(2), 2u);
  EXPECT_EQ(LogHistogram::BucketOf(3), 2u);
  EXPECT_EQ(LogHistogram::BucketOf(4), 3u);
  EXPECT_EQ(LogHistogram::BucketOf(UINT64_MAX), 64u);
  EXPECT_EQ(LogHistogram::BucketLowerBound(0), 0u);
  EXPECT_EQ(LogHistogram::BucketLowerBound(1), 1u);
  EXPECT_EQ(LogHistogram::BucketLowerBound(3), 4u);
  // Round-trip: every bucket's lower bound lands in that bucket.
  for (uint32_t b = 1; b < LogHistogram::kBuckets; ++b) {
    EXPECT_EQ(LogHistogram::BucketOf(LogHistogram::BucketLowerBound(b)), b);
  }
}

TEST(LogHistogramTest, MomentsAndQuantiles) {
  LogHistogram h;
  for (uint64_t v : {1u, 1u, 2u, 4u, 100u}) h.Add(v);
  EXPECT_EQ(h.count(), 5u);
  EXPECT_EQ(h.total(), 108u);
  EXPECT_EQ(h.max(), 100u);
  EXPECT_DOUBLE_EQ(h.mean(), 108.0 / 5.0);
  // p0 hits the first bucket (values {1,1}); its upper bound is 1.
  EXPECT_EQ(h.Quantile(0.0), 1u);
  // p99 lands in 100's bucket [64,128): upper bound 127.
  EXPECT_EQ(h.Quantile(0.99), 127u);
  EXPECT_EQ(LogHistogram().Quantile(0.5), 0u);  // Empty → 0.
}

TEST(LogHistogramTest, MergeAndReset) {
  LogHistogram a, b;
  a.Add(3);
  b.Add(1000);
  a.Merge(b);
  EXPECT_EQ(a.count(), 2u);
  EXPECT_EQ(a.total(), 1003u);
  EXPECT_EQ(a.max(), 1000u);
  a.Reset();
  EXPECT_EQ(a.count(), 0u);
  EXPECT_EQ(a.max(), 0u);
}

TEST(ParseCheckedTest, AcceptsPlainIntegers) {
  int64_t v = -1;
  EXPECT_TRUE(ParseInt64Checked("42", 0, 100, &v));
  EXPECT_EQ(v, 42);
  EXPECT_TRUE(ParseInt64Checked("-5", -10, 10, &v));
  EXPECT_EQ(v, -5);
  uint32_t u = 0;
  EXPECT_TRUE(ParseUint32Checked("4096", 1, 4096, &u));
  EXPECT_EQ(u, 4096u);
}

TEST(ParseCheckedTest, RejectsWhatAtoiAccepts) {
  int64_t v = 123;
  EXPECT_FALSE(ParseInt64Checked("", 0, 100, &v));
  EXPECT_FALSE(ParseInt64Checked("12abc", 0, 100, &v));   // Trailing junk.
  EXPECT_FALSE(ParseInt64Checked("abc", 0, 100, &v));     // atoi → 0.
  EXPECT_FALSE(ParseInt64Checked("4 2", 0, 100, &v));
  EXPECT_FALSE(ParseInt64Checked(nullptr, 0, 100, &v));
  EXPECT_EQ(v, 123);  // Untouched on failure.

  uint64_t u = 7;
  EXPECT_FALSE(ParseUint64Checked("-1", 0, 100, &u));     // No wrapping.
  EXPECT_FALSE(ParseUint64Checked("1e3", 0, 10000, &u));
  EXPECT_EQ(u, 7u);
}

TEST(ParseCheckedTest, RejectsStrtolLeniencies) {
  // strtoll itself skips leading whitespace and accepts an explicit '+';
  // a flag value is a typed-out number, so both must fail like any other
  // malformed token (and trailing whitespace was already trailing junk).
  int64_t v = 123;
  EXPECT_FALSE(ParseInt64Checked(" 5", 0, 100, &v));
  EXPECT_FALSE(ParseInt64Checked("+5", 0, 100, &v));
  EXPECT_FALSE(ParseInt64Checked("5 ", 0, 100, &v));
  EXPECT_FALSE(ParseInt64Checked("\t5", 0, 100, &v));
  EXPECT_FALSE(ParseInt64Checked(" -5", -10, 10, &v));
  EXPECT_EQ(v, 123);  // Untouched on failure.

  uint64_t u = 7;
  EXPECT_FALSE(ParseUint64Checked(" 5", 0, 100, &u));
  EXPECT_FALSE(ParseUint64Checked("+5", 0, 100, &u));
  EXPECT_FALSE(ParseUint64Checked("5 ", 0, 100, &u));
  EXPECT_FALSE(ParseUint64Checked("\n5", 0, 100, &u));
  EXPECT_EQ(u, 7u);

  uint32_t u32 = 9;
  EXPECT_FALSE(ParseUint32Checked(" 4", 1, 4096, &u32));
  EXPECT_FALSE(ParseUint32Checked("+4", 1, 4096, &u32));
  EXPECT_EQ(u32, 9u);
}

TEST(ParseCheckedTest, RangeAndOverflow) {
  int64_t v = 0;
  EXPECT_FALSE(ParseInt64Checked("101", 0, 100, &v));
  EXPECT_FALSE(ParseInt64Checked("-1", 0, 100, &v));
  EXPECT_FALSE(ParseInt64Checked("99999999999999999999999", 0,
                                 INT64_MAX, &v));  // ERANGE.
  uint32_t u = 0;
  EXPECT_FALSE(ParseUint32Checked("0", 1, 4096, &u));
  EXPECT_TRUE(ParseUint32Checked("1", 1, 4096, &u));
}

// --- Exporters ------------------------------------------------------------

EvalStats TracedRun(CoordinationMode mode) {
  EngineOptions opts;
  opts.num_workers = 2;
  opts.coordination = mode;
  opts.enable_trace = true;
  DCDatalog db(opts);
  Graph g = GenerateGnp(40, 0.06, 21);
  db.AddGraph(g, "arc");
  EXPECT_TRUE(db.LoadProgramText("tc(X, Y) :- arc(X, Y).\n"
                                 "tc(X, Y) :- tc(X, Z), arc(Z, Y).\n")
                  .ok());
  auto stats = db.Run();
  EXPECT_TRUE(stats.ok());
  return std::move(stats).value();
}

TEST(TraceExportTest, ChromeTraceHasTracksSpansAndDecisions) {
  const EvalStats stats = TracedRun(CoordinationMode::kDws);
  std::ostringstream os;
  WriteChromeTrace(stats, os);
  const std::string json = os.str();
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  // One thread_name metadata record per worker.
  EXPECT_NE(json.find("\"worker 0\""), std::string::npos);
  EXPECT_NE(json.find("\"worker 1\""), std::string::npos);
  // Spans and instants in Chrome phase vocabulary.
  EXPECT_NE(json.find("\"ph\": \"X\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\": \"i\""), std::string::npos);
  // DWS decision markers carry the model state.
  EXPECT_NE(json.find("\"dws_decision\""), std::string::npos);
  EXPECT_NE(json.find("\"omega\""), std::string::npos);
  EXPECT_NE(json.find("\"rho\""), std::string::npos);
  // No raw-nanosecond timestamps leak through unnormalized (ts is relative
  // to the run start, so it must not require 19 digits).
  EXPECT_EQ(json.find("Infinity"), std::string::npos);
  EXPECT_EQ(json.find("nan"), std::string::npos);
}

TEST(TraceExportTest, MetricsJsonCoversCountersAndHistograms) {
  const EvalStats stats = TracedRun(CoordinationMode::kGlobal);
  std::ostringstream os;
  WriteMetricsJson(stats, os);
  const std::string json = os.str();
  // Every Counters() entry appears by name — including the once-missing
  // tuples_emitted.
  for (const auto& [name, value] : stats.Counters()) {
    (void)value;
    EXPECT_NE(json.find(std::string("\"") + name + "\""), std::string::npos)
        << name;
  }
  EXPECT_NE(json.find("\"iteration_ns\""), std::string::npos);
  EXPECT_NE(json.find("\"drain_batch\""), std::string::npos);
  EXPECT_NE(json.find("\"p99\""), std::string::npos);
  EXPECT_NE(json.find("\"buckets\""), std::string::npos);
}

TEST(TraceExportTest, FileWritersFailLoudlyOnBadPath) {
  const EvalStats stats;  // Empty stats are fine to serialize.
  EXPECT_FALSE(
      WriteChromeTraceFile(stats, "/nonexistent-dir/trace.json").ok());
  EXPECT_FALSE(
      WriteMetricsJsonFile(stats, "/nonexistent-dir/metrics.json").ok());
}

TEST(TraceExportTest, EmptyTraceStillParses) {
  const EvalStats stats;
  std::ostringstream os;
  WriteChromeTrace(stats, os);
  EXPECT_NE(os.str().find("\"traceEvents\": ["), std::string::npos);
  std::ostringstream ms;
  WriteMetricsJson(stats, ms);
  EXPECT_NE(ms.str().find("\"workers\": ["), std::string::npos);
}

}  // namespace
}  // namespace dcdatalog
