// Unit and end-to-end tests of the resident serving layer: the shared
// gang-scheduled WorkerPool, the copy-on-write EdbStore, the admission
// controller's decision trace, per-session stats/trace isolation, and the
// HTTP front end.

#include <gtest/gtest.h>

#include <atomic>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "concurrent/worker_pool.h"
#include "server/admission.h"
#include "server/edb_store.h"
#include "server/http.h"
#include "server/server.h"
#include "storage/updates.h"
#include "tests/test_util.h"

namespace dcdatalog {
namespace {

using testing_util::RowSet;

constexpr char kTc[] =
    "tc(X, Y) :- arc(X, Y).\n"
    "tc(X, Y) :- tc(X, Z), arc(Z, Y).\n"
    ".output tc\n";

Relation ChainArc(const std::string& name, uint64_t n) {
  Relation rel(name, Schema::Ints(2));
  for (uint64_t i = 0; i < n; ++i) rel.Append({i, i + 1});
  return rel;
}

UpdateBatch Batch(const std::string& text) {
  auto script = ParseUpdateScript(text);
  EXPECT_TRUE(script.ok()) << script.status().ToString();
  EXPECT_EQ(script.value().batches.size(), 1u);
  return script.value().batches[0];
}

// --- WorkerPool ------------------------------------------------------------

TEST(WorkerPoolTest, RunsEveryWorkerExactlyOnce) {
  WorkerPool pool(4);
  std::vector<std::atomic<int>> hits(4);
  for (auto& h : hits) h.store(0);
  pool.Run(4, [&](uint32_t wid) {
    hits[wid].fetch_add(1, std::memory_order_relaxed);
  });
  for (const auto& h : hits) EXPECT_EQ(h.load(std::memory_order_relaxed), 1);
  EXPECT_EQ(pool.JobsRun(), 1u);
  EXPECT_EQ(pool.InUse(), 0u);
}

TEST(WorkerPoolTest, GangMembersRunConcurrently) {
  // The engine's workers synchronize with each other mid-run (barriers,
  // termination detection), so a grant that dispatched fewer than the full
  // gang would deadlock. Prove all n members are live at once by making
  // them rendezvous.
  WorkerPool pool(4);
  std::atomic<uint32_t> arrived{0};
  pool.Run(4, [&](uint32_t) {
    arrived.fetch_add(1, std::memory_order_acq_rel);
    while (arrived.load(std::memory_order_acquire) < 4) {
      std::this_thread::yield();
    }
  });
  EXPECT_EQ(arrived.load(std::memory_order_relaxed), 4u);
}

TEST(WorkerPoolTest, ConcurrentGangsShareTheCapacity) {
  WorkerPool pool(4);
  std::atomic<uint64_t> total{0};
  std::vector<std::thread> clients;
  clients.reserve(8);
  for (int c = 0; c < 8; ++c) {
    clients.emplace_back([&pool, &total] {
      for (int j = 0; j < 5; ++j) {
        pool.Run(2, [&total](uint32_t) {
          total.fetch_add(1, std::memory_order_relaxed);
        });
      }
    });
  }
  for (auto& t : clients) t.join();
  EXPECT_EQ(total.load(std::memory_order_relaxed), 8u * 5u * 2u);
  EXPECT_EQ(pool.JobsRun(), 40u);
  EXPECT_EQ(pool.InUse(), 0u);
}

TEST(WorkerPoolTest, PropagatesFirstWorkerException) {
  WorkerPool pool(3);
  EXPECT_THROW(
      pool.Run(3,
               [](uint32_t wid) {
                 if (wid == 1) throw std::runtime_error("boom");
               }),
      std::runtime_error);
  // Slots are released even on the exception path.
  EXPECT_EQ(pool.InUse(), 0u);
  pool.Run(3, [](uint32_t) {});
  EXPECT_EQ(pool.JobsRun(), 2u);
}

TEST(WorkerPoolTest, OversizedGangFallsBackToDedicatedThreads) {
  WorkerPool pool(2);
  std::atomic<uint32_t> ran{0};
  EXPECT_EQ(pool.FallbackGangs(), 0u);
  pool.Run(6, [&](uint32_t) { ran.fetch_add(1, std::memory_order_relaxed); });
  EXPECT_EQ(ran.load(std::memory_order_relaxed), 6u);
  EXPECT_EQ(pool.InUse(), 0u);
  // The dedicated-thread bypass is counted: admission control's ρ and the
  // /metrics fallback_gangs field both build on this (a silent bypass was
  // the bug — threads loading the machine outside every accounting).
  EXPECT_EQ(pool.FallbackGangs(), 1u);
  pool.Run(2, [](uint32_t) {});  // In-capacity gangs leave it untouched.
  EXPECT_EQ(pool.FallbackGangs(), 1u);
}

// --- EdbStore --------------------------------------------------------------

TEST(EdbStoreTest, SnapshotsSurviveConcurrentBatchUpdates) {
  // The bug this pins: an update stream rewriting a relation's rows under
  // a session that snapshotted earlier. Copy-on-write publication must
  // leave the pinned version byte-identical.
  EdbStore store;
  store.PutRelation(ChainArc("arc", 10));
  const uint64_t v1 = store.version();

  Catalog session;
  ASSERT_EQ(store.SnapshotInto(&session), v1);
  const Relation* pinned = session.Find("arc");
  ASSERT_NE(pinned, nullptr);
  const auto before = RowSet(*pinned);
  const uint64_t* data_before = pinned->raw().data();

  auto applied = store.ApplyBatch(Batch("+ arc 100 101\n- arc 0 1\n"));
  ASSERT_TRUE(applied.ok()) << applied.status().ToString();
  EXPECT_EQ(applied.value().version, v1 + 1);
  EXPECT_EQ(applied.value().rows_added, 1u);
  EXPECT_EQ(applied.value().rows_removed, 1u);

  // The pinned relation: same rows, same storage, untouched.
  EXPECT_EQ(RowSet(*session.Find("arc")), before);
  EXPECT_EQ(session.Find("arc")->raw().data(), data_before);

  // A new snapshot sees the post-batch EDB.
  Catalog session2;
  EXPECT_EQ(store.SnapshotInto(&session2), v1 + 1);
  const auto after = RowSet(*session2.Find("arc"));
  EXPECT_EQ(after.count({100, 101}), 1u);
  EXPECT_EQ(after.count({0, 1}), 0u);
  EXPECT_EQ(after.size(), before.size());
}

TEST(EdbStoreTest, ConcurrentReadersAndUpdaterKeepConsistentVersions) {
  EdbStore store;
  store.PutRelation(ChainArc("arc", 50));
  std::atomic<bool> stop{false};

  std::thread updater([&store, &stop] {
    for (uint64_t i = 0; !stop.load(std::memory_order_acquire) && i < 200;
         ++i) {
      const std::string row = std::to_string(1000 + i);
      auto applied =
          store.ApplyBatch(Batch("+ arc " + row + " " + row + "\n"));
      ASSERT_TRUE(applied.ok()) << applied.status().ToString();
    }
  });

  // Readers continuously snapshot and fully scan; TSan (CI) proves the
  // absence of a data race, the size check proves snapshot atomicity
  // (every version has 50 base rows plus one per applied batch).
  std::vector<std::thread> readers;
  for (int r = 0; r < 4; ++r) {
    readers.emplace_back([&store] {
      for (int i = 0; i < 100; ++i) {
        Catalog session;
        store.SnapshotInto(&session);
        const Relation* rel = session.Find("arc");
        ASSERT_NE(rel, nullptr);
        uint64_t sum = 0;
        for (const uint64_t w : rel->raw()) sum += w;
        EXPECT_GE(rel->size(), 50u);
        EXPECT_LE(rel->size(), 250u);
        (void)sum;
      }
    });
  }
  for (auto& t : readers) t.join();
  stop.store(true, std::memory_order_release);
  updater.join();
}

TEST(EdbStoreTest, RejectsMalformedBatchesAtomically) {
  EdbStore store;
  store.PutRelation(ChainArc("arc", 5));
  const uint64_t v = store.version();
  EXPECT_FALSE(store.ApplyBatch(Batch("+ nosuch 1 2\n")).ok());
  EXPECT_FALSE(store.ApplyBatch(Batch("+ arc 1\n")).ok());  // Arity.
  EXPECT_EQ(store.version(), v);  // Nothing published.
}

// --- AdmissionController ---------------------------------------------------

TEST(AdmissionTest, DecisionsCarryQueueingStateAndLandInTrace) {
  AdmissionController ac(4, 64);
  AdmissionDecision d1 = ac.OnArrival(3);
  EXPECT_TRUE(d1.admitted);
  EXPECT_DOUBLE_EQ(d1.rho, 0.75);

  AdmissionDecision d2 = ac.OnArrival(3);  // 6 > 4: queued.
  EXPECT_FALSE(d2.admitted);
  EXPECT_GT(d2.rho, 1.0);
  EXPECT_GT(d2.lambda, 0.0);  // Two arrivals → an interarrival sample.

  ac.OnComplete(3, 0.5);
  ac.OnComplete(3, 0.25);
  EXPECT_GT(ac.mu_rate(), 0.0);
  EXPECT_DOUBLE_EQ(ac.rho(), 0.0);
  EXPECT_EQ(ac.admitted_count(), 1u);
  EXPECT_EQ(ac.queued_count(), 1u);

  const std::vector<TraceEvent> trace = ac.TraceSnapshot();
  ASSERT_EQ(trace.size(), 2u);
  EXPECT_EQ(trace[0].kind, TraceEventKind::kAdmission);
  EXPECT_TRUE(trace[0].proceed);
  EXPECT_FALSE(trace[1].proceed);
  EXPECT_DOUBLE_EQ(trace[0].rho, 0.75);
  EXPECT_FALSE(TraceEventIsSpan(TraceEventKind::kAdmission));
  EXPECT_STREQ(TraceEventKindName(TraceEventKind::kAdmission), "admission");
}

// --- DcdServer sessions ----------------------------------------------------

ServerOptions SmallServer(uint32_t pool = 4, uint32_t workers = 2) {
  ServerOptions so;
  so.pool_capacity = pool;
  so.engine.num_workers = workers;
  return so;
}

TEST(DcdServerTest, OversizedSessionIsCountedNotClamped) {
  // A session asking for more workers than the pool holds runs on fallback
  // threads. Those threads load the machine, so the request must flow into
  // admission's ρ numerator unclamped, the engine's EvalStats must flag the
  // bypass, and /metrics must name the culprit via fallback_gangs.
  DcdServer server(SmallServer(/*pool=*/2));
  server.store()->PutRelation(ChainArc("arc", 6));
  auto result = server.ExecuteQuery(kTc, /*num_workers=*/4);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result.value().outputs[0].size(), 21u);
  EXPECT_EQ(result.value().stats.pool_fallback_gangs, 1u);
  EXPECT_EQ(server.pool()->FallbackGangs(), 1u);
  const std::string metrics = server.MetricsJson();
  EXPECT_NE(metrics.find("\"fallback_gangs\": 1"), std::string::npos)
      << metrics;
}

TEST(DcdServerTest, ExecutesQueryOverSnapshot) {
  DcdServer server(SmallServer());
  server.store()->PutRelation(ChainArc("arc", 6));
  auto result = server.ExecuteQuery(kTc);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  ASSERT_EQ(result.value().outputs.size(), 1u);
  EXPECT_EQ(result.value().outputs[0].name(), "tc");
  // Chain of 6 edges: tc = all (i, j) with i < j <= 6 → 21 pairs.
  EXPECT_EQ(result.value().outputs[0].size(), 21u);
  EXPECT_EQ(result.value().stats.num_sccs, 1u);
}

TEST(DcdServerTest, SessionStatsAreIsolatedPerSession) {
  // The per-session sentinel: every session exports its own EvalStats with
  // the full counter set — per session, not aggregated per process. A
  // session's counters must be explainable by its own query alone, even
  // with a bigger session racing it on the shared pool.
  DcdServer server(SmallServer(4, 2));
  server.store()->PutRelation(ChainArc("arc", 40));

  std::vector<QueryResult> results(4);
  std::vector<std::thread> clients;
  for (int c = 0; c < 4; ++c) {
    clients.emplace_back([&server, &results, c] {
      auto r = server.ExecuteQuery(kTc, 2);
      ASSERT_TRUE(r.ok()) << r.status().ToString();
      results[c] = std::move(r).value();
    });
  }
  for (auto& t : clients) t.join();

  for (const QueryResult& qr : results) {
    // The counter vocabulary is pinned: 24 counters per session (the same
    // ones engine_test's sentinel test stamps). A counter added to
    // EvalStats must surface here too — and a session must never report
    // another session's totals.
    EXPECT_EQ(qr.stats.Counters().size(), 24u);
    // 40-edge chain: every session derives exactly the same fixpoint, and
    // accepts counts exactly the fixpoint's tuples — identical across
    // sessions only if nobody's counters bled into anybody else's.
    EXPECT_EQ(qr.stats.accepts, 40u * 41u / 2u);
    // Trace isolation: a 2-worker session's events name workers 0..1 only.
    EXPECT_FALSE(qr.stats.trace.empty());
    for (const TraceEvent& ev : qr.stats.trace) EXPECT_LT(ev.worker, 2u);
    EXPECT_EQ(qr.stats.worker_metrics.size(), 2u);
  }
  // All four sessions really ran on the one pool.
  EXPECT_GE(server.pool()->JobsRun(), 4u);
  EXPECT_EQ(server.admission()->admitted_count() +
                server.admission()->queued_count(),
            4u);
}

TEST(DcdServerTest, SessionExportsAreRetrievableAndWellFormed) {
  DcdServer server(SmallServer());
  server.store()->PutRelation(ChainArc("arc", 5));
  auto result = server.ExecuteQuery(kTc);
  ASSERT_TRUE(result.ok());
  const uint64_t id = result.value().session_id;

  auto metrics = server.SessionMetricsJson(id);
  ASSERT_TRUE(metrics.ok()) << metrics.status().ToString();
  EXPECT_NE(metrics.value().find("\"counters\""), std::string::npos);
  EXPECT_NE(metrics.value().find("\"accepts\""), std::string::npos);

  auto trace = server.SessionTraceJson(id);
  ASSERT_TRUE(trace.ok());
  EXPECT_NE(trace.value().find("\"traceEvents\""), std::string::npos);

  EXPECT_FALSE(server.SessionMetricsJson(id + 999).ok());
}

TEST(DcdServerTest, UpdatesAdvanceVersionWithoutDisturbingSessions) {
  DcdServer server(SmallServer());
  server.store()->PutRelation(ChainArc("arc", 4));
  auto before = server.ExecuteQuery(kTc);
  ASSERT_TRUE(before.ok());
  const uint64_t v_before = before.value().snapshot_version;

  auto applied = server.ApplyUpdateText("+ arc 4 5\n---\n+ arc 5 6\n");
  ASSERT_TRUE(applied.ok()) << applied.status().ToString();
  EXPECT_EQ(applied.value().version, v_before + 2);

  auto after = server.ExecuteQuery(kTc);
  ASSERT_TRUE(after.ok());
  EXPECT_EQ(after.value().snapshot_version, v_before + 2);
  // Chain grew 4 → 6 edges: 10 pairs → 21 pairs.
  EXPECT_EQ(before.value().outputs[0].size(), 10u);
  EXPECT_EQ(after.value().outputs[0].size(), 21u);
}

TEST(DcdServerTest, AdmissionDecisionsObservableInDecisionTrace) {
  DcdServer server(SmallServer(2, 2));
  server.store()->PutRelation(ChainArc("arc", 30));
  std::vector<std::thread> clients;
  for (int c = 0; c < 4; ++c) {
    clients.emplace_back([&server] {
      auto r = server.ExecuteQuery(kTc, 2);
      ASSERT_TRUE(r.ok()) << r.status().ToString();
    });
  }
  for (auto& t : clients) t.join();
  const std::string trace = server.AdmissionTraceJson();
  EXPECT_NE(trace.find("\"admission\""), std::string::npos);
  EXPECT_NE(trace.find("\"rho\""), std::string::npos);
  EXPECT_NE(trace.find("\"lambda\""), std::string::npos);
  EXPECT_NE(trace.find("\"mu\""), std::string::npos);
  EXPECT_EQ(server.admission()->TraceSnapshot().size(), 4u);
}

TEST(DcdServerTest, ParseErrorsFailTheSessionNotTheServer) {
  DcdServer server(SmallServer());
  server.store()->PutRelation(ChainArc("arc", 3));
  EXPECT_FALSE(server.ExecuteQuery("tc(X, Y) :- arc(X Y).\n").ok());
  // The server keeps serving.
  auto ok = server.ExecuteQuery(kTc);
  ASSERT_TRUE(ok.ok()) << ok.status().ToString();
  EXPECT_EQ(ok.value().outputs[0].size(), 6u);
}

// --- HTTP end to end -------------------------------------------------------

/// Minimal test client against 127.0.0.1:port (blocking, Connection:
/// close), mirroring the server's own framing.
std::string HttpRoundTrip(uint16_t port, const std::string& request);

TEST(HttpServerTest, ServesConcurrentRequests) {
  HttpServer http;
  std::atomic<int> calls{0};
  ASSERT_TRUE(http.Start(0, [&calls](const HttpRequest& req) {
                    calls.fetch_add(1, std::memory_order_relaxed);
                    HttpResponse resp;
                    resp.body = req.method + " " + req.path + " q=" +
                                req.QueryParam("q") + " body=" + req.body;
                    return resp;
                  })
                  .ok());
  const uint16_t port = http.port();
  ASSERT_NE(port, 0);

  std::vector<std::thread> clients;
  std::vector<std::string> responses(6);
  for (int c = 0; c < 6; ++c) {
    clients.emplace_back([port, c, &responses] {
      const std::string body = "hello" + std::to_string(c);
      responses[c] = HttpRoundTrip(
          port, "POST /echo?q=" + std::to_string(c) +
                    " HTTP/1.1\r\nHost: x\r\nContent-Length: " +
                    std::to_string(body.size()) + "\r\n\r\n" + body);
    });
  }
  for (auto& t : clients) t.join();
  for (int c = 0; c < 6; ++c) {
    EXPECT_NE(responses[c].find("200 OK"), std::string::npos);
    EXPECT_NE(responses[c].find("q=" + std::to_string(c)), std::string::npos);
    EXPECT_NE(responses[c].find("body=hello" + std::to_string(c)),
              std::string::npos);
  }
  EXPECT_EQ(calls.load(std::memory_order_relaxed), 6);
  http.Stop();
}

TEST(HttpServerTest, EndToEndQueryAgainstDcdServer) {
  DcdServer server(SmallServer());
  server.store()->PutRelation(ChainArc("arc", 5));
  ASSERT_TRUE(server.Start().ok());
  const uint16_t port = server.port();

  const std::string program(kTc);
  const std::string resp = HttpRoundTrip(
      port, "POST /query?workers=2 HTTP/1.1\r\nHost: x\r\nContent-Length: " +
                std::to_string(program.size()) + "\r\n\r\n" + program);
  EXPECT_NE(resp.find("200 OK"), std::string::npos);
  EXPECT_NE(resp.find("\"tc\": 15"), std::string::npos);

  const std::string health =
      HttpRoundTrip(port, "GET /healthz HTTP/1.1\r\nHost: x\r\n\r\n");
  EXPECT_NE(health.find("\"status\": \"ok\""), std::string::npos);

  const std::string missing =
      HttpRoundTrip(port, "GET /nope HTTP/1.1\r\nHost: x\r\n\r\n");
  EXPECT_NE(missing.find("404"), std::string::npos);
  server.Stop();
}

}  // namespace
}  // namespace dcdatalog

// Out of the anonymous namespace so the forward declaration above finds it.
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cstring>

namespace dcdatalog {
namespace {

std::string HttpRoundTrip(uint16_t port, const std::string& request) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return "";
  sockaddr_in addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
    ::close(fd);
    return "";
  }
  size_t sent = 0;
  while (sent < request.size()) {
    const ssize_t n =
        ::send(fd, request.data() + sent, request.size() - sent, 0);
    if (n <= 0) break;
    sent += static_cast<size_t>(n);
  }
  std::string out;
  char buf[4096];
  while (true) {
    const ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
    if (n <= 0) break;
    out.append(buf, static_cast<size_t>(n));
  }
  ::close(fd);
  return out;
}

}  // namespace
}  // namespace dcdatalog
