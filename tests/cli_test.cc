// End-to-end tests of the `dcd` command-line tool: generate a dataset,
// run a program over it, write results, explain plans. The binary path is
// injected by CMake as DCD_CLI_PATH.

#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>

namespace dcdatalog {
namespace {

#ifndef DCD_CLI_PATH
#error "DCD_CLI_PATH must be defined by the build"
#endif

struct CmdResult {
  int exit_code = -1;
  std::string output;  // stdout + stderr merged.
};

CmdResult RunCli(const std::string& args) {
  const std::string cmd = std::string(DCD_CLI_PATH) + " " + args + " 2>&1";
  FILE* pipe = popen(cmd.c_str(), "r");
  CmdResult result;
  if (pipe == nullptr) return result;
  char buf[4096];
  while (fgets(buf, sizeof(buf), pipe) != nullptr) result.output += buf;
  const int status = pclose(pipe);
  result.exit_code = WEXITSTATUS(status);
  return result;
}

std::string TempPath(const char* name) {
  return ::testing::TempDir() + "/" + name;
}

TEST(CliTest, UsageOnBadInvocation) {
  EXPECT_NE(RunCli("").exit_code, 0);
  EXPECT_NE(RunCli("frobnicate x y").exit_code, 0);
  EXPECT_NE(RunCli("run").exit_code, 0);
}

TEST(CliTest, GenerateRunExplainRoundTrip) {
  const std::string edges = TempPath("cli_edges.tsv");
  const std::string program = TempPath("cli_tc.dl");
  const std::string out = TempPath("cli_tc_out.tsv");

  // generate
  CmdResult gen = RunCli("generate rmat:200 " + edges + " --seed 5");
  ASSERT_EQ(gen.exit_code, 0) << gen.output;
  EXPECT_NE(gen.output.find("wrote"), std::string::npos);

  {
    std::ofstream p(program);
    p << "tc(X, Y) :- arc(X, Y).\n"
         "tc(X, Y) :- tc(X, Z), arc(Z, Y).\n";
  }

  // explain
  CmdResult explain =
      RunCli("explain " + program + " --rel arc=" + edges + ":ii");
  ASSERT_EQ(explain.exit_code, 0) << explain.output;
  EXPECT_NE(explain.output.find("physical plan"), std::string::npos);
  EXPECT_NE(explain.output.find("recursive"), std::string::npos);

  // run with --out; arity inferred from the program (no :ii needed).
  CmdResult run = RunCli("run " + program + " --rel arc=" + edges +
                         " --out tc=" + out + " --workers 2 --mode dws "
                         "--stats");
  ASSERT_EQ(run.exit_code, 0) << run.output;
  EXPECT_NE(run.output.find("EvalStats"), std::string::npos);
  std::ifstream result(out);
  ASSERT_TRUE(result.good());
  std::string line;
  uint64_t rows = 0;
  while (std::getline(result, line)) ++rows;
  EXPECT_GT(rows, 0u);

  std::remove(edges.c_str());
  std::remove(program.c_str());
  std::remove(out.c_str());
}

TEST(CliTest, RunReportsParseAndDataErrors) {
  const std::string program = TempPath("cli_bad.dl");
  {
    std::ofstream p(program);
    p << "tc(X, Y) :- arc(X Y).\n";  // Missing comma.
  }
  CmdResult bad = RunCli("run " + program);
  EXPECT_NE(bad.exit_code, 0);
  EXPECT_NE(bad.output.find("ParseError"), std::string::npos);

  {
    std::ofstream p(program);
    p << "tc(X, Y) :- arc(X, Y).\n";
  }
  CmdResult missing =
      RunCli("run " + program + " --rel arc=/no/such/file.tsv:ii");
  EXPECT_NE(missing.exit_code, 0);
  EXPECT_NE(missing.output.find("NotFound"), std::string::npos);
  std::remove(program.c_str());
}

TEST(CliTest, RejectsMalformedNumericFlags) {
  const std::string program = TempPath("cli_flags.dl");
  {
    std::ofstream p(program);
    p << "tc(X, Y) :- arc(X, Y).\n";
  }
  // Each of these used to slip through std::atoi as 0 or a truncated
  // number; all must now fail before any evaluation starts.
  for (const char* flags :
       {"--workers abc", "--workers 2x", "--workers 0", "--workers -3",
        "--workers 999999", "--slack abc", "--slack 0", "--seed 12junk",
        "--weights -1",
        // strtol leniencies the checked parsers must not inherit: leading
        // whitespace, explicit '+', trailing whitespace.
        "--workers=\" 5\"", "--workers=+5", "--workers=\"5 \"",
        "--seed=+1", "--weights=\" 2\""}) {
    CmdResult r = RunCli("run " + program + " " + flags);
    EXPECT_NE(r.exit_code, 0) << flags << ": " << r.output;
    EXPECT_NE(r.output.find("expects"), std::string::npos)
        << flags << " did not fail loudly: " << r.output;
  }
  std::remove(program.c_str());
}

TEST(CliTest, EqualsFormFlagsWork) {
  const std::string edges = TempPath("cli_eq_edges.tsv");
  const std::string program = TempPath("cli_eq.dl");
  ASSERT_EQ(RunCli("generate gnp:100:0.02 " + edges + " --seed=3").exit_code,
            0);
  {
    std::ofstream p(program);
    p << "tc(X, Y) :- arc(X, Y).\n"
         "tc(X, Y) :- tc(X, Z), arc(Z, Y).\n";
  }
  CmdResult run = RunCli("run " + program + " --rel=arc=" + edges +
                         " --workers=2 --mode=dws");
  EXPECT_EQ(run.exit_code, 0) << run.output;
  std::remove(edges.c_str());
  std::remove(program.c_str());
}

TEST(CliTest, TraceAndMetricsExports) {
  const std::string edges = TempPath("cli_trace_edges.tsv");
  const std::string program = TempPath("cli_trace.dl");
  const std::string trace = TempPath("cli_trace.json");
  const std::string metrics = TempPath("cli_metrics.json");
  ASSERT_EQ(RunCli("generate gnp:150:0.02 " + edges + " --seed 9").exit_code,
            0);
  {
    std::ofstream p(program);
    p << "tc(X, Y) :- arc(X, Y).\n"
         "tc(X, Y) :- tc(X, Z), arc(Z, Y).\n";
  }

  // --trace-out implies tracing; no separate enable flag needed.
  CmdResult run = RunCli("run " + program + " --rel arc=" + edges +
                         " --workers 2 --mode dws --trace-out " + trace +
                         " --metrics-out=" + metrics);
  ASSERT_EQ(run.exit_code, 0) << run.output;
  EXPECT_NE(run.output.find("wrote trace"), std::string::npos);
  EXPECT_NE(run.output.find("wrote metrics"), std::string::npos);

  std::stringstream tbuf;
  tbuf << std::ifstream(trace).rdbuf();
  const std::string tjson = tbuf.str();
  EXPECT_NE(tjson.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(tjson.find("\"dws_decision\""), std::string::npos);
  EXPECT_NE(tjson.find("\"worker 1\""), std::string::npos);

  std::stringstream mbuf;
  mbuf << std::ifstream(metrics).rdbuf();
  const std::string mjson = mbuf.str();
  EXPECT_NE(mjson.find("\"tuples_emitted\""), std::string::npos);
  EXPECT_NE(mjson.find("\"iteration_ns\""), std::string::npos);

  // Unwritable destination fails loudly, not silently.
  CmdResult bad = RunCli("run " + program + " --rel arc=" + edges +
                         " --trace-out /no/such/dir/trace.json");
  EXPECT_NE(bad.exit_code, 0);
  EXPECT_NE(bad.output.find("trace"), std::string::npos);

  std::remove(edges.c_str());
  std::remove(program.c_str());
  std::remove(trace.c_str());
  std::remove(metrics.c_str());
}

TEST(CliTest, GeneratorKinds) {
  for (const char* kind :
       {"tree:5", "gnp:200:0.01", "social:300:4", "ntree:400"}) {
    const std::string path = TempPath("cli_gen.tsv");
    CmdResult gen =
        RunCli(std::string("generate ") + kind + " " + path + " --seed 1");
    EXPECT_EQ(gen.exit_code, 0) << kind << ": " << gen.output;
    std::remove(path.c_str());
  }
  EXPECT_NE(RunCli("generate nosuch:1 /tmp/x").exit_code, 0);
}

}  // namespace
}  // namespace dcdatalog
