// Degenerate-input tests through the full parallel engine: empty EDBs,
// self-loop-only graphs, single-worker DWS, and aggregate groups fed by
// duplicate derivations. Each case is diffed against the reference
// interpreter across every coordination mode.

#include <gtest/gtest.h>

#include <set>
#include <vector>

#include "core/dcdatalog.h"
#include "core/reference.h"
#include "graph/generators.h"
#include "tests/test_util.h"

namespace dcdatalog {
namespace {

using testing_util::RowSet;

constexpr CoordinationMode kAllModes[] = {
    CoordinationMode::kGlobal, CoordinationMode::kSsp, CoordinationMode::kDws};

constexpr char kTc[] =
    "tc(X, Y) :- arc(X, Y).\n"
    "tc(X, Y) :- tc(X, Z), arc(Z, Y).\n";

TEST(EdgeCaseTest, EmptyEdbYieldsEmptyResults) {
  // No facts at all: every strategy must still start its workers, detect
  // an immediate fixpoint, and terminate with empty derived relations.
  for (CoordinationMode mode : kAllModes) {
    for (uint32_t workers : {1u, 4u}) {
      EngineOptions options;
      options.coordination = mode;
      options.num_workers = workers;
      DCDatalog db(options);
      db.AddGraph(Graph(), "arc");
      ASSERT_TRUE(db.LoadProgramText(kTc).ok());
      auto stats = db.Run();
      ASSERT_TRUE(stats.ok()) << CoordinationModeName(mode) << " w" << workers
                              << ": " << stats.status().ToString();
      const Relation* tc = db.ResultFor("tc");
      ASSERT_NE(tc, nullptr);
      EXPECT_EQ(tc->size(), 0u)
          << CoordinationModeName(mode) << " w" << workers;
    }
  }
}

TEST(EdgeCaseTest, SelfLoopOnlyGraph) {
  // Every edge is a self loop, so tc is exactly arc and every iteration
  // re-derives the same tuples — a pure dedup/termination workload. (Built
  // by hand: the random generators canonicalize self loops away.)
  Graph g;
  for (uint64_t v = 0; v < 6; ++v) g.AddEdge(v, v);
  const std::set<std::vector<uint64_t>> want = {
      {0, 0}, {1, 1}, {2, 2}, {3, 3}, {4, 4}, {5, 5}};
  for (CoordinationMode mode : kAllModes) {
    EngineOptions options;
    options.coordination = mode;
    options.num_workers = 4;
    DCDatalog db(options);
    db.AddGraph(g, "arc");
    ASSERT_TRUE(db.LoadProgramText(kTc).ok());
    auto stats = db.Run();
    ASSERT_TRUE(stats.ok()) << stats.status().ToString();
    EXPECT_EQ(RowSet(*db.ResultFor("tc")), want) << CoordinationModeName(mode);
  }
}

TEST(EdgeCaseTest, SingleWorkerDws) {
  // DWS with one worker: the delta-work-stealing machinery degenerates to
  // a sequential loop with nobody to steal from or send to — everything
  // must flow through the self-loop bypass.
  Graph g = GenerateGnp(50, 0.08, 0x51D);
  AssignRandomWeights(&g, 20, 0x1E5);
  EngineOptions options;
  options.coordination = CoordinationMode::kDws;
  options.num_workers = 1;
  DCDatalog db(options);
  db.AddGraph(g, "warc", /*weighted=*/true);
  ASSERT_TRUE(
      db.LoadProgramText("sp(T, min<C>) :- T = 0, C = 0.\n"
                         "sp(T2, min<C>) :- sp(T1, C1), warc(T1, T2, C2), "
                         "C = C1 + C2.\n")
          .ok());
  auto stats = db.Run();
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  auto ref = ReferenceEvaluate(*db.program(), db.catalog());
  ASSERT_TRUE(ref.ok());
  EXPECT_EQ(RowSet(*db.ResultFor("sp")), RowSet(ref.value().at("sp")));
}

TEST(EdgeCaseTest, CountGroupWithDuplicateContributors) {
  // The same (group, contributor) pair arrives multiple times — duplicate
  // base rows AND duplicate derivations from two rules. count<> is
  // count-distinct, so every duplicate must collapse before the final
  // tally no matter which workers the copies landed on.
  for (CoordinationMode mode : kAllModes) {
    EngineOptions options;
    options.coordination = mode;
    options.num_workers = 4;
    DCDatalog db(options);
    auto f = db.CreateRelation("f", Schema::Ints(2));
    ASSERT_TRUE(f.ok());
    f.value()->Append({1, 100});
    f.value()->Append({1, 100});  // Duplicate base row.
    f.value()->Append({1, 101});
    f.value()->Append({2, 100});
    ASSERT_TRUE(
        db.LoadProgramText("p(X, Y) :- f(X, Y).\n"
                           "p(X, Y) :- f(X, Y), Y >= 0.\n"  // Re-derives p.
                           "c(X, count<Y>) :- p(X, Y).\n")
            .ok());
    auto stats = db.Run();
    ASSERT_TRUE(stats.ok()) << CoordinationModeName(mode) << ": "
                            << stats.status().ToString();
    const auto rows = RowSet(*db.ResultFor("c"));
    EXPECT_EQ(rows, (std::set<std::vector<uint64_t>>{
                        {1, WordFromInt(2)}, {2, WordFromInt(1)}}))
        << CoordinationModeName(mode);
    auto ref = ReferenceEvaluate(*db.program(), db.catalog());
    ASSERT_TRUE(ref.ok());
    EXPECT_EQ(rows, RowSet(ref.value().at("c")));
  }
}

}  // namespace
}  // namespace dcdatalog
