// Unit tests for src/datalog: lexer, parser, and program analysis (PCG,
// SCCs, recursion classification, safety, aggregates, type inference).

#include <gtest/gtest.h>

#include "datalog/analysis.h"
#include "datalog/lexer.h"
#include "datalog/parser.h"
#include "storage/catalog.h"

namespace dcdatalog {
namespace {

// --- Lexer ---------------------------------------------------------------

TEST(LexerTest, BasicTokens) {
  auto toks = Tokenize("tc(X, Y) :- arc(X, Y).");
  ASSERT_TRUE(toks.ok());
  const auto& t = toks.value();
  ASSERT_EQ(t.size(), 15u);  // Including EOF.
  EXPECT_EQ(t[0].kind, TokenKind::kIdent);
  EXPECT_EQ(t[0].text, "tc");
  EXPECT_EQ(t[2].kind, TokenKind::kVariable);
  EXPECT_EQ(t[6].kind, TokenKind::kImplies);
  EXPECT_EQ(t[13].kind, TokenKind::kDot);
  EXPECT_EQ(t[14].kind, TokenKind::kEof);
}

TEST(LexerTest, NumbersAndRuleDot) {
  // "3." at rule end must lex as INT then DOT, not a float.
  auto toks = Tokenize("p(3).");
  ASSERT_TRUE(toks.ok());
  EXPECT_EQ(toks.value()[2].kind, TokenKind::kInt);
  EXPECT_EQ(toks.value()[2].int_value, 3);
  EXPECT_EQ(toks.value()[4].kind, TokenKind::kDot);

  auto f = Tokenize("p(3.5, 1e3, 2.5e-2).");
  ASSERT_TRUE(f.ok());
  EXPECT_EQ(f.value()[2].kind, TokenKind::kFloat);
  EXPECT_DOUBLE_EQ(f.value()[2].float_value, 3.5);
  EXPECT_EQ(f.value()[4].kind, TokenKind::kFloat);
  EXPECT_DOUBLE_EQ(f.value()[4].float_value, 1000.0);
  EXPECT_DOUBLE_EQ(f.value()[6].float_value, 0.025);
}

TEST(LexerTest, CommentsAndStrings) {
  auto toks = Tokenize(
      "% line comment\n// another\n/* block\ncomment */ p(\"hi\").");
  ASSERT_TRUE(toks.ok());
  EXPECT_EQ(toks.value()[0].text, "p");
  EXPECT_EQ(toks.value()[2].kind, TokenKind::kString);
  EXPECT_EQ(toks.value()[2].text, "hi");
}

TEST(LexerTest, ComparisonOperators) {
  auto toks = Tokenize("X != Y, A <= B, C >= D, E < F, G > H");
  ASSERT_TRUE(toks.ok());
  EXPECT_EQ(toks.value()[1].kind, TokenKind::kNe);
  EXPECT_EQ(toks.value()[5].kind, TokenKind::kLe);
  EXPECT_EQ(toks.value()[9].kind, TokenKind::kGe);
}

TEST(LexerTest, ErrorsAreReported) {
  EXPECT_FALSE(Tokenize("p(X) :- q(X) @").ok());
  EXPECT_FALSE(Tokenize("\"unterminated").ok());
  EXPECT_FALSE(Tokenize("/* unterminated").ok());
  EXPECT_FALSE(Tokenize("p :_ q").ok());
}

TEST(LexerTest, WildcardVsVariable) {
  auto toks = Tokenize("p(_, _Foo, X)");
  ASSERT_TRUE(toks.ok());
  EXPECT_EQ(toks.value()[2].kind, TokenKind::kWildcard);
  EXPECT_EQ(toks.value()[4].kind, TokenKind::kVariable);  // _Foo
}

// --- Parser --------------------------------------------------------------

TEST(ParserTest, SimpleRuleStructure) {
  StringDict dict;
  auto p = ParseProgram("tc(X, Y) :- tc(X, Z), arc(Z, Y).", &dict);
  ASSERT_TRUE(p.ok());
  ASSERT_EQ(p.value().rules.size(), 1u);
  const Rule& r = p.value().rules[0];
  EXPECT_EQ(r.head.predicate, "tc");
  EXPECT_EQ(r.body.size(), 2u);
  EXPECT_EQ(r.NumAtoms(), 2u);
}

TEST(ParserTest, FactAndDirectives) {
  StringDict dict;
  auto p = ParseProgram(".input arc\n.output tc\narc(1, 2).", &dict);
  ASSERT_TRUE(p.ok());
  EXPECT_EQ(p.value().inputs, std::vector<std::string>{"arc"});
  EXPECT_EQ(p.value().outputs, std::vector<std::string>{"tc"});
  EXPECT_TRUE(p.value().rules[0].body.empty());
}

TEST(ParserTest, AggregateHeads) {
  StringDict dict;
  auto p = ParseProgram(
      "sp(T, min<C>) :- sp(F, C1), warc(F, T, C2), C = C1 + C2.\n"
      "d(P, max<D>) :- b(P, D).\n"
      "cnt(Y, count<X>) :- a(X), f(Y, X).\n"
      "rank(X, sum<(Y, K)>) :- rank(Y, C), m(Y, X, D), K = 0.85 * (C / D).",
      &dict);
  ASSERT_TRUE(p.ok()) << p.status().ToString();
  const auto& rules = p.value().rules;
  EXPECT_EQ(rules[0].head.args[1].agg, AggFunc::kMin);
  EXPECT_EQ(rules[1].head.args[1].agg, AggFunc::kMax);
  EXPECT_EQ(rules[2].head.args[1].agg, AggFunc::kCount);
  EXPECT_EQ(rules[3].head.args[1].agg, AggFunc::kSum);
  EXPECT_EQ(rules[3].head.args[1].terms.size(), 2u);
  EXPECT_TRUE(rules[0].head.HasAggregate());
}

TEST(ParserTest, ConstraintsAndArithmetic) {
  StringDict dict;
  auto p = ParseProgram("q(X, C) :- p(X, A, B), X != A, C = (A + B) * 2.",
                        &dict);
  ASSERT_TRUE(p.ok());
  const Rule& r = p.value().rules[0];
  ASSERT_EQ(r.body.size(), 3u);
  EXPECT_EQ(r.body[1].kind, BodyLiteral::Kind::kConstraint);
  EXPECT_EQ(r.body[1].constraint.op, CmpOp::kNe);
  EXPECT_EQ(r.body[2].constraint.ToString(), "C = ((A + B) * 2)");
}

TEST(ParserTest, NegativeConstantsAndStrings) {
  StringDict dict;
  auto p = ParseProgram("p(-3, \"alice\", -2.5).", &dict);
  ASSERT_TRUE(p.ok());
  const auto& args = p.value().rules[0].head.args;
  EXPECT_EQ(IntFromWord(args[0].term().constant.word), -3);
  EXPECT_EQ(args[1].term().constant.type, ColumnType::kString);
  EXPECT_EQ(dict.Get(args[1].term().constant.word), "alice");
  EXPECT_DOUBLE_EQ(DoubleFromWord(args[2].term().constant.word), -2.5);
}

TEST(ParserTest, Errors) {
  StringDict dict;
  EXPECT_FALSE(ParseProgram("p(X) :- q(X)", &dict).ok());   // Missing dot.
  EXPECT_FALSE(ParseProgram("p(X) q(X).", &dict).ok());     // Missing :-.
  EXPECT_FALSE(ParseProgram("p(min<A, B>) :- q(A, B).", &dict).ok());
  EXPECT_FALSE(ParseProgram("p(sum<A>) :- q(A).", &dict).ok());
  EXPECT_FALSE(ParseProgram(".frobnicate x", &dict).ok());
  EXPECT_FALSE(ParseProgram("p() :- q(X).", &dict).ok());
}

TEST(ParserTest, NegatedAtoms) {
  StringDict dict;
  auto p = ParseProgram("q(X) :- node(X), !visited(X, _).", &dict);
  ASSERT_TRUE(p.ok()) << p.status().ToString();
  const Rule& r = p.value().rules[0];
  ASSERT_EQ(r.body.size(), 2u);
  EXPECT_FALSE(r.body[0].negated);
  EXPECT_TRUE(r.body[1].negated);
  EXPECT_EQ(r.body[1].ToString(), "!visited(X, _)");
  // '!' must be followed by an atom.
  EXPECT_FALSE(ParseProgram("q(X) :- node(X), !X.", &dict).ok());
}

TEST(ParserTest, ProgramToStringRoundTrips) {
  StringDict dict;
  const char* src = "tc(X, Y) :- tc(X, Z), arc(Z, Y).";
  auto p1 = ParseProgram(src, &dict);
  ASSERT_TRUE(p1.ok());
  auto p2 = ParseProgram(p1.value().ToString(), &dict);
  ASSERT_TRUE(p2.ok());
  EXPECT_EQ(p1.value().ToString(), p2.value().ToString());
}

// --- Analysis ------------------------------------------------------------

class AnalysisTest : public ::testing::Test {
 protected:
  AnalysisTest() {
    catalog_.Put(Relation("arc", Schema::Ints(2)));
    catalog_.Put(Relation("warc", Schema::Ints(3)));
    catalog_.Put(Relation("organizer", Schema::Ints(1)));
    catalog_.Put(Relation("friend", Schema::Ints(2)));
  }

  Result<ProgramAnalysis> Analyze(const std::string& src) {
    auto p = ParseProgram(src, &dict_);
    if (!p.ok()) return p.status();
    program_ = std::move(p).value();
    return ProgramAnalysis::Analyze(program_, catalog_);
  }

  Catalog catalog_;
  StringDict dict_;
  Program program_;
};

TEST_F(AnalysisTest, LinearRecursionClassified) {
  auto a = Analyze(
      "tc(X, Y) :- arc(X, Y).\n"
      "tc(X, Y) :- tc(X, Z), arc(Z, Y).");
  ASSERT_TRUE(a.ok()) << a.status().ToString();
  const auto& tc = a.value().predicate("tc");
  EXPECT_TRUE(tc.recursive);
  EXPECT_FALSE(a.value().predicate("arc").recursive);
  const SccInfo& scc = a.value().sccs()[tc.scc_id];
  EXPECT_TRUE(scc.recursive);
  EXPECT_FALSE(scc.mutual);
  EXPECT_FALSE(scc.nonlinear);
  // Rule 0 is base, rule 1 recursive with one recursive goal.
  EXPECT_TRUE(a.value().rule_infos()[0].is_base);
  EXPECT_EQ(a.value().rule_infos()[1].recursive_atoms.size(), 1u);
}

TEST_F(AnalysisTest, NonLinearRecursionClassified) {
  auto a = Analyze(
      "path(A, B, min<D>) :- warc(A, B, D).\n"
      "path(A, B, min<D>) :- path(A, C, D1), path(C, B, D2), D = D1 + D2.");
  ASSERT_TRUE(a.ok());
  const auto& info = a.value().predicate("path");
  EXPECT_TRUE(a.value().sccs()[info.scc_id].nonlinear);
}

TEST_F(AnalysisTest, MutualRecursionClassified) {
  auto a = Analyze(
      "attend(X) :- organizer(X).\n"
      "cnt(Y, count<X>) :- attend(X), friend(Y, X).\n"
      "attend(X) :- cnt(X, N), N >= 3.");
  ASSERT_TRUE(a.ok());
  const auto& attend = a.value().predicate("attend");
  const auto& cnt = a.value().predicate("cnt");
  EXPECT_EQ(attend.scc_id, cnt.scc_id);
  EXPECT_TRUE(a.value().sccs()[attend.scc_id].mutual);
}

TEST_F(AnalysisTest, SccTopologicalOrder) {
  auto a = Analyze(
      "tc(X, Y) :- arc(X, Y).\n"
      "tc(X, Y) :- tc(X, Z), arc(Z, Y).\n"
      "reach2(X) :- tc(0, X).");
  ASSERT_TRUE(a.ok());
  // tc's SCC must come before reach2's.
  EXPECT_LT(a.value().predicate("tc").scc_id,
            a.value().predicate("reach2").scc_id);
}

TEST_F(AnalysisTest, ArityMismatchRejected) {
  auto a = Analyze("p(X) :- arc(X).");
  EXPECT_FALSE(a.ok());
  EXPECT_EQ(a.status().code(), StatusCode::kInvalidArgument);
}

TEST_F(AnalysisTest, MissingBaseRelationRejected) {
  auto a = Analyze("p(X) :- nosuch(X).");
  EXPECT_EQ(a.status().code(), StatusCode::kNotFound);
}

TEST_F(AnalysisTest, UnsafeHeadVariableRejected) {
  auto a = Analyze("p(X, Y) :- arc(X, _).");
  EXPECT_FALSE(a.ok());
  EXPECT_NE(a.status().message().find("Y"), std::string::npos);
}

TEST_F(AnalysisTest, UnsafeConstraintRejected) {
  auto a = Analyze("p(X) :- arc(X, _), Y > 3.");
  EXPECT_FALSE(a.ok());
}

TEST_F(AnalysisTest, AssignmentChainsAreSafe) {
  auto a = Analyze("p(X, C) :- arc(X, Y), A = X + Y, B = A * 2, C = B - 1.");
  EXPECT_TRUE(a.ok()) << a.status().ToString();
}

TEST_F(AnalysisTest, HeadOnlyConstantRuleIsSafe) {
  auto a = Analyze("seed(X, C) :- X = 5, C = 0.\n"
                   "seed(Y, C) :- seed(X, C1), arc(X, Y), C = C1 + 1.");
  EXPECT_TRUE(a.ok()) << a.status().ToString();
}

TEST_F(AnalysisTest, MultipleAggregatesRejected) {
  auto a = Analyze("p(min<X>, max<Y>) :- arc(X, Y).");
  EXPECT_EQ(a.status().code(), StatusCode::kUnsupported);
}

TEST_F(AnalysisTest, AggregateMustBeLastArg) {
  auto a = Analyze("p(min<X>, Y) :- arc(X, Y).");
  EXPECT_EQ(a.status().code(), StatusCode::kUnsupported);
}

TEST_F(AnalysisTest, InconsistentAggregateSignatureRejected) {
  auto a = Analyze(
      "p(X, min<Y>) :- arc(X, Y).\n"
      "p(X, Y) :- arc(Y, X).");
  EXPECT_FALSE(a.ok());
}

TEST_F(AnalysisTest, StratifiedNegationAccepted) {
  auto a = Analyze(
      "tc(X, Y) :- arc(X, Y).\n"
      "tc(X, Y) :- tc(X, Z), arc(Z, Y).\n"
      "node(X) :- arc(X, _).\n"
      "node(X) :- arc(_, X).\n"
      "unreach(X, Y) :- node(X), node(Y), !tc(X, Y).");
  ASSERT_TRUE(a.ok()) << a.status().ToString();
  // unreach's SCC comes after tc's.
  EXPECT_GT(a.value().predicate("unreach").scc_id,
            a.value().predicate("tc").scc_id);
}

TEST_F(AnalysisTest, NegationThroughRecursionRejected) {
  auto a = Analyze(
      "win(X) :- arc(X, Y), !win(Y).");
  EXPECT_EQ(a.status().code(), StatusCode::kUnsupported);
  EXPECT_NE(a.status().message().find("negated"), std::string::npos);
}

TEST_F(AnalysisTest, MutualNegationCycleRejected) {
  auto a = Analyze(
      "p(X) :- arc(X, _), !q(X).\n"
      "q(X) :- arc(X, _), !p(X).");
  EXPECT_EQ(a.status().code(), StatusCode::kUnsupported);
}

TEST_F(AnalysisTest, NegationOnlyVariableRejected) {
  auto a = Analyze("p(X) :- arc(X, _), !arc(X, Y).");
  EXPECT_FALSE(a.ok());
  EXPECT_NE(a.status().message().find("negation"), std::string::npos);
}

TEST_F(AnalysisTest, TypeInferencePropagatesDouble) {
  auto a = Analyze(
      "cost(X, C) :- arc(X, Y), C = Y * 0.5.\n"
      "total(X, sum<(Y, K)>) :- cost(Y, C), arc(Y, X), K = C + 1.");
  ASSERT_TRUE(a.ok()) << a.status().ToString();
  EXPECT_EQ(a.value().predicate("cost").column_types[1],
            ColumnType::kDouble);
  EXPECT_EQ(a.value().predicate("total").column_types[1],
            ColumnType::kDouble);
}

TEST_F(AnalysisTest, IntStaysIntThroughRecursion) {
  auto a = Analyze(
      "sp(T, min<C>) :- T = 0, C = 0.\n"
      "sp(T2, min<C>) :- sp(T1, C1), warc(T1, T2, C2), C = C1 + C2.");
  ASSERT_TRUE(a.ok());
  EXPECT_EQ(a.value().predicate("sp").column_types[1], ColumnType::kInt);
}

TEST_F(AnalysisTest, SchemaOfUsesInferredTypes) {
  auto a = Analyze("half(X, H) :- arc(X, Y), H = Y / 2.0.");
  ASSERT_TRUE(a.ok());
  Schema s = a.value().SchemaOf("half");
  EXPECT_EQ(s.type(0), ColumnType::kInt);
  EXPECT_EQ(s.type(1), ColumnType::kDouble);
}

TEST_F(AnalysisTest, EmptyProgramRejected) {
  auto a = Analyze("");
  EXPECT_FALSE(a.ok());
}

TEST_F(AnalysisTest, InputOutputDirectiveValidation) {
  EXPECT_FALSE(Analyze(".input nothere\np(X) :- arc(X, _).").ok());
  EXPECT_FALSE(Analyze(".output nothere\np(X) :- arc(X, _).").ok());
  EXPECT_FALSE(Analyze(".input p\np(X) :- arc(X, _).").ok());
  EXPECT_TRUE(Analyze(".input arc\n.output p\np(X) :- arc(X, _).").ok());
}

}  // namespace
}  // namespace dcdatalog
