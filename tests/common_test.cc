// Unit tests for src/common: status, hashing, rng, values, dictionary,
// Welford statistics, options.

#include <gtest/gtest.h>

#include <cmath>
#include <set>
#include <thread>
#include <vector>

#include "common/hash.h"
#include "common/numa_topology.h"
#include "common/options.h"
#include "common/random.h"
#include "common/status.h"
#include "common/string_dict.h"
#include "common/value.h"
#include "common/welford.h"

namespace dcdatalog {
namespace {

TEST(StatusTest, OkIsDefault) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::ParseError("bad token");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kParseError);
  EXPECT_EQ(s.ToString(), "ParseError: bad token");
}

TEST(StatusTest, AllCodesHaveNames) {
  for (int c = 0; c <= static_cast<int>(StatusCode::kInternal); ++c) {
    EXPECT_STRNE(StatusCodeName(static_cast<StatusCode>(c)), "Unknown");
  }
}

TEST(ResultTest, ValueRoundTrip) {
  Result<int> r(42);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), 42);
}

TEST(ResultTest, ErrorPropagates) {
  Result<int> r(Status::NotFound("nope"));
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
}

Result<int> Halve(int x) {
  if (x % 2 != 0) return Status::InvalidArgument("odd");
  return x / 2;
}

Result<int> QuarterViaMacro(int x) {
  DCD_ASSIGN_OR_RETURN(int half, Halve(x));
  DCD_ASSIGN_OR_RETURN(int quarter, Halve(half));
  return quarter;
}

TEST(ResultTest, AssignOrReturnMacro) {
  auto ok = QuarterViaMacro(8);
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ(ok.value(), 2);
  EXPECT_FALSE(QuarterViaMacro(6).ok());  // Second halving fails.
}

TEST(HashTest, MixIsInjectiveOnSmallRange) {
  std::set<uint64_t> seen;
  for (uint64_t i = 0; i < 10000; ++i) seen.insert(HashMix64(i));
  EXPECT_EQ(seen.size(), 10000u);
}

TEST(HashTest, PartitionSpreadsSkewedKeys) {
  // Consecutive ids (typical graph vertices) should spread evenly.
  std::vector<int> counts(8, 0);
  for (uint64_t v = 0; v < 8000; ++v) ++counts[PartitionOf(v, 8)];
  for (int c : counts) {
    EXPECT_GT(c, 800);
    EXPECT_LT(c, 1200);
  }
}

TEST(HashTest, HashWordsDependsOnLengthAndContent) {
  uint64_t a[] = {1, 2, 3};
  uint64_t b[] = {1, 2, 4};
  EXPECT_NE(HashWords(a, 3), HashWords(b, 3));
  EXPECT_NE(HashWords(a, 2), HashWords(a, 3));
}

TEST(RngTest, DeterministicForSeed) {
  Rng a(123), b(123), c(124);
  bool same = true, diff = false;
  for (int i = 0; i < 100; ++i) {
    uint64_t x = a.Next();
    same &= (x == b.Next());
    diff |= (x != c.Next());
  }
  EXPECT_TRUE(same);
  EXPECT_TRUE(diff);
}

TEST(RngTest, UniformRangeInclusive) {
  Rng rng(7);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 2000; ++i) {
    int64_t v = rng.UniformRange(2, 6);
    ASSERT_GE(v, 2);
    ASSERT_LE(v, 6);
    saw_lo |= v == 2;
    saw_hi |= v == 6;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(RngTest, DoubleInUnitInterval) {
  Rng rng(9);
  for (int i = 0; i < 1000; ++i) {
    double d = rng.NextDouble();
    ASSERT_GE(d, 0.0);
    ASSERT_LT(d, 1.0);
  }
}

TEST(ValueTest, NumericCrossTypeEquality) {
  EXPECT_EQ(Value::Int(3), Value::Double(3.0));
  EXPECT_NE(Value::Int(3), Value::Double(3.5));
  EXPECT_LT(Value::Int(3), Value::Double(3.5));
  EXPECT_LT(Value::Double(2.5), Value::Int(3));
}

TEST(ValueTest, StringsCompareById) {
  EXPECT_EQ(Value::String(5), Value::String(5));
  EXPECT_NE(Value::String(5), Value::String(6));
  EXPECT_NE(Value::String(5), Value::Int(5));
}

TEST(ValueTest, WordRoundTrips) {
  EXPECT_EQ(IntFromWord(WordFromInt(-17)), -17);
  EXPECT_EQ(DoubleFromWord(WordFromDouble(3.25)), 3.25);
}

TEST(StringDictTest, InternIsIdempotent) {
  StringDict dict;
  uint64_t a = dict.Intern("alice");
  uint64_t b = dict.Intern("bob");
  EXPECT_NE(a, b);
  EXPECT_EQ(dict.Intern("alice"), a);
  EXPECT_EQ(dict.Get(a), "alice");
  EXPECT_EQ(dict.Find("bob"), b);
  EXPECT_EQ(dict.Find("carol"), UINT64_MAX);
  EXPECT_EQ(dict.size(), 2u);
}

TEST(StringDictTest, ConcurrentInternIsConsistent) {
  StringDict dict;
  std::vector<std::thread> threads;
  std::vector<uint64_t> ids(8);
  for (int t = 0; t < 8; ++t) {
    threads.emplace_back([&dict, &ids, t] {
      for (int i = 0; i < 500; ++i) {
        uint64_t id = dict.Intern("key" + std::to_string(i % 50));
        if (i == 42) ids[t] = id;
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(dict.size(), 50u);
  for (int t = 1; t < 8; ++t) EXPECT_EQ(ids[t], ids[0]);
}

TEST(WelfordTest, MeanAndVariance) {
  Welford w;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) w.Add(x);
  EXPECT_DOUBLE_EQ(w.mean(), 5.0);
  EXPECT_NEAR(w.variance(), 4.0, 1e-9);
}

TEST(WelfordTest, DecayPreservesMoments) {
  Welford w;
  for (int i = 0; i < 100; ++i) w.Add(i % 10);
  const double mean = w.mean();
  const double var = w.variance();
  w.Decay();
  EXPECT_EQ(w.count(), 50u);
  EXPECT_DOUBLE_EQ(w.mean(), mean);
  EXPECT_NEAR(w.variance(), var, var * 0.05);
}

TEST(WelfordTest, DecayNeverEmptiesNonEmptyAccumulator) {
  // Regression: integer halving turned count 1 into 0, and the DWS
  // controller treats count() == 0 as "no estimate at all" — the mean the
  // accumulator still held was silently discarded. Decay now rounds up.
  Welford w;
  w.Add(3.5);
  w.Decay();
  EXPECT_EQ(w.count(), 1u);
  EXPECT_DOUBLE_EQ(w.mean(), 3.5);

  // Repeated decay converges to 1, never 0.
  for (int i = 0; i < 64; ++i) w.Decay();
  EXPECT_EQ(w.count(), 1u);

  // Odd counts round up: 3 → 2.
  Welford w3;
  w3.Add(1.0);
  w3.Add(2.0);
  w3.Add(3.0);
  w3.Decay();
  EXPECT_EQ(w3.count(), 2u);
  EXPECT_DOUBLE_EQ(w3.mean(), 2.0);

  // An empty accumulator stays empty.
  Welford empty;
  empty.Decay();
  EXPECT_EQ(empty.count(), 0u);
}

TEST(OptionsTest, ResolvedFillsWorkerCount) {
  EngineOptions o;
  o.num_workers = 0;
  EXPECT_GT(o.Resolved().num_workers, 0u);
  o.num_workers = 3;
  EXPECT_EQ(o.Resolved().num_workers, 3u);
}

TEST(OptionsTest, ModeNames) {
  EXPECT_STREQ(CoordinationModeName(CoordinationMode::kGlobal), "Global");
  EXPECT_STREQ(CoordinationModeName(CoordinationMode::kSsp), "SSP");
  EXPECT_STREQ(CoordinationModeName(CoordinationMode::kDws), "DWS");
}

TEST(OptionsTest, ToStringMentionsStrategy) {
  EngineOptions o;
  o.coordination = CoordinationMode::kSsp;
  EXPECT_NE(o.ToString().find("SSP"), std::string::npos);
}

TEST(OptionsTest, ToStringMentionsStealAndNuma) {
  EngineOptions o;
  o.enable_steal = false;
  o.numa = NumaMode::kOff;
  const std::string s = o.ToString();
  EXPECT_NE(s.find("steal=off"), std::string::npos);
  EXPECT_NE(s.find("numa=off"), std::string::npos);
}

TEST(NumaTopologyTest, ParseCpuListAcceptsRangesAndSingles) {
  std::vector<uint32_t> cpus;
  ASSERT_TRUE(NumaTopology::ParseCpuList("0-3,8,10-11", &cpus));
  EXPECT_EQ(cpus, (std::vector<uint32_t>{0, 1, 2, 3, 8, 10, 11}));
  ASSERT_TRUE(NumaTopology::ParseCpuList("5", &cpus));
  EXPECT_EQ(cpus, (std::vector<uint32_t>{5}));
  // Duplicates collapse; order is sorted regardless of input order.
  ASSERT_TRUE(NumaTopology::ParseCpuList("4,2,2-3", &cpus));
  EXPECT_EQ(cpus, (std::vector<uint32_t>{2, 3, 4}));
}

TEST(NumaTopologyTest, ParseCpuListRejectsMalformed) {
  std::vector<uint32_t> cpus;
  EXPECT_FALSE(NumaTopology::ParseCpuList("", &cpus));
  EXPECT_FALSE(NumaTopology::ParseCpuList("3-1", &cpus));  // hi < lo
  EXPECT_FALSE(NumaTopology::ParseCpuList("a-b", &cpus));
  EXPECT_FALSE(NumaTopology::ParseCpuList("1,", &cpus));
}

TEST(NumaTopologyTest, FromStringAndWorkerPlacement) {
  const NumaTopology topo = NumaTopology::FromString("0:0-3;1:4-7");
  ASSERT_EQ(topo.num_nodes(), 2u);
  EXPECT_TRUE(topo.MultiNode());
  EXPECT_EQ(topo.nodes[0].cpus.size(), 4u);
  EXPECT_EQ(topo.nodes[1].cpus[0], 4u);
  // Breadth-first: consecutive workers alternate sockets so each socket's
  // memory bandwidth is engaged even at low worker counts.
  EXPECT_EQ(topo.NodeForWorker(0), 0u);
  EXPECT_EQ(topo.NodeForWorker(1), 1u);
  EXPECT_EQ(topo.NodeForWorker(2), 0u);
  EXPECT_EQ(topo.NodeForWorker(5), 1u);
}

TEST(NumaTopologyTest, ProbeAlwaysYieldsAtLeastOneNode) {
  // On any machine — single-socket laptop or /sys-less container — Probe()
  // must produce a usable topology rather than an empty one.
  const NumaTopology topo = NumaTopology::Probe();
  ASSERT_GE(topo.num_nodes(), 1u);
  EXPECT_EQ(topo.NodeForWorker(0), topo.NodeForWorker(topo.num_nodes()));
}

}  // namespace
}  // namespace dcdatalog
