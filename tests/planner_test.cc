// Unit tests for src/planner: logical plan construction + optimizer
// passes (§5.1) and physical plan compilation (§5.2) — replica/partition
// assignment, join-method heuristic, register allocation.

#include <gtest/gtest.h>

#include "datalog/analysis.h"
#include "datalog/parser.h"
#include "planner/logical_plan.h"
#include "planner/physical_plan.h"
#include "storage/catalog.h"

namespace dcdatalog {
namespace {

class PlannerTest : public ::testing::Test {
 protected:
  PlannerTest() {
    catalog_.Put(Relation("arc", Schema::Ints(2)));
    catalog_.Put(Relation("warc", Schema::Ints(3)));
    catalog_.Put(Relation("basic", Schema::Ints(2)));
    catalog_.Put(Relation("assbl", Schema::Ints(2)));
    catalog_.Put(Relation("organizer", Schema::Ints(1)));
    catalog_.Put(Relation("friend", Schema::Ints(2)));
  }

  void Load(const std::string& src) {
    auto p = ParseProgram(src, &dict_);
    ASSERT_TRUE(p.ok()) << p.status().ToString();
    program_ = std::move(p).value();
    auto a = ProgramAnalysis::Analyze(program_, catalog_);
    ASSERT_TRUE(a.ok()) << a.status().ToString();
    analysis_ = std::make_unique<ProgramAnalysis>(std::move(a).value());
  }

  Result<std::vector<LogicalRulePlan>> Logical() {
    return BuildLogicalPlans(program_, *analysis_);
  }

  Result<PhysicalPlan> Physical() {
    auto logical = Logical();
    if (!logical.ok()) return logical.status();
    return BuildPhysicalPlan(program_, *analysis_, logical.value());
  }

  Catalog catalog_;
  StringDict dict_;
  Program program_;
  std::unique_ptr<ProgramAnalysis> analysis_;
};

TEST_F(PlannerTest, DeltaVersionsPerRecursiveGoal) {
  Load(
      "path(A, B, min<D>) :- warc(A, B, D).\n"
      "path(A, B, min<D>) :- path(A, C, D1), path(C, B, D2), D = D1 + D2.");
  auto plans = Logical();
  ASSERT_TRUE(plans.ok());
  // 1 base version + 2 delta versions for the non-linear rule.
  EXPECT_EQ(plans.value().size(), 3u);
  int delta_versions = 0;
  for (const auto& p : plans.value()) {
    if (p.delta_atom >= 0) ++delta_versions;
  }
  EXPECT_EQ(delta_versions, 2);
}

TEST_F(PlannerTest, RecursiveScanComesFirst) {
  // Paper §5.1: the recursive table becomes the leftmost join input even
  // when written last in the body.
  Load(
      "sg(X, Y) :- arc(P, X), arc(P, Y), X != Y.\n"
      "sg(X, Y) :- arc(A, X), sg(A, B), arc(B, Y).");
  auto plans = Logical();
  ASSERT_TRUE(plans.ok());
  const LogicalRulePlan* delta = nullptr;
  for (const auto& p : plans.value()) {
    if (p.delta_atom >= 0) delta = &p;
  }
  ASSERT_NE(delta, nullptr);
  // Descend to the leftmost scan.
  const LogicalOp* node = delta->root.get();
  while (!node->children.empty()) node = node->children[0].get();
  EXPECT_EQ(node->kind, LogicalOpKind::kScan);
  EXPECT_TRUE(node->is_delta);
  EXPECT_EQ(node->atom.predicate, "sg");
}

TEST_F(PlannerTest, SelectionPushedBelowLaterJoins) {
  // X != Y involves only the first atom's variables, so it must sit below
  // the join with the second atom.
  Load("q(X, Y) :- arc(X, Y), X != Y, arc(Y, Z), Z != X.");
  auto plans = Logical();
  ASSERT_TRUE(plans.ok());
  const std::string tree = plans.value()[0].root->ToString();
  // The Select(X != Y) must appear deeper (later in the printed tree)
  // than the top-level join, i.e. the first Join line precedes it.
  const size_t join_pos = tree.find("Join");
  const size_t sel_pos = tree.find("Select(X != Y)");
  ASSERT_NE(join_pos, std::string::npos);
  ASSERT_NE(sel_pos, std::string::npos);
  EXPECT_GT(sel_pos, join_pos);
}

TEST_F(PlannerTest, AssignmentBecomesBind) {
  Load("q(X, C) :- arc(X, Y), C = X + Y.");
  auto plans = Logical();
  ASSERT_TRUE(plans.ok());
  EXPECT_NE(plans.value()[0].root->ToString().find("Bind(C = "),
            std::string::npos);
}

TEST_F(PlannerTest, ThreeRecursiveGoalsRejected) {
  Load(
      "t(X, Y) :- arc(X, Y).\n"
      "t(X, W) :- t(X, Y), t(Y, Z), t(Z, W).");
  auto plans = Logical();
  EXPECT_EQ(plans.status().code(), StatusCode::kUnsupported);
}

TEST_F(PlannerTest, ApspGetsDualReplicas) {
  // Paper §4.3: path is partitioned on both join positions; each replica
  // is probed by the other delta version.
  Load(
      "path(A, B, min<D>) :- warc(A, B, D).\n"
      "path(A, B, min<D>) :- path(A, C, D1), path(C, B, D2), D = D1 + D2.");
  auto plan = Physical();
  ASSERT_TRUE(plan.ok()) << plan.status().ToString();
  const SccPlan* rec = nullptr;
  for (const auto& scc : plan.value().sccs) {
    if (scc.recursive) rec = &scc;
  }
  ASSERT_NE(rec, nullptr);
  auto ids = rec->ReplicasOf("path");
  ASSERT_EQ(ids.size(), 2u);
  std::set<uint32_t> cols;
  for (int id : ids) {
    cols.insert(rec->replicas[id].partition_col);
    EXPECT_TRUE(rec->replicas[id].needs_join_index);
  }
  EXPECT_EQ(cols, (std::set<uint32_t>{0, 1}));
}

TEST_F(PlannerTest, LinearRecursionSingleReplica) {
  Load(
      "tc(X, Y) :- arc(X, Y).\n"
      "tc(X, Y) :- tc(X, Z), arc(Z, Y).");
  auto plan = Physical();
  ASSERT_TRUE(plan.ok());
  const SccPlan& scc = plan.value().sccs.back();
  auto ids = scc.ReplicasOf("tc");
  ASSERT_EQ(ids.size(), 1u);
  // Partitioned on the join key Z = column 1 of tc(X, Z).
  EXPECT_EQ(scc.replicas[ids[0]].partition_col, 1u);
  EXPECT_FALSE(scc.replicas[ids[0]].needs_join_index);
}

TEST_F(PlannerTest, HashJoinHeuristicForSharedKeyVariable) {
  // Two base atoms probed on the same variable P → hash joins (§5.2.1).
  Load("q(X, Y) :- arc(P, X), arc(P, Y), X != Y.");
  auto plan = Physical();
  ASSERT_TRUE(plan.ok());
  bool saw_hash = false;
  for (const auto& scc : plan.value().sccs) {
    for (const auto& rule : scc.base_rules) {
      for (const auto& step : rule.steps) {
        if (step.kind == StepKind::kProbeBaseHash) saw_hash = true;
      }
    }
  }
  EXPECT_TRUE(saw_hash);
  bool has_hash_index = false;
  for (const auto& req : plan.value().base_indexes) {
    if (req.is_hash) has_hash_index = true;
  }
  EXPECT_TRUE(has_hash_index);
}

TEST_F(PlannerTest, BTreeIndexJoinIsDefault) {
  Load(
      "tc(X, Y) :- arc(X, Y).\n"
      "tc(X, Y) :- tc(X, Z), arc(Z, Y).");
  auto plan = Physical();
  ASSERT_TRUE(plan.ok());
  const SccPlan& scc = plan.value().sccs.back();
  ASSERT_EQ(scc.delta_rules.size(), 1u);
  ASSERT_EQ(scc.delta_rules[0].steps.size(), 1u);
  EXPECT_EQ(scc.delta_rules[0].steps[0].kind, StepKind::kProbeBaseBTree);
}

TEST_F(PlannerTest, CartesianFallsBackToScan) {
  Load("q(X, Y) :- organizer(X), organizer(Y).");
  auto plan = Physical();
  ASSERT_TRUE(plan.ok());
  const auto& rule = plan.value().sccs[0].base_rules[0];
  ASSERT_EQ(rule.steps.size(), 1u);
  EXPECT_EQ(rule.steps[0].kind, StepKind::kScanBase);
}

TEST_F(PlannerTest, UnitRuleForConstantSeed) {
  Load(
      "sp(T, min<C>) :- T = 0, C = 0.\n"
      "sp(T2, min<C>) :- sp(T1, C1), warc(T1, T2, C2), C = C1 + C2.");
  auto plan = Physical();
  ASSERT_TRUE(plan.ok());
  const SccPlan& scc = plan.value().sccs.back();
  ASSERT_EQ(scc.base_rules.size(), 1u);
  EXPECT_TRUE(scc.base_rules[0].driving_is_unit);
}

TEST_F(PlannerTest, WireFormatsPerAggregate) {
  Load(
      "attend(X) :- organizer(X).\n"
      "cnt(Y, count<X>) :- attend(X), friend(Y, X).\n"
      "attend(X) :- cnt(X, N), N >= 3.");
  auto plan = Physical();
  ASSERT_TRUE(plan.ok());
  const AggSpec& cnt = plan.value().agg_specs.at("cnt");
  EXPECT_EQ(cnt.func, AggFunc::kCount);
  EXPECT_EQ(cnt.group_arity, 1u);
  EXPECT_EQ(cnt.stored_arity, 2u);
  EXPECT_EQ(cnt.wire_arity, 2u);
  const AggSpec& attend = plan.value().agg_specs.at("attend");
  EXPECT_EQ(attend.func, AggFunc::kNone);
  EXPECT_EQ(attend.wire_arity, 1u);
}

TEST_F(PlannerTest, SumWireCarriesContributorAndValue) {
  catalog_.Put(Relation("matrix", Schema::Ints(3)));
  Load(
      "rank(X, sum<(X, I)>) :- matrix(X, _, _), I = 0.15 / 10.0.\n"
      "rank(X, sum<(Y, K)>) :- rank(Y, C), matrix(Y, X, D), "
      "K = 0.85 * (C / D).");
  auto plan = Physical();
  ASSERT_TRUE(plan.ok()) << plan.status().ToString();
  const AggSpec& rank = plan.value().agg_specs.at("rank");
  EXPECT_EQ(rank.func, AggFunc::kSum);
  EXPECT_EQ(rank.wire_arity, 3u);  // group + contributor + value.
  EXPECT_EQ(rank.value_type, ColumnType::kDouble);
}

TEST_F(PlannerTest, MutualRecursionSharesScc) {
  Load(
      "attend(X) :- organizer(X).\n"
      "cnt(Y, count<X>) :- attend(X), friend(Y, X).\n"
      "attend(X) :- cnt(X, N), N >= 3.");
  auto plan = Physical();
  ASSERT_TRUE(plan.ok());
  // One recursive SCC containing both predicates and their delta rules.
  const SccPlan* rec = nullptr;
  for (const auto& scc : plan.value().sccs) {
    if (scc.recursive) rec = &scc;
  }
  ASSERT_NE(rec, nullptr);
  EXPECT_EQ(rec->derived_preds.size(), 2u);
  EXPECT_EQ(rec->delta_rules.size(), 2u);
  EXPECT_EQ(rec->base_rules.size(), 1u);
}

TEST_F(PlannerTest, RegistersAreTyped) {
  Load("q(X, C) :- warc(X, _, W), C = W * 0.5.");
  auto plan = Physical();
  ASSERT_TRUE(plan.ok());
  const PhysicalRule& rule = plan.value().sccs[0].base_rules[0];
  EXPECT_GE(rule.num_regs, 2u);
  // The bound C register must be double.
  bool saw_double = false;
  for (ColumnType t : rule.reg_types) {
    saw_double |= t == ColumnType::kDouble;
  }
  EXPECT_TRUE(saw_double);
}

TEST_F(PlannerTest, UnpartitionableRecursiveProbeRejected) {
  // The two recursive goals only connect through a base atom, so the probe
  // key is not a delta-tuple column → cannot stay partition-local.
  Load(
      "p(X, Y) :- arc(X, Y).\n"
      "p(X, W) :- p(X, Y), arc(Y, Z), p(Z, W).");
  auto plan = Physical();
  EXPECT_EQ(plan.status().code(), StatusCode::kUnsupported);
}

TEST_F(PlannerTest, NegationCompilesToAntiJoin) {
  Load(
      "tc(X, Y) :- arc(X, Y).\n"
      "tc(X, Y) :- tc(X, Z), arc(Z, Y).\n"
      "node(X) :- arc(X, _).\n"
      "unreach(X, Y) :- node(X), node(Y), !tc(X, Y).");
  auto plan = Physical();
  ASSERT_TRUE(plan.ok()) << plan.status().ToString();
  bool saw_anti = false;
  for (const auto& scc : plan.value().sccs) {
    for (const auto& rule : scc.base_rules) {
      for (const auto& step : rule.steps) {
        if (step.kind == StepKind::kAntiJoinBTree) {
          saw_anti = true;
          EXPECT_EQ(step.relation, "tc");
          EXPECT_GE(step.probe_reg, 0);
          EXPECT_EQ(step.eq_checks.size(), 1u);  // Second bound column.
        }
      }
    }
  }
  EXPECT_TRUE(saw_anti);
}

TEST_F(PlannerTest, EmptinessTestCompilesToAntiScan) {
  Load(
      "node(X) :- arc(X, _).\n"
      "isolated(X) :- node(X), !warc(_, _, _).");
  auto plan = Physical();
  ASSERT_TRUE(plan.ok()) << plan.status().ToString();
  bool saw_scan = false;
  for (const auto& scc : plan.value().sccs) {
    for (const auto& rule : scc.base_rules) {
      for (const auto& step : rule.steps) {
        saw_scan |= step.kind == StepKind::kAntiJoinScan;
      }
    }
  }
  EXPECT_TRUE(saw_scan);
}

TEST_F(PlannerTest, ExplainablePlanToString) {
  Load(
      "tc(X, Y) :- arc(X, Y).\n"
      "tc(X, Y) :- tc(X, Z), arc(Z, Y).");
  auto plan = Physical();
  ASSERT_TRUE(plan.ok());
  const std::string s = plan.value().ToString();
  EXPECT_NE(s.find("tc"), std::string::npos);
  EXPECT_NE(s.find("base indexes"), std::string::npos);
}

}  // namespace
}  // namespace dcdatalog
