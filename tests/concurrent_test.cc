// Unit tests for src/concurrent: SPSC queue, spin barrier, termination
// detector, worker pool.

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <thread>
#include <vector>

#include "concurrent/barrier.h"
#include "concurrent/spsc_queue.h"
#include "concurrent/termination.h"
#include "concurrent/worker_pool.h"
#include "runtime/message.h"

namespace dcdatalog {
namespace {

TEST(SpscQueueTest, SingleThreadPushPop) {
  SpscQueue<int> q(8);
  EXPECT_TRUE(q.EmptyApprox());
  for (int i = 0; i < 8; ++i) EXPECT_TRUE(q.TryPush(i));
  EXPECT_FALSE(q.TryPush(99));  // Full.
  int out;
  for (int i = 0; i < 8; ++i) {
    ASSERT_TRUE(q.TryPop(&out));
    EXPECT_EQ(out, i);
  }
  EXPECT_FALSE(q.TryPop(&out));
}

TEST(SpscQueueTest, CapacityRoundsToPowerOfTwo) {
  SpscQueue<int> q(5);
  EXPECT_EQ(q.capacity(), 8u);
}

TEST(SpscQueueTest, PopBatchDrains) {
  SpscQueue<int> q(16);
  for (int i = 0; i < 10; ++i) q.TryPush(i);
  std::vector<int> out;
  EXPECT_EQ(q.PopBatch(&out), 10u);
  EXPECT_EQ(out.size(), 10u);
  EXPECT_EQ(out[9], 9);
  EXPECT_EQ(q.PopBatch(&out), 0u);
}

TEST(SpscQueueTest, PopBatchRespectsMax) {
  SpscQueue<int> q(16);
  for (int i = 0; i < 10; ++i) q.TryPush(i);
  std::vector<int> out;
  EXPECT_EQ(q.PopBatch(&out, 4), 4u);
  EXPECT_EQ(q.PopBatch(&out, 100), 6u);
}

TEST(SpscQueueTest, PopBatchMaxAcrossWraparound) {
  // Drive the indices far past capacity_ so (head + i) & mask_ wraps within
  // a single bounded batch, and verify the bound plus FIFO order hold.
  SpscQueue<uint64_t> q(8);
  uint64_t next_push = 0;
  uint64_t next_pop = 0;
  std::vector<uint64_t> out;
  for (int round = 0; round < 50; ++round) {
    while (q.TryPush(next_push)) ++next_push;  // Fill to capacity.
    out.clear();
    // The queue is full, but the consumer's cached tail may be stale, so
    // PopBatch guarantees only 1 <= popped <= max here.
    const uint64_t popped = q.PopBatch(&out, 3);
    ASSERT_GE(popped, 1u);
    ASSERT_LE(popped, 3u);
    ASSERT_EQ(out.size(), popped);
    for (uint64_t v : out) EXPECT_EQ(v, next_pop++);
  }
  // Indices are now far beyond capacity_; drain the residue (repeated calls
  // because a stale tail cache may split it) and verify order to the end.
  EXPECT_GT(next_push, 100u);
  while (next_pop < next_push) {
    out.clear();
    ASSERT_GT(q.PopBatch(&out), 0u);
    for (uint64_t v : out) EXPECT_EQ(v, next_pop++);
  }
  EXPECT_EQ(next_pop, next_push);
  EXPECT_TRUE(q.EmptyApprox());
}

TEST(SpscQueueTest, WrapAroundPreservesFifo) {
  SpscQueue<int> q(4);
  int out;
  for (int round = 0; round < 100; ++round) {
    EXPECT_TRUE(q.TryPush(round));
    EXPECT_TRUE(q.TryPush(round + 1000));
    ASSERT_TRUE(q.TryPop(&out));
    EXPECT_EQ(out, round);
    ASSERT_TRUE(q.TryPop(&out));
    EXPECT_EQ(out, round + 1000);
  }
}

TEST(SpscQueueTest, TwoThreadStress) {
  // Producer pushes 1M increasing ints; consumer checks order & totality.
  SpscQueue<uint64_t> q(1024);
  constexpr uint64_t kN = 1000000;
  std::thread producer([&q] {
    for (uint64_t i = 0; i < kN; ++i) {
      while (!q.TryPush(i)) std::this_thread::yield();
    }
  });
  uint64_t expected = 0;
  std::vector<uint64_t> batch;
  while (expected < kN) {
    batch.clear();
    if (q.PopBatch(&batch) == 0) {
      std::this_thread::yield();
      continue;
    }
    for (uint64_t v : batch) {
      ASSERT_EQ(v, expected);
      ++expected;
    }
  }
  producer.join();
  EXPECT_TRUE(q.EmptyApprox());
}

TEST(SpscQueueTest, TwoThreadStressBlockElements) {
  // Same producer/consumer race but over 2 KiB MsgBlock elements — the
  // element type the engine actually ships — so the copy into and out of a
  // slot spans many cache lines and any torn publish shows up as a payload
  // mismatch.
  SpscQueue<MsgBlock> q(64);
  constexpr uint64_t kBlocks = 20000;
  std::thread producer([&q] {
    for (uint64_t i = 0; i < kBlocks; ++i) {
      MsgBlock b;
      b.tag = static_cast<uint16_t>(i & 0x7);
      b.arity = 2;
      b.count = static_cast<uint16_t>(1 + (i % MsgBlock::CapacityFor(2)));
      for (uint32_t t = 0; t < b.count; ++t) {
        b.w[t * 2] = i;
        b.w[t * 2 + 1] = i ^ (t + 1);
      }
      while (!q.TryPush(b)) std::this_thread::yield();
    }
  });
  uint64_t seen = 0;
  uint64_t tuples = 0;
  std::vector<MsgBlock> batch;
  while (seen < kBlocks) {
    batch.clear();
    if (q.PopBatch(&batch, 16) == 0) {
      std::this_thread::yield();
      continue;
    }
    for (const MsgBlock& b : batch) {
      ASSERT_EQ(b.tag, seen & 0x7);
      ASSERT_EQ(b.arity, 2u);
      ASSERT_EQ(b.count, 1 + (seen % MsgBlock::CapacityFor(2)));
      for (uint32_t t = 0; t < b.count; ++t) {
        ASSERT_EQ(b.w[t * 2], seen);
        ASSERT_EQ(b.w[t * 2 + 1], seen ^ (t + 1));
      }
      tuples += b.count;
      ++seen;
    }
  }
  producer.join();
  EXPECT_TRUE(q.EmptyApprox());
  EXPECT_GT(tuples, kBlocks);  // Every block carried at least one tuple.
}

TEST(BarrierTest, RendezvousCounts) {
  constexpr uint32_t kParties = 4;
  SpinBarrier barrier(kParties);
  std::atomic<int> phase_sum{0};
  std::vector<std::thread> threads;
  for (uint32_t t = 0; t < kParties; ++t) {
    threads.emplace_back([&] {
      for (int round = 0; round < 50; ++round) {
        phase_sum.fetch_add(1);
        barrier.Wait();
        // Between barriers every thread observed the full round.
        ASSERT_EQ(phase_sum.load() % kParties, 0u);
        barrier.Wait();
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(phase_sum.load(), 4 * 50);
}

TEST(BarrierTest, ExactlyOneSerialSectionPerRound) {
  constexpr uint32_t kParties = 3;
  SpinBarrier barrier(kParties);
  std::atomic<int> serial_runs{0};
  std::vector<std::thread> threads;
  for (uint32_t t = 0; t < kParties; ++t) {
    threads.emplace_back([&] {
      for (int round = 0; round < 100; ++round) {
        barrier.Wait([&serial_runs] { serial_runs.fetch_add(1); });
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(serial_runs.load(), 100);
}

TEST(TerminationTest, SimpleLifecycle) {
  TerminationDetector det(2);
  EXPECT_FALSE(det.CheckTermination());  // Workers start active.
  det.Deactivate(0);
  EXPECT_FALSE(det.CheckTermination());
  det.Deactivate(1);
  EXPECT_TRUE(det.CheckTermination());
  EXPECT_TRUE(det.Done());
}

TEST(TerminationTest, InFlightTuplesBlockTermination) {
  TerminationDetector det(2);
  det.AddProduced(3);
  det.Deactivate(0);
  det.Deactivate(1);
  EXPECT_FALSE(det.CheckTermination());  // 3 produced, 0 consumed.
  det.AddConsumed(1, 3);
  EXPECT_TRUE(det.CheckTermination());
}

TEST(TerminationTest, ReactivationBlocksTermination) {
  TerminationDetector det(2);
  det.Deactivate(0);
  det.Deactivate(1);
  det.Activate(1);
  EXPECT_FALSE(det.CheckTermination());
  det.Deactivate(1);
  EXPECT_TRUE(det.CheckTermination());
}

TEST(TerminationTest, ConcurrentProduceConsumeNeverFalseTerminates) {
  // Two "workers" bounce a token; the detector must never fire while the
  // token is in flight.
  TerminationDetector det(2);
  std::atomic<bool> stop{false};
  std::atomic<uint64_t> token_passes{0};
  std::atomic<bool> false_positive{false};

  std::thread bouncer([&] {
    for (int i = 0; i < 20000; ++i) {
      det.AddProduced(1);
      det.Activate(1);
      det.AddConsumed(1, 1);
      token_passes.fetch_add(1);
      det.Deactivate(1);
      det.Activate(1);
    }
    stop.store(true);
  });
  std::thread checker([&] {
    while (!stop.load()) {
      if (det.CheckTermination()) {
        false_positive.store(true);
        return;
      }
    }
  });
  bouncer.join();
  checker.join();
  // Worker 0 was active the whole time → termination is impossible.
  EXPECT_FALSE(false_positive.load());
  EXPECT_FALSE(det.Done());
}

TEST(TerminationTest, MorselAccountingBalances) {
  // A published morsel raises produced before its kPublished release-store;
  // the executor credits consumed only after its derived tuples flushed.
  // Between the two, termination must be impossible even with every worker
  // deactivated — the in-flight morsel is "work in the system".
  TerminationDetector det(2);
  det.OnMorselPublished(16);
  det.Deactivate(0);
  det.Deactivate(1);
  EXPECT_FALSE(det.CheckTermination());
  det.OnMorselExecuted(1, 16);
  EXPECT_TRUE(det.CheckTermination());
}

TEST(TerminationTest, StolenMorselStressNeverFalseTerminates) {
  // Owner publishes morsels, thief claims and executes them, both under a
  // checker hammering CheckTermination. Models stealing forced on: the
  // owner's produced-count and the thief's consumed-count race freely, and
  // no interleaving may let a termination round pass while a morsel is in
  // flight (the thief also Activates around each execution, as TrySteal
  // does).
  TerminationDetector det(2);
  std::atomic<int> published{0};
  std::atomic<int> executed{0};
  std::atomic<bool> stop{false};
  std::atomic<bool> false_positive{false};
  constexpr int kMorsels = 20000;

  std::thread owner([&] {
    for (int i = 0; i < kMorsels; ++i) {
      det.OnMorselPublished(8);
      published.fetch_add(1, std::memory_order_release);
    }
  });
  std::thread thief([&] {
    int done = 0;
    while (done < kMorsels) {
      if (published.load(std::memory_order_acquire) > done) {
        det.Activate(1);
        det.OnMorselExecuted(1, 8);
        det.Deactivate(1);
        ++done;
        executed.fetch_add(1);
      }
    }
    stop.store(true);
  });
  std::thread checker([&] {
    while (!stop.load()) {
      if (det.CheckTermination()) {
        false_positive.store(true);
        return;
      }
    }
  });
  owner.join();
  thief.join();
  checker.join();
  // Worker 0 never deactivated → the detector must not have fired.
  EXPECT_FALSE(false_positive.load());
  EXPECT_EQ(executed.load(), kMorsels);
  // With worker 0 parked too, the drained system terminates cleanly.
  det.Deactivate(0);
  EXPECT_TRUE(det.CheckTermination());
}

TEST(WorkerPoolTest, RunWorkersCoversAllIds) {
  std::vector<std::atomic<int>> hits(8);
  RunWorkers(8, [&hits](uint32_t wid) { hits[wid].fetch_add(1); });
  for (auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(WorkerPoolTest, SingleWorkerRunsInline) {
  std::thread::id main_id = std::this_thread::get_id();
  std::thread::id seen;
  RunWorkers(1, [&](uint32_t) { seen = std::this_thread::get_id(); });
  EXPECT_EQ(seen, main_id);
}

TEST(WorkerPoolTest, ParallelForCoversRange) {
  std::vector<std::atomic<int>> hits(1000);
  ParallelFor(7, 1000, [&](uint64_t b, uint64_t e) {
    for (uint64_t i = b; i < e; ++i) hits[i].fetch_add(1);
  });
  for (auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(WorkerPoolTest, ParallelForEmptyAndTiny) {
  ParallelFor(4, 0, [](uint64_t, uint64_t) { FAIL(); });
  std::atomic<int> count{0};
  ParallelFor(16, 3, [&](uint64_t b, uint64_t e) {
    count.fetch_add(static_cast<int>(e - b));
  });
  EXPECT_EQ(count.load(), 3);
}

}  // namespace
}  // namespace dcdatalog
